// Command benchjson converts `go test -bench` output into a small
// schema-versioned JSON document so CI can archive performance numbers as a
// machine-readable artifact and later sessions can diff them.
//
// Usage:
//
//	go test -bench 'RunAllSerial|Fig9SingleLookup' -benchmem -benchtime 1x . |
//	    go run ./cmd/benchjson -seeds 0x48414c4f \
//	        -config bench='RunAllSerial|Fig9SingleLookup' -config benchtime=1x \
//	        -o BENCH_perf.json
//
// -seeds and -config stamp the workload identity into the document:
// cmd/benchdiff refuses to compare two documents whose seed lists or config
// maps disagree, so a diff is only ever apples to apples. The `pkg:` and
// `cpu:` headers of the bench output are captured automatically (cpu as
// environment info, which benchdiff only warns about).
//
// The document intentionally carries no timestamp or hostname: two runs of
// the same toolchain on the same code should encode identically except for
// the measured values themselves.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"halo/internal/benchjson"
	"halo/internal/listflag"
)

// configFlag collects repeatable -config key=value pairs.
type configFlag map[string]string

func (c configFlag) String() string { return fmt.Sprintf("%v", map[string]string(c)) }

func (c configFlag) Set(v string) error {
	key, val, ok := strings.Cut(v, "=")
	if !ok || key == "" {
		return fmt.Errorf("want key=value, got %q", v)
	}
	c[key] = val
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	seedsFl := flag.String("seeds", "", "comma-separated workload seeds to stamp into the document")
	config := configFlag{}
	flag.Var(config, "config", "benchmark config entry to stamp, key=value (repeatable)")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-o out.json] [-seeds 42,123] [-config k=v]... [bench-output.txt]")
		os.Exit(2)
	}

	doc, err := benchjson.Parse(bufio.NewReader(in))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *seedsFl != "" {
		seeds, err := listflag.Uint64s("seeds", *seedsFl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		doc.Seeds = seeds
	}
	for k, v := range config {
		if doc.Config == nil {
			doc.Config = make(map[string]string)
		}
		doc.Config[k] = v
	}

	data, err := benchjson.Encode(doc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s (%d benchmarks, %d bytes)\n",
		*out, len(doc.Benchmarks), len(data))
}
