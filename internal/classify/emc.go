package classify

import (
	"fmt"

	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/packet"
)

// EMC is the exact-match cache: the first, fastest classification layer
// (paper Fig. 2a). It maps exact flow keys to their resolved match, learning
// entries from MegaFlow results and evicting old flows when full (OVS's EMC
// holds 8K flows by default). Keys are raw bytes of a fixed length: packed
// five-tuples by default, or a raw header region for datapaths that key on
// wire bytes.
type EMC struct {
	table    *cuckoo.Table
	capacity uint64

	hits    uint64
	misses  uint64
	inserts uint64
	// evictRing remembers insertion order for FIFO eviction when the
	// cuckoo table refuses a new flow (OVS overwrites by hash position;
	// FIFO gives the same "old flows fall out" behaviour deterministically).
	evictRing []string
	evictNext int
}

// DefaultEMCEntries matches OVS's default EMC size.
const DefaultEMCEntries = 8192

// NewEMC builds an exact-match cache keyed on packed five-tuples.
func NewEMC(space mem.Space, alloc *mem.Allocator, entries uint64) (*EMC, error) {
	return NewEMCKeyLen(space, alloc, entries, packet.KeyBytes)
}

// NewEMCKeyLen builds an exact-match cache with a custom key length.
func NewEMCKeyLen(space mem.Space, alloc *mem.Allocator, entries uint64, keyLen int) (*EMC, error) {
	tbl, err := cuckoo.Create(space, alloc, cuckoo.Config{Entries: entries, KeyLen: keyLen})
	if err != nil {
		return nil, fmt.Errorf("classify: creating EMC: %w", err)
	}
	return &EMC{table: tbl, capacity: entries}, nil
}

// Table exposes the backing table (for HALO offload and warming).
func (e *EMC) Table() *cuckoo.Table { return e.table }

// Stats returns hit/miss/insert counts.
func (e *EMC) Stats() (hits, misses, inserts uint64) { return e.hits, e.misses, e.inserts }

// HitRate returns the fraction of lookups that hit.
func (e *EMC) HitRate() float64 {
	if e.hits+e.misses == 0 {
		return 0
	}
	return float64(e.hits) / float64(e.hits+e.misses)
}

// Lookup finds a flow functionally by five-tuple.
func (e *EMC) Lookup(t packet.FiveTuple) (Match, bool) {
	return e.LookupRaw(t.Packed())
}

// LookupRaw finds a flow functionally by raw key.
func (e *EMC) LookupRaw(key []byte) (Match, bool) {
	v, ok := e.table.Lookup(key)
	if ok {
		e.hits++
		return decodeRule(v), true
	}
	e.misses++
	return Match{}, false
}

// LookupTimed finds a flow, charging the thread for the software probe.
func (e *EMC) LookupTimed(th *cpu.Thread, t packet.FiveTuple, opts cuckoo.LookupOptions) (Match, bool) {
	v, ok := e.table.TimedLookup(th, t.Packed(), opts)
	if ok {
		e.hits++
		return decodeRule(v), true
	}
	e.misses++
	return Match{}, false
}

// LookupTimedRaw finds a flow by raw key, charging the thread.
func (e *EMC) LookupTimedRaw(th *cpu.Thread, key []byte, opts cuckoo.LookupOptions) (Match, bool) {
	v, ok := e.table.TimedLookup(th, key, opts)
	if ok {
		e.hits++
		return decodeRule(v), true
	}
	e.misses++
	return Match{}, false
}

// LookupHaloBAt finds a flow through a blocking accelerator lookup against
// a key already resident in simulated memory (e.g. inside a packet buffer).
func (e *EMC) LookupHaloBAt(th *cpu.Thread, unit *halo.Unit, keyAddr mem.Addr) (Match, bool) {
	v, ok := unit.LookupBAt(th, e.table.Base(), keyAddr)
	if ok {
		e.hits++
		return decodeRule(v), true
	}
	e.misses++
	return Match{}, false
}

// LookupHaloB finds a flow through a blocking accelerator lookup.
func (e *EMC) LookupHaloB(th *cpu.Thread, unit *halo.Unit, t packet.FiveTuple) (Match, bool) {
	v, ok := unit.LookupB(th, e.table.Base(), t.Packed())
	if ok {
		e.hits++
		return decodeRule(v), true
	}
	e.misses++
	return Match{}, false
}

// Learn installs a resolved flow by five-tuple.
func (e *EMC) Learn(t packet.FiveTuple, m Match) {
	e.LearnRaw(t.Packed(), m)
}

// LearnRaw installs a resolved flow by raw key, evicting the oldest learned
// flow if the table refuses the insert.
func (e *EMC) LearnRaw(key []byte, m Match) {
	if e.table.Update(key, encodeRule(m)) {
		return
	}
	placedInRing := false
	for attempt := 0; attempt < 4; attempt++ {
		err := e.table.Insert(key, encodeRule(m))
		if err == nil {
			e.inserts++
			if !placedInRing {
				e.evictRing = append(e.evictRing, string(key))
			}
			return
		}
		if err != cuckoo.ErrTableFull || len(e.evictRing) == 0 {
			return
		}
		// Evict the oldest learned flow and take over its ring slot.
		slot := e.evictNext % len(e.evictRing)
		victim := e.evictRing[slot]
		e.evictRing[slot] = string(key)
		e.evictNext++
		placedInRing = true
		e.table.Delete([]byte(victim))
	}
}
