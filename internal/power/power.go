// Package power provides the energy and area models behind the paper's
// Table 4 and its 48.2× energy-efficiency headline.
//
// The paper derives its numbers from McPAT and CACTI at 22 nm. Those tools
// are not reproducible here, so this package anchors an interpolation model
// on the paper's published tool outputs (the Table 4 rows) and the scaling
// relations the underlying circuits obey: TCAM match energy grows with
// searched bits, static power with capacity, and area with cell count.
// Between anchors, quantities interpolate in log-log space; outside, they
// extrapolate on the nearest segment's slope.
package power

import (
	"fmt"
	"math"
	"sort"
)

// Estimate is one structure's power/area characterisation, in the paper's
// units: chip tiles (1 tile = one core + its cache slice area), milliwatts
// of static power, and nanojoules per lookup query.
type Estimate struct {
	AreaTiles         float64
	StaticMW          float64
	DynamicNJPerQuery float64
}

// EnergyPerQueryNJ returns the total energy attributable to one query at a
// given query rate (queries/second): dynamic energy plus the static power
// amortised over the inter-query interval.
func (e Estimate) EnergyPerQueryNJ(queriesPerSecond float64) float64 {
	if queriesPerSecond <= 0 {
		return e.DynamicNJPerQuery
	}
	staticNJ := e.StaticMW * 1e6 / queriesPerSecond // mW→nW, /qps = nJ
	return e.DynamicNJPerQuery + staticNJ
}

// anchor is one calibrated capacity point.
type anchor struct {
	bytes   float64
	area    float64
	static  float64
	dynamic float64
}

// tcamAnchors are the paper's Table 4 rows (22 nm McPAT/CACTI outputs).
var tcamAnchors = []anchor{
	{bytes: 1 << 10, area: 0.001, static: 71.1, dynamic: 0.04},
	{bytes: 10 << 10, area: 0.066, static: 235.3, dynamic: 0.37},
	{bytes: 100 << 10, area: 1.044, static: 3850.5, dynamic: 13.84},
	{bytes: 1 << 20, area: 9.343, static: 26733.1, dynamic: 84.82},
}

// SRAM-TCAM scaling versus a same-capacity TCAM (paper §6.4, citing the
// Z-TCAM line of work): ~45% less power, ~57% less area.
const (
	sramPowerScale = 0.55
	sramAreaScale  = 0.43
)

// interp evaluates a log-log piecewise-linear fit at x.
func interp(x float64, pick func(anchor) float64) float64 {
	a := tcamAnchors
	lx := math.Log(x)
	i := sort.Search(len(a), func(i int) bool { return a[i].bytes >= x })
	switch {
	case i == 0:
		i = 1
	case i >= len(a):
		i = len(a) - 1
	}
	x0, x1 := math.Log(a[i-1].bytes), math.Log(a[i].bytes)
	y0, y1 := math.Log(pick(a[i-1])), math.Log(pick(a[i]))
	t := (lx - x0) / (x1 - x0)
	return math.Exp(y0 + t*(y1-y0))
}

// TCAMEstimate characterises a classic TCAM of the given capacity.
func TCAMEstimate(capacityBytes uint64) Estimate {
	if capacityBytes == 0 {
		return Estimate{}
	}
	x := float64(capacityBytes)
	return Estimate{
		AreaTiles:         interp(x, func(a anchor) float64 { return a.area }),
		StaticMW:          interp(x, func(a anchor) float64 { return a.static }),
		DynamicNJPerQuery: interp(x, func(a anchor) float64 { return a.dynamic }),
	}
}

// SRAMTCAMEstimate characterises an SRAM-based TCAM of the given capacity.
func SRAMTCAMEstimate(capacityBytes uint64) Estimate {
	e := TCAMEstimate(capacityBytes)
	e.AreaTiles *= sramAreaScale
	e.StaticMW *= sramPowerScale
	e.DynamicNJPerQuery *= sramPowerScale
	return e
}

// HALO's per-accelerator characterisation (paper Table 4): the accelerator
// is a handful of hash/compare units plus a 640 B metadata cache, so its
// cost is capacity-independent.
const (
	haloAreaTiles   = 0.012
	haloStaticMW    = 97.2
	haloDynamicNJ   = 1.76
	haloAccelCount  = 16
	haloAreaPercent = 1.2 // of total chip area, paper §6.4
)

// HaloAcceleratorEstimate characterises one HALO accelerator.
func HaloAcceleratorEstimate() Estimate {
	return Estimate{AreaTiles: haloAreaTiles, StaticMW: haloStaticMW, DynamicNJPerQuery: haloDynamicNJ}
}

// HaloChipEstimate characterises the full 16-accelerator installation.
func HaloChipEstimate() Estimate {
	e := HaloAcceleratorEstimate()
	return Estimate{
		AreaTiles:         e.AreaTiles * haloAccelCount,
		StaticMW:          e.StaticMW * haloAccelCount,
		DynamicNJPerQuery: e.DynamicNJPerQuery, // one query runs on one accelerator
	}
}

// HaloChipAreaPercent reports the whole-chip area overhead (paper: 1.2%).
func HaloChipAreaPercent() float64 { return haloAreaPercent }

// EfficiencyVsTCAM returns how many times more energy-efficient HALO is
// than a TCAM of the given capacity on a pure per-query-energy basis —
// the paper's 48.2× headline uses the 1 MB TCAM point.
func EfficiencyVsTCAM(capacityBytes uint64) float64 {
	return TCAMEstimate(capacityBytes).DynamicNJPerQuery / HaloAcceleratorEstimate().DynamicNJPerQuery
}

// Table4Row is one row of the regenerated Table 4.
type Table4Row struct {
	Solution string
	Estimate
}

// Table4 regenerates the paper's Table 4.
func Table4() []Table4Row {
	rows := []Table4Row{}
	for _, capBytes := range []uint64{1 << 10, 10 << 10, 100 << 10, 1 << 20} {
		rows = append(rows, Table4Row{
			Solution: fmt.Sprintf("TCAM %s", sizeLabel(capBytes)),
			Estimate: TCAMEstimate(capBytes),
		})
	}
	rows = append(rows, Table4Row{Solution: "HALO (per accelerator)", Estimate: HaloAcceleratorEstimate()})
	return rows
}

func sizeLabel(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}
