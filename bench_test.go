package halo_test

import (
	"io"
	"runtime"
	"testing"

	"halo"
	"halo/internal/experiments"
	"halo/internal/runner"
)

// Per-figure benchmarks: each regenerates one of the paper's artefacts (at
// quick scale) and reports its headline numbers as custom metrics. Wall-clock
// ns/op measures the simulator itself; the sim-* metrics are the simulated
// results that correspond to the paper's figures.

func BenchmarkFig3PacketBreakdown(b *testing.B) {
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig3(experiments.QuickConfig())
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.CyclesPerPacket, "sim-cyc/pkt")
	b.ReportMetric(100*last.ClassificationShare, "sim-classify-%")
}

func BenchmarkFig4HashTableCacheBehavior(b *testing.B) {
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig4(experiments.QuickConfig())
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.LLCMPKL, "sim-llc-mpkl")
}

func BenchmarkTable1InstructionProfile(b *testing.B) {
	var res *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable1(experiments.QuickConfig())
	}
	b.ReportMetric(res.InstructionsPerLookup, "sim-instr/lookup")
	b.ReportMetric(100*res.MemoryShare, "sim-memory-%")
}

func BenchmarkLockOverhead(b *testing.B) {
	var res *experiments.LockOverheadResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunLockOverhead(experiments.QuickConfig())
	}
	b.ReportMetric(100*res.LockSharePct, "sim-lock-%")
	b.ReportMetric(res.RemoteOverLLC, "sim-remote/llc")
}

func BenchmarkFig8FlowRegister(b *testing.B) {
	var res *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig8(experiments.QuickConfig())
	}
	// 32-bit register estimating 64 flows: the paper's design point.
	for _, pt := range res.Points {
		if pt.RegisterBits == 32 && pt.Flows == 64 {
			b.ReportMetric(100*pt.MeanRelErr, "sim-relerr-%")
		}
	}
}

func BenchmarkFig9SingleLookup(b *testing.B) {
	var res *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig9(experiments.QuickConfig())
	}
	if pt, ok := res.Point(experiments.ModeHaloB, 1<<17, 0.75); ok {
		b.ReportMetric(pt.Normalized, "sim-haloB-speedup")
	}
	if pt, ok := res.Point(experiments.ModeHaloNB, 1<<17, 0.75); ok {
		b.ReportMetric(pt.Normalized, "sim-haloNB-speedup")
	}
}

func BenchmarkFig10LatencyBreakdown(b *testing.B) {
	var res *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig10(experiments.QuickConfig())
	}
	sw, _ := res.Row("software", "llc")
	ha, _ := res.Row("halo", "llc")
	b.ReportMetric(sw.DataAcc/ha.DataAcc, "sim-dataaccess-gain")
	b.ReportMetric(sw.Compute/ha.Compute, "sim-compute-gain")
}

func BenchmarkFig11TupleSpaceSearch(b *testing.B) {
	var res *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig11(experiments.QuickConfig())
	}
	if pt, ok := res.Point(experiments.ModeHaloNB, 20); ok {
		b.ReportMetric(pt.NormalizedToSoft, "sim-NB20-speedup")
	}
}

func BenchmarkFig12Collocation(b *testing.B) {
	var res *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig12(experiments.QuickConfig())
	}
	if pt, ok := res.Point("snortlite", 100_000, "software"); ok {
		b.ReportMetric(100*pt.ThroughputDrop, "sim-swdrop-%")
	}
	if pt, ok := res.Point("snortlite", 100_000, "halo"); ok {
		b.ReportMetric(100*pt.ThroughputDrop, "sim-halodrop-%")
	}
}

func BenchmarkTable4PowerArea(b *testing.B) {
	var res *experiments.Table4Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable4(experiments.QuickConfig())
	}
	b.ReportMetric(res.EfficiencyVs1MB, "sim-efficiency-x")
}

func BenchmarkFig13NFSpeedup(b *testing.B) {
	var res *experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig13(experiments.QuickConfig())
	}
	if pt, ok := res.Point("nat", 100_000); ok {
		b.ReportMetric(pt.Speedup, "sim-nat-speedup")
	}
}

func BenchmarkAblations(b *testing.B) {
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunAblations(experiments.QuickConfig())
	}
	b.ReportMetric(res.MetaCacheSpeedup, "sim-metacache-gain")
}

// Full-suite benchmarks: the serial path against the worker pool at
// several widths. On a multi-core box the pooled variants show the
// wall-clock win of sharding sweep points; on one core they bound the
// pool's overhead.

func BenchmarkRunAllSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunAll(experiments.QuickConfig(), io.Discard)
	}
}

func benchRunAllPool(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := runner.RunAll(runner.Options{Workers: workers},
			experiments.QuickConfig(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllPool1(b *testing.B) { benchRunAllPool(b, 1) }

func BenchmarkRunAllPool4(b *testing.B) { benchRunAllPool(b, 4) }

func BenchmarkRunAllPoolMax(b *testing.B) { benchRunAllPool(b, runtime.GOMAXPROCS(0)) }

// Primitive benchmarks: simulator throughput of the hot operations (how many
// simulated lookups per wall-clock second this reproduction achieves).

func benchTable(b *testing.B, sys *halo.System, entries uint64) *halo.Table {
	b.Helper()
	table, err := sys.NewTable(halo.TableConfig{Entries: entries, KeyLen: 16})
	if err != nil {
		b.Fatal(err)
	}
	fill := entries * 3 / 4
	for i := uint64(0); i < fill; i++ {
		if err := table.Insert(facadeKey(i), i); err != nil {
			b.Fatal(err)
		}
	}
	sys.WarmTable(table)
	return table
}

func BenchmarkSoftwareLookup(b *testing.B) {
	sys := halo.New()
	table := benchTable(b, sys, 1<<14)
	th := sys.Thread(0)
	opts := halo.SoftwareLookupDefaults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.TimedLookup(th, facadeKey(uint64(i)%(3<<12)), opts)
	}
	b.ReportMetric(float64(th.Now)/float64(b.N), "sim-cyc/lookup")
}

func BenchmarkHaloLookupB(b *testing.B) {
	sys := halo.New()
	table := benchTable(b, sys, 1<<14)
	th := sys.Thread(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Unit().LookupB(th, table.Base(), facadeKey(uint64(i)%(3<<12)))
	}
	b.ReportMetric(float64(th.Now)/float64(b.N), "sim-cyc/lookup")
}

func BenchmarkHaloLookupNBBatch64(b *testing.B) {
	sys := halo.New()
	table := benchTable(b, sys, 1<<14)
	th := sys.Thread(0)
	queries := make([]halo.NBQuery, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range queries {
			queries[j] = halo.NBQuery{TableAddr: table.Base(), Key: facadeKey(uint64(i*64+j) % (3 << 12))}
		}
		sys.Unit().LookupManyNB(th, queries)
	}
	b.ReportMetric(float64(th.Now)/float64(b.N*64), "sim-cyc/lookup")
}

func BenchmarkCuckooInsert(b *testing.B) {
	sys := halo.New()
	table, err := sys.NewTable(halo.TableConfig{Entries: 1 << 22, KeyLen: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := table.Insert(facadeKey(uint64(i)), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSwitchPacketSoftware(b *testing.B) {
	benchSwitch(b, halo.DefaultSwitchConfig())
}

func BenchmarkSwitchPacketHalo(b *testing.B) {
	benchSwitch(b, halo.HaloSwitchConfig())
}

func benchSwitch(b *testing.B, cfg halo.SwitchConfig) {
	b.Helper()
	sys := halo.New()
	sw, err := sys.NewSwitch(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mask := halo.Mask{SrcIPBits: 0, DstIPBits: 0, SrcPortWild: true}
	if err := sw.Mega.InsertRule(mask, halo.FiveTuple{DstPort: 80, Proto: 17},
		halo.Match{RuleID: 1}); err != nil {
		b.Fatal(err)
	}
	sw.Warm()
	th := sys.Thread(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := halo.Packet{SrcIP: uint32(i), DstIP: 2, SrcPort: uint16(i), DstPort: 80, Proto: 17}
		sw.ProcessPacket(th, &pkt)
	}
	b.ReportMetric(sw.CyclesPerPacket(), "sim-cyc/pkt")
}

func BenchmarkFlowRegisterObserve(b *testing.B) {
	r := halo.New().Unit().Accelerator(0).FlowRegister()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Observe(uint64(i) * 0x9e3779b97f4a7c15)
	}
}
