package packet

import (
	"testing"
	"testing/quick"
)

func samplePacket() Packet {
	return Packet{
		SrcMAC:       [6]byte{1, 2, 3, 4, 5, 6},
		DstMAC:       [6]byte{7, 8, 9, 10, 11, 12},
		SrcIP:        0x0a000001,
		DstIP:        0x0a000002,
		SrcPort:      4242,
		DstPort:      80,
		Proto:        ProtoUDP,
		PayloadBytes: 22,
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	p := samplePacket()
	buf := make([]byte, HeaderBytes)
	if err := p.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestMarshalParsePropertyRoundTrip(t *testing.T) {
	check := func(srcIP, dstIP uint32, srcPort, dstPort uint16, tcp bool, payload uint8) bool {
		p := Packet{
			SrcIP: srcIP, DstIP: dstIP,
			SrcPort: srcPort, DstPort: dstPort,
			Proto:        ProtoUDP,
			PayloadBytes: int(payload),
		}
		if tcp {
			p.Proto = ProtoTCP
		}
		buf := make([]byte, HeaderBytes)
		if err := p.Marshal(buf); err != nil {
			return false
		}
		got, err := Parse(buf)
		return err == nil && got == p
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(make([]byte, 10)); err != ErrTruncated {
		t.Fatalf("truncated err = %v", err)
	}
	p := samplePacket()
	buf := make([]byte, HeaderBytes)
	p.Marshal(buf)
	buf[12], buf[13] = 0x86, 0xDD // IPv6 ethertype
	if _, err := Parse(buf); err != ErrNotIPv4 {
		t.Fatalf("non-IPv4 err = %v", err)
	}
	p.Marshal(buf)
	buf[14] = 0x46 // IHL 6
	if _, err := Parse(buf); err != ErrBadIHL {
		t.Fatalf("IHL err = %v", err)
	}
	p.Marshal(buf)
	buf[23] = 1 // ICMP
	if _, err := Parse(buf); err != ErrUnknownProto {
		t.Fatalf("proto err = %v", err)
	}
}

func TestMarshalBufferTooSmall(t *testing.T) {
	p := samplePacket()
	if err := p.Marshal(make([]byte, 10)); err == nil {
		t.Fatal("undersized marshal buffer accepted")
	}
}

func TestFiveTuplePackUnpack(t *testing.T) {
	check := func(srcIP, dstIP uint32, srcPort, dstPort uint16, proto uint8) bool {
		tup := FiveTuple{srcIP, dstIP, srcPort, dstPort, proto}
		return UnpackFiveTuple(tup.Packed()) == tup
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyExtraction(t *testing.T) {
	p := samplePacket()
	k := p.Key()
	if k.SrcIP != p.SrcIP || k.DstPort != p.DstPort || k.Proto != ProtoUDP {
		t.Fatalf("key = %+v", k)
	}
	if len(k.Packed()) != KeyBytes {
		t.Fatalf("packed key length = %d", len(k.Packed()))
	}
}

func TestPutHeaderKeyMatchesMarshalWindow(t *testing.T) {
	check := func(srcIP, dstIP uint32, srcPort, dstPort uint16, tcp bool) bool {
		tup := FiveTuple{SrcIP: srcIP, DstIP: dstIP, SrcPort: srcPort, DstPort: dstPort, Proto: ProtoUDP}
		if tcp {
			tup.Proto = ProtoTCP
		}
		p := Packet{SrcIP: tup.SrcIP, DstIP: tup.DstIP, SrcPort: tup.SrcPort, DstPort: tup.DstPort, Proto: tup.Proto}
		var wire [HeaderBytes]byte
		if err := p.Marshal(wire[:]); err != nil {
			return false
		}
		var got [HeaderKeyLen]byte
		tup.PutHeaderKey(got[:])
		want := wire[HeaderKeyOff : HeaderKeyOff+HeaderKeyLen]
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFiveTupleString(t *testing.T) {
	tup := FiveTuple{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 1234, DstPort: 80, Proto: 6}
	want := "10.0.0.1:1234->192.168.1.1:80/6"
	if got := tup.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestDistinctTuplesPackDistinct(t *testing.T) {
	a := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	b := a
	b.Proto = 17
	pa, pb := a.Packed(), b.Packed()
	same := true
	for i := range pa {
		if pa[i] != pb[i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct tuples packed identically")
	}
}
