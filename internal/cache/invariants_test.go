package cache

import (
	"testing"

	"halo/internal/mem"
	"halo/internal/noc"
	"halo/internal/sim"
)

// checkInvariants asserts the structural properties the hierarchy must
// preserve after any access sequence:
//
//  1. inclusivity: a line in a core's L1 is in its L2; a line in any private
//     cache is in the LLC with that core's directory bit set;
//  2. single-writer: at most one core holds a line in M (or E) state;
//  3. directory soundness: a set directory bit implies the core actually
//     holds the line (the converse — stale set bits — would only cost
//     spurious snoops, but this model keeps the directory exact);
//  4. no line is simultaneously M in one core and S in another.
func checkInvariants(t *testing.T, h *Hierarchy) {
	t.Helper()
	type holder struct {
		core  int
		state State
	}
	holders := map[mem.Addr][]holder{}
	for core := 0; core < h.cfg.Cores; core++ {
		for _, set := range h.l1[core].sets {
			for _, l := range set {
				if !l.valid {
					continue
				}
				if h.l2[core].peek(l.tag) == nil {
					t.Fatalf("inclusivity: %#x in core %d L1 but not L2", l.tag, core)
				}
			}
		}
		for _, set := range h.l2[core].sets {
			for _, l := range set {
				if !l.valid {
					continue
				}
				home := h.homeSlice(l.tag)
				ll := h.llc[home].peek(l.tag)
				if ll == nil {
					t.Fatalf("inclusivity: %#x in core %d L2 but not LLC", l.tag, core)
				}
				if ll.coreValid&(1<<core) == 0 {
					t.Fatalf("directory: %#x held by core %d but bit unset", l.tag, core)
				}
				holders[l.tag] = append(holders[l.tag], holder{core, l.state})
			}
		}
	}
	// Directory bits point at actual holders.
	for s := 0; s < h.cfg.Slices; s++ {
		for _, set := range h.llc[s].sets {
			for _, l := range set {
				if !l.valid {
					continue
				}
				for core := 0; core < h.cfg.Cores; core++ {
					if l.coreValid&(1<<core) == 0 {
						continue
					}
					if h.l2[core].peek(l.tag) == nil && h.l1[core].peek(l.tag) == nil {
						t.Fatalf("directory: bit set for core %d on %#x but line absent", core, l.tag)
					}
				}
			}
		}
	}
	// Single-writer / no M+S mixes.
	for addr, hs := range holders {
		exclusive := 0
		for _, x := range hs {
			if x.state == Modified || x.state == Exclusive {
				exclusive++
			}
		}
		if exclusive > 0 && len(hs) > 1 {
			t.Fatalf("coherence: %#x held by %d cores with an exclusive copy (%v)", addr, len(hs), hs)
		}
	}
}

func TestCoherenceInvariantsUnderRandomTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 8
	cfg.Slices = 8
	cfg.L1SizeBytes = 8 * mem.LineSize
	cfg.L1Ways = 2
	cfg.L2SizeBytes = 32 * mem.LineSize
	cfg.L2Ways = 4
	cfg.LLCSliceBytes = 32 * mem.LineSize
	cfg.LLCWays = 4
	ring := noc.NewRing(noc.RingConfig{Stops: 8, HopCycles: 2, InjectDelay: 3})
	h := New(cfg, ring, mem.NewDRAM(mem.DefaultDRAMConfig()))

	rng := sim.NewRand(1234)
	now := sim.Cycle(0)
	// Tight address pool forces constant sharing, invalidation, eviction
	// and back-invalidation.
	const poolLines = 96
	for i := 0; i < 30000; i++ {
		addr := mem.Addr(0x4000 + rng.Intn(poolLines)*mem.LineSize)
		core := rng.Intn(cfg.Cores)
		switch rng.Intn(8) {
		case 0, 1:
			h.CoreAccess(now, core, addr, true)
		case 2:
			h.AccelAccess(now, rng.Intn(cfg.Slices), addr, false)
		case 3:
			h.AccelAccess(now, rng.Intn(cfg.Slices), addr, true)
		case 4:
			h.SnapshotRead(now, core, addr)
		case 5:
			h.DMAWrite(addr)
		case 6:
			h.LockLine(now, rng.Intn(cfg.Slices), addr, now+sim.Cycle(rng.Intn(200)))
		default:
			h.CoreAccess(now, core, addr, false)
		}
		now += sim.Cycle(rng.Intn(50))
		if i%500 == 0 {
			checkInvariants(t, h)
		}
	}
	checkInvariants(t, h)
}

func TestCoherenceInvariantsFullSizeHierarchy(t *testing.T) {
	h := testHierarchy()
	rng := sim.NewRand(99)
	now := sim.Cycle(0)
	for i := 0; i < 20000; i++ {
		addr := mem.Addr(0x10000 + rng.Intn(4096)*mem.LineSize)
		core := rng.Intn(16)
		if rng.Intn(3) == 0 {
			h.CoreAccess(now, core, addr, true)
		} else {
			h.CoreAccess(now, core, addr, false)
		}
		if rng.Intn(5) == 0 {
			h.AccelAccess(now, rng.Intn(16), addr, rng.Intn(4) == 0)
		}
		now += sim.Cycle(rng.Intn(20))
	}
	checkInvariants(t, h)
}

func TestLatencyNeverNegativeUnderRandomTraffic(t *testing.T) {
	h := testHierarchy()
	rng := sim.NewRand(7)
	now := sim.Cycle(0)
	for i := 0; i < 10000; i++ {
		addr := mem.Addr(rng.Intn(1 << 20))
		res := h.CoreAccess(now, rng.Intn(16), addr, rng.Intn(2) == 0)
		if res.Done < res.Issued {
			t.Fatalf("access completed before issue: %+v", res)
		}
		if res.Done < now {
			t.Fatalf("access completed in the past")
		}
		now += sim.Cycle(rng.Intn(30))
	}
}
