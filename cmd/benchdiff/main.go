// Command benchdiff compares two halo-bench/v1 (or halo-stats/v1)
// documents and classifies every metric delta with the BLIS effect-size
// tiers: significant / inconclusive / equivalent / regression. It renders
// the comparison as a table, optionally writes a machine-readable verdict,
// and exits non-zero when a gated hot-path metric regressed — the CI gate
// that turns "should be faster" commit messages into checked artifacts.
//
// Usage:
//
//	benchdiff baseline.json new.json                 # table + gate on ns/op,allocs/op
//	benchdiff -threshold 0.10 base.json new.json     # tolerate 10% before failing
//	benchdiff -gate allocs/op base.json new.json     # gate only machine-independent allocs
//	benchdiff -gate '' base.json new.json            # report-only: never fails
//	benchdiff -allow FlowServe/mix=zipf/shards=8 ... # named regressions warn, not fail
//	benchdiff -json verdict.json base.json new.json  # machine-readable verdict artifact
//	benchdiff -ignore-config base.json new.json      # skip the workload-identity check
//
// Exit codes: 0 comparison clean (or every regression allowed), 1 gated
// regression or mismatched workloads, 2 usage error.
//
// The two documents must describe the same workload: seed lists and config
// maps are compared before any numbers are (see cmd/benchjson -seeds
// / -config), and a mismatch is a refusal, not a silent apples-to-oranges
// diff. Environment differences (Go version, GOOS/GOARCH, CPU) only warn:
// comparing machine-independent metrics like allocs/op across machines is
// a supported use — gating wall-clock ns/op is only meaningful between
// runs on the same box.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"halo/internal/benchjson"
	"halo/internal/listflag"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// verdictDoc is the machine-readable output (-json): the full classified
// comparison plus the gate result.
type verdictDoc struct {
	Schema     string                `json:"schema"`
	Base       string                `json:"base"`
	New        string                `json:"new"`
	Gate       []string              `json:"gate,omitempty"`
	Allow      []string              `json:"allow,omitempty"`
	Comparison *benchjson.Comparison `json:"comparison"`
	Failures   []string              `json:"failures,omitempty"`
	Warnings   []string              `json:"warnings,omitempty"`
	Pass       bool                  `json:"pass"`
}

// verdictSchemaVersion identifies the -json verdict layout.
const verdictSchemaVersion = "halo-benchdiff/v1"

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold    = fs.Float64("threshold", 0.05, "relative worsening beyond which a gated metric is a regression")
		significant  = fs.Float64("significant", 0.20, "relative improvement beyond which a delta is significant")
		equivalence  = fs.Float64("equivalence", 0.05, "relative band within which a delta is equivalent")
		gateFl       = fs.String("gate", "ns/op,allocs/op", "comma-separated metrics the exit code gates on ('' = report only)")
		allowFl      = fs.String("allow", "", "comma-separated benchmark names whose regressions warn instead of fail")
		jsonPath     = fs.String("json", "", "write the machine-readable halo-benchdiff/v1 verdict to this file")
		ignoreConfig = fs.Bool("ignore-config", false, "compare even when seed lists or config maps disagree")
		quiet        = fs.Bool("quiet", false, "suppress the table; print only the verdict line")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [flags] baseline.json new.json")
		fs.PrintDefaults()
		return 2
	}
	basePath, newPath := fs.Arg(0), fs.Arg(1)

	var gate []string
	if *gateFl != "" {
		var err error
		if gate, err = listflag.Strings("gate", *gateFl); err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
	}
	allow := map[string]bool{}
	var allowList []string
	if *allowFl != "" {
		toks, err := listflag.Strings("allow", *allowFl)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		allowList = toks
		for _, t := range toks {
			allow[t] = true
		}
	}

	base, err := load(basePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %s: %v\n", basePath, err)
		return 2
	}
	cur, err := load(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %s: %v\n", newPath, err)
		return 2
	}

	warnings, err := benchjson.CheckComparable(base, cur)
	if err != nil {
		if !*ignoreConfig {
			fmt.Fprintf(stderr, "benchdiff: documents describe different workloads: %v\n", err)
			fmt.Fprintln(stderr, "benchdiff: refusing to diff apples to oranges (-ignore-config overrides)")
			return 1
		}
		fmt.Fprintf(stderr, "benchdiff: warning: workload mismatch ignored: %v\n", err)
	}
	for _, w := range warnings {
		fmt.Fprintf(stderr, "benchdiff: note: %s\n", w)
	}

	th := benchjson.Thresholds{Significant: *significant, Equivalence: *equivalence, Regression: *threshold}
	cmp := benchjson.Compare(base, cur, th)
	res := cmp.Gate(gate, allow)

	if !*quiet {
		renderTable(stdout, cmp)
	}
	for _, w := range res.Warnings {
		fmt.Fprintf(stderr, "benchdiff: warning: %s\n", w)
	}
	for _, f := range res.Failures {
		fmt.Fprintf(stderr, "benchdiff: FAIL: %s\n", f)
	}

	if *jsonPath != "" {
		v := verdictDoc{
			Schema: verdictSchemaVersion, Base: basePath, New: newPath,
			Gate: gate, Allow: allowList, Comparison: cmp,
			Failures: res.Failures, Warnings: res.Warnings, Pass: res.Pass(),
		}
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
	}

	if res.Pass() {
		if len(gate) == 0 {
			fmt.Fprintf(stderr, "benchdiff: OK (report only, no gated metrics)\n")
		} else {
			fmt.Fprintf(stderr, "benchdiff: OK (%d benchmarks, gate %v)\n", len(cmp.Benches), gate)
		}
		return 0
	}
	fmt.Fprintf(stderr, "benchdiff: %d gated regression(s)\n", len(res.Failures))
	return 1
}

func load(path string) (*benchjson.Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return benchjson.DecodeAny(data)
}

// renderTable prints every aligned benchmark's metric deltas.
func renderTable(w io.Writer, cmp *benchjson.Comparison) {
	fmt.Fprintf(w, "%-44s %-16s %14s %14s %9s  %s\n",
		"benchmark", "metric", "base", "new", "delta", "class")
	for _, b := range cmp.Benches {
		switch {
		case b.BaseOnly:
			fmt.Fprintf(w, "%-44s %-16s %14s %14s %9s  %s\n", b.Name, "-", "-", "missing", "-", "base-only")
			continue
		case b.NewOnly:
			fmt.Fprintf(w, "%-44s %-16s %14s %14s %9s  %s\n", b.Name, "-", "missing", "-", "-", "new-only")
			continue
		}
		for _, m := range b.Metrics {
			delta := "n/a"
			if m.Improvement != nil {
				// Render the raw relative change (positive = value went up),
				// which readers expect from a diff; Class already encodes
				// whether that direction is good.
				rel := -*m.Improvement
				if benchjson.HigherIsBetter(m.Metric) {
					rel = *m.Improvement
				}
				delta = fmt.Sprintf("%+.1f%%", rel*100)
			}
			fmt.Fprintf(w, "%-44s %-16s %14.4g %14.4g %9s  %s\n",
				b.Name, m.Metric, m.Base, m.New, delta, m.Class)
		}
	}
}
