// Package packet models the network packets a virtual switch classifies:
// Ethernet/IPv4/UDP-or-TCP headers, their wire serialization, and the
// 5-tuple flow key extraction the datapath performs per packet.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol numbers (IPv4 protocol field).
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// HeaderBytes is the serialized header size: 14 (Ethernet) + 20 (IPv4) +
// 8 (UDP-sized L4 prefix; TCP uses the same first 8 bytes for ports).
const HeaderBytes = 42

// EtherTypeIPv4 is the only ethertype the datapath handles.
const EtherTypeIPv4 uint16 = 0x0800

// Packet is one network packet's parsed header plus payload size. Virtual
// switch performance depends only on headers (paper §3.1 note 1), so no
// payload bytes are carried.
type Packet struct {
	SrcMAC, DstMAC [6]byte
	SrcIP, DstIP   uint32
	SrcPort        uint16
	DstPort        uint16
	Proto          uint8
	PayloadBytes   int
}

// FiveTuple is the canonical flow key: src/dst IP, src/dst port, protocol,
// packed into 13 bytes.
type FiveTuple struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// KeyBytes is the packed five-tuple size.
const KeyBytes = 13

// Key returns the packet's five-tuple.
func (p *Packet) Key() FiveTuple {
	return FiveTuple{SrcIP: p.SrcIP, DstIP: p.DstIP, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
}

// Pack serialises the tuple into buf (at least KeyBytes long).
func (t FiveTuple) Pack(buf []byte) {
	binary.LittleEndian.PutUint32(buf[0:], t.SrcIP)
	binary.LittleEndian.PutUint32(buf[4:], t.DstIP)
	binary.LittleEndian.PutUint16(buf[8:], t.SrcPort)
	binary.LittleEndian.PutUint16(buf[10:], t.DstPort)
	buf[12] = t.Proto
}

// Packed returns the tuple as a fresh key slice.
func (t FiveTuple) Packed() []byte {
	buf := make([]byte, KeyBytes)
	t.Pack(buf)
	return buf
}

// UnpackFiveTuple parses a packed tuple.
func UnpackFiveTuple(buf []byte) FiveTuple {
	return FiveTuple{
		SrcIP:   binary.LittleEndian.Uint32(buf[0:]),
		DstIP:   binary.LittleEndian.Uint32(buf[4:]),
		SrcPort: binary.LittleEndian.Uint16(buf[8:]),
		DstPort: binary.LittleEndian.Uint16(buf[10:]),
		Proto:   buf[12],
	}
}

func (t FiveTuple) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d",
		ipString(t.SrcIP), t.SrcPort, ipString(t.DstIP), t.DstPort, t.Proto)
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Marshal serialises the packet's headers into buf (>= HeaderBytes).
// Checksums are zeroed: the simulated switch never verifies them, as real
// virtual switches leave them to NIC offloads.
func (p *Packet) Marshal(buf []byte) error {
	if len(buf) < HeaderBytes {
		return errors.New("packet: buffer too small")
	}
	copy(buf[0:6], p.DstMAC[:])
	copy(buf[6:12], p.SrcMAC[:])
	binary.BigEndian.PutUint16(buf[12:], EtherTypeIPv4)
	// IPv4 header.
	buf[14] = 0x45 // version 4, IHL 5
	buf[15] = 0
	totalLen := 20 + 8 + p.PayloadBytes
	binary.BigEndian.PutUint16(buf[16:], uint16(totalLen))
	binary.BigEndian.PutUint16(buf[18:], 0) // identification
	binary.BigEndian.PutUint16(buf[20:], 0) // flags+fragment
	buf[22] = 64                            // TTL
	buf[23] = p.Proto
	binary.BigEndian.PutUint16(buf[24:], 0) // checksum (offloaded)
	binary.BigEndian.PutUint32(buf[26:], p.SrcIP)
	binary.BigEndian.PutUint32(buf[30:], p.DstIP)
	// L4 ports + length/seq prefix.
	binary.BigEndian.PutUint16(buf[34:], p.SrcPort)
	binary.BigEndian.PutUint16(buf[36:], p.DstPort)
	binary.BigEndian.PutUint32(buf[38:], 0)
	return nil
}

// HeaderKeyOff and HeaderKeyLen delimit the contiguous wire-header region
// that uniquely identifies a flow in this packet format (IP id through the
// L4 ports: id/flags/TTL are constant in generated traffic, so the region is
// equivalent to the five-tuple). Datapaths that key hash tables on raw
// header bytes — the way RSS-style header hashing does — use this window,
// which lets a HALO lookup point its key address straight into the
// DDIO-delivered packet buffer.
const (
	HeaderKeyOff = 18
	HeaderKeyLen = 20
)

// PutHeaderKey writes the canonical raw-header key for a five-tuple into buf
// (at least HeaderKeyLen long): the exact HeaderKeyLen bytes a marshalled
// packet with this tuple carries at HeaderKeyOff. Hot paths use this with a
// reused buffer; HeaderKey wraps it when a fresh slice is wanted.
func (t FiveTuple) PutHeaderKey(buf []byte) {
	_ = buf[HeaderKeyLen-1]
	binary.BigEndian.PutUint32(buf[0:], 0) // IP identification + flags/fragment
	buf[4] = 64                            // TTL
	buf[5] = t.Proto
	binary.BigEndian.PutUint16(buf[6:], 0) // checksum (offloaded)
	binary.BigEndian.PutUint32(buf[8:], t.SrcIP)
	binary.BigEndian.PutUint32(buf[12:], t.DstIP)
	binary.BigEndian.PutUint16(buf[16:], t.SrcPort)
	binary.BigEndian.PutUint16(buf[18:], t.DstPort)
}

// HeaderKey returns the canonical raw-header key for a five-tuple as a fresh
// slice.
func (t FiveTuple) HeaderKey() []byte {
	buf := make([]byte, HeaderKeyLen)
	t.PutHeaderKey(buf)
	return buf
}

// Parse errors.
var (
	ErrTruncated    = errors.New("packet: truncated header")
	ErrNotIPv4      = errors.New("packet: not IPv4")
	ErrBadIHL       = errors.New("packet: unsupported IP header length")
	ErrUnknownProto = errors.New("packet: unsupported L4 protocol")
)

// Parse decodes headers from wire bytes.
func Parse(buf []byte) (Packet, error) {
	var p Packet
	if len(buf) < HeaderBytes {
		return p, ErrTruncated
	}
	copy(p.DstMAC[:], buf[0:6])
	copy(p.SrcMAC[:], buf[6:12])
	if binary.BigEndian.Uint16(buf[12:]) != EtherTypeIPv4 {
		return p, ErrNotIPv4
	}
	if buf[14] != 0x45 {
		return p, ErrBadIHL
	}
	p.Proto = buf[23]
	if p.Proto != ProtoTCP && p.Proto != ProtoUDP {
		return p, ErrUnknownProto
	}
	p.SrcIP = binary.BigEndian.Uint32(buf[26:])
	p.DstIP = binary.BigEndian.Uint32(buf[30:])
	p.SrcPort = binary.BigEndian.Uint16(buf[34:])
	p.DstPort = binary.BigEndian.Uint16(buf[36:])
	totalLen := int(binary.BigEndian.Uint16(buf[16:]))
	p.PayloadBytes = totalLen - 28
	if p.PayloadBytes < 0 {
		p.PayloadBytes = 0
	}
	return p, nil
}
