package flowwire

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"halo/internal/flowserve"
	"halo/internal/stats"
)

// slowLookupServer is a hand-rolled single-connection server that answers
// HELLO immediately but delays each of the first `slow` LOOKUP replies by
// `delay` — the deliberately slow server the timeout-race regression needs.
// Lookup replies carry value = first key byte, so a caller can prove the
// reply it got belongs to its own request and not to an earlier timed-out
// one.
func slowLookupServer(t *testing.T, slow int, delay time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		var wmu sync.Mutex
		slowLeft := slow
		for {
			var f Frame
			if err := ReadFrame(nc, 0, &f); err != nil {
				return
			}
			switch f.Op {
			case OpHello:
				payload := appendHelloReply(nil, HelloInfo{KeyLen: 20, Shards: 1, Capacity: 64})
				wmu.Lock()
				nc.Write(AppendFrame(nil, &Frame{Op: OpHello, ReqID: f.ReqID, Payload: payload}))
				wmu.Unlock()
			case OpLookup:
				// Replies are concurrent so a delayed one does not
				// head-of-line block the requests behind it.
				wait := time.Duration(0)
				if slowLeft > 0 {
					slowLeft--
					wait = delay
				}
				go func(reqID uint64, keyByte byte, wait time.Duration) {
					time.Sleep(wait)
					p := make([]byte, 9)
					p[0] = 1
					binary.LittleEndian.PutUint64(p[1:], uint64(keyByte))
					wmu.Lock()
					nc.Write(AppendFrame(nil, &Frame{Op: OpLookup, ReqID: reqID, Payload: p}))
					wmu.Unlock()
				}(f.ReqID, f.Payload[0], wait)
			}
		}
	}()
	return ln.Addr().String()
}

// TestLateReplyAfterTimeout pins the readLoop/timeout race: a reply that
// arrives after its call timed out must be discarded (counted as a late
// reply), must not poison the client, and must never be delivered to a
// later caller — the later caller gets its own reply, matched by reqID.
func TestLateReplyAfterTimeout(t *testing.T) {
	addr := slowLookupServer(t, 1, 400*time.Millisecond)
	cl, err := Dial(addr, Options{CallTimeout: 60 * time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	k1, k2 := wkey(0x11), wkey(0x22)
	if _, ok := cl.Lookup(k1); ok {
		t.Fatal("timed-out lookup reported a hit")
	}
	c := cl.Counters()
	if c.Timeouts != 1 || c.Errors != 1 {
		t.Fatalf("counters after timeout = %+v, want 1 timeout, 1 error", c)
	}
	if err := cl.Err(); err != nil {
		t.Fatalf("a per-call timeout poisoned the client: %v", err)
	}

	// The second call races the first call's late reply through the same
	// connection; it must get ITS value (0x22), not the stale 0x11.
	v, ok := cl.Lookup(k2)
	if !ok || v != 0x22 {
		t.Fatalf("lookup after timeout = (%#x,%v), want (0x22,true)", v, ok)
	}

	// The late reply eventually lands and is discarded, not fatal.
	deadline := time.Now().Add(2 * time.Second)
	for cl.Counters().LateReplies == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("late reply never observed; counters %+v", cl.Counters())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cl.Err(); err != nil {
		t.Fatalf("late reply broke the client: %v", err)
	}
	// The connection is still fully usable after the discard.
	if v, ok := cl.Lookup(wkey(0x33)); !ok || v != 0x33 {
		t.Fatalf("lookup after late-reply discard = (%#x,%v)", v, ok)
	}

	snap := stats.NewSnapshot()
	cl.CollectInto(snap)
	if snap.Counter("flowwire.client.timeouts") != 1 || snap.Counter("flowwire.client.late_replies") != 1 {
		t.Fatalf("CollectInto counters = %v", snap.Counters)
	}
}

// TestWriteErrorMarksConnDead pins the post-write-error contract: once a
// write fails (here: the peer stops reading and the write deadline fires
// with the socket buffers full), the connection is explicitly dead — later
// calls fail fast instead of appending frames to a torn bufio stream — and
// the failure is sticky on the client.
func TestWriteErrorMarksConnDead(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		// Answer the HELLO, then go silent: never read another byte.
		var f Frame
		if err := ReadFrame(nc, 0, &f); err == nil && f.Op == OpHello {
			payload := appendHelloReply(nil, HelloInfo{KeyLen: 20, Shards: 1, Capacity: 64})
			nc.Write(AppendFrame(nil, &Frame{Op: OpHello, ReqID: f.ReqID, Payload: payload}))
		}
		accepted <- nc
	}()
	cl, err := Dial(ln.Addr().String(), Options{
		WriteTimeout: 50 * time.Millisecond,
		CallTimeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	defer func() {
		if nc := <-accepted; nc != nil {
			nc.Close()
		}
	}()

	// Pump large batches until the kernel buffers fill and the write
	// deadline fires. Each frame is ~80KB; a few dozen exceed any default
	// socket buffering.
	keys := make([][]byte, 4096)
	for i := range keys {
		keys[i] = wkey(uint64(i))
	}
	results := make([]flowserve.Result, len(keys))
	var sawErr bool
	for i := 0; i < 256; i++ {
		cl.LookupMany(keys, results)
		if cl.Err() != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("write against a non-reading peer never failed")
	}

	// The conn is dead: the next call returns the stored write error fast,
	// without attempting another write or waiting out a timeout.
	start := time.Now()
	if cl.Update(wkey(1), 9) {
		t.Fatal("Update succeeded on a dead connection")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("dead-conn call took %v, want fast failure", elapsed)
	}
	if cl.Counters().Errors == 0 {
		t.Fatal("coerced failures were not counted")
	}
	var ne net.Error
	if err := cl.Err(); err == nil || (!errors.As(err, &ne) && !errors.Is(err, ErrCallTimeout)) {
		t.Fatalf("sticky error = %v, want the underlying write error", err)
	}
}

// TestWriteDeadlineClearedBetweenCalls pins that a deadline armed for one
// write cannot fire under a later one: calls separated by more than the
// write timeout still succeed.
func TestWriteDeadlineClearedBetweenCalls(t *testing.T) {
	_, tbl, addr := startServer(t, flowserve.Config{Shards: 1, Entries: 256, KeyLen: 20}, Config{})
	if err := tbl.Insert(wkey(5), 55); err != nil {
		t.Fatal(err)
	}
	cl := dialTest(t, addr, Options{WriteTimeout: 40 * time.Millisecond})
	for i := 0; i < 3; i++ {
		if v, ok := cl.Lookup(wkey(5)); !ok || v != 55 {
			t.Fatalf("lookup %d = (%d,%v)", i, v, ok)
		}
		time.Sleep(90 * time.Millisecond) // well past the write timeout
	}
	if err := cl.Err(); err != nil {
		t.Fatal(err)
	}
	if c := cl.Counters(); c.Errors != 0 {
		t.Fatalf("idle gaps between calls produced errors: %+v", c)
	}
}

// TestClientErrorCounterOnServerGone pins satellite semantics for the
// silent-coercion fix: once the server is gone, reads keep returning misses
// (the interface contract) but every coerced failure is counted, so a load
// driver can tell "cold table" from "broken transport".
func TestClientErrorCounterOnServerGone(t *testing.T) {
	srv, tbl, addr := startServer(t, flowserve.Config{Shards: 1, Entries: 256, KeyLen: 20}, Config{})
	if err := tbl.Insert(wkey(1), 11); err != nil {
		t.Fatal(err)
	}
	cl := dialTest(t, addr, Options{CallTimeout: 2 * time.Second})
	if v, ok := cl.Lookup(wkey(1)); !ok || v != 11 {
		t.Fatalf("warmup lookup = (%d,%v)", v, ok)
	}
	if c := cl.Counters(); c.Errors != 0 {
		t.Fatalf("healthy run counted errors: %+v", c)
	}

	srv.Close()

	keys := [][]byte{wkey(1), wkey(2)}
	results := make([]flowserve.Result, 2)
	deadline := time.Now().Add(5 * time.Second)
	for cl.Counters().Errors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no coerced failure was ever counted")
		}
		if hits := cl.LookupMany(keys, results); hits != 0 {
			t.Fatalf("hits after server close = %d", hits)
		}
	}
	before := cl.Counters().Errors
	if _, ok := cl.Lookup(wkey(1)); ok {
		t.Fatal("hit after server close")
	}
	if cl.Update(wkey(1), 2) || cl.Delete(wkey(1)) {
		t.Fatal("mutation succeeded after server close")
	}
	if got := cl.Counters().Errors; got < before+3 {
		t.Fatalf("errors after coerced lookup+update+delete = %d, want >= %d", got, before+3)
	}
	if err := cl.Err(); err == nil {
		t.Fatal("server close left no sticky error")
	}
}
