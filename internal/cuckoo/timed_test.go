package cuckoo

import (
	"testing"

	"halo/internal/cache"
	"halo/internal/cpu"
	"halo/internal/mem"
	"halo/internal/noc"
)

func timedFixture(t testing.TB, cfg Config) (*Table, *cpu.Thread) {
	t.Helper()
	space := mem.NewMemory()
	alloc := mem.NewAllocator(0x1000, 1<<32)
	tbl, err := Create(space, alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := cache.New(cache.DefaultConfig(), noc.NewRing(noc.DefaultRingConfig()),
		mem.NewDRAM(mem.DefaultDRAMConfig()))
	return tbl, cpu.NewThread(h, 0)
}

func TestTimedLookupMatchesFunctional(t *testing.T) {
	tbl, th := timedFixture(t, Config{Entries: 2048, KeyLen: 16})
	for i := uint64(0); i < 1500; i++ {
		if err := tbl.Insert(key16(i), i*7); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 1500; i++ {
		fv, fok := tbl.Lookup(key16(i))
		tv, tok := tbl.TimedLookup(th, key16(i), DefaultLookupOptions())
		if fv != tv || fok != tok {
			t.Fatalf("timed lookup diverged from functional on key %d", i)
		}
	}
	if _, ok := tbl.TimedLookup(th, key16(99999), DefaultLookupOptions()); ok {
		t.Fatal("timed lookup found an absent key")
	}
}

func TestTimedLookupInstructionProfile(t *testing.T) {
	// Paper Table 1: ~210 instructions per lookup; 48.1% memory (36.2%
	// load + 11.8% store), 21.0% arithmetic, 30.9% other. Allow generous
	// bands — the shape matters, not the third digit.
	tbl, th := timedFixture(t, Config{Entries: 4096, KeyLen: 16})
	for i := uint64(0); i < 3000; i++ {
		if err := tbl.Insert(key16(i), i); err != nil {
			t.Fatal(err)
		}
	}
	const n = 1000
	for i := uint64(0); i < n; i++ {
		tbl.TimedLookup(th, key16(i%3000), DefaultLookupOptions())
	}
	c := th.Counts
	perLookup := float64(c.Total()) / n
	if perLookup < 120 || perLookup > 300 {
		t.Fatalf("instructions per lookup = %.0f, want ~210", perLookup)
	}
	memFrac := float64(c.Loads+c.Stores) / float64(c.Total())
	if memFrac < 0.35 || memFrac > 0.60 {
		t.Fatalf("memory fraction = %.2f, want ~0.48", memFrac)
	}
	arithFrac := float64(c.Arith) / float64(c.Total())
	if arithFrac < 0.12 || arithFrac > 0.32 {
		t.Fatalf("arithmetic fraction = %.2f, want ~0.21", arithFrac)
	}
}

func TestTimedLookupFasterWhenResident(t *testing.T) {
	tbl, th := timedFixture(t, Config{Entries: 512, KeyLen: 16})
	for i := uint64(0); i < 400; i++ {
		if err := tbl.Insert(key16(i), i); err != nil {
			t.Fatal(err)
		}
	}
	// Cold pass (everything misses to memory).
	start := th.Now
	for i := uint64(0); i < 400; i++ {
		tbl.TimedLookup(th, key16(i), DefaultLookupOptions())
	}
	cold := th.Now - start
	// Hot pass: small table now lives in L1/L2.
	start = th.Now
	for i := uint64(0); i < 400; i++ {
		tbl.TimedLookup(th, key16(i), DefaultLookupOptions())
	}
	hot := th.Now - start
	if hot*2 >= cold {
		t.Fatalf("hot pass (%d) not much faster than cold (%d)", hot, cold)
	}
}

func TestOptimisticLockCostsTime(t *testing.T) {
	tbl, thA := timedFixture(t, Config{Entries: 2048, KeyLen: 16})
	for i := uint64(0); i < 1500; i++ {
		if err := tbl.Insert(key16(i), i); err != nil {
			t.Fatal(err)
		}
	}
	// Warm with locking enabled. Time stays monotonic throughout: the
	// hierarchy's ports remember busy-until cycles, so measurement windows
	// are deltas of Now, never resets.
	for i := uint64(0); i < 1500; i++ {
		tbl.TimedLookup(thA, key16(i), DefaultLookupOptions())
	}
	start := thA.Now
	for i := uint64(0); i < 1500; i++ {
		tbl.TimedLookup(thA, key16(i), DefaultLookupOptions())
	}
	withLock := thA.Now - start

	start = thA.Now
	for i := uint64(0); i < 1500; i++ {
		tbl.TimedLookup(thA, key16(i), LookupOptions{OptimisticLock: false, Prefetch: true})
	}
	withoutLock := thA.Now - start
	if withLock <= withoutLock {
		t.Fatal("optimistic locking added no cost")
	}
	overhead := float64(withLock-withoutLock) / float64(withLock)
	// Paper §3.4: ~13.1%. Accept a broad band.
	if overhead < 0.02 || overhead > 0.35 {
		t.Fatalf("locking overhead = %.1f%%, want ~13%%", overhead*100)
	}
}

func TestPrefetchImprovesLLCResidentLookups(t *testing.T) {
	tbl, th := timedFixture(t, Config{Entries: 1 << 15, KeyLen: 16})
	for i := uint64(0); i < 30000; i++ {
		if err := tbl.Insert(key16(i), i); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the table into the LLC (too big for L2).
	for i := uint64(0); i < 30000; i++ {
		tbl.TimedLookup(th, key16(i), DefaultLookupOptions())
	}
	start := th.Now
	for i := uint64(0); i < 20000; i++ {
		tbl.TimedLookup(th, key16(i), LookupOptions{OptimisticLock: true, Prefetch: false})
	}
	withoutPf := th.Now - start
	start = th.Now
	for i := uint64(0); i < 20000; i++ {
		tbl.TimedLookup(th, key16(i), LookupOptions{OptimisticLock: true, Prefetch: true})
	}
	withPf := th.Now - start
	if withPf >= withoutPf {
		t.Fatalf("prefetching did not help: %d vs %d", withPf, withoutPf)
	}
}

func TestTimedInsertMatchesFunctionalState(t *testing.T) {
	space := mem.NewMemory()
	alloc := mem.NewAllocator(0x1000, 1<<32)
	timed, err := Create(space, alloc, Config{Entries: 1024, KeyLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	alloc2 := mem.NewAllocator(0x1000, 1<<32)
	plain, err := Create(mem.NewMemory(), alloc2, Config{Entries: 1024, KeyLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	h := cache.New(cache.DefaultConfig(), noc.NewRing(noc.DefaultRingConfig()),
		mem.NewDRAM(mem.DefaultDRAMConfig()))
	th := cpu.NewThread(h, 0)
	for i := uint64(0); i < 900; i++ {
		e1 := timed.TimedInsert(th, key16(i), i)
		e2 := plain.Insert(key16(i), i)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("timed/functional insert diverged at %d: %v vs %v", i, e1, e2)
		}
	}
	if timed.Size() != plain.Size() {
		t.Fatalf("sizes diverged: %d vs %d", timed.Size(), plain.Size())
	}
	for i := uint64(0); i < 900; i++ {
		v1, ok1 := timed.Lookup(key16(i))
		v2, ok2 := plain.Lookup(key16(i))
		if v1 != v2 || ok1 != ok2 {
			t.Fatalf("state diverged on key %d", i)
		}
	}
	if th.Counts.Stores == 0 {
		t.Fatal("timed insert charged no stores")
	}
}

func TestTimedLookupSFH(t *testing.T) {
	tbl, th := timedFixture(t, Config{Entries: 1024, KeyLen: 16, SFH: true})
	for i := uint64(0); i < 700; i++ {
		_ = tbl.Insert(key16(i), i)
	}
	hits := 0
	for i := uint64(0); i < 700; i++ {
		fv, fok := tbl.Lookup(key16(i))
		tv, tok := tbl.TimedLookup(th, key16(i), DefaultLookupOptions())
		if fv != tv || fok != tok {
			t.Fatalf("SFH timed lookup diverged on key %d", i)
		}
		if tok {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no SFH hits at all")
	}
}
