package halo

import (
	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/mem"
	"halo/internal/sim"
)

// Mode is the hybrid controller's current execution choice (paper §4.6).
type Mode int

// Execution modes.
const (
	// ModeSoftware runs lookups on the core: fastest when the active flow
	// set fits in the L1 cache.
	ModeSoftware Mode = iota
	// ModeAccel offloads lookups to the HALO accelerators.
	ModeAccel
)

func (m Mode) String() string {
	if m == ModeSoftware {
		return "software"
	}
	return "halo"
}

// HybridConfig tunes the controller.
type HybridConfig struct {
	// SoftwareThreshold is the active-flow estimate below which lookups
	// run in software (paper: 64 flows — the L1-resident regime).
	SoftwareThreshold float64
	// WindowCycles is the flow-register scan period.
	WindowCycles sim.Cycle
	// SoftwareOpts configures the software path when selected.
	SoftwareOpts cuckoo.LookupOptions
}

// DefaultHybridConfig matches the paper's evaluation (§6: 64 flows).
func DefaultHybridConfig() HybridConfig {
	return HybridConfig{
		SoftwareThreshold: 64,
		WindowCycles:      100_000,
		SoftwareOpts:      cuckoo.DefaultLookupOptions(),
	}
}

// Hybrid switches between software and accelerator lookups based on the
// linear-counting flow registers. In accelerator mode the hardware registers
// feed the estimate; in software mode the runtime maintains a mirrored
// 32-bit register (cheap: one hash and an OR per lookup, paper §4.6).
type Hybrid struct {
	cfg  HybridConfig
	unit *Unit
	mode Mode

	softReg     *FlowRegister
	windowStart sim.Cycle

	switches  uint64
	swLookups uint64
	hwLookups uint64
}

// NewHybrid builds a controller over a HALO unit, starting in accelerator
// mode.
func NewHybrid(cfg HybridConfig, unit *Unit) *Hybrid {
	return &Hybrid{
		cfg:     cfg,
		unit:    unit,
		mode:    ModeAccel,
		softReg: NewFlowRegister(unit.cfg.FlowRegBits),
	}
}

// Mode returns the current execution mode.
func (h *Hybrid) Mode() Mode { return h.mode }

// Switches returns how many mode transitions have occurred.
func (h *Hybrid) Switches() uint64 { return h.switches }

// Lookups returns the per-mode lookup counts.
func (h *Hybrid) Lookups() (software, accel uint64) { return h.swLookups, h.hwLookups }

// maybeScan closes the measurement window and re-evaluates the mode.
func (h *Hybrid) maybeScan(now sim.Cycle) {
	if now-h.windowStart < h.cfg.WindowCycles {
		return
	}
	h.windowStart = now
	var est float64
	if h.mode == ModeAccel {
		est = h.unit.ActiveFlowEstimate()
		h.unit.ResetFlowWindow()
	} else {
		est = h.softReg.Estimate()
		h.softReg.Reset()
	}
	want := ModeAccel
	if est < h.cfg.SoftwareThreshold {
		want = ModeSoftware
	}
	if want != h.mode {
		h.mode = want
		h.switches++
	}
}

// Lookup performs one flow lookup through whichever engine the controller
// currently selects, charging the thread either way.
func (h *Hybrid) Lookup(th *cpu.Thread, table *cuckoo.Table, key []byte) (uint64, bool) {
	h.maybeScan(th.Now)
	if h.mode == ModeSoftware {
		return h.lookupSoftware(th, table, key)
	}
	h.hwLookups++
	return h.unit.LookupB(th, table.Base(), key)
}

// LookupAt performs one flow lookup where the key already resides in
// simulated memory at keyAddr (a packet buffer); key carries the same bytes
// for the software path. Datapaths use this form so the accelerator mode
// avoids key staging.
func (h *Hybrid) LookupAt(th *cpu.Thread, table *cuckoo.Table, key []byte, keyAddr mem.Addr) (uint64, bool) {
	h.maybeScan(th.Now)
	if h.mode == ModeSoftware {
		return h.lookupSoftware(th, table, key)
	}
	h.hwLookups++
	return h.unit.LookupBAt(th, table.Base(), keyAddr)
}

func (h *Hybrid) lookupSoftware(th *cpu.Thread, table *cuckoo.Table, key []byte) (uint64, bool) {
	h.swLookups++
	// Maintain the software-side flow register: hash + mask + OR.
	h.softReg.ObserveKey(key)
	th.ALU(3)
	return table.TimedLookup(th, key, h.cfg.SoftwareOpts)
}
