package flowwire

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"halo/internal/flowserve"
)

// TestGracefulDrainCompletesInFlight is the SIGTERM-equivalent shutdown
// audit: clients keep pipelined lookups in flight while Drain fires.
// Every frame the server accepted must be answered (report.Lost() == 0 and
// the accepted/replied ledger balances), every answered lookup must carry
// the correct value, and clients must see only clean connection-closed
// failures afterwards — never a lost or corrupt reply.
func TestGracefulDrainCompletesInFlight(t *testing.T) {
	srv, tbl, addr := startServer(t,
		flowserve.Config{Shards: 4, Entries: 8192, KeyLen: 20},
		Config{Window: 32})
	const n = 4000
	for i := uint64(0); i < n; i++ {
		if err := tbl.Insert(wkey(i), i*3+1); err != nil {
			t.Fatal(err)
		}
	}

	const clients = 3
	const workersPerClient = 4
	var (
		wg        sync.WaitGroup
		succeeded atomic.Uint64
		failed    atomic.Uint64
		wrong     atomic.Uint64
	)
	start := make(chan struct{})
	for ci := 0; ci < clients; ci++ {
		cl := dialTest(t, addr, Options{Conns: 2})
		for wi := 0; wi < workersPerClient; wi++ {
			wg.Add(1)
			go func(cl *Client, seed uint64) {
				defer wg.Done()
				<-start
				keys := make([][]byte, 16)
				results := make([]flowserve.Result, 16)
				for op := uint64(0); ; op++ {
					if cl.Err() != nil {
						failed.Add(1)
						return
					}
					base := (seed*77 + op*16) % n
					for j := range keys {
						keys[j] = wkey((base + uint64(j)) % n)
					}
					hits := cl.LookupMany(keys, results)
					if cl.Err() != nil {
						// The in-flight call raced the drain: a clean
						// failure, results are all misses by contract.
						failed.Add(1)
						return
					}
					if hits != len(keys) {
						wrong.Add(1)
						return
					}
					for j := range keys {
						if results[j].Value != ((base+uint64(j))%n)*3+1 {
							wrong.Add(1)
							return
						}
					}
					succeeded.Add(1)
				}
			}(cl, uint64(ci*workersPerClient+wi))
		}
	}
	close(start)
	time.Sleep(50 * time.Millisecond) // let traffic build up in flight

	report := srv.Drain(10 * time.Second)
	wg.Wait()

	if !report.Clean {
		t.Fatalf("drain timed out with connections still busy: %+v", report)
	}
	if lost := report.Lost(); lost != 0 {
		t.Fatalf("drain lost %d accepted frames: %+v", lost, report)
	}
	if report.FramesAccepted+report.FramesRejected != report.RepliesWritten {
		t.Fatalf("frame/reply ledger unbalanced: %+v", report)
	}
	if report.FramesRejected != 0 {
		t.Fatalf("clean clients produced %d rejected frames", report.FramesRejected)
	}
	if wrong.Load() != 0 {
		t.Fatalf("%d batches carried wrong values or spurious misses", wrong.Load())
	}
	if succeeded.Load() == 0 {
		t.Fatal("no batch completed before the drain; the test exercised nothing")
	}
	if failed.Load() == 0 {
		t.Log("drain finished with no client observing the shutdown (all calls completed)")
	}
	t.Logf("drain: %d batches served, %d workers saw clean closure, report %+v",
		succeeded.Load(), failed.Load(), report)

	// The drained server accepts nothing new.
	if _, err := Dial(addr, Options{DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("drained server accepted a new connection")
	}
}

// TestDrainIdleServer drains a server with no traffic at all.
func TestDrainIdleServer(t *testing.T) {
	srv, _, addr := startServer(t, flowserve.Config{Shards: 1, Entries: 128, KeyLen: 20}, Config{})
	cl := dialTest(t, addr, Options{})
	report := srv.Drain(5 * time.Second)
	if !report.Clean || report.Lost() != 0 {
		t.Fatalf("idle drain = %+v", report)
	}
	// The idle client's connection was closed out from under it; its next
	// call fails cleanly.
	if _, ok := cl.Lookup(wkey(1)); ok {
		t.Fatal("lookup on a drained server hit")
	}
	if err := cl.Err(); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("client error after drain = %v, want ErrConnClosed", err)
	}
}
