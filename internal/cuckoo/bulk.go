package cuckoo

import (
	"halo/internal/cpu"
)

// BulkResult is one lookup's outcome in a bulk operation.
type BulkResult struct {
	Value uint64
	Found bool
}

// TimedLookupBulk performs a pipelined batch of software lookups the way
// DPDK's rte_hash_lookup_bulk does: hash every key first, software-prefetch
// every candidate bucket, then probe — so the bucket fills of key i+1..n
// overlap with the probe of key i. This is the strongest software baseline
// (the paper's §2.2 "software optimization by default"); single lookups
// cannot pipeline this way because each key arrives with its packet.
func (t *Table) TimedLookupBulk(th *cpu.Thread, keys [][]byte, opts LookupOptions) []BulkResult {
	results := make([]BulkResult, len(keys))

	// Stage 1: hash all keys and issue bucket prefetches.
	type probe struct {
		sig    uint16
		b1, b2 uint64
		ok     bool
	}
	probes := make([]probe, len(keys))
	th.Other(6)
	th.LocalStore(8)
	for i, key := range keys {
		if len(key) != t.keyLen {
			continue
		}
		words := (t.keyLen + 7) / 8
		th.LocalLoad(words)
		th.ALU(6*words + 8)
		_, sig, b1, b2 := t.Hashes(key)
		probes[i] = probe{sig: sig, b1: b1, b2: b2, ok: true}
		th.Prefetch(t.BucketAddr(b1))
		if !t.IsSFH() {
			th.Prefetch(t.BucketAddr(b2))
		}
	}

	// Stage 2: optimistic-lock window around the probes.
	var verBefore uint32
	if opts.OptimisticLock {
		th.Load(t.VersionAddr())
		th.ALU(1)
		verBefore = t.Version()
	}

	// Stage 3: probe each key; the prefetched fills have been draining
	// behind the earlier probes.
	for i, key := range keys {
		if !probes[i].ok {
			continue
		}
		v, found := t.timedProbe(th, key, probes[i].sig, probes[i].b1, probes[i].b2)
		results[i] = BulkResult{Value: v, Found: found}
	}

	if opts.OptimisticLock {
		th.Load(t.VersionAddr())
		th.ALU(2)
		th.Other(1)
		if t.Version() != verBefore {
			// A writer interleaved: re-probe the batch (rare).
			for i, key := range keys {
				if !probes[i].ok {
					continue
				}
				v, found := t.timedProbe(th, key, probes[i].sig, probes[i].b1, probes[i].b2)
				results[i] = BulkResult{Value: v, Found: found}
			}
		}
	}
	th.Other(8)
	th.LocalLoad(8)
	return results
}
