package experiments

import (
	"io"

	"halo/internal/cache"
	"halo/internal/cuckoo"
	"halo/internal/metrics"
	"halo/internal/stats"
)

// Fig10Row is one (solution, placement) latency breakdown, in cycles per
// lookup.
type Fig10Row struct {
	Solution  string
	Placement string // "llc" or "dram"
	Compute   float64
	DataAcc   float64
	Locking   float64
	Total     float64
}

// Fig10Result reproduces Fig. 10: the per-lookup latency breakdown
// (compute / data access / locking) with the accessed entries resident in
// the LLC versus DRAM, normalized in the table to the software-LLC total.
type Fig10Result struct {
	Rows  []Fig10Row
	Table *metrics.Table
}

// fig10Cell is one (solution, placement) coordinate.
type fig10Cell struct {
	solution string
	name     string
	entries  uint64
}

func fig10Cells() []fig10Cell {
	placements := []struct {
		name    string
		entries uint64
	}{
		{"llc", 1 << 14},  // comfortably LLC-resident
		{"dram", 1 << 21}, // far beyond the 32 MB LLC
	}
	var cells []fig10Cell
	for _, pl := range placements {
		cells = append(cells, fig10Cell{"software", pl.name, pl.entries})
		cells = append(cells, fig10Cell{"halo", pl.name, pl.entries})
	}
	return cells
}

// Fig10Sweep decomposes Fig. 10 into one point per (solution, placement).
func Fig10Sweep() Sweep {
	return Sweep{
		Points: func(cfg Config) []Point {
			cells := fig10Cells()
			pts := make([]Point, len(cells))
			for i, c := range cells {
				pts[i] = Point{Experiment: "fig10", Index: i,
					Label: c.solution + "/" + c.name}
			}
			return pts
		},
		RunPoint: func(cfg Config, p Point) any {
			c := fig10Cells()[p.Index]
			lookups := pickSize(cfg, 1500, 6000)
			snap := pointSnapshot(cfg)
			var row any
			if c.solution == "software" {
				row = runFig10Software(c.name, c.entries, lookups, snap)
			} else {
				row = runFig10Halo(c.name, c.entries, lookups, snap)
			}
			recordSnap(cfg, p, snap)
			return row
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			assembleFig10(rows).Table.Render(w)
		},
	}
}

// RunFig10 reproduces Fig. 10.
func RunFig10(cfg Config) *Fig10Result {
	return assembleFig10(runSerial(cfg, Fig10Sweep()))
}

func assembleFig10(rows []any) *Fig10Result {
	res := &Fig10Result{
		Table: metrics.NewTable("Figure 10: lookup latency breakdown (normalized to software/LLC total)",
			"solution", "placement", "compute", "data-access", "locking", "total", "cyc/lookup"),
	}
	res.Table.SetCaption("paper: HALO cuts compute 48.1%%; CHA data access 4.1x faster (LLC), 1.6x (DRAM)")
	for _, r := range rows {
		res.Rows = append(res.Rows, r.(Fig10Row))
	}
	base := res.Rows[0].Total // software/LLC
	for _, r := range res.Rows {
		res.Table.AddRow(r.Solution, r.Placement,
			metrics.Percent(r.Compute/base), metrics.Percent(r.DataAcc/base),
			metrics.Percent(r.Locking/base), metrics.Percent(r.Total/base), r.Total)
	}
	return res
}

// Row fetches a breakdown row.
func (r *Fig10Result) Row(solution, placement string) (Fig10Row, bool) {
	for _, row := range r.Rows {
		if row.Solution == solution && row.Placement == placement {
			return row, true
		}
	}
	return Fig10Row{}, false
}

func fig10SoftwarePass(f *lookupFixture, lookups int, lock bool) (total, data float64) {
	opts := cuckoo.LookupOptions{OptimisticLock: lock, Prefetch: false}
	var kb [testKeyLen]byte
	for i := 0; i < lookups/2; i++ { // warm
		testKeyInto(uint64(i)%f.fill, kb[:])
		f.table.TimedLookup(f.thread, kb[:], opts)
	}
	f.thread.ResetCounts()
	start := f.thread.Now
	for i := 0; i < lookups; i++ {
		testKeyInto(uint64(i*13)%f.fill, kb[:])
		f.table.TimedLookup(f.thread, kb[:], opts)
	}
	elapsed := float64(f.thread.Now-start) / float64(lookups)
	var stall uint64
	for w, c := range f.thread.Stalls.CyclesByWhere {
		if cache.HitWhere(w) >= cache.InLLC {
			stall += c
		}
	}
	return elapsed, float64(stall) / float64(lookups)
}

func runFig10Software(placement string, entries uint64, lookups int, snap *stats.Snapshot) Fig10Row {
	// Locking cost is the delta between runs with and without the
	// optimistic-lock protocol (fresh fixtures: separate simulator runs).
	// The locked pass — the configuration under study — is snapshotted.
	noLockTotal, noLockData := fig10SoftwarePass(newLookupFixture(entries, 0.75), lookups, false)
	fLock := newLookupFixture(entries, 0.75)
	lockTotal, lockData := fig10SoftwarePass(fLock, lookups, true)
	collectInto(snap, fLock.p, fLock.thread)
	locking := lockTotal - noLockTotal
	if locking < 0 {
		locking = 0
	}
	return Fig10Row{
		Solution:  "software",
		Placement: placement,
		Compute:   noLockTotal - noLockData,
		DataAcc:   lockData,
		Locking:   locking,
		Total:     lockTotal,
	}
}

func runFig10Halo(placement string, entries uint64, lookups int, snap *stats.Snapshot) Fig10Row {
	f := newLookupFixture(entries, 0.75)
	for i := 0; i < lookups/2; i++ { // warm
		f.p.Unit.LookupBAt(f.thread, f.table.Base(), f.stageKeyDMA(uint64(i)))
	}
	f.p.Hier.ResetStats()
	start := f.thread.Now
	for i := 0; i < lookups; i++ {
		f.p.Unit.LookupBAt(f.thread, f.table.Base(), f.stageKeyDMA(uint64(i*13)))
	}
	collectInto(snap, f.p, f.thread)
	total := float64(f.thread.Now-start) / float64(lookups)
	data := float64(f.p.Hier.Stats().AccelAccessCycles) / float64(lookups)
	return Fig10Row{
		Solution:  "halo",
		Placement: placement,
		Compute:   total - data, // dispatch, hash, compare, result return
		DataAcc:   data,
		Locking:   0, // the hardware lock is free of instruction cost
		Total:     total,
	}
}
