package flowserve

import (
	"testing"
)

// TestNewRejectsPerShardOverflow pins the slot-index-width guard: slot
// indexes are uint32, so a shard of exactly 1<<32 entries would truncate to
// capacity 0. Pre-PR the guard was `>`, which let 1<<32 through.
func TestNewRejectsPerShardOverflow(t *testing.T) {
	cases := []Config{
		{Shards: 1, Entries: 1 << 32, KeyLen: 20},
		{Shards: 1, Entries: 1<<32 + 1, KeyLen: 20},
		{Shards: 4, Entries: 4 << 32, KeyLen: 20},
		// Ceil division: 4*(1<<32) - 3 entries over 4 shards is still 1<<32
		// per shard.
		{Shards: 4, Entries: 4<<32 - 3, KeyLen: 20},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("New(%+v) accepted a per-shard capacity that overflows uint32 slot indexes", cfg)
		}
	}
}

// TestGrowRejectsPerShardOverflow is the same boundary applied to Grow.
func TestGrowRejectsPerShardOverflow(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 1, Entries: 64, KeyLen: 20})
	if err := tbl.Grow(1 << 32); err == nil || err == ErrShrink {
		t.Fatalf("Grow(1<<32) on a 1-shard table = %v, want a slot-index-width error", err)
	}
}

// TestCapacityAddressable pins the bucket-count rounding fix: the bucket
// array must address at least Capacity() entries. Pre-PR, entries was
// divided by EntriesPerBucket rounding DOWN before the power-of-two round-up,
// so e.g. a 20-entry shard got 2 buckets = 16 addressable entries while
// Capacity() reported 20.
func TestCapacityAddressable(t *testing.T) {
	for _, cfg := range []Config{
		{Shards: 1, Entries: 20, KeyLen: 20},
		{Shards: 1, Entries: 9, KeyLen: 20},
		{Shards: 1, Entries: 17, KeyLen: 20},
		{Shards: 1, Entries: 33, KeyLen: 20},
		{Shards: 1, Entries: 1000, KeyLen: 20},
		{Shards: 4, Entries: 100, KeyLen: 20},
		{Shards: 8, Entries: 1, KeyLen: 20},
		{Shards: 2, Entries: 31, KeyLen: 20},
	} {
		tbl := mustNew(t, cfg)
		for _, sh := range tbl.shards {
			r := sh.regions.Load().cur
			if r.capacity > r.bucketCount*EntriesPerBucket {
				t.Fatalf("cfg %+v: shard capacity %d exceeds %d addressable bucket entries",
					cfg, r.capacity, r.bucketCount*EntriesPerBucket)
			}
		}
	}
}

// TestFillToAdvertisedCapacity fills a 20-entry single-shard table to its
// full advertised capacity. Pre-PR this hit ErrTableFull at 17 of 20: the
// undersized bucket array ran out of addressable entries before the slot
// array ran out of slots.
func TestFillToAdvertisedCapacity(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 1, Entries: 20, KeyLen: 20})
	for i := uint64(0); i < 20; i++ {
		if err := tbl.Insert(key20(i), i); err != nil {
			t.Fatalf("Insert %d of %d below advertised capacity: %v", i+1, tbl.Capacity(), err)
		}
	}
	for i := uint64(0); i < 20; i++ {
		if v, ok := tbl.Lookup(key20(i)); !ok || v != i {
			t.Fatalf("Lookup(%d) = (%d,%v) after filling to capacity", i, v, ok)
		}
	}
}

// drain completes any in-flight migration synchronously.
func drain(tbl *Table) {
	for tbl.ResizeStep(64) {
	}
}

func TestGrowExplicit(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 4, Entries: 1024, KeyLen: 20})
	const n = 800
	for i := uint64(0); i < n; i++ {
		if err := tbl.Insert(key20(i), i^0x5a5a); err != nil {
			t.Fatal(err)
		}
	}
	oldCap := tbl.Capacity()
	if err := tbl.Grow(4 * oldCap); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if !tbl.Resizing() {
		t.Fatal("Grow started no migration")
	}
	if got := tbl.Capacity(); got < 4*oldCap {
		t.Fatalf("Capacity during resize = %d, want >= %d (the new regions')", got, 4*oldCap)
	}
	// Keys must be served mid-migration: step one bucket at a time and verify
	// the full key set between steps.
	steps := 0
	for tbl.ResizeStep(1) {
		steps++
		if steps%37 != 0 {
			continue
		}
		for i := uint64(0); i < n; i += 97 {
			if v, ok := tbl.Lookup(key20(i)); !ok || v != i^0x5a5a {
				t.Fatalf("mid-migration Lookup(%d) = (%d,%v)", i, v, ok)
			}
		}
	}
	if tbl.Resizing() {
		t.Fatal("ResizeStep reported done with a migration still in flight")
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tbl.Lookup(key20(i)); !ok || v != i^0x5a5a {
			t.Fatalf("post-migration Lookup(%d) = (%d,%v)", i, v, ok)
		}
	}
	s := tbl.Stats()
	if s.Grows != 4 {
		t.Fatalf("Grows = %d, want 4 (one per shard)", s.Grows)
	}
	if s.MigratedKeys != n {
		t.Fatalf("MigratedKeys = %d, want %d", s.MigratedKeys, n)
	}
	if s.ResizeSteps == 0 || s.MigratedBuckets == 0 {
		t.Fatalf("resize accounting empty: %+v", s)
	}
	if tbl.ResizePauses().Count() == 0 {
		t.Fatal("stepped migration recorded no pause samples")
	}
	if s.ResizingShards != 0 {
		t.Fatalf("ResizingShards = %d after drain", s.ResizingShards)
	}
}

func TestGrowErrShrink(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 2, Entries: 256, KeyLen: 20})
	if err := tbl.Grow(tbl.Capacity()); err != ErrShrink {
		t.Fatalf("Grow(current capacity) = %v, want ErrShrink", err)
	}
	if err := tbl.Grow(10); err != ErrShrink {
		t.Fatalf("Grow(smaller) = %v, want ErrShrink", err)
	}
}

// TestMigrationAmortisedOverWrites checks that ordinary writer traffic — not
// just ResizeStep — advances an in-flight migration, bounded per op.
func TestMigrationAmortisedOverWrites(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 1, Entries: 512, KeyLen: 20, MigrateBuckets: 2})
	const n = 400
	for i := uint64(0); i < n; i++ {
		if err := tbl.Insert(key20(i), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Grow(2 * tbl.Capacity()); err != nil {
		t.Fatal(err)
	}
	// Interleave inserts, updates and deletes; each moves at most 2 buckets.
	updated := make(map[uint64]bool)
	i := uint64(n)
	for tbl.Resizing() {
		if err := tbl.Insert(key20(i), i); err != nil {
			t.Fatalf("insert during migration: %v", err)
		}
		if !tbl.Update(key20(i/2), 7777) {
			t.Fatalf("update of key %d during migration failed", i/2)
		}
		updated[i/2] = true
		if !tbl.Delete(key20(i)) {
			t.Fatalf("delete during migration failed")
		}
		i++
		if i > n+10000 {
			t.Fatal("writer traffic never completed the migration")
		}
	}
	s := tbl.Stats()
	if s.MigratedBuckets == 0 {
		t.Fatal("no buckets migrated by writer traffic")
	}
	for j := uint64(0); j < n; j++ {
		want := j
		if updated[j] {
			want = 7777
		}
		if v, ok := tbl.Lookup(key20(j)); !ok || v != want {
			t.Fatalf("Lookup(%d) = (%d,%v), want (%d,true) after amortised migration", j, v, ok, want)
		}
	}
}

// TestUpdateDeleteInOldRegion exercises mutations against keys that still
// live in the old region mid-migration.
func TestUpdateDeleteInOldRegion(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 1, Entries: 256, KeyLen: 20})
	const n = 200
	for i := uint64(0); i < n; i++ {
		if err := tbl.Insert(key20(i), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Grow(2 * tbl.Capacity()); err != nil {
		t.Fatal(err)
	}
	tbl.ResizeStep(1) // partial: most keys still in the old region
	if !tbl.Resizing() {
		t.Skip("migration completed in one step; nothing left in old region")
	}
	for i := uint64(0); i < n; i += 2 {
		if !tbl.Update(key20(i), i+1000) {
			t.Fatalf("Update(%d) mid-migration failed", i)
		}
	}
	for i := uint64(1); i < n; i += 4 {
		if !tbl.Delete(key20(i)) {
			t.Fatalf("Delete(%d) mid-migration failed", i)
		}
	}
	drain(tbl)
	for i := uint64(0); i < n; i++ {
		v, ok := tbl.Lookup(key20(i))
		switch {
		case i%2 == 0:
			if !ok || v != i+1000 {
				t.Fatalf("updated key %d = (%d,%v), want (%d,true)", i, v, ok, i+1000)
			}
		case i%4 == 1:
			if ok {
				t.Fatalf("deleted key %d still present", i)
			}
		default:
			if !ok || v != i {
				t.Fatalf("untouched key %d = (%d,%v), want (%d,true)", i, v, ok, i)
			}
		}
	}
}

// TestAutoGrow fills far past the initial capacity with GrowAt set and
// verifies the table doubled its way up without ever returning ErrTableFull.
func TestAutoGrow(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 2, Entries: 64, KeyLen: 20, GrowAt: 0.85})
	const n = 3000
	for i := uint64(0); i < n; i++ {
		if err := tbl.Insert(key20(i), i*7); err != nil {
			t.Fatalf("auto-grow Insert(%d): %v", i, err)
		}
	}
	drain(tbl)
	if got := tbl.Size(); got != n {
		t.Fatalf("Size = %d, want %d", got, n)
	}
	if cap := tbl.Capacity(); cap < n {
		t.Fatalf("Capacity = %d after %d inserts, auto-grow never kept up", cap, n)
	}
	s := tbl.Stats()
	// 64 entries over 2 shards is 32 per shard; reaching ~1500 keys per shard
	// takes at least 5 doublings each.
	if s.Grows < 10 {
		t.Fatalf("Grows = %d, want >= 10 across 2 shards", s.Grows)
	}
	if s.InsertFull != 0 {
		t.Fatalf("auto-grow still returned ErrTableFull %d times", s.InsertFull)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tbl.Lookup(key20(i)); !ok || v != i*7 {
			t.Fatalf("Lookup(%d) = (%d,%v), want (%d,true)", i, v, ok, i*7)
		}
	}
}

// TestGrowFinishesInFlightMigration: a second Grow while a migration is in
// flight must first drain it (regions never stack more than two deep).
func TestGrowFinishesInFlightMigration(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 1, Entries: 128, KeyLen: 20})
	for i := uint64(0); i < 100; i++ {
		if err := tbl.Insert(key20(i), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Grow(256); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Grow(1024); err != nil {
		t.Fatalf("Grow during in-flight migration: %v", err)
	}
	drain(tbl)
	if got := tbl.Capacity(); got < 1024 {
		t.Fatalf("Capacity = %d, want >= 1024", got)
	}
	for i := uint64(0); i < 100; i++ {
		if v, ok := tbl.Lookup(key20(i)); !ok || v != i {
			t.Fatalf("Lookup(%d) = (%d,%v) after stacked grows", i, v, ok)
		}
	}
	if s := tbl.Stats(); s.Grows != 2 {
		t.Fatalf("Grows = %d, want 2", s.Grows)
	}
}

// TestBatchLookupDuringMigration pins the resize-aware batch path: LookupMany
// derives candidate buckets per region, so a batch racing a migration must
// agree with Lookup.
func TestBatchLookupDuringMigration(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 4, Entries: 2048, KeyLen: 20})
	const n = 1500
	for i := uint64(0); i < n; i++ {
		if err := tbl.Insert(key20(i), i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Grow(4 * tbl.Capacity()); err != nil {
		t.Fatal(err)
	}
	b := tbl.NewBatch()
	keys := make([][]byte, 64)
	results := make([]Result, 64)
	for tbl.ResizeStep(1) {
		base := uint64(0)
		for j := range keys {
			keys[j] = key20((base + uint64(j)*23) % (n + 64)) // mostly hits, some misses
		}
		hits := b.LookupMany(keys, results)
		wantHits := 0
		for j := range keys {
			wv, wok := tbl.Lookup(keys[j])
			if results[j].OK != wok || results[j].Value != wv {
				t.Fatalf("mid-migration LookupMany[%d] = %+v, Lookup says (%d,%v)", j, results[j], wv, wok)
			}
			if wok {
				wantHits++
			}
		}
		if hits != wantHits {
			t.Fatalf("mid-migration batch hits = %d, want %d", hits, wantHits)
		}
		base += 64
	}
}
