#!/bin/sh
# bench_serve.sh [out.json] — produce the canonical halo-bench/v1 serving
# document (cmd/flowload smoke run). Used both to regenerate the committed
# baseline (baselines/BENCH_serve.json) and by CI, so the stamped workload
# identity matches by construction.
#
#   scripts/bench_serve.sh baselines/BENCH_serve.json
#
# Serving throughput is heavily machine- and core-count-dependent, so CI
# diffs this document report-only (-gate ''): the diff table is for humans,
# the exit code never gates.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_serve.json}"

go run ./cmd/flowload -smoke -check -json "$out"
