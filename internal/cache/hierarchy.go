package cache

import (
	"fmt"

	"halo/internal/mem"
	"halo/internal/noc"
	"halo/internal/sim"
	"halo/internal/stats"
)

// Config sizes and times the hierarchy. Defaults follow paper Table 2
// (32 KB L1D, 1 MB L2, 32 MB shared LLC in 16 slices) with latencies
// calibrated to a Skylake-SP-class part at 2.1 GHz.
type Config struct {
	Cores  int
	Slices int

	L1SizeBytes int
	L1Ways      int
	L1Latency   sim.Cycle

	L2SizeBytes int
	L2Ways      int
	L2Latency   sim.Cycle

	LLCSliceBytes int
	LLCWays       int
	LLCLatency    sim.Cycle

	// MissHandling is the per-private-cache-miss overhead a core pays on top
	// of raw array latencies: MSHR allocation, fill-buffer management and
	// load replay. The CHA-side accelerator path does not pay it — that
	// asymmetry is where HALO's 4.1× faster LLC data access (paper Fig. 10)
	// comes from.
	MissHandling sim.Cycle

	// SnoopPenalty is the extra latency to source a line from a remote
	// core's private cache instead of the LLC data array (paper §3.4 cites
	// ~2× an LLC hit, >100 cycles total). CleanSnoopPenalty is the cheaper
	// case: the owner holds the line Exclusive but unmodified, so the CHA
	// only confirms cleanliness while the LLC supplies the data in
	// parallel, leaving just the snoop-response tail exposed.
	SnoopPenalty      sim.Cycle
	CleanSnoopPenalty sim.Cycle

	// AccelLocalLatency is a HALO accelerator's access time to its own
	// slice's data array; AccelHopCycles is the per-hop cost of the
	// dedicated CHA-to-CHA path for remote-slice lines.
	AccelLocalLatency sim.Cycle
	AccelHopCycles    sim.Cycle

	// PortOccupancy serialises accesses to one LLC slice's data array.
	PortOccupancy sim.Cycle
}

// DefaultConfig returns the paper's Table 2 platform.
func DefaultConfig() Config {
	return Config{
		Cores:             16,
		Slices:            16,
		L1SizeBytes:       32 << 10,
		L1Ways:            8,
		L1Latency:         4,
		L2SizeBytes:       1 << 20,
		L2Ways:            16,
		L2Latency:         14,
		LLCSliceBytes:     2 << 20,
		LLCWays:           16,
		LLCLatency:        18,
		MissHandling:      8,
		SnoopPenalty:      60,
		CleanSnoopPenalty: 12,

		AccelLocalLatency: 6,
		AccelHopCycles:    1,
		PortOccupancy:     2,
	}
}

// HitWhere reports which structure serviced an access.
type HitWhere int

// Access service points, ordered by distance from the core.
const (
	InL1 HitWhere = iota
	InL2
	InLLC
	InRemoteCache
	InMemory
)

func (w HitWhere) String() string {
	switch w {
	case InL1:
		return "L1"
	case InL2:
		return "L2"
	case InLLC:
		return "LLC"
	case InRemoteCache:
		return "remote-cache"
	case InMemory:
		return "memory"
	}
	return fmt.Sprintf("HitWhere(%d)", int(w))
}

// AccessResult carries the completion ticket and service point of an access.
type AccessResult struct {
	sim.Ticket
	Where HitWhere
}

// Stats is a snapshot of hierarchy activity.
type Stats struct {
	L1Hits, L1Misses   uint64
	L2Hits, L2Misses   uint64
	LLCHits, LLCMisses uint64
	RemoteCacheHits    uint64
	AccelAccesses      uint64
	AccelAccessCycles  uint64
	AccelLLCMisses     uint64
	LockStallCycles    uint64
	LockStalls         uint64
	BackInvalidations  uint64
	Writebacks         uint64
}

// CollectInto adds the hierarchy counters to a snapshot under the cache.*
// names documented in DESIGN.md.
func (s Stats) CollectInto(snap *stats.Snapshot) {
	snap.Add("cache.l1.hits", s.L1Hits)
	snap.Add("cache.l1.misses", s.L1Misses)
	snap.Add("cache.l2.hits", s.L2Hits)
	snap.Add("cache.l2.misses", s.L2Misses)
	snap.Add("cache.llc.hits", s.LLCHits)
	snap.Add("cache.llc.misses", s.LLCMisses)
	snap.Add("cache.remote.hits", s.RemoteCacheHits)
	snap.Add("cache.accel.accesses", s.AccelAccesses)
	snap.Add("cache.accel.cycles", s.AccelAccessCycles)
	snap.Add("cache.accel.llc_misses", s.AccelLLCMisses)
	snap.Add("cache.lock.stalls", s.LockStalls)
	snap.Add("cache.lock.stall_cycles", s.LockStallCycles)
	snap.Add("cache.back_invalidations", s.BackInvalidations)
	snap.Add("cache.writebacks", s.Writebacks)
}

// Hierarchy is the full simulated cache system.
type Hierarchy struct {
	cfg  Config
	ring *noc.Ring
	dram *mem.DRAM

	l1  []*array // per core
	l2  []*array // per core
	llc []*array // per slice

	llcPort []*sim.CalendarResource

	stats Stats

	// txnFree recycles access transactions (see accessTxn); txnAllocs and
	// txnReuses count how often the pool had to grow versus hand back a
	// recycled object. They are deliberately NOT part of Stats: the stats
	// document is byte-compared across runs and pooling is invisible to it.
	txnFree   *accessTxn
	txnAllocs uint64
	txnReuses uint64

	// OnAccelInvalidate, when set, is called whenever a line with the
	// accelerator core-valid bit set leaves the LLC or is written, so HALO
	// metadata caches stay coherent (paper §4.3).
	OnAccelInvalidate func(lineAddr mem.Addr)
}

// accessTxn carries one access's state through the hierarchy's stages —
// private-cache probe, LLC/directory service, fill, snoop, install — in
// place of per-hop continuation captures. Transactions come from a free list
// and return to it on completion, so the steady-state access path performs
// no allocation.
type accessTxn struct {
	requester int // core for CoreAccess, slice for AccelAccess
	lineAddr  mem.Addr
	write     bool
	issued    sim.Cycle
	t         sim.Cycle // the txn's clock as it moves through stages
	where     HitWhere
	home      int
	l         *line // LLC line under service after the LLC stage
	next      *accessTxn
}

// acquireTxn pops a recycled transaction, or grows the pool by one.
func (h *Hierarchy) acquireTxn() *accessTxn {
	tx := h.txnFree
	if tx == nil {
		h.txnAllocs++
		return &accessTxn{}
	}
	h.txnReuses++
	h.txnFree = tx.next
	*tx = accessTxn{}
	return tx
}

// releaseTxn returns a completed transaction to the free list.
func (h *Hierarchy) releaseTxn(tx *accessTxn) {
	tx.next = h.txnFree
	h.txnFree = tx
}

// TxnPoolStats reports the transaction pool's allocation and reuse counts
// (observability for the zero-allocation access path; not part of Stats).
func (h *Hierarchy) TxnPoolStats() (allocs, reuses uint64) {
	return h.txnAllocs, h.txnReuses
}

// New builds a hierarchy over the given interconnect and memory controller.
func New(cfg Config, ring *noc.Ring, dram *mem.DRAM) *Hierarchy {
	if cfg.Cores <= 0 || cfg.Cores > 32 {
		panic("cache: core count must be in 1..32 (directory uses a 32-bit mask)")
	}
	if cfg.Slices != ring.Stops() {
		panic("cache: slice count must match ring stops")
	}
	h := &Hierarchy{
		cfg:     cfg,
		ring:    ring,
		dram:    dram,
		l1:      make([]*array, cfg.Cores),
		l2:      make([]*array, cfg.Cores),
		llc:     make([]*array, cfg.Slices),
		llcPort: make([]*sim.CalendarResource, cfg.Slices),
	}
	for i := range h.llcPort {
		h.llcPort[i] = sim.NewCalendarResource(0)
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1[i] = newArray(cfg.L1SizeBytes, cfg.L1Ways)
		h.l2[i] = newArray(cfg.L2SizeBytes, cfg.L2Ways)
	}
	for i := 0; i < cfg.Slices; i++ {
		h.llc[i] = newArray(cfg.LLCSliceBytes, cfg.LLCWays)
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a snapshot of the accumulated counters.
func (h *Hierarchy) Stats() Stats {
	s := h.stats
	for _, a := range h.l1 {
		s.L1Hits += a.hits
		s.L1Misses += a.misses
	}
	for _, a := range h.l2 {
		s.L2Hits += a.hits
		s.L2Misses += a.misses
	}
	for _, a := range h.llc {
		s.LLCHits += a.hits
		s.LLCMisses += a.misses
	}
	return s
}

// ResetStats zeroes all counters (array hit/miss counters included).
func (h *Hierarchy) ResetStats() {
	h.stats = Stats{}
	for _, a := range h.l1 {
		a.hits, a.misses = 0, 0
	}
	for _, a := range h.l2 {
		a.hits, a.misses = 0, 0
	}
	for _, a := range h.llc {
		a.hits, a.misses = 0, 0
	}
}

func (h *Hierarchy) homeSlice(lineAddr mem.Addr) int {
	return noc.SliceHash(uint64(lineAddr), h.cfg.Slices)
}

// lockedUntil returns the cycle a line's hardware lock clears, lazily
// clearing expired locks. Zero means unlocked.
func lockedUntil(l *line, now sim.Cycle) sim.Cycle {
	if !l.locked {
		return 0
	}
	if l.lockFreeAt <= now {
		l.locked = false
		l.lockFreeAt = 0
		return 0
	}
	return l.lockFreeAt
}

// exclusiveOwner returns the single core holding the line in M or E state,
// or -1 when the line is unowned or shared.
func (h *Hierarchy) exclusiveOwner(l *line) int {
	mask := l.coreValid
	if mask == 0 || mask&(mask-1) != 0 {
		return -1 // zero or multiple sharers: data in LLC is usable
	}
	core := 0
	for mask>>1 != 0 {
		mask >>= 1
		core++
	}
	priv := h.l2[core].peek(l.tag)
	if priv == nil {
		priv = h.l1[core].peek(l.tag)
	}
	if priv != nil && (priv.state == Modified || priv.state == Exclusive) {
		return core
	}
	return -1
}

// snoopPenaltyFor returns the latency of snooping the owner's copy: the
// full dirty-forward cost when the owner modified the line, the cheaper
// clean-confirmation cost otherwise.
func (h *Hierarchy) snoopPenaltyFor(owner int, lineAddr mem.Addr) sim.Cycle {
	if op := h.l1[owner].peek(lineAddr); op != nil && (op.dirty || op.state == Modified) {
		return h.cfg.SnoopPenalty
	}
	if op := h.l2[owner].peek(lineAddr); op != nil && (op.dirty || op.state == Modified) {
		return h.cfg.SnoopPenalty
	}
	return h.cfg.CleanSnoopPenalty
}

// evictLLCVictim prepares a slice's victim way for lineAddr: back-invalidates
// private copies, notifies the accelerator metadata caches, and writes dirty
// data back to DRAM (fire and forget).
func (h *Hierarchy) evictLLCVictim(at sim.Cycle, slice int, lineAddr mem.Addr) {
	v := h.llc[slice].victim(lineAddr)
	if !v.valid {
		return
	}
	dirty := v.dirty
	for core := 0; core < h.cfg.Cores; core++ {
		if v.coreValid&(1<<core) == 0 {
			continue
		}
		if pl := h.l1[core].peek(v.tag); pl != nil && pl.dirty {
			dirty = true
		}
		if pl := h.l2[core].peek(v.tag); pl != nil && pl.dirty {
			dirty = true
		}
		h.l1[core].invalidate(v.tag)
		h.l2[core].invalidate(v.tag)
		h.stats.BackInvalidations++
	}
	if v.accelValid && h.OnAccelInvalidate != nil {
		h.OnAccelInvalidate(v.tag)
	}
	if dirty {
		h.dram.Access(at, v.tag, true)
		h.stats.Writebacks++
	}
	*v = line{}
}

// installPrivate places a line into a core's L2 and L1, handling evictions.
// A dirty private victim propagates its dirtiness to the LLC copy. Lines
// already present are updated in place (no victim is disturbed).
func (h *Hierarchy) installPrivate(core int, lineAddr mem.Addr, st State) {
	for _, a := range [2]*array{h.l2[core], h.l1[core]} {
		if a.peek(lineAddr) == nil {
			if v := a.victim(lineAddr); v.valid {
				h.dropPrivateVictim(core, a, v)
			}
		}
		a.install(lineAddr, st)
	}
}

// dropPrivateVictim removes one private-cache line, keeping inclusivity (an
// L2 victim forces the L1 copy out too) and the LLC directory in sync.
func (h *Hierarchy) dropPrivateVictim(core int, a *array, v *line) {
	dirty := v.dirty
	if a == h.l2[core] {
		if l1c := h.l1[core].peek(v.tag); l1c != nil {
			if l1c.dirty {
				dirty = true
			}
			h.l1[core].invalidate(v.tag)
		}
	} else if h.l2[core].peek(v.tag) != nil {
		// L1 victim still present in L2: propagate dirtiness there, keep
		// the directory bit (the core still holds the line in L2).
		if dirty {
			h.l2[core].peek(v.tag).dirty = true
		}
		*v = line{}
		return
	}
	home := h.homeSlice(v.tag)
	if ll := h.llc[home].peek(v.tag); ll != nil {
		if dirty {
			ll.dirty = true
		}
		ll.coreValid &^= 1 << core
	}
	*v = line{}
}

// CoreAccess models one load (write=false) or store (write=true) from a core
// through its private caches into the shared LLC and memory. The access runs
// as a pooled transaction through three stages: private-cache probe, home
// LLC-slice service, private install.
func (h *Hierarchy) CoreAccess(at sim.Cycle, core int, addr mem.Addr, write bool) AccessResult {
	tx := h.acquireTxn()
	tx.requester = core
	tx.lineAddr = mem.LineAddr(addr)
	tx.write = write
	tx.issued = at
	tx.t = at + h.cfg.L1Latency

	if h.corePrivateStage(tx) {
		res := AccessResult{sim.Ticket{Issued: at, Done: tx.t}, tx.where}
		h.releaseTxn(tx)
		return res
	}
	h.coreLLCStage(tx)
	h.coreInstallStage(tx)
	res := AccessResult{sim.Ticket{Issued: at, Done: tx.t}, tx.where}
	h.releaseTxn(tx)
	return res
}

// corePrivateStage tries to service the access from the requester's L1/L2.
// It returns true when a private cache completes the access (tx.t and
// tx.where are final); otherwise the transaction's clock carries the probe
// and miss-handling costs and the access continues at the home LLC slice.
func (h *Hierarchy) corePrivateStage(tx *accessTxn) bool {
	core, lineAddr, write := tx.requester, tx.lineAddr, tx.write
	if l := h.l1[core].lookup(lineAddr); l != nil {
		if !write {
			tx.where = InL1
			return true
		}
		if l.state != Shared {
			l.state = Modified
			l.dirty = true
			tx.where = InL1
			return true
		}
		// Write to a Shared line: fall through to the LLC for ownership.
	} else if l2l := h.l2[core].lookup(lineAddr); l2l != nil {
		tx.t += h.cfg.L2Latency
		if !write || l2l.state != Shared {
			st := l2l.state
			if write {
				st = Modified
				l2l.state = Modified
				l2l.dirty = true
			}
			// Fill L1.
			if h.l1[core].peek(lineAddr) == nil {
				if v := h.l1[core].victim(lineAddr); v.valid {
					h.dropPrivateVictim(core, h.l1[core], v)
				}
			}
			nl := h.l1[core].install(lineAddr, st)
			if write {
				nl.dirty = true
			}
			tx.where = InL2
			return true
		}
	} else {
		tx.t += h.cfg.L2Latency
	}
	tx.t += h.cfg.MissHandling
	return false
}

// coreLLCStage services the access at the home LLC slice: ring transit, port
// claim, directory lookup, DRAM fill on miss, lock stall and snoop on hit.
// On return tx.l is the LLC line under service and tx.t the service
// completion time (before the return hop).
func (h *Hierarchy) coreLLCStage(tx *accessTxn) {
	core, lineAddr, write := tx.requester, tx.lineAddr, tx.write
	home := h.homeSlice(lineAddr)
	tx.home = home
	arrive := tx.t + h.ring.Delay(core, home)
	start := h.llcPort[home].Claim(arrive, h.cfg.PortOccupancy)
	done := start + h.cfg.LLCLatency
	tx.where = InLLC

	l := h.llc[home].lookup(lineAddr)
	if l == nil {
		// LLC miss: fetch from DRAM and fill.
		dt := h.dram.Access(done, lineAddr, false)
		done = dt.Done
		h.evictLLCVictim(done, home, lineAddr)
		l = h.llc[home].install(lineAddr, Exclusive)
		tx.where = InMemory
	} else {
		if write {
			if until := lockedUntil(l, done); until > 0 {
				h.stats.LockStalls++
				h.stats.LockStallCycles += uint64(until - done)
				done = until
			}
		}
		if owner := h.exclusiveOwner(l); owner >= 0 && owner != core {
			// Source the line from the remote private cache.
			done += h.snoopPenaltyFor(owner, lineAddr)
			tx.where = InRemoteCache
			h.stats.RemoteCacheHits++
			// Owner's copy is downgraded (read) or invalidated (write);
			// either way its dirty data is now captured by the LLC copy.
			if op := h.l1[owner].peek(lineAddr); op != nil && op.dirty {
				l.dirty = true
			}
			if op := h.l2[owner].peek(lineAddr); op != nil && op.dirty {
				l.dirty = true
			}
			if write {
				h.l1[owner].invalidate(lineAddr)
				h.l2[owner].invalidate(lineAddr)
				l.coreValid &^= 1 << owner
			} else {
				if op := h.l1[owner].peek(lineAddr); op != nil {
					op.state = Shared
					op.dirty = false
				}
				if op := h.l2[owner].peek(lineAddr); op != nil {
					op.state = Shared
					op.dirty = false
				}
			}
		} else if write {
			// Invalidate all other sharers.
			for c := 0; c < h.cfg.Cores; c++ {
				if c == core || l.coreValid&(1<<c) == 0 {
					continue
				}
				h.l1[c].invalidate(lineAddr)
				h.l2[c].invalidate(lineAddr)
				l.coreValid &^= 1 << c
			}
		}
		if l.accelValid && write {
			if h.OnAccelInvalidate != nil {
				h.OnAccelInvalidate(lineAddr)
			}
			l.accelValid = false
		}
	}
	tx.l = l
	tx.t = done
}

// coreInstallStage picks the private-cache state, installs the line into the
// requester's L1/L2 and charges the return ring hop.
func (h *Hierarchy) coreInstallStage(tx *accessTxn) {
	core, lineAddr, write, l := tx.requester, tx.lineAddr, tx.write, tx.l
	var st State
	if write {
		st = Modified
		l.dirty = true
	} else if l.coreValid == 0 {
		st = Exclusive
	} else {
		st = Shared
		// Downgrade existing holders to Shared.
		for c := 0; c < h.cfg.Cores; c++ {
			if l.coreValid&(1<<c) == 0 {
				continue
			}
			if op := h.l1[c].peek(lineAddr); op != nil && op.state == Exclusive {
				op.state = Shared
			}
			if op := h.l2[c].peek(lineAddr); op != nil && op.state == Exclusive {
				op.state = Shared
			}
		}
	}
	l.coreValid |= 1 << core
	h.installPrivate(core, lineAddr, st)
	if write {
		if pl := h.l1[core].peek(lineAddr); pl != nil {
			pl.dirty = true
		}
	}
	tx.t += h.ring.Delay(tx.home, core)
}

// AccelAccess models a HALO accelerator at `slice` touching a line. The
// access never allocates into private caches and is serviced CHA-side: local
// lines cost AccelLocalLatency, remote-slice lines add the CHA-to-CHA hop
// path both ways.
func (h *Hierarchy) AccelAccess(at sim.Cycle, slice int, addr mem.Addr, write bool) AccessResult {
	tx := h.acquireTxn()
	tx.requester = slice
	tx.lineAddr = mem.LineAddr(addr)
	tx.write = write
	tx.issued = at
	h.stats.AccelAccesses++

	tx.home = h.homeSlice(tx.lineAddr)
	tx.t = at
	if tx.home != slice {
		tx.t += sim.Cycle(h.ring.Hops(slice, tx.home)) * h.cfg.AccelHopCycles
	}
	h.accelLLCStage(tx)
	h.accelFinishStage(tx)

	h.stats.AccelAccessCycles += uint64(tx.t - at)
	res := AccessResult{sim.Ticket{Issued: at, Done: tx.t}, tx.where}
	h.releaseTxn(tx)
	return res
}

// accelLLCStage services an accelerator access at the home slice's data
// array: port claim, directory lookup, DRAM fill on miss, lock stall and
// core snoop on hit. tx.l and tx.t are set on return.
func (h *Hierarchy) accelLLCStage(tx *accessTxn) {
	lineAddr, write, home := tx.lineAddr, tx.write, tx.home
	start := h.llcPort[home].Claim(tx.t, h.cfg.PortOccupancy)
	done := start + h.cfg.AccelLocalLatency
	tx.where = InLLC

	l := h.llc[home].lookup(lineAddr)
	if l == nil {
		dt := h.dram.Access(done, lineAddr, false)
		done = dt.Done
		h.evictLLCVictim(done, home, lineAddr)
		l = h.llc[home].install(lineAddr, Exclusive)
		tx.where = InMemory
		h.stats.AccelLLCMisses++
	} else {
		if write {
			if until := lockedUntil(l, done); until > 0 {
				h.stats.LockStalls++
				h.stats.LockStallCycles += uint64(until - done)
				done = until
			}
		}
		if owner := h.exclusiveOwner(l); owner >= 0 {
			// Latest data may live in a core's private cache: snoop it.
			done += h.snoopPenaltyFor(owner, lineAddr)
			tx.where = InRemoteCache
			h.stats.RemoteCacheHits++
			if op := h.l1[owner].peek(lineAddr); op != nil {
				if op.dirty {
					l.dirty = true
				}
				op.state = Shared
				op.dirty = false
			}
			if op := h.l2[owner].peek(lineAddr); op != nil {
				if op.dirty {
					l.dirty = true
				}
				op.state = Shared
				op.dirty = false
			}
			if write {
				h.l1[owner].invalidate(lineAddr)
				h.l2[owner].invalidate(lineAddr)
				l.coreValid &^= 1 << owner
			}
		}
	}
	tx.l = l
	tx.t = done
}

// accelFinishStage applies the write's directory consequences and charges
// the return CHA-to-CHA hops.
func (h *Hierarchy) accelFinishStage(tx *accessTxn) {
	lineAddr, l := tx.lineAddr, tx.l
	if tx.write {
		// Accelerator writes land in the LLC; core copies are stale.
		for c := 0; c < h.cfg.Cores; c++ {
			if l.coreValid&(1<<c) == 0 {
				continue
			}
			h.l1[c].invalidate(lineAddr)
			h.l2[c].invalidate(lineAddr)
		}
		l.coreValid = 0
		l.dirty = true
	}
	if tx.home != tx.requester {
		tx.t += sim.Cycle(h.ring.Hops(tx.requester, tx.home)) * h.cfg.AccelHopCycles
	}
}

// SnapshotRead models the SNAPSHOT_READ instruction (paper §4.5): the core
// reads the current value of a line without acquiring ownership, so the line
// stays put (typically in the LLC, where the accelerator writes results) and
// never bounces between private caches.
func (h *Hierarchy) SnapshotRead(at sim.Cycle, core int, addr mem.Addr) AccessResult {
	lineAddr := mem.LineAddr(addr)
	t := at + h.cfg.L1Latency
	if h.l1[core].lookup(lineAddr) != nil {
		return AccessResult{sim.Ticket{Issued: at, Done: t}, InL1}
	}
	if h.l2[core].lookup(lineAddr) != nil {
		return AccessResult{sim.Ticket{Issued: at, Done: t + h.cfg.L2Latency}, InL2}
	}
	t += h.cfg.L2Latency
	home := h.homeSlice(lineAddr)
	arrive := t + h.ring.Delay(core, home)
	start := h.llcPort[home].Claim(arrive, h.cfg.PortOccupancy)
	done := start + h.cfg.LLCLatency
	where := InLLC
	if h.llc[home].lookup(lineAddr) == nil {
		dt := h.dram.Access(done, lineAddr, false)
		done = dt.Done
		h.evictLLCVictim(done, home, lineAddr)
		h.llc[home].install(lineAddr, Exclusive)
		where = InMemory
	}
	done += h.ring.Delay(home, core)
	return AccessResult{sim.Ticket{Issued: at, Done: done}, where}
}

// LockLine sets the HALO hardware lock bit on a line until the given cycle
// (paper §4.4). The line is brought into the LLC if absent. It returns the
// cycle at which the lock is held.
func (h *Hierarchy) LockLine(at sim.Cycle, slice int, addr mem.Addr, until sim.Cycle) sim.Cycle {
	lineAddr := mem.LineAddr(addr)
	home := h.homeSlice(lineAddr)
	l := h.llc[home].peek(lineAddr)
	if l == nil {
		res := h.AccelAccess(at, slice, addr, false)
		at = res.Done
		l = h.llc[home].peek(lineAddr)
		if l == nil {
			// Pathological conflict: every way locked. Skip locking.
			return at
		}
	}
	l.locked = true
	if until > l.lockFreeAt {
		l.lockFreeAt = until
	}
	return at
}

// UnlockLine clears a line's lock bit immediately.
func (h *Hierarchy) UnlockLine(addr mem.Addr) {
	lineAddr := mem.LineAddr(addr)
	if l := h.llc[h.homeSlice(lineAddr)].peek(lineAddr); l != nil {
		l.locked = false
		l.lockFreeAt = 0
	}
}

// MarkAccelValid sets the accelerator core-valid bit on a line so LLC
// evictions and core writes notify the HALO metadata caches.
func (h *Hierarchy) MarkAccelValid(addr mem.Addr) {
	lineAddr := mem.LineAddr(addr)
	if l := h.llc[h.homeSlice(lineAddr)].peek(lineAddr); l != nil {
		l.accelValid = true
	}
}

// DMAWrite models a DDIO device write (NIC delivering a packet): the line is
// installed into the LLC dirty and any core copies are invalidated, without
// charging core time (the device pays, not the thread under test).
func (h *Hierarchy) DMAWrite(addr mem.Addr) {
	lineAddr := mem.LineAddr(addr)
	home := h.homeSlice(lineAddr)
	l := h.llc[home].peek(lineAddr)
	if l == nil {
		h.evictLLCVictim(0, home, lineAddr)
		l = h.llc[home].install(lineAddr, Modified)
	}
	for c := 0; c < h.cfg.Cores; c++ {
		if l.coreValid&(1<<c) == 0 {
			continue
		}
		h.l1[c].invalidate(lineAddr)
		h.l2[c].invalidate(lineAddr)
	}
	l.coreValid = 0
	l.dirty = true
	if l.accelValid && h.OnAccelInvalidate != nil {
		h.OnAccelInvalidate(lineAddr)
		l.accelValid = false
	}
}

// WarmLLC installs a line into the LLC without charging time, for experiment
// preconditioning ("10K lookups to warm up", paper §5.2).
func (h *Hierarchy) WarmLLC(addr mem.Addr) {
	lineAddr := mem.LineAddr(addr)
	home := h.homeSlice(lineAddr)
	if h.llc[home].peek(lineAddr) == nil {
		h.evictLLCVictim(0, home, lineAddr)
		h.llc[home].install(lineAddr, Exclusive)
	}
}

// WarmPrivate installs a line into a core's L1/L2 (and the LLC, keeping
// inclusivity) without charging time.
func (h *Hierarchy) WarmPrivate(core int, addr mem.Addr) {
	lineAddr := mem.LineAddr(addr)
	h.WarmLLC(addr)
	l := h.llc[h.homeSlice(lineAddr)].peek(lineAddr)
	if l == nil {
		return
	}
	l.coreValid |= 1 << core
	if h.l2[core].peek(lineAddr) == nil || h.l1[core].peek(lineAddr) == nil {
		h.installPrivate(core, lineAddr, Shared)
	}
}

// Present reports where a line currently resides for a given core's view,
// without disturbing LRU or counters. Used by tests and the hybrid-mode
// controller.
func (h *Hierarchy) Present(core int, addr mem.Addr) (inL1, inL2, inLLC bool) {
	lineAddr := mem.LineAddr(addr)
	inL1 = h.l1[core].peek(lineAddr) != nil
	inL2 = h.l2[core].peek(lineAddr) != nil
	inLLC = h.llc[h.homeSlice(lineAddr)].peek(lineAddr) != nil
	return
}
