package hypotheses

import (
	"fmt"
	"math"

	"halo/internal/benchjson"
)

// Verdict is the multi-seed classification of an experiment, following the
// BLIS standards: effect tiers are judged across ALL seeds, never on the
// mean alone, and a single seed moving the wrong way past the noise band is
// enough to refute a dominance claim.
type Verdict struct {
	Class  string  `json:"class"`
	Detail string  `json:"detail"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Verdict classes. Dominance experiments resolve to significant /
// directional / inconclusive / refuted; equivalence experiments resolve to
// equivalent / not-equivalent / inconclusive.
const (
	VerdictSignificant   = "significant"    // ≥ Significant improvement on every seed
	VerdictDirectional   = "directional"    // consistent win, but below the significant tier on some seed
	VerdictInconclusive  = "inconclusive"   // effect too small or seeds disagree
	VerdictRefuted       = "refuted"        // some seed contradicts the claim beyond the noise band
	VerdictEquivalent    = "equivalent"     // within the equivalence band on every seed
	VerdictNotEquivalent = "not-equivalent" // consistently outside the band
	VerdictWithinBound   = "within-bound"   // A/B ratio under the bound on every seed
	VerdictExceedsBound  = "exceeds-bound"  // some seed's ratio breaks the bound
)

// inconclusiveBound is the BLIS "any seed under 10%" rule for dominance
// claims: an improvement that thin on even one seed is not a result worth
// reporting as a win.
const inconclusiveBound = 0.10

// summarize fills the Mean/Min/Max fields from the per-seed improvements.
func summarize(imps []float64) Verdict {
	v := Verdict{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range imps {
		v.Mean += x
		if x < v.Min {
			v.Min = x
		}
		if x > v.Max {
			v.Max = x
		}
	}
	v.Mean /= float64(len(imps))
	return v
}

// ClassifyDominance judges a claim of the form "A beats B". imps holds the
// improvement of A over B for each seed (positive = A better), oriented by
// benchjson.Improvement. Rules, in order:
//
//  1. refuted      — any seed shows B winning beyond the equivalence band
//  2. significant  — every seed improves by at least th.Significant
//  3. inconclusive — any seed improves by less than inconclusiveBound (10%)
//  4. directional  — everything else: a consistent win, not yet significant
func ClassifyDominance(imps []float64, th benchjson.Thresholds) Verdict {
	if len(imps) == 0 {
		return Verdict{Class: VerdictInconclusive, Detail: "no seeds measured"}
	}
	v := summarize(imps)
	switch {
	case v.Min < -th.Equivalence:
		v.Class = VerdictRefuted
		v.Detail = fmt.Sprintf("a seed shows B ahead by %.1f%%, beyond the ±%.0f%% noise band",
			-v.Min*100, th.Equivalence*100)
	case v.Min >= th.Significant:
		v.Class = VerdictSignificant
		v.Detail = fmt.Sprintf("A ahead by ≥%.0f%% on every seed", th.Significant*100)
	case v.Min < inconclusiveBound:
		v.Class = VerdictInconclusive
		v.Detail = fmt.Sprintf("weakest seed improves only %.1f%% (<%.0f%%): effect too small to call",
			v.Min*100, inconclusiveBound*100)
	default:
		v.Class = VerdictDirectional
		v.Detail = fmt.Sprintf("A ahead on every seed (weakest %.1f%%), below the %.0f%% significant tier",
			v.Min*100, th.Significant*100)
	}
	return v
}

// ClassifyBound judges a claim of the form "A stays within bound × B" — a
// hard ceiling, not a comparison: A is allowed (expected, even) to be slower
// than B, the claim is only that the slowdown never exceeds the bound. imps
// holds the per-seed improvement of A over B in the benchjson orientation
// (imp = (B-A)/B for ns/op), so the A/B cost ratio is 1-imp. Unlike
// dominance, ONE seed over the ceiling breaks the claim — a bound that holds
// on average but not always is not a bound.
func ClassifyBound(imps []float64, bound float64) Verdict {
	if len(imps) == 0 {
		return Verdict{Class: VerdictInconclusive, Detail: "no seeds measured"}
	}
	v := summarize(imps)
	worst := 1 - v.Min // largest A/B cost ratio across seeds
	if worst <= bound {
		v.Class = VerdictWithinBound
		v.Detail = fmt.Sprintf("worst seed costs %.2fx of B, under the %.2fx bound", worst, bound)
	} else {
		v.Class = VerdictExceedsBound
		v.Detail = fmt.Sprintf("a seed costs %.2fx of B, over the %.2fx bound", worst, bound)
	}
	return v
}

// ClassifyEquivalence judges a claim of the form "A is within the noise
// band of B". Rules:
//
//  1. equivalent     — every seed's |improvement| ≤ th.Equivalence
//  2. inconclusive   — seeds fall on both sides of the band (disagree)
//  3. not-equivalent — a consistent gap beyond the band, either direction
func ClassifyEquivalence(imps []float64, th benchjson.Thresholds) Verdict {
	if len(imps) == 0 {
		return Verdict{Class: VerdictInconclusive, Detail: "no seeds measured"}
	}
	v := summarize(imps)
	switch {
	case v.Min >= -th.Equivalence && v.Max <= th.Equivalence:
		v.Class = VerdictEquivalent
		v.Detail = fmt.Sprintf("every seed within ±%.0f%%", th.Equivalence*100)
	case v.Min < -th.Equivalence && v.Max > th.Equivalence:
		v.Class = VerdictInconclusive
		v.Detail = fmt.Sprintf("seeds disagree: %.1f%% to %+.1f%% spans the ±%.0f%% band both ways",
			v.Min*100, v.Max*100, th.Equivalence*100)
	case v.Max > th.Equivalence:
		v.Class = VerdictNotEquivalent
		v.Detail = fmt.Sprintf("A consistently faster, up to %.1f%% beyond the ±%.0f%% band",
			v.Max*100, th.Equivalence*100)
	default:
		v.Class = VerdictNotEquivalent
		v.Detail = fmt.Sprintf("A consistently slower, up to %.1f%% beyond the ±%.0f%% band",
			-v.Min*100, th.Equivalence*100)
	}
	return v
}
