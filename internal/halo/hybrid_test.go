package halo

import (
	"testing"

	"halo/internal/cpu"
	"halo/internal/cuckoo"
)

// testHybrid builds a hybrid controller over a freshly populated table.
// The window is wide enough that a few hundred lookups fit inside one
// window, so tests control closes explicitly via Scan.
func testHybrid(t *testing.T) (*Platform, *Hybrid, *cuckoo.Table, *cpu.Thread) {
	t.Helper()
	p := testPlatform(t)
	tbl := populatedTable(t, p, 4096, 3000)
	cfg := DefaultHybridConfig()
	cfg.WindowCycles = 500_000
	return p, NewHybrid(cfg, p.Unit), tbl, cpu.NewThread(p.Hier, 0)
}

// driveToSoftware runs few-flow traffic until the controller switches to
// the software path.
func driveToSoftware(t *testing.T, hy *Hybrid, tbl *cuckoo.Table, th *cpu.Thread) {
	t.Helper()
	for i := 0; i < 50_000 && hy.Mode() != ModeSoftware; i++ {
		hy.Lookup(th, tbl, key16(uint64(i%4)))
	}
	if hy.Mode() != ModeSoftware {
		t.Fatal("few-flow traffic never drove the controller to software mode")
	}
}

// Regression: windowStart used to be anchored at cycle 0, so a thread whose
// clock was already past WindowCycles closed an empty window on its very
// first lookup and spuriously switched to software. The first observation
// must anchor the window instead.
func TestHybridFirstLookupDoesNotCloseWindow(t *testing.T) {
	_, hy, tbl, th := testHybrid(t)
	th.WaitUntil(5 * hy.cfg.WindowCycles) // simulate a thread that started late
	for i := uint64(0); i < 10; i++ {
		if v, ok := hy.Lookup(th, tbl, key16(i)); !ok || v != i*2+1 {
			t.Fatalf("Lookup(%d) = (%d,%v), want (%d,true)", i, v, ok, i*2+1)
		}
	}
	if got := hy.Scans(); got != 0 {
		t.Errorf("first lookups closed %d windows, want 0", got)
	}
	if got := hy.Switches(); got != 0 {
		t.Errorf("first lookups caused %d mode switches, want 0", got)
	}
	if hy.Mode() != ModeAccel {
		t.Errorf("mode = %v after first lookups, want %v", hy.Mode(), ModeAccel)
	}
}

// Regression: a window that observed no lookups says nothing about the
// active flow set — its empty register must not flip the mode (in either
// direction).
func TestHybridEmptyWindowKeepsMode(t *testing.T) {
	_, hy, tbl, th := testHybrid(t)

	// Accel side: many-flow traffic, then an idle gap spanning windows.
	for i := uint64(0); i < 300; i++ {
		hy.Lookup(th, tbl, key16(i))
	}
	hy.Scan(th.Now + hy.cfg.WindowCycles) // close the observed window
	if hy.Mode() != ModeAccel {
		t.Fatalf("many-flow traffic left mode %v, want %v", hy.Mode(), ModeAccel)
	}
	switches, scans := hy.Switches(), hy.Scans()
	hy.Scan(th.Now + 10*hy.cfg.WindowCycles) // zero-lookup window
	if got := hy.Scans(); got != scans+1 {
		t.Fatalf("idle scan closed %d windows, want 1", got-scans)
	}
	if hy.Mode() != ModeAccel || hy.Switches() != switches {
		t.Errorf("zero-lookup window flipped mode to %v (%d switches)", hy.Mode(), hy.Switches())
	}

	// Software side: the same idle gap must not flip back to accel either.
	driveToSoftware(t, hy, tbl, th)
	switches = hy.Switches()
	hy.Scan(th.Now + 20*hy.cfg.WindowCycles)
	if hy.Mode() != ModeSoftware || hy.Switches() != switches {
		t.Errorf("zero-lookup window flipped mode to %v (%d switches)", hy.Mode(), hy.Switches())
	}
}

// Regression: window close used to reset only the register being scanned,
// so the inactive register carried bits from the last window it was active
// in. Both registers must come out of every close empty.
func TestHybridScanResetsBothRegisters(t *testing.T) {
	p, hy, tbl, th := testHybrid(t)
	for i := uint64(0); i < 200; i++ {
		hy.Lookup(th, tbl, key16(i)) // accel mode fills the unit register
	}
	for i := uint64(0); i < 500; i++ {
		hy.softReg.ObserveKey(key16(i)) // stale bits from a long-past software phase
	}
	hy.Scan(th.Now + hy.cfg.WindowCycles)
	if est := p.Unit.ActiveFlowEstimate(); est != 0 {
		t.Errorf("unit flow register estimates %.1f flows after window close, want 0", est)
	}
	if est := hy.softReg.Estimate(); est != 0 {
		t.Errorf("software flow register estimates %.1f flows after window close, want 0", est)
	}
}

// Regression (behavioural face of the register reset): stale software-side
// bits must not inflate the first post-switch estimate and bounce the
// controller straight back to the accelerator.
func TestHybridStaleRegisterDoesNotBounceMode(t *testing.T) {
	_, hy, tbl, th := testHybrid(t)
	for i := uint64(0); i < 500; i++ {
		hy.softReg.ObserveKey(key16(i)) // pretend a busy software phase long ago
	}
	driveToSoftware(t, hy, tbl, th)
	if got := hy.Switches(); got != 1 {
		t.Fatalf("switches = %d driving to software, want 1", got)
	}
	// Run few-flow traffic across at least two more window closes: the
	// estimates must come from live traffic (~4 flows), not the stale bits.
	scans := hy.Scans()
	for i := 0; i < 100_000 && hy.Scans() < scans+2; i++ {
		hy.Lookup(th, tbl, key16(uint64(i%4)))
	}
	if hy.Scans() < scans+2 {
		t.Fatal("traffic never closed two more windows")
	}
	if hy.Mode() != ModeSoftware || hy.Switches() != 1 {
		t.Errorf("mode = %v with %d switches, want %v with 1: stale register bits bounced the mode",
			hy.Mode(), hy.Switches(), ModeSoftware)
	}
}
