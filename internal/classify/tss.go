package classify

import (
	"errors"
	"fmt"

	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/packet"
)

// ruleValue packs a Match into a table value: priority<<40 | ruleID<<8 |
// actionKind, with the action port in bits 8..39 of a side table. To keep
// the value self-contained (the accelerator returns just the value), the
// whole Match is encoded in 61 bits: priority(16) | ruleID(24) | port(16) |
// kind(4).
func encodeRule(m Match) uint64 {
	return uint64(m.Priority)<<44 | uint64(m.RuleID&0xFFFFFF)<<20 |
		uint64(uint16(m.Action.Port))<<4 | uint64(m.Action.Kind&0xF)
}

func decodeRule(v uint64) Match {
	return Match{
		Priority: uint16(v >> 44),
		RuleID:   uint32(v >> 20 & 0xFFFFFF),
		Action:   Action{Kind: ActionKind(v & 0xF), Port: int(uint16(v >> 4))},
	}
}

// EncodeRuleValue packs a Match into the 61-bit table value used across the
// classifier tables (exported for datapaths that read tables directly).
func EncodeRuleValue(m Match) uint64 { return encodeRule(m) }

// DecodeRuleValue unpacks a table value produced by EncodeRuleValue.
func DecodeRuleValue(v uint64) Match { return decodeRule(v) }

// Tuple is one wildcard pattern's rule table: a mask plus a cuckoo hash
// table of masked keys.
type Tuple struct {
	Mask  Mask
	Table *cuckoo.Table
	rules uint64
}

// SearchMode selects the layer semantics of paper Fig. 2a.
type SearchMode int

const (
	// FirstMatch returns on the first tuple that matches (MegaFlow layer;
	// its rules are built disjoint by the revalidator).
	FirstMatch SearchMode = iota
	// HighestPriority searches every tuple and keeps the best-priority
	// match (OpenFlow layer).
	HighestPriority
)

// TupleSpace is a tuple-space-search classifier.
type TupleSpace struct {
	space  mem.Space
	alloc  *mem.Allocator
	mode   SearchMode
	tuples []*Tuple

	entriesPerTuple uint64

	// Per-search scratch. Sequential search paths mask one tuple's key at a
	// time into keyScratch (every lookup copies what it keeps); the
	// non-blocking path needs all per-tuple keys live at once until the batch
	// issues, so it carves them out of the nbKeys arena. Classifiers were
	// already single-owner (table stats race otherwise).
	keyScratch [packet.KeyBytes]byte
	nbKeys     []byte
	nbQueries  []halo.NBQuery
	nbResults  []halo.NBResult
}

// Errors.
var (
	ErrNoSuchMask = errors.New("classify: no tuple with that mask")
)

// NewTupleSpace builds an empty classifier whose tuples hold up to
// entriesPerTuple rules each (the paper evaluates 1024-entry tuples).
func NewTupleSpace(space mem.Space, alloc *mem.Allocator, mode SearchMode, entriesPerTuple uint64) *TupleSpace {
	return &TupleSpace{space: space, alloc: alloc, mode: mode, entriesPerTuple: entriesPerTuple}
}

// Tuples returns the live tuples, most-recently-hit ordering preserved as
// inserted (OVS sorts by hit frequency; workloads here control order
// explicitly).
func (ts *TupleSpace) Tuples() []*Tuple { return ts.tuples }

// Mode returns the search semantics.
func (ts *TupleSpace) Mode() SearchMode { return ts.mode }

// RuleCount returns the number of installed rules.
func (ts *TupleSpace) RuleCount() uint64 {
	var n uint64
	for _, tp := range ts.tuples {
		n += tp.rules
	}
	return n
}

func (ts *TupleSpace) tupleFor(m Mask, create bool) (*Tuple, error) {
	for _, tp := range ts.tuples {
		if tp.Mask == m {
			return tp, nil
		}
	}
	if !create {
		return nil, ErrNoSuchMask
	}
	tbl, err := cuckoo.Create(ts.space, ts.alloc, cuckoo.Config{
		Entries: ts.entriesPerTuple,
		KeyLen:  packet.KeyBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("classify: creating tuple table: %w", err)
	}
	tp := &Tuple{Mask: m, Table: tbl}
	ts.tuples = append(ts.tuples, tp)
	return tp, nil
}

// InsertRule installs a rule: packets matching `pattern` under `mask` get
// `match`. The pattern is canonicalised through the mask first.
func (ts *TupleSpace) InsertRule(mask Mask, pattern packet.FiveTuple, match Match) error {
	if !mask.Valid() {
		return fmt.Errorf("classify: invalid mask %v", mask)
	}
	tp, err := ts.tupleFor(mask, true)
	if err != nil {
		return err
	}
	if err := tp.Table.Insert(mask.Key(pattern), encodeRule(match)); err != nil {
		return fmt.Errorf("classify: inserting rule: %w", err)
	}
	tp.rules++
	return nil
}

// DeleteRule removes a rule.
func (ts *TupleSpace) DeleteRule(mask Mask, pattern packet.FiveTuple) bool {
	tp, err := ts.tupleFor(mask, false)
	if err != nil {
		return false
	}
	if tp.Table.Delete(mask.Key(pattern)) {
		tp.rules--
		return true
	}
	return false
}

// RuleSource returns the mask and canonical masked pattern of the rule that
// produced match m for key t — what a datapath needs to install the winning
// slow-path rule into a faster layer (megaflow generation).
func (ts *TupleSpace) RuleSource(t packet.FiveTuple, m Match) (Mask, packet.FiveTuple, bool) {
	want := encodeRule(m)
	for _, tp := range ts.tuples {
		tp.Mask.KeyInto(t, ts.keyScratch[:])
		if v, ok := tp.Table.Lookup(ts.keyScratch[:]); ok && v == want {
			return tp.Mask, tp.Mask.Apply(t), true
		}
	}
	return Mask{}, packet.FiveTuple{}, false
}

// Classify performs a functional (untimed) tuple space search.
func (ts *TupleSpace) Classify(t packet.FiveTuple) (Match, bool) {
	var best Match
	found := false
	for _, tp := range ts.tuples {
		tp.Mask.KeyInto(t, ts.keyScratch[:])
		v, ok := tp.Table.Lookup(ts.keyScratch[:])
		if !ok {
			continue
		}
		m := decodeRule(v)
		switch ts.mode {
		case FirstMatch:
			return m, true
		case HighestPriority:
			if !found || m.Priority > best.Priority {
				best = m
				found = true
			}
		}
	}
	return best, found
}

// maskCost charges the per-tuple key-masking work (AND + pack, vectorised).
func maskCost(th *cpu.Thread) {
	th.ALU(6)
	th.LocalStore(2)
	th.Other(2)
}

// ClassifyTimed performs the software tuple space search, charging th. This
// is the paper's software baseline for Fig. 11: tuples are probed
// sequentially because each probe is a dependent load chain.
func (ts *TupleSpace) ClassifyTimed(th *cpu.Thread, t packet.FiveTuple, opts cuckoo.LookupOptions) (Match, bool) {
	var best Match
	found := false
	th.Other(4) // loop setup
	for _, tp := range ts.tuples {
		maskCost(th)
		tp.Mask.KeyInto(t, ts.keyScratch[:])
		v, ok := tp.Table.TimedLookup(th, ts.keyScratch[:], opts)
		if !ok {
			continue
		}
		m := decodeRule(v)
		switch ts.mode {
		case FirstMatch:
			return m, true
		case HighestPriority:
			if !found || m.Priority > best.Priority {
				best = m
				found = true
			}
			th.ALU(2)
		}
	}
	return best, found
}

// ClassifyHaloNB performs the accelerated tuple space search: the masked
// keys for every tuple are staged and all lookups issued at once with
// LOOKUP_NB, then the result line is polled (paper §5.1, "send the queries
// to all the tuples at once"). First-match semantics pick the
// lowest-indexed hitting tuple, matching the software search order.
func (ts *TupleSpace) ClassifyHaloNB(th *cpu.Thread, unit *halo.Unit, t packet.FiveTuple) (Match, bool) {
	n := len(ts.tuples)
	if cap(ts.nbQueries) < n {
		ts.nbQueries = make([]halo.NBQuery, n)
		ts.nbResults = make([]halo.NBResult, n)
		ts.nbKeys = make([]byte, n*packet.KeyBytes)
	}
	queries, results := ts.nbQueries[:n], ts.nbResults[:n]
	for i, tp := range ts.tuples {
		maskCost(th)
		kb := ts.nbKeys[i*packet.KeyBytes : (i+1)*packet.KeyBytes]
		tp.Mask.KeyInto(t, kb)
		queries[i] = halo.NBQuery{TableAddr: tp.Table.Base(), Key: kb}
	}
	unit.LookupManyNBInto(th, queries, results)
	var best Match
	found := false
	for i, r := range results {
		if !r.Found {
			continue
		}
		m := decodeRule(r.Value)
		if ts.mode == FirstMatch {
			return m, true
		}
		if !found || m.Priority > best.Priority {
			best = m
			found = true
		}
		_ = i
	}
	return best, found
}

// ClassifyHaloB performs the accelerated search with blocking lookups —
// the paper's HALO-blocking baseline in Fig. 11, which serialises tuples.
func (ts *TupleSpace) ClassifyHaloB(th *cpu.Thread, unit *halo.Unit, t packet.FiveTuple) (Match, bool) {
	var best Match
	found := false
	for _, tp := range ts.tuples {
		maskCost(th)
		tp.Mask.KeyInto(t, ts.keyScratch[:])
		v, ok := unit.LookupB(th, tp.Table.Base(), ts.keyScratch[:])
		if !ok {
			continue
		}
		m := decodeRule(v)
		if ts.mode == FirstMatch {
			return m, true
		}
		if !found || m.Priority > best.Priority {
			best = m
			found = true
		}
	}
	return best, found
}
