package hypotheses

import (
	"fmt"
	"os"
	"path/filepath"

	"halo/internal/flowserve"
	"halo/internal/flowwire"
)

// shardBatchExperiment: PR 4 replaced naive per-key lookups with
// shard-grouped batching (Batch.LookupMany counting-sorts keys by shard and
// serves each group under one seqlock window). The claim riding on that
// change — "batching beats calling Lookup in a loop" — is what this
// experiment pins down across seeds.
func shardBatchExperiment() Experiment {
	return Experiment{
		Name:  "shard-grouped-batching",
		Title: "Shard-grouped batching (Batch.LookupMany) beats naive per-key Lookup loops",
		Kind:  KindDominance,
		ArmA:  "batched",
		ArmB:  "naive",
		Run: func(cfg Config, seed uint64) (SeedResult, error) {
			w, keys := buildPopulation(cfg.Flows, seed)
			tbl, err := newServingTable(cfg, keys)
			if err != nil {
				return SeedResult{}, err
			}
			batch := tbl.NewBatch()
			batched := func(bkeys [][]byte, results []flowserve.Result) {
				batch.LookupMany(bkeys, results)
			}
			naive := func(bkeys [][]byte, results []flowserve.Result) {
				for j, k := range bkeys {
					v, ok := tbl.Lookup(k)
					results[j] = flowserve.Result{Value: v, OK: ok}
				}
			}
			aNs, bNs, err := timeArms(w, keys, cfg, seed, batched, naive, nil)
			if err != nil {
				return SeedResult{}, err
			}
			return SeedResult{ANsPerOp: aNs, BNsPerOp: bNs}, nil
		},
	}
}

// serveOver starts an in-process flowwire server for tbl on the given
// transport and dials one client to it. The caller owns both closes.
func serveOver(tbl *flowserve.Table, transport, path string) (*flowwire.Server, *flowwire.Client, error) {
	srv, err := flowwire.NewServer(flowwire.Config{Table: tbl})
	if err != nil {
		return nil, nil, err
	}
	ln, err := flowwire.Listen(transport, path)
	if err != nil {
		return nil, nil, err
	}
	go srv.Serve(ln)
	cl, err := flowwire.Dial(path, flowwire.Options{Transport: transport})
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	return srv, cl, nil
}

// shmVsUnixExperiment: PR 8 added the shared-memory ring transport behind
// the flowwire seam. The claim that justifies it — "for same-host serving,
// rings beat unix sockets because the steady-state frame path makes no
// syscalls" — is measured here with both transports serving the identical
// table through identical clients; only the bytes' path differs (kernel
// socket buffers vs mapped SPSC rings).
func shmVsUnixExperiment() Experiment {
	return Experiment{
		Name:  "shm-vs-unix-transport",
		Title: "Shared-memory ring transport beats unix sockets for same-host serving",
		Kind:  KindDominance,
		ArmA:  "shm",
		ArmB:  "unix",
		Run: func(cfg Config, seed uint64) (SeedResult, error) {
			w, keys := buildPopulation(cfg.Flows, seed)
			tbl, err := newServingTable(cfg, keys)
			if err != nil {
				return SeedResult{}, err
			}
			dir, err := os.MkdirTemp("", "halo-hyp-shm")
			if err != nil {
				return SeedResult{}, err
			}
			defer os.RemoveAll(dir)
			shmSrv, shmCl, err := serveOver(tbl, flowwire.TransportShm, filepath.Join(dir, "shm.sock"))
			if err != nil {
				return SeedResult{}, fmt.Errorf("shm arm: %w", err)
			}
			defer shmSrv.Close()
			defer shmCl.Close()
			udsSrv, udsCl, err := serveOver(tbl, flowwire.TransportUnix, filepath.Join(dir, "uds.sock"))
			if err != nil {
				return SeedResult{}, fmt.Errorf("unix arm: %w", err)
			}
			defer udsSrv.Close()
			defer udsCl.Close()
			overShm := func(bkeys [][]byte, results []flowserve.Result) {
				shmCl.LookupMany(bkeys, results)
			}
			overUds := func(bkeys [][]byte, results []flowserve.Result) {
				udsCl.LookupMany(bkeys, results)
			}
			aNs, bNs, err := timeArms(w, keys, cfg, seed, overShm, overUds, nil)
			if err != nil {
				return SeedResult{}, err
			}
			if err := shmCl.Err(); err != nil {
				return SeedResult{}, fmt.Errorf("shm client: %w", err)
			}
			if err := udsCl.Err(); err != nil {
				return SeedResult{}, fmt.Errorf("unix client: %w", err)
			}
			return SeedResult{ANsPerOp: aNs, BNsPerOp: bNs}, nil
		},
	}
}

// pinnedReaderExperiment: PR 5 introduced the Reader interface, whose
// pooled Table.LookupMany entry point costs a sync.Pool round-trip per
// call; PinnedReader exists so hot loops can pin that scratch once. The
// serving API is only an acceptable default if going through a PinnedReader
// costs the same as owning the Batch directly — an equivalence claim.
func pinnedReaderExperiment() Experiment {
	return Experiment{
		Name:  "pinned-reader-equivalence",
		Title: "PinnedReader lookups are within 5% of direct Batch lookups",
		Kind:  KindEquivalence,
		ArmA:  "pinned-reader",
		ArmB:  "direct-batch",
		Run: func(cfg Config, seed uint64) (SeedResult, error) {
			w, keys := buildPopulation(cfg.Flows, seed)
			tbl, err := newServingTable(cfg, keys)
			if err != nil {
				return SeedResult{}, err
			}
			reader := tbl.NewPinnedReader()
			pinned := func(bkeys [][]byte, results []flowserve.Result) {
				reader.LookupMany(bkeys, results)
			}
			batch := tbl.NewBatch()
			direct := func(bkeys [][]byte, results []flowserve.Result) {
				batch.LookupMany(bkeys, results)
			}
			aNs, bNs, err := timeArms(w, keys, cfg, seed, pinned, direct, nil)
			if err != nil {
				return SeedResult{}, err
			}
			return SeedResult{ANsPerOp: aNs, BNsPerOp: bNs}, nil
		},
	}
}
