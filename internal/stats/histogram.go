// Package stats is the unified observability layer: stable dotted-name
// counters, cycle-bucketed latency histograms, and a schema-versioned JSON
// document that carries every experiment's rows and per-component counters.
//
// The package sits below every simulator component (it imports only the
// standard library), so cpu threads, the cache hierarchy, accelerator units,
// the query distributor, cuckoo tables and the hybrid controller can all
// publish into one Snapshot without import cycles. Everything here is
// deterministic: maps serialize in sorted order, histograms quantize to
// fixed bucket boundaries, and documents contain no timestamps or
// host-dependent values, so the same simulation always produces the same
// bytes — the property the runner's verify mode and CI's serial-vs-pooled
// byte comparison check.
package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// Sub-bucket resolution bounds. DefaultSubBits is the historical layout (16
// sub-buckets per octave, ~6% relative error) every simulator document uses;
// its encoding is byte-identical to histograms that predate configurable
// resolution. Higher resolutions exist for tail quantiles: at p99.9 a 6%
// bucket width swallows the entire tail signal, so latency-measuring load
// generators use NewHistogramRes(HighResSubBits) (~0.4% relative error).
const (
	DefaultSubBits = 4
	HighResSubBits = 8
	maxSubBits     = 10
)

// Histogram counts observations in log-scaled buckets: values below
// 2^subBits get exact buckets; larger values land in power-of-two octaves
// split into 2^subBits linear sub-buckets, bounding the relative
// quantization error at 2^-subBits. Quantiles return a bucket's upper
// bound, so they are exact integers that do not depend on observation
// order.
type Histogram struct {
	count   uint64
	sum     uint64
	buckets map[int]uint64
	subBits uint8 // 0 reads as DefaultSubBits (zero-value and decode compat)
}

// NewHistogram returns an empty histogram at the default resolution (16
// sub-buckets per octave, ~6% relative error).
func NewHistogram() *Histogram { return &Histogram{} }

// NewHistogramRes returns an empty histogram with 2^subBits sub-buckets per
// octave. subBits outside [DefaultSubBits, maxSubBits] is clamped. Use
// HighResSubBits when tail quantiles (p99.9) must stay meaningful.
func NewHistogramRes(subBits int) *Histogram {
	if subBits < DefaultSubBits {
		subBits = DefaultSubBits
	}
	if subBits > maxSubBits {
		subBits = maxSubBits
	}
	return &Histogram{subBits: uint8(subBits)}
}

// res returns the effective sub-bucket bits (the zero value is the default
// resolution, so pre-existing zero-valued and decoded histograms keep their
// historical layout).
func (h *Histogram) res() uint {
	if h.subBits == 0 {
		return DefaultSubBits
	}
	return uint(h.subBits)
}

// bucketIndexRes maps a value to its bucket at resolution b: 0..2^b-1
// exact, then 2^b sub-buckets per power-of-two octave.
func bucketIndexRes(v uint64, b uint) int {
	if v < 1<<b {
		return int(v)
	}
	exp := uint(bits.Len64(v)) - 1 // >= b
	sub := int((v >> (exp - b)) & (1<<b - 1))
	return 1<<b + int(exp-b)<<b + sub
}

// bucketUpperRes returns the largest value that maps to bucket idx at
// resolution b — the value quantiles report.
func bucketUpperRes(idx int, b uint) uint64 {
	if idx < 1<<b {
		return uint64(idx)
	}
	rel := idx - 1<<b
	exp := uint(rel>>b) + b
	sub := uint64(rel & (1<<b - 1))
	return (uint64(1) << exp) + (sub+1)<<(exp-b) - 1
}

// bucketIndex and bucketUpper are the default-resolution mappings (kept as
// named functions: the simulator documents and their tests pin this layout).
func bucketIndex(v uint64) int   { return bucketIndexRes(v, DefaultSubBits) }
func bucketUpper(idx int) uint64 { return bucketUpperRes(idx, DefaultSubBits) }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.buckets == nil {
		h.buckets = make(map[int]uint64)
	}
	h.buckets[bucketIndexRes(v, h.res())]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of all observed values (for means).
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the exact average of the observed values.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Merge adds another histogram's observations into h. Matching resolutions
// merge bucket-for-bucket; a mismatched resolution is re-quantized through
// each source bucket's upper bound (deterministic, at the coarser of the two
// error bounds), with count and sum carried over exactly.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.buckets == nil {
		h.buckets = make(map[int]uint64)
	}
	if h.res() == o.res() {
		for idx, c := range o.buckets {
			h.buckets[idx] += c
		}
	} else {
		b, ob := h.res(), o.res()
		for idx, c := range o.buckets {
			h.buckets[bucketIndexRes(bucketUpperRes(idx, ob), b)] += c
		}
	}
	h.count += o.count
	h.sum += o.sum
}

// sortedIdxs returns the populated bucket indexes in ascending order.
func (h *Histogram) sortedIdxs() []int {
	idxs := make([]int, 0, len(h.buckets))
	for idx := range h.buckets {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile observation (q in [0,1]; out-of-range values clamp, NaN reads as
// 0). Deterministic: the result depends only on the bucket counts, never on
// observation order. A histogram with no populated buckets — empty, or
// decoded from a document whose count and bucket string disagree — returns
// 0 rather than panicking.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 || len(h.buckets) == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	idxs := h.sortedIdxs()
	for _, idx := range idxs {
		cum += h.buckets[idx]
		if cum >= target {
			return bucketUpperRes(idx, h.res())
		}
	}
	return bucketUpperRes(idxs[len(idxs)-1], h.res())
}

// MarshalJSON emits {"count":N,"sum":S,"buckets":"idx:count,idx:count"} with
// buckets in ascending index order — a compact, byte-stable encoding. A
// non-default resolution adds a "res" field; default-resolution histograms
// keep the historical byte shape exactly.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(`{"count":`)
	fmt.Fprintf(&b, `%d,"sum":%d,`, h.count, h.sum)
	if h.res() != DefaultSubBits {
		fmt.Fprintf(&b, `"res":%d,`, h.res())
	}
	b.WriteString(`"buckets":"`)
	for i, idx := range h.sortedIdxs() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", idx, h.buckets[idx])
	}
	b.WriteString(`"}`)
	return b.Bytes(), nil
}

// UnmarshalJSON parses the MarshalJSON encoding.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var wire struct {
		Count   uint64 `json:"count"`
		Sum     uint64 `json:"sum"`
		Res     uint8  `json:"res"`
		Buckets string `json:"buckets"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	h.count = wire.Count
	h.sum = wire.Sum
	h.buckets = nil
	if wire.Res != 0 && (wire.Res < DefaultSubBits || wire.Res > maxSubBits) {
		return fmt.Errorf("stats: histogram resolution %d out of range", wire.Res)
	}
	h.subBits = wire.Res
	if wire.Buckets == "" {
		return nil
	}
	h.buckets = make(map[int]uint64)
	for _, pair := range strings.Split(wire.Buckets, ",") {
		idxStr, cntStr, ok := strings.Cut(pair, ":")
		if !ok {
			return fmt.Errorf("stats: malformed histogram bucket %q", pair)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil {
			return fmt.Errorf("stats: malformed histogram bucket index %q", idxStr)
		}
		cnt, err := strconv.ParseUint(cntStr, 10, 64)
		if err != nil {
			return fmt.Errorf("stats: malformed histogram bucket count %q", cntStr)
		}
		h.buckets[idx] = cnt
	}
	return nil
}
