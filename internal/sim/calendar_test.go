package sim

import (
	"testing"
	"testing/quick"
)

func TestCalendarSerialisesOverlap(t *testing.T) {
	c := NewCalendarResource(0)
	if got := c.Claim(10, 5); got != 10 {
		t.Fatalf("first claim at %d, want 10", got)
	}
	if got := c.Claim(12, 5); got != 15 {
		t.Fatalf("overlapping claim at %d, want 15", got)
	}
	if got := c.Claim(100, 5); got != 100 {
		t.Fatalf("idle claim at %d, want 100", got)
	}
}

func TestCalendarBackfillsGaps(t *testing.T) {
	c := NewCalendarResource(0)
	c.Claim(100, 10) // busy [100,110)
	// An out-of-order claim at t=5 fits long before the existing interval
	// — the tail-latch Resource would have pushed it to 110.
	if got := c.Claim(5, 10); got != 5 {
		t.Fatalf("backfill claim at %d, want 5", got)
	}
	// A claim that fits exactly between the two intervals.
	if got := c.Claim(20, 80); got != 20 {
		t.Fatalf("gap claim at %d, want 20", got)
	}
	// Now [5,15) [20,100) [100,110) are busy: a claim at 10 for 6 cycles
	// must wait until 110 (gap [15,20) too small).
	if got := c.Claim(10, 6); got != 110 {
		t.Fatalf("forced-past claim at %d, want 110", got)
	}
}

func TestCalendarZeroOccupancy(t *testing.T) {
	c := NewCalendarResource(0)
	c.Claim(0, 0) // treated as 1
	if got := c.Claim(0, 1); got != 1 {
		t.Fatalf("claim after zero-occupancy at %d, want 1", got)
	}
}

func TestCalendarHorizonFoldsHistory(t *testing.T) {
	c := NewCalendarResource(100)
	for i := Cycle(0); i < 50; i++ {
		c.Claim(i*10, 5)
	}
	// History far behind the newest claim merged into the floor; claims in
	// the distant past are clamped to it rather than backfilled.
	got := c.Claim(0, 5)
	if got == 0 {
		t.Fatal("ancient claim backfilled beyond the horizon")
	}
	if len(c.intervals) > 64 {
		t.Fatalf("interval window grew to %d entries", len(c.intervals))
	}
}

func TestCalendarNoOverlapProperty(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		rng := NewRand(seed)
		c := NewCalendarResource(0)
		n := int(nRaw%100) + 2
		type claim struct{ start, end Cycle }
		var claims []claim
		for i := 0; i < n; i++ {
			at := Cycle(rng.Intn(500))
			occ := Cycle(rng.Intn(9) + 1)
			s := c.Claim(at, occ)
			if s < at {
				return false
			}
			claims = append(claims, claim{s, s + occ})
		}
		// No two claims overlap.
		for i := 0; i < len(claims); i++ {
			for j := i + 1; j < len(claims); j++ {
				a, b := claims[i], claims[j]
				if a.start < b.end && b.start < a.end {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCalendarUtilisation(t *testing.T) {
	c := NewCalendarResource(0)
	c.Claim(0, 50)
	c.Claim(100, 50)
	if u := c.Utilisation(0, 200); u < 0.49 || u > 0.51 {
		t.Fatalf("utilisation = %v, want 0.5", u)
	}
	if c.BusyUntil() != 150 {
		t.Fatalf("BusyUntil = %d", c.BusyUntil())
	}
}
