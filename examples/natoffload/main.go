// NAT offload: the paper's §6.5 generality claim as a runnable program. A
// network address translator keeps its binding table in a cuckoo hash; with
// HALO, the per-packet binding lookup runs on the near-cache accelerators.
package main

import (
	"fmt"

	"halo"
)

// lcg is a tiny deterministic generator so the example sticks to the public
// halo API.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 17)
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

func run(accelerated bool, flows []halo.FiveTuple) (cyclesPerPacket float64) {
	sys := halo.New()
	nat, err := sys.NewNAT(accelerated, uint64(len(flows))*2)
	if err != nil {
		panic(err)
	}
	if err := nat.Preload(flows); err != nil {
		panic(err)
	}
	sys.WarmTable(nat.Table())

	th := sys.Thread(0)
	rng := lcg(7)
	const packets = 8000
	for i := 0; i < packets/2; i++ { // warm
		f := flows[rng.intn(len(flows))]
		pkt := halo.Packet{SrcIP: f.SrcIP, DstIP: f.DstIP, SrcPort: f.SrcPort,
			DstPort: f.DstPort, Proto: f.Proto}
		nat.ProcessPacket(th, &pkt)
	}
	start := th.Now
	for i := 0; i < packets; i++ {
		f := flows[rng.intn(len(flows))]
		pkt := halo.Packet{SrcIP: f.SrcIP, DstIP: f.DstIP, SrcPort: f.SrcPort,
			DstPort: f.DstPort, Proto: f.Proto}
		if v := nat.ProcessPacket(th, &pkt); v.String() != "rewritten" {
			panic("NAT failed to translate")
		}
	}
	return float64(th.Now-start) / packets
}

func main() {
	// 50K concurrent LAN flows — a busy enterprise edge.
	rng := lcg(42)
	flows := make([]halo.FiveTuple, 50_000)
	seen := map[halo.FiveTuple]bool{}
	for i := range flows {
		for {
			f := halo.FiveTuple{
				SrcIP:   0x0a000000 | uint32(rng.next())&0xFFFFF,
				DstIP:   uint32(rng.next()),
				SrcPort: uint16(1024 + rng.intn(60000)),
				DstPort: 443,
				Proto:   6,
			}
			if !seen[f] {
				seen[f] = true
				flows[i] = f
				break
			}
		}
	}

	software := run(false, flows)
	accelerated := run(true, flows)
	fmt.Printf("NAT with %d active bindings:\n", len(flows))
	fmt.Printf("  software lookups:  %6.1f cycles/packet (%.2f Mpps/core @2.1GHz)\n",
		software, 2100/software)
	fmt.Printf("  HALO lookups:      %6.1f cycles/packet (%.2f Mpps/core @2.1GHz)\n",
		accelerated, 2100/accelerated)
	fmt.Printf("  speedup:           %.2fx  (paper Fig. 13: 2.3-2.7x)\n", software/accelerated)
}
