package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"halo/internal/benchjson"
)

// writeDoc encodes a document to a temp file and returns its path.
func writeDoc(t *testing.T, name string, d *benchjson.Document) string {
	t.Helper()
	data, err := benchjson.Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func doc(nsPerOp, allocs float64) *benchjson.Document {
	return &benchjson.Document{
		Schema: benchjson.SchemaVersion, GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
		Seeds:  []uint64{42},
		Config: map[string]string{"bench": "Hot"},
		Benchmarks: []benchjson.Benchmark{{
			Name: "Hot", Procs: 1, Iterations: 100,
			Metrics: map[string]float64{"ns/op": nsPerOp, "allocs/op": allocs},
		}},
	}
}

func runDiff(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRegressionFailsGate(t *testing.T) {
	base := writeDoc(t, "base.json", doc(100, 10))
	// 20% ns/op regression: well past the default 5% threshold.
	cur := writeDoc(t, "new.json", doc(120, 10))
	code, stdout, stderr := runDiff(t, base, cur)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "FAIL") || !strings.Contains(stderr, "Hot ns/op") {
		t.Errorf("stderr = %q, want Hot ns/op failure", stderr)
	}
	if !strings.Contains(stdout, "regression") {
		t.Errorf("stdout table = %q, want regression row", stdout)
	}
}

func TestWithinThresholdNoisePasses(t *testing.T) {
	base := writeDoc(t, "base.json", doc(100, 10))
	// 3% wobble: inside the equivalence band.
	cur := writeDoc(t, "new.json", doc(103, 10))
	code, _, stderr := runDiff(t, base, cur)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "OK") {
		t.Errorf("stderr = %q, want OK verdict", stderr)
	}
}

func TestAllowedRegressionWarnsAndPasses(t *testing.T) {
	base := writeDoc(t, "base.json", doc(100, 10))
	cur := writeDoc(t, "new.json", doc(150, 10))
	code, _, stderr := runDiff(t, "-allow", "Hot", base, cur)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 for allowed regression\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "warning") || !strings.Contains(stderr, "(allowed)") {
		t.Errorf("stderr = %q, want allowed-regression warning", stderr)
	}
}

func TestCustomThreshold(t *testing.T) {
	base := writeDoc(t, "base.json", doc(100, 10))
	cur := writeDoc(t, "new.json", doc(108, 10)) // 8% worse
	if code, _, stderr := runDiff(t, base, cur); code != 1 {
		t.Fatalf("8%% regression under default 5%% threshold: exit = %d, want 1\n%s", code, stderr)
	}
	if code, _, stderr := runDiff(t, "-threshold", "0.10", base, cur); code != 0 {
		t.Fatalf("8%% regression under -threshold 0.10: exit = %d, want 0\n%s", code, stderr)
	}
}

func TestReportOnlyNeverFails(t *testing.T) {
	base := writeDoc(t, "base.json", doc(100, 10))
	cur := writeDoc(t, "new.json", doc(500, 99))
	code, _, stderr := runDiff(t, "-gate", "", base, cur)
	if code != 0 {
		t.Fatalf("report-only exit = %d, want 0\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "report only") {
		t.Errorf("stderr = %q, want report-only note", stderr)
	}
}

func TestConfigMismatchRefused(t *testing.T) {
	base := writeDoc(t, "base.json", doc(100, 10))
	other := doc(100, 10)
	other.Seeds = []uint64{123}
	cur := writeDoc(t, "new.json", other)
	code, _, stderr := runDiff(t, base, cur)
	if code != 1 {
		t.Fatalf("seed mismatch exit = %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "different workloads") {
		t.Errorf("stderr = %q, want workload-mismatch refusal", stderr)
	}
	// -ignore-config downgrades the refusal and compares anyway.
	if code, _, stderr := runDiff(t, "-ignore-config", base, cur); code != 0 {
		t.Fatalf("-ignore-config exit = %d, want 0\n%s", code, stderr)
	}
}

func TestMissingBenchmarkFailsGate(t *testing.T) {
	base := writeDoc(t, "base.json", doc(100, 10))
	empty := doc(100, 10)
	empty.Benchmarks = []benchjson.Benchmark{{
		Name: "Other", Procs: 1, Iterations: 1, Metrics: map[string]float64{"ns/op": 1},
	}}
	cur := writeDoc(t, "new.json", empty)
	code, _, stderr := runDiff(t, base, cur)
	if code != 1 {
		t.Fatalf("missing gated benchmark exit = %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "missing from new document") {
		t.Errorf("stderr = %q, want missing-benchmark failure", stderr)
	}
}

func TestVerdictJSON(t *testing.T) {
	base := writeDoc(t, "base.json", doc(100, 10))
	cur := writeDoc(t, "new.json", doc(120, 10))
	verdict := filepath.Join(t.TempDir(), "verdict.json")
	code, _, _ := runDiff(t, "-json", verdict, base, cur)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	data, err := os.ReadFile(verdict)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"schema": "halo-benchdiff/v1"`, `"pass": false`, `"regression"`} {
		if !strings.Contains(s, want) {
			t.Errorf("verdict JSON missing %s:\n%s", want, s)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runDiff(t, "only-one.json"); code != 2 {
		t.Errorf("one arg: exit = %d, want 2", code)
	}
	if code, _, _ := runDiff(t, "a.json", "b.json", "c.json"); code != 2 {
		t.Errorf("three args: exit = %d, want 2", code)
	}
	if code, _, _ := runDiff(t, filepath.Join(t.TempDir(), "absent.json"), filepath.Join(t.TempDir(), "absent2.json")); code != 2 {
		t.Errorf("unreadable input: exit = %d, want 2", code)
	}
}
