package experiments

import (
	"math"

	"halo/internal/halo"
	"halo/internal/metrics"
	"halo/internal/sim"
)

// Fig8Point is one (register size, flow count) accuracy measurement.
type Fig8Point struct {
	RegisterBits  uint
	Flows         int
	MeanEstimate  float64
	MeanRelErr    float64
	SaturatedPct  float64
	TrialsPerCell int
}

// Fig8Result reproduces Fig. 8b: linear-counting flow-register estimation
// accuracy across register sizes.
type Fig8Result struct {
	Points []Fig8Point
	Table  *metrics.Table
}

// RunFig8 reproduces Fig. 8b.
func RunFig8(cfg Config) *Fig8Result {
	trials := pickSize(cfg, 60, 400)
	res := &Fig8Result{
		Table: metrics.NewTable("Figure 8b: flow-register estimation accuracy (linear counting)",
			"bits", "flows", "mean-estimate", "rel-err", "saturated"),
	}
	res.Table.SetCaption("paper: an m-bit register accurately estimates ~2m flows")

	rng := sim.NewRand(cfg.Seed)
	for _, bits := range []uint{8, 16, 32, 64} {
		for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
			flows := int(math.Max(1, float64(bits)*mult))
			var sumEst, sumErr float64
			saturated := 0
			for trial := 0; trial < trials; trial++ {
				reg := halo.NewFlowRegister(bits)
				for f := 0; f < flows; f++ {
					h := rng.Uint64()
					for rep := 0; rep < 4; rep++ { // flows repeat within a window
						reg.Observe(h)
					}
				}
				if reg.Saturated() {
					saturated++
				}
				est := reg.Estimate()
				sumEst += est
				sumErr += math.Abs(est-float64(flows)) / float64(flows)
			}
			pt := Fig8Point{
				RegisterBits:  bits,
				Flows:         flows,
				MeanEstimate:  sumEst / float64(trials),
				MeanRelErr:    sumErr / float64(trials),
				SaturatedPct:  float64(saturated) / float64(trials),
				TrialsPerCell: trials,
			}
			res.Points = append(res.Points, pt)
			res.Table.AddRow(bits, flows, pt.MeanEstimate,
				metrics.Percent(pt.MeanRelErr), metrics.Percent(pt.SaturatedPct))
		}
	}
	return res
}
