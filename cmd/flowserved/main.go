// Command flowserved serves a flowserve table over TCP, a unix-domain
// socket, or a shared-memory ring using the flowwire protocol (DESIGN.md
// §9, §11), turning the in-process serving runtime into a network-facing
// flow-classification service. Remote clients (flowload -remote, or any
// flowwire.Client) look up, insert, update and delete flows through
// versioned length-prefixed frames; the server coalesces pipelined lookup
// frames into shard-grouped batch lookups. The wire protocol and runtime
// are identical on every transport.
//
// Usage:
//
//	flowserved                                    # listen on tcp://127.0.0.1:7411
//	flowserved -endpoint tcp://:7411 -shards 8    # all interfaces, 8 shards
//	flowserved -endpoint unix:///tmp/fs.sock      # unix-domain socket
//	flowserved -endpoint shm:///tmp/fs.sock       # shared-memory rings
//	flowserved -entries 2000000                   # bigger table
//
// Cluster mode makes the node one shard server of a cluster: -cluster names
// the full bootstrap node set (endpoints, comma-separated) and -endpoint
// must match one entry — that is this node's identity. The node then serves
// only the hash ranges its shard map assigns it, answers keys it does not
// own with a WRONG_SHARD redirect, and accepts live range migrations
// (DESIGN.md §13):
//
//	flowserved -endpoint tcp://10.0.0.1:7411 \
//	           -cluster tcp://10.0.0.1:7411,tcp://10.0.0.2:7411,tcp://10.0.0.3:7411
//
// The legacy -transport/-listen flag pair still works as a shim for the
// endpoint form.
//
// On SIGTERM/SIGINT the server drains gracefully: it stops accepting
// connections, unblocks idle readers, answers every frame already accepted,
// then prints the drain ledger and final counters. The exit status is 0 only
// when the drain was clean and no accepted frame went unanswered, so a
// supervisor (or CI) gating on the exit code gets the zero-loss guarantee.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"halo/internal/flowserve"
	"halo/internal/flowwire"
	"halo/internal/packet"
	"halo/internal/stats"
)

func main() {
	var (
		endpoint     = flag.String("endpoint", "", `serving endpoint: tcp://host:port, unix:///path or shm:///path (wins over -transport/-listen)`)
		cluster      = flag.String("cluster", "", "comma-separated cluster endpoint list (must include -endpoint); enables cluster mode")
		listen       = flag.String("listen", "127.0.0.1:7411", `deprecated: listen address (use -endpoint)`)
		tport        = flag.String("transport", flowwire.TransportTCP, `deprecated: transport for -listen (use -endpoint)`)
		shards       = flag.Int("shards", 4, "shard count (power of two)")
		entries      = flag.Uint64("entries", 1<<20, "total table capacity in entries")
		keyLen       = flag.Int("keylen", packet.HeaderKeyLen, "fixed key length in bytes")
		window       = flag.Int("window", 0, "per-connection in-flight frame window (0 = default)")
		coalesce     = flag.Int("coalesce", 0, "max pipelined lookup frames coalesced per batch (0 = default)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "per-connection idle read timeout (0 = default)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight work on SIGTERM")
	)
	flag.Parse()

	// Resolve the serving endpoint: -endpoint wins; otherwise the legacy
	// -transport/-listen pair is folded into one.
	spec := *endpoint
	if spec == "" {
		spec = *listen
	}
	ep, err := flowwire.ParseEndpointDefault(spec, *tport)
	if err != nil {
		fatalf("-endpoint: %v", err)
	}
	var clusterEps []flowwire.Endpoint
	if *cluster != "" {
		if clusterEps, err = flowwire.ParseEndpoints("cluster", *cluster); err != nil {
			fatalf("%v", err)
		}
	}

	tbl, err := flowserve.New(flowserve.Config{
		Shards:  *shards,
		Entries: *entries,
		KeyLen:  *keyLen,
	})
	if err != nil {
		fatalf("table: %v", err)
	}
	srv, err := flowwire.NewServer(flowwire.Config{
		Table:          tbl,
		Window:         *window,
		CoalesceFrames: *coalesce,
		IdleTimeout:    *idleTimeout,
		Self:           ep,
		Cluster:        clusterEps,
	})
	if err != nil {
		fatalf("server: %v", err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServeEndpoint(ep) }()

	// ListenAndServeEndpoint binds synchronously before accepting, but we
	// learn the address only through srv.Addr; poll briefly so the startup
	// line carries the resolved port (useful with -endpoint tcp://:0).
	for i := 0; i < 100 && srv.Addr() == nil; i++ {
		time.Sleep(time.Millisecond)
	}
	mode := ""
	if len(clusterEps) > 0 {
		mode = fmt.Sprintf(" cluster=%d-node", len(clusterEps))
	}
	fmt.Fprintf(os.Stderr, "flowserved: serving on %s://%s (shards=%d entries=%d keylen=%d%s)\n",
		ep.Transport, srv.Addr(), tbl.Shards(), tbl.Capacity(), tbl.KeyLen(), mode)

	select {
	case err := <-done:
		// Serve failed on its own (bind error, listener torn down).
		if err != nil && err != flowwire.ErrServerClosed {
			fatalf("%v", err)
		}
		return
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "flowserved: %v — draining (timeout %v)\n", s, *drainTimeout)
	}

	report := srv.Drain(*drainTimeout)
	<-done // Serve returns ErrServerClosed once the listener is down

	snap := stats.NewSnapshot()
	srv.CollectInto(snap)
	printCounters(snap)
	fmt.Fprintf(os.Stderr,
		"flowserved: drain conns=%d accepted=%d rejected=%d replied=%d lost=%d clean=%v\n",
		report.Conns, report.FramesAccepted, report.FramesRejected,
		report.RepliesWritten, report.Lost(), report.Clean)

	if !report.Clean {
		fatalf("drain timed out with connections still busy")
	}
	if report.Lost() != 0 {
		fatalf("drain lost %d accepted frames", report.Lost())
	}
}

func printCounters(snap *stats.Snapshot) {
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "flowserved:   %-32s %d\n", n, snap.Counters[n])
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flowserved: "+format+"\n", args...)
	os.Exit(1)
}
