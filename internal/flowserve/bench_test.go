package flowserve

import (
	"encoding/binary"
	"testing"
)

// Benchmarks pinning the cost of the two batched-lookup entry points: a
// caller-pinned Batch (flowload's hot loop via the Reader interface used to
// pin one per worker) versus Table.LookupMany's pooled scratch. The pool
// Get/Put must stay in the noise relative to a 16-key batch probe.
func benchTable(b *testing.B) (*Table, [][]byte) {
	b.Helper()
	const n = 1 << 15
	tbl, err := New(Config{Shards: 4, Entries: n + n/8, KeyLen: 16})
	if err != nil {
		b.Fatal(err)
	}
	arena := make([]byte, n*16)
	keys := make([][]byte, n)
	for i := range keys {
		k := arena[i*16 : (i+1)*16]
		binary.LittleEndian.PutUint64(k, uint64(i)*0x9e3779b97f4a7c15+1)
		binary.LittleEndian.PutUint64(k[8:], uint64(i))
		keys[i] = k
		if err := tbl.Insert(k, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
	return tbl, keys
}

func BenchmarkLookupManyPinnedBatch(b *testing.B) {
	tbl, keys := benchTable(b)
	batch := tbl.NewBatch()
	bkeys := make([][]byte, 16)
	results := make([]Result, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range bkeys {
			bkeys[j] = keys[(i*16+j*7)%len(keys)]
		}
		if batch.LookupMany(bkeys, results) != 16 {
			b.Fatal("miss on a resident key")
		}
	}
}

func BenchmarkLookupManyPooled(b *testing.B) {
	tbl, keys := benchTable(b)
	bkeys := make([][]byte, 16)
	results := make([]Result, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range bkeys {
			bkeys[j] = keys[(i*16+j*7)%len(keys)]
		}
		if tbl.LookupMany(bkeys, results) != 16 {
			b.Fatal("miss on a resident key")
		}
	}
}
