// Package flowwire puts the flowserve runtime on the network: a
// length-prefixed binary protocol over TCP, a server runtime
// (cmd/flowserved) and a pooled pipelined client, both speaking the same
// versioned frame format. The ops mirror the paper's lookup split —
// LOOKUP is the blocking single-key LOOKUP_B, LOOKUP_MANY the batched
// pipelined LOOKUP_NB — plus the mutation and introspection ops a remote
// table needs. *flowwire.Client implements flowserve.Reader and
// flowserve.Writer, so in-process and remote tables are interchangeable
// behind one serving API (DESIGN.md §9).
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       4     length   — bytes that follow this field (12 + payload)
//	4       1     version  — Version (1)
//	5       1     op       — Op code
//	6       1     status   — StatusOK in requests; reply status
//	7       1     reserved — must be zero
//	8       8     reqID    — echoed verbatim in the reply (pipelining)
//	16      ...   payload  — op-specific
//
// Replies carry the request's op and reqID. A non-OK status is a typed
// error reply; its payload is empty. Protocol-level violations (bad
// version, oversized or short frames, unknown op) earn an error reply with
// the best-effort reqID followed by connection close.
package flowwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"halo/internal/flowserve"
)

// Version is the protocol version this package speaks. A server receiving
// any other version answers StatusErrVersion and closes.
const Version = 1

// Frame sizing. The length field counts headerRest plus the payload.
const (
	lenSize    = 4
	headerRest = 12
	headerSize = lenSize + headerRest

	// DefaultMaxFrame bounds accepted frame length (header + payload).
	// A LOOKUP_MANY of 4096 64-byte keys fits with lots of room.
	DefaultMaxFrame = 1 << 20
)

// MaxBatchKeys bounds the key count of one LOOKUP_MANY frame, independent
// of the byte limit.
const MaxBatchKeys = 1 << 16

// Op identifies a request kind.
type Op uint8

// Wire operations.
const (
	OpHello      Op = 1 // table geometry handshake
	OpLookup     Op = 2 // blocking single-key lookup (LOOKUP_B)
	OpLookupMany Op = 3 // batched lookup (LOOKUP_NB)
	OpInsert     Op = 4
	OpUpdate     Op = 5
	OpDelete     Op = 6
	OpStats      Op = 7 // server+table stats as a JSON stats.Snapshot

	// Cluster ops (DESIGN.md §13). SHARD_MAP/MAP_UPDATE carry the versioned
	// hash-range→node map; MIG_* drive a live range migration between nodes.
	OpShardMap  Op = 8  // fetch the node's installed shard map
	OpMapUpdate Op = 9  // install a shard map (a bumped epoch cuts over)
	OpMigStart  Op = 10 // losing node: snapshot+stream a range, double-write
	OpMigStatus Op = 11 // migration ledger (snapshot progress, queue counts)
	OpMigApply  Op = 12 // gaining node: apply a batch of migrated records
)

func (o Op) String() string {
	switch o {
	case OpHello:
		return "HELLO"
	case OpLookup:
		return "LOOKUP"
	case OpLookupMany:
		return "LOOKUP_MANY"
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpDelete:
		return "DELETE"
	case OpStats:
		return "STATS"
	case OpShardMap:
		return "SHARD_MAP"
	case OpMapUpdate:
		return "MAP_UPDATE"
	case OpMigStart:
		return "MIG_START"
	case OpMigStatus:
		return "MIG_STATUS"
	case OpMigApply:
		return "MIG_APPLY"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Status is a reply's outcome code.
type Status uint8

// Reply status codes. Codes ≤ StatusErrFull map onto flowserve error
// semantics; the rest are protocol-level.
const (
	StatusOK           Status = 0
	StatusErrKeyLen    Status = 1 // key length does not match the table
	StatusErrExists    Status = 2 // INSERT of a present key
	StatusErrFull      Status = 3 // shard displacement path exhausted
	StatusErrMalformed Status = 4 // unparseable frame or payload
	StatusErrVersion   Status = 5 // unsupported protocol version
	StatusErrOp        Status = 6 // unknown op code
	StatusErrOversized Status = 7 // frame exceeds the server's limit
	StatusErrDraining  Status = 8 // server is draining; request not served
	StatusErrInternal  Status = 9
	// StatusErrWrongShard is the redirect reply: this node does not own the
	// key's hash range under its installed shard map. The payload carries
	// the node's 8-byte LE map epoch so the router knows whether its own map
	// is stale (refetch) or the node's is (retry elsewhere). Unlike every
	// other error status, the payload is non-empty.
	StatusErrWrongShard Status = 10
	// StatusErrCluster reports a cluster/migration admin op that cannot be
	// honored (migration already running, bad shard map, not a cluster
	// node).
	StatusErrCluster Status = 11
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusErrKeyLen:
		return "ERR_KEYLEN"
	case StatusErrExists:
		return "ERR_EXISTS"
	case StatusErrFull:
		return "ERR_FULL"
	case StatusErrMalformed:
		return "ERR_MALFORMED"
	case StatusErrVersion:
		return "ERR_VERSION"
	case StatusErrOp:
		return "ERR_OP"
	case StatusErrOversized:
		return "ERR_OVERSIZED"
	case StatusErrDraining:
		return "ERR_DRAINING"
	case StatusErrInternal:
		return "ERR_INTERNAL"
	case StatusErrWrongShard:
		return "ERR_WRONG_SHARD"
	case StatusErrCluster:
		return "ERR_CLUSTER"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// ProtocolError is a non-OK reply status that has no flowserve equivalent.
type ProtocolError struct {
	Status Status
	Op     Op
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("flowwire: %s reply to %s", e.Status, e.Op)
}

// Err maps a reply status onto the error vocabulary callers already know:
// table-semantics statuses become the flowserve errors, protocol statuses
// a *ProtocolError, StatusOK nil.
func (s Status) Err(op Op) error {
	switch s {
	case StatusOK:
		return nil
	case StatusErrKeyLen:
		return flowserve.ErrKeyLen
	case StatusErrExists:
		return flowserve.ErrKeyExists
	case StatusErrFull:
		return flowserve.ErrTableFull
	}
	return &ProtocolError{Status: s, Op: op}
}

// statusOf maps a flowserve mutation error to its wire status.
func statusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, flowserve.ErrKeyExists):
		return StatusErrExists
	case errors.Is(err, flowserve.ErrTableFull):
		return StatusErrFull
	case errors.Is(err, flowserve.ErrKeyLen):
		return StatusErrKeyLen
	}
	return StatusErrInternal
}

// Frame is one decoded protocol frame.
type Frame struct {
	Op      Op
	Status  Status
	ReqID   uint64
	Payload []byte

	// hdr is the header read scratch. A stack array would escape through
	// the io.Reader interface call and cost one heap allocation per frame;
	// frames on the hot paths are long-lived, so reading into the frame's
	// own storage keeps ReadFrameHeader allocation-free.
	hdr [headerSize]byte
}

// Frame-read errors. ErrFrameTooLarge and ErrBadVersion carry enough for
// the server to send the matching typed error reply before closing.
var (
	ErrFrameTooLarge = errors.New("flowwire: frame exceeds size limit")
	ErrShortFrame    = errors.New("flowwire: frame shorter than header")
	ErrBadVersion    = errors.New("flowwire: unsupported protocol version")
	ErrBadReserved   = errors.New("flowwire: nonzero reserved header byte")
)

// AppendFrameHeader encodes the 16-byte header of a frame whose payloadLen
// payload bytes the caller appends next. Splitting the header from the
// payload lets hot paths build replies directly into one reused buffer —
// header, then payload — with no intermediate payload slice.
func AppendFrameHeader(dst []byte, op Op, status Status, reqID uint64, payloadLen int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(headerRest+payloadLen))
	dst = append(dst, Version, byte(op), byte(status), 0)
	return binary.LittleEndian.AppendUint64(dst, reqID)
}

// AppendFrame encodes f onto dst and returns the extended slice.
func AppendFrame(dst []byte, f *Frame) []byte {
	dst = AppendFrameHeader(dst, f.Op, f.Status, f.ReqID, len(f.Payload))
	return append(dst, f.Payload...)
}

// ReadFrameHeader reads and validates one frame header from r, populating
// f's identifying fields (Op, Status, ReqID; Payload is reset to nil) and
// returning the payload length that follows on the stream. The caller owns
// reading those bytes — into a pooled buffer (client), a reusable scratch
// (server), or a discard buffer (late replies). maxFrame bounds the
// accepted length (0 means DefaultMaxFrame). io.EOF is returned untouched
// on a clean close before any header byte; a partial header yields
// io.ErrUnexpectedEOF. The identifying fields are populated before the
// validity checks, so a server can echo op and reqID in a typed error
// reply.
func ReadFrameHeader(r io.Reader, maxFrame uint32, f *Frame) (int, error) {
	if maxFrame == 0 {
		maxFrame = DefaultMaxFrame
	}
	hdr := f.hdr[:]
	if _, err := io.ReadFull(r, hdr[:lenSize]); err != nil {
		return 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:lenSize])
	if n < headerRest {
		return 0, ErrShortFrame
	}
	if lenSize+uint64(n) > uint64(maxFrame) {
		return 0, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, lenSize+uint64(n), maxFrame)
	}
	if _, err := io.ReadFull(r, hdr[lenSize:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	f.Op = Op(hdr[5])
	f.Status = Status(hdr[6])
	f.ReqID = binary.LittleEndian.Uint64(hdr[8:16])
	f.Payload = nil
	if hdr[4] != Version {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, hdr[4], Version)
	}
	if hdr[7] != 0 {
		return 0, ErrBadReserved
	}
	return int(n) - headerRest, nil
}

// ReadFrameInto reads one frame from r into f, reusing buf for the payload
// and growing it as needed; it returns the possibly-grown buffer for the
// caller to keep. f.Payload aliases the returned buffer, so the frame is
// valid only until the buffer's next reuse — the zero-copy contract the
// client and server hot paths rely on (DESIGN.md §10). A payload read that
// dies mid-body yields io.ErrUnexpectedEOF.
func ReadFrameInto(r io.Reader, maxFrame uint32, f *Frame, buf []byte) ([]byte, error) {
	payloadLen, err := ReadFrameHeader(r, maxFrame, f)
	if err != nil {
		return buf, err
	}
	if cap(buf) < payloadLen {
		buf = make([]byte, payloadLen)
	}
	buf = buf[:payloadLen]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, err
	}
	f.Payload = buf
	return buf, nil
}

// ReadFrame reads one frame from r into f, allocating a fresh f.Payload the
// caller owns indefinitely. Tests and cold paths use this; hot paths use
// ReadFrameInto with reused scratch.
func ReadFrame(r io.Reader, maxFrame uint32, f *Frame) error {
	payloadLen, err := ReadFrameHeader(r, maxFrame, f)
	if err != nil {
		return err
	}
	f.Payload = make([]byte, payloadLen)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// frameBuf is a pooled byte buffer carrying one encoded frame or payload
// across the hot paths: server replies travel processor→writer as
// *frameBuf, request payloads reader→processor, and the client builds
// LOOKUP_MANY request payloads in one. Pooling the wrapper (not the bare
// slice) keeps Put/Get free of interface-conversion allocations.
type frameBuf struct{ b []byte }

var frameBufPool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 512)} }}

func getFrameBuf() *frameBuf { return frameBufPool.Get().(*frameBuf) }

func putFrameBuf(fb *frameBuf) {
	if fb != nil {
		frameBufPool.Put(fb)
	}
}

// NoNode is the HelloInfo.NodeID of a standalone (non-cluster) server.
const NoNode = ^uint32(0)

// HelloInfo is the table geometry a HELLO reply reports, extended on
// cluster nodes with the node's installed shard-map epoch and its own index
// in that map (NoNode on a standalone server).
type HelloInfo struct {
	KeyLen   int
	Shards   int
	Capacity uint64
	Epoch    uint64 // shard-map epoch (0 when no map is installed)
	NodeID   uint32 // this node's index in the shard map, or NoNode
}

// appendHelloReply encodes a HELLO reply payload (28 bytes: the legacy
// 16-byte geometry plus epoch and node ID).
func appendHelloReply(dst []byte, h HelloInfo) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(h.KeyLen))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(h.Shards))
	dst = binary.LittleEndian.AppendUint64(dst, h.Capacity)
	dst = binary.LittleEndian.AppendUint64(dst, h.Epoch)
	return binary.LittleEndian.AppendUint32(dst, h.NodeID)
}

// parseHelloReply decodes a HELLO reply payload: 28 bytes from a current
// server, or the legacy 16-byte form (treated as a standalone node).
func parseHelloReply(p []byte) (HelloInfo, error) {
	if len(p) != 16 && len(p) != 28 {
		return HelloInfo{}, fmt.Errorf("flowwire: HELLO reply payload is %d bytes, want 16 or 28", len(p))
	}
	h := HelloInfo{
		KeyLen:   int(binary.LittleEndian.Uint32(p[0:4])),
		Shards:   int(binary.LittleEndian.Uint32(p[4:8])),
		Capacity: binary.LittleEndian.Uint64(p[8:16]),
		NodeID:   NoNode,
	}
	if len(p) == 28 {
		h.Epoch = binary.LittleEndian.Uint64(p[16:24])
		h.NodeID = binary.LittleEndian.Uint32(p[24:28])
	}
	return h, nil
}

// LOOKUP_MANY request payload: count uint32, keyLen uint16, then count keys
// of keyLen bytes each. The per-frame keyLen lets the server reject a
// mismatch with one typed reply instead of per-key surprises.

// appendLookupManyReq encodes keys (all of length keyLen) onto dst.
func appendLookupManyReq(dst []byte, keys [][]byte, keyLen int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(keyLen))
	for _, k := range keys {
		dst = append(dst, k...)
	}
	return dst
}

// parseLookupManyReq splits a LOOKUP_MANY payload into its key slices
// (aliasing p). keys is appended to in place.
func parseLookupManyReq(p []byte, wantKeyLen int, keys [][]byte) ([][]byte, Status) {
	if len(p) < 6 {
		return keys, StatusErrMalformed
	}
	count := int(binary.LittleEndian.Uint32(p[0:4]))
	keyLen := int(binary.LittleEndian.Uint16(p[4:6]))
	if count > MaxBatchKeys {
		return keys, StatusErrOversized
	}
	if keyLen != wantKeyLen {
		return keys, StatusErrKeyLen
	}
	body := p[6:]
	if keyLen == 0 || len(body) != count*keyLen {
		return keys, StatusErrMalformed
	}
	for i := 0; i < count; i++ {
		keys = append(keys, body[i*keyLen:(i+1)*keyLen])
	}
	return keys, StatusOK
}

// LOOKUP_MANY reply payload: count uint32, then count results of 9 bytes
// each ({ok uint8, value uint64}).

// appendLookupManyReply encodes results onto dst.
func appendLookupManyReply(dst []byte, results []flowserve.Result) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(results)))
	for _, r := range results {
		b := byte(0)
		if r.OK {
			b = 1
		}
		dst = append(dst, b)
		dst = binary.LittleEndian.AppendUint64(dst, r.Value)
	}
	return dst
}

// parseLookupManyReply decodes a reply payload into results[:count].
func parseLookupManyReply(p []byte, results []flowserve.Result) (int, error) {
	if len(p) < 4 {
		return 0, fmt.Errorf("flowwire: LOOKUP_MANY reply payload is %d bytes", len(p))
	}
	count := int(binary.LittleEndian.Uint32(p[0:4]))
	body := p[4:]
	if len(body) != count*9 || count > len(results) {
		return 0, fmt.Errorf("flowwire: LOOKUP_MANY reply claims %d results in %d bytes", count, len(body))
	}
	for i := 0; i < count; i++ {
		rec := body[i*9 : (i+1)*9]
		results[i] = flowserve.Result{
			OK:    rec[0] != 0,
			Value: binary.LittleEndian.Uint64(rec[1:9]),
		}
	}
	return count, nil
}
