// Package stats is the unified observability layer: stable dotted-name
// counters, cycle-bucketed latency histograms, and a schema-versioned JSON
// document that carries every experiment's rows and per-component counters.
//
// The package sits below every simulator component (it imports only the
// standard library), so cpu threads, the cache hierarchy, accelerator units,
// the query distributor, cuckoo tables and the hybrid controller can all
// publish into one Snapshot without import cycles. Everything here is
// deterministic: maps serialize in sorted order, histograms quantize to
// fixed bucket boundaries, and documents contain no timestamps or
// host-dependent values, so the same simulation always produces the same
// bytes — the property the runner's verify mode and CI's serial-vs-pooled
// byte comparison check.
package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// Histogram counts cycle-valued observations in log-scaled buckets: values
// below 16 get exact buckets; larger values land in power-of-two octaves
// split into 16 linear sub-buckets, bounding the relative quantization
// error at 1/16 (~6%). Quantiles return a bucket's upper bound, so they are
// exact integers that do not depend on observation order.
type Histogram struct {
	count   uint64
	sum     uint64
	buckets map[int]uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a value to its bucket: 0..15 exact, then 16 sub-buckets
// per power-of-two octave.
func bucketIndex(v uint64) int {
	if v < 16 {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= 4
	sub := int((v >> (uint(exp) - 4)) & 15)
	return 16 + (exp-4)*16 + sub
}

// bucketUpper returns the largest value that maps to bucket idx — the value
// quantiles report.
func bucketUpper(idx int) uint64 {
	if idx < 16 {
		return uint64(idx)
	}
	rel := idx - 16
	exp := uint(rel/16) + 4
	sub := uint64(rel % 16)
	return (uint64(1) << exp) + (sub+1)<<(exp-4) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.buckets == nil {
		h.buckets = make(map[int]uint64)
	}
	h.buckets[bucketIndex(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of all observed values (for means).
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the exact average of the observed values.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Merge adds another histogram's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.buckets == nil {
		h.buckets = make(map[int]uint64)
	}
	for idx, c := range o.buckets {
		h.buckets[idx] += c
	}
	h.count += o.count
	h.sum += o.sum
}

// sortedIdxs returns the populated bucket indexes in ascending order.
func (h *Histogram) sortedIdxs() []int {
	idxs := make([]int, 0, len(h.buckets))
	for idx := range h.buckets {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile observation (q in [0,1]; out-of-range values clamp, NaN reads as
// 0). Deterministic: the result depends only on the bucket counts, never on
// observation order. A histogram with no populated buckets — empty, or
// decoded from a document whose count and bucket string disagree — returns
// 0 rather than panicking.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 || len(h.buckets) == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	idxs := h.sortedIdxs()
	for _, idx := range idxs {
		cum += h.buckets[idx]
		if cum >= target {
			return bucketUpper(idx)
		}
	}
	return bucketUpper(idxs[len(idxs)-1])
}

// MarshalJSON emits {"count":N,"sum":S,"buckets":"idx:count,idx:count"} with
// buckets in ascending index order — a compact, byte-stable encoding.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"count":%d,"sum":%d,"buckets":"`, h.count, h.sum)
	for i, idx := range h.sortedIdxs() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", idx, h.buckets[idx])
	}
	b.WriteString(`"}`)
	return b.Bytes(), nil
}

// UnmarshalJSON parses the MarshalJSON encoding.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var wire struct {
		Count   uint64 `json:"count"`
		Sum     uint64 `json:"sum"`
		Buckets string `json:"buckets"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	h.count = wire.Count
	h.sum = wire.Sum
	h.buckets = nil
	if wire.Buckets == "" {
		return nil
	}
	h.buckets = make(map[int]uint64)
	for _, pair := range strings.Split(wire.Buckets, ",") {
		idxStr, cntStr, ok := strings.Cut(pair, ":")
		if !ok {
			return fmt.Errorf("stats: malformed histogram bucket %q", pair)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil {
			return fmt.Errorf("stats: malformed histogram bucket index %q", idxStr)
		}
		cnt, err := strconv.ParseUint(cntStr, 10, 64)
		if err != nil {
			return fmt.Errorf("stats: malformed histogram bucket count %q", cntStr)
		}
		h.buckets[idx] = cnt
	}
	return nil
}
