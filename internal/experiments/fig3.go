package experiments

import (
	"io"

	"halo/internal/classify"
	"halo/internal/cpu"
	"halo/internal/halo"
	"halo/internal/metrics"
	"halo/internal/stats"
	"halo/internal/trafficgen"
	"halo/internal/vswitch"
)

// Fig3Row is one traffic configuration's packet-processing breakdown.
type Fig3Row struct {
	Scenario            string
	CyclesPerPacket     float64
	StageShare          [6]float64 // indexed by vswitch.Stage
	ClassificationShare float64
}

// Fig3Result is the reproduced Fig. 3: the per-stage cycle breakdown of
// software packet processing across the five traffic configurations.
type Fig3Result struct {
	Rows  []Fig3Row
	Table *metrics.Table
}

type workloadRules struct{ w *trafficgen.Workload }

func (wr workloadRules) Install(ts *classify.TupleSpace) error { return wr.w.InstallRules(ts) }

// fig3Scenarios returns the traffic configurations of the sweep under cfg.
func fig3Scenarios(cfg Config) []trafficgen.Scenario {
	scenarios := trafficgen.PaperScenarios()
	if cfg.Quick {
		for i := range scenarios {
			if scenarios[i].Flows > 200_000 {
				scenarios[i].Flows = 200_000
			}
		}
	}
	return scenarios
}

// Fig3Sweep decomposes Fig. 3 into one point per traffic configuration.
func Fig3Sweep() Sweep {
	return Sweep{
		Points: func(cfg Config) []Point {
			scns := fig3Scenarios(cfg)
			pts := make([]Point, len(scns))
			for i, s := range scns {
				pts[i] = Point{Experiment: "fig3", Index: i, Label: s.Name}
			}
			return pts
		},
		RunPoint: func(cfg Config, p Point) any {
			snap := pointSnapshot(cfg)
			row := runFig3Scenario(cfg, fig3Scenarios(cfg)[p.Index], snap)
			recordSnap(cfg, p, snap)
			return row
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			assembleFig3(rows).Table.Render(w)
		},
	}
}

// RunFig3 reproduces Fig. 3 (software packet-processing breakdown).
func RunFig3(cfg Config) *Fig3Result {
	return assembleFig3(runSerial(cfg, Fig3Sweep()))
}

// runFig3Scenario measures one traffic configuration on a fresh platform.
func runFig3Scenario(cfg Config, scn trafficgen.Scenario, snap *stats.Snapshot) Fig3Row {
	packets := pickSize(cfg, 3000, 20000)
	warmup := pickSize(cfg, 1000, 10000) // §5.2: warm up before measuring

	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	// The OpenFlow layer is disabled here, as in the paper's analysis
	// ("seldom accessed in practice", §3.1): rules install directly as
	// megaflows.
	sw, err := vswitch.New(p, vswitch.DefaultConfig())
	if err != nil {
		panic(err)
	}
	w := trafficgen.Generate(scn, cfg.Seed)
	if err := sw.InstallRules([]vswitch.RuleInstaller{workloadRules{w}}); err != nil {
		panic(err)
	}
	sw.Warm()
	th := cpu.NewThread(p.Hier, 0)
	for i := 0; i < warmup; i++ {
		pkt, _ := w.NextPacket()
		sw.ProcessPacket(th, &pkt)
	}
	sw.ResetStats()
	for i := 0; i < packets; i++ {
		pkt, _ := w.NextPacket()
		sw.ProcessPacket(th, &pkt)
	}

	collectInto(snap, p, sw, th)

	b := sw.Breakdown()
	total := float64(b.Total())
	row := Fig3Row{
		Scenario:            scn.Name,
		CyclesPerPacket:     sw.CyclesPerPacket(),
		ClassificationShare: b.ClassificationShare(),
	}
	for s := 0; s < len(row.StageShare); s++ {
		row.StageShare[s] = float64(b[s]) / total
	}
	return row
}

func assembleFig3(rows []any) *Fig3Result {
	res := &Fig3Result{
		Table: metrics.NewTable("Figure 3: packet-processing breakdown (software OVS datapath)",
			"scenario", "cyc/pkt", "pkt-io", "preproc", "emc", "megaflow", "other", "classification"),
	}
	res.Table.SetCaption("paper: 340-993 cyc/pkt, classification 30.9%%-77.8%%")
	for _, r := range rows {
		row := r.(Fig3Row)
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.Scenario, row.CyclesPerPacket,
			metrics.Percent(row.StageShare[vswitch.StagePacketIO]),
			metrics.Percent(row.StageShare[vswitch.StagePreProc]),
			metrics.Percent(row.StageShare[vswitch.StageEMC]),
			metrics.Percent(row.StageShare[vswitch.StageMegaFlow]),
			metrics.Percent(row.StageShare[vswitch.StageOther]),
			metrics.Percent(row.ClassificationShare))
	}
	return res
}
