package hashfn

import (
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	key := []byte("10.0.0.1:443->10.0.0.2:8080/tcp")
	if Hash(SeedPrimary, key) != Hash(SeedPrimary, key) {
		t.Fatal("Hash is not deterministic")
	}
	if Hash(SeedPrimary, key) == Hash(SeedSecondary, key) {
		t.Fatal("different seeds produced the same hash")
	}
}

func TestHashLengthSensitivity(t *testing.T) {
	// A prefix must hash differently from its zero-extension: flow keys of
	// different header sizes must not collide trivially.
	a := []byte{1, 2, 3}
	b := []byte{1, 2, 3, 0}
	if Hash(SeedPrimary, a) == Hash(SeedPrimary, b) {
		t.Fatal("zero-extended key collided with its prefix")
	}
}

func TestHashEmptyKey(t *testing.T) {
	// Must not panic and must be seed-dependent.
	if Hash(SeedPrimary, nil) == Hash(SeedSecondary, nil) {
		t.Fatal("empty key hash is seed-independent")
	}
}

func TestHash64MatchesHashOfWord(t *testing.T) {
	check := func(w uint64) bool {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> (8 * i))
		}
		return Hash64(SeedPrimary, w) == Hash(SeedPrimary, buf[:])
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Hash64(SeedPrimary, 0x0123456789abcdef)
	totalFlips := 0
	for bit := 0; bit < 64; bit++ {
		h := Hash64(SeedPrimary, 0x0123456789abcdef^(1<<bit))
		diff := base ^ h
		flips := 0
		for diff != 0 {
			flips += int(diff & 1)
			diff >>= 1
		}
		totalFlips += flips
	}
	avg := float64(totalFlips) / 64
	if avg < 24 || avg > 40 {
		t.Fatalf("average bit flips per input-bit flip = %.1f, want ~32", avg)
	}
}

func TestSignatureNeverZero(t *testing.T) {
	check := func(h uint64) bool { return Signature(h) != 0 }
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	// The reserved case maps to 1.
	if Signature(0x0000ffffffffffff) != 1 {
		t.Fatal("zero high bits should map signature to 1")
	}
}

func TestAltBucketInvolution(t *testing.T) {
	check := func(bucket uint64, sig uint16, sizeLog uint8) bool {
		n := uint64(1) << (1 + sizeLog%20) // 2 .. 2^20 buckets
		b := bucket % n
		if sig == 0 {
			sig = 1
		}
		alt := AltBucket(b, sig, n)
		if alt == b || alt >= n {
			return false
		}
		return AltBucket(alt, sig, n) == b
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketPairConsistentWithAltBucket(t *testing.T) {
	const n = 1 << 12
	for i := uint64(0); i < 1000; i++ {
		h := Hash64(SeedPrimary, i)
		b1, b2 := BucketPair(h, n)
		if b1 >= n || b2 >= n {
			t.Fatalf("bucket out of range: %d %d", b1, b2)
		}
		if AltBucket(b1, Signature(h), n) != b2 {
			t.Fatal("BucketPair disagrees with AltBucket")
		}
		if AltBucket(b2, Signature(h), n) != b1 {
			t.Fatal("alt of alt is not the primary bucket")
		}
	}
}

func TestBucketDistributionUniform(t *testing.T) {
	const n = 256
	counts := make([]int, n)
	const draws = 256 * 1000
	for i := 0; i < draws; i++ {
		b1, _ := BucketPair(Hash64(SeedPrimary, uint64(i)), n)
		counts[b1]++
	}
	// Chi-squared-ish sanity: each bucket expects 1000 hits; allow ±20%.
	for b, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("bucket %d got %d hits, want ~1000", b, c)
		}
	}
}

func TestShardIndexDistributionUniform(t *testing.T) {
	const shards = 16
	counts := make([]int, shards)
	const draws = 16 * 1000
	for i := 0; i < draws; i++ {
		s := ShardIndex(Hash64(SeedPrimary, uint64(i)), shards)
		if s >= shards {
			t.Fatalf("shard index %d out of range", s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("shard %d got %d draws, want ~1000", s, c)
		}
	}
}

func TestShardIndexIndependentOfBucketAndSignature(t *testing.T) {
	// Keys pinned to one shard must still spread over buckets and keep full
	// signature entropy: the three index fields read disjoint hash bits.
	const shards = 8
	const buckets = 256
	bucketCounts := make([]int, buckets)
	sigs := make(map[uint16]bool)
	drawn := 0
	for i := 0; drawn < 32*1000; i++ {
		h := Hash64(SeedPrimary, uint64(i))
		if ShardIndex(h, shards) != 3 {
			continue
		}
		drawn++
		b1, _ := BucketPair(h, buckets)
		bucketCounts[b1]++
		sigs[Signature(h)] = true
	}
	for b, c := range bucketCounts {
		if c < 60 || c > 190 { // expect 125 per bucket
			t.Fatalf("bucket %d got %d single-shard draws, want ~125", b, c)
		}
	}
	if len(sigs) < 20000 {
		t.Fatalf("single-shard keys produced only %d distinct signatures", len(sigs))
	}
}

func TestHashCollisionRateLow(t *testing.T) {
	seen := make(map[uint64]bool, 1<<16)
	collisions := 0
	for i := 0; i < 1<<16; i++ {
		h := Hash64(SeedPrimary, uint64(i))
		if seen[h] {
			collisions++
		}
		seen[h] = true
	}
	if collisions != 0 {
		t.Fatalf("%d collisions in 64K sequential keys", collisions)
	}
}
