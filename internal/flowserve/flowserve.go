// Package flowserve is the concurrent flow-serving runtime: the repository's
// cuckoo flow-table algorithms rebuilt over native Go memory and real
// goroutines instead of simulated memory and modelled cycles. It is the
// first layer of the codebase whose concurrency `go test -race` can
// meaningfully exercise.
//
// The design transposes the paper's hardware mechanisms into software:
//
//   - The table is split into N shards selected by disjoint bits of the
//     primary hash (hashfn.ShardIndex), mirroring HALO's one-accelerator-
//     per-LLC-slice partitioning: independent shards never contend.
//   - Each shard guards its buckets with a seqlock — an atomic sequence
//     counter that is odd while a writer mutates and revalidated by readers
//     after every probe. This is the software analogue of the hardware lock
//     bit + SNAPSHOT_READ (paper §4.2): readers run without locks and a
//     conflicting write is detected, not prevented. Unlike the simulated
//     cuckoo table's bounded optimistic protocol, a reader here never
//     returns a torn probe: after maxOptimistic failed attempts it takes
//     the writer lock and probes exclusively.
//   - Mutations (insert, delete, displacement) take a per-shard mutex, so
//     each shard is single-writer — DPDK's rte_hash makes the same
//     single-writer/multi-reader assumption.
//   - Batch lookups group keys per shard and validate one sequence window
//     per group (see batch.go), the software analogue of issuing LOOKUP_NB
//     for a batch and polling the results with SNAPSHOT_READ.
//   - Shards grow under live traffic: a resize installs a second, larger
//     region and migrates buckets incrementally — a bounded number per
//     writer operation or explicit ResizeStep tick — while readers probe
//     old-then-new under the same sequence window and never block
//     (see resize.go and DESIGN.md §12).
//
// Layout per shard region mirrors rte_hash (and the simulated cuckoo.Table):
// an array of 8-entry buckets holding packed {signature, slot} words, plus a
// key-value array of 8-byte words. Every word readers can observe is an
// atomic.Uint64, which makes the seqlock race-detector-clean and bounds
// tearing at word granularity (the seqlock then rules out cross-word mixes).
package flowserve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"halo/internal/hashfn"
	"halo/internal/stats"
)

// EntriesPerBucket matches the simulated table and rte_hash: eight entries
// per bucket.
const EntriesPerBucket = 8

// maxOptimistic bounds seqlock probe attempts before a reader falls back to
// the writer lock. Retries are counted in flowserve.lookup.retries; the
// fallback in flowserve.lookup.lock_fallbacks.
const maxOptimistic = 8

// maxDisplacements bounds the BFS cuckoo search, as in the simulated table.
const maxDisplacements = 128

// MaxKeyLen is the largest supported fixed key length in bytes.
const MaxKeyLen = 64

// maxKeyWords is MaxKeyLen in 8-byte words; probe scratch is sized to it.
const maxKeyWords = MaxKeyLen / 8

// maxPerShard is the exclusive upper bound on a shard's slot count: slot
// indexes are stored as uint32 both in bucket entries and the free list, so
// a shard holding 1<<32 entries would need a slot index that wraps to zero.
const maxPerShard = 1 << 32

// defaultMigrateBuckets is how many old-region buckets a writer operation
// migrates while a resize is in flight, when Config.MigrateBuckets is zero.
const defaultMigrateBuckets = 2

// Common errors.
var (
	ErrTableFull = errors.New("flowserve: shard full (displacement path exhausted)")
	ErrKeyLen    = errors.New("flowserve: key length does not match table")
	ErrKeyExists = errors.New("flowserve: key already present")
	ErrShrink    = errors.New("flowserve: Grow target does not exceed current capacity")
)

// Config parametrises table creation.
type Config struct {
	// Shards is the number of independent sub-tables (power of two, 1..4096).
	Shards int
	// Entries is the total key-value capacity, split evenly across shards.
	// Shard assignment is by hash, so a shard can fill slightly before the
	// whole table does; size headroom (~10–20% at high shard counts) keeps
	// ErrTableFull away.
	Entries uint64
	// KeyLen is the fixed key size in bytes (1..MaxKeyLen).
	KeyLen int

	// GrowAt, when non-zero, enables auto-grow: a shard whose load factor
	// exceeds GrowAt after an insert (or that fails an insert outright)
	// starts an incremental doubling. Must be in (0,1). Zero disables
	// auto-grow; Table.Grow still works.
	GrowAt float64
	// MigrateBuckets bounds the per-writer-operation migration quantum
	// during a resize: each Insert/Update/Delete moves at most this many
	// old-region buckets before doing its own work. Zero means
	// defaultMigrateBuckets; readers never migrate.
	MigrateBuckets int
}

// Table is a sharded concurrent flow table. Lookups are safe from any number
// of goroutines concurrently with mutations; mutations themselves serialise
// per shard on an internal mutex.
type Table struct {
	shards   []*shard
	keyLen   int
	keyWords int

	// badLen counts lookups whose key length does not match the table.
	// Such keys never hash to a shard, so charging any shard's counters
	// would skew that shard's hit ratio; they are a table-level miss class
	// of their own (flowserve.lookup.badlen).
	badLen atomic.Uint64

	// batchPool recycles Batch scratch for Table.LookupMany callers that do
	// not pin their own Batch.
	batchPool sync.Pool
}

// New creates an empty table.
func New(cfg Config) (*Table, error) {
	if cfg.KeyLen <= 0 || cfg.KeyLen > MaxKeyLen {
		return nil, fmt.Errorf("flowserve: key length %d out of range 1..%d", cfg.KeyLen, MaxKeyLen)
	}
	if cfg.Shards <= 0 || cfg.Shards > 4096 || cfg.Shards&(cfg.Shards-1) != 0 {
		return nil, fmt.Errorf("flowserve: shard count %d not a power of two in 1..4096", cfg.Shards)
	}
	if cfg.Entries == 0 {
		return nil, errors.New("flowserve: zero capacity")
	}
	if cfg.GrowAt != 0 && (cfg.GrowAt <= 0 || cfg.GrowAt >= 1) {
		return nil, fmt.Errorf("flowserve: GrowAt %v out of range (0,1)", cfg.GrowAt)
	}
	if cfg.MigrateBuckets < 0 {
		return nil, fmt.Errorf("flowserve: MigrateBuckets %d negative", cfg.MigrateBuckets)
	}
	perShard := (cfg.Entries + uint64(cfg.Shards) - 1) / uint64(cfg.Shards)
	// >= (not >): slot indexes are uint32, so exactly 1<<32 entries would
	// truncate to a zero capacity (see maxPerShard).
	if perShard >= maxPerShard {
		return nil, fmt.Errorf("flowserve: %d entries per shard exceeds slot index width", perShard)
	}
	quantum := cfg.MigrateBuckets
	if quantum == 0 {
		quantum = defaultMigrateBuckets
	}
	t := &Table{
		shards:   make([]*shard, cfg.Shards),
		keyLen:   cfg.KeyLen,
		keyWords: (cfg.KeyLen + 7) / 8,
	}
	for i := range t.shards {
		t.shards[i] = newShard(perShard, cfg.KeyLen, t.keyWords, cfg.GrowAt, quantum)
	}
	t.batchPool = newBatchPool(t)
	return t, nil
}

// KeyLen returns the table's fixed key length.
func (t *Table) KeyLen() int { return t.keyLen }

// Shards returns the number of shards.
func (t *Table) Shards() int { return len(t.shards) }

// Capacity returns the total key-value capacity. During a resize a shard
// reports its new (larger) region's capacity — that is where every key,
// resident or incoming, ends up.
func (t *Table) Capacity() uint64 {
	var c uint64
	for _, sh := range t.shards {
		c += sh.regions.Load().cur.capacity
	}
	return c
}

// LoadFactor returns Size()/Capacity() — a racy-but-monotonic-enough gauge
// under concurrent writes, exact when quiescent.
func (t *Table) LoadFactor() float64 {
	return float64(t.Size()) / float64(t.Capacity())
}

// Size returns the number of live entries (a racy sum under concurrent
// writes, exact when quiescent).
func (t *Table) Size() uint64 {
	var n uint64
	for _, sh := range t.shards {
		n += sh.size.Load()
	}
	return n
}

// route hashes a key and resolves the owning shard. Bucket indexes are NOT
// derived here: they depend on a region's bucket count, which changes under
// resize, so each probe derives them from the region it is about to scan.
func (t *Table) route(key []byte, kw *[maxKeyWords]uint64) (sh *shard, h uint64, sig uint16) {
	keyToWords(key, kw)
	h = hashfn.Hash(hashfn.SeedPrimary, key)
	sig = hashfn.Signature(h)
	sh = t.shards[hashfn.ShardIndex(h, uint64(len(t.shards)))]
	return
}

// Lookup finds a key and returns its value. Safe for unbounded concurrency.
// A mismatched key length is a miss counted in the table-level badlen
// counter (it belongs to no shard).
func (t *Table) Lookup(key []byte) (value uint64, ok bool) {
	if len(key) != t.keyLen {
		t.badLen.Add(1)
		return 0, false
	}
	var kw [maxKeyWords]uint64
	sh, h, sig := t.route(key, &kw)
	return sh.lookup(&kw, t.keyWords, h, sig)
}

// Insert adds a key-value pair. Inserting an existing key returns
// ErrKeyExists (use Update to change a value).
func (t *Table) Insert(key []byte, value uint64) error {
	if len(key) != t.keyLen {
		return ErrKeyLen
	}
	var kw [maxKeyWords]uint64
	sh, h, sig := t.route(key, &kw)
	return sh.insert(&kw, t.keyWords, h, sig, value)
}

// Update changes the value of an existing key, reporting whether it was
// present.
func (t *Table) Update(key []byte, value uint64) bool {
	if len(key) != t.keyLen {
		return false
	}
	var kw [maxKeyWords]uint64
	sh, h, sig := t.route(key, &kw)
	return sh.update(&kw, t.keyWords, h, sig, value)
}

// Delete removes a key, reporting whether it was present.
func (t *Table) Delete(key []byte) bool {
	if len(key) != t.keyLen {
		return false
	}
	var kw [maxKeyWords]uint64
	sh, h, sig := t.route(key, &kw)
	return sh.delete(&kw, t.keyWords, h, sig)
}

// keyToWords packs a key into little-endian 8-byte words, zero-padding the
// tail — the in-memory key representation (word-wise atomic loads are what
// keep the read path race-free).
func keyToWords(key []byte, kw *[maxKeyWords]uint64) {
	w := 0
	for len(key) >= 8 {
		kw[w] = uint64(key[0]) | uint64(key[1])<<8 | uint64(key[2])<<16 | uint64(key[3])<<24 |
			uint64(key[4])<<32 | uint64(key[5])<<40 | uint64(key[6])<<48 | uint64(key[7])<<56
		key = key[8:]
		w++
	}
	if len(key) > 0 {
		var last uint64
		for i, b := range key {
			last |= uint64(b) << (8 * i)
		}
		kw[w] = last
	}
}

// wordsToKey unpacks keyToWords' representation back into bytes — the
// migration path rehashes resident keys for the grown region's bucket
// geometry, and hashes are computed over bytes.
func wordsToKey(kw *[maxKeyWords]uint64, keyLen int, out *[MaxKeyLen]byte) []byte {
	for w := 0; w*8 < keyLen; w++ {
		v := kw[w]
		base := w * 8
		for i := 0; i < 8 && base+i < keyLen; i++ {
			out[base+i] = byte(v >> (8 * i))
		}
	}
	return out[:keyLen]
}

// region is one generation of a shard's storage: the bucket array, the
// key-value slots it indexes, and the writer-owned free list. A shard has
// one region in steady state and two while a resize migrates entries from
// the old (smaller) region to the current one.
type region struct {
	bucketCount uint64
	capacity    uint64

	// entries holds bucketCount*EntriesPerBucket packed bucket entries:
	// slot<<16 | signature, zero when empty (signatures are never zero).
	entries []atomic.Uint64

	// kv holds capacity*kvStride words: each slot is keyWords key words
	// followed by one value word.
	kv []atomic.Uint64

	// free holds unallocated slots (writer-owned, guarded by the shard mu).
	free []uint32
}

// newRegion sizes storage for the requested entry count. The bucket count
// is the entry count divided by the bucket width rounded UP, then rounded
// up to a power of two — rounding down first (as the pre-resize code did)
// left e.g. a 20-entry shard with only 16 addressable bucket entries while
// Capacity() reported 20, so ErrTableFull fired below advertised capacity.
func newRegion(entries uint64, keyWords int) *region {
	want := (entries + EntriesPerBucket - 1) / EntriesPerBucket
	bc := uint64(2)
	for bc < want {
		bc <<= 1
	}
	r := &region{
		bucketCount: bc,
		capacity:    entries,
		entries:     make([]atomic.Uint64, bc*EntriesPerBucket),
		kv:          make([]atomic.Uint64, entries*uint64(keyWords+1)),
	}
	r.free = make([]uint32, 0, entries)
	for i := int64(entries) - 1; i >= 0; i-- {
		r.free = append(r.free, uint32(i))
	}
	return r
}

// buckets returns the key's candidate bucket pair in this region's
// geometry.
func (r *region) buckets(h uint64) (b1, b2 uint64) {
	return hashfn.BucketPair(h, r.bucketCount)
}

// regionPair is the reader-visible storage set, swapped atomically. old is
// nil in steady state; while a resize is in flight readers probe old first,
// then cur, under one seqlock window.
type regionPair struct {
	cur *region
	old *region
}

// shard is one independent sub-table: an 8-entry-bucket cuckoo table whose
// reader-visible words are all atomics, guarded by a seqlock for readers and
// a mutex for writers.
type shard struct {
	kvStride int // keyWords + 1 value word
	keyLen   int

	// seq is the seqlock generation: odd while a writer is mutating. Readers
	// snapshot it before probing and revalidate after.
	seq atomic.Uint64

	// regions is the current storage set. Readers load it once per probe
	// attempt; writers swap it under mu (the swap itself moves no keys, so
	// either view is complete).
	regions atomic.Pointer[regionPair]

	size atomic.Uint64
	c    shardCounters

	mu   sync.Mutex // serialises writers; also the reader fallback path

	// Resize state (writer-owned, guarded by mu).
	migrated  uint64  // old-region buckets fully migrated
	growAt    float64 // auto-grow load factor; 0 = disabled
	quantum   int     // buckets migrated per writer op
	pauseHist *stats.Histogram // ns per migration step (writer-owned)

	// BFS displacement scratch (writer-owned, guarded by mu).
	bfsNodes   []pathNode
	bfsQueue   []frontierItem
	bfsPath    []pathNode
	bfsVisited map[uint64]bool
}

// shardCounters are per-shard operation counters. Reader-side counters are
// atomics because lookups run concurrently; keeping them per shard spreads
// the cache-line traffic that a single shared counter block would serialise.
type shardCounters struct {
	lookups   atomic.Uint64
	hits      atomic.Uint64
	retries   atomic.Uint64 // seqlock revalidation failures (re-probes)
	fallbacks atomic.Uint64 // optimistic attempts exhausted → locked probe

	inserts       atomic.Uint64
	insertExists  atomic.Uint64
	insertFull    atomic.Uint64
	updates       atomic.Uint64
	deletes       atomic.Uint64
	displacements atomic.Uint64

	batches   atomic.Uint64 // per-shard groups served by LookupMany
	batchKeys atomic.Uint64

	grows           atomic.Uint64 // resizes started (one per doubling)
	resizeSteps     atomic.Uint64 // bounded migration steps executed
	migratedBuckets atomic.Uint64
	migratedKeys    atomic.Uint64
	resizeStalls    atomic.Uint64 // steps that could not place a key (table truly full)
}

func newShard(entries uint64, keyLen, keyWords int, growAt float64, quantum int) *shard {
	sh := &shard{
		kvStride:  keyWords + 1,
		keyLen:    keyLen,
		growAt:    growAt,
		quantum:   quantum,
		pauseHist: stats.NewHistogramRes(stats.HighResSubBits),
	}
	sh.regions.Store(&regionPair{cur: newRegion(entries, keyWords)})
	return sh
}

// packEntry encodes a live bucket entry; sig is never zero, so a zero word
// means empty.
func packEntry(sig uint16, slot uint32) uint64 {
	return uint64(slot)<<16 | uint64(sig)
}

// beginWrite/endWrite bracket every mutation of reader-visible words. The
// caller must hold mu.
func (sh *shard) beginWrite() { sh.seq.Add(1) } // even → odd
func (sh *shard) endWrite()   { sh.seq.Add(1) } // odd → even

// keyEqual compares slot's stored key words in r against kw. Word loads are
// atomic; consistency across words is the seqlock's job.
func (sh *shard) keyEqual(r *region, slot uint32, kw *[maxKeyWords]uint64, nw int) bool {
	base := int(slot) * sh.kvStride
	for i := 0; i < nw; i++ {
		if r.kv[base+i].Load() != kw[i] {
			return false
		}
	}
	return true
}

// probeRegion scans the key's candidate bucket pair in one region. It may
// run concurrently with a writer; callers must validate the sequence window
// before trusting the result (or hold mu).
func (sh *shard) probeRegion(r *region, kw *[maxKeyWords]uint64, nw int, h uint64, sig uint16) (uint64, bool) {
	b1, b2 := r.buckets(h)
	for _, b := range [2]uint64{b1, b2} {
		base := b * EntriesPerBucket
		for e := uint64(0); e < EntriesPerBucket; e++ {
			ent := r.entries[base+e].Load()
			if uint16(ent) != sig {
				continue
			}
			slot := uint32(ent >> 16)
			if sh.keyEqual(r, slot, kw, nw) {
				return r.kv[int(slot)*sh.kvStride+nw].Load(), true
			}
		}
	}
	return 0, false
}

// probe scans old-then-current regions. During a migration every key lives
// in exactly one region (momentarily in both mid-publish, with the same
// value either way), so the first match wins.
func (sh *shard) probe(rp *regionPair, kw *[maxKeyWords]uint64, nw int, h uint64, sig uint16) (uint64, bool) {
	if rp.old != nil {
		if v, ok := sh.probeRegion(rp.old, kw, nw, h, sig); ok {
			return v, ok
		}
	}
	return sh.probeRegion(rp.cur, kw, nw, h, sig)
}

// lookup runs the seqlock read protocol: snapshot the sequence, probe,
// revalidate. A probe raced by a writer is discarded and retried; after
// maxOptimistic attempts the reader takes the writer lock, so — unlike the
// simulated table's give-up path — a torn result is never returned. The
// region set is re-loaded inside the window, so a lookup racing a resize
// swap either sees the pre-swap or post-swap regions, both complete.
func (sh *shard) lookup(kw *[maxKeyWords]uint64, nw int, h uint64, sig uint16) (uint64, bool) {
	sh.c.lookups.Add(1)
	for attempt := 0; attempt < maxOptimistic; attempt++ {
		s1 := sh.seq.Load()
		if s1&1 != 0 {
			// A writer is mid-mutation; yield rather than spin-read.
			sh.c.retries.Add(1)
			runtime.Gosched()
			continue
		}
		rp := sh.regions.Load()
		v, ok := sh.probe(rp, kw, nw, h, sig)
		if sh.seq.Load() == s1 {
			if ok {
				sh.c.hits.Add(1)
			}
			return v, ok
		}
		sh.c.retries.Add(1)
	}
	// Writer storm: one exclusive probe settles it.
	sh.c.fallbacks.Add(1)
	sh.mu.Lock()
	v, ok := sh.probe(sh.regions.Load(), kw, nw, h, sig)
	sh.mu.Unlock()
	if ok {
		sh.c.hits.Add(1)
	}
	return v, ok
}

// locateIn finds the bucket entry holding the key in one region. Caller
// must hold mu.
func (sh *shard) locateIn(r *region, kw *[maxKeyWords]uint64, nw int, h uint64, sig uint16) (entIdx uint64, slot uint32, found bool) {
	b1, b2 := r.buckets(h)
	for _, b := range [2]uint64{b1, b2} {
		base := b * EntriesPerBucket
		for e := uint64(0); e < EntriesPerBucket; e++ {
			ent := r.entries[base+e].Load()
			if uint16(ent) != sig {
				continue
			}
			s := uint32(ent >> 16)
			if sh.keyEqual(r, s, kw, nw) {
				return base + e, s, true
			}
		}
	}
	return 0, 0, false
}

// locate finds the key in either region of rp, returning the region that
// holds it. Caller must hold mu.
func (sh *shard) locate(rp *regionPair, kw *[maxKeyWords]uint64, nw int, h uint64, sig uint16) (r *region, entIdx uint64, slot uint32, found bool) {
	if rp.old != nil {
		if entIdx, slot, found = sh.locateIn(rp.old, kw, nw, h, sig); found {
			return rp.old, entIdx, slot, true
		}
	}
	if entIdx, slot, found = sh.locateIn(rp.cur, kw, nw, h, sig); found {
		return rp.cur, entIdx, slot, true
	}
	return nil, 0, 0, false
}

// writeKV stores a slot's key words and value in r. The slot is free (no
// bucket entry points to it), so this runs outside the seqlock window; the
// entry store that publishes it orders after these writes.
func (sh *shard) writeKV(r *region, slot uint32, kw *[maxKeyWords]uint64, nw int, value uint64) {
	base := int(slot) * sh.kvStride
	for i := 0; i < nw; i++ {
		r.kv[base+i].Store(kw[i])
	}
	r.kv[base+nw].Store(value)
}

// placeLocked inserts an already-validated new key into the current region:
// direct placement into a free candidate entry, else a BFS displacement
// chain. Caller must hold mu. Returns false when the region cannot take the
// key (no free slot or no displacement path).
func (sh *shard) placeLocked(cur *region, kw *[maxKeyWords]uint64, nw int, h uint64, sig uint16, value uint64) bool {
	if len(cur.free) == 0 {
		return false
	}
	b1, b2 := cur.buckets(h)

	// Direct placement into a free entry of either candidate bucket.
	if entIdx, ok := sh.freeEntry(cur, b1, b2); ok {
		slot := cur.free[len(cur.free)-1]
		cur.free = cur.free[:len(cur.free)-1]
		sh.writeKV(cur, slot, kw, nw, value)
		// Publishing one empty→live entry is atomic on its own, but the
		// slot may be recycled: a reader that captured the old entry before
		// the slot was freed could mix old and new key words into a phantom
		// match. The seqlock window forces such readers to re-probe.
		sh.beginWrite()
		cur.entries[entIdx].Store(packEntry(sig, slot))
		sh.endWrite()
		return true
	}

	// Displacement: BFS for a move chain (read-only, outside the write
	// window — the mutex already excludes other writers), then apply the
	// moves and the final placement inside one window.
	path := sh.findCuckooPath(cur, b1, b2)
	if path == nil {
		return false
	}
	slot := cur.free[len(cur.free)-1]
	cur.free = cur.free[:len(cur.free)-1]
	sh.writeKV(cur, slot, kw, nw, value)
	sh.beginWrite()
	sh.applyCuckooPath(cur, path)
	entIdx, ok := sh.freeEntry(cur, b1, b2)
	if !ok {
		// The displacement chain freed a slot in b1 or b2 by construction.
		sh.endWrite()
		cur.free = append(cur.free, slot)
		panic("flowserve: displacement path freed no candidate entry")
	}
	cur.entries[entIdx].Store(packEntry(sig, slot))
	sh.endWrite()
	sh.c.displacements.Add(uint64(len(path)))
	return true
}

func (sh *shard) insert(kw *[maxKeyWords]uint64, nw int, h uint64, sig uint16, value uint64) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.migrateLocked(sh.quantum)
	rp := sh.regions.Load()
	if _, _, _, exists := sh.locate(rp, kw, nw, h, sig); exists {
		sh.c.insertExists.Add(1)
		return ErrKeyExists
	}
	if !sh.placeLocked(rp.cur, kw, nw, h, sig, value) {
		// Full (or displacement-exhausted) current region: with auto-grow
		// enabled and no resize already in flight, double and retry into
		// the fresh region — its candidate buckets start empty.
		if sh.growAt == 0 || rp.old != nil {
			sh.c.insertFull.Add(1)
			return ErrTableFull
		}
		sh.startGrowLocked(2 * rp.cur.capacity)
		rp = sh.regions.Load()
		if !sh.placeLocked(rp.cur, kw, nw, h, sig, value) {
			sh.c.insertFull.Add(1)
			return ErrTableFull
		}
	}
	sh.size.Add(1)
	sh.c.inserts.Add(1)
	// Threshold auto-grow: start the next doubling before the shard is
	// actually full, so the migration amortises over ordinary traffic
	// instead of stalling an insert.
	if sh.growAt > 0 && rp.old == nil {
		cur := sh.regions.Load().cur
		if float64(sh.size.Load()) > sh.growAt*float64(cur.capacity) {
			sh.startGrowLocked(2 * cur.capacity)
		}
	}
	return nil
}

// freeEntry returns the index of an empty entry in bucket b1 or b2 of r.
func (sh *shard) freeEntry(r *region, b1, b2 uint64) (uint64, bool) {
	for _, b := range [2]uint64{b1, b2} {
		base := b * EntriesPerBucket
		for e := uint64(0); e < EntriesPerBucket; e++ {
			if r.entries[base+e].Load() == 0 {
				return base + e, true
			}
		}
	}
	return 0, false
}

func (sh *shard) update(kw *[maxKeyWords]uint64, nw int, h uint64, sig uint16, value uint64) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.migrateLocked(sh.quantum)
	r, _, slot, found := sh.locate(sh.regions.Load(), kw, nw, h, sig)
	if !found {
		return false
	}
	// A single-word value store is atomic on its own: concurrent readers
	// see the old or the new value, both of which were live for this key,
	// so no seqlock window is needed.
	r.kv[int(slot)*sh.kvStride+nw].Store(value)
	sh.c.updates.Add(1)
	return true
}

func (sh *shard) delete(kw *[maxKeyWords]uint64, nw int, h uint64, sig uint16) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.migrateLocked(sh.quantum)
	r, entIdx, slot, found := sh.locate(sh.regions.Load(), kw, nw, h, sig)
	if !found {
		return false
	}
	// Clearing the entry is a single atomic store, but the freed slot can
	// be recycled by a later insert; bump the seqlock so readers that
	// captured this entry re-probe instead of reading recycled key words.
	sh.beginWrite()
	r.entries[entIdx].Store(0)
	sh.endWrite()
	r.free = append(r.free, slot)
	sh.size.Add(^uint64(0))
	sh.c.deletes.Add(1)
	return true
}

// pathNode is one step of a displacement path: the entry at entIdx moves to
// its alternative bucket.
type pathNode struct {
	bucket uint64
	entry  uint64
	parent int
}

// frontierItem is one BFS queue entry in findCuckooPath.
type frontierItem struct {
	bucket uint64
	node   int
}

// findCuckooPath BFS-searches r for a chain of moves freeing an entry in b1
// or b2, mirroring cuckoo.Table.findCuckooPath. Caller must hold mu; the
// returned slice aliases writer-owned scratch.
func (sh *shard) findCuckooPath(r *region, b1, b2 uint64) []pathNode {
	nodes := sh.bfsNodes[:0]
	queue := append(sh.bfsQueue[:0], frontierItem{b1, -1}, frontierItem{b2, -1})
	head := 0
	if sh.bfsVisited == nil {
		sh.bfsVisited = make(map[uint64]bool)
	}
	visited := sh.bfsVisited
	clear(visited)
	visited[b1], visited[b2] = true, true
	defer func() { sh.bfsNodes, sh.bfsQueue = nodes[:0], queue[:0] }()

	for head < len(queue) && len(nodes) < maxDisplacements*EntriesPerBucket {
		item := queue[head]
		head++
		base := item.bucket * EntriesPerBucket
		for e := uint64(0); e < EntriesPerBucket; e++ {
			ent := r.entries[base+e].Load()
			if ent == 0 {
				continue
			}
			alt := hashfn.AltBucket(item.bucket, uint16(ent), r.bucketCount)
			nodes = append(nodes, pathNode{bucket: item.bucket, entry: base + e, parent: item.node})
			nodeIdx := len(nodes) - 1
			altBase := alt * EntriesPerBucket
			for ae := uint64(0); ae < EntriesPerBucket; ae++ {
				if r.entries[altBase+ae].Load() == 0 {
					path := sh.bfsPath[:0]
					for i := nodeIdx; i >= 0; i = nodes[i].parent {
						path = append(path, nodes[i])
					}
					for l, rr := 0, len(path)-1; l < rr; l, rr = l+1, rr-1 {
						path[l], path[rr] = path[rr], path[l]
					}
					sh.bfsPath = path
					return path
				}
			}
			if !visited[alt] {
				visited[alt] = true
				queue = append(queue, frontierItem{alt, nodeIdx})
			}
		}
	}
	return nil
}

// applyCuckooPath executes the moves leaf-first so no entry is ever
// unreachable. Caller must hold mu and have opened the seqlock window.
func (sh *shard) applyCuckooPath(r *region, path []pathNode) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		ent := r.entries[n.entry].Load()
		alt := hashfn.AltBucket(n.bucket, uint16(ent), r.bucketCount)
		altBase := alt * EntriesPerBucket
		for ae := uint64(0); ae < EntriesPerBucket; ae++ {
			if r.entries[altBase+ae].Load() == 0 {
				r.entries[altBase+ae].Store(ent)
				r.entries[n.entry].Store(0)
				break
			}
		}
	}
}
