// compare.go is the comparison core: align two documents' benchmarks by
// name, compute per-metric deltas, and classify each delta with the BLIS
// effect-size rules (significant / inconclusive / equivalent / regression).
// cmd/benchdiff renders the result and gates CI on it; the hypotheses
// harness reuses Classify for its per-seed verdicts.
package benchjson

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"halo/internal/stats"
)

// Class is the BLIS-style verdict for one metric delta.
type Class string

const (
	// ClassSignificant: improved beyond Thresholds.Significant.
	ClassSignificant Class = "significant"
	// ClassInconclusive: moved, but inside neither the equivalence band nor
	// the significant region — an improvement too small to claim, or a
	// worsening too small to gate on (when Regression > Equivalence).
	ClassInconclusive Class = "inconclusive"
	// ClassEquivalent: within ±Thresholds.Equivalence of the baseline.
	ClassEquivalent Class = "equivalent"
	// ClassRegression: worsened beyond Thresholds.Regression.
	ClassRegression Class = "regression"
	// ClassInvalid: a NaN or Inf on either side — the measurement itself is
	// broken, which a gate must not mistake for "no regression".
	ClassInvalid Class = "invalid"
)

// Thresholds are relative effect-size boundaries (fractions, not percents).
// The defaults are the BLIS standards: >20% improvement is significant,
// ±5% is equivalent, and >5% worsening is a regression.
type Thresholds struct {
	Significant float64 `json:"significant"`
	Equivalence float64 `json:"equivalence"`
	Regression  float64 `json:"regression"`
}

// DefaultThresholds returns the BLIS effect-size tiers.
func DefaultThresholds() Thresholds {
	return Thresholds{Significant: 0.20, Equivalence: 0.05, Regression: 0.05}
}

// HigherIsBetter reports the improvement direction of a metric by its unit
// name. Rates ("/sec", "/s"), speedups and hit counts improve upward;
// everything else (times, bytes, allocs, misses, retries) improves downward.
func HigherIsBetter(metric string) bool {
	return strings.HasSuffix(metric, "/sec") || strings.HasSuffix(metric, "/s") ||
		strings.Contains(metric, "speedup") || strings.HasSuffix(metric, "hits")
}

// Improvement returns the relative improvement of new over base for a
// metric, oriented so positive is always better (a 0.25 means 25% better
// regardless of the metric's direction). The second result is false when
// the improvement is undefined: a zero baseline with a nonzero new value,
// or a NaN/Inf on either side.
func Improvement(metric string, base, new float64) (float64, bool) {
	if math.IsNaN(base) || math.IsInf(base, 0) || math.IsNaN(new) || math.IsInf(new, 0) {
		return 0, false
	}
	if base == 0 {
		if new == 0 {
			return 0, true
		}
		return 0, false
	}
	rel := (new - base) / math.Abs(base)
	if HigherIsBetter(metric) {
		return rel, true
	}
	return -rel, true
}

// Classify places one (base, new) metric pair into a BLIS class. The
// checks run regression-first so a worsening never hides inside a wide
// equivalence band, and invalid inputs are never classified as safe.
func Classify(metric string, base, new float64, th Thresholds) Class {
	imp, ok := Improvement(metric, base, new)
	if !ok {
		if math.IsNaN(base) || math.IsInf(base, 0) || math.IsNaN(new) || math.IsInf(new, 0) {
			return ClassInvalid
		}
		// Zero baseline, nonzero new value: appearing from nothing is a
		// regression for downward metrics and significant for upward ones.
		if HigherIsBetter(metric) {
			return ClassSignificant
		}
		return ClassRegression
	}
	switch {
	case imp < 0 && -imp > th.Regression:
		return ClassRegression
	case imp >= th.Significant:
		return ClassSignificant
	case math.Abs(imp) <= th.Equivalence:
		return ClassEquivalent
	default:
		return ClassInconclusive
	}
}

// MetricDelta is one metric's comparison. Improvement is nil when undefined
// (zero baseline with nonzero new value, NaN/Inf input).
type MetricDelta struct {
	Metric      string   `json:"metric"`
	Base        float64  `json:"base"`
	New         float64  `json:"new"`
	Improvement *float64 `json:"improvement,omitempty"`
	Class       Class    `json:"class"`
}

// BenchDelta is one benchmark's comparison: its aligned metric deltas, or a
// presence mismatch (BaseOnly/NewOnly) when the name exists on one side only.
type BenchDelta struct {
	Name     string        `json:"name"`
	BaseOnly bool          `json:"base_only,omitempty"`
	NewOnly  bool          `json:"new_only,omitempty"`
	Metrics  []MetricDelta `json:"metrics,omitempty"`
}

// Comparison is the aligned diff of two documents.
type Comparison struct {
	Thresholds Thresholds   `json:"thresholds"`
	Benches    []BenchDelta `json:"benches"`
}

// CheckComparable verifies that two documents measured the same workload:
// Seeds and Config must match exactly (an error — comparing them would diff
// apples to oranges), while environment differences (Go version, GOOS,
// GOARCH, CPU) are returned as warnings.
func CheckComparable(base, new *Document) (warnings []string, err error) {
	if len(base.Seeds) != len(new.Seeds) {
		return nil, fmt.Errorf("seed lists differ: base has %d seeds, new has %d", len(base.Seeds), len(new.Seeds))
	}
	for i := range base.Seeds {
		if base.Seeds[i] != new.Seeds[i] {
			return nil, fmt.Errorf("seed lists differ at index %d: base %d, new %d", i, base.Seeds[i], new.Seeds[i])
		}
	}
	keys := make(map[string]bool, len(base.Config)+len(new.Config))
	for k := range base.Config {
		keys[k] = true
	}
	for k := range new.Config {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		bv, bok := base.Config[k]
		nv, nok := new.Config[k]
		switch {
		case !bok:
			return nil, fmt.Errorf("config key %q only in new document (%q)", k, nv)
		case !nok:
			return nil, fmt.Errorf("config key %q only in base document (%q)", k, bv)
		case bv != nv:
			return nil, fmt.Errorf("config key %q differs: base %q, new %q", k, bv, nv)
		}
	}
	if base.GoVersion != new.GoVersion {
		warnings = append(warnings, fmt.Sprintf("go version differs: base %q, new %q", base.GoVersion, new.GoVersion))
	}
	if base.GOOS != new.GOOS || base.GOARCH != new.GOARCH {
		warnings = append(warnings, fmt.Sprintf("platform differs: base %s/%s, new %s/%s",
			base.GOOS, base.GOARCH, new.GOOS, new.GOARCH))
	}
	if base.CPU != new.CPU {
		warnings = append(warnings, fmt.Sprintf("cpu differs: base %q, new %q", base.CPU, new.CPU))
	}
	return warnings, nil
}

// Compare aligns two documents by benchmark name and classifies every
// metric. Benchmarks present on one side only become BaseOnly/NewOnly
// entries; metrics present on one side only are classified against an
// implicit zero (which Classify treats as regression/invalid as
// appropriate, never silently skips). Order: base-document order first,
// then new-only benchmarks in new-document order.
//
// Compare does not enforce CheckComparable — callers decide whether a
// config mismatch is fatal (benchdiff refuses unless -ignore-config).
func Compare(base, new *Document, th Thresholds) *Comparison {
	c := &Comparison{Thresholds: th}
	newByName := make(map[string]*Benchmark, len(new.Benchmarks))
	for i := range new.Benchmarks {
		b := &new.Benchmarks[i]
		if _, dup := newByName[b.Name]; !dup {
			newByName[b.Name] = b
		}
	}
	seen := make(map[string]bool, len(base.Benchmarks))
	for i := range base.Benchmarks {
		bb := &base.Benchmarks[i]
		if seen[bb.Name] {
			continue
		}
		seen[bb.Name] = true
		nb, ok := newByName[bb.Name]
		if !ok {
			c.Benches = append(c.Benches, BenchDelta{Name: bb.Name, BaseOnly: true})
			continue
		}
		c.Benches = append(c.Benches, BenchDelta{
			Name:    bb.Name,
			Metrics: compareMetrics(bb.Metrics, nb.Metrics, th),
		})
	}
	for i := range new.Benchmarks {
		nb := &new.Benchmarks[i]
		if !seen[nb.Name] {
			seen[nb.Name] = true
			c.Benches = append(c.Benches, BenchDelta{Name: nb.Name, NewOnly: true})
		}
	}
	return c
}

// compareMetrics aligns two metric maps by unit name, in sorted order.
func compareMetrics(base, new map[string]float64, th Thresholds) []MetricDelta {
	names := make(map[string]bool, len(base)+len(new))
	for m := range base {
		names[m] = true
	}
	for m := range new {
		names[m] = true
	}
	sorted := make([]string, 0, len(names))
	for m := range names {
		sorted = append(sorted, m)
	}
	sort.Strings(sorted)
	out := make([]MetricDelta, 0, len(sorted))
	for _, m := range sorted {
		bv, nv := base[m], new[m] // absent reads as 0 — classified, not skipped
		d := MetricDelta{Metric: m, Base: bv, New: nv, Class: Classify(m, bv, nv, th)}
		if imp, ok := Improvement(m, bv, nv); ok {
			v := imp
			d.Improvement = &v
		}
		out = append(out, d)
	}
	return out
}

// GateResult is the verdict of a regression gate over a comparison.
type GateResult struct {
	Failures []string `json:"failures,omitempty"`
	Warnings []string `json:"warnings,omitempty"`
}

// Pass reports whether the gate holds (no failures).
func (g GateResult) Pass() bool { return len(g.Failures) == 0 }

// Gate evaluates the comparison against a set of gated metric names.
// Failures: a regression or invalid value in a gated metric, or a gated
// benchmark that disappeared (BaseOnly) — deleting a hot-path benchmark
// must not dodge the gate. allow downgrades a named benchmark's failures
// to warnings; NewOnly benchmarks are warnings (new coverage, nothing to
// compare yet). With no gated metrics the gate is report-only and always
// passes.
func (c *Comparison) Gate(gated []string, allow map[string]bool) GateResult {
	var g GateResult
	if len(gated) == 0 {
		return g
	}
	isGated := make(map[string]bool, len(gated))
	for _, m := range gated {
		isGated[m] = true
	}
	record := func(bench, msg string) {
		if allow[bench] {
			g.Warnings = append(g.Warnings, msg+" (allowed)")
		} else {
			g.Failures = append(g.Failures, msg)
		}
	}
	for _, b := range c.Benches {
		switch {
		case b.BaseOnly:
			record(b.Name, fmt.Sprintf("%s: benchmark missing from new document", b.Name))
			continue
		case b.NewOnly:
			g.Warnings = append(g.Warnings, fmt.Sprintf("%s: benchmark only in new document (no baseline)", b.Name))
			continue
		}
		for _, m := range b.Metrics {
			if !isGated[m.Metric] {
				continue
			}
			switch m.Class {
			case ClassRegression:
				record(b.Name, fmt.Sprintf("%s %s: %s → %s (%s regression)",
					b.Name, m.Metric, formatValue(m.Base), formatValue(m.New), formatImprovement(m.Improvement)))
			case ClassInvalid:
				record(b.Name, fmt.Sprintf("%s %s: invalid value (base %v, new %v)",
					b.Name, m.Metric, m.Base, m.New))
			}
		}
	}
	return g
}

// formatValue renders a metric value compactly for gate messages.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// formatImprovement renders a signed percent worsening for gate messages.
func formatImprovement(imp *float64) string {
	if imp == nil {
		return "∞%"
	}
	return fmt.Sprintf("%.1f%%", -*imp*100)
}

// FromStats converts a halo-stats/v1 document into comparison input: one
// benchmark per sweep point named "<experiment>/<label>", carrying every
// snapshot counter as a metric plus p50/p95/p99 and mean per histogram
// ("<hist>.p50" …). The stats document is deterministic, so diffing two of
// them surfaces exactly which counters moved between commits.
func FromStats(sd *stats.Document) *Document {
	d := &Document{
		Schema: SchemaVersion,
		Seeds:  []uint64{sd.Seed},
		Config: map[string]string{
			"source-schema": stats.SchemaVersion,
			"quick":         fmt.Sprintf("%v", sd.Quick),
		},
		Benchmarks: []Benchmark{},
	}
	for _, e := range sd.Experiments {
		for _, p := range e.Points {
			b := Benchmark{
				Name:       e.ID + "/" + p.Label,
				Procs:      1,
				Iterations: 1,
				Metrics:    map[string]float64{},
			}
			if p.Snapshot != nil {
				for name, v := range p.Snapshot.Counters {
					b.Metrics[name] = float64(v)
				}
				for name, h := range p.Snapshot.Hists {
					b.Metrics[name+".count"] = float64(h.Count())
					b.Metrics[name+".mean"] = h.Mean()
					b.Metrics[name+".p50"] = float64(h.Quantile(0.50))
					b.Metrics[name+".p95"] = float64(h.Quantile(0.95))
					b.Metrics[name+".p99"] = float64(h.Quantile(0.99))
				}
			}
			d.Benchmarks = append(d.Benchmarks, b)
		}
	}
	return d
}

// DecodeAny loads comparison input from either supported schema: a
// halo-bench/v1 document verbatim, or a halo-stats/v1 document converted
// through FromStats.
func DecodeAny(data []byte) (*Document, error) {
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, fmt.Errorf("benchjson: %v", err)
	}
	switch head.Schema {
	case SchemaVersion:
		return Decode(data)
	case stats.SchemaVersion:
		sd, err := stats.Decode(data)
		if err != nil {
			return nil, err
		}
		return FromStats(sd), nil
	default:
		return nil, fmt.Errorf("benchjson: unsupported schema %q (want %q or %q)",
			head.Schema, SchemaVersion, stats.SchemaVersion)
	}
}
