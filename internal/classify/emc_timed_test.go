package classify

import (
	"strings"
	"testing"

	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/packet"
)

func TestEMCTimedAndHaloLookupsAgree(t *testing.T) {
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	e, err := NewEMC(p.Space, p.Alloc, 1024)
	if err != nil {
		t.Fatal(err)
	}
	th := cpu.NewThread(p.Hier, 0)
	for i := uint32(0); i < 500; i++ {
		e.Learn(flow(i), Match{RuleID: i + 1})
	}
	for i := uint32(0); i < 500; i++ {
		f := flow(i)
		fm, fok := e.Lookup(f)
		tm, tok := e.LookupTimed(th, f, cuckoo.DefaultLookupOptions())
		hm, hok := e.LookupHaloB(th, p.Unit, f)
		if fm != tm || fok != tok {
			t.Fatalf("timed EMC lookup diverged on flow %d", i)
		}
		if fm != hm || fok != hok {
			t.Fatalf("HALO EMC lookup diverged on flow %d", i)
		}
	}
	if e.HitRate() < 0.7 {
		t.Fatalf("hit rate %.2f after all-hit lookups", e.HitRate())
	}
	if _, ok := e.LookupTimed(th, flow(9999), cuckoo.DefaultLookupOptions()); ok {
		t.Fatal("timed lookup found an absent flow")
	}
}

func TestEMCLookupTimedRawAndHaloBAt(t *testing.T) {
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	e, err := NewEMCKeyLen(p.Space, p.Alloc, 256, packet.HeaderKeyLen)
	if err != nil {
		t.Fatal(err)
	}
	th := cpu.NewThread(p.Hier, 0)
	f := flow(7)
	key := f.HeaderKey()
	e.LearnRaw(key, Match{RuleID: 77})

	m, ok := e.LookupTimedRaw(th, key, cuckoo.DefaultLookupOptions())
	if !ok || m.RuleID != 77 {
		t.Fatalf("raw timed lookup = %+v, %v", m, ok)
	}
	// Deliver the key into a packet-buffer line and look up in place.
	buf := p.Alloc.AllocLines(1)
	p.Space.WriteAt(buf, key)
	p.Hier.DMAWrite(buf)
	m, ok = e.LookupHaloBAt(th, p.Unit, buf)
	if !ok || m.RuleID != 77 {
		t.Fatalf("in-place HALO lookup = %+v, %v", m, ok)
	}
}

func TestRuleSource(t *testing.T) {
	space := mem.NewMemory()
	alloc := mem.NewAllocator(0x1000, 1<<30)
	ts := NewTupleSpace(space, alloc, HighestPriority, 1024)
	if ts.Mode() != HighestPriority {
		t.Fatal("mode accessor broken")
	}
	f := flow(3)
	coarse := Mask{SrcIPBits: 16, SrcPortWild: true, DstPortWild: true, ProtoWild: true}
	fine := Mask{SrcIPBits: 32, DstIPBits: 32}
	if err := ts.InsertRule(coarse, f, Match{Priority: 1, RuleID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ts.InsertRule(fine, f, Match{Priority: 9, RuleID: 2}); err != nil {
		t.Fatal(err)
	}
	m, ok := ts.Classify(f)
	if !ok || m.RuleID != 2 {
		t.Fatalf("classify = %+v", m)
	}
	mask, pattern, found := ts.RuleSource(f, m)
	if !found || mask != fine {
		t.Fatalf("RuleSource mask = %v, want the fine mask", mask)
	}
	if pattern != fine.Apply(f) {
		t.Fatalf("RuleSource pattern = %v", pattern)
	}
	// An unrelated match finds no source.
	if _, _, found := ts.RuleSource(f, Match{RuleID: 42}); found {
		t.Fatal("RuleSource invented a rule")
	}
}

func TestEncodeDecodeRuleValueExported(t *testing.T) {
	m := Match{Priority: 7, RuleID: 1234, Action: Action{Kind: ActionMirror, Port: 3}}
	if DecodeRuleValue(EncodeRuleValue(m)) != m {
		t.Fatal("exported rule codec round trip failed")
	}
}

func TestMaskString(t *testing.T) {
	s := Mask{SrcIPBits: 24, SrcPortWild: true}.String()
	if !strings.Contains(s, "src/24") || !strings.Contains(s, "sp=false") {
		t.Fatalf("Mask.String() = %q", s)
	}
}

func TestInsertRuleRejectsInvalidMask(t *testing.T) {
	space := mem.NewMemory()
	alloc := mem.NewAllocator(0x1000, 1<<30)
	ts := NewTupleSpace(space, alloc, FirstMatch, 64)
	if err := ts.InsertRule(Mask{SrcIPBits: 99}, flow(1), Match{}); err == nil {
		t.Fatal("invalid mask accepted")
	}
}
