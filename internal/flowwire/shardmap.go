package flowwire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"

	"halo/internal/hashfn"
)

// The shard map is the cluster's routing table: the full 64-bit primary key
// hash space is split into contiguous half-open ranges, each owned by one
// node. The map is versioned by a monotonically increasing epoch; installing
// a map with a higher epoch is the migration cutover. Every node holds a
// copy and rejects keys it does not own with a WRONG_SHARD redirect carrying
// its epoch, so a router with a stale map self-corrects without any central
// lookup on the hot path (the HALO analogue: each lookup steered to the
// slice that owns the flow, DESIGN.md §13).

// Split marks the start of one owned range: the node owns hashes in
// [Start, nextSplit.Start), the last split running to the end of the hash
// space. Splits[0].Start is always 0, so every hash has exactly one owner.
type Split struct {
	Start uint64
	Node  uint32 // index into ShardMap.Nodes
}

// ShardMap is a versioned hash-range→node routing table.
type ShardMap struct {
	Epoch  uint64
	Nodes  []Endpoint
	Splits []Split
}

// Range is a half-open hash range [Lo, Hi); Hi == 0 means "to the end of
// the 64-bit hash space" (a full-space range is {0, 0}).
type Range struct {
	Lo, Hi uint64
}

// Contains reports whether h falls inside the range.
func (r Range) Contains(h uint64) bool {
	return h >= r.Lo && (r.Hi == 0 || h < r.Hi)
}

// Empty reports a range containing no hashes.
func (r Range) Empty() bool { return r.Hi != 0 && r.Hi <= r.Lo }

func (r Range) String() string {
	if r.Hi == 0 {
		return fmt.Sprintf("[%#x,end)", r.Lo)
	}
	return fmt.Sprintf("[%#x,%#x)", r.Lo, r.Hi)
}

// KeyHash is the routing hash: the primary-seed 64-bit hash of the key, the
// same value flowserve's shard selection is derived from. Router and server
// must agree on it exactly — ownership checks on both sides call this.
func KeyHash(key []byte) uint64 {
	return hashfn.Hash(hashfn.SeedPrimary, key)
}

// UniformMap builds an epoch-1 map splitting the hash space evenly across
// the nodes — the bootstrap map a fresh cluster starts from.
func UniformMap(nodes []Endpoint) *ShardMap {
	m := &ShardMap{Epoch: 1, Nodes: nodes}
	n := uint64(len(nodes))
	width := ^uint64(0)/n + 1 // 2^64 / n rounded up; last range absorbs the remainder
	for i := uint64(0); i < n; i++ {
		m.Splits = append(m.Splits, Split{Start: i * width, Node: uint32(i)})
	}
	return m
}

// Validate checks map well-formedness: at least one node, splits sorted and
// strictly increasing starting at 0, every split owned by a listed node.
func (m *ShardMap) Validate() error {
	if m == nil {
		return fmt.Errorf("flowwire: nil shard map")
	}
	if len(m.Nodes) == 0 {
		return fmt.Errorf("flowwire: shard map has no nodes")
	}
	if len(m.Splits) == 0 || m.Splits[0].Start != 0 {
		return fmt.Errorf("flowwire: shard map must start a split at 0")
	}
	for i, sp := range m.Splits {
		if i > 0 && sp.Start <= m.Splits[i-1].Start {
			return fmt.Errorf("flowwire: shard map splits not strictly increasing at %d", i)
		}
		if int(sp.Node) >= len(m.Nodes) {
			return fmt.Errorf("flowwire: split %d names node %d of %d", i, sp.Node, len(m.Nodes))
		}
	}
	return nil
}

// Owner returns the index of the node owning hash h.
func (m *ShardMap) Owner(h uint64) int {
	// First split with Start > h; the owner is the one before it.
	i := sort.Search(len(m.Splits), func(i int) bool { return m.Splits[i].Start > h })
	return int(m.Splits[i-1].Node)
}

// OwnerOfKey returns the index of the node owning key's hash.
func (m *ShardMap) OwnerOfKey(key []byte) int { return m.Owner(KeyHash(key)) }

// RangeOwner returns the single node owning every hash of rg, or ok=false
// when rg is empty or spans more than one owner.
func (m *ShardMap) RangeOwner(rg Range) (int, bool) {
	if rg.Empty() {
		return 0, false
	}
	own := m.Owner(rg.Lo)
	for _, sp := range m.Splits {
		if sp.Start > rg.Lo && (rg.Hi == 0 || sp.Start < rg.Hi) && int(sp.Node) != own {
			return 0, false
		}
	}
	return own, true
}

// Clone deep-copies the map (the coordinator mutates a clone, then installs).
func (m *ShardMap) Clone() *ShardMap {
	c := &ShardMap{Epoch: m.Epoch}
	c.Nodes = append([]Endpoint(nil), m.Nodes...)
	c.Splits = append([]Split(nil), m.Splits...)
	return c
}

// Assign rewrites the map so node owns rg, preserving ownership everywhere
// else and compressing adjacent same-owner splits. The epoch is NOT bumped
// here — the coordinator bumps it once per cutover.
func (m *ShardMap) Assign(rg Range, node uint32) error {
	if int(node) >= len(m.Nodes) {
		return fmt.Errorf("flowwire: assign to node %d of %d", node, len(m.Nodes))
	}
	if rg.Empty() {
		return fmt.Errorf("flowwire: assign of empty range %s", rg)
	}
	// Collect all boundaries (old split starts + the range's edges), then
	// re-derive the owner at each and compress.
	bounds := make([]uint64, 0, len(m.Splits)+2)
	for _, sp := range m.Splits {
		bounds = append(bounds, sp.Start)
	}
	bounds = append(bounds, rg.Lo)
	if rg.Hi != 0 {
		bounds = append(bounds, rg.Hi)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	out := m.Splits[:0:0]
	for i, b := range bounds {
		if i > 0 && b == bounds[i-1] {
			continue
		}
		owner := node
		if !rg.Contains(b) {
			owner = uint32(m.Owner(b))
		}
		if n := len(out); n > 0 && out[n-1].Node == owner {
			continue
		}
		out = append(out, Split{Start: b, Node: owner})
	}
	m.Splits = out
	return nil
}

// Shard map wire codec (SHARD_MAP reply / MAP_UPDATE request payload):
//
//	epoch     u64
//	nodeCount u32, then per node: transport u8, addrLen u16, addr bytes
//	splitCount u32, then per split: start u64, node u32

func transportCode(t string) byte {
	switch t {
	case TransportUnix:
		return 1
	case TransportShm:
		return 2
	}
	return 0
}

func transportFromCode(c byte) (string, error) {
	switch c {
	case 0:
		return TransportTCP, nil
	case 1:
		return TransportUnix, nil
	case 2:
		return TransportShm, nil
	}
	return "", fmt.Errorf("flowwire: unknown transport code %d", c)
}

func appendEndpoint(dst []byte, ep Endpoint) []byte {
	dst = append(dst, transportCode(ep.Transport))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(ep.Addr)))
	return append(dst, ep.Addr...)
}

func parseEndpointWire(p []byte) (Endpoint, []byte, error) {
	if len(p) < 3 {
		return Endpoint{}, nil, fmt.Errorf("flowwire: truncated endpoint")
	}
	transport, err := transportFromCode(p[0])
	if err != nil {
		return Endpoint{}, nil, err
	}
	n := int(binary.LittleEndian.Uint16(p[1:3]))
	if len(p) < 3+n {
		return Endpoint{}, nil, fmt.Errorf("flowwire: truncated endpoint address")
	}
	return Endpoint{Transport: transport, Addr: string(p[3 : 3+n])}, p[3+n:], nil
}

// AppendShardMap encodes m onto dst.
func AppendShardMap(dst []byte, m *ShardMap) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Epoch)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Nodes)))
	for _, ep := range m.Nodes {
		dst = appendEndpoint(dst, ep)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Splits)))
	for _, sp := range m.Splits {
		dst = binary.LittleEndian.AppendUint64(dst, sp.Start)
		dst = binary.LittleEndian.AppendUint32(dst, sp.Node)
	}
	return dst
}

// ParseShardMap decodes and validates a shard-map payload.
func ParseShardMap(p []byte) (*ShardMap, error) {
	if len(p) < 12 {
		return nil, fmt.Errorf("flowwire: shard map payload is %d bytes", len(p))
	}
	m := &ShardMap{Epoch: binary.LittleEndian.Uint64(p[0:8])}
	nodeCount := int(binary.LittleEndian.Uint32(p[8:12]))
	p = p[12:]
	if nodeCount > 1<<16 {
		return nil, fmt.Errorf("flowwire: shard map claims %d nodes", nodeCount)
	}
	var err error
	var ep Endpoint
	for i := 0; i < nodeCount; i++ {
		if ep, p, err = parseEndpointWire(p); err != nil {
			return nil, err
		}
		m.Nodes = append(m.Nodes, ep)
	}
	if len(p) < 4 {
		return nil, fmt.Errorf("flowwire: shard map truncated before splits")
	}
	splitCount := int(binary.LittleEndian.Uint32(p[0:4]))
	p = p[4:]
	if len(p) != splitCount*12 {
		return nil, fmt.Errorf("flowwire: shard map claims %d splits in %d bytes", splitCount, len(p))
	}
	for i := 0; i < splitCount; i++ {
		m.Splits = append(m.Splits, Split{
			Start: binary.LittleEndian.Uint64(p[i*12 : i*12+8]),
			Node:  binary.LittleEndian.Uint32(p[i*12+8 : i*12+12]),
		})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// WrongShardError is the typed WRONG_SHARD redirect: the serving node does
// not own the key under its installed map at Epoch. The router compares
// Epoch against its own map's: newer means refetch the map (a cutover
// happened), not newer means transient disagreement — retry after refresh.
type WrongShardError struct {
	Epoch uint64
}

func (e *WrongShardError) Error() string {
	return fmt.Sprintf("flowwire: wrong shard (server map epoch %d)", e.Epoch)
}

func appendWrongShard(dst []byte, epoch uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, epoch)
}

func parseWrongShard(p []byte) error {
	if len(p) != 8 {
		return fmt.Errorf("flowwire: WRONG_SHARD payload is %d bytes, want 8", len(p))
	}
	return &WrongShardError{Epoch: binary.LittleEndian.Uint64(p)}
}

// MIG_START request payload: range lo u64, range hi u64, destination
// endpoint (transport u8, addrLen u16, addr).

func appendMigStartReq(dst []byte, rg Range, dstEp Endpoint) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, rg.Lo)
	dst = binary.LittleEndian.AppendUint64(dst, rg.Hi)
	return appendEndpoint(dst, dstEp)
}

func parseMigStartReq(p []byte) (Range, Endpoint, error) {
	if len(p) < 16 {
		return Range{}, Endpoint{}, fmt.Errorf("flowwire: MIG_START payload is %d bytes", len(p))
	}
	rg := Range{
		Lo: binary.LittleEndian.Uint64(p[0:8]),
		Hi: binary.LittleEndian.Uint64(p[8:16]),
	}
	ep, rest, err := parseEndpointWire(p[16:])
	if err != nil {
		return Range{}, Endpoint{}, err
	}
	if len(rest) != 0 {
		return Range{}, Endpoint{}, fmt.Errorf("flowwire: MIG_START payload has %d trailing bytes", len(rest))
	}
	return rg, ep, nil
}

// MigInfo is the migration ledger a MIG_STATUS reply reports: the losing
// node's accounting of the records it owes the gaining node. The handoff
// invariant mirrors the drain ledger: at cutover Enqueued == Sent == Acked,
// so every record that entered the migration queue was applied remotely
// before the losing node surrendered the range.
type MigInfo struct {
	Active       bool   `json:"active"`
	Done         bool   `json:"done"` // a migration ran and fully drained
	RangeLo      uint64 `json:"range_lo"`
	RangeHi      uint64 `json:"range_hi"`
	SnapshotDone bool   `json:"snapshot_done"`
	Snapshotted  uint64 `json:"snapshotted"` // records emitted by the range scan
	Forwarded    uint64 `json:"forwarded"`   // double-written live mutations
	Enqueued     uint64 `json:"enqueued"`    // total records entering the queue
	Sent         uint64 `json:"sent"`        // records written to the gaining node
	Acked        uint64 `json:"acked"`       // records the gaining node confirmed
	Conflicts    uint64 `json:"conflicts"`   // benign snapshot/forward overlaps
	Err          string `json:"err,omitempty"`
}

// MIG_STATUS reply payload is JSON (cold admin path; keeps the ledger
// extensible without wire churn).

func appendMigInfo(dst []byte, mi *MigInfo) []byte {
	b, _ := json.Marshal(mi)
	return append(dst, b...)
}

func parseMigInfo(p []byte) (MigInfo, error) {
	var mi MigInfo
	if err := json.Unmarshal(p, &mi); err != nil {
		return MigInfo{}, fmt.Errorf("flowwire: MIG_STATUS payload: %w", err)
	}
	return mi, nil
}

// MigKind tags one migrated record with how it must be applied on the
// gaining node. The distinctions make the snapshot/double-write overlap
// races benign instead of lossy.
type MigKind uint8

const (
	// MigSnapshot is a record from the range scan: upsert. Per-key queue
	// order mirrors the losing node's apply order (the scan emits under the
	// shard lock and double-writes enqueue under the cluster lock), so the
	// last record for a key always carries its final value; a snapshot
	// record finding the key present is counted as a (benign) conflict.
	MigSnapshot MigKind = 1
	// MigInsert is a double-written live INSERT: upsert.
	MigInsert MigKind = 2
	// MigUpdate is a double-written live UPDATE: upsert.
	MigUpdate MigKind = 3
	// MigDelete is a double-written live DELETE: delete-if-present (a miss
	// is a benign conflict: the key's snapshot record was behind it and
	// never applied, or the range was fresh).
	MigDelete MigKind = 4
	// MigPurge clears the migrated hash range on the gaining node before
	// any data record lands: Value is the range's Lo, Key its 8-byte LE Hi.
	// It is always the first record of a migration stream, making retried
	// migrations safe — stale keys from an earlier failed attempt cannot
	// shadow (or resurrect into) the fresh copy.
	MigPurge MigKind = 5
)

// MIG_APPLY request payload: count u32, then per record: kind u8, value
// u64, keyLen u16, key bytes. Reply payload: applied u32, conflicts u32.

// MigRecord is one migrated key/value with its apply semantics.
type MigRecord struct {
	Kind  MigKind
	Value uint64
	Key   []byte
}

func appendMigRecords(dst []byte, recs []MigRecord) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for _, r := range recs {
		dst = append(dst, byte(r.Kind))
		dst = binary.LittleEndian.AppendUint64(dst, r.Value)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Key)))
		dst = append(dst, r.Key...)
	}
	return dst
}

// parseMigRecords decodes a MIG_APPLY payload; record keys alias p.
func parseMigRecords(p []byte, recs []MigRecord) ([]MigRecord, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("flowwire: MIG_APPLY payload is %d bytes", len(p))
	}
	count := int(binary.LittleEndian.Uint32(p[0:4]))
	p = p[4:]
	if count > MaxBatchKeys {
		return nil, fmt.Errorf("flowwire: MIG_APPLY claims %d records", count)
	}
	for i := 0; i < count; i++ {
		if len(p) < 11 {
			return nil, fmt.Errorf("flowwire: MIG_APPLY truncated at record %d", i)
		}
		kind := MigKind(p[0])
		if kind < MigSnapshot || kind > MigPurge {
			return nil, fmt.Errorf("flowwire: MIG_APPLY record %d has kind %d", i, kind)
		}
		value := binary.LittleEndian.Uint64(p[1:9])
		n := int(binary.LittleEndian.Uint16(p[9:11]))
		if len(p) < 11+n {
			return nil, fmt.Errorf("flowwire: MIG_APPLY record %d key truncated", i)
		}
		recs = append(recs, MigRecord{Kind: kind, Value: value, Key: p[11 : 11+n]})
		p = p[11+n:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("flowwire: MIG_APPLY payload has %d trailing bytes", len(p))
	}
	return recs, nil
}
