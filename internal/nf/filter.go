package nf

import (
	"fmt"

	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/halo"
	"halo/internal/packet"
)

// Filter is a hash-table IP packet filter (paper Table 3): a table of exact
// flow rules decides drop or accept; unlisted flows pass with the default
// verdict. Rules key on the raw header window so the HALO engine reads keys
// straight from the DDIO packet buffers.
type Filter struct {
	Stats
	engine  Engine
	p       *halo.Platform
	table   *cuckoo.Table
	ring    *pktRing
	Default Verdict

	dropped uint64

	keyBuf [packet.HeaderKeyLen]byte // per-packet key scratch (table copies)
}

// Filter rule values.
const (
	filterDrop uint64 = iota + 1
	filterAccept
)

// NewFilter builds a filter with room for `entries` rules.
func NewFilter(p *halo.Platform, engine Engine, entries uint64) (*Filter, error) {
	tbl, err := cuckoo.Create(p.Space, p.Alloc, cuckoo.Config{Entries: entries, KeyLen: packet.HeaderKeyLen})
	if err != nil {
		return nil, fmt.Errorf("nf: creating filter table: %w", err)
	}
	return &Filter{engine: engine, p: p, table: tbl, ring: newPktRing(p), Default: VerdictAccept}, nil
}

// Name implements NF.
func (f *Filter) Name() string { return "packet-filter" }

// Table exposes the rule table.
func (f *Filter) Table() *cuckoo.Table { return f.table }

// Dropped reports dropped-packet count.
func (f *Filter) Dropped() uint64 { return f.dropped }

// AddRule installs a drop or accept rule for a flow.
func (f *Filter) AddRule(flow packet.FiveTuple, drop bool) error {
	v := filterAccept
	if drop {
		v = filterDrop
	}
	return f.table.Insert(flow.HeaderKey(), v)
}

// ProcessPacket implements NF.
func (f *Filter) ProcessPacket(th *cpu.Thread, pkt *packet.Packet) Verdict {
	bufAddr := f.ring.deliver(pkt)
	rxCost(th, bufAddr)
	th.ALU(8)

	var v uint64
	var ok bool
	switch f.engine {
	case EngineHalo:
		v, ok = f.p.Unit.LookupBAt(th, f.table.Base(), headerKeyAddr(bufAddr))
	default:
		pkt.Key().PutHeaderKey(f.keyBuf[:])
		v, ok = f.table.TimedLookup(th, f.keyBuf[:], cuckoo.DefaultLookupOptions())
	}
	th.Other(4)
	verdict := f.Default
	if ok && v == filterDrop {
		verdict = VerdictDrop
		f.dropped++
	}
	f.Stats.record(verdict)
	return verdict
}
