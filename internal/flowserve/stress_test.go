package flowserve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"halo/internal/sim"
)

// valueFor derives the value every stress writer installs for a key index,
// so readers can verify any hit against the key alone.
func valueFor(i uint64) uint64 { return i*0x9e3779b9 + 1 }

// TestSeqlockStress is the randomized reader/writer audit of the seqlock
// (run it under -race: CI does). Key universe:
//
//   - resident keys: inserted before the run and never touched — every
//     lookup MUST hit with the exact value;
//   - churn keys: concurrently inserted and deleted — a lookup may hit or
//     miss, but a hit MUST carry the key's own value;
//   - ghost keys: never inserted — a lookup MUST NOT hit. A phantom hit
//     here is exactly the cross-word key tear the seqlock exists to
//     prevent (e.g. a reader mixing old and new key words across a slot
//     recycle).
func TestSeqlockStress(t *testing.T) {
	const (
		residents = 1500
		churners  = 1500
		ghosts    = 1500
		readers   = 4
		writers   = 2
		readerOps = 30_000
		writerOps = 15_000
	)
	tbl := mustNew(t, Config{Shards: 4, Entries: residents + churners + 2048, KeyLen: 20})

	// Key index spaces: [0,residents) resident, [residents, residents+churners)
	// churn, [residents+churners, ...) ghost.
	key := func(i uint64) []byte { return key20(i) }
	for i := uint64(0); i < residents; i++ {
		if err := tbl.Insert(key(i), valueFor(i)); err != nil {
			t.Fatalf("seed insert %d: %v", i, err)
		}
	}

	var fail atomic.Value // first failure message, if any
	report := func(msg string) {
		fail.CompareAndSwap(nil, msg)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := sim.NewRand(seed)
			for op := 0; op < writerOps && fail.Load() == nil; op++ {
				i := residents + rng.Uint64n(churners)
				k := key(i)
				if rng.Uint64()&1 == 0 {
					if err := tbl.Insert(k, valueFor(i)); err != nil && err != ErrKeyExists && err != ErrTableFull {
						report("writer Insert: " + err.Error())
					}
				} else {
					tbl.Delete(k)
				}
			}
		}(0xa110<<8 | uint64(w))
	}

	checkHit := func(i uint64, v uint64, ok bool, class string) {
		switch {
		case !ok && class == "resident":
			report("resident key missed")
		case ok && class == "ghost":
			report("ghost key hit: reader observed a value for a key never inserted")
		case ok && v != valueFor(i):
			report(class + " key hit with a foreign value (torn read)")
		}
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := sim.NewRand(seed)
			const batchSize = 32
			batch := tbl.NewBatch()
			keys := make([][]byte, batchSize)
			idx := make([]uint64, batchSize)
			results := make([]Result, batchSize)
			drawKey := func() uint64 {
				switch rng.Uint64n(3) {
				case 0:
					return rng.Uint64n(residents)
				case 1:
					return residents + rng.Uint64n(churners)
				default:
					return residents + churners + rng.Uint64n(ghosts)
				}
			}
			class := func(i uint64) string {
				switch {
				case i < residents:
					return "resident"
				case i < residents+churners:
					return "churn"
				default:
					return "ghost"
				}
			}
			for op := 0; op < readerOps && fail.Load() == nil; op++ {
				if op%8 == 0 { // every 8th op is a whole batch
					for j := range keys {
						idx[j] = drawKey()
						keys[j] = key(idx[j])
					}
					if op%16 == 0 {
						batch.LookupMany(keys, results)
					} else {
						// The pooled Table.LookupMany path shares Batch
						// scratch across goroutines; stress it too.
						tbl.LookupMany(keys, results)
					}
					for j := range keys {
						checkHit(idx[j], results[j].Value, results[j].OK, class(idx[j]))
					}
				} else {
					i := drawKey()
					v, ok := tbl.Lookup(key(i))
					checkHit(i, v, ok, class(i))
				}
			}
		}(0x4ead<<8 | uint64(r))
	}
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}

	// Post-quiescence: residents all present, ghosts all absent, and the
	// lookup counters actually moved.
	for i := uint64(0); i < residents; i++ {
		if v, ok := tbl.Lookup(key(i)); !ok || v != valueFor(i) {
			t.Fatalf("resident key %d = (%d,%v) after stress, want (%d,true)", i, v, ok, valueFor(i))
		}
	}
	s := tbl.Stats()
	if s.Lookups == 0 || s.Inserts == 0 || s.Deletes == 0 {
		t.Fatalf("stress exercised nothing: %+v", s)
	}
	t.Logf("stress stats: %+v", s)
}

// TestResizeStress is the randomized audit of incremental resize under
// concurrency (run under -race: CI does). A grower floods inserts into an
// auto-grow table, forcing several shard doublings, while churn writers,
// a ResizeStep ticker and batch/single readers all run against the moving
// regions. Same key-class invariants as TestSeqlockStress: residents always
// hit with their own value, ghosts never hit, churn hits carry the key's own
// value — through every migration.
func TestResizeStress(t *testing.T) {
	const (
		residents = 1000
		churners  = 1000
		ghosts    = 1000
		growKeys  = 20_000 // grower inserts force >= 3 doublings per shard
		readers   = 3
		readerOps = 20_000
		writerOps = 10_000
	)
	tbl := mustNew(t, Config{
		Shards: 2, Entries: 4096, KeyLen: 20, GrowAt: 0.8, MigrateBuckets: 2,
	})

	// Key index spaces: [0,residents) resident, then churn, then ghost, then
	// the grower's fresh keys.
	const growBase = residents + churners + ghosts
	key := func(i uint64) []byte { return key20(i) }
	for i := uint64(0); i < residents; i++ {
		if err := tbl.Insert(key(i), valueFor(i)); err != nil {
			t.Fatalf("seed insert %d: %v", i, err)
		}
	}

	var fail atomic.Value
	report := func(msg string) { fail.CompareAndSwap(nil, msg) }
	var done atomic.Bool

	var wg sync.WaitGroup

	// Grower: monotonically expands the key set, tripping threshold grows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < growKeys && fail.Load() == nil; i++ {
			if err := tbl.Insert(key(growBase+i), valueFor(growBase+i)); err != nil {
				report("grower Insert with auto-grow on: " + err.Error())
				return
			}
		}
	}()

	// Stepper: external migration ticks racing the writers' amortised ones.
	// Its own WaitGroup — it runs until everyone else is done.
	var stepWg sync.WaitGroup
	stepWg.Add(1)
	go func() {
		defer stepWg.Done()
		for !done.Load() && fail.Load() == nil {
			tbl.ResizeStep(1)
			runtime.Gosched()
		}
	}()

	// Churn writers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := sim.NewRand(seed)
			for op := 0; op < writerOps && fail.Load() == nil; op++ {
				i := residents + rng.Uint64n(churners)
				k := key(i)
				if rng.Uint64()&1 == 0 {
					if err := tbl.Insert(k, valueFor(i)); err != nil && err != ErrKeyExists && err != ErrTableFull {
						report("churn Insert: " + err.Error())
					}
				} else {
					tbl.Delete(k)
				}
			}
		}(0x9e51<<8 | uint64(w))
	}

	checkHit := func(i uint64, v uint64, ok bool, class string) {
		switch {
		case !ok && class == "resident":
			report("resident key missed during resize")
		case ok && class == "ghost":
			report("ghost key hit during resize (phantom match)")
		case ok && v != valueFor(i):
			report(class + " key hit with a foreign value during resize (torn read)")
		}
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := sim.NewRand(seed)
			const batchSize = 32
			batch := tbl.NewBatch()
			keys := make([][]byte, batchSize)
			idx := make([]uint64, batchSize)
			results := make([]Result, batchSize)
			drawKey := func() uint64 {
				switch rng.Uint64n(3) {
				case 0:
					return rng.Uint64n(residents)
				case 1:
					return residents + rng.Uint64n(churners)
				default:
					return residents + churners + rng.Uint64n(ghosts)
				}
			}
			class := func(i uint64) string {
				switch {
				case i < residents:
					return "resident"
				case i < residents+churners:
					return "churn"
				default:
					return "ghost"
				}
			}
			for op := 0; op < readerOps && fail.Load() == nil; op++ {
				if op%8 == 0 {
					for j := range keys {
						idx[j] = drawKey()
						keys[j] = key(idx[j])
					}
					batch.LookupMany(keys, results)
					for j := range keys {
						checkHit(idx[j], results[j].Value, results[j].OK, class(idx[j]))
					}
				} else {
					i := drawKey()
					v, ok := tbl.Lookup(key(i))
					checkHit(i, v, ok, class(i))
				}
			}
		}(0x6e0a<<8 | uint64(r))
	}

	wg.Wait()
	done.Store(true)
	stepWg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
	for tbl.ResizeStep(64) {
	}

	// Post-quiescence: every resident and grower key present with its own
	// value, and the run actually forced the doublings it was sized for.
	for i := uint64(0); i < residents; i++ {
		if v, ok := tbl.Lookup(key(i)); !ok || v != valueFor(i) {
			t.Fatalf("resident key %d = (%d,%v) after resize stress, want (%d,true)", i, v, ok, valueFor(i))
		}
	}
	for i := uint64(0); i < growKeys; i++ {
		if v, ok := tbl.Lookup(key(growBase + i)); !ok || v != valueFor(growBase+i) {
			t.Fatalf("grower key %d = (%d,%v) after resize stress", i, v, ok)
		}
	}
	s := tbl.Stats()
	if s.Grows < 6 {
		t.Fatalf("Grows = %d, want >= 6 (>= 3 doublings on each of 2 shards): %+v", s.Grows, s)
	}
	if s.MigratedKeys == 0 || s.ResizeSteps == 0 {
		t.Fatalf("resize stress migrated nothing: %+v", s)
	}
	t.Logf("resize stress stats: %+v", s)
}

// TestConcurrentWritersDistinctShardsProgress checks writer parallelism is
// real: writers pinned to different shards make progress concurrently
// (the per-shard mutex is not accidentally global).
func TestConcurrentWritersDistinctShards(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 8, Entries: 1 << 15, KeyLen: 20})
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	perWorker := uint64(2000)
	var inserted atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w uint64) {
			defer wg.Done()
			for i := uint64(0); i < perWorker; i++ {
				k := key20(w*1_000_000 + i)
				if err := tbl.Insert(k, w); err == nil {
					inserted.Add(1)
				} else if err != ErrTableFull {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	if got := tbl.Size(); got != inserted.Load() {
		t.Fatalf("Size = %d, inserted %d", got, inserted.Load())
	}
}
