package nf

import (
	"strings"
	"testing"

	"halo/internal/cpu"
	"halo/internal/halo"
	"halo/internal/packet"
	"halo/internal/trafficgen"
)

func platform(t testing.TB) (*halo.Platform, *cpu.Thread) {
	t.Helper()
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	return p, cpu.NewThread(p.Hier, 0)
}

func mkPacket(f packet.FiveTuple, payload int) packet.Packet {
	return packet.Packet{
		SrcIP: f.SrcIP, DstIP: f.DstIP, SrcPort: f.SrcPort, DstPort: f.DstPort,
		Proto: f.Proto, PayloadBytes: payload,
	}
}

func TestNATTranslatesConsistently(t *testing.T) {
	p, th := platform(t)
	nat, err := NewNAT(p, EngineSoftware, 1024)
	if err != nil {
		t.Fatal(err)
	}
	flows := trafficgen.RandomTuples(100, 1)
	// First packet of each flow allocates a binding; repeats reuse it.
	firstWAN := make(map[int]uint32)
	for round := 0; round < 3; round++ {
		for i, f := range flows {
			pkt := mkPacket(f, 0)
			if v := nat.ProcessPacket(th, &pkt); v != VerdictRewritten {
				t.Fatalf("flow %d round %d verdict %v", i, round, v)
			}
			if round == 0 {
				firstWAN[i] = pkt.SrcIP<<16 | uint32(pkt.SrcPort)
			} else if got := pkt.SrcIP<<16 | uint32(pkt.SrcPort); got != firstWAN[i] {
				t.Fatalf("flow %d binding changed between rounds", i)
			}
		}
	}
	if nat.HitRate() < 0.6 {
		t.Fatalf("NAT hit rate %.2f; repeats should hit", nat.HitRate())
	}
	// Distinct flows must get distinct bindings.
	seen := map[uint32]bool{}
	for _, w := range firstWAN {
		if seen[w] {
			t.Fatal("two flows share a NAT binding")
		}
		seen[w] = true
	}
}

func TestNATHaloMatchesSoftware(t *testing.T) {
	flows := trafficgen.RandomTuples(200, 2)
	run := func(engine Engine) []uint32 {
		p, th := platform(t)
		nat, err := NewNAT(p, engine, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if err := nat.Preload(flows); err != nil {
			t.Fatal(err)
		}
		out := make([]uint32, len(flows))
		for i, f := range flows {
			pkt := mkPacket(f, 0)
			nat.ProcessPacket(th, &pkt)
			out[i] = pkt.SrcIP ^ uint32(pkt.SrcPort)
		}
		return out
	}
	sw, hw := run(EngineSoftware), run(EngineHalo)
	for i := range sw {
		if sw[i] != hw[i] {
			t.Fatalf("NAT engines diverged on flow %d", i)
		}
	}
}

func TestFilterDropsListedFlows(t *testing.T) {
	p, th := platform(t)
	f, err := NewFilter(p, EngineSoftware, 1024)
	if err != nil {
		t.Fatal(err)
	}
	flows := trafficgen.RandomTuples(50, 3)
	for i, fl := range flows {
		if err := f.AddRule(fl, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	for i, fl := range flows {
		pkt := mkPacket(fl, 0)
		v := f.ProcessPacket(th, &pkt)
		want := VerdictAccept
		if i%2 == 0 {
			want = VerdictDrop
		}
		if v != want {
			t.Fatalf("flow %d verdict %v, want %v", i, v, want)
		}
	}
	// Unlisted flow takes the default.
	pkt := mkPacket(packet.FiveTuple{SrcIP: 9}, 0)
	if v := f.ProcessPacket(th, &pkt); v != VerdictAccept {
		t.Fatalf("default verdict %v", v)
	}
	if f.Dropped() != 25 {
		t.Fatalf("dropped = %d, want 25", f.Dropped())
	}
}

func TestPradsTracksAssets(t *testing.T) {
	p, th := platform(t)
	pr, err := NewPrads(p, EngineSoftware, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Three packets from host A, one from host B.
	a := packet.FiveTuple{SrcIP: 0x0a000001, DstIP: 2, DstPort: 80, Proto: packet.ProtoTCP}
	b := packet.FiveTuple{SrcIP: 0x0a000002, DstIP: 2, DstPort: 22, Proto: packet.ProtoTCP}
	for i := 0; i < 3; i++ {
		pkt := mkPacket(a, 0)
		pr.ProcessPacket(th, &pkt)
	}
	pkt := mkPacket(b, 0)
	pr.ProcessPacket(th, &pkt)
	if pr.Assets() != 2 {
		t.Fatalf("assets = %d, want 2", pr.Assets())
	}
	if n, ok := pr.AssetPackets(a.SrcIP); !ok || n != 3 {
		t.Fatalf("host A packets = (%d,%v), want 3", n, ok)
	}
	if n, ok := pr.AssetPackets(b.SrcIP); !ok || n != 1 {
		t.Fatalf("host B packets = (%d,%v), want 1", n, ok)
	}
	if _, ok := pr.AssetPackets(0xdead); ok {
		t.Fatal("unknown host reported")
	}
}

func TestACLVerdictsMatchRules(t *testing.T) {
	p, th := platform(t)
	a, err := NewACL(p, DefaultRules(), 64)
	if err != nil {
		t.Fatal(err)
	}
	// SSH from the 10.x net is denied by rule 0.
	ssh := packet.Packet{SrcIP: 0x0a010203, DstIP: 5, SrcPort: 1000, DstPort: 22, Proto: packet.ProtoTCP}
	if v := a.ProcessPacket(th, &ssh); v != VerdictDrop {
		t.Fatalf("ssh verdict %v", v)
	}
	// DNS is permitted by rule 4.
	dns := packet.Packet{SrcIP: 0x01020304, DstIP: 5, SrcPort: 1000, DstPort: 53, Proto: packet.ProtoUDP}
	if v := a.ProcessPacket(th, &dns); v != VerdictAccept {
		t.Fatalf("dns verdict %v", v)
	}
	// Unmatched UDP falls through to the default-permit route.
	other := packet.Packet{SrcIP: 0xf0000001, DstIP: 5, SrcPort: 9, DstPort: 9999, Proto: packet.ProtoUDP}
	if v := a.ProcessPacket(th, &other); v != VerdictAccept {
		t.Fatalf("default verdict %v", v)
	}
	if a.Permitted() != 2 || a.Denied() != 1 {
		t.Fatalf("permitted=%d denied=%d", a.Permitted(), a.Denied())
	}
}

func TestSnortLiteDetectsPatterns(t *testing.T) {
	p, th := platform(t)
	s, err := NewSnortLite(p, []string{"cmd.exe", "evil"})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Scan(th, []byte("xxxx cmd.exe yyyy")) {
		t.Fatal("embedded pattern missed")
	}
	if !s.Scan(th, []byte("cevileda")) {
		t.Fatal("pattern at offset missed")
	}
	if s.Scan(th, []byte("cmd.exX benign")) {
		t.Fatal("false positive")
	}
	// Overlapping patterns.
	s2, err := NewSnortLite(p, []string{"abab", "babc"})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Scan(th, []byte("xababc")) {
		t.Fatal("overlapping match missed (failure links broken)")
	}
}

func TestSnortLiteWorkingSetScale(t *testing.T) {
	p, _ := platform(t)
	s, err := NewSnortLite(p, DefaultPatterns())
	if err != nil {
		t.Fatal(err)
	}
	if s.States() < 300 {
		t.Fatalf("automaton has %d states; rule set too small for a working-set study", s.States())
	}
	if s.WorkingSetBytes() < 256<<10 {
		t.Fatalf("working set %d bytes; want L2-scale", s.WorkingSetBytes())
	}
}

func TestSnortLiteProcessPacketAlerts(t *testing.T) {
	p, th := platform(t)
	s, err := NewSnortLite(p, DefaultPatterns())
	if err != nil {
		t.Fatal(err)
	}
	flows := trafficgen.RandomTuples(500, 7)
	alerts := 0
	for _, f := range flows {
		pkt := mkPacket(f, 128)
		if s.ProcessPacket(th, &pkt) == VerdictAlert {
			alerts++
		}
	}
	if alerts == 0 {
		t.Fatal("no alerts over 500 random packets; payload synthesis never embeds signatures")
	}
	if alerts > 100 {
		t.Fatalf("%d/500 alerts; signature embedding rate implausible", alerts)
	}
}

func TestMTCPLiteHandshakeAndData(t *testing.T) {
	p, th := platform(t)
	m, err := NewMTCPLite(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	conn := packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80, Proto: packet.ProtoTCP}
	// SYN → SYN-RECEIVED.
	pkt := mkPacket(conn, 0)
	m.ProcessPacket(th, &pkt)
	if st, _ := m.ConnState(conn); st != tcpSynReceived {
		t.Fatalf("state after SYN = %d", st)
	}
	// ACK → ESTABLISHED.
	pkt = mkPacket(conn, 0)
	m.ProcessPacket(th, &pkt)
	if st, _ := m.ConnState(conn); st != tcpEstablished {
		t.Fatalf("state after ACK = %d", st)
	}
	if m.Established() != 1 {
		t.Fatalf("established = %d", m.Established())
	}
	// Data segments count.
	for i := 0; i < 5; i++ {
		pkt = mkPacket(conn, 100)
		m.ProcessPacket(th, &pkt)
	}
	if m.Segments() != 5 {
		t.Fatalf("segments = %d", m.Segments())
	}
	// Non-TCP drops.
	udp := mkPacket(packet.FiveTuple{Proto: packet.ProtoUDP}, 0)
	if v := m.ProcessPacket(th, &udp); v != VerdictDrop {
		t.Fatalf("udp verdict %v", v)
	}
}

func TestHaloNFsFasterThanSoftware(t *testing.T) {
	// Fig. 13's effect: hash-table NFs speed up with HALO once their
	// tables outgrow private caches.
	flows := trafficgen.RandomTuples(60000, 9)
	run := func(engine Engine) float64 {
		p, th := platform(t)
		nat, err := NewNAT(p, engine, 1<<17)
		if err != nil {
			t.Fatal(err)
		}
		if err := nat.Preload(flows); err != nil {
			t.Fatal(err)
		}
		p.WarmTable(nat.Table())
		start := th.Now
		for i := 0; i < 5000; i++ {
			pkt := mkPacket(flows[(i*37)%len(flows)], 0)
			nat.ProcessPacket(th, &pkt)
		}
		return float64(th.Now - start)
	}
	sw, hw := run(EngineSoftware), run(EngineHalo)
	if hw >= sw {
		t.Fatalf("HALO NAT (%v) not faster than software (%v)", hw, sw)
	}
	speedup := sw / hw
	if speedup < 1.3 || speedup > 5 {
		t.Fatalf("NAT speedup %.2f; paper Fig.13 band is ~2.3-2.7x", speedup)
	}
}

func TestAllNFNamesDistinct(t *testing.T) {
	p, _ := platform(t)
	nat, _ := NewNAT(p, EngineSoftware, 64)
	fil, _ := NewFilter(p, EngineSoftware, 64)
	pr, _ := NewPrads(p, EngineSoftware, 64)
	acl, _ := NewACL(p, DefaultRules(), 16)
	sl, _ := NewSnortLite(p, []string{"x"})
	mt, _ := NewMTCPLite(p, 64)
	names := map[string]bool{}
	for _, n := range []NF{nat, fil, pr, acl, sl, mt} {
		if n.Name() == "" || names[n.Name()] {
			t.Fatalf("bad or duplicate NF name %q", n.Name())
		}
		names[n.Name()] = true
		if strings.ToLower(n.Name()) != n.Name() {
			t.Fatalf("NF name %q not lowercase", n.Name())
		}
	}
}
