package hypotheses

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"halo/internal/flowserve"
	"halo/internal/flowwire"
	"halo/internal/packet"
	"halo/internal/stats"
	"halo/internal/trafficgen"
)

// shardBatchExperiment: PR 4 replaced naive per-key lookups with
// shard-grouped batching (Batch.LookupMany counting-sorts keys by shard and
// serves each group under one seqlock window). The claim riding on that
// change — "batching beats calling Lookup in a loop" — is what this
// experiment pins down across seeds.
func shardBatchExperiment() Experiment {
	return Experiment{
		Name:  "shard-grouped-batching",
		Title: "Shard-grouped batching (Batch.LookupMany) beats naive per-key Lookup loops",
		Kind:  KindDominance,
		ArmA:  "batched",
		ArmB:  "naive",
		Run: func(cfg Config, seed uint64) (SeedResult, error) {
			w, keys := buildPopulation(cfg.Flows, seed)
			tbl, err := newServingTable(cfg, keys)
			if err != nil {
				return SeedResult{}, err
			}
			batch := tbl.NewBatch()
			batched := func(bkeys [][]byte, results []flowserve.Result) {
				batch.LookupMany(bkeys, results)
			}
			naive := func(bkeys [][]byte, results []flowserve.Result) {
				for j, k := range bkeys {
					v, ok := tbl.Lookup(k)
					results[j] = flowserve.Result{Value: v, OK: ok}
				}
			}
			aNs, bNs, err := timeArms(w, keys, cfg, seed, batched, naive, nil)
			if err != nil {
				return SeedResult{}, err
			}
			return SeedResult{ANsPerOp: aNs, BNsPerOp: bNs}, nil
		},
	}
}

// serveOver starts an in-process flowwire server for tbl on the given
// endpoint and dials one client to it. The caller owns both closes.
func serveOver(tbl *flowserve.Table, transport, path string) (*flowwire.Server, *flowwire.Client, error) {
	ep := flowwire.Endpoint{Transport: transport, Addr: path}
	srv, err := flowwire.NewServer(flowwire.Config{Table: tbl})
	if err != nil {
		return nil, nil, err
	}
	ln, err := flowwire.ListenEndpoint(ep)
	if err != nil {
		return nil, nil, err
	}
	go srv.Serve(ln)
	cl, err := flowwire.DialEndpoint(ep, flowwire.Options{})
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	return srv, cl, nil
}

// shmVsUnixExperiment: PR 8 added the shared-memory ring transport behind
// the flowwire seam. The claim that justifies it — "for same-host serving,
// rings beat unix sockets because the steady-state frame path makes no
// syscalls" — is measured here with both transports serving the identical
// table through identical clients; only the bytes' path differs (kernel
// socket buffers vs mapped SPSC rings).
func shmVsUnixExperiment() Experiment {
	return Experiment{
		Name:  "shm-vs-unix-transport",
		Title: "Shared-memory ring transport beats unix sockets for same-host serving",
		Kind:  KindDominance,
		ArmA:  "shm",
		ArmB:  "unix",
		Run: func(cfg Config, seed uint64) (SeedResult, error) {
			w, keys := buildPopulation(cfg.Flows, seed)
			tbl, err := newServingTable(cfg, keys)
			if err != nil {
				return SeedResult{}, err
			}
			dir, err := os.MkdirTemp("", "halo-hyp-shm")
			if err != nil {
				return SeedResult{}, err
			}
			defer os.RemoveAll(dir)
			shmSrv, shmCl, err := serveOver(tbl, flowwire.TransportShm, filepath.Join(dir, "shm.sock"))
			if err != nil {
				return SeedResult{}, fmt.Errorf("shm arm: %w", err)
			}
			defer shmSrv.Close()
			defer shmCl.Close()
			udsSrv, udsCl, err := serveOver(tbl, flowwire.TransportUnix, filepath.Join(dir, "uds.sock"))
			if err != nil {
				return SeedResult{}, fmt.Errorf("unix arm: %w", err)
			}
			defer udsSrv.Close()
			defer udsCl.Close()
			overShm := func(bkeys [][]byte, results []flowserve.Result) {
				shmCl.LookupMany(bkeys, results)
			}
			overUds := func(bkeys [][]byte, results []flowserve.Result) {
				udsCl.LookupMany(bkeys, results)
			}
			aNs, bNs, err := timeArms(w, keys, cfg, seed, overShm, overUds, nil)
			if err != nil {
				return SeedResult{}, err
			}
			if err := shmCl.Err(); err != nil {
				return SeedResult{}, fmt.Errorf("shm client: %w", err)
			}
			if err := udsCl.Err(); err != nil {
				return SeedResult{}, fmt.Errorf("unix client: %w", err)
			}
			return SeedResult{ANsPerOp: aNs, BNsPerOp: bNs}, nil
		},
	}
}

// resizePauseBoundExperiment: PR 9 made shards grow incrementally — a
// bounded number of buckets migrates per writer operation while readers stay
// wait-free. The claim that design stands on is that growing the table is
// NOT a latency event: batch lookup p99 measured while migrations are in
// flight stays within 2x of the same table's steady-state p99. This is a
// bound claim, not a dominance claim — migration is allowed to cost
// something, just never a stall.
func resizePauseBoundExperiment() Experiment {
	return Experiment{
		Name:  "resize-pause-bound",
		Title: "Batch lookup p99 during incremental resize stays within 2x of steady state",
		Kind:  KindBound,
		Bound: 2.0,
		ArmA:  "during-resize",
		ArmB:  "steady-state",
		Run: func(cfg Config, seed uint64) (SeedResult, error) {
			w, keys := buildPopulation(cfg.Flows, seed)
			var bestMig, bestStd uint64
			for r := 0; r < cfg.Repeats; r++ {
				// A fresh table per repeat: growth is one-shot, so the
				// migration arm cannot be replayed against warmed state.
				mig, std, err := measureResizePause(w, keys, cfg, seed)
				if err != nil {
					return SeedResult{}, err
				}
				if r == 0 || mig < bestMig {
					bestMig = mig
				}
				if r == 0 || std < bestStd {
					bestStd = std
				}
			}
			perKey := float64(cfg.Batch)
			return SeedResult{
				ANsPerOp: float64(bestMig) / perKey,
				BNsPerOp: float64(bestStd) / perKey,
			}, nil
		},
	}
}

// measureResizePause runs one growth episode single-goroutine and returns
// (migration-phase p99, steady-state p99) batch latencies in ns. The table
// starts 3 doublings below the population's capacity with auto-grow on;
// inserts stream in chunks between lookup batches, so every doubling's
// migration interleaves with the measured reads — exactly how a writer-driven
// resize amortises in production. Batches issued while a shard is mid-resize
// land in the migration histogram; the steady histogram is measured after
// the migrations drain, over the full population.
func measureResizePause(w *trafficgen.Workload, keys [][]byte, cfg Config, seed uint64) (migP99, stdP99 uint64, err error) {
	const (
		doublings   = 3
		insertChunk = 32 // inserts between measured batches while growing
	)
	final := uint64(len(keys)) + uint64(len(keys))/8 + 1024
	initial := final >> doublings
	if min := uint64(cfg.Shards) * flowserve.EntriesPerBucket; initial < min {
		initial = min
	}
	tbl, err := flowserve.New(flowserve.Config{
		Shards:  cfg.Shards,
		Entries: initial,
		KeyLen:  packet.HeaderKeyLen,
		GrowAt:  0.8,
	})
	if err != nil {
		return 0, 0, err
	}
	prefix := int(initial * 6 / 10)
	if prefix < 1 {
		prefix = 1
	}
	if prefix > len(keys) {
		prefix = len(keys)
	}
	for i := 0; i < prefix; i++ {
		if err := tbl.Insert(keys[i], uint64(i)+1); err != nil {
			return 0, 0, fmt.Errorf("install flow %d: %w", i, err)
		}
	}

	batch := tbl.NewBatch()
	bkeys := make([][]byte, cfg.Batch)
	bidx := make([]int, cfg.Batch)
	results := make([]flowserve.Result, cfg.Batch)
	migHist := stats.NewHistogramRes(stats.HighResSubBits)
	stdHist := stats.NewHistogramRes(stats.HighResSubBits)
	stream := w.NewStream(seed ^ 0x47524f57) // "GROW"

	serveBatch := func(installed int, hist *stats.Histogram) error {
		for j := 0; j < cfg.Batch; j++ {
			fi := stream.NextFlow()
			if fi >= installed {
				fi %= installed
			}
			bidx[j] = fi
			bkeys[j] = keys[fi]
		}
		t0 := time.Now()
		batch.LookupMany(bkeys, results)
		hist.Observe(uint64(time.Since(t0).Nanoseconds()))
		for j := 0; j < cfg.Batch; j++ {
			if !results[j].OK || results[j].Value != uint64(bidx[j])+1 {
				return fmt.Errorf("flow %d = (%d,%v), want (%d,true)",
					bidx[j], results[j].Value, results[j].OK, bidx[j]+1)
			}
		}
		return nil
	}

	// Migration phase: grow the population to full size, measuring batches
	// between insert chunks. Batches that land while no shard is resizing
	// are discarded (scratch) — the arm is "during resize", not "while also
	// inserting".
	scratch := stats.NewHistogramRes(stats.HighResSubBits)
	for installed := prefix; installed < len(keys); {
		for c := 0; c < insertChunk && installed < len(keys); c++ {
			if err := tbl.Insert(keys[installed], uint64(installed)+1); err != nil {
				return 0, 0, fmt.Errorf("grow insert %d: %w", installed, err)
			}
			installed++
		}
		// Single goroutine: only our own inserts advance migration, so the
		// resizing state cannot change under the batch we are about to time.
		hist := scratch
		if tbl.Resizing() {
			hist = migHist
		}
		if err := serveBatch(installed, hist); err != nil {
			return 0, 0, err
		}
	}
	for tbl.ResizeStep(64) {
	}
	if migHist.Count() == 0 {
		return 0, 0, fmt.Errorf("no batches observed while a migration was in flight (flows %d, initial %d)",
			len(keys), initial)
	}

	// Steady phase: same table, migrations drained, full population.
	for done := int64(0); done < cfg.Ops; done += int64(cfg.Batch) {
		if err := serveBatch(len(keys), stdHist); err != nil {
			return 0, 0, err
		}
	}
	return migHist.Quantile(0.99), stdHist.Quantile(0.99), nil
}

// pinnedReaderExperiment: PR 5 introduced the Reader interface, whose
// pooled Table.LookupMany entry point costs a sync.Pool round-trip per
// call; PinnedReader exists so hot loops can pin that scratch once. The
// serving API is only an acceptable default if going through a PinnedReader
// costs the same as owning the Batch directly — an equivalence claim.
func pinnedReaderExperiment() Experiment {
	return Experiment{
		Name:  "pinned-reader-equivalence",
		Title: "PinnedReader lookups are within 5% of direct Batch lookups",
		Kind:  KindEquivalence,
		ArmA:  "pinned-reader",
		ArmB:  "direct-batch",
		Run: func(cfg Config, seed uint64) (SeedResult, error) {
			w, keys := buildPopulation(cfg.Flows, seed)
			tbl, err := newServingTable(cfg, keys)
			if err != nil {
				return SeedResult{}, err
			}
			reader := tbl.NewPinnedReader()
			pinned := func(bkeys [][]byte, results []flowserve.Result) {
				reader.LookupMany(bkeys, results)
			}
			batch := tbl.NewBatch()
			direct := func(bkeys [][]byte, results []flowserve.Result) {
				batch.LookupMany(bkeys, results)
			}
			aNs, bNs, err := timeArms(w, keys, cfg, seed, pinned, direct, nil)
			if err != nil {
				return SeedResult{}, err
			}
			return SeedResult{ANsPerOp: aNs, BNsPerOp: bNs}, nil
		},
	}
}
