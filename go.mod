module halo

go 1.22
