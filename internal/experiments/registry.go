package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one experiment and writes its tables to w.
type Runner struct {
	ID    string
	Paper string // which paper artefact it regenerates
	Run   func(cfg Config, w io.Writer)
}

// Registry returns every experiment runner, keyed and ordered by ID.
func Registry() []Runner {
	runners := []Runner{
		{"fig3", "Figure 3 (packet-processing breakdown)", func(c Config, w io.Writer) { RunFig3(c).Table.Render(w) }},
		{"fig4", "Figure 4 (cuckoo vs SFH cache behaviour)", func(c Config, w io.Writer) { RunFig4(c).Table.Render(w) }},
		{"table1", "Table 1 (instruction profile)", func(c Config, w io.Writer) { RunTable1(c).Table.Render(w) }},
		{"lockoverhead", "§3.4 (concurrency overhead)", func(c Config, w io.Writer) { RunLockOverhead(c).Table.Render(w) }},
		{"fig8", "Figure 8b (flow-register accuracy)", func(c Config, w io.Writer) { RunFig8(c).Table.Render(w) }},
		{"fig9", "Figure 9 (single-table lookup sweep)", func(c Config, w io.Writer) { RunFig9(c).Table.Render(w) }},
		{"fig10", "Figure 10 (latency breakdown)", func(c Config, w io.Writer) { RunFig10(c).Table.Render(w) }},
		{"fig11", "Figure 11 (tuple space search)", func(c Config, w io.Writer) { RunFig11(c).Table.Render(w) }},
		{"fig12", "Figure 12 (collocated NF interference)", func(c Config, w io.Writer) { RunFig12(c).Table.Render(w) }},
		{"table4", "Table 4 (power and area)", func(c Config, w io.Writer) {
			r := RunTable4(c)
			r.Table.Render(w)
			r.EfficiencyTable.Render(w)
		}},
		{"fig13", "Figure 13 (hash-table NF speedup)", func(c Config, w io.Writer) { RunFig13(c).Table.Render(w) }},
		{"ablations", "design-choice sweeps (beyond the paper)", func(c Config, w io.Writer) { RunAblations(c).Table.Render(w) }},
		{"scaling", "multicore scaling under rule churn (beyond the paper)", func(c Config, w io.Writer) { RunScaling(c).Table.Render(w) }},
		{"updates", "rule-update cost, cuckoo vs TCAM (§1 motivation)", func(c Config, w io.Writer) { RunUpdates(c).Table.Render(w) }},
	}
	return runners
}

// Find returns the runner with the given ID.
func Find(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	var ids []string
	for _, r := range Registry() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every experiment in registry order.
func RunAll(cfg Config, w io.Writer) {
	for _, r := range Registry() {
		fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Paper)
		r.Run(cfg, w)
	}
}
