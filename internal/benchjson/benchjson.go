// Package benchjson parses `go test -bench` text output into a
// schema-versioned document, mirroring the stats package's contract: a
// Schema field pinned to one version, deterministic encoding, and a
// round-trip check in Decode.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
)

// SchemaVersion identifies the document layout. Bump on incompatible change.
const SchemaVersion = "halo-bench/v1"

// Benchmark is one `Benchmark...` result line. Metrics maps unit → value
// for every (value, unit) pair on the line: "ns/op", and with -benchmem
// "B/op" and "allocs/op", plus any custom b.ReportMetric units.
type Benchmark struct {
	Name       string             `json:"name"`  // without the -N procs suffix
	Procs      int                `json:"procs"` // GOMAXPROCS suffix (1 if absent)
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the archived artifact.
//
// Seeds and Config identify the *workload* the numbers describe: the RNG
// seeds the producing tool ran and its benchmark configuration (flag values,
// bench pattern, population sizes — whatever defines the measurement).
// Compare refuses to diff documents whose Seeds or Config disagree, so two
// artifacts are only ever compared when they measured the same thing.
// GoVersion/GOOS/GOARCH/CPU describe the *environment* instead; mismatches
// there are reported as warnings, never refusals (cross-machine comparison
// of machine-independent metrics like allocs/op is a supported use).
type Document struct {
	Schema     string            `json:"schema"`
	GoVersion  string            `json:"go"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	CPU        string            `json:"cpu,omitempty"`
	Seeds      []uint64          `json:"seeds,omitempty"`
	Config     map[string]string `json:"config,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// Parse reads `go test -bench` output and collects every benchmark result
// line, in order. Non-benchmark lines (goos/goarch/pkg headers, PASS, ok)
// are skipped; goos/goarch headers override the runtime defaults so a
// document built from a saved log describes the machine that produced it.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{
		Schema:     SchemaVersion,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: []Benchmark{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if v, ok := strings.CutPrefix(line, "goos: "); ok {
			doc.GOOS = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "goarch: "); ok {
			doc.GOARCH = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			doc.CPU = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "pkg: "); ok {
			if doc.Config == nil {
				doc.Config = make(map[string]string)
			}
			// Multi-package runs emit one pkg header each; accumulate them.
			if cur := doc.Config["pkg"]; cur != "" && cur != v &&
				!strings.Contains(","+cur+",", ","+v+",") {
				doc.Config["pkg"] = cur + "," + v
			} else if cur == "" {
				doc.Config["pkg"] = v
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("benchjson: %q: %v", line, err)
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark result lines found")
	}
	return doc, nil
}

// parseLine splits one result line:
//
//	BenchmarkRunAllSerial-8  1  6.2e9 ns/op  9.8e8 B/op  1.2e7 allocs/op
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("want name, count and (value, unit) pairs")
	}
	b := Benchmark{Procs: 1, Metrics: make(map[string]float64, (len(fields)-2)/2)}
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(b.Name, '-'); i >= 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil && procs > 0 {
			b.Procs = procs
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iteration count: %v", err)
	}
	b.Iterations = iters
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("metric value %q: %v", fields[i], err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

// Find returns the named benchmark.
func (d *Document) Find(name string) (Benchmark, bool) {
	for _, b := range d.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Encode renders the document deterministically (map keys sorted by
// encoding/json, two-space indent, trailing newline).
func Encode(d *Document) ([]byte, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses a document, rejecting unknown schema versions.
func Decode(data []byte) (*Document, error) {
	var d Document
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	if d.Schema != SchemaVersion {
		return nil, fmt.Errorf("benchjson: unsupported schema %q (want %q)", d.Schema, SchemaVersion)
	}
	return &d, nil
}
