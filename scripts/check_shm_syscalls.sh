#!/bin/sh
# check_shm_syscalls.sh — strace-level proof that the shm transport's
# steady-state frame path makes no syscalls: run a flowload remote smoke
# against a flowserved -transport shm with the client under strace, then
# assert the client's I/O syscall count is orders of magnitude below the
# lookup count. Sockets pay ≥2 client-side syscalls per batch; the shm rings
# should show only handshake, doorbell and bookkeeping traffic.
#
# The authoritative, always-on gate is TestShmSteadyStateSyscallFree (an
# in-process counter over the transport's only syscall sites); this script is
# the external cross-check for machines that have strace. Without strace it
# skips cleanly so CI images need not carry it.
set -eu
cd "$(dirname "$0")/.."

if ! command -v strace >/dev/null 2>&1; then
	echo "check_shm_syscalls.sh: strace not installed; skipping (counter test covers this gate)"
	exit 0
fi

addr="${TMPDIR:-/tmp}/flowserved-shmcheck.sock"
trace="${TMPDIR:-/tmp}/flowload-shmcheck.strace"
ops=200000

go build -o flowserved.shmcheck ./cmd/flowserved
go build -o flowload.shmcheck ./cmd/flowload
./flowserved.shmcheck -transport shm -listen "$addr" -shards 4 -entries 65536 &
srv=$!
status=0
# One sweep point, closed loop: ops lookups, client-side syscalls summarised
# by strace -c (-f follows the runtime's threads).
strace -f -c -o "$trace" \
	./flowload.shmcheck -remote "$addr" -transport shm -check \
	-conns 2 -mix uniform -flows 10000 -ops "$ops" || status=$?
kill -TERM "$srv"
wait "$srv" || status=$?

io_calls=$(awk '$NF ~ /^(read|write|sendto|recvfrom|sendmsg|recvmsg|pread64|pwrite64)$/ { sum += $4 } END { print sum + 0 }' "$trace")
echo "client I/O syscalls: $io_calls across $ops lookups"
# Generous fixed slack for startup, table install and stats; a socket
# transport would need hundreds of thousands of calls here.
if [ "$io_calls" -gt $((ops / 10)) ]; then
	echo "check_shm_syscalls.sh: FAIL — $io_calls I/O syscalls is not a syscall-free frame path" >&2
	status=1
fi
rm -f flowserved.shmcheck flowload.shmcheck "$trace"
exit "$status"
