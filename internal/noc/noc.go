// Package noc models the on-chip interconnect of the simulated CPU: a
// bidirectional ring connecting cores, LLC slices / CHAs, and the memory
// controllers, plus the HALO query distributor that routes lookup queries to
// per-slice accelerators.
package noc

import "halo/internal/sim"

// RingConfig describes the interconnect. Cores and LLC slices alternate as
// ring stops (as on Skylake-SP); the distance between stop i and stop j is
// the shorter way around the ring.
type RingConfig struct {
	Stops       int       // number of ring stops (== cores == slices)
	HopCycles   sim.Cycle // latency per hop
	InjectDelay sim.Cycle // fixed cost to get on/off the ring
}

// DefaultRingConfig matches the 16-core platform of paper Table 2.
func DefaultRingConfig() RingConfig {
	return RingConfig{Stops: 16, HopCycles: 2, InjectDelay: 3}
}

// Ring is the interconnect timing model.
type Ring struct {
	cfg RingConfig
}

// NewRing builds a ring with the given configuration.
func NewRing(cfg RingConfig) *Ring {
	if cfg.Stops <= 0 {
		panic("noc: ring needs at least one stop")
	}
	return &Ring{cfg: cfg}
}

// Stops returns the number of ring stops.
func (r *Ring) Stops() int { return r.cfg.Stops }

// Hops returns the hop count between two stops, the shorter way around.
func (r *Ring) Hops(from, to int) int {
	d := from - to
	if d < 0 {
		d = -d
	}
	if alt := r.cfg.Stops - d; alt < d {
		d = alt
	}
	return d
}

// Delay returns the one-way message latency between two ring stops. A
// message to the local stop still pays the inject/eject cost.
func (r *Ring) Delay(from, to int) sim.Cycle {
	if from == to {
		return r.cfg.InjectDelay
	}
	return r.cfg.InjectDelay + sim.Cycle(r.Hops(from, to))*r.cfg.HopCycles
}

// MeanDelay returns the average one-way latency from a stop to a uniformly
// random other stop, used for analytic sanity checks in tests.
func (r *Ring) MeanDelay(from int) float64 {
	total := sim.Cycle(0)
	for to := 0; to < r.cfg.Stops; to++ {
		total += r.Delay(from, to)
	}
	return float64(total) / float64(r.cfg.Stops)
}
