// Command flowgen emits generated traffic workloads for inspection: the
// rule set and a sample of the packet stream, in a human-readable or CSV
// form. It exists so the workloads driving every experiment can be eyeballed
// and diffed across seeds.
//
// Usage:
//
//	flowgen -flows 1000 -rules 5 -sample 20
//	flowgen -scenarios             # print the paper's five configurations
package main

import (
	"flag"
	"fmt"
	"os"

	"halo/internal/trafficgen"
)

func main() {
	var (
		flows     = flag.Int("flows", 1000, "number of flows")
		rules     = flag.Int("rules", 5, "number of wildcard rules")
		sample    = flag.Int("sample", 10, "packets to sample from the stream")
		zipf      = flag.Bool("zipf", false, "zipf popularity")
		seed      = flag.Uint64("seed", 1, "generator seed")
		scenarios = flag.Bool("scenarios", false, "print the paper's five traffic configurations")
		csv       = flag.Bool("csv", false, "emit the packet sample as CSV")
		out       = flag.String("out", "", "write a binary trace (rules + packets) to this file")
		count     = flag.Int("count", 100000, "packets to record with -out")
	)
	flag.Parse()

	if *scenarios {
		fmt.Println("paper §3.2 traffic configurations:")
		for _, s := range trafficgen.PaperScenarios() {
			pop := "uniform"
			if s.Popularity == trafficgen.Zipf {
				pop = "zipf"
			}
			fmt.Printf("  %-16s %9d flows  %2d rules  %s\n", s.Name, s.Flows, s.Rules, pop)
		}
		return
	}

	pop := trafficgen.Uniform
	if *zipf {
		pop = trafficgen.Zipf
	}
	w := trafficgen.Generate(trafficgen.Scenario{
		Name: "cli", Flows: *flows, Rules: *rules, Popularity: pop,
	}, *seed)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowgen:", err)
			os.Exit(1)
		}
		if err := w.WriteTrace(f, *count); err != nil {
			fmt.Fprintln(os.Stderr, "flowgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "flowgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d rules and %d packets to %s\n", len(w.Rules), *count, *out)
		return
	}

	fmt.Printf("rules (%d):\n", len(w.Rules))
	for i, r := range w.Rules {
		fmt.Printf("  #%-3d %v pattern=%v action=port-%d priority=%d\n",
			i+1, r.Mask, r.Pattern, r.Match.Action.Port, r.Match.Priority)
	}

	fmt.Printf("\npacket sample (%d of a %d-flow stream):\n", *sample, *flows)
	if *csv {
		fmt.Println("src_ip,dst_ip,src_port,dst_port,proto,flow_index,rule")
	}
	for i := 0; i < *sample; i++ {
		pkt, fi := w.NextPacket()
		if *csv {
			fmt.Printf("%d,%d,%d,%d,%d,%d,%d\n",
				pkt.SrcIP, pkt.DstIP, pkt.SrcPort, pkt.DstPort, pkt.Proto, fi, w.FlowRule[fi]+1)
			continue
		}
		fmt.Printf("  %v  (flow %d, rule %d)\n", pkt.Key(), fi, w.FlowRule[fi]+1)
	}
	_ = os.Stdout
}
