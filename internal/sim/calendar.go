package sim

// CalendarResource models a unit that can service one operation at a time,
// like Resource, but keeps a window of busy intervals instead of a single
// tail timestamp. Claims arriving with out-of-order timestamps — the normal
// case when several threads' timelines interleave — are fitted into the
// earliest idle gap at or after their arrival, so a latecomer is delayed
// only by genuine utilisation, never by the mere existence of later claims.
//
// The interval window is bounded: intervals older than the newest claim by
// more than `horizon` merge into a floor timestamp. Claim binary-searches
// the sorted window for its insertion region, so deep out-of-order arrivals
// cost O(log window) search plus the O(window) copy-insert.
type CalendarResource struct {
	intervals []interval // sorted by start, non-overlapping, non-touching
	floor     Cycle      // claims may not start before this (merged history)
	horizon   Cycle
}

type interval struct{ start, end Cycle }

// NewCalendarResource builds a resource that remembers busy intervals within
// `horizon` cycles of the newest claim (older history merges into a floor
// that is only binding for claims arriving even further out of order).
func NewCalendarResource(horizon Cycle) *CalendarResource {
	if horizon == 0 {
		horizon = 4096
	}
	return &CalendarResource{horizon: horizon}
}

// Claim reserves the resource for `occupancy` cycles starting no earlier
// than `at`, and returns the start of the reservation.
func (c *CalendarResource) Claim(at Cycle, occupancy Cycle) (start Cycle) {
	if occupancy == 0 {
		occupancy = 1
	}
	if at < c.floor {
		at = c.floor
	}
	// Intervals are sorted and disjoint, so their ends ascend: binary-search
	// the first interval that can constrain the claim (end > at). Everything
	// before it lies entirely in the past of the claim.
	lo, hi := 0, len(c.intervals)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.intervals[mid].end <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Walk forward from there to the earliest gap of `occupancy` cycles.
	start = at
	idx := len(c.intervals)
	for i := lo; i < len(c.intervals); i++ {
		iv := c.intervals[i]
		if iv.start >= start+occupancy {
			// Fits entirely before this interval.
			idx = i
			break
		}
		// Overlaps: push past it.
		start = iv.end
		idx = i + 1
	}
	// Insert the new interval at idx, then merge touching neighbours and
	// fold expired history.
	iv := interval{start, start + occupancy}
	c.intervals = append(c.intervals, interval{})
	copy(c.intervals[idx+1:], c.intervals[idx:])
	c.intervals[idx] = iv
	c.compact(idx, start)
	return start
}

// compact folds history older than the horizon into the floor and merges
// the just-inserted interval (at idx) with touching neighbours. The rest of
// the window is untouched: previous compactions left it strictly disjoint,
// and an insertion can only create adjacency next to idx.
func (c *CalendarResource) compact(idx int, newest Cycle) {
	cutoff := Cycle(0)
	if newest > c.horizon {
		cutoff = newest - c.horizon
	}
	// Expired intervals form a prefix (ends ascend). The new interval ends
	// after `newest`, so it never folds and idx stays in range.
	k := 0
	for k < len(c.intervals) && c.intervals[k].end <= cutoff {
		k++
	}
	if k > 0 {
		if e := c.intervals[k-1].end; e > c.floor {
			c.floor = e
		}
		c.intervals = c.intervals[:copy(c.intervals, c.intervals[k:])]
		idx -= k
	}
	// Merge left: the predecessor was skipped or pushed past, so it can at
	// most touch (prev.end == start). A fold may have removed it.
	if idx > 0 && c.intervals[idx-1].end >= c.intervals[idx].start {
		c.intervals[idx-1].end = c.intervals[idx].end
		c.intervals = c.intervals[:idx+copy(c.intervals[idx:], c.intervals[idx+1:])]
		idx--
	}
	// Merge right: the successor starts at or after the new end by
	// construction, so again at most touching.
	if idx+1 < len(c.intervals) && c.intervals[idx+1].start <= c.intervals[idx].end {
		if c.intervals[idx+1].end > c.intervals[idx].end {
			c.intervals[idx].end = c.intervals[idx+1].end
		}
		c.intervals = c.intervals[:idx+1+copy(c.intervals[idx+1:], c.intervals[idx+2:])]
	}
}

// BusyUntil reports the end of the latest reservation (0 when idle).
func (c *CalendarResource) BusyUntil() Cycle {
	if len(c.intervals) == 0 {
		return c.floor
	}
	return c.intervals[len(c.intervals)-1].end
}

// Utilisation reports the busy fraction of the window [from, to), for tests
// and saturation diagnostics.
func (c *CalendarResource) Utilisation(from, to Cycle) float64 {
	if to <= from {
		return 0
	}
	var busy Cycle
	for _, iv := range c.intervals {
		s, e := iv.start, iv.end
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if e > s {
			busy += e - s
		}
	}
	return float64(busy) / float64(to-from)
}
