package tcam

import (
	"testing"

	"halo/internal/cache"
	"halo/internal/cpu"
	"halo/internal/mem"
	"halo/internal/noc"
)

func TestExactMatch(t *testing.T) {
	d := New(DefaultConfig(ClassicTCAM, 16, 4))
	if err := d.InsertExact([]byte{1, 2, 3, 4}, 99); err != nil {
		t.Fatal(err)
	}
	v, ok := d.Lookup([]byte{1, 2, 3, 4})
	if !ok || v != 99 {
		t.Fatalf("lookup = (%d,%v)", v, ok)
	}
	if _, ok := d.Lookup([]byte{1, 2, 3, 5}); ok {
		t.Fatal("near-miss matched")
	}
}

func TestWildcardMatch(t *testing.T) {
	d := New(DefaultConfig(ClassicTCAM, 16, 4))
	// Match 10.0.x.x
	if err := d.Insert([]byte{10, 0, 0, 0}, []byte{0xFF, 0xFF, 0, 0}, 7); err != nil {
		t.Fatal(err)
	}
	if v, ok := d.Lookup([]byte{10, 0, 123, 45}); !ok || v != 7 {
		t.Fatalf("wildcard lookup = (%d,%v)", v, ok)
	}
	if _, ok := d.Lookup([]byte{10, 1, 0, 0}); ok {
		t.Fatal("out-of-prefix key matched")
	}
}

func TestPriorityIsIndexOrder(t *testing.T) {
	d := New(DefaultConfig(ClassicTCAM, 16, 2))
	d.Insert([]byte{1, 0}, []byte{0xFF, 0}, 1)    // 1.x → 1
	d.Insert([]byte{1, 2}, []byte{0xFF, 0xFF}, 2) // 1.2 → 2 (shadowed)
	if v, _ := d.Lookup([]byte{1, 2}); v != 1 {
		t.Fatalf("priority = %d, want lowest index to win", v)
	}
}

func TestValueOutsideCareCanonicalised(t *testing.T) {
	d := New(DefaultConfig(ClassicTCAM, 4, 2))
	// Garbage bits outside the care mask must not affect matching.
	d.Insert([]byte{0xAB, 0xFF}, []byte{0xFF, 0x00}, 5)
	if v, ok := d.Lookup([]byte{0xAB, 0x12}); !ok || v != 5 {
		t.Fatalf("canonicalisation broken: (%d,%v)", v, ok)
	}
}

func TestCapacityAndErrors(t *testing.T) {
	d := New(DefaultConfig(ClassicTCAM, 2, 2))
	if err := d.InsertExact([]byte{1}, 0); err != ErrKeyLen {
		t.Fatalf("short key err = %v", err)
	}
	d.InsertExact([]byte{1, 1}, 1)
	d.InsertExact([]byte{2, 2}, 2)
	if err := d.InsertExact([]byte{3, 3}, 3); err != ErrFull {
		t.Fatalf("full err = %v", err)
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
}

func TestDelete(t *testing.T) {
	d := New(DefaultConfig(ClassicTCAM, 4, 2))
	care := []byte{0xFF, 0xFF}
	d.Insert([]byte{1, 1}, care, 1)
	d.Insert([]byte{2, 2}, care, 2)
	if !d.Delete([]byte{1, 1}, care) {
		t.Fatal("delete failed")
	}
	if _, ok := d.Lookup([]byte{1, 1}); ok {
		t.Fatal("deleted entry matched")
	}
	if v, _ := d.Lookup([]byte{2, 2}); v != 2 {
		t.Fatal("surviving entry lost")
	}
	if d.Delete([]byte{9, 9}, care) {
		t.Fatal("delete of absent entry succeeded")
	}
}

func TestTimedLookupLatencies(t *testing.T) {
	h := cache.New(cache.DefaultConfig(), noc.NewRing(noc.DefaultRingConfig()),
		mem.NewDRAM(mem.DefaultDRAMConfig()))
	th := cpu.NewThread(h, 0)

	classic := New(DefaultConfig(ClassicTCAM, 16, 4))
	classic.InsertExact([]byte{1, 2, 3, 4}, 1)
	start := th.Now
	classic.LookupTimed(th, []byte{1, 2, 3, 4})
	classicCost := th.Now - start

	sram := New(DefaultConfig(SRAMTCAM, 16, 4))
	sram.InsertExact([]byte{1, 2, 3, 4}, 1)
	start = th.Now
	sram.LookupTimed(th, []byte{1, 2, 3, 4})
	sramCost := th.Now - start

	if classicCost >= sramCost {
		t.Fatalf("classic (%d) should be faster than SRAM-TCAM (%d)", classicCost, sramCost)
	}
	// A few search cycles plus the fixed uncore command round trip.
	if classicCost > 40 {
		t.Fatalf("TCAM lookup cost %d cycles; want ~30", classicCost)
	}
}

func TestStats(t *testing.T) {
	d := New(DefaultConfig(ClassicTCAM, 4, 2))
	d.InsertExact([]byte{1, 1}, 1)
	d.Lookup([]byte{1, 1})
	d.Lookup([]byte{2, 2})
	if d.Queries() != 2 || d.HitRate() != 0.5 {
		t.Fatalf("queries=%d hitRate=%v", d.Queries(), d.HitRate())
	}
	if d.CapacityBytes() != 8 {
		t.Fatalf("capacity bytes = %d", d.CapacityBytes())
	}
}

func TestTimedUpdatesChargeShiftCost(t *testing.T) {
	h := cache.New(cache.DefaultConfig(), noc.NewRing(noc.DefaultRingConfig()),
		mem.NewDRAM(mem.DefaultDRAMConfig()))
	th := cpu.NewThread(h, 0)
	d := New(DefaultConfig(ClassicTCAM, 1000, 2))
	care := []byte{0xFF, 0xFF}
	for i := 0; i < 500; i++ {
		d.InsertExact([]byte{byte(i), byte(i >> 8)}, uint64(i))
	}
	// Insert at the head: every existing entry shifts.
	start := th.Now
	if err := d.InsertTimed(th, 0, []byte{0xAA, 0xBB}, care, 9); err != nil {
		t.Fatal(err)
	}
	headCost := th.Now - start
	// Insert at the tail: no shifting.
	start = th.Now
	if err := d.InsertTimed(th, d.Len(), []byte{0xAA, 0xCC}, care, 10); err != nil {
		t.Fatal(err)
	}
	tailCost := th.Now - start
	if headCost < tailCost+500 {
		t.Fatalf("head insert (%d) should dwarf tail insert (%d)", headCost, tailCost)
	}
	// Priority order holds: the head insert wins over the old entries.
	if v, ok := d.Lookup([]byte{0xAA, 0xBB}); !ok || v != 9 {
		t.Fatalf("head entry lookup = (%d,%v)", v, ok)
	}
	// Timed delete removes and charges.
	start = th.Now
	if !d.DeleteTimed(th, []byte{0xAA, 0xBB}, care) {
		t.Fatal("timed delete failed")
	}
	if th.Now == start {
		t.Fatal("timed delete charged nothing")
	}
	if d.DeleteTimed(th, []byte{0x01, 0x99}, care) {
		t.Fatal("timed delete of absent entry succeeded")
	}
	// Full device rejects.
	full := New(DefaultConfig(ClassicTCAM, 1, 2))
	full.InsertExact([]byte{1, 1}, 1)
	if err := full.InsertTimed(th, 0, []byte{2, 2}, care, 2); err != ErrFull {
		t.Fatalf("full err = %v", err)
	}
}
