package runner_test

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"

	"halo/internal/experiments"
	"halo/internal/runner"
	"halo/internal/stats"
)

// cheapRunners picks real registry experiments that are fast at quick
// config, so pool-vs-serial comparisons stay affordable in -race runs.
func cheapRunners(t *testing.T) []experiments.Runner {
	t.Helper()
	var rs []experiments.Runner
	for _, id := range []string{"table4", "updates", "fig8"} {
		r, ok := experiments.Find(id)
		if !ok {
			t.Fatalf("experiment %q missing from registry", id)
		}
		rs = append(rs, r)
	}
	return rs
}

// TestPoolMatchesSerial is the heart of the harness: pooled output must be
// byte-identical to the serial path for real experiments.
func TestPoolMatchesSerial(t *testing.T) {
	t.Parallel()
	cfg := experiments.QuickConfig()
	runners := cheapRunners(t)

	var serial strings.Builder
	for _, r := range runners {
		fmt.Fprintf(&serial, "### %s — %s\n\n", r.ID, r.Paper)
		r.Run(cfg, &serial)
	}

	for _, workers := range []int{1, 3, 8} {
		var pooled strings.Builder
		if err := runner.Run(runner.Options{Workers: workers}, cfg, runners, &pooled); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if pooled.String() != serial.String() {
			t.Errorf("workers=%d: pooled output differs from serial", workers)
		}
	}
}

// TestVerifyPassesOnRealExperiments drives the -verify mode end to end.
func TestVerifyPassesOnRealExperiments(t *testing.T) {
	t.Parallel()
	cfg := experiments.QuickConfig()
	err := runner.Run(runner.Options{Workers: 4, Verify: true}, cfg, cheapRunners(t), io.Discard)
	if err != nil {
		t.Fatalf("verify run failed: %v", err)
	}
}

// fakeSweep builds a sweep of n points whose rows come from run.
func fakeSweep(id string, n int, run func(i int) any) experiments.Sweep {
	return experiments.Sweep{
		Points: func(cfg experiments.Config) []experiments.Point {
			pts := make([]experiments.Point, n)
			for i := range pts {
				pts[i] = experiments.Point{Experiment: id, Index: i, Label: fmt.Sprintf("p%d", i)}
			}
			return pts
		},
		RunPoint: func(cfg experiments.Config, p experiments.Point) any {
			return run(p.Index)
		},
		Render: func(cfg experiments.Config, rows []any, w io.Writer) {
			for _, r := range rows {
				fmt.Fprintf(w, "%v\n", r)
			}
		},
	}
}

// TestRenderOrderPreserved: rows land at their point index and experiments
// render in input order, whatever the scheduling.
func TestRenderOrderPreserved(t *testing.T) {
	t.Parallel()
	var runners []experiments.Runner
	for e := 0; e < 5; e++ {
		id := fmt.Sprintf("exp%d", e)
		runners = append(runners, experiments.Runner{
			ID: id, Paper: "fake",
			Sweep: fakeSweep(id, 7, func(i int) any { return fmt.Sprintf("%s-row%d", id, i) }),
		})
	}
	var want strings.Builder
	for _, r := range runners {
		fmt.Fprintf(&want, "### %s — %s\n\n", r.ID, r.Paper)
		for i := 0; i < 7; i++ {
			fmt.Fprintf(&want, "%s-row%d\n", r.ID, i)
		}
	}
	for _, workers := range []int{1, 2, 16} {
		var got strings.Builder
		if err := runner.Run(runner.Options{Workers: workers}, experiments.QuickConfig(), runners, &got); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.String() != want.String() {
			t.Errorf("workers=%d:\n got:\n%s\nwant:\n%s", workers, got.String(), want.String())
		}
	}
}

// TestVerifyCatchesNondeterminism: a point whose result depends on run
// count must fail verify mode.
func TestVerifyCatchesNondeterminism(t *testing.T) {
	t.Parallel()
	var calls atomic.Int64
	bad := experiments.Runner{
		ID: "bad", Paper: "fake",
		Sweep: fakeSweep("bad", 3, func(i int) any {
			if i == 1 {
				return calls.Add(1) // differs every execution
			}
			return int64(i)
		}),
	}
	var out strings.Builder
	err := runner.Run(runner.Options{Workers: 2, Verify: true}, experiments.QuickConfig(),
		[]experiments.Runner{bad}, &out)
	if err == nil {
		t.Fatal("verify mode missed a nondeterministic point")
	}
	if !strings.Contains(err.Error(), `point "p1"`) {
		t.Errorf("error does not name the diverging point: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("diverging experiment was rendered anyway:\n%s", out.String())
	}
}

// TestPanicBecomesError: a panicking point fails its experiment but the
// pool survives and later experiments still render.
func TestPanicBecomesError(t *testing.T) {
	t.Parallel()
	runners := []experiments.Runner{
		{ID: "boom", Paper: "fake", Sweep: fakeSweep("boom", 3, func(i int) any {
			if i == 2 {
				panic("synthetic failure")
			}
			return i
		})},
		{ID: "fine", Paper: "fake", Sweep: fakeSweep("fine", 2, func(i int) any { return i })},
	}
	var out strings.Builder
	err := runner.Run(runner.Options{Workers: 4}, experiments.QuickConfig(), runners, &out)
	if err == nil {
		t.Fatal("panic did not surface as an error")
	}
	if !strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("error lost the panic value: %v", err)
	}
	if strings.Contains(out.String(), "### boom") {
		t.Error("failed experiment was rendered")
	}
	if !strings.Contains(out.String(), "### fine") {
		t.Error("healthy experiment after a failure was not rendered")
	}
}

// TestZeroPointExperiment: an empty sweep renders (header + empty body)
// without deadlocking the completion signalling.
func TestZeroPointExperiment(t *testing.T) {
	t.Parallel()
	empty := experiments.Runner{ID: "empty", Paper: "fake",
		Sweep: fakeSweep("empty", 0, func(i int) any { return nil })}
	var out strings.Builder
	if err := runner.Run(runner.Options{Workers: 2}, experiments.QuickConfig(),
		[]experiments.Runner{empty}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "### empty") {
		t.Error("empty experiment header missing")
	}
}

// TestRunDocDeterministic: the stats document must encode to identical
// bytes at any worker count, validate against its schema, and actually
// carry component snapshots.
func TestRunDocDeterministic(t *testing.T) {
	t.Parallel()
	cfg := experiments.QuickConfig()
	runners := cheapRunners(t)
	hy, ok := experiments.Find("hybrid")
	if !ok {
		t.Fatal("hybrid experiment missing from registry")
	}
	runners = append(runners, hy)

	var ref []byte
	for _, workers := range []int{1, 4} {
		doc, err := runner.RunDoc(runner.Options{Workers: workers}, cfg, runners, io.Discard)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := stats.Encode(doc)
		if err != nil {
			t.Fatalf("workers=%d: encode: %v", workers, err)
		}
		if _, err := stats.Validate(data); err != nil {
			t.Fatalf("workers=%d: document does not validate: %v", workers, err)
		}
		if ref == nil {
			ref = data
		} else if !bytes.Equal(ref, data) {
			t.Errorf("workers=%d: document bytes differ from serial run", workers)
		}
	}

	doc, err := stats.Decode(ref)
	if err != nil {
		t.Fatal(err)
	}
	withSnap := 0
	for _, e := range doc.Experiments {
		if e.Snapshot != nil {
			withSnap++
		}
	}
	if withSnap == 0 {
		t.Error("no experiment carried a merged component snapshot")
	}
}

// TestMap checks order preservation and full coverage across worker counts.
func TestMap(t *testing.T) {
	t.Parallel()
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 7, 200} {
		got := runner.Map(workers, items, func(i, v int) int { return v * 3 })
		for i, v := range got {
			if v != i*3 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*3)
			}
		}
	}
	if got := runner.Map(4, []int(nil), func(i, v int) int { return v }); len(got) != 0 {
		t.Errorf("Map over nil slice returned %d results", len(got))
	}
}
