package flowserve

import (
	"encoding/binary"
	"testing"

	"halo/internal/stats"
)

// key20 builds a 20-byte key (the packet header-key width) from a number.
func key20(i uint64) []byte {
	k := make([]byte, 20)
	binary.LittleEndian.PutUint64(k, i)
	binary.LittleEndian.PutUint64(k[8:], i*0x9e3779b97f4a7c15)
	return k
}

func mustNew(t testing.TB, cfg Config) *Table {
	t.Helper()
	tbl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Shards: 1, Entries: 100, KeyLen: 0},
		{Shards: 1, Entries: 100, KeyLen: 65},
		{Shards: 0, Entries: 100, KeyLen: 16},
		{Shards: 3, Entries: 100, KeyLen: 16},
		{Shards: 8192, Entries: 100, KeyLen: 16},
		{Shards: 1, Entries: 0, KeyLen: 16},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("New(%+v) accepted an invalid config", cfg)
		}
	}
}

func TestBasicOps(t *testing.T) {
	for _, shards := range []int{1, 4} {
		tbl := mustNew(t, Config{Shards: shards, Entries: 4096, KeyLen: 20})
		const n = 2000
		for i := uint64(0); i < n; i++ {
			if err := tbl.Insert(key20(i), i*3+1); err != nil {
				t.Fatalf("shards=%d Insert(%d): %v", shards, i, err)
			}
		}
		if got := tbl.Size(); got != n {
			t.Fatalf("shards=%d Size = %d, want %d", shards, got, n)
		}
		for i := uint64(0); i < n; i++ {
			v, ok := tbl.Lookup(key20(i))
			if !ok || v != i*3+1 {
				t.Fatalf("shards=%d Lookup(%d) = (%d,%v), want (%d,true)", shards, i, v, ok, i*3+1)
			}
		}
		if _, ok := tbl.Lookup(key20(n + 5)); ok {
			t.Fatalf("shards=%d found an absent key", shards)
		}
		if err := tbl.Insert(key20(3), 99); err != ErrKeyExists {
			t.Fatalf("shards=%d duplicate insert: %v, want ErrKeyExists", shards, err)
		}
		if !tbl.Update(key20(3), 99) {
			t.Fatalf("shards=%d Update of a present key failed", shards)
		}
		if v, ok := tbl.Lookup(key20(3)); !ok || v != 99 {
			t.Fatalf("shards=%d value after Update = (%d,%v), want (99,true)", shards, v, ok)
		}
		if tbl.Update(key20(n+7), 1) {
			t.Fatalf("shards=%d Update of an absent key succeeded", shards)
		}
		if !tbl.Delete(key20(3)) {
			t.Fatalf("shards=%d Delete of a present key failed", shards)
		}
		if tbl.Delete(key20(3)) {
			t.Fatalf("shards=%d Delete of an absent key succeeded", shards)
		}
		if _, ok := tbl.Lookup(key20(3)); ok {
			t.Fatalf("shards=%d deleted key still present", shards)
		}
		if got := tbl.Size(); got != n-1 {
			t.Fatalf("shards=%d Size after delete = %d, want %d", shards, got, n-1)
		}
	}
}

func TestKeyLenMismatch(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 2, Entries: 128, KeyLen: 20})
	short := make([]byte, 5)
	if _, ok := tbl.Lookup(short); ok {
		t.Fatal("Lookup of a mismatched-length key hit")
	}
	if err := tbl.Insert(short, 1); err != ErrKeyLen {
		t.Fatalf("Insert(short key) = %v, want ErrKeyLen", err)
	}
	if tbl.Update(short, 1) || tbl.Delete(short) {
		t.Fatal("Update/Delete of a mismatched-length key succeeded")
	}
	// Wrong-length keys hash to no shard, so they must land in the
	// table-level badlen counter — never in a shard's lookup count, which
	// would skew that shard's hit ratio (pre-PR they were charged to
	// shard 0).
	s := tbl.Stats()
	if s.BadLenLookups != 1 {
		t.Fatalf("mismatched-length lookup accounting = %+v, want BadLenLookups 1", s)
	}
	if s.Lookups != 0 || s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("mismatched-length lookup leaked into shard counters: %+v", s)
	}
}

// TestFillForcesDisplacement fills a single-shard table close to capacity so
// insertion must run cuckoo displacement chains, then verifies every key.
func TestFillForcesDisplacement(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 1, Entries: 1024, KeyLen: 20})
	inserted := make(map[uint64]uint64)
	for i := uint64(0); i < 1024; i++ {
		err := tbl.Insert(key20(i), i+100)
		if err == ErrTableFull {
			break
		}
		if err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
		inserted[i] = i + 100
	}
	if len(inserted) < 900 {
		t.Fatalf("only %d of 1024 slots filled before ErrTableFull", len(inserted))
	}
	if tbl.Stats().Displacements == 0 {
		t.Fatal("filling to ~100%% load never displaced an entry")
	}
	for i, want := range inserted {
		if v, ok := tbl.Lookup(key20(i)); !ok || v != want {
			t.Fatalf("after displacement, Lookup(%d) = (%d,%v), want (%d,true)", i, v, ok, want)
		}
	}
}

func TestLookupManyMatchesLookup(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 8, Entries: 8192, KeyLen: 20})
	const n = 4000
	for i := uint64(0); i < n; i++ {
		if err := tbl.Insert(key20(i), i^0xabcd); err != nil {
			t.Fatal(err)
		}
	}
	b := tbl.NewBatch()
	pr := tbl.NewPinnedReader()
	const batchSize = 93 // deliberately not a power of two
	keys := make([][]byte, batchSize)
	results := make([]Result, batchSize)
	pooled := make([]Result, batchSize)
	pinned := make([]Result, batchSize)
	for lo := uint64(0); lo < n+200; lo += batchSize {
		for j := range keys {
			keys[j] = key20(lo + uint64(j)*2) // half present, half absent beyond n
		}
		hits := b.LookupMany(keys, results)
		poolHits := tbl.LookupMany(keys, pooled)
		pinHits := pr.LookupMany(keys, pinned)
		if pinHits != poolHits {
			t.Fatalf("PinnedReader returned %d hits, Table returned %d", pinHits, poolHits)
		}
		wantHits := 0
		for j := range keys {
			wv, wok := tbl.Lookup(keys[j])
			if results[j].OK != wok || results[j].Value != wv {
				t.Fatalf("LookupMany[%d] = (%d,%v), Lookup says (%d,%v)", j, results[j].Value, results[j].OK, wv, wok)
			}
			if pooled[j] != results[j] {
				t.Fatalf("Table.LookupMany[%d] = %+v, Batch says %+v", j, pooled[j], results[j])
			}
			if pinned[j] != results[j] {
				t.Fatalf("PinnedReader.LookupMany[%d] = %+v, Batch says %+v", j, pinned[j], results[j])
			}
			if wok {
				wantHits++
			}
		}
		if hits != wantHits {
			t.Fatalf("LookupMany returned %d hits, want %d", hits, wantHits)
		}
		if poolHits != hits {
			t.Fatalf("Table.LookupMany returned %d hits, Batch returned %d", poolHits, hits)
		}
	}
}

func TestLookupManyMixedKeyLengths(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 4, Entries: 512, KeyLen: 20})
	if err := tbl.Insert(key20(1), 11); err != nil {
		t.Fatal(err)
	}
	b := tbl.NewBatch()
	keys := [][]byte{key20(1), make([]byte, 3), key20(2), nil}
	results := make([]Result, len(keys))
	if hits := b.LookupMany(keys, results); hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	if !results[0].OK || results[0].Value != 11 {
		t.Fatalf("present key = %+v, want (11,true)", results[0])
	}
	for _, j := range []int{1, 2, 3} {
		if results[j] != (Result{}) {
			t.Fatalf("key %d = %+v, want a miss", j, results[j])
		}
	}
	if s := tbl.Stats(); s.Lookups != 2 || s.BadLenLookups != 2 {
		t.Fatalf("batch accounting = %d lookups + %d badlen, want 2 + 2 (mismatched lengths are table-level)",
			s.Lookups, s.BadLenLookups)
	}
}

func TestLookupManyEmpty(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 2, Entries: 128, KeyLen: 20})
	b := tbl.NewBatch()
	if hits := b.LookupMany(nil, nil); hits != 0 {
		t.Fatalf("empty batch returned %d hits", hits)
	}
	if hits := tbl.LookupMany(nil, nil); hits != 0 {
		t.Fatalf("empty pooled batch returned %d hits", hits)
	}
}

func TestShardSpread(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 8, Entries: 16384, KeyLen: 20})
	const n = 8000
	for i := uint64(0); i < n; i++ {
		if err := tbl.Insert(key20(i), i); err != nil {
			t.Fatal(err)
		}
	}
	for si, sh := range tbl.shards {
		got := sh.size.Load()
		if got < n/8/2 || got > n/8*2 {
			t.Fatalf("shard %d holds %d of %d keys, want ~%d", si, got, n, n/8)
		}
	}
}

func TestCollectInto(t *testing.T) {
	tbl := mustNew(t, Config{Shards: 4, Entries: 1024, KeyLen: 20})
	for i := uint64(0); i < 100; i++ {
		if err := tbl.Insert(key20(i), i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 150; i++ {
		tbl.Lookup(key20(i))
	}
	tbl.Delete(key20(0))
	snap := stats.NewSnapshot()
	tbl.CollectInto(snap)
	checks := map[string]uint64{
		"flowserve.shards":  4,
		"flowserve.size":    99,
		"flowserve.lookups": 150,
		"flowserve.hits":    100,
		"flowserve.misses":  50,
		"flowserve.inserts": 100,
		"flowserve.deletes": 1,
	}
	for name, want := range checks {
		if got := snap.Counter(name); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	// The full counter family is present (stable schema, zeros included).
	for _, name := range []string{
		"flowserve.lookup.retries", "flowserve.lookup.lock_fallbacks",
		"flowserve.lookup.badlen", "flowserve.capacity",
		"flowserve.insert.exists", "flowserve.insert.full",
		"flowserve.updates", "flowserve.displacements",
		"flowserve.batch.calls", "flowserve.batch.keys",
		"flowserve.grows", "flowserve.resize.steps",
		"flowserve.resize.migrated_buckets", "flowserve.resize.migrated_keys",
		"flowserve.resize.stalls", "flowserve.resize.active",
		"flowserve.resize.pause_p50_ns", "flowserve.resize.pause_p99_ns",
		"flowserve.resize.pause_max_ns",
	} {
		if _, present := snap.Counters[name]; !present {
			t.Fatalf("counter %s missing from snapshot", name)
		}
	}
}
