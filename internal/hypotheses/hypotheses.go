// Package hypotheses is the hypothesis-driven experiment harness: each
// registered experiment states an intuitive claim about the serving runtime
// ("shard-grouped batching beats naive per-key lookups"), runs it across
// the standard seed set (42, 123, 456), and classifies the outcome with the
// BLIS effect-size rules — significant, directional, inconclusive,
// equivalent or refuted — instead of leaving the claim as a commit-message
// number.
//
// The harness is deliberately procedural-deterministic: the flow
// populations, key sequences, arm order, warm-up and repeat policy are all
// fixed by (config, seed), so a rerun measures exactly the same work. The
// measured nanoseconds are wall-clock and therefore machine-dependent — the
// *direction* and effect tier are what a rerun is expected to reproduce,
// which is why every verdict requires directional consistency across all
// seeds (one contradicting seed refutes the claim, per the BLIS standard).
//
// Results land in a `hypotheses/<name>/FINDINGS.md` narrative (template in
// hypotheses/README.md) and regenerate via `go run ./cmd/hypotheses`.
package hypotheses

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"halo/internal/benchjson"
	"halo/internal/flowserve"
	"halo/internal/packet"
	"halo/internal/stats"
	"halo/internal/trafficgen"
)

// DefaultSeeds is the BLIS seed policy: minimum three seeds, fixed values,
// so every statistical experiment in the repository draws the same
// populations.
var DefaultSeeds = []uint64{42, 123, 456}

// Config parametrises a harness run. Everything here is stamped into the
// emitted halo-bench/v1 document's Config map, so benchdiff refuses to
// compare runs with different shapes.
type Config struct {
	Seeds   []uint64
	Flows   int   // flow population per seed
	Ops     int64 // lookups per arm per repeat
	Batch   int   // keys per LookupMany call
	Shards  int   // table shard count
	Repeats int   // timed repeats per arm; the fastest is kept
}

// DefaultConfig is the full-scale run behind the checked-in FINDINGS.md.
func DefaultConfig() Config {
	return Config{Seeds: DefaultSeeds, Flows: 100_000, Ops: 1_000_000, Batch: 16, Shards: 8, Repeats: 5}
}

// SmokeConfig shrinks the run for CI: same seeds, same procedure, smaller
// population and fewer lookups.
func SmokeConfig() Config {
	return Config{Seeds: DefaultSeeds, Flows: 20_000, Ops: 150_000, Batch: 16, Shards: 8, Repeats: 2}
}

// Kind is the BLIS experiment classification.
type Kind string

const (
	// KindDominance predicts arm A strictly beats arm B on the metric.
	KindDominance Kind = "statistical/dominance"
	// KindEquivalence predicts arm A is within the equivalence band of B.
	KindEquivalence Kind = "statistical/equivalence"
	// KindBound predicts arm A's cost never exceeds Bound × arm B's — a
	// ceiling claim (A may be slower, but only so much), judged per seed.
	KindBound Kind = "statistical/bound"
)

// Experiment is one registered hypothesis.
type Experiment struct {
	Name       string // directory name under hypotheses/
	Title      string // the hypothesis statement
	Kind       Kind
	ArmA, ArmB string // display names; A is the predicted winner (dominance) or candidate (equivalence/bound)
	// Bound is the max allowed A/B cost ratio for KindBound experiments.
	Bound float64
	// Run measures both arms for one seed and returns the per-arm cost.
	Run func(cfg Config, seed uint64) (SeedResult, error)
}

// SeedResult is one seed's measurement: ns per lookup for each arm, plus
// the improvement of A over B oriented positive-is-better (the Improvement
// convention of internal/benchjson).
type SeedResult struct {
	Seed        uint64
	ANsPerOp    float64
	BNsPerOp    float64
	Improvement float64
}

// Result is one experiment's full outcome.
type Result struct {
	Experiment Experiment
	Seeds      []SeedResult
	Verdict    Verdict
}

// Registry returns every experiment, in report order.
func Registry() []Experiment {
	return []Experiment{
		shardBatchExperiment(),
		pinnedReaderExperiment(),
		shmVsUnixExperiment(),
		resizePauseBoundExperiment(),
	}
}

// Find returns the named experiment.
func Find(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunExperiment measures every seed and classifies the outcome.
func RunExperiment(e Experiment, cfg Config) (Result, error) {
	res := Result{Experiment: e}
	for _, seed := range cfg.Seeds {
		sr, err := e.Run(cfg, seed)
		if err != nil {
			return res, fmt.Errorf("hypotheses: %s seed %d: %w", e.Name, seed, err)
		}
		sr.Seed = seed
		imp, ok := benchjson.Improvement("ns/op", sr.BNsPerOp, sr.ANsPerOp)
		if !ok {
			return res, fmt.Errorf("hypotheses: %s seed %d: degenerate measurement (A %v ns, B %v ns)",
				e.Name, seed, sr.ANsPerOp, sr.BNsPerOp)
		}
		sr.Improvement = imp
		res.Seeds = append(res.Seeds, sr)
	}
	imps := make([]float64, len(res.Seeds))
	for i, sr := range res.Seeds {
		imps[i] = sr.Improvement
	}
	th := benchjson.DefaultThresholds()
	switch e.Kind {
	case KindEquivalence:
		res.Verdict = ClassifyEquivalence(imps, th)
	case KindBound:
		res.Verdict = ClassifyBound(imps, e.Bound)
	default:
		res.Verdict = ClassifyDominance(imps, th)
	}
	return res, nil
}

// Render writes one experiment's FINDINGS-ready results block: the per-seed
// table (BLIS: per-seed values for transparency), the mean/min/max summary
// and the verdict line.
func (r Result) Render(w io.Writer) {
	e := r.Experiment
	fmt.Fprintf(w, "### %s — %s\n\n", e.Name, e.Title)
	fmt.Fprintf(w, "Type: %s · A = %s · B = %s", e.Kind, e.ArmA, e.ArmB)
	if e.Kind == KindBound {
		fmt.Fprintf(w, " · bound = %.2fx", e.Bound)
	}
	fmt.Fprintf(w, "\n\n")
	fmt.Fprintf(w, "| seed | A ns/lookup | B ns/lookup | A vs B |\n")
	fmt.Fprintf(w, "|---|---|---|---|\n")
	for _, sr := range r.Seeds {
		fmt.Fprintf(w, "| %d | %.1f | %.1f | %+.1f%% |\n",
			sr.Seed, sr.ANsPerOp, sr.BNsPerOp, sr.Improvement*100)
	}
	v := r.Verdict
	fmt.Fprintf(w, "\nImprovement across seeds: mean %+.1f%%, min %+.1f%%, max %+.1f%%\n",
		v.Mean*100, v.Min*100, v.Max*100)
	fmt.Fprintf(w, "**Verdict: %s** — %s\n\n", v.Class, v.Detail)
}

// Document emits the machine-readable artifact for a set of results: a
// halo-bench/v1 document with one benchmark per (experiment, seed, arm), so
// cmd/benchdiff can compare harness runs across commits like any other
// perf artifact.
func Document(cfg Config, results []Result) *benchjson.Document {
	doc := &benchjson.Document{
		Schema:    benchjson.SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Seeds:     append([]uint64(nil), cfg.Seeds...),
		Config: map[string]string{
			"tool":    "hypotheses",
			"flows":   fmt.Sprint(cfg.Flows),
			"ops":     fmt.Sprint(cfg.Ops),
			"batch":   fmt.Sprint(cfg.Batch),
			"shards":  fmt.Sprint(cfg.Shards),
			"repeats": fmt.Sprint(cfg.Repeats),
		},
		Benchmarks: []benchjson.Benchmark{},
	}
	for _, r := range results {
		for _, sr := range r.Seeds {
			for _, arm := range []struct {
				name string
				ns   float64
			}{
				{"A=" + r.Experiment.ArmA, sr.ANsPerOp},
				{"B=" + r.Experiment.ArmB, sr.BNsPerOp},
			} {
				doc.Benchmarks = append(doc.Benchmarks, benchjson.Benchmark{
					Name:       fmt.Sprintf("Hypothesis/%s/%s/seed=%d", r.Experiment.Name, arm.name, sr.Seed),
					Procs:      1, // arms are measured single-goroutine
					Iterations: cfg.Ops,
					Metrics: map[string]float64{
						"ns/op":       arm.ns,
						"lookups/sec": 1e9 / arm.ns,
					},
				})
			}
		}
	}
	return doc
}

// --- measurement machinery -------------------------------------------------

// arm serves one batch of keys, writing results[i] for each key.
type arm func(keys [][]byte, results []flowserve.Result)

// buildPopulation generates a uniform flow population for a seed and packs
// the header keys into one arena, exactly as cmd/flowload does.
func buildPopulation(flows int, seed uint64) (*trafficgen.Workload, [][]byte) {
	scn := trafficgen.Scenario{Name: "hypothesis", Flows: flows, Rules: 1, Popularity: trafficgen.Uniform}
	w := trafficgen.Generate(scn, seed)
	arena := make([]byte, len(w.Flows)*packet.HeaderKeyLen)
	keys := make([][]byte, len(w.Flows))
	for i, f := range w.Flows {
		k := arena[i*packet.HeaderKeyLen : (i+1)*packet.HeaderKeyLen]
		f.PutHeaderKey(k)
		keys[i] = k
	}
	return w, keys
}

// newServingTable builds and fills a table for the population.
func newServingTable(cfg Config, keys [][]byte) (*flowserve.Table, error) {
	entries := uint64(len(keys)) + uint64(len(keys))/8 + 1024
	tbl, err := flowserve.New(flowserve.Config{Shards: cfg.Shards, Entries: entries, KeyLen: packet.HeaderKeyLen})
	if err != nil {
		return nil, err
	}
	for i, k := range keys {
		if err := tbl.Insert(k, uint64(i)+1); err != nil {
			return nil, fmt.Errorf("install flow %d: %w", i, err)
		}
	}
	return tbl, nil
}

// timeArms measures both arms of an experiment over the identical key
// sequence (the stream resets to the same seed every pass). Each arm gets a
// warm-up pass, then the timed passes run INTERLEAVED in ABBA order —
// A,B then B,A, alternating — so a background-noise episode (GC, cron, a
// co-tenant burst) lands on both arms instead of biasing whichever ran
// second, and neither arm systematically enjoys the first slot after
// warm-up; the fastest pass per arm is kept, the standard way to cut
// scheduler noise out of a single-goroutine measurement. Every hit is
// verified against the installed value; a miss or wrong value is a hard
// error, so a broken arm can never "win" by skipping work. Latencies also
// land in hist (batch granularity) when non-nil.
func timeArms(w *trafficgen.Workload, keys [][]byte, cfg Config, seed uint64, armA, armB arm, hist *stats.Histogram) (aNsPerOp, bNsPerOp float64, err error) {
	bkeys := make([][]byte, cfg.Batch)
	bidx := make([]int, cfg.Batch)
	results := make([]flowserve.Result, cfg.Batch)

	pass := func(serve arm, ops int64, timed bool) (time.Duration, error) {
		stream := w.NewStream(seed ^ 0x48595054) // "HYPT"; same sequence every pass
		var elapsed time.Duration
		for done := int64(0); done < ops; done += int64(cfg.Batch) {
			for j := 0; j < cfg.Batch; j++ {
				fi := stream.NextFlow()
				bidx[j] = fi
				bkeys[j] = keys[fi]
			}
			t0 := time.Now()
			serve(bkeys, results)
			d := time.Since(t0)
			elapsed += d
			if timed && hist != nil {
				hist.Observe(uint64(d.Nanoseconds()))
			}
			for j := 0; j < cfg.Batch; j++ {
				if !results[j].OK {
					return 0, fmt.Errorf("flow %d missed (population is read-only)", bidx[j])
				}
				if results[j].Value != uint64(bidx[j])+1 {
					return 0, fmt.Errorf("flow %d returned value %d, want %d", bidx[j], results[j].Value, bidx[j]+1)
				}
			}
		}
		return elapsed, nil
	}

	warm := cfg.Ops / 10
	if warm < int64(cfg.Batch) {
		warm = int64(cfg.Batch)
	}
	if _, err := pass(armA, warm, false); err != nil {
		return 0, 0, err
	}
	if _, err := pass(armB, warm, false); err != nil {
		return 0, 0, err
	}
	var bestA, bestB time.Duration
	for r := 0; r < cfg.Repeats; r++ {
		first, second := armA, armB
		if r%2 == 1 {
			first, second = armB, armA
		}
		d1, err := pass(first, cfg.Ops, true)
		if err != nil {
			return 0, 0, err
		}
		d2, err := pass(second, cfg.Ops, true)
		if err != nil {
			return 0, 0, err
		}
		dA, dB := d1, d2
		if r%2 == 1 {
			dA, dB = d2, d1
		}
		if bestA == 0 || dA < bestA {
			bestA = dA
		}
		if bestB == 0 || dB < bestB {
			bestB = dB
		}
	}
	ops := float64(cfg.Ops)
	return float64(bestA.Nanoseconds()) / ops, float64(bestB.Nanoseconds()) / ops, nil
}
