#!/bin/sh
# bench_serve_cluster.sh [out.json] — bring up a 3-node flowserved cluster on
# loopback TCP, drive it through the flowcluster router with the flowload
# cluster smoke, live-migrate hash ranges under load, and archive the
# halo-bench/v1 document. -check gates the cluster-wide zero-loss ledger:
# the flowserve.lookups counters summed across every node must balance every
# key the workers issued, across at least one epoch-bumped cutover per sweep
# point, with zero router errors — a lookup lost (or double-served) anywhere
# in a migration breaks the equality. Each node's SIGTERM drain must also be
# clean (exit 0 only when every accepted frame was answered).
#
#   scripts/bench_serve_cluster.sh BENCH_serve_cluster.json
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_serve_cluster.json}"

eps="tcp://127.0.0.1:7461,tcp://127.0.0.1:7462,tcp://127.0.0.1:7463"

go build -o flowserved.bench ./cmd/flowserved
pids=""
for port in 7461 7462 7463; do
	./flowserved.bench -endpoint "tcp://127.0.0.1:$port" -cluster "$eps" \
		-shards 4 -entries 65536 &
	pids="$pids $!"
done
status=0
go run ./cmd/flowload -cluster "$eps" -smoke -check \
	-conns 2 -migrations 2 -json "$out" || status=$?
# SIGTERM → graceful drain on every node; each exits 0 only if its drain
# ledger closed (every accepted frame answered).
for pid in $pids; do
	kill -TERM "$pid" 2>/dev/null || status=$?
done
for pid in $pids; do
	wait "$pid" || status=$?
done
rm -f flowserved.bench
exit "$status"
