// Package metrics provides the result-table plumbing shared by the
// benchmark harness: typed result rows, ASCII rendering, and ratio helpers,
// so every experiment prints its figure or table in a uniform format.
package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned result table.
type Table struct {
	Title   string
	Caption string
	header  []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// SetCaption attaches an explanatory line printed under the title.
func (t *Table) SetCaption(format string, args ...any) {
	t.Caption = fmt.Sprintf(format, args...)
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns a formatted cell for assertions in tests.
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// FormatFloat renders floats compactly: integers without decimals, small
// values with enough precision to be meaningful.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Caption != "" {
		fmt.Fprintf(w, "%s\n", t.Caption)
	}
	fmt.Fprintln(w, line(t.header))
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.rows {
		fmt.Fprintln(w, line(row))
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Speedup formats a ratio as "N.NNx".
func Speedup(baseline, improved float64) string {
	if improved == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", baseline/improved)
}

// Percent formats a fraction as a percentage.
func Percent(f float64) string {
	return fmt.Sprintf("%.1f%%", 100*f)
}

// Quantiles formats p50/p95/p99 from a quantile function (such as
// (*stats.Histogram).Quantile) as cycle counts.
func Quantiles(q func(float64) uint64) string {
	return fmt.Sprintf("p50=%d p95=%d p99=%d cyc", q(0.50), q(0.95), q(0.99))
}

// Mpps converts cycles-per-packet at a clock frequency to millions of
// packets per second.
func Mpps(cyclesPerPacket float64, ghz float64) float64 {
	if cyclesPerPacket == 0 {
		return 0
	}
	return ghz * 1e3 / cyclesPerPacket
}
