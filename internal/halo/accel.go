package halo

import (
	"sort"

	"halo/internal/cache"
	"halo/internal/cuckoo"
	"halo/internal/hashfn"
	"halo/internal/mem"
	"halo/internal/sim"
	"halo/internal/stats"
)

// AccelConfig parametrises one per-slice accelerator (paper §4.7).
type AccelConfig struct {
	// ScoreboardDepth bounds on-the-fly queries (paper: 10).
	ScoreboardDepth int
	// MetaCacheTables is the metadata-cache capacity (paper: 10 tables).
	MetaCacheTables int
	// HashLatency is the fully pipelined hash unit's depth.
	HashLatency sim.Cycle
	// CompareLatency covers the parallel signature comparators per bucket
	// and the key comparator per candidate.
	CompareLatency sim.Cycle
	// LockEnabled engages the hardware lock bit around bucket walks.
	LockEnabled bool
	// MetaCacheOff disables the metadata cache entirely (ablation): every
	// query re-fetches the metadata line through the LLC.
	MetaCacheOff bool
}

// DefaultAccelConfig matches the paper's configuration.
func DefaultAccelConfig() AccelConfig {
	return AccelConfig{
		ScoreboardDepth: 10,
		MetaCacheTables: 10,
		HashLatency:     3,
		CompareLatency:  1,
		LockEnabled:     true,
	}
}

// AccelStats counts one accelerator's activity.
type AccelStats struct {
	Queries     uint64
	Hits        uint64
	Misses      uint64
	Faults      uint64 // queries against invalid table metadata
	MetaHits    uint64
	MetaMisses  uint64
	DataAccess  uint64 // LLC/DRAM line accesses issued
	BusyCycles  uint64 // cycles of scoreboard-full admission delay imposed
	QueueCycles uint64 // total cycles queries waited for admission
}

// CollectInto adds the accelerator counters to a snapshot under the
// accel.* names; calling it for several accelerators accumulates them.
func (s AccelStats) CollectInto(snap *stats.Snapshot) {
	snap.Add("accel.queries", s.Queries)
	snap.Add("accel.hits", s.Hits)
	snap.Add("accel.misses", s.Misses)
	snap.Add("accel.faults", s.Faults)
	snap.Add("accel.meta.hits", s.MetaHits)
	snap.Add("accel.meta.misses", s.MetaMisses)
	snap.Add("accel.data.accesses", s.DataAccess)
	snap.Add("accel.busy_cycles", s.BusyCycles)
	snap.Add("accel.queue_cycles", s.QueueCycles)
}

// Query is one lookup handed to an accelerator by the distributor.
type Query struct {
	Core        int
	TableAddr   mem.Addr
	KeyAddr     mem.Addr
	ResultAddr  mem.Addr // non-blocking only
	NonBlocking bool
}

// QueryResult reports a completed lookup.
type QueryResult struct {
	Value  uint64
	Found  bool
	Fault  bool // table metadata invalid
	Issued sim.Cycle
	Done   sim.Cycle
	Slice  int
}

// Accelerator is the HALO engine attached to one CHA (paper Fig. 6): a
// scoreboard of on-the-fly queries, a pipelined hash unit, signature/key
// comparators and a metadata cache, issuing data accesses directly into the
// LLC slice network.
type Accelerator struct {
	slice    int
	cfg      AccelConfig
	hier     *cache.Hierarchy
	space    mem.Space
	meta     *MetadataCache
	hashUnit *sim.CalendarResource
	flowReg  *FlowRegister

	// outstanding holds completion cycles of admitted queries, ascending.
	outstanding []sim.Cycle

	// txnFree recycles query transactions (see queryTxn).
	txnFree *queryTxn

	stats AccelStats
}

// maxScratchKeyLen is the largest key the recycled transaction scratch
// covers — the cuckoo package's key-length ceiling. Larger lengths can only
// come from corrupt metadata or oversized walk queries and fall back to a
// fresh allocation.
const maxScratchKeyLen = 64

// queryTxn carries one query's mutable state through the walk's stages: the
// fetched key bytes, the key-comparison buffer, and the set of lines the
// hardware lock covers. Transactions are recycled through a per-accelerator
// free list so the steady-state lookup path allocates nothing; the list (not
// a single slot) matters because tree walks can re-enter the accelerator
// through LockLine-triggered accesses.
type queryTxn struct {
	key    [maxScratchKeyLen]byte
	cmp    [maxScratchKeyLen]byte
	locked [2 + 2*cuckoo.EntriesPerBucket]mem.Addr // ≤2 buckets + ≤8 candidates each
	nLock  int
	next   *queryTxn
}

// acquireTxn pops a recycled transaction or allocates the pool's next one.
func (a *Accelerator) acquireTxn() *queryTxn {
	tx := a.txnFree
	if tx == nil {
		return &queryTxn{}
	}
	a.txnFree = tx.next
	tx.next = nil
	tx.nLock = 0
	return tx
}

// releaseTxn returns a completed transaction to the free list.
func (a *Accelerator) releaseTxn(tx *queryTxn) {
	tx.next = a.txnFree
	a.txnFree = tx
}

// NewAccelerator builds the accelerator for a slice.
func NewAccelerator(slice int, cfg AccelConfig, hier *cache.Hierarchy, space mem.Space, flowRegBits uint) *Accelerator {
	return &Accelerator{
		slice:    slice,
		cfg:      cfg,
		hier:     hier,
		space:    space,
		meta:     NewMetadataCache(cfg.MetaCacheTables),
		hashUnit: sim.NewCalendarResource(0),
		flowReg:  NewFlowRegister(flowRegBits),
	}
}

// Slice returns the accelerator's LLC slice number.
func (a *Accelerator) Slice() int { return a.slice }

// Stats returns a copy of the counters.
func (a *Accelerator) Stats() AccelStats { return a.stats }

// FlowRegister exposes the per-accelerator register for the hybrid
// controller's periodic scan.
func (a *Accelerator) FlowRegister() *FlowRegister { return a.flowReg }

// MetadataCache exposes the metadata cache (for coherence invalidations and
// tests).
func (a *Accelerator) MetadataCache() *MetadataCache { return a.meta }

// OutstandingAt reports how many admitted queries are still in flight at
// cycle `at` — the scoreboard occupancy the distributor's busy bit reflects.
func (a *Accelerator) OutstandingAt(at sim.Cycle) int {
	n := 0
	for _, c := range a.outstanding {
		if c > at {
			n++
		}
	}
	return n
}

// admit applies scoreboard backpressure: a query arriving while
// ScoreboardDepth queries are in flight waits for the oldest to retire.
// Retired entries are dropped by shifting in place so the slice keeps its
// capacity (a resliced head would force recordCompletion to regrow forever).
func (a *Accelerator) admit(at sim.Cycle) sim.Cycle {
	i := 0
	for i < len(a.outstanding) && a.outstanding[i] <= at {
		i++
	}
	start := at
	for len(a.outstanding)-i >= a.cfg.ScoreboardDepth {
		if a.outstanding[i] > start {
			a.stats.QueueCycles += uint64(a.outstanding[i] - start)
			start = a.outstanding[i]
		}
		i++
	}
	if i > 0 {
		a.outstanding = a.outstanding[:copy(a.outstanding, a.outstanding[i:])]
	}
	return start
}

func (a *Accelerator) recordCompletion(done sim.Cycle) {
	i := sort.Search(len(a.outstanding), func(i int) bool { return a.outstanding[i] > done })
	a.outstanding = append(a.outstanding, 0)
	copy(a.outstanding[i+1:], a.outstanding[i:])
	a.outstanding[i] = done
}

func (a *Accelerator) access(at sim.Cycle, addr mem.Addr, write bool) cache.AccessResult {
	a.stats.DataAccess++
	return a.hier.AccelAccess(at, a.slice, addr, write)
}

// Process executes one query arriving at cycle `at` and returns its result.
// The walk follows paper §4.3's five-step procedure: fetch metadata, fetch
// the key, hash, probe bucket(s) with signature comparison, fetch and verify
// the key-value pair.
func (a *Accelerator) Process(at sim.Cycle, q Query) QueryResult {
	a.stats.Queries++
	tx := a.acquireTxn()
	t := a.admit(at)
	issued := t

	// Step 0: table metadata, ideally from the metadata cache.
	var meta TableMeta
	ok := false
	if !a.cfg.MetaCacheOff {
		meta, ok = a.meta.Get(q.TableAddr)
	}
	if ok {
		a.stats.MetaHits++
		t++ // one-cycle SRAM read
	} else {
		a.stats.MetaMisses++
		res := a.access(t, q.TableAddr, false)
		t = res.Done
		meta, ok = parseMeta(a.space, q.TableAddr)
		if !ok {
			a.stats.Faults++
			r := QueryResult{Fault: true, Issued: issued, Done: t, Slice: a.slice}
			a.finish(q, r)
			a.releaseTxn(tx)
			return r
		}
		if !a.cfg.MetaCacheOff {
			a.meta.Put(meta)
			a.hier.MarkAccelValid(q.TableAddr)
		}
	}

	// Step 1: fetch the key (a second access if it straddles a line).
	res := a.access(t, q.KeyAddr, false)
	t = res.Done
	if mem.LineAddr(q.KeyAddr) != mem.LineAddr(q.KeyAddr+mem.Addr(meta.KeyLen)-1) {
		res = a.access(t, q.KeyAddr+mem.Addr(meta.KeyLen)-1, false)
		t = res.Done
	}
	key := tx.keyBuf(meta.KeyLen)
	a.space.ReadAt(q.KeyAddr, key)

	// Step 2: hash (pipelined unit: occupied 1 cycle, latency HashLatency).
	hs := a.hashUnit.Claim(t, 1)
	t = hs + a.cfg.HashLatency
	h := hashfn.Hash(hashfn.SeedPrimary, key)
	sig := hashfn.Signature(h)
	b1 := h & (meta.BucketCount - 1)
	b2 := hashfn.AltBucket(b1, sig, meta.BucketCount)
	if meta.SFH {
		b2 = b1
	}
	a.flowReg.Observe(h)

	// Steps 3-4: probe buckets; locked for the remainder of the query.
	lockFrom := t
	value, found := uint64(0), false
	buckets := [2]uint64{b1, b2}
	n := 2
	if meta.SFH {
		n = 1
	}
	for bi := 0; bi < n && !found; bi++ {
		bAddr := meta.BucketBase + mem.Addr(buckets[bi]*mem.LineSize)
		if a.cfg.LockEnabled {
			tx.lock(bAddr)
		}
		res = a.access(t, bAddr, false)
		t = res.Done + a.cfg.CompareLatency // all 8 signatures compared in parallel

		for e := 0; e < cuckoo.EntriesPerBucket; e++ {
			ea := bAddr + mem.Addr(e*8)
			s := mem.Read16(a.space, ea)
			if s != sig {
				continue
			}
			idx := mem.Read32(a.space, ea+4)
			kvAddr := meta.KVBase + mem.Addr(uint64(idx)*meta.KVSlotSize)
			if a.cfg.LockEnabled {
				tx.lock(kvAddr)
			}
			res = a.access(t, kvAddr, false)
			t = res.Done + a.cfg.CompareLatency
			if a.keyEqual(tx, meta, idx, key) {
				keyAligned := (mem.Addr(meta.KeyLen) + 7) &^ 7
				value = mem.Read64(a.space, kvAddr+keyAligned)
				found = true
				break
			}
		}
	}

	// Step 5: deliver the result.
	if q.NonBlocking {
		res = a.access(t, q.ResultAddr, true)
		t = res.Done
		mem.Write64(a.space, q.ResultAddr, EncodeResult(value, found))
	}

	// Engage the hardware locks for the window the walk occupied. With the
	// explicit-time model the release is known at lock time, so the lock
	// bit carries its free-at cycle directly (writers arriving earlier
	// observe a snoop miss and retry until then, paper §4.4).
	for _, la := range tx.locked[:tx.nLock] {
		a.hier.LockLine(lockFrom, a.slice, la, t)
	}

	if found {
		a.stats.Hits++
	} else {
		a.stats.Misses++
	}
	r := QueryResult{Value: value, Found: found, Issued: issued, Done: t, Slice: a.slice}
	a.finish(q, r)
	a.releaseTxn(tx)
	return r
}

func (a *Accelerator) finish(q Query, r QueryResult) {
	a.recordCompletion(r.Done)
}

// keyBuf returns the transaction's key scratch sized for n bytes, falling
// back to a fresh slice for lengths beyond the scratch (possible only with
// corrupt metadata or oversized walk keys).
func (tx *queryTxn) keyBuf(n int) []byte {
	if n >= 0 && n <= maxScratchKeyLen {
		return tx.key[:n]
	}
	return make([]byte, n)
}

// lock records a line address in the transaction's locked set. The set is
// bounded by construction (two buckets plus their candidate key-value lines).
func (tx *queryTxn) lock(addr mem.Addr) {
	tx.locked[tx.nLock] = addr
	tx.nLock++
}

func (a *Accelerator) keyEqual(tx *queryTxn, meta TableMeta, idx uint32, key []byte) bool {
	kvAddr := meta.KVBase + mem.Addr(uint64(idx)*meta.KVSlotSize)
	buf := tx.cmp[:len(key)]
	if len(key) > maxScratchKeyLen {
		buf = make([]byte, len(key))
	}
	a.space.ReadAt(kvAddr, buf)
	for i := range buf {
		if buf[i] != key[i] {
			return false
		}
	}
	return true
}
