package sim

import (
	"sort"
	"testing"

	"halo/internal/stats"
)

// refQueue is the reference model for the event queue: a plain slice kept in
// (at, seq) order by stable sort. Everything the ladder/heap queue does must
// match this model exactly.
type refQueue struct {
	events []scheduledEvent
	seq    uint64
}

func (r *refQueue) push(at Cycle, id uint64) {
	r.seq++
	r.events = append(r.events, scheduledEvent{at: at, seq: id})
	sort.SliceStable(r.events, func(i, j int) bool {
		return eventLess(&r.events[i], &r.events[j])
	})
}

func (r *refQueue) pop() (scheduledEvent, bool) {
	if len(r.events) == 0 {
		return scheduledEvent{}, false
	}
	ev := r.events[0]
	r.events = r.events[1:]
	return ev, true
}

// TestEngineMatchesReferenceModel drives the engine and the reference model
// through randomized schedule/pop interleavings — short delays that stay in
// the ladder, long delays that overflow to the heap, same-cycle bursts that
// exercise FIFO ties — and requires identical pop order throughout.
func TestEngineMatchesReferenceModel(t *testing.T) {
	rng := NewRand(0xE4E27)
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		ref := refQueue{}
		var fired []uint64
		nextID := uint64(0)

		schedule := func() {
			var d Cycle
			switch rng.Intn(4) {
			case 0:
				d = 0 // same-cycle burst
			case 1:
				d = Cycle(rng.Intn(16)) // ladder, short
			case 2:
				d = Cycle(rng.Intn(ladderSpan)) // ladder, anywhere in span
			default:
				d = Cycle(ladderSpan + rng.Intn(8*ladderSpan)) // heap
			}
			id := nextID
			nextID++
			e.Schedule(d, func(now Cycle) {
				fired = append(fired, id)
				// Nested scheduling from inside an event, like components do.
				if rng.Intn(3) == 0 {
					nid := nextID
					nextID++
					nd := Cycle(rng.Intn(2 * ladderSpan))
					e.Schedule(nd, func(Cycle) { fired = append(fired, nid) })
					ref.push(now+nd, nid)
				}
			})
			ref.push(e.Now()+d, id)
		}

		for op := 0; op < 400; op++ {
			if rng.Intn(3) != 0 || e.Pending() == 0 {
				schedule()
				continue
			}
			want, _ := ref.pop()
			if !e.Step() {
				t.Fatalf("trial %d: engine empty, reference has %d events", trial, len(ref.events)+1)
			}
			if e.Now() != want.at {
				t.Fatalf("trial %d: popped cycle %d, reference says %d", trial, e.Now(), want.at)
			}
			if got := fired[len(fired)-1]; got != want.seq {
				t.Fatalf("trial %d: popped event %d, reference says %d", trial, got, want.seq)
			}
		}
		// Drain both and compare the tail.
		for {
			want, ok := ref.pop()
			if !ok {
				break
			}
			n := len(fired)
			if !e.Step() {
				t.Fatalf("trial %d: engine drained before reference", trial)
			}
			if e.Now() != want.at || fired[n] != want.seq {
				t.Fatalf("trial %d: drain popped (%d, %d), reference says (%d, %d)",
					trial, e.Now(), fired[n], want.at, want.seq)
			}
		}
		if e.Step() {
			t.Fatalf("trial %d: engine still has events after reference drained", trial)
		}
	}
}

// TestEngineRunUntilBoundaries covers RunUntil deadlines that fall exactly
// on, just before and just after event timestamps, including events exactly
// one ladder span away and heap events that migrate into range as the clock
// advances.
func TestEngineRunUntilBoundaries(t *testing.T) {
	e := NewEngine()
	var fired []Cycle
	record := func(now Cycle) { fired = append(fired, now) }
	for _, at := range []Cycle{5, 10, 10, ladderSpan, ladderSpan + 1, 3 * ladderSpan} {
		e.At(at, record)
	}

	if now := e.RunUntil(4); now != 4 || len(fired) != 0 {
		t.Fatalf("RunUntil(4) = %d with %d fired, want 4 with 0", now, len(fired))
	}
	if now := e.RunUntil(10); now != 10 || len(fired) != 3 {
		t.Fatalf("RunUntil(10) = %d with %d fired, want 10 with 3 (deadline on the timestamp)", now, len(fired))
	}
	if now := e.RunUntil(ladderSpan - 1); now != ladderSpan-1 || len(fired) != 3 {
		t.Fatalf("RunUntil(span-1) fired %d, want 3", len(fired))
	}
	if now := e.RunUntil(ladderSpan + 1); now != ladderSpan+1 || len(fired) != 5 {
		t.Fatalf("RunUntil(span+1) = %d with %d fired, want span+1 with 5", now, len(fired))
	}
	// Queue holds one far event; deadline beyond it drains and pins the clock.
	if now := e.RunUntil(4 * ladderSpan); now != 4*ladderSpan || len(fired) != 6 {
		t.Fatalf("RunUntil(4*span) = %d with %d fired, want 4*span with 6", now, len(fired))
	}
	want := []Cycle{5, 10, 10, ladderSpan, ladderSpan + 1, 3 * ladderSpan}
	for i, c := range want {
		if fired[i] != c {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

// TestEngineHeapLadderTieFIFO pins the subtle tie case: an event scheduled
// far ahead (heap) and an event scheduled later for the same cycle once it
// is near (ladder) must fire in scheduling order.
func TestEngineHeapLadderTieFIFO(t *testing.T) {
	e := NewEngine()
	target := Cycle(2 * ladderSpan)
	var order []int
	e.At(target, func(Cycle) { order = append(order, 1) }) // goes to the heap
	e.At(target-ladderSpan+1, func(Cycle) {
		// Now `target` is inside the ladder span: this push takes the
		// ladder path but was scheduled after the heap event.
		e.At(target, func(Cycle) { order = append(order, 2) })
	})
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("same-cycle heap/ladder events fired as %v, want [1 2]", order)
	}
}

// TestEngineScheduleSteadyStateAllocs proves the schedule/pop cycle is
// allocation-free once bucket and heap capacities have warmed up.
func TestEngineScheduleSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	fn := func(Cycle) {}
	// Warm bucket and heap capacities.
	for i := 0; i < 64; i++ {
		e.Schedule(Cycle(i%7), fn)
		e.Schedule(Cycle(ladderSpan+i), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(3, fn)
		e.Schedule(ladderSpan+5, fn)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/run allocates %.1f objects per op, want 0", allocs)
	}
}

// TestEngineCollectInto checks the observability counters.
func TestEngineCollectInto(t *testing.T) {
	e := NewEngine()
	fn := func(Cycle) {}
	e.Schedule(1, fn)
	e.Schedule(2, fn)
	e.Schedule(ladderSpan+99, fn)
	e.Run()
	snap := stats.NewSnapshot()
	e.CollectInto(snap)
	if got := snap.Counter("sim.events.fired"); got != 3 {
		t.Fatalf("sim.events.fired = %d, want 3", got)
	}
	if got := snap.Counter("sim.queue.max_depth"); got != 3 {
		t.Fatalf("sim.queue.max_depth = %d, want 3", got)
	}
	if got := snap.Counter("sim.queue.ladder_pushes"); got != 2 {
		t.Fatalf("sim.queue.ladder_pushes = %d, want 2", got)
	}
	if got := snap.Counter("sim.queue.heap_pushes"); got != 1 {
		t.Fatalf("sim.queue.heap_pushes = %d, want 1", got)
	}
}

// BenchmarkEngineSchedule measures the steady-state schedule/fire cycle: a
// self-rescheduling event population with the delay mix of a cache access
// chain. The headline number is allocs/op, which must be 0.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func(Cycle) {}
	// Warm: populate and drain once so every bucket/heap slice has capacity.
	for i := 0; i < 256; i++ {
		e.Schedule(Cycle(i%61), fn)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Cycle(i%61), fn)
		e.Step()
	}
}

// BenchmarkEngineScheduleFar measures the heap path (delays beyond the
// ladder span).
func BenchmarkEngineScheduleFar(b *testing.B) {
	e := NewEngine()
	fn := func(Cycle) {}
	for i := 0; i < 256; i++ {
		e.Schedule(Cycle(ladderSpan+i), fn)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(ladderSpan+Cycle(i%1021), fn)
		e.Step()
	}
}
