package halo

import (
	"encoding/binary"
	"testing"

	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/mem"
)

func key16(i uint64) []byte {
	k := make([]byte, 16)
	binary.LittleEndian.PutUint64(k, i)
	binary.LittleEndian.PutUint64(k[8:], i^0xabcdef)
	return k
}

func testPlatform(t testing.TB) *Platform {
	t.Helper()
	return NewPlatform(DefaultPlatformConfig())
}

func populatedTable(t testing.TB, p *Platform, entries uint64, fill uint64) *cuckoo.Table {
	t.Helper()
	tbl, err := p.NewTable(cuckoo.Config{Entries: entries, KeyLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < fill; i++ {
		if err := tbl.Insert(key16(i), i*2+1); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return tbl
}

func TestEncodeDecodeResult(t *testing.T) {
	v, found, done := DecodeResult(EncodeResult(12345, true))
	if v != 12345 || !found || !done {
		t.Fatalf("round trip = (%d,%v,%v)", v, found, done)
	}
	v, found, done = DecodeResult(EncodeResult(0, false))
	if v != 0 || found || !done {
		t.Fatalf("miss round trip = (%d,%v,%v)", v, found, done)
	}
	if _, _, done := DecodeResult(0); done {
		t.Fatal("zero word decodes as done")
	}
}

func TestLookupBCorrectness(t *testing.T) {
	p := testPlatform(t)
	tbl := populatedTable(t, p, 2048, 1500)
	th := cpu.NewThread(p.Hier, 0)
	for i := uint64(0); i < 1500; i++ {
		v, ok := p.Unit.LookupB(th, tbl.Base(), key16(i))
		if !ok || v != i*2+1 {
			t.Fatalf("LookupB(%d) = (%d,%v), want (%d,true)", i, v, ok, i*2+1)
		}
	}
	if _, ok := p.Unit.LookupB(th, tbl.Base(), key16(99999)); ok {
		t.Fatal("LookupB found an absent key")
	}
	s := p.Unit.Stats()
	if s.Queries != 1501 || s.Hits != 1500 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLookupBAdvancesTime(t *testing.T) {
	p := testPlatform(t)
	tbl := populatedTable(t, p, 256, 100)
	th := cpu.NewThread(p.Hier, 0)
	before := th.Now
	p.Unit.LookupB(th, tbl.Base(), key16(5))
	if th.Now <= before {
		t.Fatal("blocking lookup did not advance the thread clock")
	}
}

func TestLookupNBBatchCorrectness(t *testing.T) {
	p := testPlatform(t)
	tbl := populatedTable(t, p, 4096, 3000)
	th := cpu.NewThread(p.Hier, 0)
	queries := make([]NBQuery, 20)
	for i := range queries {
		queries[i] = NBQuery{TableAddr: tbl.Base(), Key: key16(uint64(i * 100))}
	}
	queries[19] = NBQuery{TableAddr: tbl.Base(), Key: key16(99999)} // miss
	results := p.Unit.LookupManyNB(th, queries)
	for i := 0; i < 19; i++ {
		if !results[i].Found || results[i].Value != uint64(i*100)*2+1 {
			t.Fatalf("NB result %d = %+v", i, results[i])
		}
	}
	if results[19].Found {
		t.Fatal("NB lookup found an absent key")
	}
}

func TestLookupNBResultLineEncoding(t *testing.T) {
	p := testPlatform(t)
	tbl := populatedTable(t, p, 256, 100)
	th := cpu.NewThread(p.Hier, 0)
	p.Unit.LookupManyNB(th, []NBQuery{
		{TableAddr: tbl.Base(), Key: key16(1)},
		{TableAddr: tbl.Base(), Key: key16(424242)},
	})
	// The accelerator wrote encoded words into the core's result line.
	line := p.Unit.resultBuf[0]
	v, found, done := DecodeResult(mem.Read64(p.Space, line))
	if !done || !found || v != 3 {
		t.Fatalf("slot 0 = (%d,%v,%v)", v, found, done)
	}
	_, found, done = DecodeResult(mem.Read64(p.Space, line+8))
	if !done || found {
		t.Fatal("slot 1 should be done+miss")
	}
}

func TestNonBlockingBeatsBlockingOnBatches(t *testing.T) {
	p := testPlatform(t)
	tbl := populatedTable(t, p, 1<<14, 12000)
	p.WarmTable(tbl)
	th := cpu.NewThread(p.Hier, 0)

	// Blocking: 64 dependent lookups.
	start := th.Now
	for i := uint64(0); i < 64; i++ {
		p.Unit.LookupB(th, tbl.Base(), key16(i))
	}
	blocking := th.Now - start

	// Non-blocking: same 64 lookups in batches of 8.
	queries := make([]NBQuery, 64)
	for i := range queries {
		queries[i] = NBQuery{TableAddr: tbl.Base(), Key: key16(uint64(i) + 3000)}
	}
	start = th.Now
	p.Unit.LookupManyNB(th, queries)
	nonBlocking := th.Now - start

	if nonBlocking >= blocking {
		t.Fatalf("non-blocking (%d) not faster than blocking (%d)", nonBlocking, blocking)
	}
}

func TestMetadataCacheWarmsAndInvalidates(t *testing.T) {
	p := testPlatform(t)
	tbl := populatedTable(t, p, 256, 100)
	th := cpu.NewThread(p.Hier, 0)
	p.Unit.LookupB(th, tbl.Base(), key16(1))
	p.Unit.LookupB(th, tbl.Base(), key16(2))
	s := p.Unit.Stats()
	if s.MetaMisses != 1 || s.MetaHits != 1 {
		t.Fatalf("meta stats = %+v; the second lookup should hit", s)
	}
	// A table mutation that bumps the version counter writes the metadata
	// line; the CV bit must invalidate the cached copy.
	tbl.Delete(key16(1))
	th2 := cpu.NewThread(p.Hier, 1)
	// Simulate the writer core touching the metadata line through the
	// coherent hierarchy (the functional Delete above doesn't do timing).
	p.Hier.CoreAccess(th.Now, 1, tbl.VersionAddr(), true)
	p.Unit.LookupB(th2, tbl.Base(), key16(2))
	s = p.Unit.Stats()
	if s.MetaMisses != 2 {
		t.Fatalf("metadata cache survived a coherent write: %+v", s)
	}
}

func TestFaultOnGarbageTable(t *testing.T) {
	p := testPlatform(t)
	th := cpu.NewThread(p.Hier, 0)
	garbage := p.Alloc.AllocLines(1)
	_, ok := p.Unit.LookupB(th, garbage, key16(1))
	if ok {
		t.Fatal("lookup against garbage metadata succeeded")
	}
	if p.Unit.Stats().Faults != 1 {
		t.Fatalf("faults = %d, want 1", p.Unit.Stats().Faults)
	}
}

func TestScoreboardBackpressure(t *testing.T) {
	p := testPlatform(t)
	tbl := populatedTable(t, p, 4096, 3000)
	p.WarmTable(tbl)
	// Slam one accelerator with many simultaneous queries (same table ⇒
	// same home accelerator under DispatchByTable... unless diverted).
	// Use the accelerator directly to bypass diversion.
	a := p.Unit.Accelerator(0)
	keyAddr := p.Alloc.AllocLines(1)
	p.Space.WriteAt(keyAddr, key16(7))
	var lastDone uint64
	for i := 0; i < 40; i++ {
		r := a.Process(0, Query{Core: 0, TableAddr: tbl.Base(), KeyAddr: keyAddr})
		lastDone = uint64(r.Done)
	}
	if a.Stats().QueueCycles == 0 {
		t.Fatal("40 simultaneous queries caused no scoreboard queueing")
	}
	if a.OutstandingAt(0) != DefaultAccelConfig().ScoreboardDepth {
		t.Fatalf("outstanding at t=0 is %d, want scoreboard depth", a.OutstandingAt(0))
	}
	_ = lastDone
}

func TestBusyDiversionAcrossAccelerators(t *testing.T) {
	p := testPlatform(t)
	tbl := populatedTable(t, p, 4096, 3000)
	p.WarmTable(tbl)
	// One core alone cannot exceed the 10-deep scoreboard (its result line
	// holds only 8 in-flight queries), so model all 16 cores bursting
	// against the same table at the same instant: the home accelerator
	// saturates and the distributor must divert the overflow.
	keyAddr := p.Alloc.AllocLines(1)
	p.Space.WriteAt(keyAddr, key16(7))
	for i := 0; i < 200; i++ {
		p.Unit.dispatch(0, Query{Core: i % 16, TableAddr: tbl.Base(), KeyAddr: keyAddr})
	}
	used := 0
	for s := 0; s < 16; s++ {
		if p.Unit.Accelerator(s).Stats().Queries > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("all 200 queries ran on %d accelerator(s); busy diversion inactive", used)
	}
	if p.Unit.Distributor().Stats().Diverted == 0 {
		t.Fatal("distributor reports no diversions")
	}
}

func TestAcceleratorLocksBucketLines(t *testing.T) {
	p := testPlatform(t)
	tbl := populatedTable(t, p, 256, 100)
	p.WarmTable(tbl)
	th := cpu.NewThread(p.Hier, 0)
	p.Unit.LookupB(th, tbl.Base(), key16(5))
	// A write racing the walk (issued in the middle of the query window)
	// must stall until the lock clears.
	_, sig, b1, _ := tbl.Hashes(key16(5))
	_ = sig
	res := p.Hier.CoreAccess(th.Now/2, 1, tbl.BucketAddr(b1), true)
	if res.Done < th.Now && p.Hier.Stats().LockStalls == 0 {
		t.Fatal("concurrent write to a locked bucket neither stalled nor counted")
	}
}

func TestHybridSwitchesModes(t *testing.T) {
	p := testPlatform(t)
	tbl := populatedTable(t, p, 4096, 3000)
	p.WarmTable(tbl)
	cfg := DefaultHybridConfig()
	cfg.WindowCycles = 20_000
	hy := NewHybrid(cfg, p.Unit)
	th := cpu.NewThread(p.Hier, 0)

	if hy.Mode() != ModeAccel {
		t.Fatal("hybrid must start in accelerator mode")
	}
	// Phase 1: thousands of distinct flows → stays in accel mode.
	for i := uint64(0); i < 3000; i++ {
		v, ok := hy.Lookup(th, tbl, key16(i))
		if !ok || v != i*2+1 {
			t.Fatalf("hybrid lookup %d wrong", i)
		}
	}
	if hy.Mode() != ModeAccel {
		t.Fatal("high flow count switched hybrid to software")
	}
	// Phase 2: only 4 hot flows → must switch to software.
	for i := 0; i < 20000; i++ {
		hy.Lookup(th, tbl, key16(uint64(i%4)))
	}
	if hy.Mode() != ModeSoftware {
		t.Fatal("hybrid did not switch to software for a tiny flow set")
	}
	sw, hw := hy.Lookups()
	if sw == 0 || hw == 0 {
		t.Fatalf("lookups sw=%d hw=%d; both modes should have run", sw, hw)
	}
	// Phase 3: flow count explodes again → back to accel.
	for i := 0; i < 30000; i++ {
		hy.Lookup(th, tbl, key16(uint64(i%3000)))
	}
	if hy.Mode() != ModeAccel {
		t.Fatal("hybrid did not switch back to accelerator mode")
	}
	if hy.Switches() < 2 {
		t.Fatalf("switches = %d, want >= 2", hy.Switches())
	}
}

func TestMetadataCacheLRU(t *testing.T) {
	c := NewMetadataCache(2)
	c.Put(TableMeta{Base: 100})
	c.Put(TableMeta{Base: 200})
	c.Get(100) // 100 is now MRU
	c.Put(TableMeta{Base: 300})
	if _, ok := c.Get(200); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(100); !ok {
		t.Fatal("MRU entry evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}
