package halo_test

import (
	"encoding/binary"
	"testing"

	"halo"
)

func facadeKey(i uint64) []byte {
	k := make([]byte, 16)
	binary.LittleEndian.PutUint64(k, i)
	binary.LittleEndian.PutUint64(k[8:], ^i)
	return k
}

func TestFacadeQuickstartFlow(t *testing.T) {
	sys := halo.New()
	if sys.Cores() != 16 {
		t.Fatalf("cores = %d, want 16 (paper Table 2)", sys.Cores())
	}
	table, err := sys.NewTable(halo.TableConfig{Entries: 1 << 12, KeyLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3000; i++ {
		if err := table.Insert(facadeKey(i), i); err != nil {
			t.Fatal(err)
		}
	}
	sys.WarmTable(table)
	th := sys.Thread(0)

	// Software and accelerator paths agree.
	for i := uint64(0); i < 500; i++ {
		sv, sok := table.TimedLookup(th, facadeKey(i), halo.SoftwareLookupDefaults())
		hv, hok := sys.Unit().LookupB(th, table.Base(), facadeKey(i))
		if sv != hv || sok != hok {
			t.Fatalf("paths diverged on key %d", i)
		}
	}
	if th.Now == 0 {
		t.Fatal("no time elapsed")
	}
	if halo.CyclesToMicros(uint64(th.Now)) <= 0 {
		t.Fatal("time conversion broken")
	}
}

func TestFacadeNonBlockingBatch(t *testing.T) {
	sys := halo.New()
	table, err := sys.NewTable(halo.TableConfig{Entries: 1 << 10, KeyLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 700; i++ {
		if err := table.Insert(facadeKey(i), i*5); err != nil {
			t.Fatal(err)
		}
	}
	th := sys.Thread(2)
	queries := make([]halo.NBQuery, 16)
	for i := range queries {
		queries[i] = halo.NBQuery{TableAddr: table.Base(), Key: facadeKey(uint64(i * 3))}
	}
	results := sys.Unit().LookupManyNB(th, queries)
	for i, r := range results {
		if !r.Found || r.Value != uint64(i*3*5) {
			t.Fatalf("NB result %d = %+v", i, r)
		}
	}
}

func TestFacadeTupleSpace(t *testing.T) {
	sys := halo.New()
	ts := sys.NewTupleSpace(true, 1024)
	mask := halo.Mask{SrcIPBits: 24, DstIPBits: 0, SrcPortWild: true, DstPortWild: false}
	flow := halo.FiveTuple{SrcIP: 0x0a000100, DstPort: 443, Proto: 17}
	if err := ts.InsertRule(mask, flow, halo.Match{RuleID: 9}); err != nil {
		t.Fatal(err)
	}
	got, ok := ts.Classify(halo.FiveTuple{SrcIP: 0x0a0001FF, SrcPort: 999, DstPort: 443, Proto: 17})
	if !ok || got.RuleID != 9 {
		t.Fatalf("classify = %+v, %v", got, ok)
	}
}

func TestFacadeSwitch(t *testing.T) {
	sys := halo.New()
	sw, err := sys.NewSwitch(halo.HaloSwitchConfig())
	if err != nil {
		t.Fatal(err)
	}
	mask := halo.Mask{SrcIPBits: 0, DstIPBits: 0, SrcPortWild: true, DstPortWild: false}
	if err := sw.Mega.InsertRule(mask, halo.FiveTuple{DstPort: 80, Proto: 17},
		halo.Match{RuleID: 1}); err != nil {
		t.Fatal(err)
	}
	th := sys.Thread(0)
	pkt := halo.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80, Proto: 17}
	m, ok := sw.ProcessPacket(th, &pkt)
	if !ok || m.RuleID != 1 {
		t.Fatalf("switch classify = %+v, %v", m, ok)
	}
}

func TestFacadeNFs(t *testing.T) {
	sys := halo.New()
	nat, err := sys.NewNAT(true, 256)
	if err != nil {
		t.Fatal(err)
	}
	th := sys.Thread(1)
	pkt := halo.Packet{SrcIP: 0x0a000001, DstIP: 8, SrcPort: 1234, DstPort: 80, Proto: 6}
	if v := nat.ProcessPacket(th, &pkt); v.String() != "rewritten" {
		t.Fatalf("NAT verdict %v", v)
	}
	filter, err := sys.NewPacketFilter(false, 256)
	if err != nil {
		t.Fatal(err)
	}
	pkt2 := halo.Packet{SrcIP: 5, DstPort: 80, Proto: 6}
	if v := filter.ProcessPacket(th, &pkt2); v.String() != "accept" {
		t.Fatalf("filter verdict %v", v)
	}
	prads, err := sys.NewPrads(true, 256)
	if err != nil {
		t.Fatal(err)
	}
	prads.ProcessPacket(th, &pkt2)
	if prads.Assets() != 1 {
		t.Fatalf("assets = %d", prads.Assets())
	}
}

func TestFacadeHybrid(t *testing.T) {
	sys := halo.New()
	table, err := sys.NewTable(halo.TableConfig{Entries: 1 << 10, KeyLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if err := table.Insert(facadeKey(i), i); err != nil {
			t.Fatal(err)
		}
	}
	hy := sys.NewHybrid()
	th := sys.Thread(0)
	for i := uint64(0); i < 2000; i++ {
		v, ok := hy.Lookup(th, table, facadeKey(i%500))
		if !ok || v != i%500 {
			t.Fatalf("hybrid lookup %d failed", i)
		}
	}
}

func TestFacadeOptions(t *testing.T) {
	sys := halo.New(halo.WithDispatchPolicy(halo.DispatchRoundRobin))
	if sys.Unit() == nil || sys.Platform() == nil {
		t.Fatal("accessors broken")
	}
}
