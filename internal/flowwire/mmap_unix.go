//go:build unix

package flowwire

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f shared and read-write. The fd can be closed
// immediately after — the mapping keeps the pages alive.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func munmap(mem []byte) error {
	return syscall.Munmap(mem)
}
