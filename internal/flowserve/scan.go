package flowserve

import "halo/internal/hashfn"

// ScanRange visits every resident key whose primary hash falls in [lo, hi)
// — hi == 0 meaning "to the end of the 64-bit hash space" — calling
// emit(key, value) for each. Each shard is scanned atomically under its
// writer mutex: concurrent lookups are unaffected (they are seqlock-based
// and never take the mutex on the optimistic path), while writers to the
// shard being scanned stall for that shard's scan only. The migration
// snapshot leans on this atomicity: any mutation racing the scan either
// lands before it (and is captured by the scan) or after it (and is
// captured by the double-write forwarder that was armed first).
//
// The key slice passed to emit is scratch reused across calls — the
// callback must copy it to retain it, and must not call back into the
// table (the shard mutex is held).
func (t *Table) ScanRange(lo, hi uint64, emit func(key []byte, value uint64)) {
	var kw [maxKeyWords]uint64
	var kb [MaxKeyLen]byte
	for _, sh := range t.shards {
		sh.mu.Lock()
		rp := sh.regions.Load()
		for _, r := range [2]*region{rp.old, rp.cur} {
			if r == nil {
				continue
			}
			for i := range r.entries {
				ent := r.entries[i].Load()
				if ent == 0 {
					continue
				}
				slot := uint32(ent >> 16)
				base := int(slot) * sh.kvStride
				for w := 0; w < sh.kvStride-1; w++ {
					kw[w] = r.kv[base+w].Load()
				}
				key := wordsToKey(&kw, sh.keyLen, &kb)
				h := hashfn.Hash(hashfn.SeedPrimary, key)
				if h < lo || (hi != 0 && h >= hi) {
					continue
				}
				emit(key, r.kv[base+sh.kvStride-1].Load())
			}
		}
		sh.mu.Unlock()
	}
}

// PurgeRange removes every resident key whose primary hash falls in
// [lo, hi) (hi == 0 meaning "to the end"), returning how many were
// removed. The losing node of a shard migration calls it after cutover:
// the surrendered range's keys now live on the gaining node, and the
// installed map guarantees no new ones arrive here. Each shard purges
// atomically under its writer mutex, bumping the seqlock per cleared
// entry so racing readers re-probe instead of observing recycled slots.
func (t *Table) PurgeRange(lo, hi uint64) (removed uint64) {
	var kw [maxKeyWords]uint64
	var kb [MaxKeyLen]byte
	for _, sh := range t.shards {
		sh.mu.Lock()
		rp := sh.regions.Load()
		for _, r := range [2]*region{rp.old, rp.cur} {
			if r == nil {
				continue
			}
			for i := range r.entries {
				ent := r.entries[i].Load()
				if ent == 0 {
					continue
				}
				slot := uint32(ent >> 16)
				base := int(slot) * sh.kvStride
				for w := 0; w < sh.kvStride-1; w++ {
					kw[w] = r.kv[base+w].Load()
				}
				key := wordsToKey(&kw, sh.keyLen, &kb)
				h := hashfn.Hash(hashfn.SeedPrimary, key)
				if h < lo || (hi != 0 && h >= hi) {
					continue
				}
				sh.beginWrite()
				r.entries[i].Store(0)
				sh.endWrite()
				r.free = append(r.free, slot)
				sh.size.Add(^uint64(0))
				removed++
			}
		}
		sh.mu.Unlock()
	}
	return removed
}
