// Package isa defines the three x86-64 instruction-set extensions HALO adds
// (paper §4.5): LOOKUP_B, LOOKUP_NB and SNAPSHOT_READ. It provides an
// assembler-level representation with a binary encoding and decoder, and the
// micro-op expansion the simulated core uses to execute each instruction.
//
// Following the paper, the hash-table address travels in the implicit
// RAX/EAX operand — consecutive lookups usually target the same table, so
// the register is set once and reused — which keeps the instructions within
// the two-operand x86 template.
package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Opcode identifies one of the HALO instructions.
type Opcode uint8

// The extension opcodes. Encodings use the two-byte 0x0F 0x3A escape space
// followed by these values; real allocations would come from Intel, the
// specific bytes are only fixed so Encode/Decode round-trip.
const (
	OpLookupB      Opcode = 0xB0 // LOOKUP_B  mem.key_addr, reg.result
	OpLookupNB     Opcode = 0xB1 // LOOKUP_NB mem.key_addr, mem.result
	OpSnapshotRead Opcode = 0xB2 // SNAPSHOT_READ mem.result_addr, reg.result
)

func (o Opcode) String() string {
	switch o {
	case OpLookupB:
		return "LOOKUP_B"
	case OpLookupNB:
		return "LOOKUP_NB"
	case OpSnapshotRead:
		return "SNAPSHOT_READ"
	}
	return fmt.Sprintf("Opcode(%#x)", uint8(o))
}

// Reg is a general-purpose register number (RAX=0 ... R15=15).
type Reg uint8

// RAX holds the implicit hash-table address operand.
const RAX Reg = 0

// Instruction is one decoded HALO instruction.
//
//   - LOOKUP_B:      KeyAddr (memory), DstReg (register result)
//   - LOOKUP_NB:     KeyAddr (memory), ResultAddr (memory result)
//   - SNAPSHOT_READ: ResultAddr (memory source), DstReg (register result)
//
// Memory operands are carried as absolute 64-bit addresses; the simulated
// cores run flat-addressed, so no ModRM addressing forms are needed.
type Instruction struct {
	Op         Opcode
	KeyAddr    uint64
	ResultAddr uint64
	DstReg     Reg
}

const (
	escape1 = 0x0F
	escape2 = 0x3A
	// EncodedLen is the fixed instruction length: 2 escape bytes, opcode,
	// register byte, and two 8-byte operands.
	EncodedLen = 2 + 1 + 1 + 8 + 8
)

// Encode emits the binary form of the instruction.
func (in Instruction) Encode() []byte {
	buf := make([]byte, EncodedLen)
	buf[0] = escape1
	buf[1] = escape2
	buf[2] = uint8(in.Op)
	buf[3] = uint8(in.DstReg)
	binary.LittleEndian.PutUint64(buf[4:], in.KeyAddr)
	binary.LittleEndian.PutUint64(buf[12:], in.ResultAddr)
	return buf
}

// Decoding errors.
var (
	ErrShortInstruction = errors.New("isa: truncated instruction")
	ErrBadEscape        = errors.New("isa: not a HALO instruction (bad escape bytes)")
	ErrBadOpcode        = errors.New("isa: unknown HALO opcode")
	ErrBadRegister      = errors.New("isa: register number out of range")
)

// Decode parses one instruction from the front of buf and returns it with
// the number of bytes consumed.
func Decode(buf []byte) (Instruction, int, error) {
	if len(buf) < EncodedLen {
		return Instruction{}, 0, ErrShortInstruction
	}
	if buf[0] != escape1 || buf[1] != escape2 {
		return Instruction{}, 0, ErrBadEscape
	}
	op := Opcode(buf[2])
	switch op {
	case OpLookupB, OpLookupNB, OpSnapshotRead:
	default:
		return Instruction{}, 0, ErrBadOpcode
	}
	if buf[3] > 15 {
		return Instruction{}, 0, ErrBadRegister
	}
	return Instruction{
		Op:         op,
		DstReg:     Reg(buf[3]),
		KeyAddr:    binary.LittleEndian.Uint64(buf[4:]),
		ResultAddr: binary.LittleEndian.Uint64(buf[12:]),
	}, EncodedLen, nil
}

// String renders assembler-style syntax.
func (in Instruction) String() string {
	switch in.Op {
	case OpLookupB:
		return fmt.Sprintf("LOOKUP_B [%#x], r%d", in.KeyAddr, in.DstReg)
	case OpLookupNB:
		return fmt.Sprintf("LOOKUP_NB [%#x], [%#x]", in.KeyAddr, in.ResultAddr)
	case OpSnapshotRead:
		return fmt.Sprintf("SNAPSHOT_READ [%#x], r%d", in.ResultAddr, in.DstReg)
	}
	return fmt.Sprintf("%v", in.Op)
}

// MicroOp is a step in an instruction's expansion, consumed by the core
// model.
type MicroOp uint8

// Micro-op kinds.
const (
	UopIssueQuery   MicroOp = iota // hand (key, RAX table, dst) to the query distributor
	UopAwaitResult                 // block the pipeline until the result returns (LOOKUP_B)
	UopWriteback                   // deposit the result into the destination register
	UopSnapshotLoad                // ownership-preserving load (SNAPSHOT_READ)
)

// Expand returns the instruction's micro-op sequence. Blocking lookups await
// the accelerator; non-blocking ones retire at issue, like stores.
func (in Instruction) Expand() []MicroOp {
	switch in.Op {
	case OpLookupB:
		return []MicroOp{UopIssueQuery, UopAwaitResult, UopWriteback}
	case OpLookupNB:
		return []MicroOp{UopIssueQuery}
	case OpSnapshotRead:
		return []MicroOp{UopSnapshotLoad, UopWriteback}
	}
	return nil
}

// Blocking reports whether the instruction stalls the pipeline until its
// result arrives.
func (in Instruction) Blocking() bool { return in.Op != OpLookupNB }
