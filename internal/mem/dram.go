package mem

import "halo/internal/sim"

// DRAMConfig describes the timing of the simulated DDR4 memory system
// (paper Table 2: 32 GB DDR4-2400). Latencies are in CPU cycles at the
// simulated 2.1 GHz core clock.
type DRAMConfig struct {
	Channels      int
	BanksPerChan  int
	RowBytes      uint64
	RowHitCycles  sim.Cycle // CAS only
	RowMissCycles sim.Cycle // precharge + activate + CAS
	BusCycles     sim.Cycle // data-burst occupancy per 64 B line
}

// DefaultDRAMConfig matches the paper's platform at the fidelity this
// simulator needs: ~165-cycle loaded row-miss latency at 2.1 GHz.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Channels:      2,
		BanksPerChan:  16,
		RowBytes:      8192,
		RowHitCycles:  60,
		RowMissCycles: 165,
		BusCycles:     4,
	}
}

// DRAMStats aggregates controller activity.
type DRAMStats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
}

type bank struct {
	openRow uint64
	hasRow  bool
	busy    *sim.CalendarResource
}

// DRAM is the memory-controller timing model. It is purely a timing device:
// data movement happens in the functional Space.
type DRAM struct {
	cfg   DRAMConfig
	banks []bank
	bus   []*sim.CalendarResource // one data bus per channel
	stats DRAMStats
}

// NewDRAM builds a controller with the given configuration.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.Channels <= 0 || cfg.BanksPerChan <= 0 {
		panic("mem: DRAM needs at least one channel and bank")
	}
	d := &DRAM{
		cfg:   cfg,
		banks: make([]bank, cfg.Channels*cfg.BanksPerChan),
		bus:   make([]*sim.CalendarResource, cfg.Channels),
	}
	for i := range d.banks {
		d.banks[i].busy = sim.NewCalendarResource(0)
	}
	for i := range d.bus {
		d.bus[i] = sim.NewCalendarResource(0)
	}
	return d
}

// Stats returns a copy of the accumulated statistics.
func (d *DRAM) Stats() DRAMStats { return d.stats }

func (d *DRAM) route(addr Addr) (bankIdx int, row uint64) {
	line := uint64(addr) / LineSize
	ch := int(line) % d.cfg.Channels
	bk := int(line/uint64(d.cfg.Channels)) % d.cfg.BanksPerChan
	row = uint64(addr) / d.cfg.RowBytes
	return ch*d.cfg.BanksPerChan + bk, row
}

// Access models one line-sized access issued at cycle `at` and returns its
// completion ticket. Write-backs use isWrite=true; they occupy the bank but
// callers typically do not wait on them.
func (d *DRAM) Access(at sim.Cycle, addr Addr, isWrite bool) sim.Ticket {
	bankIdx, row := d.route(addr)
	b := &d.banks[bankIdx]

	latency := d.cfg.RowMissCycles
	if b.hasRow && b.openRow == row {
		latency = d.cfg.RowHitCycles
		d.stats.RowHits++
	} else {
		d.stats.RowMisses++
	}
	b.openRow = row
	b.hasRow = true

	if isWrite {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}

	// The bank is occupied for the access latency; the channel data bus for
	// the burst. Contention on either delays completion.
	start := b.busy.Claim(at, latency)
	ch := bankIdx / d.cfg.BanksPerChan
	burst := d.bus[ch].Claim(start+latency, d.cfg.BusCycles)
	return sim.Ticket{Issued: at, Done: burst + d.cfg.BusCycles}
}
