// Command halobench regenerates the tables and figures of the HALO paper
// (ISCA 2019) from the simulated platform.
//
// Usage:
//
//	halobench                     # run every experiment at paper scale
//	halobench -quick              # shrunk sweeps (seconds instead of minutes)
//	halobench -experiment fig9    # one experiment
//	halobench -list               # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"halo/internal/experiments"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "run shrunk sweeps")
		experiment = flag.String("experiment", "", "run a single experiment (see -list)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		seed       = flag.Uint64("seed", 0x48414c4f, "workload seed")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-14s %s\n", r.ID, r.Paper)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.Quick = *quick
	cfg.Seed = *seed

	start := time.Now()
	if *experiment != "" {
		r, ok := experiments.Find(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "halobench: unknown experiment %q (try -list)\n", *experiment)
			os.Exit(2)
		}
		fmt.Printf("### %s — %s\n\n", r.ID, r.Paper)
		r.Run(cfg, os.Stdout)
	} else {
		experiments.RunAll(cfg, os.Stdout)
	}
	fmt.Printf("(completed in %v)\n", time.Since(start).Round(time.Millisecond))
}
