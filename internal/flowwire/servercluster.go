package flowwire

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"halo/internal/stats"
)

// This file is the server half of cluster serving (DESIGN.md §13): the
// installed shard map, the per-request ownership gate, and the live
// migration engine that moves a hash range to another node with zero loss.
//
// Locking regime. The hot read path never locks: it loads the map pointer
// atomically and checks ownership per key. Mutations take cl.mu — RLock in
// steady state (they only need the map to be stable), the full Lock while a
// migration is active, which serialises apply+enqueue so the migration
// queue's per-key order exactly mirrors the table's apply order. The
// cutover (handleMapUpdate) holds the full Lock across seal→drain→install:
// a bounded write pause (reads keep flowing off the old map) that buys the
// zero-loss guarantee — when the losing node starts redirecting, every
// double-written record has already been acknowledged by the gaining node.

// migQueueDepth bounds the migration queue; a full queue backpressures the
// producer (the snapshot scan or a double-writing mutation).
const migQueueDepth = 8192

// migBatchRecords caps how many queued records one MIG_APPLY frame carries.
const migBatchRecords = 256

type clusterCounters struct {
	wrongShard     atomic.Uint64 // frames redirected with WRONG_SHARD
	migsStarted    atomic.Uint64
	migsDone       atomic.Uint64
	migsFailed     atomic.Uint64
	migRecordsIn   atomic.Uint64 // records applied on the gaining side
	migConflictsIn atomic.Uint64
	purgedKeys     atomic.Uint64 // keys purged after surrendering a range
}

// cluster is a server's cluster-mode state.
type cluster struct {
	self   Endpoint
	m      atomic.Pointer[ShardMap]
	selfID atomic.Uint32 // index of self in the installed map, or NoNode

	// migActive tells mutators to take the full lock; it is only ever
	// flipped under mu, so holding RLock and observing false guarantees no
	// migration is armed for the duration.
	migActive atomic.Bool

	mu   sync.RWMutex
	mig  *migration // armed migration, guarded by mu
	last MigInfo    // ledger of the last finished migration, guarded by mu

	c clusterCounters
}

func newCluster(self Endpoint, nodes []Endpoint) (*cluster, error) {
	if self.IsZero() {
		return nil, fmt.Errorf("flowwire: cluster mode requires Config.Self")
	}
	selfID := NoNode
	for i, ep := range nodes {
		if ep == self {
			selfID = uint32(i)
		}
	}
	if selfID == NoNode {
		return nil, fmt.Errorf("flowwire: Config.Self %s not in cluster list %s", self, EndpointList(nodes))
	}
	m := UniformMap(nodes)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cl := &cluster{self: self}
	cl.m.Store(m)
	cl.selfID.Store(selfID)
	return cl, nil
}

func (cl *cluster) collectInto(snap *stats.Snapshot) {
	snap.Add("flowwire.cluster.wrong_shard", cl.c.wrongShard.Load())
	snap.Add("flowwire.cluster.migs_started", cl.c.migsStarted.Load())
	snap.Add("flowwire.cluster.migs_done", cl.c.migsDone.Load())
	snap.Add("flowwire.cluster.migs_failed", cl.c.migsFailed.Load())
	snap.Add("flowwire.cluster.mig_records_in", cl.c.migRecordsIn.Load())
	snap.Add("flowwire.cluster.mig_conflicts_in", cl.c.migConflictsIn.Load())
	snap.Add("flowwire.cluster.purged_keys", cl.c.purgedKeys.Load())
	if m := cl.m.Load(); m != nil {
		snap.Add("flowwire.cluster.epoch", m.Epoch)
	}
}

// migInfo snapshots the migration ledger: the armed migration's live
// counters, or the last finished one's.
func (cl *cluster) migInfo() MigInfo {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	if cl.mig != nil {
		return cl.mig.info(true, false)
	}
	return cl.last
}

// applyLocal runs one mutation against the table with no cluster checks.
func (s *Server) applyLocal(op Op, key []byte, value uint64) (Status, bool) {
	t := s.cfg.Table
	switch op {
	case OpInsert:
		return statusOf(t.Insert(key, value)), false
	case OpUpdate:
		return StatusOK, t.Update(key, value)
	default: // OpDelete
		return StatusOK, t.Delete(key)
	}
}

// applyMutation runs one mutation under the cluster regime: ownership gate,
// local apply, and — while a migration is armed and the key falls in the
// moving range — a double-write into the migration queue, atomically with
// the apply (the full lock). An unowned key returns StatusErrWrongShard
// with the map epoch for the redirect payload.
func (s *Server) applyMutation(op Op, key []byte, value uint64) (st Status, found bool, epoch uint64) {
	cl := s.cl
	if cl == nil || cl.m.Load() == nil {
		st, found = s.applyLocal(op, key, value)
		return st, found, 0
	}
	h := KeyHash(key)
	full := cl.migActive.Load()
	for {
		if full {
			cl.mu.Lock()
			break
		}
		cl.mu.RLock()
		if !cl.migActive.Load() {
			break
		}
		// A migration armed between the check and the RLock: upgrade.
		cl.mu.RUnlock()
		full = true
	}
	m := cl.m.Load()
	if uint32(m.Owner(h)) != cl.selfID.Load() {
		epoch = m.Epoch
		if full {
			cl.mu.Unlock()
		} else {
			cl.mu.RUnlock()
		}
		cl.c.wrongShard.Add(1)
		return StatusErrWrongShard, false, epoch
	}
	st, found = s.applyLocal(op, key, value)
	if full {
		if mig := cl.mig; mig != nil && !mig.aborted.Load() && mig.rg.Contains(h) {
			// Forward only effective mutations, in apply order (we hold the
			// full lock, so enqueue order IS apply order).
			var kind MigKind
			switch {
			case op == OpInsert && st == StatusOK:
				kind = MigInsert
			case op == OpUpdate && found:
				kind = MigUpdate
			case op == OpDelete && found:
				kind = MigDelete
			}
			if kind != 0 {
				mig.queue <- MigRecord{Kind: kind, Value: value, Key: append([]byte(nil), key...)}
				mig.forwarded.Add(1)
				mig.enqueued.Add(1)
			}
		}
		cl.mu.Unlock()
	} else {
		cl.mu.RUnlock()
	}
	return st, found, 0
}

// rangeOwnedBy reports whether every hash in rg is owned by node id under m.
func rangeOwnedBy(m *ShardMap, rg Range, id uint32) bool {
	if id == NoNode {
		return false
	}
	own, ok := m.RangeOwner(rg)
	return ok && uint32(own) == id
}

// migration is one armed range handoff on the losing node: a FIFO queue fed
// by the snapshot scan and the double-writing mutators, drained by a single
// sender over one connection to the gaining node — one queue, one sender,
// one connection, so per-key record order is preserved end to end.
type migration struct {
	rg  Range
	dst Endpoint
	cl  *Client // Conns:1 to the gaining node

	queue      chan MigRecord
	scanDone   chan struct{}
	senderDone chan struct{}

	aborted atomic.Bool
	errv    atomic.Value // string: first sender/apply failure

	snapshotted atomic.Uint64
	forwarded   atomic.Uint64
	enqueued    atomic.Uint64
	sent        atomic.Uint64
	acked       atomic.Uint64
	conflicts   atomic.Uint64
}

func (mig *migration) info(active, done bool) MigInfo {
	mi := MigInfo{
		Active:       active,
		Done:         done,
		RangeLo:      mig.rg.Lo,
		RangeHi:      mig.rg.Hi,
		Snapshotted:  mig.snapshotted.Load(),
		Forwarded:    mig.forwarded.Load(),
		Enqueued:     mig.enqueued.Load(),
		Sent:         mig.sent.Load(),
		Acked:        mig.acked.Load(),
		Conflicts:    mig.conflicts.Load(),
	}
	select {
	case <-mig.scanDone:
		mi.SnapshotDone = true
	default:
	}
	if e, ok := mig.errv.Load().(string); ok {
		mi.Err = e
	}
	return mi
}

// handleMigStart arms a migration of rg to dst on this (losing) node.
func (s *Server) handleMigStart(rg Range, dst Endpoint) Status {
	cl := s.cl
	if cl == nil || rg.Empty() {
		return StatusErrCluster
	}
	m := cl.m.Load()
	if m == nil || !rangeOwnedBy(m, rg, cl.selfID.Load()) {
		return StatusErrCluster
	}
	mcl, err := DialEndpoint(dst, Options{Conns: 1})
	if err != nil {
		return StatusErrCluster
	}
	mig := &migration{
		rg:         rg,
		dst:        dst,
		cl:         mcl,
		queue:      make(chan MigRecord, migQueueDepth),
		scanDone:   make(chan struct{}),
		senderDone: make(chan struct{}),
	}
	cl.mu.Lock()
	if cl.mig != nil {
		cl.mu.Unlock()
		mcl.Close()
		return StatusErrCluster
	}
	// The purge record leads the stream: it is enqueued before the scan
	// starts and before any mutator can double-write, so the gaining node
	// clears leftovers of any earlier failed attempt first.
	var hi [8]byte
	binary.LittleEndian.PutUint64(hi[:], rg.Hi)
	mig.queue <- MigRecord{Kind: MigPurge, Value: rg.Lo, Key: hi[:]}
	mig.enqueued.Add(1)
	cl.mig = mig
	cl.migActive.Store(true)
	cl.mu.Unlock()
	cl.c.migsStarted.Add(1)
	go mig.runSnapshot(s)
	go mig.runSender(cl)
	return StatusOK
}

// runSnapshot streams the range out of the table into the queue. It runs
// WITHOUT the cluster lock: a mutation racing the scan either lands before
// a shard's scan (captured by the scan, under the shard lock) or after it
// (captured by the double-write forwarder, which was armed first) — both
// orders leave the last queued record carrying the key's final value.
func (mig *migration) runSnapshot(s *Server) {
	defer close(mig.scanDone)
	s.cfg.Table.ScanRange(mig.rg.Lo, mig.rg.Hi, func(key []byte, value uint64) {
		if mig.aborted.Load() {
			return
		}
		rec := MigRecord{Kind: MigSnapshot, Value: value, Key: append([]byte(nil), key...)}
		mig.snapshotted.Add(1)
		mig.enqueued.Add(1)
		mig.queue <- rec
	})
}

// runSender drains the queue into MIG_APPLY batches on the single
// connection to the gaining node. On a send/apply failure it flips to
// discard mode (so producers never block on a dead migration) and a cleanup
// goroutine disarms the migration once the scan has finished.
func (mig *migration) runSender(cl *cluster) {
	defer close(mig.senderDone)
	batch := make([]MigRecord, 0, migBatchRecords)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		n := uint64(len(batch))
		if !mig.aborted.Load() {
			mig.sent.Add(n)
			processed, conflicts, err := mig.cl.MigApply(batch)
			if err == nil && uint64(processed) != n {
				err = fmt.Errorf("flowwire: MIG_APPLY processed %d of %d records", processed, n)
			}
			if err != nil {
				mig.fail(cl, err)
			} else {
				mig.acked.Add(n)
				mig.conflicts.Add(uint64(conflicts))
			}
		}
		batch = batch[:0]
	}
	for {
		rec, ok := <-mig.queue
		if !ok {
			flush()
			return
		}
		batch = append(batch, rec)
	fill:
		for len(batch) < migBatchRecords {
			select {
			case r2, ok2 := <-mig.queue:
				if !ok2 {
					flush()
					return
				}
				batch = append(batch, r2)
			default:
				break fill
			}
		}
		flush()
	}
}

// fail flips the migration into aborted/discard mode and spawns the
// disarm: wait for the scan to finish (it stops enqueueing once it sees
// aborted), clear the armed migration under the lock — after which no
// mutator can enqueue — and close the queue so the sender drains out.
func (mig *migration) fail(cl *cluster, err error) {
	if mig.aborted.Swap(true) {
		return
	}
	mig.errv.Store(err.Error())
	go func() {
		<-mig.scanDone
		cl.mu.Lock()
		if cl.mig == mig {
			cl.mig = nil
			cl.migActive.Store(false)
			cl.last = mig.info(false, false)
			cl.c.migsFailed.Add(1)
			close(mig.queue)
		}
		cl.mu.Unlock()
		mig.cl.Close()
	}()
}

// handleMapUpdate installs a pushed shard map. When the new map takes the
// armed migration's range away from this node, the install IS the cutover:
// seal the queue, drain it into the gaining node, install the map, purge
// the surrendered range — all before replying. The reply is the zero-loss
// point the coordinator waits on.
func (s *Server) handleMapUpdate(payload []byte) Status {
	m, err := ParseShardMap(payload)
	if err != nil {
		return StatusErrMalformed
	}
	cl := s.cl
	if cl == nil {
		return StatusErrCluster
	}
	cur := cl.m.Load()
	if cur != nil && m.Epoch < cur.Epoch {
		return StatusErrCluster
	}
	if cur != nil && m.Epoch == cur.Epoch {
		return StatusOK // idempotent re-push
	}
	newID := NoNode
	for i, ep := range m.Nodes {
		if ep == cl.self {
			newID = uint32(i)
		}
	}

	cl.mu.Lock()
	mig := cl.mig
	if mig == nil || rangeOwnedBy(m, mig.rg, newID) {
		// No cutover: a plain map install (e.g. this is the gaining node, or
		// a topology change elsewhere).
		cl.m.Store(m)
		cl.selfID.Store(newID)
		cl.mu.Unlock()
		return StatusOK
	}
	cl.mu.Unlock()

	// Cutover. The snapshot must be complete before sealing — the
	// coordinator polls MIG_STATUS for SnapshotDone before pushing, so this
	// wait is normally instant.
	<-mig.scanDone

	cl.mu.Lock()
	if cl.mig != mig {
		// The migration failed and disarmed itself meanwhile; without its
		// records on the gaining node the map must not be installed.
		cl.mu.Unlock()
		return StatusErrCluster
	}
	cl.mig = nil
	cl.migActive.Store(false)
	close(mig.queue)
	// Bounded write pause: mutators block on cl.mu while the sender drains
	// the sealed queue (reads keep serving off the old map). When the
	// sender is done, every double-written record is acked remotely.
	<-mig.senderDone
	if mig.aborted.Load() {
		cl.last = mig.info(false, false)
		cl.c.migsFailed.Add(1)
		cl.mu.Unlock()
		mig.cl.Close()
		return StatusErrCluster
	}
	cl.m.Store(m)
	cl.selfID.Store(newID)
	cl.last = mig.info(false, true)
	cl.c.migsDone.Add(1)
	cl.mu.Unlock()
	mig.cl.Close()
	cl.c.purgedKeys.Add(s.cfg.Table.PurgeRange(mig.rg.Lo, mig.rg.Hi))
	return StatusOK
}

// applyMigRecords applies one MIG_APPLY batch on the gaining node. Records
// bypass the ownership gate: during the handoff this node accepts the
// moving range's records before its clients may route here.
func (s *Server) applyMigRecords(recs []MigRecord) (processed, conflicts uint32, st Status) {
	t := s.cfg.Table
	for _, r := range recs {
		switch r.Kind {
		case MigPurge:
			if len(r.Key) != 8 {
				return processed, conflicts, StatusErrMalformed
			}
			t.PurgeRange(r.Value, binary.LittleEndian.Uint64(r.Key))
		case MigSnapshot, MigInsert, MigUpdate:
			if t.Update(r.Key, r.Value) {
				if r.Kind == MigSnapshot {
					conflicts++
				}
			} else if err := t.Insert(r.Key, r.Value); err != nil {
				return processed, conflicts, statusOf(err)
			}
		case MigDelete:
			if !t.Delete(r.Key) {
				conflicts++
			}
		}
		processed++
	}
	if s.cl != nil {
		s.cl.c.migRecordsIn.Add(uint64(processed))
		s.cl.c.migConflictsIn.Add(uint64(conflicts))
	}
	return processed, conflicts, StatusOK
}
