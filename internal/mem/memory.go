// Package mem models the simulated physical memory: a functional,
// byte-addressable backing store plus a DRAM timing model.
//
// The store is *functional first*: the cuckoo hash tables used in experiments
// really live in this memory as bytes, and both the software lookup path and
// the HALO accelerators read the same bytes. Timing (caches, DRAM banks) is
// layered on top and can never change an answer, only a cycle count.
package mem

import (
	"encoding/binary"
	"fmt"
)

// Addr is a simulated physical address.
type Addr uint64

// LineSize is the cache-line size in bytes, matching the 64 B lines the paper
// assumes (one hash bucket per line).
const LineSize = 64

// LineAddr returns the address of the cache line containing a.
func LineAddr(a Addr) Addr { return a &^ (LineSize - 1) }

// Space is a functional byte store. Implementations must support unaligned
// access anywhere in the address space.
type Space interface {
	ReadAt(addr Addr, buf []byte)
	WriteAt(addr Addr, buf []byte)
}

const pageBits = 16 // 64 KiB pages
const pageSize = 1 << pageBits

// Memory is a sparse, page-granular physical memory. The zero value is
// usable and empty; unwritten bytes read as zero.
//
// Memory is not safe for concurrent use: the one-entry page cache mutates
// on reads. Every simulated platform owns its memory exclusively, matching
// how the worker pool shards experiment points.
type Memory struct {
	pages map[Addr]*[pageSize]byte

	// One-entry page cache: table walks and bucket probes hit the same page
	// repeatedly, and the map lookup dominates access cost without it.
	lastBase Addr
	lastPage *[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[Addr]*[pageSize]byte)}
}

func (m *Memory) page(addr Addr, create bool) *[pageSize]byte {
	base := addr >> pageBits
	if m.lastPage != nil && m.lastBase == base {
		return m.lastPage
	}
	p := m.pages[base]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[base] = p
	}
	if p != nil {
		m.lastBase, m.lastPage = base, p
	}
	return p
}

// ReadAt fills buf with the bytes at addr. Unwritten memory reads as zero.
func (m *Memory) ReadAt(addr Addr, buf []byte) {
	for len(buf) > 0 {
		off := int(addr & (pageSize - 1))
		n := pageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		if p := m.page(addr, false); p != nil {
			copy(buf[:n], p[off:off+n])
		} else {
			for i := 0; i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		addr += Addr(n)
	}
}

// WriteAt stores buf at addr.
func (m *Memory) WriteAt(addr Addr, buf []byte) {
	for len(buf) > 0 {
		off := int(addr & (pageSize - 1))
		n := pageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		copy(m.page(addr, true)[off:off+n], buf[:n])
		buf = buf[n:]
		addr += Addr(n)
	}
}

// FootprintBytes reports how many bytes of backing store have been allocated
// (page granular).
func (m *Memory) FootprintBytes() uint64 {
	return uint64(len(m.pages)) * pageSize
}

// The LoadN/StoreN methods are the allocation-free fast path for scalar
// access: they index the page directly instead of copying through a caller
// buffer, falling back to ReadAt/WriteAt only when the value straddles a
// page boundary. The generic ReadN/WriteN helpers dispatch here, keeping
// every call site on the zero-allocation path without interface-induced
// buffer escapes.

// Load16 loads a little-endian uint16 at addr.
func (m *Memory) Load16(addr Addr) uint16 {
	off := int(addr & (pageSize - 1))
	if off+2 <= pageSize {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint16(p[off:])
	}
	var buf [2]byte
	m.ReadAt(addr, buf[:])
	return binary.LittleEndian.Uint16(buf[:])
}

// Load32 loads a little-endian uint32 at addr.
func (m *Memory) Load32(addr Addr) uint32 {
	off := int(addr & (pageSize - 1))
	if off+4 <= pageSize {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(p[off:])
	}
	var buf [4]byte
	m.ReadAt(addr, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

// Load64 loads a little-endian uint64 at addr.
func (m *Memory) Load64(addr Addr) uint64 {
	off := int(addr & (pageSize - 1))
	if off+8 <= pageSize {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off:])
	}
	var buf [8]byte
	m.ReadAt(addr, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// Store16 stores a little-endian uint16 at addr.
func (m *Memory) Store16(addr Addr, v uint16) {
	off := int(addr & (pageSize - 1))
	if off+2 <= pageSize {
		binary.LittleEndian.PutUint16(m.page(addr, true)[off:], v)
		return
	}
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], v)
	m.WriteAt(addr, buf[:])
}

// Store32 stores a little-endian uint32 at addr.
func (m *Memory) Store32(addr Addr, v uint32) {
	off := int(addr & (pageSize - 1))
	if off+4 <= pageSize {
		binary.LittleEndian.PutUint32(m.page(addr, true)[off:], v)
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	m.WriteAt(addr, buf[:])
}

// Store64 stores a little-endian uint64 at addr.
func (m *Memory) Store64(addr Addr, v uint64) {
	off := int(addr & (pageSize - 1))
	if off+8 <= pageSize {
		binary.LittleEndian.PutUint64(m.page(addr, true)[off:], v)
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	m.WriteAt(addr, buf[:])
}

// Read64 loads a little-endian uint64 from s at addr.
func Read64(s Space, addr Addr) uint64 {
	if m, ok := s.(*Memory); ok {
		return m.Load64(addr)
	}
	var buf [8]byte
	s.ReadAt(addr, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// Write64 stores a little-endian uint64 to s at addr.
func Write64(s Space, addr Addr, v uint64) {
	if m, ok := s.(*Memory); ok {
		m.Store64(addr, v)
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	s.WriteAt(addr, buf[:])
}

// Read32 loads a little-endian uint32 from s at addr.
func Read32(s Space, addr Addr) uint32 {
	if m, ok := s.(*Memory); ok {
		return m.Load32(addr)
	}
	var buf [4]byte
	s.ReadAt(addr, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

// Write32 stores a little-endian uint32 to s at addr.
func Write32(s Space, addr Addr, v uint32) {
	if m, ok := s.(*Memory); ok {
		m.Store32(addr, v)
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	s.WriteAt(addr, buf[:])
}

// Read16 loads a little-endian uint16 from s at addr.
func Read16(s Space, addr Addr) uint16 {
	if m, ok := s.(*Memory); ok {
		return m.Load16(addr)
	}
	var buf [2]byte
	s.ReadAt(addr, buf[:])
	return binary.LittleEndian.Uint16(buf[:])
}

// Write16 stores a little-endian uint16 to s at addr.
func Write16(s Space, addr Addr, v uint16) {
	if m, ok := s.(*Memory); ok {
		m.Store16(addr, v)
		return
	}
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], v)
	s.WriteAt(addr, buf[:])
}

// Allocator hands out non-overlapping address ranges from a memory region,
// used to lay out hash tables and key-value arrays in simulated memory.
type Allocator struct {
	next  Addr
	limit Addr
}

// NewAllocator returns an allocator over [base, base+size).
func NewAllocator(base Addr, size uint64) *Allocator {
	return &Allocator{next: base, limit: base + Addr(size)}
}

// Alloc reserves size bytes aligned to align (a power of two) and returns the
// base address. It panics when the region is exhausted: experiment setups
// size their arenas statically, so exhaustion is a configuration bug.
func (a *Allocator) Alloc(size uint64, align uint64) Addr {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: bad alignment %d", align))
	}
	base := (a.next + Addr(align-1)) &^ Addr(align-1)
	if base+Addr(size) > a.limit || base+Addr(size) < base {
		panic(fmt.Sprintf("mem: arena exhausted allocating %d bytes", size))
	}
	a.next = base + Addr(size)
	return base
}

// AllocLines reserves n cache lines, line-aligned.
func (a *Allocator) AllocLines(n uint64) Addr {
	return a.Alloc(n*LineSize, LineSize)
}

// Used reports the number of bytes handed out so far, including alignment
// padding.
func (a *Allocator) Used(base Addr) uint64 { return uint64(a.next - base) }
