package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"halo/internal/sim"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	data := []byte("hello, simulated memory")
	m.WriteAt(0x1000, data)
	got := make([]byte, len(data))
	m.ReadAt(0x1000, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestMemoryUnwrittenReadsZero(t *testing.T) {
	m := NewMemory()
	buf := []byte{1, 2, 3, 4}
	m.ReadAt(0xdeadbeef, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatalf("unwritten memory read non-zero: %v", buf)
		}
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	// Write spanning a 64 KiB page boundary.
	addr := Addr(pageSize - 3)
	data := []byte{9, 8, 7, 6, 5, 4}
	m.WriteAt(addr, data)
	got := make([]byte, len(data))
	m.ReadAt(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("cross-page round trip mismatch: %v", got)
	}
}

func TestMemoryPropertyRoundTrip(t *testing.T) {
	m := NewMemory()
	check := func(addrRaw uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := Addr(addrRaw)
		m.WriteAt(addr, data)
		got := make([]byte, len(data))
		m.ReadAt(addr, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScalarHelpers(t *testing.T) {
	m := NewMemory()
	Write64(m, 8, 0x0123456789abcdef)
	if got := Read64(m, 8); got != 0x0123456789abcdef {
		t.Fatalf("Read64 = %#x", got)
	}
	Write32(m, 100, 0xcafebabe)
	if got := Read32(m, 100); got != 0xcafebabe {
		t.Fatalf("Read32 = %#x", got)
	}
	Write16(m, 200, 0xbeef)
	if got := Read16(m, 200); got != 0xbeef {
		t.Fatalf("Read16 = %#x", got)
	}
	// Little-endian layout check: low byte first.
	var b [1]byte
	m.ReadAt(8, b[:])
	if b[0] != 0xef {
		t.Fatalf("Write64 is not little-endian: first byte %#x", b[0])
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0) != 0 || LineAddr(63) != 0 || LineAddr(64) != 64 || LineAddr(130) != 128 {
		t.Fatal("LineAddr misaligned")
	}
}

func TestAllocatorAlignmentAndDisjointness(t *testing.T) {
	a := NewAllocator(0x100, 1<<20)
	p1 := a.Alloc(10, 64)
	p2 := a.Alloc(100, 64)
	p3 := a.AllocLines(2)
	if p1%64 != 0 || p2%64 != 0 || p3%64 != 0 {
		t.Fatalf("allocations not aligned: %#x %#x %#x", p1, p2, p3)
	}
	if p1+10 > p2 || p2+100 > p3 {
		t.Fatalf("allocations overlap: %#x %#x %#x", p1, p2, p3)
	}
}

func TestAllocatorExhaustionPanics(t *testing.T) {
	a := NewAllocator(0, 128)
	a.Alloc(100, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted allocator did not panic")
		}
	}()
	a.Alloc(100, 1)
}

func TestDRAMRowBufferLocality(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	// First access to a row: miss.
	t1 := d.Access(0, 0, false)
	// Same row (same bank route needs same line modulo channels*banks; use
	// the exact same address): hit, cheaper.
	t2 := d.Access(t1.Done, 0, false)
	if t2.Latency() >= t1.Latency() {
		t.Fatalf("row hit latency %d not cheaper than miss %d", t2.Latency(), t1.Latency())
	}
	s := d.Stats()
	if s.RowHits != 1 || s.RowMisses != 1 || s.Reads != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDRAMBankContention(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	// Two simultaneous accesses to the same bank serialise.
	a := d.Access(0, 0, false)
	b := d.Access(0, 0, false)
	if b.Done <= a.Done {
		t.Fatalf("same-bank accesses did not serialise: %d vs %d", b.Done, a.Done)
	}
	// Accesses to different channels overlap almost fully.
	d2 := NewDRAM(DefaultDRAMConfig())
	c1 := d2.Access(0, 0, false)
	c2 := d2.Access(0, LineSize, false) // next line maps to the other channel
	if c2.Done > c1.Done+DefaultDRAMConfig().BusCycles {
		t.Fatalf("different-channel accesses serialised: %d vs %d", c2.Done, c1.Done)
	}
}

func TestDRAMWriteCounting(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	d.Access(0, 0, true)
	if s := d.Stats(); s.Writes != 1 || s.Reads != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDRAMCompletionMonotonicWithIssue(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	var prev sim.Ticket
	for i := 0; i < 100; i++ {
		tk := d.Access(sim.Cycle(i*10), Addr(i*LineSize), false)
		if tk.Done < tk.Issued {
			t.Fatal("ticket completes before issue")
		}
		if i > 0 && tk.Done+1000 < prev.Done {
			t.Fatal("wildly non-monotonic completion")
		}
		prev = tk
	}
}
