package flowwire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"halo/internal/flowserve"
)

// wkey builds a 20-byte key (the packet header-key width) from a number.
func wkey(i uint64) []byte {
	k := make([]byte, 20)
	binary.LittleEndian.PutUint64(k, i)
	binary.LittleEndian.PutUint64(k[8:], i*0x9e3779b97f4a7c15)
	return k
}

// startServer runs a server over a fresh table on a loopback listener and
// tears both down with the test.
func startServer(t testing.TB, tblCfg flowserve.Config, srvCfg Config) (*Server, *flowserve.Table, string) {
	t.Helper()
	tbl, err := flowserve.New(tblCfg)
	if err != nil {
		t.Fatal(err)
	}
	srvCfg.Table = tbl
	srv, err := NewServer(srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveErr; err != nil && err != ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, tbl, ln.Addr().String()
}

func dialTest(t testing.TB, addr string, opts Options) *Client {
	t.Helper()
	cl, err := Dial(addr, opts)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestClientServerOps(t *testing.T) {
	_, tbl, addr := startServer(t, flowserve.Config{Shards: 4, Entries: 4096, KeyLen: 20}, Config{})
	cl := dialTest(t, addr, Options{Conns: 2})

	if h := cl.Hello(); h.KeyLen != 20 || h.Shards != 4 || h.Capacity != tbl.Capacity() {
		t.Fatalf("HELLO = %+v", h)
	}

	const n = 500
	for i := uint64(0); i < n; i++ {
		if err := cl.Insert(wkey(i), i*7+1); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	if got := tbl.Size(); got != n {
		t.Fatalf("server table size = %d, want %d", got, n)
	}
	if err := cl.Insert(wkey(1), 9); !errors.Is(err, flowserve.ErrKeyExists) {
		t.Fatalf("duplicate insert = %v, want ErrKeyExists", err)
	}
	if err := cl.Insert(make([]byte, 3), 9); !errors.Is(err, flowserve.ErrKeyLen) {
		t.Fatalf("short-key insert = %v, want ErrKeyLen", err)
	}

	for i := uint64(0); i < n; i++ {
		v, ok := cl.Lookup(wkey(i))
		if !ok || v != i*7+1 {
			t.Fatalf("Lookup(%d) = (%d,%v), want (%d,true)", i, v, ok, i*7+1)
		}
	}
	if _, ok := cl.Lookup(wkey(n + 3)); ok {
		t.Fatal("absent key hit over the wire")
	}
	if _, ok := cl.Lookup(make([]byte, 7)); ok {
		t.Fatal("wrong-length key hit over the wire")
	}

	if !cl.Update(wkey(2), 999) {
		t.Fatal("Update of a present key failed")
	}
	if v, ok := cl.Lookup(wkey(2)); !ok || v != 999 {
		t.Fatalf("value after Update = (%d,%v)", v, ok)
	}
	if cl.Update(wkey(n+8), 1) {
		t.Fatal("Update of an absent key succeeded")
	}
	if !cl.Delete(wkey(2)) {
		t.Fatal("Delete of a present key failed")
	}
	if cl.Delete(wkey(2)) {
		t.Fatal("Delete of an absent key succeeded")
	}
	if _, ok := cl.Lookup(wkey(2)); ok {
		t.Fatal("deleted key still hits")
	}

	if err := cl.Err(); err != nil {
		t.Fatalf("client error after clean ops: %v", err)
	}
}

// TestClientLookupManyMatchesLocal drives the same batches through the wire
// and through the table directly, byte-comparing every result.
func TestClientLookupManyMatchesLocal(t *testing.T) {
	_, tbl, addr := startServer(t, flowserve.Config{Shards: 8, Entries: 8192, KeyLen: 20}, Config{})
	cl := dialTest(t, addr, Options{})
	const n = 3000
	for i := uint64(0); i < n; i++ {
		if err := tbl.Insert(wkey(i), i^0xf00d); err != nil {
			t.Fatal(err)
		}
	}
	const batch = 57
	keys := make([][]byte, batch)
	remote := make([]flowserve.Result, batch)
	local := make([]flowserve.Result, batch)
	for lo := uint64(0); lo < n+300; lo += batch {
		for j := range keys {
			keys[j] = wkey(lo + uint64(j)*2)
		}
		rh := cl.LookupMany(keys, remote)
		lh := tbl.LookupMany(keys, local)
		if rh != lh {
			t.Fatalf("remote hits %d, local hits %d", rh, lh)
		}
		for j := range keys {
			if remote[j] != local[j] {
				t.Fatalf("key %d: remote %+v, local %+v", j, remote[j], local[j])
			}
		}
	}
	if err := cl.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestClientLookupManyMixedKeyLengths(t *testing.T) {
	_, tbl, addr := startServer(t, flowserve.Config{Shards: 2, Entries: 512, KeyLen: 20}, Config{})
	cl := dialTest(t, addr, Options{})
	if err := tbl.Insert(wkey(1), 11); err != nil {
		t.Fatal(err)
	}
	keys := [][]byte{wkey(1), make([]byte, 3), wkey(2), nil}
	results := make([]flowserve.Result, len(keys))
	if hits := cl.LookupMany(keys, results); hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	if !results[0].OK || results[0].Value != 11 {
		t.Fatalf("present key = %+v", results[0])
	}
	for _, j := range []int{1, 2, 3} {
		if results[j] != (flowserve.Result{}) {
			t.Fatalf("key %d = %+v, want a miss", j, results[j])
		}
	}
	// All-invalid batch never touches the wire.
	if hits := cl.LookupMany([][]byte{nil, make([]byte, 5)}, results); hits != 0 {
		t.Fatalf("all-invalid batch hits = %d", hits)
	}
}

func TestServerStatsOp(t *testing.T) {
	srv, tbl, addr := startServer(t, flowserve.Config{Shards: 2, Entries: 512, KeyLen: 20}, Config{})
	cl := dialTest(t, addr, Options{})
	if err := cl.Insert(wkey(1), 5); err != nil {
		t.Fatal(err)
	}
	cl.Lookup(wkey(1))
	counters, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if counters["flowserve.inserts"] != 1 || counters["flowserve.lookups"] != 1 {
		t.Fatalf("table counters over the wire = %v", counters)
	}
	if counters["flowwire.conns.accepted"] != 1 || counters["flowwire.frames.accepted"] < 3 {
		t.Fatalf("server counters over the wire = %v", counters)
	}
	_ = srv
	_ = tbl
}

// rawConn dials without the client, for hand-crafted frames.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

// readReply reads one frame with a deadline.
func readReply(t *testing.T, nc net.Conn) Frame {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var f Frame
	if err := ReadFrame(nc, 0, &f); err != nil {
		t.Fatalf("reading reply: %v", err)
	}
	return f
}

func TestServerRejectsUnknownOp(t *testing.T) {
	_, _, addr := startServer(t, flowserve.Config{Shards: 1, Entries: 128, KeyLen: 20}, Config{})
	nc := rawConn(t, addr)
	nc.Write(AppendFrame(nil, &Frame{Op: Op(99), ReqID: 41}))
	f := readReply(t, nc)
	if f.Status != StatusErrOp || f.ReqID != 41 {
		t.Fatalf("unknown op reply = %+v, want ERR_OP/41", f)
	}
	// An unknown op is a typed reply, not a connection killer.
	nc.Write(AppendFrame(nil, &Frame{Op: OpLookup, ReqID: 42, Payload: wkey(1)}))
	f = readReply(t, nc)
	if f.Op != OpLookup || f.Status != StatusOK || f.ReqID != 42 {
		t.Fatalf("lookup after unknown op = %+v", f)
	}
}

func TestServerRejectsBadVersion(t *testing.T) {
	_, _, addr := startServer(t, flowserve.Config{Shards: 1, Entries: 128, KeyLen: 20}, Config{})
	nc := rawConn(t, addr)
	buf := AppendFrame(nil, &Frame{Op: OpLookup, ReqID: 7, Payload: wkey(1)})
	buf[4] = Version + 9
	nc.Write(buf)
	f := readReply(t, nc)
	if f.Status != StatusErrVersion || f.ReqID != 7 {
		t.Fatalf("bad-version reply = %+v, want ERR_VERSION/7", f)
	}
	assertClosed(t, nc)
}

func TestServerRejectsOversizedFrame(t *testing.T) {
	_, _, addr := startServer(t, flowserve.Config{Shards: 1, Entries: 128, KeyLen: 20}, Config{MaxFrame: 1024})
	nc := rawConn(t, addr)
	nc.Write(binary.LittleEndian.AppendUint32(nil, 1<<20))
	f := readReply(t, nc)
	if f.Status != StatusErrOversized {
		t.Fatalf("oversized reply = %+v, want ERR_OVERSIZED", f)
	}
	assertClosed(t, nc)
}

func TestServerRejectsShortLengthFrame(t *testing.T) {
	_, _, addr := startServer(t, flowserve.Config{Shards: 1, Entries: 128, KeyLen: 20}, Config{})
	nc := rawConn(t, addr)
	nc.Write(binary.LittleEndian.AppendUint32(nil, headerRest-3))
	f := readReply(t, nc)
	if f.Status != StatusErrMalformed {
		t.Fatalf("short-length reply = %+v, want ERR_MALFORMED", f)
	}
	assertClosed(t, nc)
}

func TestServerClosesOnHalfFrame(t *testing.T) {
	srv, _, addr := startServer(t, flowserve.Config{Shards: 1, Entries: 128, KeyLen: 20}, Config{})
	nc := rawConn(t, addr)
	full := AppendFrame(nil, &Frame{Op: OpLookup, ReqID: 3, Payload: wkey(1)})
	nc.Write(full[:len(full)-4]) // die mid-frame
	nc.Close()
	// The server closes without a reply and without counting an accepted
	// frame (nothing to lose at drain time).
	deadline := time.Now().Add(5 * time.Second)
	for srv.c.connsClosed.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never closed the half-frame connection")
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.c.framesAccepted.Load(); got != 0 {
		t.Fatalf("half frame counted as accepted (%d)", got)
	}
	if got := srv.c.framesRejected.Load(); got != 0 {
		t.Fatalf("half frame counted as rejected (%d)", got)
	}
}

func TestServerRejectsMalformedLookupManyPayload(t *testing.T) {
	_, tbl, addr := startServer(t, flowserve.Config{Shards: 1, Entries: 128, KeyLen: 20}, Config{})
	if err := tbl.Insert(wkey(1), 1); err != nil {
		t.Fatal(err)
	}
	nc := rawConn(t, addr)

	// Count claims 5 keys, body carries 2.
	payload := binary.LittleEndian.AppendUint32(nil, 5)
	payload = binary.LittleEndian.AppendUint16(payload, 20)
	payload = append(payload, bytes.Repeat([]byte{1}, 40)...)
	nc.Write(AppendFrame(nil, &Frame{Op: OpLookupMany, ReqID: 51, Payload: payload}))
	f := readReply(t, nc)
	if f.Status != StatusErrMalformed || f.ReqID != 51 {
		t.Fatalf("count-mismatch reply = %+v, want ERR_MALFORMED/51", f)
	}

	// Wrong per-frame key length is its own typed error.
	payload = appendLookupManyReq(nil, [][]byte{make([]byte, 16)}, 16)
	nc.Write(AppendFrame(nil, &Frame{Op: OpLookupMany, ReqID: 52, Payload: payload}))
	f = readReply(t, nc)
	if f.Status != StatusErrKeyLen || f.ReqID != 52 {
		t.Fatalf("key-length reply = %+v, want ERR_KEYLEN/52", f)
	}

	// The connection survived both typed errors.
	nc.Write(AppendFrame(nil, &Frame{Op: OpLookup, ReqID: 53, Payload: wkey(1)}))
	f = readReply(t, nc)
	if f.Status != StatusOK || f.Payload[0] != 1 {
		t.Fatalf("lookup after payload errors = %+v", f)
	}
}

// assertClosed verifies the server hangs up after a fatal protocol error.
func assertClosed(t *testing.T, nc net.Conn) {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := nc.Read(one[:]); err != io.EOF {
		t.Fatalf("connection still open after fatal frame: %v", err)
	}
}

// TestServerCoalescesPipelinedLookups floods one connection with pipelined
// frames and checks the server actually merged some into shared batch calls
// while answering each with its own correct reply.
func TestServerCoalescesPipelinedLookups(t *testing.T) {
	srv, tbl, addr := startServer(t, flowserve.Config{Shards: 4, Entries: 4096, KeyLen: 20}, Config{Window: 128})
	const n = 1000
	for i := uint64(0); i < n; i++ {
		if err := tbl.Insert(wkey(i), i+1); err != nil {
			t.Fatal(err)
		}
	}
	nc := rawConn(t, addr)
	const frames = 400
	var buf []byte
	for i := uint64(0); i < frames; i++ {
		if i%4 == 0 {
			payload := appendLookupManyReq(nil, [][]byte{wkey(i % n), wkey((i + 1) % n)}, 20)
			buf = AppendFrame(buf, &Frame{Op: OpLookupMany, ReqID: i, Payload: payload})
		} else {
			buf = AppendFrame(buf, &Frame{Op: OpLookup, ReqID: i, Payload: wkey(i % n)})
		}
	}
	if _, err := nc.Write(buf); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < frames; i++ {
		f := readReply(t, nc)
		if f.ReqID != i || f.Status != StatusOK {
			t.Fatalf("reply %d = %+v (replies must stay in FIFO order)", i, f)
		}
		if f.Op == OpLookup {
			if f.Payload[0] != 1 || binary.LittleEndian.Uint64(f.Payload[1:]) != i%n+1 {
				t.Fatalf("reply %d carried %v", i, f.Payload)
			}
		} else {
			res := make([]flowserve.Result, 2)
			if c, err := parseLookupManyReply(f.Payload, res); err != nil || c != 2 || !res[0].OK || res[0].Value != i%n+1 {
				t.Fatalf("batched reply %d = %+v (%v)", i, res, err)
			}
		}
	}
	calls := srv.c.coalesceCalls.Load()
	merged := srv.c.coalesceFrames.Load()
	if merged != frames {
		t.Fatalf("coalesce ledger saw %d frames, want %d", merged, frames)
	}
	if calls == frames {
		t.Log("no frames were merged (timing-dependent); coalescing not exercised this run")
	} else {
		t.Logf("coalesced %d frames into %d batch calls", merged, calls)
	}
}

// TestMutationOrderingThroughCoalescer interleaves lookups and mutations of
// one key on one pipelined connection: FIFO semantics require each lookup
// to see exactly the preceding mutation's state.
func TestMutationOrderingThroughCoalescer(t *testing.T) {
	_, _, addr := startServer(t, flowserve.Config{Shards: 1, Entries: 128, KeyLen: 20}, Config{Window: 64})
	nc := rawConn(t, addr)
	k := wkey(7)
	var buf []byte
	id := uint64(0)
	emit := func(op Op, payload []byte) uint64 {
		id++
		buf = AppendFrame(buf, &Frame{Op: op, ReqID: id, Payload: payload})
		return id
	}
	type expect struct {
		id    uint64
		op    Op
		value uint64
		ok    bool
	}
	var wants []expect
	for round := uint64(1); round <= 20; round++ {
		ins := make([]byte, 8+len(k))
		binary.LittleEndian.PutUint64(ins, round*10)
		copy(ins[8:], k)
		wants = append(wants, expect{emit(OpInsert, ins), OpInsert, 0, true})
		wants = append(wants, expect{emit(OpLookup, k), OpLookup, round * 10, true})
		wants = append(wants, expect{emit(OpDelete, k), OpDelete, 0, true})
		wants = append(wants, expect{emit(OpLookup, k), OpLookup, 0, false})
	}
	if _, err := nc.Write(buf); err != nil {
		t.Fatal(err)
	}
	for _, w := range wants {
		f := readReply(t, nc)
		if f.ReqID != w.id || f.Status != StatusOK {
			t.Fatalf("reply = %+v, want id %d OK", f, w.id)
		}
		if w.op == OpLookup {
			ok := f.Payload[0] != 0
			v := binary.LittleEndian.Uint64(f.Payload[1:])
			if ok != w.ok || (ok && v != w.value) {
				t.Fatalf("lookup %d = (%d,%v), want (%d,%v)", w.id, v, ok, w.value, w.ok)
			}
		}
	}
}
