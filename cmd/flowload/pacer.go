package main

import (
	"runtime"
	"time"
)

// pacer hands out the intended send time of each batch tick in a fixed-rate
// open-loop schedule. The schedule is decided up front — tick i is due at
// start + i*interval — and never adjusts to how the server is doing. That is
// the point: a closed loop only issues the next request after the previous
// one returns, so a server stall quietly throttles the load and the stall
// barely shows in the latency record (coordinated omission). Here the
// schedule keeps advancing; a worker that claims a tick whose due time has
// already passed sends immediately, and the batch's latency is measured from
// the *intended* send time, so queueing delay a real open-world client would
// have suffered is charged to the result.
//
// Workers share one atomic tick counter (the claim is the only coordination)
// and call wait(tick) before sending; ticks are interleaved across workers,
// not partitioned, so the aggregate offered rate is exact regardless of the
// worker count.
type pacer struct {
	start    time.Time
	interval time.Duration
}

// newPacer schedules batches so that ratePerSec lookups/sec are offered in
// aggregate, batch lookups per tick.
func newPacer(start time.Time, ratePerSec float64, batch int) *pacer {
	return &pacer{
		start:    start,
		interval: time.Duration(float64(batch) / ratePerSec * float64(time.Second)),
	}
}

// intended returns tick's scheduled send time.
func (p *pacer) intended(tick int64) time.Time {
	return p.start.Add(time.Duration(tick) * p.interval)
}

// spinThreshold is how much of the wait is left to the scheduler-yield spin.
// time.Sleep on Linux routinely overshoots by tens of microseconds; handing
// the tail to a yield loop keeps tick times honest at rates where the
// interval itself is only a few hundred microseconds.
const spinThreshold = 100 * time.Microsecond

// wait blocks until tick's intended send time and returns it. A tick already
// past due returns immediately — the backlog shows up as latency, never as a
// silently skipped send.
func (p *pacer) wait(tick int64) time.Time {
	due := p.intended(tick)
	for {
		d := time.Until(due)
		if d <= 0 {
			return due
		}
		if d > spinThreshold {
			time.Sleep(d - spinThreshold)
			continue
		}
		runtime.Gosched()
	}
}
