package flowwire

import (
	"sync"
	"sync/atomic"
	"testing"

	"halo/internal/flowserve"
	"halo/internal/sim"
)

// TestLoopbackStress is the wire-level counterpart of flowserve's
// TestSeqlockStress (run under -race: CI does): concurrent remote readers
// over pooled pipelined connections race a remote churn writer and a local
// in-process writer mutating the same table behind the server. The key
// universe splits the same way — resident keys must always hit with their
// exact value, churn keys may miss but a hit must carry the key's own
// value, ghost keys must never hit — which catches torn reads, reply
// misrouting (a reqID mix-up would pair a reply with the wrong batch) and
// coalescer ordering bugs in one net.
func TestLoopbackStress(t *testing.T) {
	const (
		residents = 1200
		churners  = 1200
		ghosts    = 1200
		clients   = 2
		readersPC = 3 // reader goroutines per client
		readerOps = 1500
		writerOps = 4000
	)
	srv, tbl, addr := startServer(t,
		flowserve.Config{Shards: 4, Entries: residents + churners + 2048, KeyLen: 20},
		Config{Window: 32, CoalesceFrames: 4})
	defer srv.Close()

	valueFor := func(i uint64) uint64 { return i*0x9e3779b9 + 1 }
	for i := uint64(0); i < residents; i++ {
		if err := tbl.Insert(wkey(i), valueFor(i)); err != nil {
			t.Fatalf("seed insert %d: %v", i, err)
		}
	}

	var fail atomic.Value
	report := func(msg string) { fail.CompareAndSwap(nil, msg) }

	var wg sync.WaitGroup

	// Local writer: in-process churn on the shared table, as a collocated
	// NF would do next to the server.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := sim.NewRand(0x10ca1)
		for op := 0; op < writerOps && fail.Load() == nil; op++ {
			i := residents + rng.Uint64n(churners)
			if rng.Uint64()&1 == 0 {
				err := tbl.Insert(wkey(i), valueFor(i))
				if err != nil && err != flowserve.ErrKeyExists && err != flowserve.ErrTableFull {
					report("local writer Insert: " + err.Error())
				}
			} else {
				tbl.Delete(wkey(i))
			}
		}
	}()

	for ci := 0; ci < clients; ci++ {
		cl := dialTest(t, addr, Options{Conns: 2})

		// Remote churn writer on this client.
		wg.Add(1)
		go func(cl *Client, seed uint64) {
			defer wg.Done()
			rng := sim.NewRand(seed)
			for op := 0; op < writerOps/2 && fail.Load() == nil; op++ {
				i := residents + rng.Uint64n(churners)
				if rng.Uint64()&1 == 0 {
					err := cl.Insert(wkey(i), valueFor(i))
					if err != nil && err != flowserve.ErrKeyExists && err != flowserve.ErrTableFull {
						report("remote writer Insert: " + err.Error())
					}
				} else {
					cl.Delete(wkey(i))
				}
			}
		}(cl, 0xa110<<8|uint64(ci))

		for r := 0; r < readersPC; r++ {
			wg.Add(1)
			go func(cl *Client, seed uint64) {
				defer wg.Done()
				rng := sim.NewRand(seed)
				const batch = 24
				keys := make([][]byte, batch)
				idx := make([]uint64, batch)
				results := make([]flowserve.Result, batch)
				for op := 0; op < readerOps && fail.Load() == nil; op++ {
					for j := range keys {
						var i uint64
						switch rng.Uint64n(3) {
						case 0:
							i = rng.Uint64n(residents)
						case 1:
							i = residents + rng.Uint64n(churners)
						default:
							i = residents + churners + rng.Uint64n(ghosts)
						}
						idx[j] = i
						keys[j] = wkey(i)
					}
					if op%8 == 0 {
						// Exercise the single-key LOOKUP path too.
						i := idx[0]
						v, ok := cl.Lookup(keys[0])
						checkStress(report, i, v, ok, residents, churners, valueFor)
						continue
					}
					cl.LookupMany(keys, results)
					if cl.Err() != nil {
						report("client transport error: " + cl.Err().Error())
						return
					}
					for j := range keys {
						checkStress(report, idx[j], results[j].Value, results[j].OK, residents, churners, valueFor)
					}
				}
			}(cl, 0x4ead<<8|uint64(ci*readersPC+r))
		}
	}
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}

	// Post-quiescence: residents intact through the wire, and the server
	// actually coalesced pipelined traffic.
	cl := dialTest(t, addr, Options{})
	for i := uint64(0); i < residents; i += 7 {
		if v, ok := cl.Lookup(wkey(i)); !ok || v != valueFor(i) {
			t.Fatalf("resident %d = (%d,%v) after stress", i, v, ok)
		}
	}
	counters, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if counters["flowwire.frames.accepted"] == 0 || counters["flowserve.lookups"] == 0 {
		t.Fatalf("stress exercised nothing: %v", counters)
	}
	t.Logf("stress: %d frames, %d coalesce calls for %d frames, %d lookups, %d seqlock retries",
		counters["flowwire.frames.accepted"], counters["flowwire.coalesce.calls"],
		counters["flowwire.coalesce.frames"], counters["flowserve.lookups"],
		counters["flowserve.lookup.retries"])
}

// checkStress classifies a key index and validates its lookup outcome.
func checkStress(report func(string), i, v uint64, ok bool, residents, churners uint64, valueFor func(uint64) uint64) {
	switch {
	case i < residents:
		if !ok {
			report("resident key missed over the wire")
		} else if v != valueFor(i) {
			report("resident key hit with a foreign value")
		}
	case i < residents+churners:
		if ok && v != valueFor(i) {
			report("churn key hit with a foreign value (torn or misrouted reply)")
		}
	default:
		if ok {
			report("ghost key hit: a value for a key never inserted")
		}
	}
}
