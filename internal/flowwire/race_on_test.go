//go:build race

package flowwire

// raceEnabled lets allocation-count gates skip under the race detector,
// whose instrumentation allocates on synchronization operations.
const raceEnabled = true
