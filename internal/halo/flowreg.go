// Package halo implements the paper's contribution: distributed near-cache
// accelerators for hash-table lookup, one per LLC slice / CHA, together with
// the query distributor glue, the hardware-assisted lock protocol, the
// linear-counting flow register, and the hybrid software/accelerator
// execution controller.
package halo

import (
	"math"

	"halo/internal/hashfn"
)

// FlowRegister estimates the number of active flows in a time window with
// linear counting over a small bit array (paper §4.6, Whang et al.). Each
// lookup query sets bit (H mod S); the estimate is m·ln(m/u) where u is the
// number of unset bits.
type FlowRegister struct {
	bits []uint64
	m    uint
}

// NewFlowRegister builds a register with m bits (rounded up to a multiple of
// 64; the paper's hardware uses 32). m must be positive.
func NewFlowRegister(m uint) *FlowRegister {
	if m == 0 {
		panic("halo: flow register needs at least one bit")
	}
	return &FlowRegister{bits: make([]uint64, (m+63)/64), m: m}
}

// Bits returns the register size in bits.
func (f *FlowRegister) Bits() uint { return f.m }

// Observe records one lookup's primary hash.
func (f *FlowRegister) Observe(primaryHash uint64) {
	bit := uint(primaryHash % uint64(f.m))
	f.bits[bit/64] |= 1 << (bit % 64)
}

// ObserveKey hashes a raw key with the flow-register seed and records it.
func (f *FlowRegister) ObserveKey(key []byte) {
	f.Observe(hashfn.Hash(hashfn.SeedFlowReg, key))
}

// unset counts zero bits.
func (f *FlowRegister) unset() uint {
	set := uint(0)
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	return f.m - set
}

// Saturated reports whether every bit is set, in which case Estimate can
// only report a lower bound.
func (f *FlowRegister) Saturated() bool { return f.unset() == 0 }

// Estimate returns the linear-counting cardinality estimate for the current
// window. A saturated register returns m·ln(m) + 1, the largest value the
// estimator can express (the true count is at least that large in
// expectation).
func (f *FlowRegister) Estimate() float64 {
	u := f.unset()
	if u == 0 {
		return float64(f.m)*math.Log(float64(f.m)) + 1
	}
	return float64(f.m) * math.Log(float64(f.m)/float64(u))
}

// Reset clears the window (the periodic scan of paper §4.6 reads and
// clears).
func (f *FlowRegister) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
}

// Merge ORs another register of the same size into this one, combining the
// per-accelerator registers into a chip-wide estimate.
func (f *FlowRegister) Merge(o *FlowRegister) {
	if o.m != f.m {
		panic("halo: merging flow registers of different sizes")
	}
	for i := range f.bits {
		f.bits[i] |= o.bits[i]
	}
}
