package experiments

import (
	"io"

	"halo/internal/metrics"
	"halo/internal/power"
)

// Table4Result reproduces Table 4 (power and area) plus the energy
// efficiency headline.
type Table4Result struct {
	Rows            []power.Table4Row
	EfficiencyVs1MB float64
	HaloAreaPercent float64
	Table           *metrics.Table
	EfficiencyTable *metrics.Table
}

// table4Row is the single point's measurement: the analytic power-model
// outputs (no simulation involved).
type table4Row struct {
	Rows            []power.Table4Row
	EfficiencyVs1MB float64
	HaloAreaPercent float64
}

// Table4Sweep exposes the power-model evaluation as a one-point sweep.
func Table4Sweep() Sweep {
	return Sweep{
		Points: func(cfg Config) []Point {
			return []Point{{Experiment: "table4", Index: 0, Label: "power-model"}}
		},
		RunPoint: func(cfg Config, p Point) any {
			return table4Row{
				Rows:            power.Table4(),
				EfficiencyVs1MB: power.EfficiencyVsTCAM(1 << 20),
				HaloAreaPercent: power.HaloChipAreaPercent(),
			}
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			r := assembleTable4(rows)
			r.Table.Render(w)
			r.EfficiencyTable.Render(w)
		},
	}
}

// RunTable4 reproduces Table 4.
func RunTable4(cfg Config) *Table4Result {
	return assembleTable4(runSerial(cfg, Table4Sweep()))
}

func assembleTable4(rows []any) *Table4Result {
	row := rows[0].(table4Row)
	res := &Table4Result{
		Rows:            row.Rows,
		EfficiencyVs1MB: row.EfficiencyVs1MB,
		HaloAreaPercent: row.HaloAreaPercent,
	}
	res.Table = metrics.NewTable("Table 4: power and area of hardware flow-classification approaches",
		"solution", "area/tiles", "static mW", "dynamic nJ/query")
	res.Table.SetCaption("anchored on the paper's 22nm McPAT/CACTI outputs")
	for _, r := range res.Rows {
		res.Table.AddRow(r.Solution, r.AreaTiles, r.StaticMW, r.DynamicNJPerQuery)
	}

	res.EfficiencyTable = metrics.NewTable("Energy efficiency (dynamic energy per query vs HALO)",
		"tcam-capacity", "tcam nJ/query", "sram-tcam nJ/query", "halo nJ/query", "halo advantage")
	for _, capBytes := range []uint64{1 << 10, 10 << 10, 100 << 10, 1 << 20} {
		tc := power.TCAMEstimate(capBytes)
		sr := power.SRAMTCAMEstimate(capBytes)
		ha := power.HaloAcceleratorEstimate()
		res.EfficiencyTable.AddRow(sizeName(capBytes), tc.DynamicNJPerQuery,
			sr.DynamicNJPerQuery, ha.DynamicNJPerQuery,
			metrics.Speedup(tc.DynamicNJPerQuery, ha.DynamicNJPerQuery))
	}
	return res
}

func sizeName(b uint64) string {
	if b >= 1<<20 {
		return "1MB"
	}
	switch b {
	case 1 << 10:
		return "1KB"
	case 10 << 10:
		return "10KB"
	case 100 << 10:
		return "100KB"
	}
	return "?"
}
