package experiments

import (
	"fmt"
	"io"
	"math"

	"halo/internal/halo"
	"halo/internal/metrics"
	"halo/internal/sim"
)

// Fig8Point is one (register size, flow count) accuracy measurement.
type Fig8Point struct {
	RegisterBits  uint
	Flows         int
	MeanEstimate  float64
	MeanRelErr    float64
	SaturatedPct  float64
	TrialsPerCell int
}

// Fig8Result reproduces Fig. 8b: linear-counting flow-register estimation
// accuracy across register sizes.
type Fig8Result struct {
	Points []Fig8Point
	Table  *metrics.Table
}

// fig8Cell is one (register size, flow count) coordinate.
type fig8Cell struct {
	bits  uint
	flows int
}

func fig8Cells() []fig8Cell {
	var cells []fig8Cell
	for _, bits := range []uint{8, 16, 32, 64} {
		for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
			cells = append(cells, fig8Cell{bits, int(math.Max(1, float64(bits)*mult))})
		}
	}
	return cells
}

// Fig8Sweep decomposes Fig. 8b into one point per (register size, flow
// count) cell. Each cell draws from its own seeded generator (derived from
// cfg.Seed and the cell's position) so the cells are independent of sweep
// order.
func Fig8Sweep() Sweep {
	return Sweep{
		Points: func(cfg Config) []Point {
			cells := fig8Cells()
			pts := make([]Point, len(cells))
			for i, c := range cells {
				pts[i] = Point{Experiment: "fig8", Index: i,
					Label: fmt.Sprintf("%dbit/%dflows", c.bits, c.flows)}
			}
			return pts
		},
		RunPoint: func(cfg Config, p Point) any {
			return runFig8Cell(cfg, p.Index, fig8Cells()[p.Index])
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			assembleFig8(rows).Table.Render(w)
		},
	}
}

// RunFig8 reproduces Fig. 8b.
func RunFig8(cfg Config) *Fig8Result {
	return assembleFig8(runSerial(cfg, Fig8Sweep()))
}

func runFig8Cell(cfg Config, index int, c fig8Cell) Fig8Point {
	trials := pickSize(cfg, 60, 400)
	rng := sim.NewRand(pointSeed(cfg, index))
	var sumEst, sumErr float64
	saturated := 0
	for trial := 0; trial < trials; trial++ {
		reg := halo.NewFlowRegister(c.bits)
		for f := 0; f < c.flows; f++ {
			h := rng.Uint64()
			for rep := 0; rep < 4; rep++ { // flows repeat within a window
				reg.Observe(h)
			}
		}
		if reg.Saturated() {
			saturated++
		}
		est := reg.Estimate()
		sumEst += est
		sumErr += math.Abs(est-float64(c.flows)) / float64(c.flows)
	}
	return Fig8Point{
		RegisterBits:  c.bits,
		Flows:         c.flows,
		MeanEstimate:  sumEst / float64(trials),
		MeanRelErr:    sumErr / float64(trials),
		SaturatedPct:  float64(saturated) / float64(trials),
		TrialsPerCell: trials,
	}
}

func assembleFig8(rows []any) *Fig8Result {
	res := &Fig8Result{
		Table: metrics.NewTable("Figure 8b: flow-register estimation accuracy (linear counting)",
			"bits", "flows", "mean-estimate", "rel-err", "saturated"),
	}
	res.Table.SetCaption("paper: an m-bit register accurately estimates ~2m flows")
	for _, r := range rows {
		pt := r.(Fig8Point)
		res.Points = append(res.Points, pt)
		res.Table.AddRow(pt.RegisterBits, pt.Flows, pt.MeanEstimate,
			metrics.Percent(pt.MeanRelErr), metrics.Percent(pt.SaturatedPct))
	}
	return res
}
