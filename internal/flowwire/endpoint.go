package flowwire

import (
	"fmt"
	"net"
	"strings"

	"halo/internal/listflag"
)

// Endpoint is one parsed serving address: a transport plus the address the
// transport understands. It replaces the parallel (transport, addr) string
// pairs that used to travel separately through Listen, Dial,
// Options.Transport and the -transport/-addr flag pairs — one value now
// carries both halves, so a heterogeneous endpoint list (a TCP node next to
// a unix-socket node next to an shm node) is just []Endpoint.
//
// The canonical text form is a URL-ish scheme prefix:
//
//	tcp://host:port      TCP (loopback or cross-host)
//	unix:///path.sock    unix-domain stream socket
//	shm:///path.sock     shared-memory rings (path brokers the handshake)
//
// A bare "host:port" (no scheme) parses as TCP for compatibility with the
// historical flag form.
type Endpoint struct {
	Transport string // TransportTCP, TransportUnix or TransportShm
	Addr      string // "host:port" for tcp; a filesystem path otherwise
}

// String renders the canonical form (always scheme-prefixed, so a parsed
// endpoint round-trips and benchmark identities are unambiguous).
func (e Endpoint) String() string {
	return e.Transport + "://" + e.Addr
}

// IsZero reports an unset endpoint.
func (e Endpoint) IsZero() bool { return e.Transport == "" && e.Addr == "" }

// ParseEndpoint parses the canonical endpoint form. A bare address with no
// scheme defaults to tcp.
func ParseEndpoint(s string) (Endpoint, error) {
	return ParseEndpointDefault(s, TransportTCP)
}

// ParseEndpointDefault parses an endpoint, defaulting a schemeless address
// to the given transport — the shim path for callers still carrying a
// separate -transport flag next to a bare address.
func ParseEndpointDefault(s, defaultTransport string) (Endpoint, error) {
	if s == "" {
		return Endpoint{}, fmt.Errorf("flowwire: empty endpoint")
	}
	transport := defaultTransport
	addr := s
	if i := strings.Index(s, "://"); i >= 0 {
		transport = s[:i]
		addr = s[i+3:]
	}
	transport, err := CheckTransport(transport)
	if err != nil {
		return Endpoint{}, fmt.Errorf("endpoint %q: %w", s, err)
	}
	if addr == "" {
		return Endpoint{}, fmt.Errorf("flowwire: endpoint %q has no address", s)
	}
	switch transport {
	case TransportUnix, TransportShm:
		if !strings.HasPrefix(addr, "/") {
			return Endpoint{}, fmt.Errorf("flowwire: endpoint %q: %s address must be an absolute path", s, transport)
		}
	case TransportTCP:
		if !strings.Contains(addr, ":") {
			return Endpoint{}, fmt.Errorf("flowwire: endpoint %q: tcp address must be host:port", s)
		}
	}
	return Endpoint{Transport: transport, Addr: addr}, nil
}

// ParseEndpoints parses a comma-separated endpoint list flag, with
// positional errors in the listflag style (-name: bad token "x" at position
// N). Duplicate endpoints are an error: a cluster node list must name each
// node exactly once.
func ParseEndpoints(name, value string) ([]Endpoint, error) {
	toks, err := listflag.Strings(name, value)
	if err != nil {
		return nil, err
	}
	out := make([]Endpoint, len(toks))
	seen := make(map[string]int, len(toks))
	for i, tok := range toks {
		ep, err := ParseEndpoint(tok)
		if err != nil {
			return nil, fmt.Errorf("-%s: bad token %q at position %d: %v", name, tok, i+1, err)
		}
		if j, dup := seen[ep.String()]; dup {
			return nil, fmt.Errorf("-%s: endpoint %q at position %d duplicates position %d", name, tok, i+1, j+1)
		}
		seen[ep.String()] = i
		out[i] = ep
	}
	return out, nil
}

// EndpointList renders endpoints in canonical comma-joined form — the
// benchmark workload-identity stamp, so benchdiff refuses cross-topology
// comparisons.
func EndpointList(eps []Endpoint) string {
	parts := make([]string, len(eps))
	for i, ep := range eps {
		parts[i] = ep.String()
	}
	return strings.Join(parts, ",")
}

// ListenEndpoint opens a listener on a parsed endpoint — the primary listen
// API; Listen(transport, addr) remains as a thin shim.
func ListenEndpoint(ep Endpoint) (net.Listener, error) {
	return Listen(ep.Transport, ep.Addr)
}
