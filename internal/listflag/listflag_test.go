package listflag

import (
	"reflect"
	"strings"
	"testing"
)

func TestStrings(t *testing.T) {
	got, err := Strings("mix", "uniform, zipf ,hot")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"uniform", "zipf", "hot"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Strings = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "  ", "a,,b", "a,b,", ",a"} {
		if _, err := Strings("mix", bad); err == nil {
			t.Fatalf("Strings(%q) accepted", bad)
		}
	}
	// The error names the flag and, for multi-token values, the position.
	_, err = Strings("mix", "a,,b")
	if err == nil || !strings.Contains(err.Error(), "-mix") || !strings.Contains(err.Error(), "position 2") {
		t.Fatalf("error lacks flag/position: %v", err)
	}
}

func TestInts(t *testing.T) {
	got, err := Ints("shards", "1, 2,16")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 16}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Ints = %v, want %v", got, want)
	}
	_, err = Ints("shards", "1,x,3")
	if err == nil || !strings.Contains(err.Error(), `"x"`) || !strings.Contains(err.Error(), "position 2") {
		t.Fatalf("bad-token error = %v", err)
	}
}

func TestPositiveInts(t *testing.T) {
	if _, err := PositiveInts("conns", "1,2,4"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"0", "1,-2", "1,0,3"} {
		if _, err := PositiveInts("conns", bad); err == nil {
			t.Fatalf("PositiveInts(%q) accepted", bad)
		}
	}
}

func TestEnum(t *testing.T) {
	got, err := Enum("mix", "zipf,uniform", "uniform", "zipf")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"zipf", "uniform"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Enum = %v, want %v", got, want)
	}
	_, err = Enum("mix", "uniform,bogus", "uniform", "zipf")
	if err == nil || !strings.Contains(err.Error(), `"bogus"`) || !strings.Contains(err.Error(), "uniform, zipf") {
		t.Fatalf("unknown-token error = %v", err)
	}
}

func TestUint64s(t *testing.T) {
	got, err := Uint64s("seeds", "42,123,0x48414c4f")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{42, 123, 0x48414c4f}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Uint64s[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if _, err := Uint64s("seeds", "42,-1"); err == nil {
		t.Error("negative token accepted")
	}
	if _, err := Uint64s("seeds", "42,,123"); err == nil {
		t.Error("empty token accepted")
	}
}
