package experiments

import "io"

// Point is one independently runnable unit of an experiment's sweep. A
// point carries only coordinates — the owning experiment's ID, its position
// in the sweep, and a human-readable label — so it is trivially cheap to
// enumerate and can be handed to any goroutine (or, in principle, any
// process) for execution.
type Point struct {
	Experiment string
	Index      int
	Label      string
}

// Sweep decomposes an experiment into points that can run concurrently.
//
// The contract that makes fan-out safe:
//
//   - RunPoint builds every piece of state it needs from cfg and p alone —
//     a fresh platform per point, mirroring the paper's separate gem5 runs
//     — and touches no package-level mutable state. The runner executes
//     points on arbitrary goroutines in arbitrary order.
//   - RunPoint is deterministic: the same (cfg, p) always returns the same
//     row. All randomness must flow from seeds derived from cfg.Seed and
//     the point's coordinates.
//   - Rows are plain values (structs of scalars, or slices of such
//     structs) with no pointers, so two rows are equal exactly when their
//     %#v renderings are byte-identical — which is how the runner's verify
//     mode checks the determinism contract.
//   - Render receives one row per point, in Points order, regardless of
//     the order in which the points actually ran.
type Sweep struct {
	// Points enumerates the sweep for cfg, in result order.
	Points func(cfg Config) []Point
	// RunPoint executes one point on fresh state and returns its row.
	RunPoint func(cfg Config, p Point) any
	// Render combines the rows (in Points order) into printed tables.
	Render func(cfg Config, rows []any, w io.Writer)
}

// runSerial executes every point of s in order on the calling goroutine —
// the serial baseline the parallel runner is verified against.
func runSerial(cfg Config, s Sweep) []any {
	pts := s.Points(cfg)
	rows := make([]any, len(pts))
	for i, p := range pts {
		rows[i] = s.RunPoint(cfg, p)
	}
	return rows
}

// pointSeed derives a per-point workload seed from the experiment seed and
// the point's coordinates, so points that need private randomness stay
// deterministic and independent of sweep order.
func pointSeed(cfg Config, index int) uint64 {
	x := cfg.Seed ^ (uint64(index)+1)*0x9e3779b97f4a7c15
	x ^= x >> 32
	x *= 0xd6e8feb86659fd93
	x ^= x >> 32
	return x
}
