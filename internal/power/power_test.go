package power

import (
	"math"
	"testing"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

func TestTCAMAnchorsReproduceTable4(t *testing.T) {
	cases := []struct {
		capBytes uint64
		area     float64
		static   float64
		dynamic  float64
	}{
		{1 << 10, 0.001, 71.1, 0.04},
		{10 << 10, 0.066, 235.3, 0.37},
		{100 << 10, 1.044, 3850.5, 13.84},
		{1 << 20, 9.343, 26733.1, 84.82},
	}
	for _, c := range cases {
		e := TCAMEstimate(c.capBytes)
		if !approx(e.AreaTiles, c.area, 0.01) ||
			!approx(e.StaticMW, c.static, 0.01) ||
			!approx(e.DynamicNJPerQuery, c.dynamic, 0.01) {
			t.Fatalf("TCAM %dB = %+v, want {%v %v %v}", c.capBytes, e, c.area, c.static, c.dynamic)
		}
	}
}

func TestTCAMInterpolationMonotone(t *testing.T) {
	prev := TCAMEstimate(1 << 10)
	for capBytes := uint64(2 << 10); capBytes <= 2<<20; capBytes *= 2 {
		e := TCAMEstimate(capBytes)
		if e.AreaTiles <= prev.AreaTiles || e.StaticMW <= prev.StaticMW ||
			e.DynamicNJPerQuery <= prev.DynamicNJPerQuery {
			t.Fatalf("TCAM estimate not monotone at %dB: %+v vs %+v", capBytes, e, prev)
		}
		prev = e
	}
}

func TestHeadlineEfficiency(t *testing.T) {
	// Paper abstract: up to 48.2x more energy-efficient than TCAM.
	eff := EfficiencyVsTCAM(1 << 20)
	if !approx(eff, 48.2, 0.02) {
		t.Fatalf("efficiency vs 1MB TCAM = %.1f, want ~48.2", eff)
	}
}

func TestSRAMTCAMCheaperThanTCAM(t *testing.T) {
	for _, capBytes := range []uint64{1 << 10, 100 << 10, 1 << 20} {
		tc := TCAMEstimate(capBytes)
		sr := SRAMTCAMEstimate(capBytes)
		if sr.StaticMW >= tc.StaticMW || sr.AreaTiles >= tc.AreaTiles ||
			sr.DynamicNJPerQuery >= tc.DynamicNJPerQuery {
			t.Fatalf("SRAM-TCAM not cheaper at %dB: %+v vs %+v", capBytes, sr, tc)
		}
		if !approx(sr.StaticMW, tc.StaticMW*0.55, 0.01) {
			t.Fatalf("SRAM power scale off: %v vs %v", sr.StaticMW, tc.StaticMW)
		}
	}
}

func TestHaloEstimates(t *testing.T) {
	a := HaloAcceleratorEstimate()
	if a.StaticMW != 97.2 || a.DynamicNJPerQuery != 1.76 || a.AreaTiles != 0.012 {
		t.Fatalf("HALO accelerator estimate = %+v", a)
	}
	chip := HaloChipEstimate()
	if chip.StaticMW != 97.2*16 {
		t.Fatalf("chip static = %v", chip.StaticMW)
	}
	if chip.DynamicNJPerQuery != a.DynamicNJPerQuery {
		t.Fatal("per-query dynamic energy must not scale with accelerator count")
	}
	if HaloChipAreaPercent() != 1.2 {
		t.Fatalf("area percent = %v", HaloChipAreaPercent())
	}
	// HALO's static power is tiny next to even a 10KB TCAM's.
	if chip.StaticMW >= TCAMEstimate(100<<10).StaticMW {
		t.Fatal("HALO static power should undercut a 100KB TCAM")
	}
}

func TestEnergyPerQueryAmortisesStatic(t *testing.T) {
	e := Estimate{StaticMW: 100, DynamicNJPerQuery: 1}
	// At 10^8 queries/s: static adds 100mW/1e8qps = 1nJ per query.
	got := e.EnergyPerQueryNJ(1e8)
	if !approx(got, 2, 0.01) {
		t.Fatalf("energy per query = %v, want 2", got)
	}
	if e.EnergyPerQueryNJ(0) != 1 {
		t.Fatal("zero rate should return dynamic energy only")
	}
	// Lower query rates make static dominate.
	if e.EnergyPerQueryNJ(1e6) <= got {
		t.Fatal("static amortisation not rate-dependent")
	}
}

func TestTable4Shape(t *testing.T) {
	rows := Table4()
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	if rows[4].Solution != "HALO (per accelerator)" {
		t.Fatalf("last row = %q", rows[4].Solution)
	}
	if rows[3].DynamicNJPerQuery/rows[4].DynamicNJPerQuery < 40 {
		t.Fatal("Table 4 loses the 48x efficiency headline")
	}
}

func TestExtrapolationBeyondAnchors(t *testing.T) {
	// 4MB TCAM extrapolates on the last segment and keeps growing.
	big := TCAMEstimate(4 << 20)
	if big.DynamicNJPerQuery <= TCAMEstimate(1<<20).DynamicNJPerQuery {
		t.Fatal("extrapolation above anchors not increasing")
	}
	small := TCAMEstimate(256)
	if small.DynamicNJPerQuery >= TCAMEstimate(1<<10).DynamicNJPerQuery {
		t.Fatal("extrapolation below anchors not decreasing")
	}
}
