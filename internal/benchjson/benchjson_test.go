package benchjson

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: halo
cpu: Intel(R) Xeon(R) CPU
BenchmarkRunAllSerial-8            	       1	6247000000 ns/op	        42.50 sim-fig9-speedup	986000000 B/op	12600000 allocs/op
BenchmarkFig9SingleLookup-8        	       1	  91000000 ns/op	21000000 B/op	  310000 allocs/op
BenchmarkEngineSchedule            	20000000	        55.1 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	halo	6.5s
`

func TestParseSample(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != SchemaVersion {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" {
		t.Fatalf("goos/goarch = %q/%q", doc.GOOS, doc.GOARCH)
	}
	if doc.CPU != "Intel(R) Xeon(R) CPU" {
		t.Fatalf("cpu = %q", doc.CPU)
	}
	if doc.Config["pkg"] != "halo" {
		t.Fatalf("pkg config = %q", doc.Config["pkg"])
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(doc.Benchmarks))
	}

	b, ok := doc.Find("RunAllSerial")
	if !ok {
		t.Fatal("RunAllSerial not found")
	}
	if b.Procs != 8 || b.Iterations != 1 {
		t.Fatalf("RunAllSerial procs/iters = %d/%d", b.Procs, b.Iterations)
	}
	if b.Metrics["ns/op"] != 6.247e9 || b.Metrics["allocs/op"] != 12.6e6 {
		t.Fatalf("RunAllSerial metrics = %v", b.Metrics)
	}
	if b.Metrics["sim-fig9-speedup"] != 42.5 {
		t.Fatalf("custom metric = %v", b.Metrics["sim-fig9-speedup"])
	}

	// No -procs suffix → procs defaults to 1, name is untouched.
	e, ok := doc.Find("EngineSchedule")
	if !ok {
		t.Fatal("EngineSchedule not found")
	}
	if e.Procs != 1 || e.Metrics["allocs/op"] != 0 {
		t.Fatalf("EngineSchedule = %+v", e)
	}
}

func TestRoundTrip(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := Encode(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("encode/decode round trip is not byte-stable")
	}
}

func TestParseRejects(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok halo 1s\n")); err == nil {
		t.Fatal("want error for output with no benchmark lines")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX-8 notanint 5 ns/op\n")); err == nil {
		t.Fatal("want error for bad iteration count")
	}
	if _, err := Decode([]byte(`{"schema":"halo-bench/v999"}`)); err == nil {
		t.Fatal("want error for unknown schema")
	}
}
