//go:build !unix

package flowwire

import (
	"errors"
	"os"
)

// errShmUnsupported gates the shm transport on platforms without a usable
// mmap: CheckTransport still accepts "shm" everywhere (flag parsing stays
// uniform), but Listen and Dial fail with this error at setup time.
var errShmUnsupported = errors.New("flowwire: shm transport requires a unix-like OS")

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errShmUnsupported
}

func munmap(mem []byte) error { return nil }
