package nf

import (
	"fmt"

	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/halo"
	"halo/internal/packet"
)

// NAT is a DPDK-style exact-match network address translator (paper
// Table 3): a hash table maps LAN flows to allocated WAN (IP, port) pairs;
// hits rewrite the header, misses allocate a new binding. Packets arrive in
// a DDIO buffer ring and the binding table keys on the raw header window, so
// the HALO engine's lookups read the key straight from the packet buffer.
type NAT struct {
	Stats
	engine Engine
	p      *halo.Platform
	table  *cuckoo.Table
	ring   *pktRing

	wanIP    uint32
	nextPort uint16

	hits, misses uint64

	keyBuf [packet.HeaderKeyLen]byte // per-packet key scratch (table copies)
}

// NewNAT builds a NAT whose binding table holds `entries` flows.
func NewNAT(p *halo.Platform, engine Engine, entries uint64) (*NAT, error) {
	tbl, err := cuckoo.Create(p.Space, p.Alloc, cuckoo.Config{Entries: entries, KeyLen: packet.HeaderKeyLen})
	if err != nil {
		return nil, fmt.Errorf("nf: creating NAT table: %w", err)
	}
	return &NAT{
		engine: engine, p: p, table: tbl, ring: newPktRing(p),
		wanIP: 0xC6336401, nextPort: 20000,
	}, nil
}

// Name implements NF.
func (n *NAT) Name() string { return "nat" }

// Table exposes the binding table for preloading and warming.
func (n *NAT) Table() *cuckoo.Table { return n.table }

// HitRate reports the binding-table hit rate.
func (n *NAT) HitRate() float64 {
	if n.hits+n.misses == 0 {
		return 0
	}
	return float64(n.hits) / float64(n.hits+n.misses)
}

// Preload installs bindings for a set of flows so measurement runs are
// lookup-dominated, as in the paper's 1K/10K/100K-entry configurations.
func (n *NAT) Preload(flows []packet.FiveTuple) error {
	for _, f := range flows {
		if err := n.table.Insert(f.HeaderKey(), n.allocBinding()); err != nil {
			return err
		}
	}
	return nil
}

func (n *NAT) allocBinding() uint64 {
	n.nextPort++
	if n.nextPort < 20000 {
		n.nextPort = 20000
	}
	return uint64(n.wanIP)<<16 | uint64(n.nextPort)
}

// ProcessPacket implements NF: translate one LAN→WAN packet.
func (n *NAT) ProcessPacket(th *cpu.Thread, pkt *packet.Packet) Verdict {
	bufAddr := n.ring.deliver(pkt)
	rxCost(th, bufAddr)
	th.ALU(10)

	var binding uint64
	var ok bool
	switch n.engine {
	case EngineHalo:
		binding, ok = n.p.Unit.LookupBAt(th, n.table.Base(), headerKeyAddr(bufAddr))
	default:
		pkt.Key().PutHeaderKey(n.keyBuf[:])
		binding, ok = n.table.TimedLookup(th, n.keyBuf[:], cuckoo.DefaultLookupOptions())
	}
	if !ok {
		n.misses++
		binding = n.allocBinding()
		// Allocation path: pick a free port, insert the binding.
		th.ALU(10)
		th.Other(8)
		pkt.Key().PutHeaderKey(n.keyBuf[:])
		if err := n.table.TimedInsert(th, n.keyBuf[:], binding); err != nil {
			n.Stats.record(VerdictDrop)
			return VerdictDrop
		}
	} else {
		n.hits++
	}

	// Rewrite source IP/port and fold the checksum delta.
	pkt.SrcIP = uint32(binding >> 16)
	pkt.SrcPort = uint16(binding)
	th.ALU(16)
	th.LocalStore(6)
	th.Other(6)
	n.Stats.record(VerdictRewritten)
	return VerdictRewritten
}
