// Package cache models the simulated CPU's cache hierarchy: private L1/L2
// caches per core and a shared, sliced (NUCA) last-level cache with one
// Caching-and-Home-Agent (CHA) directory per slice. The hierarchy is a
// timing-and-state model: functional data lives in the mem package, so a
// cache bug can only distort cycle counts, never answers.
//
// The HALO-specific extensions live here too: the per-line lock bit that the
// accelerator sets while it walks a bucket (paper §4.4) and the core-valid
// bit that keeps each accelerator's metadata cache coherent (paper §4.3).
package cache

import (
	"fmt"

	"halo/internal/mem"
	"halo/internal/sim"
)

// State is a MESI coherence state.
type State uint8

// Coherence states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// line is one cache line's bookkeeping in a set-associative array.
type line struct {
	tag   mem.Addr // full line address; 0 is valid only together with valid=true
	valid bool
	state State
	dirty bool
	lru   uint64

	// Directory state, used only by LLC arrays:
	coreValid  uint32 // bitmask of cores whose private caches hold the line
	accelValid bool   // CV bit: line is cached by a HALO metadata cache
	locked     bool   // HALO hardware lock bit
	lockFreeAt sim.Cycle
}

// array is a set-associative cache structure with LRU replacement. Sets are
// materialised lazily on first install: experiments touch a small fraction
// of a 32 MB LLC's sets, and eager allocation dominated the simulator's
// memory profile.
type array struct {
	sets    [][]line
	ways    int
	setMask uint64
	lruTick uint64

	hits   uint64
	misses uint64
}

func newArray(sizeBytes, ways int) *array {
	if sizeBytes <= 0 || ways <= 0 {
		panic("cache: array needs positive size and ways")
	}
	lines := sizeBytes / mem.LineSize
	sets := lines / ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a positive power of two", sets))
	}
	return &array{sets: make([][]line, sets), ways: ways, setMask: uint64(sets - 1)}
}

func (a *array) setIndex(lineAddr mem.Addr) uint64 {
	return (uint64(lineAddr) / mem.LineSize) & a.setMask
}

// materialize returns lineAddr's set, allocating its ways on first touch
// (an untouched set is nil and reads as all-invalid).
func (a *array) materialize(lineAddr mem.Addr) []line {
	idx := a.setIndex(lineAddr)
	s := a.sets[idx]
	if s == nil {
		s = make([]line, a.ways)
		a.sets[idx] = s
	}
	return s
}

// lookup finds the line, updating LRU on hit. It returns nil on miss.
func (a *array) lookup(lineAddr mem.Addr) *line {
	set := a.sets[a.setIndex(lineAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			a.lruTick++
			set[i].lru = a.lruTick
			a.hits++
			return &set[i]
		}
	}
	a.misses++
	return nil
}

// peek finds the line without touching LRU or hit/miss counters.
func (a *array) peek(lineAddr mem.Addr) *line {
	set := a.sets[a.setIndex(lineAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// victim selects the replacement candidate in lineAddr's set: an invalid way
// if one exists, otherwise the LRU way, skipping locked lines (a locked line
// must not be evicted mid-query; the paper's lock bit pins it). If every way
// is locked — impossible in practice given scoreboard limits — the LRU way is
// returned anyway to guarantee progress.
func (a *array) victim(lineAddr mem.Addr) *line {
	set := a.materialize(lineAddr)
	var lru *line
	var lruAny *line
	for i := range set {
		l := &set[i]
		if !l.valid {
			return l
		}
		if lruAny == nil || l.lru < lruAny.lru {
			lruAny = l
		}
		if l.locked {
			continue
		}
		if lru == nil || l.lru < lru.lru {
			lru = l
		}
	}
	if lru == nil {
		return lruAny
	}
	return lru
}

// install places lineAddr into the array, overwriting the victim way. The
// caller must have handled the victim's eviction first; install resets all
// metadata. If the line is already present it is reused in place (its dirty
// bit survives; state is updated), so a set can never hold duplicate ways
// for one tag.
func (a *array) install(lineAddr mem.Addr, st State) *line {
	a.lruTick++
	if l := a.peek(lineAddr); l != nil {
		l.state = st
		l.lru = a.lruTick
		return l
	}
	v := a.victim(lineAddr)
	*v = line{tag: lineAddr, valid: true, state: st, lru: a.lruTick}
	return v
}

// invalidate drops the line if present.
func (a *array) invalidate(lineAddr mem.Addr) {
	if l := a.peek(lineAddr); l != nil {
		*l = line{}
	}
}

func (a *array) hitRate() float64 {
	total := a.hits + a.misses
	if total == 0 {
		return 0
	}
	return float64(a.hits) / float64(total)
}
