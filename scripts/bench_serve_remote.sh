#!/bin/sh
# bench_serve_remote.sh <transport> [out.json] — run a flowserved instance on
# the given transport (tcp, unix or shm), drive it with the flowload remote
# smoke (closed-loop points plus one open-loop fixed-rate point), and archive
# the halo-bench/v1 document. The document stamps the transport into its
# workload identity, so benchdiff refuses to compare artifacts across
# transports — per-transport baselines stay apples-to-apples by construction.
#
#   scripts/bench_serve_remote.sh tcp  BENCH_serve_remote_tcp.json
#   scripts/bench_serve_remote.sh unix BENCH_serve_remote_unix.json
#   scripts/bench_serve_remote.sh shm  BENCH_serve_remote_shm.json
#
# Exits nonzero if the zero-loss drain ledger, the client-error gate, or the
# graceful drain fails.
set -eu
cd "$(dirname "$0")/.."
transport="${1:-tcp}"
out="${2:-BENCH_serve_remote_$transport.json}"
case "$transport" in
tcp) addr="127.0.0.1:7411" ;;
unix) addr="${TMPDIR:-/tmp}/flowserved-bench.sock" ;;
shm) addr="${TMPDIR:-/tmp}/flowserved-bench-shm.sock" ;;
*)
	echo "bench_serve_remote.sh: unknown transport $transport (want tcp, unix or shm)" >&2
	exit 2
	;;
esac

go build -o flowserved.bench ./cmd/flowserved
./flowserved.bench -transport "$transport" -listen "$addr" -shards 4 -entries 65536 &
srv=$!
status=0
go run ./cmd/flowload -remote "$addr" -transport "$transport" -smoke -check \
	-conns 2,4 -rate 0,200000 -json "$out" || status=$?
# SIGTERM → graceful drain; flowserved exits 0 only if every accepted frame
# was answered (zero-loss drain ledger).
kill -TERM "$srv"
wait "$srv" || status=$?
rm -f flowserved.bench
exit "$status"
