package benchjson

import (
	"math"
	"strings"
	"testing"

	"halo/internal/stats"
)

func TestClassifyTable(t *testing.T) {
	th := DefaultThresholds()
	cases := []struct {
		name      string
		metric    string
		base, new float64
		want      Class
	}{
		// Lower-is-better (ns/op style).
		{"equal", "ns/op", 100, 100, ClassEquivalent},
		{"within-band-worse", "ns/op", 100, 104, ClassEquivalent},
		{"within-band-better", "ns/op", 100, 96, ClassEquivalent},
		{"regression", "ns/op", 100, 106, ClassRegression},
		{"big-regression", "ns/op", 100, 200, ClassRegression},
		{"small-improvement", "ns/op", 100, 90, ClassInconclusive},
		{"significant-improvement", "ns/op", 100, 75, ClassSignificant},
		{"boundary-significant", "ns/op", 100, 80, ClassSignificant},

		// Higher-is-better (rates, speedups).
		{"rate-regression", "lookups/sec", 1e6, 0.9e6, ClassRegression},
		{"rate-improvement", "lookups/sec", 1e6, 1.3e6, ClassSignificant},
		{"rate-equivalent", "lookups/sec", 1e6, 1.03e6, ClassEquivalent},
		{"speedup-drop", "sim-fig9-speedup", 42.5, 30, ClassRegression},

		// Zero baselines.
		{"zero-zero", "allocs/op", 0, 0, ClassEquivalent},
		{"zero-base-appears", "allocs/op", 0, 7, ClassRegression},
		{"zero-base-rate-appears", "lookups/sec", 0, 5, ClassSignificant},
		{"drops-to-zero", "allocs/op", 7, 0, ClassSignificant},

		// NaN/Inf are never classified as safe.
		{"nan-base", "ns/op", math.NaN(), 100, ClassInvalid},
		{"nan-new", "ns/op", 100, math.NaN(), ClassInvalid},
		{"inf-new", "ns/op", 100, math.Inf(1), ClassInvalid},
		{"neg-inf-base", "ns/op", math.Inf(-1), 100, ClassInvalid},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Classify(c.metric, c.base, c.new, th); got != c.want {
				t.Errorf("Classify(%s, %v, %v) = %s, want %s", c.metric, c.base, c.new, got, c.want)
			}
		})
	}
}

func TestClassifyCustomThresholds(t *testing.T) {
	// Regression 10%, equivalence 5%: a 7% worsening is neither equivalent
	// nor a regression — inconclusive.
	th := Thresholds{Significant: 0.20, Equivalence: 0.05, Regression: 0.10}
	if got := Classify("ns/op", 100, 107, th); got != ClassInconclusive {
		t.Errorf("7%% worsening under 10%% regression threshold = %s, want inconclusive", got)
	}
	if got := Classify("ns/op", 100, 111, th); got != ClassRegression {
		t.Errorf("11%% worsening under 10%% regression threshold = %s, want regression", got)
	}
}

func docWith(benches ...Benchmark) *Document {
	return &Document{Schema: SchemaVersion, GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", Benchmarks: benches}
}

func TestCompareAlignment(t *testing.T) {
	base := docWith(
		Benchmark{Name: "A", Metrics: map[string]float64{"ns/op": 100}},
		Benchmark{Name: "Gone", Metrics: map[string]float64{"ns/op": 50}},
	)
	cur := docWith(
		Benchmark{Name: "A", Metrics: map[string]float64{"ns/op": 120}},
		Benchmark{Name: "Fresh", Metrics: map[string]float64{"ns/op": 10}},
	)
	c := Compare(base, cur, DefaultThresholds())
	if len(c.Benches) != 3 {
		t.Fatalf("got %d bench deltas, want 3: %+v", len(c.Benches), c.Benches)
	}
	if c.Benches[0].Name != "A" || c.Benches[0].Metrics[0].Class != ClassRegression {
		t.Errorf("A delta = %+v, want ns/op regression", c.Benches[0])
	}
	if imp := c.Benches[0].Metrics[0].Improvement; imp == nil || math.Abs(*imp+0.20) > 1e-12 {
		t.Errorf("A improvement = %v, want -0.20", imp)
	}
	if !c.Benches[1].BaseOnly || c.Benches[1].Name != "Gone" {
		t.Errorf("missing-on-new side not reported: %+v", c.Benches[1])
	}
	if !c.Benches[2].NewOnly || c.Benches[2].Name != "Fresh" {
		t.Errorf("missing-on-base side not reported: %+v", c.Benches[2])
	}
}

func TestCompareMetricOnOneSide(t *testing.T) {
	base := docWith(Benchmark{Name: "A", Metrics: map[string]float64{"ns/op": 100, "sim-speedup": 40}})
	cur := docWith(Benchmark{Name: "A", Metrics: map[string]float64{"ns/op": 100}})
	c := Compare(base, cur, DefaultThresholds())
	var speedup *MetricDelta
	for i := range c.Benches[0].Metrics {
		if c.Benches[0].Metrics[i].Metric == "sim-speedup" {
			speedup = &c.Benches[0].Metrics[i]
		}
	}
	if speedup == nil {
		t.Fatal("metric present only in base was silently dropped")
	}
	// A higher-is-better metric falling to (implicit) zero is a regression,
	// not a skip.
	if speedup.Class != ClassRegression {
		t.Errorf("vanished speedup metric classified %s, want regression", speedup.Class)
	}
}

func TestGate(t *testing.T) {
	base := docWith(
		Benchmark{Name: "Hot", Metrics: map[string]float64{"ns/op": 100, "B/op": 64}},
		Benchmark{Name: "Allowed", Metrics: map[string]float64{"ns/op": 100}},
		Benchmark{Name: "Gone", Metrics: map[string]float64{"ns/op": 100}},
	)
	cur := docWith(
		Benchmark{Name: "Hot", Metrics: map[string]float64{"ns/op": 150, "B/op": 1024}},
		Benchmark{Name: "Allowed", Metrics: map[string]float64{"ns/op": 200}},
	)
	c := Compare(base, cur, DefaultThresholds())

	// Only ns/op gated: B/op regression must not fail the gate.
	g := c.Gate([]string{"ns/op"}, map[string]bool{"Allowed": true})
	if len(g.Failures) != 2 {
		t.Fatalf("failures = %v, want Hot regression + Gone missing", g.Failures)
	}
	if !strings.Contains(g.Failures[0], "Hot ns/op") {
		t.Errorf("first failure = %q, want Hot ns/op regression", g.Failures[0])
	}
	if !strings.Contains(g.Failures[1], "Gone") {
		t.Errorf("second failure = %q, want Gone missing", g.Failures[1])
	}
	found := false
	for _, w := range g.Warnings {
		if strings.Contains(w, "Allowed") && strings.Contains(w, "(allowed)") {
			found = true
		}
	}
	if !found {
		t.Errorf("allowed regression not downgraded to warning: %v", g.Warnings)
	}

	// Report-only mode: no gated metrics, always passes.
	if g := c.Gate(nil, nil); !g.Pass() {
		t.Errorf("report-only gate failed: %+v", g)
	}
}

func TestGateInvalidValueFails(t *testing.T) {
	base := docWith(Benchmark{Name: "Hot", Metrics: map[string]float64{"ns/op": 100}})
	cur := docWith(Benchmark{Name: "Hot", Metrics: map[string]float64{"ns/op": math.Inf(1)}})
	g := Compare(base, cur, DefaultThresholds()).Gate([]string{"ns/op"}, nil)
	if g.Pass() {
		t.Fatal("gate passed an Inf measurement")
	}
	if !strings.Contains(g.Failures[0], "invalid") {
		t.Errorf("failure = %q, want invalid-value message", g.Failures[0])
	}
}

func TestCheckComparable(t *testing.T) {
	mk := func(seeds []uint64, cfg map[string]string) *Document {
		return &Document{Schema: SchemaVersion, GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
			Seeds: seeds, Config: cfg}
	}
	a := mk([]uint64{42, 123}, map[string]string{"flows": "20000"})

	if _, err := CheckComparable(a, mk([]uint64{42, 123}, map[string]string{"flows": "20000"})); err != nil {
		t.Errorf("identical workloads rejected: %v", err)
	}
	if _, err := CheckComparable(a, mk([]uint64{42}, map[string]string{"flows": "20000"})); err == nil {
		t.Error("seed-count mismatch accepted")
	}
	if _, err := CheckComparable(a, mk([]uint64{42, 456}, map[string]string{"flows": "20000"})); err == nil {
		t.Error("seed-value mismatch accepted")
	}
	if _, err := CheckComparable(a, mk([]uint64{42, 123}, map[string]string{"flows": "99"})); err == nil {
		t.Error("config-value mismatch accepted")
	}
	if _, err := CheckComparable(a, mk([]uint64{42, 123}, nil)); err == nil {
		t.Error("config-key mismatch accepted")
	}

	// Environment differences warn, never refuse.
	b := mk([]uint64{42, 123}, map[string]string{"flows": "20000"})
	b.GoVersion, b.CPU = "go1.22.0", "some other cpu"
	warns, err := CheckComparable(a, b)
	if err != nil {
		t.Fatalf("environment mismatch refused: %v", err)
	}
	if len(warns) != 2 {
		t.Errorf("warnings = %v, want go-version + cpu", warns)
	}
}

func TestDecodeAnySchemas(t *testing.T) {
	// halo-bench/v1 passes through Decode.
	bd, err := Encode(docWith(Benchmark{Name: "X", Metrics: map[string]float64{"ns/op": 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeAny(bd); err != nil {
		t.Fatalf("DecodeAny(halo-bench/v1): %v", err)
	}

	// halo-stats/v1 converts through FromStats.
	snap := stats.NewSnapshot()
	snap.Add("cuckoo.lookups", 10)
	snap.Observe("lat.lookup", 100)
	snap.Observe("lat.lookup", 200)
	sd := &stats.Document{Schema: stats.SchemaVersion, Seed: 7, Experiments: []stats.ExperimentDoc{{
		ID: "fig9", Points: []stats.PointDoc{{Label: "64K", Snapshot: snap}},
	}}}
	sdata, err := stats.Encode(sd)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := DecodeAny(sdata)
	if err != nil {
		t.Fatalf("DecodeAny(halo-stats/v1): %v", err)
	}
	b, ok := doc.Find("fig9/64K")
	if !ok {
		t.Fatalf("converted doc missing fig9/64K: %+v", doc.Benchmarks)
	}
	if b.Metrics["cuckoo.lookups"] != 10 {
		t.Errorf("counter metric = %v, want 10", b.Metrics["cuckoo.lookups"])
	}
	if b.Metrics["lat.lookup.p50"] == 0 || b.Metrics["lat.lookup.count"] != 2 {
		t.Errorf("histogram metrics = %v", b.Metrics)
	}
	if len(doc.Seeds) != 1 || doc.Seeds[0] != 7 {
		t.Errorf("converted seeds = %v, want [7]", doc.Seeds)
	}

	// Unknown schemas are refused with both supported names in the error.
	if _, err := DecodeAny([]byte(`{"schema":"halo-bench/v999"}`)); err == nil ||
		!strings.Contains(err.Error(), "halo-stats/v1") {
		t.Errorf("unknown schema error = %v, want mention of supported schemas", err)
	}
}

func TestDocumentMetadataRoundTrip(t *testing.T) {
	d := docWith(Benchmark{Name: "X", Metrics: map[string]float64{"ns/op": 1}})
	d.CPU = "Intel(R) Xeon(R) CPU"
	d.Seeds = []uint64{42, 123, 456}
	d.Config = map[string]string{"bench": "RunAllSerial", "benchtime": "1x"}
	data, err := Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.CPU != d.CPU || len(back.Seeds) != 3 || back.Config["bench"] != "RunAllSerial" {
		t.Errorf("metadata did not round-trip: %+v", back)
	}
}
