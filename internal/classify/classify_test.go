package classify

import (
	"testing"

	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/packet"
)

func flow(i uint32) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   0x0a000000 | i,
		DstIP:   0xc0a80000 | (i % 256),
		SrcPort: uint16(1024 + i%5000),
		DstPort: 443,
		Proto:   packet.ProtoTCP,
	}
}

func TestMaskApply(t *testing.T) {
	tup := packet.FiveTuple{SrcIP: 0x0a0b0c0d, DstIP: 0x01020304, SrcPort: 7, DstPort: 9, Proto: 6}
	m := Mask{SrcIPBits: 24, DstIPBits: 0, SrcPortWild: true}
	got := m.Apply(tup)
	if got.SrcIP != 0x0a0b0c00 {
		t.Fatalf("src prefix masking: %#x", got.SrcIP)
	}
	if got.DstIP != 0 || got.SrcPort != 0 {
		t.Fatalf("wildcards not applied: %+v", got)
	}
	if got.DstPort != 9 || got.Proto != 6 {
		t.Fatalf("non-wildcarded fields changed: %+v", got)
	}
	if ExactMask.Apply(tup) != tup {
		t.Fatal("exact mask changed the tuple")
	}
}

func TestMaskSpecificityAndValidity(t *testing.T) {
	if !ExactMask.Valid() || ExactMask.Specificity() != 104 {
		t.Fatalf("exact mask specificity = %d", ExactMask.Specificity())
	}
	if (Mask{SrcIPBits: 40}).Valid() {
		t.Fatal("overlong prefix accepted")
	}
	all := Mask{SrcPortWild: true, DstPortWild: true, ProtoWild: true}
	if all.Specificity() != 0 {
		t.Fatalf("all-wild specificity = %d", all.Specificity())
	}
}

func TestRuleEncodingRoundTrip(t *testing.T) {
	m := Match{Priority: 1234, RuleID: 0x00abcdef, Action: Action{Kind: ActionNAT, Port: 40000}}
	if got := decodeRule(encodeRule(m)); got != m {
		t.Fatalf("rule round trip: %+v vs %+v", got, m)
	}
	// Values must fit the HALO result-word payload.
	if encodeRule(m)&^halo.ResultValueMask != 0 {
		t.Fatal("encoded rule overflows the result-word value bits")
	}
}

func newTSS(t *testing.T, mode SearchMode) *TupleSpace {
	t.Helper()
	space := mem.NewMemory()
	alloc := mem.NewAllocator(0x1000, 1<<30)
	return NewTupleSpace(space, alloc, mode, 1024)
}

func TestTupleSpaceFirstMatch(t *testing.T) {
	ts := newTSS(t, FirstMatch)
	m1 := Mask{SrcIPBits: 32, DstIPBits: 32}
	m2 := Mask{SrcIPBits: 24, DstIPBits: 0, SrcPortWild: true, DstPortWild: true}
	f := flow(5)
	if err := ts.InsertRule(m1, f, Match{RuleID: 1, Action: Action{Kind: ActionOutput, Port: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := ts.InsertRule(m2, f, Match{RuleID: 2, Action: Action{Kind: ActionDrop}}); err != nil {
		t.Fatal(err)
	}
	got, ok := ts.Classify(f)
	if !ok || got.RuleID != 1 {
		t.Fatalf("first-match = %+v, want rule 1", got)
	}
	// A flow matching only the coarse mask falls through to it.
	other := flow(6) // same /24, different host bits
	got, ok = ts.Classify(other)
	if !ok || got.RuleID != 2 {
		t.Fatalf("coarse match = %+v (%v), want rule 2", got, ok)
	}
	// A flow outside both masks misses.
	if _, ok := ts.Classify(packet.FiveTuple{SrcIP: 0x01010101}); ok {
		t.Fatal("unmatched flow classified")
	}
}

func TestTupleSpaceHighestPriority(t *testing.T) {
	ts := newTSS(t, HighestPriority)
	f := flow(9)
	low := Mask{SrcIPBits: 16, SrcPortWild: true, DstPortWild: true, ProtoWild: true}
	high := Mask{SrcIPBits: 32, DstIPBits: 32}
	if err := ts.InsertRule(low, f, Match{Priority: 10, RuleID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ts.InsertRule(high, f, Match{Priority: 99, RuleID: 2}); err != nil {
		t.Fatal(err)
	}
	got, ok := ts.Classify(f)
	if !ok || got.RuleID != 2 || got.Priority != 99 {
		t.Fatalf("priority match = %+v", got)
	}
}

func TestTupleSpaceDeleteRule(t *testing.T) {
	ts := newTSS(t, FirstMatch)
	m := Mask{SrcIPBits: 32, DstIPBits: 32}
	f := flow(1)
	if err := ts.InsertRule(m, f, Match{RuleID: 7}); err != nil {
		t.Fatal(err)
	}
	if ts.RuleCount() != 1 {
		t.Fatalf("rule count = %d", ts.RuleCount())
	}
	if !ts.DeleteRule(m, f) {
		t.Fatal("delete failed")
	}
	if _, ok := ts.Classify(f); ok {
		t.Fatal("deleted rule still matches")
	}
	if ts.DeleteRule(Mask{SrcIPBits: 8}, f) {
		t.Fatal("delete with unknown mask succeeded")
	}
}

func TestTupleSpaceSharedMaskSharesTuple(t *testing.T) {
	ts := newTSS(t, FirstMatch)
	m := Mask{SrcIPBits: 24, SrcPortWild: true, DstPortWild: true, ProtoWild: true}
	for i := uint32(0); i < 50; i++ {
		f := packet.FiveTuple{SrcIP: i << 8} // distinct /24s
		if err := ts.InsertRule(m, f, Match{RuleID: i}); err != nil {
			t.Fatal(err)
		}
	}
	if len(ts.Tuples()) != 1 {
		t.Fatalf("%d tuples for one mask, want 1", len(ts.Tuples()))
	}
	if ts.RuleCount() != 50 {
		t.Fatalf("rule count = %d", ts.RuleCount())
	}
}

func timedPlatform(t *testing.T) (*halo.Platform, *TupleSpace, *cpu.Thread) {
	t.Helper()
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	ts := NewTupleSpace(p.Space, p.Alloc, FirstMatch, 1024)
	th := cpu.NewThread(p.Hier, 0)
	return p, ts, th
}

func installTestRules(t *testing.T, ts *TupleSpace, nTuples int) {
	t.Helper()
	for ti := 0; ti < nTuples; ti++ {
		m := Mask{SrcIPBits: uint8(32 - ti), DstIPBits: 32, SrcPortWild: ti%2 == 0}
		for r := uint32(0); r < 100; r++ {
			f := flow(r*37 + uint32(ti))
			if err := ts.InsertRule(m, f, Match{RuleID: uint32(ti)<<16 | r, Priority: uint16(ti)}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestClassifyTimedMatchesFunctional(t *testing.T) {
	_, ts, th := timedPlatform(t)
	installTestRules(t, ts, 5)
	for i := uint32(0); i < 500; i++ {
		f := flow(i)
		fm, fok := ts.Classify(f)
		tm, tok := ts.ClassifyTimed(th, f, cuckoo.DefaultLookupOptions())
		if fok != tok || fm != tm {
			t.Fatalf("timed classify diverged on flow %d: (%+v,%v) vs (%+v,%v)", i, tm, tok, fm, fok)
		}
	}
	if th.Now == 0 {
		t.Fatal("timed classification charged no cycles")
	}
}

func TestClassifyHaloMatchesFunctional(t *testing.T) {
	p, ts, th := timedPlatform(t)
	installTestRules(t, ts, 5)
	for i := uint32(0); i < 300; i++ {
		f := flow(i)
		fm, fok := ts.Classify(f)
		nm, nok := ts.ClassifyHaloNB(th, p.Unit, f)
		if fok != nok || fm != nm {
			t.Fatalf("HALO NB classify diverged on flow %d", i)
		}
		bm, bok := ts.ClassifyHaloB(th, p.Unit, f)
		if fok != bok || fm != bm {
			t.Fatalf("HALO B classify diverged on flow %d", i)
		}
	}
}

func TestClassifyHaloNBScalesWithTuples(t *testing.T) {
	// The core Fig.11 effect: software TSS cost grows ~linearly with tuple
	// count; HALO-NB cost grows far slower (parallel dispatch).
	costOf := func(nTuples int, f func(*halo.Platform, *TupleSpace, *cpu.Thread) uint64) uint64 {
		p := halo.NewPlatform(halo.DefaultPlatformConfig())
		ts := NewTupleSpace(p.Space, p.Alloc, FirstMatch, 1024)
		installTestRules(t, ts, nTuples)
		for _, tp := range ts.Tuples() {
			p.WarmTable(tp.Table)
		}
		th := cpu.NewThread(p.Hier, 0)
		return f(p, ts, th)
	}
	missFlow := packet.FiveTuple{SrcIP: 0xdeadbeef, DstIP: 0xdeadbeef} // misses all tuples
	swCost := func(p *halo.Platform, ts *TupleSpace, th *cpu.Thread) uint64 {
		start := th.Now
		for i := 0; i < 50; i++ {
			ts.ClassifyTimed(th, missFlow, cuckoo.DefaultLookupOptions())
		}
		return uint64(th.Now - start)
	}
	nbCost := func(p *halo.Platform, ts *TupleSpace, th *cpu.Thread) uint64 {
		start := th.Now
		for i := 0; i < 50; i++ {
			ts.ClassifyHaloNB(th, p.Unit, missFlow)
		}
		return uint64(th.Now - start)
	}
	sw5, sw20 := costOf(5, swCost), costOf(20, swCost)
	nb5, nb20 := costOf(5, nbCost), costOf(20, nbCost)
	swGrowth := float64(sw20) / float64(sw5)
	nbGrowth := float64(nb20) / float64(nb5)
	if swGrowth < 2.5 {
		t.Fatalf("software TSS growth 5→20 tuples = %.2f, want ~4", swGrowth)
	}
	if nbGrowth >= swGrowth {
		t.Fatalf("HALO NB growth %.2f not better than software %.2f", nbGrowth, swGrowth)
	}
}

func newEMC(t *testing.T, entries uint64) *EMC {
	t.Helper()
	space := mem.NewMemory()
	alloc := mem.NewAllocator(0x1000, 1<<30)
	e, err := NewEMC(space, alloc, entries)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEMCLearnAndHit(t *testing.T) {
	e := newEMC(t, 1024)
	f := flow(3)
	if _, ok := e.Lookup(f); ok {
		t.Fatal("empty EMC hit")
	}
	e.Learn(f, Match{RuleID: 42, Action: Action{Kind: ActionOutput, Port: 1}})
	m, ok := e.Lookup(f)
	if !ok || m.RuleID != 42 {
		t.Fatalf("EMC lookup after learn = %+v, %v", m, ok)
	}
	hits, misses, inserts := e.Stats()
	if hits != 1 || misses != 1 || inserts != 1 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, inserts)
	}
}

func TestEMCLearnUpdatesExisting(t *testing.T) {
	e := newEMC(t, 64)
	f := flow(1)
	e.Learn(f, Match{RuleID: 1})
	e.Learn(f, Match{RuleID: 2})
	m, _ := e.Lookup(f)
	if m.RuleID != 2 {
		t.Fatalf("re-learn did not update: %+v", m)
	}
	if e.Table().Size() != 1 {
		t.Fatalf("duplicate entries after re-learn: %d", e.Table().Size())
	}
}

func TestEMCEvictsWhenFull(t *testing.T) {
	e := newEMC(t, 64)
	for i := uint32(0); i < 500; i++ {
		e.Learn(flow(i), Match{RuleID: i})
	}
	if e.Table().Size() > 64 {
		t.Fatalf("EMC grew beyond capacity: %d", e.Table().Size())
	}
	// Recent flows should be present; ancient ones evicted.
	if _, ok := e.Lookup(flow(499)); !ok {
		t.Fatal("most recent flow evicted")
	}
	if _, ok := e.Lookup(flow(0)); ok {
		t.Fatal("oldest flow survived 500 learns into a 64-entry EMC")
	}
}
