package flowwire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"halo/internal/flowserve"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Op: OpHello, ReqID: 0},
		{Op: OpLookup, ReqID: 1, Payload: []byte("twenty-byte-key-....")},
		{Op: OpLookupMany, Status: StatusOK, ReqID: 1<<64 - 1, Payload: make([]byte, 4096)},
		{Op: OpStats, Status: StatusErrDraining, ReqID: 7},
	}
	for _, want := range cases {
		buf := AppendFrame(nil, &want)
		var got Frame
		if err := ReadFrame(bytes.NewReader(buf), 0, &got); err != nil {
			t.Fatalf("ReadFrame(%v): %v", want.Op, err)
		}
		if got.Op != want.Op || got.Status != want.Status || got.ReqID != want.ReqID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip mangled frame: got %+v want %+v", got, want)
		}
	}
}

func TestFrameChaining(t *testing.T) {
	var buf []byte
	for i := uint64(0); i < 10; i++ {
		buf = AppendFrame(buf, &Frame{Op: OpLookup, ReqID: i, Payload: []byte{byte(i)}})
	}
	r := bytes.NewReader(buf)
	for i := uint64(0); i < 10; i++ {
		var f Frame
		if err := ReadFrame(r, 0, &f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.ReqID != i || len(f.Payload) != 1 || f.Payload[0] != byte(i) {
			t.Fatalf("frame %d decoded as %+v", i, f)
		}
	}
	var f Frame
	if err := ReadFrame(r, 0, &f); err != io.EOF {
		t.Fatalf("read past the last frame: %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsShortLength(t *testing.T) {
	buf := binary.LittleEndian.AppendUint32(nil, headerRest-1)
	buf = append(buf, make([]byte, headerRest)...)
	var f Frame
	if err := ReadFrame(bytes.NewReader(buf), 0, &f); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short length = %v, want ErrShortFrame", err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	frame := AppendFrame(nil, &Frame{Op: OpLookup, ReqID: 1, Payload: make([]byte, 1024)})
	var f Frame
	if err := ReadFrame(bytes.NewReader(frame), 256, &f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame = %v, want ErrFrameTooLarge", err)
	}
	// The same frame passes a roomier limit.
	if err := ReadFrame(bytes.NewReader(frame), 4096, &f); err != nil {
		t.Fatalf("frame under the limit = %v", err)
	}
}

func TestReadFrameRejectsBadVersion(t *testing.T) {
	buf := AppendFrame(nil, &Frame{Op: OpLookup, ReqID: 1})
	buf[4] = Version + 1
	var f Frame
	if err := ReadFrame(bytes.NewReader(buf), 0, &f); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version = %v, want ErrBadVersion", err)
	}
}

func TestReadFrameRejectsReservedByte(t *testing.T) {
	buf := AppendFrame(nil, &Frame{Op: OpLookup, ReqID: 1})
	buf[7] = 0xff
	var f Frame
	if err := ReadFrame(bytes.NewReader(buf), 0, &f); !errors.Is(err, ErrBadReserved) {
		t.Fatalf("reserved byte = %v, want ErrBadReserved", err)
	}
}

func TestReadFrameShortRead(t *testing.T) {
	full := AppendFrame(nil, &Frame{Op: OpLookup, ReqID: 9, Payload: make([]byte, 64)})
	for _, cut := range []int{2, lenSize, headerSize - 1, headerSize + 10} {
		var f Frame
		err := ReadFrame(bytes.NewReader(full[:cut]), 0, &f)
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("truncated at %d = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	// A cut before any byte of the next frame is a clean EOF.
	var f Frame
	if err := ReadFrame(bytes.NewReader(nil), 0, &f); err != io.EOF {
		t.Fatalf("empty stream = %v, want io.EOF", err)
	}
}

func TestLookupManyCodec(t *testing.T) {
	keys := [][]byte{
		bytes.Repeat([]byte{1}, 20),
		bytes.Repeat([]byte{2}, 20),
		bytes.Repeat([]byte{3}, 20),
	}
	payload := appendLookupManyReq(nil, keys, 20)
	var parsed [][]byte
	parsed, st := parseLookupManyReq(payload, 20, parsed)
	if st != StatusOK || len(parsed) != 3 {
		t.Fatalf("parse = (%d keys, %v)", len(parsed), st)
	}
	for i := range keys {
		if !bytes.Equal(parsed[i], keys[i]) {
			t.Fatalf("key %d mangled", i)
		}
	}
	if _, st := parseLookupManyReq(payload, 16, nil); st != StatusErrKeyLen {
		t.Fatalf("key-length mismatch = %v, want StatusErrKeyLen", st)
	}
	if _, st := parseLookupManyReq(payload[:len(payload)-5], 20, nil); st != StatusErrMalformed {
		t.Fatalf("truncated body = %v, want StatusErrMalformed", st)
	}
	if _, st := parseLookupManyReq(payload[:3], 20, nil); st != StatusErrMalformed {
		t.Fatalf("truncated header = %v, want StatusErrMalformed", st)
	}
	huge := binary.LittleEndian.AppendUint32(nil, MaxBatchKeys+1)
	huge = binary.LittleEndian.AppendUint16(huge, 20)
	if _, st := parseLookupManyReq(huge, 20, nil); st != StatusErrOversized {
		t.Fatalf("over-count batch = %v, want StatusErrOversized", st)
	}

	want := []flowserve.Result{{Value: 42, OK: true}, {}, {Value: 1 << 63, OK: true}}
	reply := appendLookupManyReply(nil, want)
	got := make([]flowserve.Result, 8)
	n, err := parseLookupManyReply(reply, got)
	if err != nil || n != 3 {
		t.Fatalf("reply parse = (%d, %v)", n, err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := parseLookupManyReply(reply[:len(reply)-1], got); err == nil {
		t.Fatal("truncated reply parsed")
	}
}

func TestStatusErrMapping(t *testing.T) {
	if err := StatusOK.Err(OpLookup); err != nil {
		t.Fatalf("StatusOK = %v", err)
	}
	if err := StatusErrExists.Err(OpInsert); !errors.Is(err, flowserve.ErrKeyExists) {
		t.Fatalf("ERR_EXISTS = %v, want flowserve.ErrKeyExists", err)
	}
	if err := StatusErrFull.Err(OpInsert); !errors.Is(err, flowserve.ErrTableFull) {
		t.Fatalf("ERR_FULL = %v, want flowserve.ErrTableFull", err)
	}
	if err := StatusErrKeyLen.Err(OpInsert); !errors.Is(err, flowserve.ErrKeyLen) {
		t.Fatalf("ERR_KEYLEN = %v, want flowserve.ErrKeyLen", err)
	}
	var pe *ProtocolError
	if err := StatusErrMalformed.Err(OpLookup); !errors.As(err, &pe) || pe.Status != StatusErrMalformed {
		t.Fatalf("ERR_MALFORMED = %v, want *ProtocolError", err)
	}
	// Round trip through statusOf.
	for _, st := range []Status{StatusOK, StatusErrExists, StatusErrFull, StatusErrKeyLen} {
		if got := statusOf(st.Err(OpInsert)); got != st {
			t.Fatalf("statusOf(%v.Err()) = %v", st, got)
		}
	}
}
