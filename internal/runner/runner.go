// Package runner fans experiment sweep points out across a worker pool.
//
// Every experiment in internal/experiments decomposes into hermetic sweep
// points (see experiments.Sweep): each point builds its own platform, so
// points can run on any goroutine in any order. The pool here exploits
// that: it shards all points of all requested experiments across N
// workers, stores each row at its point index, and renders experiments in
// registry order as they complete — so the output is byte-identical to a
// serial experiments.RunAll, regardless of worker count or scheduling.
//
// Verify mode makes the determinism contract executable: every point runs
// twice — once in the pool, once serially on the coordinating goroutine —
// and any divergence in the rendered row values (which embed simulated
// cycle counts) fails the run.
package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"halo/internal/experiments"
	"halo/internal/stats"
)

// Options configure a pool run.
type Options struct {
	// Workers is the number of pool goroutines; <=0 means GOMAXPROCS.
	Workers int
	// Verify re-runs every point serially on the coordinating goroutine
	// and fails the run on any divergence from the pooled result.
	Verify bool
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// expState tracks one experiment's in-flight points. rows is indexed by
// Point.Index; done closes when the last point lands so the renderer can
// stream experiments in order while later ones still compute.
type expState struct {
	points []experiments.Point
	rows   []any
	errs   []error
	remain int
	done   chan struct{}
}

type task struct {
	exp   int
	point experiments.Point
}

// Run executes every sweep point of every runner on a shared worker pool
// and writes the rendered experiments to w in input order, streaming each
// as soon as its points complete. With opt.Verify it re-runs each point
// serially and compares. The error aggregates every point panic and every
// verify divergence; experiments with failures are not rendered.
func Run(opt Options, cfg experiments.Config, runners []experiments.Runner, w io.Writer) error {
	_, err := run(opt, cfg, runners, w)
	return err
}

// run is Run's body; it additionally returns the per-experiment states so
// RunDoc can assemble the stats document from the completed rows.
func run(opt Options, cfg experiments.Config, runners []experiments.Runner, w io.Writer) ([]*expState, error) {
	states := make([]*expState, len(runners))
	var tasks []task
	for i, r := range runners {
		pts := r.Sweep.Points(cfg)
		states[i] = &expState{
			points: pts,
			rows:   make([]any, len(pts)),
			remain: len(pts),
			done:   make(chan struct{}),
		}
		if len(pts) == 0 {
			close(states[i].done)
		}
		for _, p := range pts {
			tasks = append(tasks, task{exp: i, point: p})
		}
	}

	var mu sync.Mutex
	queue := make(chan task)
	var wg sync.WaitGroup
	for n := opt.workers(); n > 0; n-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range queue {
				st := states[t.exp]
				row, err := runPoint(runners[t.exp], cfg, t.point)
				mu.Lock()
				if err != nil {
					st.errs = append(st.errs, err)
				}
				st.rows[t.point.Index] = row
				st.remain--
				if st.remain == 0 {
					close(st.done)
				}
				mu.Unlock()
			}
		}()
	}
	go func() {
		for _, t := range tasks {
			queue <- t
		}
		close(queue)
	}()

	// Stream-render in input order; experiment i+1 keeps computing while
	// experiment i renders.
	var failures []error
	for i, r := range runners {
		<-states[i].done
		st := states[i]
		mu.Lock()
		errs := st.errs
		mu.Unlock()
		if opt.Verify && len(errs) == 0 {
			errs = verifyExperiment(r, cfg, st)
		}
		if len(errs) > 0 {
			failures = append(failures, errs...)
			continue
		}
		fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Paper)
		r.Sweep.Render(cfg, st.rows, w)
	}
	wg.Wait()
	return states, errors.Join(failures...)
}

// RunDoc executes the runners like Run (rendered tables still stream to w)
// and additionally returns the machine-readable stats document: every
// point's row marshalled verbatim, its component snapshot from cfg.Stats
// (seeded with a fresh collector when nil), and per-experiment merged
// snapshots. The document depends only on (cfg, runners) — never on worker
// count or scheduling — so serial and pooled runs encode to identical bytes.
func RunDoc(opt Options, cfg experiments.Config, runners []experiments.Runner, w io.Writer) (*stats.Document, error) {
	if cfg.Stats == nil {
		cfg.Stats = stats.NewCollector()
	}
	states, err := run(opt, cfg, runners, w)
	if err != nil {
		return nil, err
	}
	doc := &stats.Document{Schema: stats.SchemaVersion, Quick: cfg.Quick, Seed: cfg.Seed}
	for i, r := range runners {
		st := states[i]
		ed := stats.ExperimentDoc{ID: r.ID, Paper: r.Paper, Points: []stats.PointDoc{}}
		merged := stats.NewSnapshot()
		for j, p := range st.points {
			row, err := json.Marshal(st.rows[j])
			if err != nil {
				return nil, fmt.Errorf("runner: marshalling %s point %q row: %w", r.ID, p.Label, err)
			}
			pd := stats.PointDoc{Label: p.Label, Row: row}
			if snap := cfg.Stats.Snapshot(r.ID, p.Index); snap != nil {
				pd.Snapshot = snap
				merged.Merge(snap)
			}
			ed.Points = append(ed.Points, pd)
		}
		if !merged.Empty() {
			ed.Snapshot = merged
		}
		doc.Experiments = append(doc.Experiments, ed)
	}
	return doc, nil
}

// RunAll runs the whole experiment registry on the pool.
func RunAll(opt Options, cfg experiments.Config, w io.Writer) error {
	return Run(opt, cfg, experiments.Registry(), w)
}

// verifyExperiment recomputes every point serially and compares it with
// the pooled row. Rows are plain pointer-free values, so their %#v
// rendering (simulated cycle counts included) is a faithful
// serialization: any scheduling-dependent behaviour shows up as a diff.
func verifyExperiment(r experiments.Runner, cfg experiments.Config, st *expState) []error {
	var errs []error
	for i, p := range st.points {
		ref, err := runPoint(r, cfg, p)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		want := fmt.Sprintf("%#v", ref)
		got := fmt.Sprintf("%#v", st.rows[i])
		if got != want {
			errs = append(errs, fmt.Errorf(
				"experiment %s point %q: pooled result diverges from serial\n  serial: %s\n  pooled: %s",
				r.ID, p.Label, want, got))
		}
	}
	return errs
}

// runPoint executes one sweep point, converting panics into errors so one
// bad point cannot take the pool down.
func runPoint(r experiments.Runner, cfg experiments.Config, p experiments.Point) (row any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("experiment %s point %q panicked: %v", r.ID, p.Label, rec)
		}
	}()
	return r.Sweep.RunPoint(cfg, p), nil
}

// Map runs fn over items on up to `workers` goroutines (<=0 means
// GOMAXPROCS) and returns the results in input order. It is the pool's
// primitive for callers outside the experiment registry, e.g. running
// several engine configurations of a switch simulation concurrently.
func Map[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	n := workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(items) {
		n = len(items)
	}
	out := make([]R, len(items))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(items) {
					return
				}
				out[i] = fn(i, items[i])
			}
		}()
	}
	wg.Wait()
	return out
}
