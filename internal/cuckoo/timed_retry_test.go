package cuckoo

import (
	"testing"

	"halo/internal/stats"
)

// TestLookupKeyLenMismatchPathsAgree pins the fix for the timed/functional
// divergence on mismatched key lengths: both paths return a miss, both count
// the lookup (so hit rates computed from either path match), and the timed
// path charges the prologue and early exit instead of returning for free.
func TestLookupKeyLenMismatchPathsAgree(t *testing.T) {
	tbl, th := timedFixture(t, Config{Entries: 256, KeyLen: 16})
	if err := tbl.Insert(key16(1), 10); err != nil {
		t.Fatal(err)
	}
	base := tbl.Stats()

	short := make([]byte, 7) // wrong length for a 16-byte-key table
	fv, fok := tbl.Lookup(short)
	if fok || fv != 0 {
		t.Fatalf("functional Lookup(short key) = (%d,%v), want (0,false)", fv, fok)
	}
	instrBefore := th.Counts.Total()
	nowBefore := th.Now
	tv, tok := tbl.TimedLookup(th, short, DefaultLookupOptions())
	if tok || tv != 0 {
		t.Fatalf("TimedLookup(short key) = (%d,%v), want (0,false)", tv, tok)
	}

	s := tbl.Stats()
	if got := s.Lookups - base.Lookups; got != 2 {
		t.Fatalf("mismatched-length lookups counted %d times, want 2 (one per path)", got)
	}
	if s.Hits != base.Hits {
		t.Fatalf("mismatched-length lookup counted as a hit")
	}
	if charged := th.Counts.Total() - instrBefore; charged == 0 {
		t.Fatal("timed early exit charged no instructions")
	} else if charged > 100 {
		t.Fatalf("timed early exit charged %d instructions, want a short prologue+return", charged)
	}
	if th.Now == nowBefore {
		t.Fatal("timed early exit consumed no cycles")
	}
	if h := th.Hist("lat.lookup.software"); h == nil || h.Count() == 0 {
		t.Fatal("timed early exit not recorded in the software-lookup latency histogram")
	}
}

// TestTimedLookupRetryAccounting pins the optimistic-lock retry counters: a
// version counter that keeps moving forces re-probes, and exhausting the
// bound is traced in RetryExhausted rather than silently returning.
func TestTimedLookupRetryAccounting(t *testing.T) {
	tbl, th := timedFixture(t, Config{Entries: 256, KeyLen: 16})
	for i := uint64(0); i < 100; i++ {
		if err := tbl.Insert(key16(i), i*3); err != nil {
			t.Fatal(err)
		}
	}

	// A writer that interleaves with exactly one probe: one retry, no
	// exhaustion, and the lookup still returns the right value.
	bumps := 1
	tbl.probeHook = func() {
		if bumps > 0 {
			bumps--
			tbl.bumpVersion()
		}
	}
	v, ok := tbl.TimedLookup(th, key16(5), DefaultLookupOptions())
	if !ok || v != 15 {
		t.Fatalf("lookup under one interleaved write = (%d,%v), want (15,true)", v, ok)
	}
	s := tbl.Stats()
	if s.Retries != 1 || s.RetryExhausted != 0 {
		t.Fatalf("one interleaved write: Retries=%d RetryExhausted=%d, want 1,0", s.Retries, s.RetryExhausted)
	}

	// A writer that never stops: the loop re-probes maxLookupRetries times,
	// then gives up and records the exhaustion.
	tbl.probeHook = func() { tbl.bumpVersion() }
	v, ok = tbl.TimedLookup(th, key16(7), DefaultLookupOptions())
	if !ok || v != 21 {
		t.Fatalf("lookup under a write storm = (%d,%v), want (21,true)", v, ok)
	}
	s = tbl.Stats()
	if s.Retries != 1+maxLookupRetries || s.RetryExhausted != 1 {
		t.Fatalf("write storm: Retries=%d RetryExhausted=%d, want %d,1",
			s.Retries, s.RetryExhausted, 1+maxLookupRetries)
	}
	tbl.probeHook = nil

	// Without the optimistic lock there is no retry protocol to count.
	before := tbl.Stats()
	tbl.probeHook = func() { tbl.bumpVersion() }
	if _, ok := tbl.TimedLookup(th, key16(9), LookupOptions{OptimisticLock: false, Prefetch: true}); !ok {
		t.Fatal("lock-free lookup missed a present key")
	}
	s = tbl.Stats()
	if s.Retries != before.Retries || s.RetryExhausted != before.RetryExhausted {
		t.Fatal("lock-free lookup moved the retry counters")
	}
	tbl.probeHook = nil

	// The counters surface in the stats snapshot under their dotted names.
	snap := stats.NewSnapshot()
	tbl.Stats().CollectInto(snap)
	if snap.Counter("cuckoo.lookup.retries") != s.Retries {
		t.Fatalf("snapshot cuckoo.lookup.retries = %d, want %d",
			snap.Counter("cuckoo.lookup.retries"), s.Retries)
	}
	if snap.Counter("cuckoo.lookup.retry_exhausted") != s.RetryExhausted {
		t.Fatalf("snapshot cuckoo.lookup.retry_exhausted = %d, want %d",
			snap.Counter("cuckoo.lookup.retry_exhausted"), s.RetryExhausted)
	}
}
