package vswitch

import (
	"testing"

	"halo/internal/classify"
	"halo/internal/cpu"
	"halo/internal/halo"
	"halo/internal/trafficgen"
)

type workloadInstaller struct{ w *trafficgen.Workload }

func (wi workloadInstaller) Install(ts *classify.TupleSpace) error { return wi.w.InstallRules(ts) }

func newSwitch(t *testing.T, engine Engine, scn trafficgen.Scenario) (*Switch, *trafficgen.Workload, *cpu.Thread) {
	t.Helper()
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	cfg := DefaultConfig()
	cfg.Engine = engine
	sw, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trafficgen.Generate(scn, 99)
	if err := sw.InstallRules([]RuleInstaller{workloadInstaller{w}}); err != nil {
		t.Fatal(err)
	}
	sw.Warm()
	return sw, w, cpu.NewThread(p.Hier, 0)
}

var smallScenario = trafficgen.Scenario{
	Name: "test-small", Flows: 2000, Rules: 4, Popularity: trafficgen.Uniform,
}

func TestEveryPacketClassified(t *testing.T) {
	sw, w, th := newSwitch(t, EngineSoftware, smallScenario)
	for i := 0; i < 3000; i++ {
		pkt, fi := w.NextPacket()
		m, ok := sw.ProcessPacket(th, &pkt)
		if !ok {
			t.Fatalf("packet %d (flow %d) unclassified", i, fi)
		}
		if int(m.RuleID) != w.FlowRule[fi]+1 {
			t.Fatalf("packet %d matched rule %d, want %d", i, m.RuleID, w.FlowRule[fi]+1)
		}
	}
	if sw.Packets() != 3000 {
		t.Fatalf("packet count = %d", sw.Packets())
	}
}

func TestHaloEngineClassifiesIdentically(t *testing.T) {
	swS, wS, thS := newSwitch(t, EngineSoftware, smallScenario)
	swH, wH, thH := newSwitch(t, EngineHalo, smallScenario)
	for i := 0; i < 2000; i++ {
		pktS, _ := wS.NextPacket()
		pktH, _ := wH.NextPacket()
		mS, okS := swS.ProcessPacket(thS, &pktS)
		mH, okH := swH.ProcessPacket(thH, &pktH)
		if okS != okH || mS != mH {
			t.Fatalf("engines diverged on packet %d: (%+v,%v) vs (%+v,%v)", i, mS, okS, mH, okH)
		}
	}
}

func TestEMCConvergesOnSmallFlowCount(t *testing.T) {
	// 2000 flows fit the 8K EMC; with eager learning the EMC absorbs the
	// working set after one pass and the MegaFlow layer goes quiet.
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	cfg := DefaultConfig()
	cfg.EMCInsertProb = 1
	sw, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trafficgen.Generate(smallScenario, 99)
	if err := sw.InstallRules([]RuleInstaller{workloadInstaller{w}}); err != nil {
		t.Fatal(err)
	}
	sw.Warm()
	th := cpu.NewThread(p.Hier, 0)
	for i := 0; i < 20000; i++ {
		pkt, _ := w.NextPacket()
		sw.ProcessPacket(th, &pkt)
	}
	if sw.EMC.HitRate() < 0.7 {
		t.Fatalf("EMC hit rate %.2f after convergence window", sw.EMC.HitRate())
	}
	// With OVS's default probabilistic insertion (1/100), convergence is
	// much slower — that difference is intentional behaviour.
	hits, misses := sw.MegaStats()
	if hits == 0 {
		t.Fatalf("megaflow never consulted (hits=%d misses=%d)", hits, misses)
	}
}

func TestBreakdownStagesAllPresent(t *testing.T) {
	sw, w, th := newSwitch(t, EngineSoftware, smallScenario)
	for i := 0; i < 2000; i++ {
		pkt, _ := w.NextPacket()
		sw.ProcessPacket(th, &pkt)
	}
	b := sw.Breakdown()
	for s := StagePacketIO; s <= StageOther; s++ {
		if s == StageOpenFlow {
			continue // disabled in the default configuration
		}
		if b[s] == 0 {
			t.Fatalf("stage %v charged no cycles: %+v", s, b)
		}
	}
	if b.Total() == 0 || sw.CyclesPerPacket() < 100 {
		t.Fatalf("implausible per-packet cost %.0f", sw.CyclesPerPacket())
	}
}

func TestClassificationShareGrowsWithFlows(t *testing.T) {
	// The §3.2 observation: more flows and rules → classification
	// dominates. Compare a small scenario against a large one.
	run := func(scn trafficgen.Scenario) float64 {
		sw, w, th := newSwitch(t, EngineSoftware, scn)
		for i := 0; i < 4000; i++ {
			pkt, _ := w.NextPacket()
			sw.ProcessPacket(th, &pkt)
		}
		return sw.Breakdown().ClassificationShare()
	}
	small := run(trafficgen.Scenario{Name: "s", Flows: 3000, Rules: 1, Popularity: trafficgen.Zipf})
	large := run(trafficgen.Scenario{Name: "l", Flows: 200_000, Rules: 20, Popularity: trafficgen.Uniform})
	if large <= small {
		t.Fatalf("classification share small=%.2f large=%.2f; must grow", small, large)
	}
	if large < 0.4 {
		t.Fatalf("large-scenario classification share %.2f; paper sees up to 0.78", large)
	}
}

func TestHaloEngineFasterUnderMegaFlowLoad(t *testing.T) {
	scn := trafficgen.Scenario{Name: "l", Flows: 150_000, Rules: 15, Popularity: trafficgen.Uniform}
	run := func(engine Engine) float64 {
		sw, w, th := newSwitch(t, engine, scn)
		for i := 0; i < 1500; i++ { // warm
			pkt, _ := w.NextPacket()
			sw.ProcessPacket(th, &pkt)
		}
		sw.ResetStats()
		for i := 0; i < 3000; i++ {
			pkt, _ := w.NextPacket()
			sw.ProcessPacket(th, &pkt)
		}
		return sw.CyclesPerPacket()
	}
	sw := run(EngineSoftware)
	hw := run(EngineHalo)
	if hw >= sw {
		t.Fatalf("HALO engine (%.0f cyc/pkt) not faster than software (%.0f)", hw, sw)
	}
}

func TestResetStats(t *testing.T) {
	sw, w, th := newSwitch(t, EngineSoftware, smallScenario)
	pkt, _ := w.NextPacket()
	sw.ProcessPacket(th, &pkt)
	sw.ResetStats()
	if sw.Packets() != 0 || sw.Breakdown().Total() != 0 {
		t.Fatal("ResetStats left state")
	}
}

func TestMegaFlowMissCounted(t *testing.T) {
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	sw, err := New(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	th := cpu.NewThread(p.Hier, 0)
	// No rules installed: every packet misses both layers.
	w := trafficgen.Generate(smallScenario, 1)
	pkt, _ := w.NextPacket()
	if _, ok := sw.ProcessPacket(th, &pkt); ok {
		t.Fatal("packet classified with no rules installed")
	}
	if _, misses := sw.MegaStats(); misses != 1 {
		t.Fatalf("megaflow misses = %d", misses)
	}
}
