package halo

import (
	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/mem"
	"halo/internal/sim"
	"halo/internal/stats"
)

// Mode is the hybrid controller's current execution choice (paper §4.6).
type Mode int

// Execution modes.
const (
	// ModeSoftware runs lookups on the core: fastest when the active flow
	// set fits in the L1 cache.
	ModeSoftware Mode = iota
	// ModeAccel offloads lookups to the HALO accelerators.
	ModeAccel
)

func (m Mode) String() string {
	if m == ModeSoftware {
		return "software"
	}
	return "halo"
}

// HybridConfig tunes the controller.
type HybridConfig struct {
	// SoftwareThreshold is the active-flow estimate below which lookups
	// run in software (paper: 64 flows — the L1-resident regime).
	SoftwareThreshold float64
	// WindowCycles is the flow-register scan period.
	WindowCycles sim.Cycle
	// SoftwareOpts configures the software path when selected.
	SoftwareOpts cuckoo.LookupOptions
}

// DefaultHybridConfig matches the paper's evaluation (§6: 64 flows).
func DefaultHybridConfig() HybridConfig {
	return HybridConfig{
		SoftwareThreshold: 64,
		WindowCycles:      100_000,
		SoftwareOpts:      cuckoo.DefaultLookupOptions(),
	}
}

// Hybrid switches between software and accelerator lookups based on the
// linear-counting flow registers. In accelerator mode the hardware registers
// feed the estimate; in software mode the runtime maintains a mirrored
// 32-bit register (cheap: one hash and an OR per lookup, paper §4.6).
type Hybrid struct {
	cfg  HybridConfig
	unit *Unit
	mode Mode

	softReg *FlowRegister

	// windowStart anchors the current measurement window. It initializes
	// lazily from the first observed cycle (windowStarted): threads rarely
	// start at cycle 0, and anchoring at 0 would close a window full of
	// nothing on the very first lookup and spuriously switch to software.
	windowStart   sim.Cycle
	windowStarted bool
	// windowLookups counts lookups observed since the window opened; a
	// window that closes with zero lookups says nothing about the active
	// flow set and must not flip the mode.
	windowLookups uint64

	switches  uint64
	scans     uint64
	swLookups uint64
	hwLookups uint64
	timeline  []SwitchEvent
}

// SwitchEvent records one mode transition for timelines and reports.
type SwitchEvent struct {
	At       sim.Cycle
	From, To Mode
	Estimate float64 // the flow estimate that triggered the switch
}

// NewHybrid builds a controller over a HALO unit, starting in accelerator
// mode.
func NewHybrid(cfg HybridConfig, unit *Unit) *Hybrid {
	return &Hybrid{
		cfg:     cfg,
		unit:    unit,
		mode:    ModeAccel,
		softReg: NewFlowRegister(unit.cfg.FlowRegBits),
	}
}

// Mode returns the current execution mode.
func (h *Hybrid) Mode() Mode { return h.mode }

// Switches returns how many mode transitions have occurred.
func (h *Hybrid) Switches() uint64 { return h.switches }

// Lookups returns the per-mode lookup counts.
func (h *Hybrid) Lookups() (software, accel uint64) { return h.swLookups, h.hwLookups }

// Scans returns how many measurement windows have closed.
func (h *Hybrid) Scans() uint64 { return h.scans }

// Timeline returns the mode-switch history in occurrence order.
func (h *Hybrid) Timeline() []SwitchEvent { return h.timeline }

// CollectInto adds the controller's counters to a snapshot under the
// hybrid.* names.
func (h *Hybrid) CollectInto(s *stats.Snapshot) {
	s.Add("hybrid.switches", h.switches)
	s.Add("hybrid.scans", h.scans)
	s.Add("hybrid.lookups.software", h.swLookups)
	s.Add("hybrid.lookups.accel", h.hwLookups)
}

// Scan gives the controller a chance to close the measurement window at
// cycle now — the paper's periodic flow-register scan. Every lookup calls
// it implicitly; datapaths with long idle gaps may also call it from a
// timer. A window that observed no lookups keeps the current mode: an
// empty register is indistinguishable from "no traffic", not evidence of a
// small flow set.
func (h *Hybrid) Scan(now sim.Cycle) { h.maybeScan(now) }

// maybeScan closes the measurement window and re-evaluates the mode.
func (h *Hybrid) maybeScan(now sim.Cycle) {
	if !h.windowStarted {
		// First observation anchors the window.
		h.windowStart = now
		h.windowStarted = true
		return
	}
	elapsed := now - h.windowStart
	if elapsed < h.cfg.WindowCycles {
		return
	}
	// Advance by whole windows so the scan cadence does not drift with
	// inter-lookup gaps.
	h.windowStart += elapsed / h.cfg.WindowCycles * h.cfg.WindowCycles
	h.scans++
	observed := h.windowLookups
	h.windowLookups = 0

	var est float64
	if h.mode == ModeAccel {
		est = h.unit.ActiveFlowEstimate()
	} else {
		est = h.softReg.Estimate()
	}
	// Reset BOTH registers at every window close. The inactive register
	// would otherwise carry bits from the last window it was active in,
	// inflating its first post-switch estimate and causing premature
	// switch-back.
	h.unit.ResetFlowWindow()
	h.softReg.Reset()

	if observed == 0 {
		return
	}
	want := ModeAccel
	if est < h.cfg.SoftwareThreshold {
		want = ModeSoftware
	}
	if want != h.mode {
		h.timeline = append(h.timeline, SwitchEvent{At: now, From: h.mode, To: want, Estimate: est})
		h.mode = want
		h.switches++
	}
}

// Lookup performs one flow lookup through whichever engine the controller
// currently selects, charging the thread either way.
func (h *Hybrid) Lookup(th *cpu.Thread, table *cuckoo.Table, key []byte) (uint64, bool) {
	start := th.Now
	h.maybeScan(th.Now)
	h.windowLookups++
	if h.mode == ModeSoftware {
		v, ok := h.lookupSoftware(th, table, key)
		th.Record("lat.lookup.hybrid", th.Now-start)
		return v, ok
	}
	h.hwLookups++
	v, ok := h.unit.LookupB(th, table.Base(), key)
	th.Record("lat.lookup.hybrid", th.Now-start)
	return v, ok
}

// LookupAt performs one flow lookup where the key already resides in
// simulated memory at keyAddr (a packet buffer); key carries the same bytes
// for the software path. Datapaths use this form so the accelerator mode
// avoids key staging.
func (h *Hybrid) LookupAt(th *cpu.Thread, table *cuckoo.Table, key []byte, keyAddr mem.Addr) (uint64, bool) {
	start := th.Now
	h.maybeScan(th.Now)
	h.windowLookups++
	if h.mode == ModeSoftware {
		v, ok := h.lookupSoftware(th, table, key)
		th.Record("lat.lookup.hybrid", th.Now-start)
		return v, ok
	}
	h.hwLookups++
	v, ok := h.unit.LookupBAt(th, table.Base(), keyAddr)
	th.Record("lat.lookup.hybrid", th.Now-start)
	return v, ok
}

func (h *Hybrid) lookupSoftware(th *cpu.Thread, table *cuckoo.Table, key []byte) (uint64, bool) {
	h.swLookups++
	// Maintain the software-side flow register: hash + mask + OR.
	h.softReg.ObserveKey(key)
	th.ALU(3)
	return table.TimedLookup(th, key, h.cfg.SoftwareOpts)
}
