package halo_test

import (
	"bytes"
	"testing"

	"halo"
)

func TestFacadeMemoryAndDMA(t *testing.T) {
	sys := halo.New()
	buf := sys.AllocLines(2)
	data := []byte("ddio-delivered header bytes")
	sys.DMAWrite(buf, data)
	got := make([]byte, len(data))
	sys.ReadMemory(buf, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("DMA round trip = %q", got)
	}
	// The delivered line is usable as an accelerator key source.
	table, err := sys.NewTable(halo.TableConfig{Entries: 64, KeyLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	key := facadeKey(1)
	if err := table.Insert(key, 42); err != nil {
		t.Fatal(err)
	}
	sys.DMAWrite(buf, key)
	th := sys.Thread(0)
	if v, ok := sys.Unit().LookupBAt(th, table.Base(), buf); !ok || v != 42 {
		t.Fatalf("in-place lookup = (%d,%v)", v, ok)
	}
}

func TestFacadeTree(t *testing.T) {
	sys := halo.New()
	rules := []halo.TreeRule{halo.AnyTreeRule(1, 7)}
	r2 := halo.AnyTreeRule(9, 8)
	r2.Lo[3], r2.Hi[3] = 80, 80 // dst port 80 outranks the default
	rules = append(rules, r2)
	tree, err := sys.BuildTree(rules)
	if err != nil {
		t.Fatal(err)
	}
	web := halo.FiveTuple{SrcIP: 1, DstPort: 80, Proto: 6}
	if v, ok := tree.Classify(web); !ok || v != 8 {
		t.Fatalf("tree classify = (%d,%v)", v, ok)
	}
	other := halo.FiveTuple{SrcIP: 1, DstPort: 81, Proto: 6}
	if v, ok := tree.Classify(other); !ok || v != 7 {
		t.Fatalf("default classify = (%d,%v)", v, ok)
	}
	// Accelerated walk agrees.
	th := sys.Thread(0)
	keyBuf := sys.AllocLines(1)
	sys.DMAWrite(keyBuf, halo.TreeKey(web))
	if v, ok := tree.ClassifyHalo(th, sys.Unit(), keyBuf); !ok || v != 8 {
		t.Fatalf("accelerated classify = (%d,%v)", v, ok)
	}
}

func TestFacadeWithConfig(t *testing.T) {
	cfg := halo.DefaultPlatformConfig()
	cfg.Unit.Accel.ScoreboardDepth = 4
	custom := halo.New(halo.WithConfig(cfg))
	if custom.Cores() != 16 {
		t.Fatalf("cores = %d", custom.Cores())
	}
	sw, err := custom.NewSwitch(halo.DefaultSwitchConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sw == nil {
		t.Fatal("nil switch")
	}
}
