package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	check := func(opSel uint8, key, res uint64, reg uint8) bool {
		ops := []Opcode{OpLookupB, OpLookupNB, OpSnapshotRead}
		in := Instruction{
			Op:         ops[int(opSel)%len(ops)],
			KeyAddr:    key,
			ResultAddr: res,
			DstReg:     Reg(reg % 16),
		}
		got, n, err := Decode(in.Encode())
		return err == nil && n == EncodedLen && got == in
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte{0x0F}); err != ErrShortInstruction {
		t.Fatalf("short decode err = %v", err)
	}
	buf := Instruction{Op: OpLookupB}.Encode()
	buf[0] = 0x90
	if _, _, err := Decode(buf); err != ErrBadEscape {
		t.Fatalf("bad escape err = %v", err)
	}
	buf = Instruction{Op: OpLookupB}.Encode()
	buf[2] = 0x00
	if _, _, err := Decode(buf); err != ErrBadOpcode {
		t.Fatalf("bad opcode err = %v", err)
	}
	buf = Instruction{Op: OpLookupB}.Encode()
	buf[3] = 99
	if _, _, err := Decode(buf); err != ErrBadRegister {
		t.Fatalf("bad register err = %v", err)
	}
}

func TestExpandShapes(t *testing.T) {
	b := Instruction{Op: OpLookupB}.Expand()
	if len(b) != 3 || b[1] != UopAwaitResult {
		t.Fatalf("LOOKUP_B expansion = %v", b)
	}
	nb := Instruction{Op: OpLookupNB}.Expand()
	if len(nb) != 1 || nb[0] != UopIssueQuery {
		t.Fatalf("LOOKUP_NB expansion = %v; must retire at issue", nb)
	}
	sr := Instruction{Op: OpSnapshotRead}.Expand()
	if len(sr) != 2 || sr[0] != UopSnapshotLoad {
		t.Fatalf("SNAPSHOT_READ expansion = %v", sr)
	}
}

func TestBlockingSemantics(t *testing.T) {
	if !(Instruction{Op: OpLookupB}).Blocking() {
		t.Fatal("LOOKUP_B must block")
	}
	if (Instruction{Op: OpLookupNB}).Blocking() {
		t.Fatal("LOOKUP_NB must not block")
	}
	if !(Instruction{Op: OpSnapshotRead}).Blocking() {
		t.Fatal("SNAPSHOT_READ is a load; it blocks")
	}
}

func TestStringForms(t *testing.T) {
	in := Instruction{Op: OpLookupNB, KeyAddr: 0x1000, ResultAddr: 0x2000}
	if got := in.String(); got != "LOOKUP_NB [0x1000], [0x2000]" {
		t.Fatalf("String() = %q", got)
	}
	if OpLookupB.String() != "LOOKUP_B" {
		t.Fatalf("opcode string = %q", OpLookupB.String())
	}
}

func TestDecodeStream(t *testing.T) {
	// Several instructions back to back decode cleanly.
	var stream []byte
	want := []Instruction{
		{Op: OpLookupNB, KeyAddr: 1, ResultAddr: 2},
		{Op: OpLookupNB, KeyAddr: 3, ResultAddr: 4},
		{Op: OpSnapshotRead, ResultAddr: 4, DstReg: 5},
	}
	for _, in := range want {
		stream = append(stream, in.Encode()...)
	}
	for i, w := range want {
		in, n, err := Decode(stream)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if in != w {
			t.Fatalf("decode %d = %+v, want %+v", i, in, w)
		}
		stream = stream[n:]
	}
	if len(stream) != 0 {
		t.Fatal("stream not fully consumed")
	}
}

func TestAllStringForms(t *testing.T) {
	b := Instruction{Op: OpLookupB, KeyAddr: 0x10, DstReg: 3}
	if got := b.String(); got != "LOOKUP_B [0x10], r3" {
		t.Errorf("String() = %q", got)
	}
	sr := Instruction{Op: OpSnapshotRead, ResultAddr: 0x20, DstReg: 4}
	if got := sr.String(); got != "SNAPSHOT_READ [0x20], r4" {
		t.Errorf("String() = %q", got)
	}
	bad := Instruction{Op: Opcode(0x99)}
	if Opcode(0x99).String() == "" || bad.String() == "" {
		t.Error("unknown opcode renders empty")
	}
	if OpLookupNB.String() != "LOOKUP_NB" || OpSnapshotRead.String() != "SNAPSHOT_READ" {
		t.Error("opcode names wrong")
	}
	if bad.Expand() != nil {
		t.Error("unknown opcode expands")
	}
}
