package stats

import (
	"sort"
	"sync"
)

// Snapshot aggregates one measurement's counters and latency histograms
// under stable dotted names (e.g. "cache.llc.misses", "lat.lookup.accel").
// Components publish into a snapshot through their CollectInto methods;
// Add accumulates, so several components and threads merge into one
// snapshot cleanly.
type Snapshot struct {
	Counters map[string]uint64     `json:"counters,omitempty"`
	Hists    map[string]*Histogram `json:"histograms,omitempty"`
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot { return &Snapshot{} }

// Add accumulates v into the named counter (creating it at zero first, so
// counters appear in the output even when their value is zero — a stable
// schema diffs better than a sparse one).
func (s *Snapshot) Add(name string, v uint64) {
	if s.Counters == nil {
		s.Counters = make(map[string]uint64)
	}
	s.Counters[name] += v
}

// Counter returns a counter's value (zero when absent).
func (s *Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Observe records one value into the named histogram.
func (s *Snapshot) Observe(name string, v uint64) {
	s.hist(name).Observe(v)
}

// MergeHist merges an external histogram into the named one.
func (s *Snapshot) MergeHist(name string, h *Histogram) {
	if h == nil || h.Count() == 0 {
		return
	}
	s.hist(name).Merge(h)
}

// Hist returns the named histogram, or nil when absent.
func (s *Snapshot) Hist(name string) *Histogram { return s.Hists[name] }

func (s *Snapshot) hist(name string) *Histogram {
	if s.Hists == nil {
		s.Hists = make(map[string]*Histogram)
	}
	h := s.Hists[name]
	if h == nil {
		h = NewHistogram()
		s.Hists[name] = h
	}
	return h
}

// Merge accumulates another snapshot into s.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	for name, v := range o.Counters {
		s.Add(name, v)
	}
	for name, h := range o.Hists {
		s.MergeHist(name, h)
	}
}

// Empty reports whether the snapshot holds no data at all.
func (s *Snapshot) Empty() bool { return len(s.Counters) == 0 && len(s.Hists) == 0 }

// Names returns the counter names in sorted order.
func (s *Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Collector gathers per-point snapshots from concurrently executing sweep
// points, keyed by (experiment ID, point index). Recording the same point
// twice overwrites — the runner's verify mode runs every point twice, and
// the determinism contract guarantees both runs produce identical data.
type Collector struct {
	mu   sync.Mutex
	recs map[string]map[int]*Snapshot
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record stores a point's snapshot (last write wins).
func (c *Collector) Record(experiment string, index int, s *Snapshot) {
	if c == nil || s == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.recs == nil {
		c.recs = make(map[string]map[int]*Snapshot)
	}
	pts := c.recs[experiment]
	if pts == nil {
		pts = make(map[int]*Snapshot)
		c.recs[experiment] = pts
	}
	pts[index] = s
}

// Snapshot returns the snapshot recorded for a point, or nil.
func (c *Collector) Snapshot(experiment string, index int) *Snapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recs[experiment][index]
}
