package flowserve

import "sync"

// Result is the outcome of one lookup: the stored value and whether the key
// was present. A miss is the zero Result.
type Result struct {
	Value uint64
	OK    bool
}

// Reader is the read half of the serving API: blocking single-key lookup
// (the paper's LOOKUP_B) and batched lookup (LOOKUP_NB). It is implemented
// by *Table (in-process) and by *flowwire.Client (remote over the wire
// protocol), so callers drive either backend through one code path.
//
// LookupMany fills results[i] for every key and returns the hit count;
// results must be at least len(keys) long. Keys whose length does not match
// the table's are misses. Implementations must tolerate any number of
// concurrent callers.
type Reader interface {
	Lookup(key []byte) (value uint64, ok bool)
	LookupMany(keys [][]byte, results []Result) (hits int)
}

// Writer is the mutation half of the serving API. Insert of a present key
// returns ErrKeyExists; Update and Delete report whether the key was
// present. Implementations serialise mutations internally (per shard for
// *Table), so concurrent writers are safe.
type Writer interface {
	Insert(key []byte, value uint64) error
	Update(key []byte, value uint64) bool
	Delete(key []byte) bool
}

// ReadWriter bundles both halves — what a serving backend provides.
type ReadWriter interface {
	Reader
	Writer
}

var (
	_ Reader = (*Table)(nil)
	_ Writer = (*Table)(nil)
	_ Reader = (*PinnedReader)(nil)
)

// LookupMany is the Reader batched lookup on the table itself, backed by a
// pool of Batch scratch so it is safe (and allocation-free in steady state)
// from any number of goroutines. Hot loops that want to pin their scratch
// explicitly can still own a Batch via NewBatch.
func (t *Table) LookupMany(keys [][]byte, results []Result) int {
	b := t.batchPool.Get().(*Batch)
	hits := b.LookupMany(keys, results)
	t.batchPool.Put(b)
	return hits
}

// newBatchPool builds the per-table Batch pool (count is sized to the shard
// count, so the pool must be per table).
func newBatchPool(t *Table) sync.Pool {
	return sync.Pool{New: func() any { return t.NewBatch() }}
}

// PinnedReader is a Reader over one table with its Batch scratch pinned to
// the caller: LookupMany skips the shared pool's Get/Put (worth a few
// percent per batch — see BenchmarkLookupManyPooled vs PinnedBatch). Use
// one per goroutine in a hot loop; a PinnedReader must not be shared by
// concurrent callers.
type PinnedReader struct {
	t *Table
	b *Batch
}

// NewPinnedReader returns a Reader with caller-pinned batch scratch.
func (t *Table) NewPinnedReader() *PinnedReader {
	return &PinnedReader{t: t, b: t.NewBatch()}
}

// Lookup delegates to the table's single-key lookup.
func (r *PinnedReader) Lookup(key []byte) (uint64, bool) { return r.t.Lookup(key) }

// LookupMany runs the batched lookup on the pinned scratch.
func (r *PinnedReader) LookupMany(keys [][]byte, results []Result) int {
	return r.b.LookupMany(keys, results)
}
