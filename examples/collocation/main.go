// Collocation: the paper's §6.3 / Fig. 12 scenario as a runnable program. A
// virtual switch shares a physical core (hyper-threading) with a signature-
// matching network function; the software switch's classification tables
// pollute the shared L1/L2 and slow the NF down, while the HALO switch keeps
// its lookups in the LLC-side accelerators.
package main

import (
	"fmt"

	"halo"
	"halo/internal/cpu"
	"halo/internal/experiments"
)

func main() {
	// The full collocation study (ACL, SnortLite, MTCPLite × flow counts ×
	// engines) is the fig12 experiment; run it at quick scale and narrate.
	res := experiments.RunFig12(experiments.QuickConfig())

	fmt.Println("collocated network functions, throughput drop vs running alone:")
	fmt.Println()
	for _, nfName := range []string{"acl", "snortlite", "mtcplite"} {
		sw, _ := res.Point(nfName, 100_000, "software")
		ha, _ := res.Point(nfName, 100_000, "halo")
		fmt.Printf("  %-10s with software switch: %5.1f%% slower   (L1D miss %4.1f%% -> %4.1f%%)\n",
			nfName, 100*sw.ThroughputDrop, 100*sw.L1MissAlone, 100*sw.L1MissCoRun)
		fmt.Printf("  %-10s with HALO switch:     %5.1f%% slower   (L1D miss %4.1f%% -> %4.1f%%)\n",
			nfName, 100*ha.ThroughputDrop, 100*ha.L1MissAlone, 100*ha.L1MissCoRun)
		fmt.Println()
	}
	fmt.Println("paper Fig. 12: software switch costs NFs 17-26%; HALO <= 3.2%.")

	// Keep the example honest about what it measures: the shared state is
	// the physical core's L1/L2, reached through the public API as two
	// threads bound to the same core.
	sys := halo.New()
	a := sys.Thread(0)
	b := sys.Thread(0)
	var _ *cpu.Thread = a
	if a.Core != b.Core {
		panic("hyper-threads must share a core")
	}
}
