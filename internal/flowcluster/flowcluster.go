// Package flowcluster is cluster-scale serving: a router that fronts a set
// of flowserved nodes behind the same flowserve.Reader/Writer surface a
// single *flowwire.Client (or an in-process *flowserve.Table) presents, so
// cmd/flowload drives one node or a whole cluster through one code path.
//
// Routing is per-key via a versioned shard map (hash-range → node,
// flowwire.ShardMap) learned from the nodes at dial time. LookupMany groups
// a batch's keys by owning node and issues the per-node sub-batches
// concurrently over the pooled per-node clients; mutations route to the
// range owner. When a node answers WRONG_SHARD — its map is newer than the
// router's, i.e. a live migration cut over — the router refetches the map
// from that node and re-routes the rejected keys, so a migration in flight
// costs redirected-and-retried requests, never lost or duplicated ones
// (DESIGN.md §13).
//
// The router doubles as the migration coordinator: MoveRange drives the
// losing node's snapshot+double-write engine, waits for the ledger to
// balance, and performs the epoch-bumped map push that is the cutover.
package flowcluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"halo/internal/flowserve"
	"halo/internal/flowwire"
	"halo/internal/stats"
)

// maxRedirects bounds WRONG_SHARD re-route rounds per operation. Each
// round refreshes the map from the rejecting node, so two is already
// enough for any single cutover; the bound only guards against a
// misconfigured cluster disagreeing with itself.
const maxRedirects = 4

// Options parametrises New. The zero value works.
type Options struct {
	// Client is the per-node client configuration (pool size, timeouts).
	// Client.Transport is ignored: each node's endpoint carries its own.
	Client flowwire.Options
}

// routerCounters make routing behavior observable under flowcluster.*:
// redirects and refreshes quantify a migration's cost, errors feed
// flowload's -check gate exactly like flowwire.client.errors does.
type routerCounters struct {
	redirects  atomic.Uint64 // WRONG_SHARD replies followed
	refreshes  atomic.Uint64 // shard-map refetches
	errors     atomic.Uint64 // operations coerced to miss/false by failure
	batches    atomic.Uint64 // LookupMany calls
	subBatches atomic.Uint64 // per-node sub-batches issued
	exhausted  atomic.Uint64 // operations that ran out of redirect rounds
}

// Router is a cluster-aware remote table: flowserve.Reader and
// flowserve.Writer over a set of flowserved nodes. Safe for concurrent use.
type Router struct {
	opts   Options
	keyLen int

	m atomic.Pointer[flowwire.ShardMap]

	mu      sync.Mutex // guards clients and map refresh/install
	clients map[string]*flowwire.Client

	closed atomic.Bool
	c      routerCounters
}

var (
	_ flowserve.Reader = (*Router)(nil)
	_ flowserve.Writer = (*Router)(nil)
)

// New dials every endpoint, checks the nodes agree on key length, and
// adopts the highest-epoch shard map any of them reports. The endpoint
// list may be heterogeneous (tcp next to unix next to shm) — each node's
// endpoint carries its own transport.
func New(eps []flowwire.Endpoint, opts Options) (*Router, error) {
	if len(eps) == 0 {
		return nil, errors.New("flowcluster: no endpoints")
	}
	r := &Router{opts: opts, clients: make(map[string]*flowwire.Client, len(eps))}
	var best *flowwire.ShardMap
	for _, ep := range eps {
		cl, err := r.client(ep)
		if err != nil {
			r.Close()
			return nil, err
		}
		if r.keyLen == 0 {
			r.keyLen = cl.KeyLen()
		} else if cl.KeyLen() != r.keyLen {
			r.Close()
			return nil, fmt.Errorf("flowcluster: %s serves %d-byte keys, %s %d-byte", eps[0], r.keyLen, ep, cl.KeyLen())
		}
		m, err := cl.FetchShardMap()
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("flowcluster: fetch shard map from %s: %w", ep, err)
		}
		if m != nil && (best == nil || m.Epoch > best.Epoch) {
			best = m
		}
	}
	if best == nil {
		r.Close()
		return nil, errors.New("flowcluster: no node reports a shard map (not a cluster?)")
	}
	r.m.Store(best)
	return r, nil
}

// Map returns the router's current shard map.
func (r *Router) Map() *flowwire.ShardMap { return r.m.Load() }

// Epoch returns the current map epoch — benchmark documents stamp it into
// their workload identity.
func (r *Router) Epoch() uint64 { return r.m.Load().Epoch }

// KeyLen returns the cluster's fixed key length.
func (r *Router) KeyLen() int { return r.keyLen }

// client returns (dialing on demand) the pooled client for ep. Nodes that
// join via a pushed map are dialed the first time a key routes to them.
func (r *Router) client(ep flowwire.Endpoint) (*flowwire.Client, error) {
	key := ep.String()
	r.mu.Lock()
	cl := r.clients[key]
	r.mu.Unlock()
	if cl != nil {
		return cl, nil
	}
	ncl, err := flowwire.DialEndpoint(ep, r.opts.Client)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if cl = r.clients[key]; cl != nil { // lost the dial race
		r.mu.Unlock()
		ncl.Close()
		return cl, nil
	}
	r.clients[key] = ncl
	r.mu.Unlock()
	return ncl, nil
}

// refreshFrom refetches the shard map from the node that just rejected a
// request and installs it if newer. The rejecting node is the right source:
// on a cutover it is the one guaranteed to already hold the bumped map.
func (r *Router) refreshFrom(cl *flowwire.Client) {
	r.c.refreshes.Add(1)
	m, err := cl.FetchShardMap()
	if err != nil || m == nil {
		return
	}
	r.install(m)
}

// install adopts m if it is newer than the current map.
func (r *Router) install(m *flowwire.ShardMap) {
	r.mu.Lock()
	if cur := r.m.Load(); cur == nil || m.Epoch > cur.Epoch {
		r.m.Store(m)
	}
	r.mu.Unlock()
}

// Err returns the first sticky transport failure of any per-node client.
func (r *Router) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, cl := range r.clients {
		if err := cl.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Close tears down every per-node client.
func (r *Router) Close() error {
	r.closed.Store(true)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, cl := range r.clients {
		cl.Close()
	}
	return nil
}

// CollectInto publishes the router's own counters (flowcluster.*) plus each
// per-node client's counters (flowwire.client.*, summed).
func (r *Router) CollectInto(snap *stats.Snapshot) {
	snap.Add("flowcluster.redirects", r.c.redirects.Load())
	snap.Add("flowcluster.map_refreshes", r.c.refreshes.Load())
	snap.Add("flowcluster.errors", r.c.errors.Load())
	snap.Add("flowcluster.batches", r.c.batches.Load())
	snap.Add("flowcluster.subbatches", r.c.subBatches.Load())
	snap.Add("flowcluster.redirects_exhausted", r.c.exhausted.Load())
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, cl := range r.clients {
		cl.CollectInto(snap)
	}
}

// Errors returns the router-level error count (flowload's -check gate).
func (r *Router) Errors() uint64 { return r.c.errors.Load() }

// StatsSnapshot aggregates every node's typed stats plus the router's own
// counters into one cluster rollup — per-node and cluster-level aggregation
// share the stats.Snapshot.Merge code path.
func (r *Router) StatsSnapshot() (*stats.Snapshot, error) {
	rollup := stats.NewSnapshot()
	m := r.m.Load()
	for _, ep := range m.Nodes {
		cl, err := r.client(ep)
		if err != nil {
			return nil, err
		}
		snap, err := cl.StatsSnapshot()
		if err != nil {
			return nil, fmt.Errorf("flowcluster: stats from %s: %w", ep, err)
		}
		rollup.Merge(snap)
	}
	r.CollectInto(rollup)
	return rollup, nil
}

// route resolves key's owning node under the current map.
func (r *Router) route(key []byte) (*flowwire.Client, error) {
	m := r.m.Load()
	owner := m.OwnerOfKey(key)
	return r.client(m.Nodes[owner])
}

// Lookup implements flowserve.Reader, following WRONG_SHARD redirects.
func (r *Router) Lookup(key []byte) (uint64, bool) {
	if len(key) != r.keyLen {
		return 0, false
	}
	for round := 0; round <= maxRedirects; round++ {
		cl, err := r.route(key)
		if err != nil {
			r.c.errors.Add(1)
			return 0, false
		}
		v, ok, err := cl.LookupE(key)
		if err == nil {
			return v, ok
		}
		var ws *flowwire.WrongShardError
		if errors.As(err, &ws) {
			r.c.redirects.Add(1)
			r.refreshFrom(cl)
			continue
		}
		r.c.errors.Add(1)
		return 0, false
	}
	r.c.exhausted.Add(1)
	r.c.errors.Add(1)
	return 0, false
}

// LookupMany implements flowserve.Reader: keys are grouped by owning node
// under the current map, the per-node sub-batches issued concurrently, and
// any WRONG_SHARD-rejected sub-batch re-grouped under the refreshed map and
// retried. Failed keys (transport errors, redirect rounds exhausted) are
// misses, counted in flowcluster.errors.
func (r *Router) LookupMany(keys [][]byte, results []flowserve.Result) int {
	n := len(keys)
	_ = results[:n]
	r.c.batches.Add(1)
	pending := make([]int, 0, n)
	for i := range keys {
		results[i] = flowserve.Result{}
		if len(keys[i]) == r.keyLen {
			pending = append(pending, i)
		}
	}
	for round := 0; round <= maxRedirects && len(pending) > 0; round++ {
		pending = r.lookupRound(keys, results, pending)
	}
	if len(pending) > 0 {
		r.c.exhausted.Add(1)
		r.c.errors.Add(uint64(len(pending)))
	}
	hits := 0
	for i := range results[:n] {
		if results[i].OK {
			hits++
		}
	}
	return hits
}

// lookupRound issues one routing round for the pending key indexes and
// returns the indexes that need re-routing (WRONG_SHARD) under the map the
// round refreshed.
func (r *Router) lookupRound(keys [][]byte, results []flowserve.Result, pending []int) (retry []int) {
	m := r.m.Load()
	groups := make(map[int][]int)
	for _, i := range pending {
		owner := m.OwnerOfKey(keys[i])
		groups[owner] = append(groups[owner], i)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for owner, idxs := range groups {
		r.c.subBatches.Add(1)
		wg.Add(1)
		go func(owner int, idxs []int) {
			defer wg.Done()
			cl, err := r.client(m.Nodes[owner])
			if err != nil {
				r.c.errors.Add(uint64(len(idxs)))
				return
			}
			sub := make([][]byte, len(idxs))
			for j, i := range idxs {
				sub[j] = keys[i]
			}
			res := make([]flowserve.Result, len(idxs))
			_, err = cl.LookupManyE(sub, res)
			if err == nil {
				for j, i := range idxs {
					results[i] = res[j]
				}
				return
			}
			var ws *flowwire.WrongShardError
			if errors.As(err, &ws) {
				r.c.redirects.Add(1)
				r.refreshFrom(cl)
				mu.Lock()
				retry = append(retry, idxs...)
				mu.Unlock()
				return
			}
			r.c.errors.Add(uint64(len(idxs)))
		}(owner, idxs)
	}
	wg.Wait()
	return retry
}

// Insert implements flowserve.Writer, routing to the range owner and
// following redirects. Table-semantics errors pass through untyped-free
// (flowserve.ErrKeyExists etc.), exactly as a single Client's would.
func (r *Router) Insert(key []byte, value uint64) error {
	if len(key) != r.keyLen {
		return flowserve.ErrKeyLen
	}
	for round := 0; round <= maxRedirects; round++ {
		cl, err := r.route(key)
		if err != nil {
			return err
		}
		err = cl.Insert(key, value)
		var ws *flowwire.WrongShardError
		if errors.As(err, &ws) {
			r.c.redirects.Add(1)
			r.refreshFrom(cl)
			continue
		}
		return err
	}
	r.c.exhausted.Add(1)
	return fmt.Errorf("flowcluster: insert redirected more than %d times", maxRedirects)
}

// Update implements flowserve.Writer; false on absent key or failure
// (failures counted in flowcluster.errors).
func (r *Router) Update(key []byte, value uint64) bool {
	if len(key) != r.keyLen {
		return false
	}
	for round := 0; round <= maxRedirects; round++ {
		cl, err := r.route(key)
		if err != nil {
			r.c.errors.Add(1)
			return false
		}
		found, err := cl.UpdateE(key, value)
		if err == nil {
			return found
		}
		var ws *flowwire.WrongShardError
		if errors.As(err, &ws) {
			r.c.redirects.Add(1)
			r.refreshFrom(cl)
			continue
		}
		r.c.errors.Add(1)
		return false
	}
	r.c.exhausted.Add(1)
	r.c.errors.Add(1)
	return false
}

// Delete implements flowserve.Writer; false on absent key or failure
// (failures counted in flowcluster.errors).
func (r *Router) Delete(key []byte) bool {
	if len(key) != r.keyLen {
		return false
	}
	for round := 0; round <= maxRedirects; round++ {
		cl, err := r.route(key)
		if err != nil {
			r.c.errors.Add(1)
			return false
		}
		found, err := cl.DeleteE(key)
		if err == nil {
			return found
		}
		var ws *flowwire.WrongShardError
		if errors.As(err, &ws) {
			r.c.redirects.Add(1)
			r.refreshFrom(cl)
			continue
		}
		r.c.errors.Add(1)
		return false
	}
	r.c.exhausted.Add(1)
	r.c.errors.Add(1)
	return false
}

// migPollInterval paces MIG_STATUS polls while the snapshot streams.
const migPollInterval = 5 * time.Millisecond

// MoveRange live-migrates the hash range rg from its current owner to
// dstNode (an index into the shard map's node list), driving the losing
// node's snapshot+double-write engine and performing the epoch-bumped map
// push that cuts over. It returns the losing node's final migration ledger;
// on success the ledger balances (Enqueued == Sent == Acked) — the zero-loss
// handoff invariant, the cluster analogue of the drain ledger's
// accepted + rejected == replied.
func (r *Router) MoveRange(rg flowwire.Range, dstNode int, timeout time.Duration) (flowwire.MigInfo, error) {
	m := r.m.Load()
	if dstNode < 0 || dstNode >= len(m.Nodes) {
		return flowwire.MigInfo{}, fmt.Errorf("flowcluster: destination node %d of %d", dstNode, len(m.Nodes))
	}
	src, ok := m.RangeOwner(rg)
	if !ok {
		return flowwire.MigInfo{}, fmt.Errorf("flowcluster: range %s spans multiple owners", rg)
	}
	if src == dstNode {
		return flowwire.MigInfo{}, fmt.Errorf("flowcluster: range %s already owned by node %d", rg, dstNode)
	}
	srcCl, err := r.client(m.Nodes[src])
	if err != nil {
		return flowwire.MigInfo{}, err
	}
	dstCl, err := r.client(m.Nodes[dstNode])
	if err != nil {
		return flowwire.MigInfo{}, err
	}
	if err := srcCl.MigrateStart(rg, m.Nodes[dstNode]); err != nil {
		return flowwire.MigInfo{}, fmt.Errorf("flowcluster: MIG_START on node %d: %w", src, err)
	}

	// Wait for the snapshot to finish streaming and the queue to go quiet.
	deadline := time.Now().Add(timeout)
	for {
		mi, err := srcCl.MigrateStatus()
		if err != nil {
			return mi, fmt.Errorf("flowcluster: MIG_STATUS on node %d: %w", src, err)
		}
		if mi.Err != "" {
			return mi, fmt.Errorf("flowcluster: migration failed on node %d: %s", src, mi.Err)
		}
		if mi.SnapshotDone && mi.Acked == mi.Enqueued {
			break
		}
		if time.Now().After(deadline) {
			return mi, fmt.Errorf("flowcluster: migration of %s not drained after %v (enqueued %d, acked %d)",
				rg, timeout, mi.Enqueued, mi.Acked)
		}
		time.Sleep(migPollInterval)
	}

	// Cutover: bump the epoch, push gaining node first (it must accept the
	// range before anyone routes there), then the losing node — whose reply
	// gates on the final queue drain and IS the zero-loss point — then the
	// rest of the cluster.
	nm := m.Clone()
	if err := nm.Assign(rg, uint32(dstNode)); err != nil {
		return flowwire.MigInfo{}, err
	}
	nm.Epoch++
	if err := dstCl.PushShardMap(nm); err != nil {
		return flowwire.MigInfo{}, fmt.Errorf("flowcluster: map push to gaining node %d: %w", dstNode, err)
	}
	if err := srcCl.PushShardMap(nm); err != nil {
		return flowwire.MigInfo{}, fmt.Errorf("flowcluster: cutover push to losing node %d: %w", src, err)
	}
	for i, ep := range nm.Nodes {
		if i == src || i == dstNode {
			continue
		}
		cl, err := r.client(ep)
		if err != nil {
			return flowwire.MigInfo{}, err
		}
		if err := cl.PushShardMap(nm); err != nil {
			return flowwire.MigInfo{}, fmt.Errorf("flowcluster: map push to node %d: %w", i, err)
		}
	}
	r.install(nm)

	mi, err := srcCl.MigrateStatus()
	if err != nil {
		return mi, err
	}
	if !mi.Done || mi.Enqueued != mi.Sent || mi.Sent != mi.Acked {
		return mi, fmt.Errorf("flowcluster: ledger unbalanced after cutover: enqueued %d, sent %d, acked %d",
			mi.Enqueued, mi.Sent, mi.Acked)
	}
	return mi, nil
}
