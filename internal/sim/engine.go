// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the timing substrate for the whole repository: caches, DRAM,
// the on-chip interconnect, CPU cores and the HALO accelerators are all
// modelled as components that schedule events on a shared clock measured in
// CPU cycles. Events scheduled for the same cycle fire in FIFO order of
// scheduling, which makes every simulation in this repository fully
// deterministic: the same inputs always produce the same cycle counts.
package sim

import (
	"container/heap"
	"fmt"
)

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type Event func(now Cycle)

type scheduledEvent struct {
	at    Cycle
	seq   uint64 // tie-break: FIFO among events at the same cycle
	fn    Event
	index int // heap index
}

type eventQueue []*scheduledEvent

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// engines with NewEngine.
type Engine struct {
	now    Cycle
	seq    uint64
	queue  eventQueue
	fired  uint64
	limit  uint64 // safety valve: max events per Run (0 = unlimited)
	halted bool
}

// NewEngine returns an empty engine positioned at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// EventsFired reports how many events have executed since engine creation.
func (e *Engine) EventsFired() uint64 { return e.fired }

// SetEventLimit installs a safety limit on the number of events a single Run
// may fire; Run panics when the limit is exceeded. Zero disables the limit.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// Schedule runs fn after delay cycles (delay 0 means "later this cycle",
// after all currently queued same-cycle events).
func (e *Engine) Schedule(delay Cycle, fn Event) {
	e.At(e.now+delay, fn)
}

// At runs fn at the absolute cycle `at`. Scheduling in the past panics: it is
// always a component bug, never a recoverable condition.
func (e *Engine) At(at Cycle, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d, now is %d", at, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	e.seq++
	heap.Push(&e.queue, &scheduledEvent{at: at, seq: e.seq, fn: fn})
}

// Halt stops the current Run after the in-flight event returns.
func (e *Engine) Halt() { e.halted = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Step fires the single next event, advancing the clock to its cycle.
// It reports whether an event was available.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*scheduledEvent)
	e.now = ev.at
	e.fired++
	ev.fn(e.now)
	return true
}

// Run fires events until the queue drains or Halt is called, and returns the
// final cycle.
func (e *Engine) Run() Cycle {
	e.halted = false
	start := e.fired
	for !e.halted && e.Step() {
		if e.limit != 0 && e.fired-start > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded (likely livelock)", e.limit))
		}
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline, advancing the clock to
// exactly deadline even if the queue drains earlier.
func (e *Engine) RunUntil(deadline Cycle) Cycle {
	e.halted = false
	for !e.halted && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}
