// Command halobench regenerates the tables and figures of the HALO paper
// (ISCA 2019) from the simulated platform.
//
// Usage:
//
//	halobench                     # run every experiment at paper scale
//	halobench -quick              # shrunk sweeps (seconds instead of minutes)
//	halobench -experiment fig9    # one experiment
//	halobench -parallel 8         # shard sweep points across 8 workers
//	halobench -verify             # run every point twice, fail on divergence
//	halobench -list               # list experiment IDs
//	halobench -json results.json  # also write the schema-versioned stats document
//	halobench -validate results.json  # check a stats document and exit
//	halobench -cpuprofile cpu.pprof -memprofile mem.pprof  # pprof profiles
//
// Output tables go to stdout; timing and verification status go to stderr,
// so `halobench > halobench_output.txt` is byte-reproducible. The -json
// document is likewise byte-identical across worker counts, which CI
// asserts by comparing serial and pooled runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"halo/internal/experiments"
	"halo/internal/runner"
	"halo/internal/stats"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "run shrunk sweeps")
		experiment = flag.String("experiment", "", "run a single experiment (see -list)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		seed       = flag.Uint64("seed", 0x48414c4f, "workload seed")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for sweep points")
		verify     = flag.Bool("verify", false, "run every point serially too and fail on divergence")
		jsonPath   = flag.String("json", "", "also write the stats document (rows + counters + histograms) to this file")
		validate   = flag.String("validate", "", "validate a stats document written by -json and exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "halobench: %v\n", err)
			os.Exit(1)
		}
		doc, err := stats.Validate(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "halobench: %s: %v\n", *validate, err)
			os.Exit(1)
		}
		points := 0
		for _, e := range doc.Experiments {
			points += len(e.Points)
		}
		fmt.Fprintf(os.Stderr, "%s: valid %s document (%d experiments, %d points)\n",
			*validate, doc.Schema, len(doc.Experiments), points)
		return
	}

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-14s %s\n", r.ID, r.Paper)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.Quick = *quick
	cfg.Seed = *seed

	runners := experiments.Registry()
	if *experiment != "" {
		r, ok := experiments.Find(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "halobench: unknown experiment %q (try -list)\n", *experiment)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "halobench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "halobench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "halobench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush accumulated allocations into the profile
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "halobench: %v\n", err)
			}
		}()
	}
	opt := runner.Options{Workers: workers, Verify: *verify}
	start := time.Now()
	var err error
	if *jsonPath != "" {
		var doc *stats.Document
		doc, err = runner.RunDoc(opt, cfg, runners, os.Stdout)
		if err == nil {
			var data []byte
			if data, err = stats.Encode(doc); err == nil {
				err = os.WriteFile(*jsonPath, data, 0o644)
			}
			if err == nil {
				fmt.Fprintf(os.Stderr, "stats document: %s (%d bytes)\n", *jsonPath, len(data))
			}
		}
	} else {
		err = runner.Run(opt, cfg, runners, os.Stdout)
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	if err != nil {
		fmt.Fprintf(os.Stderr, "halobench: %v\n", err)
		os.Exit(1)
	}
	if *verify {
		fmt.Fprintf(os.Stderr, "verify: parallel and serial results identical for every point\n")
	}
	fmt.Fprintf(os.Stderr, "(completed in %v, %d workers)\n", elapsed, opt.Workers)
}
