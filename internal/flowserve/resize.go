package flowserve

import (
	"fmt"
	"time"

	"halo/internal/hashfn"
)

// Incremental, bounded-pause shard resize (DESIGN.md §12).
//
// A resize installs a second, larger region next to the live one and moves
// buckets across incrementally: every writer operation migrates at most
// Config.MigrateBuckets old-region buckets before doing its own work, and
// ResizeStep lets a caller tick migration forward explicitly (e.g. from a
// maintenance goroutine). The protocol keeps three invariants:
//
//  1. Every live key is reachable in old ∪ cur at every instant. A key
//     moves by first writing its slot in cur, then — inside one seqlock
//     window — publishing the cur bucket entry and clearing the old one.
//     Readers probing between those two stores can see the key in both
//     regions (same value either way), never in neither.
//  2. Readers are wait-free with respect to migration: they take no lock,
//     and a migration step invalidates at most the probes racing its
//     seqlock windows — the same retry cost an insert already imposes.
//  3. The pause a resize adds to any single writer operation is bounded by
//     the migration quantum (buckets per step × at most EntriesPerBucket
//     key moves each), not by the table size. Steps are timed into a
//     per-shard pause histogram (flowserve.resize.pause_* in stats).

// Grow raises the table's capacity to at least newEntries, spread across
// shards, by starting an incremental resize on every shard whose capacity
// must rise. It returns once the resizes are STARTED — migration proceeds
// in the background as writers touch each shard, or synchronously via
// ResizeStep. If a previous resize is still in flight on a shard, Grow
// finishes it first (synchronously) so regions never stack more than two
// deep. newEntries must exceed the current capacity.
func (t *Table) Grow(newEntries uint64) error {
	if newEntries <= t.Capacity() {
		return ErrShrink
	}
	perShard := (newEntries + uint64(len(t.shards)) - 1) / uint64(len(t.shards))
	if perShard >= maxPerShard {
		return fmt.Errorf("flowserve: %d entries per shard exceeds slot index width", perShard)
	}
	for _, sh := range t.shards {
		sh.mu.Lock()
		sh.finishMigrationLocked()
		if sh.regions.Load().old != nil {
			// Only reachable when the in-flight resize stalled: the current
			// region is at 100% occupancy with no displacement path, which
			// needs deletes, not more regions (at most two may exist).
			sh.mu.Unlock()
			return fmt.Errorf("flowserve: shard resize stalled at full occupancy; delete entries and retry Grow")
		}
		if perShard > sh.regions.Load().cur.capacity {
			sh.startGrowLocked(perShard)
		}
		sh.mu.Unlock()
	}
	return nil
}

// Resizing reports whether any shard has a migration in flight.
func (t *Table) Resizing() bool {
	for _, sh := range t.shards {
		if sh.regions.Load().old != nil {
			return true
		}
	}
	return false
}

// ResizeStep migrates up to buckets old-region buckets on every shard that
// is mid-resize (buckets <= 0 means the configured per-op quantum) and
// reports whether any migration remains. Callers that want growth to
// complete without waiting for organic write traffic loop:
//
//	for t.ResizeStep(64) {
//	}
func (t *Table) ResizeStep(buckets int) bool {
	remaining := false
	for _, sh := range t.shards {
		if sh.regions.Load().old == nil {
			continue
		}
		sh.mu.Lock()
		if buckets <= 0 {
			sh.migrateLocked(sh.quantum)
		} else {
			sh.migrateLocked(buckets)
		}
		if sh.regions.Load().old != nil {
			remaining = true
		}
		sh.mu.Unlock()
	}
	return remaining
}

// startGrowLocked installs a fresh region of newCap entries as the current
// region and demotes the live one to "old", resetting the migration cursor.
// Caller must hold mu and have no resize in flight. The pointer swap moves
// no keys, so readers need no seqlock window: both the pre- and post-swap
// region sets contain every live key.
func (sh *shard) startGrowLocked(newCap uint64) {
	rp := sh.regions.Load()
	if rp.old != nil {
		panic("flowserve: startGrow with a resize already in flight")
	}
	next := newRegion(newCap, sh.kvStride-1)
	sh.migrated = 0
	sh.regions.Store(&regionPair{cur: next, old: rp.cur})
	sh.c.grows.Add(1)
}

// finishMigrationLocked drains an in-flight resize synchronously. Caller
// must hold mu.
func (sh *shard) finishMigrationLocked() {
	for sh.regions.Load().old != nil {
		before := sh.migrated
		sh.migrateLocked(sh.quantum)
		if sh.regions.Load().old != nil && sh.migrated == before {
			// A stalled migration (current region truly full) cannot be
			// drained; the caller is about to grow again, which unsticks it.
			return
		}
	}
}

// migrateLocked moves up to n old-region buckets into the current region.
// Caller must hold mu. No-op when no resize is in flight. When the last
// bucket lands, the old region is dropped and readers fall back to
// single-region probes.
func (sh *shard) migrateLocked(n int) {
	rp := sh.regions.Load()
	if rp.old == nil {
		return
	}
	start := time.Now()
	stepped := false
	for i := 0; i < n && sh.migrated < rp.old.bucketCount; i++ {
		if !sh.migrateBucketLocked(rp, sh.migrated) {
			// Could not place a key (current region full): leave the
			// cursor so a later step — after deletes free slots — retries.
			sh.c.resizeStalls.Add(1)
			break
		}
		sh.migrated++
		sh.c.migratedBuckets.Add(1)
		stepped = true
	}
	if stepped {
		sh.c.resizeSteps.Add(1)
		sh.pauseHist.Observe(uint64(time.Since(start).Nanoseconds()))
	}
	if sh.migrated == rp.old.bucketCount {
		// Migration complete: drop the old region. Readers holding the
		// two-region pair keep probing a fully-empty old region until
		// their next load — harmless.
		sh.regions.Store(&regionPair{cur: rp.cur})
	}
}

// migrateBucketLocked moves every live entry of old bucket b into the
// current region. Caller must hold mu. Returns false if a key could not be
// placed (no free slot / displacement path in cur) — the bucket is left
// partially migrated and safe to retry: moved entries are already cleared
// from the old bucket.
func (sh *shard) migrateBucketLocked(rp *regionPair, b uint64) bool {
	old, cur := rp.old, rp.cur
	nw := sh.kvStride - 1
	base := b * EntriesPerBucket
	var kw [maxKeyWords]uint64
	var keyBuf [MaxKeyLen]byte
	for e := uint64(0); e < EntriesPerBucket; e++ {
		ent := old.entries[base+e].Load()
		if ent == 0 {
			continue
		}
		sig := uint16(ent)
		slot := uint32(ent >> 16)
		kvBase := int(slot) * sh.kvStride
		for i := 0; i < nw; i++ {
			kw[i] = old.kv[kvBase+i].Load()
		}
		value := old.kv[kvBase+nw].Load()

		// Rehash for the grown region's bucket geometry. The signature is
		// derived from the same primary hash, so it is unchanged — only
		// the bucket pair widens.
		h := hashfn.Hash(hashfn.SeedPrimary, wordsToKey(&kw, sh.keyLen, &keyBuf))
		if moved := sh.moveEntryLocked(cur, &kw, nw, h, sig, value, old, base+e); !moved {
			return false
		}
		sh.c.migratedKeys.Add(1)
	}
	return true
}

// moveEntryLocked places a migrating key into cur and — inside one seqlock
// window — publishes the new bucket entry and clears the old one, so
// readers always find the key in at least one region.
func (sh *shard) moveEntryLocked(cur *region, kw *[maxKeyWords]uint64, nw int, h uint64, sig uint16, value uint64, old *region, oldEntIdx uint64) bool {
	if len(cur.free) == 0 {
		return false
	}
	b1, b2 := cur.buckets(h)
	entIdx, direct := sh.freeEntry(cur, b1, b2)
	var path []pathNode
	if !direct {
		path = sh.findCuckooPath(cur, b1, b2)
		if path == nil {
			return false
		}
	}
	slot := cur.free[len(cur.free)-1]
	cur.free = cur.free[:len(cur.free)-1]
	sh.writeKV(cur, slot, kw, nw, value)
	sh.beginWrite()
	if !direct {
		sh.applyCuckooPath(cur, path)
		var ok bool
		entIdx, ok = sh.freeEntry(cur, b1, b2)
		if !ok {
			sh.endWrite()
			cur.free = append(cur.free, slot)
			panic("flowserve: migration displacement path freed no candidate entry")
		}
		sh.c.displacements.Add(uint64(len(path)))
	}
	cur.entries[entIdx].Store(packEntry(sig, slot))
	old.entries[oldEntIdx].Store(0)
	sh.endWrite()
	return true
}
