package halo

import (
	"fmt"

	"halo/internal/cpu"
	"halo/internal/isa"
	"halo/internal/mem"
)

// Regs is the architectural register file visible to HALO instructions. RAX
// carries the implicit table-address operand (paper §4.5).
type Regs [16]uint64

// Execute runs one decoded HALO instruction on a thread, with functional and
// timing effects:
//
//   - LOOKUP_B dispatches a blocking query and writes the result word into
//     the destination register when it returns;
//   - LOOKUP_NB dispatches a non-blocking query and retires immediately; the
//     accelerator deposits the result word at ResultAddr;
//   - SNAPSHOT_READ loads ResultAddr without taking ownership and writes the
//     value into the destination register.
//
// This is the glue that makes the isa package executable: programs encoded
// with isa.Instruction.Encode can be decoded and run against a simulated
// platform instruction by instruction.
func (u *Unit) Execute(th *cpu.Thread, regs *Regs, in isa.Instruction) error {
	switch in.Op {
	case isa.OpLookupB:
		th.ALU(1)
		th.Other(1)
		r := u.dispatch(th.Now, Query{
			Core:      th.Core,
			TableAddr: mem.Addr(regs[isa.RAX]),
			KeyAddr:   mem.Addr(in.KeyAddr),
		})
		th.WaitUntil(r.Done + u.cmdDelay(r.Slice, th.Core))
		word := EncodeResult(r.Value, r.Found)
		if r.Fault {
			word |= ResultFault
		}
		regs[in.DstReg] = word
		return nil

	case isa.OpLookupNB:
		th.ALU(1)
		th.Other(1)
		u.dispatch(th.Now, Query{
			Core:        th.Core,
			TableAddr:   mem.Addr(regs[isa.RAX]),
			KeyAddr:     mem.Addr(in.KeyAddr),
			ResultAddr:  mem.Addr(in.ResultAddr),
			NonBlocking: true,
		})
		return nil

	case isa.OpSnapshotRead:
		th.SnapshotRead(mem.Addr(in.ResultAddr))
		regs[in.DstReg] = mem.Read64(u.space, mem.Addr(in.ResultAddr))
		return nil
	}
	return fmt.Errorf("halo: cannot execute %v", in.Op)
}

// ExecuteProgram decodes and executes an encoded instruction stream,
// returning the number of instructions retired.
func (u *Unit) ExecuteProgram(th *cpu.Thread, regs *Regs, program []byte) (int, error) {
	n := 0
	for len(program) > 0 {
		in, size, err := isa.Decode(program)
		if err != nil {
			return n, fmt.Errorf("halo: at instruction %d: %w", n, err)
		}
		if err := u.Execute(th, regs, in); err != nil {
			return n, err
		}
		program = program[size:]
		n++
	}
	return n, nil
}
