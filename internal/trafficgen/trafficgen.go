// Package trafficgen generates the deterministic network workloads the
// paper evaluates with: flow populations, wildcard rule sets, and packet
// streams for the three data-center scenarios of §3.2 (overlay networks,
// many-container routing, gateway/top-of-rack routing).
package trafficgen

import (
	"fmt"
	"math"

	"halo/internal/classify"
	"halo/internal/packet"
	"halo/internal/sim"
)

// Popularity selects the flow-popularity distribution of a packet stream.
type Popularity int

const (
	// Uniform traffic spreads packets evenly over flows.
	Uniform Popularity = iota
	// Zipf traffic concentrates on hot flows (s≈0.9), as measured in
	// data-center traces.
	Zipf
)

// Scenario describes one traffic configuration.
type Scenario struct {
	Name       string
	Flows      int
	Rules      int
	Popularity Popularity
}

// PaperScenarios returns the five configurations of paper §3.2 / Fig. 3:
// two "small number of flows" overlay points, two "many flows" container
// points, and the "many flows and rules" gateway point.
func PaperScenarios() []Scenario {
	return []Scenario{
		{Name: "overlay-10k", Flows: 10_000, Rules: 1, Popularity: Zipf},
		{Name: "overlay-50k", Flows: 50_000, Rules: 1, Popularity: Zipf},
		{Name: "container-100k", Flows: 100_000, Rules: 5, Popularity: Uniform},
		{Name: "container-1m", Flows: 1_000_000, Rules: 10, Popularity: Uniform},
		{Name: "gateway-1m", Flows: 1_000_000, Rules: 20, Popularity: Uniform},
	}
}

// RuleSpec is one generated wildcard rule.
type RuleSpec struct {
	Mask    classify.Mask
	Pattern packet.FiveTuple
	Match   classify.Match
}

// Workload is a generated flow population, rule set and packet stream.
type Workload struct {
	Scenario Scenario
	Flows    []packet.FiveTuple
	FlowRule []int // index of the rule each flow matches
	Rules    []RuleSpec
	// Retries counts uniqueness-check collisions during generation — a
	// regression guard: over-restricting the free source-IP bits clusters
	// flows and sends this climbing.
	Retries uint64

	rng  *sim.Rand
	cdf  []float64 // Zipf CDF over flows (nil for uniform)
	perm []int     // popularity-rank → flow index
}

const baseSrcIP = 0x0a000000 // 10.0.0.0/8 source space
const baseDstPort = 2000

// Generate builds a deterministic workload for a scenario.
func Generate(scn Scenario, seed uint64) *Workload {
	if scn.Flows <= 0 || scn.Rules <= 0 || scn.Rules > 32 {
		panic(fmt.Sprintf("trafficgen: bad scenario %+v", scn))
	}
	w := &Workload{Scenario: scn, rng: sim.NewRand(seed)}

	// Rules: rule r owns destination port baseDstPort+r and a source
	// prefix of r bits, giving every rule a distinct mask (and therefore
	// its own tuple in the tuple space search).
	w.Rules = make([]RuleSpec, scn.Rules)
	for r := 0; r < scn.Rules; r++ {
		mask := classify.Mask{
			SrcIPBits:   uint8(r),
			DstIPBits:   0,
			SrcPortWild: true,
			DstPortWild: false,
			ProtoWild:   false,
		}
		pattern := packet.FiveTuple{
			SrcIP:   baseSrcIP,
			DstPort: uint16(baseDstPort + r),
			Proto:   packet.ProtoUDP,
		}
		w.Rules[r] = RuleSpec{
			Mask:    mask,
			Pattern: mask.Apply(pattern),
			Match: classify.Match{
				RuleID:   uint32(r + 1),
				Priority: uint16(scn.Rules - r),
				Action:   classify.Action{Kind: classify.ActionOutput, Port: r % 16},
			},
		}
	}

	// Flows: each flow is assigned a rule round-robin and constructed to
	// match exactly that rule (unique destination port per rule; source IP
	// inside the rule's prefix).
	w.Flows = make([]packet.FiveTuple, scn.Flows)
	w.FlowRule = make([]int, scn.Flows)
	seen := make(map[packet.FiveTuple]bool, scn.Flows)
	for i := 0; i < scn.Flows; i++ {
		r := i % scn.Rules
		// Free host bits: an r-bit prefix with r <= 8 is already covered by
		// the 10.0.0.0/8 base, so only prefixes longer than 8 bits eat into
		// the 24-bit host space.
		shift := 0
		if r > 8 {
			shift = r - 8
		}
		hostMask := uint32(0x00FFFFFF) >> uint(shift)
		for {
			f := packet.FiveTuple{
				SrcIP:   baseSrcIP | (w.rng.Uint32() & hostMask),
				DstIP:   0xc0a80000 | w.rng.Uint32()&0xFFFF,
				SrcPort: uint16(1024 + w.rng.Intn(60000)),
				DstPort: uint16(baseDstPort + r),
				Proto:   packet.ProtoUDP,
			}
			if !seen[f] {
				seen[f] = true
				w.Flows[i] = f
				w.FlowRule[i] = r
				break
			}
			w.Retries++
		}
	}

	if scn.Popularity == Zipf {
		w.buildZipf(0.9)
	}
	return w
}

// buildZipf precomputes the popularity CDF (rank r has weight 1/r^s) and a
// random rank→flow permutation so hot flows are spread across rules.
func (w *Workload) buildZipf(s float64) {
	n := len(w.Flows)
	w.cdf = make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		w.cdf[i] = sum
	}
	for i := range w.cdf {
		w.cdf[i] /= sum
	}
	w.perm = w.rng.Perm(n)
}

// NextFlow draws the next packet's flow index from the popularity
// distribution.
func (w *Workload) NextFlow() int {
	return w.nextFlow(w.rng)
}

func (w *Workload) nextFlow(rng *sim.Rand) int {
	if w.cdf == nil {
		return rng.Intn(len(w.Flows))
	}
	x := rng.Float64()
	lo, hi := 0, len(w.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return w.perm[lo]
}

// Stream draws flows from a workload's popularity distribution with its own
// RNG. The workload's flow population, CDF and permutation are immutable
// after Generate, so any number of streams can draw from one workload
// concurrently — one stream per load-generator goroutine.
type Stream struct {
	w   *Workload
	rng *sim.Rand
}

// NewStream returns an independent, deterministic draw stream over the
// workload (distinct seeds give distinct packet interleavings).
func (w *Workload) NewStream(seed uint64) *Stream {
	return &Stream{w: w, rng: sim.NewRand(seed)}
}

// NextFlow draws the stream's next flow index.
func (s *Stream) NextFlow() int { return s.w.nextFlow(s.rng) }

// NextPacket materialises the stream's next packet.
func (s *Stream) NextPacket() (packet.Packet, int) {
	fi := s.NextFlow()
	f := s.w.Flows[fi]
	return packet.Packet{
		SrcIP: f.SrcIP, DstIP: f.DstIP,
		SrcPort: f.SrcPort, DstPort: f.DstPort,
		Proto:        f.Proto,
		PayloadBytes: 22,
	}, fi
}

// NextPacket materialises the next packet of the stream.
func (w *Workload) NextPacket() (packet.Packet, int) {
	fi := w.NextFlow()
	f := w.Flows[fi]
	return packet.Packet{
		SrcIP: f.SrcIP, DstIP: f.DstIP,
		SrcPort: f.SrcPort, DstPort: f.DstPort,
		Proto:        f.Proto,
		PayloadBytes: 22, // 64 B frames, the paper's traffic generator setting
	}, fi
}

// InstallRules loads the workload's rule set into a tuple space.
func (w *Workload) InstallRules(ts *classify.TupleSpace) error {
	for _, r := range w.Rules {
		if err := ts.InsertRule(r.Mask, r.Pattern, r.Match); err != nil {
			return err
		}
	}
	return nil
}

// RandomTuples generates n distinct random five-tuples, for experiments
// that need raw keys rather than rule-structured flows.
func RandomTuples(n int, seed uint64) []packet.FiveTuple {
	rng := sim.NewRand(seed)
	out := make([]packet.FiveTuple, 0, n)
	seen := make(map[packet.FiveTuple]bool, n)
	for len(out) < n {
		f := packet.FiveTuple{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Uint32()),
			DstPort: uint16(rng.Uint32()),
			Proto:   packet.ProtoTCP,
		}
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}
