// Package experiments contains one runner per table and figure of the
// paper's evaluation (§3 and §6). Each runner builds fresh simulated
// platforms (mirroring the paper's separate gem5 runs per configuration),
// drives the workload, and returns both a rendered metrics.Table and the
// structured numbers, so the same code backs the halobench CLI, the Go
// benchmarks, and the regression tests.
package experiments

import (
	"encoding/binary"

	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/stats"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks sweeps and iteration counts for use under `go test`;
	// the full configuration reproduces the paper's parameter ranges.
	Quick bool
	// Seed drives all workload randomness.
	Seed uint64
	// Stats, when non-nil, receives one component snapshot per sweep point
	// (counters and latency histograms under the stable dotted names of
	// internal/stats). Collection never influences the simulation, so runs
	// with and without a collector produce identical rows.
	Stats *stats.Collector
}

// DefaultConfig runs experiments at paper scale.
func DefaultConfig() Config { return Config{Seed: 0x48414c4f} }

// QuickConfig runs shrunk experiments for tests and benchmarks.
func QuickConfig() Config { return Config{Quick: true, Seed: 0x48414c4f} }

// ClockGHz is the simulated core clock (paper Table 2).
const ClockGHz = 2.1

// testKeyLen is the canonical synthetic key size of the raw hash-table
// experiments.
const testKeyLen = 16

// testKeyInto writes the canonical synthetic key for index i into k (at
// least testKeyLen long). Hot loops call this with a reused stack buffer;
// testKey wraps it where a fresh slice is convenient.
func testKeyInto(i uint64, k []byte) {
	binary.LittleEndian.PutUint64(k, i)
	binary.LittleEndian.PutUint64(k[8:], i^0xabcdef)
}

// testKey builds the canonical synthetic key as a fresh slice.
func testKey(i uint64) []byte {
	k := make([]byte, testKeyLen)
	testKeyInto(i, k)
	return k
}

// lookupFixture is a populated table on a fresh platform with a recycled
// DDIO packet-buffer pool holding lookup keys, the methodology every
// raw-lookup experiment shares (§5.2: tables warmed before measurement).
type lookupFixture struct {
	p       *halo.Platform
	table   *cuckoo.Table
	thread  *cpu.Thread
	keyPool []mem.Addr // one line per pooled key
	fill    uint64
	keyBuf  [testKeyLen]byte // DMA staging scratch
}

// keyPoolLines bounds the packet-buffer pool: real NFV buffer pools are
// small and recycled, so lookup keys arrive in lines that stay LLC-resident.
const keyPoolLines = 4096

func newLookupFixture(entries uint64, occupancy float64) *lookupFixture {
	return fixtureOn(halo.NewPlatform(halo.DefaultPlatformConfig()), entries, occupancy)
}

// fixtureOn builds the fixture against an existing (possibly customised)
// platform.
func fixtureOn(p *halo.Platform, entries uint64, occupancy float64) *lookupFixture {
	table, err := p.NewTable(cuckoo.Config{Entries: entries, KeyLen: 16})
	if err != nil {
		panic(err)
	}
	fill := uint64(float64(entries) * occupancy)
	if fill == 0 {
		fill = 1
	}
	inserted := uint64(0)
	var kb [testKeyLen]byte
	for i := uint64(0); i < fill; i++ {
		testKeyInto(i, kb[:])
		if err := table.Insert(kb[:], i*2+1); err != nil {
			break
		}
		inserted++
	}
	f := &lookupFixture{p: p, table: table, thread: cpu.NewThread(p.Hier, 0), fill: inserted}
	pool := p.Alloc.AllocLines(keyPoolLines)
	f.keyPool = make([]mem.Addr, keyPoolLines)
	for i := range f.keyPool {
		f.keyPool[i] = pool + mem.Addr(i)*mem.LineSize
	}
	p.WarmTable(table)
	return f
}

// stageKeyDMA delivers key i into the recycled pool as a NIC would (DDIO:
// functional write + LLC-resident clean line) and returns its address.
func (f *lookupFixture) stageKeyDMA(n uint64) mem.Addr {
	addr := f.keyPool[n%keyPoolLines]
	testKeyInto(n%f.fill, f.keyBuf[:])
	f.p.Space.WriteAt(addr, f.keyBuf[:])
	f.p.Hier.DMAWrite(addr)
	return addr
}

// statsCollector is anything that can publish counters and histograms into
// a snapshot: platforms, threads, switches, hybrid controllers, table stats.
type statsCollector interface {
	CollectInto(*stats.Snapshot)
}

// collectInto gathers every collector into snap; a nil snap (stats disabled)
// makes it a no-op, so run functions collect unconditionally.
func collectInto(snap *stats.Snapshot, cs ...statsCollector) {
	if snap == nil {
		return
	}
	for _, c := range cs {
		if c != nil {
			c.CollectInto(snap)
		}
	}
}

// pointSnapshot returns a fresh snapshot when cfg wants stats, nil otherwise.
func pointSnapshot(cfg Config) *stats.Snapshot {
	if cfg.Stats == nil {
		return nil
	}
	return stats.NewSnapshot()
}

// recordSnap files a point's snapshot with the configured collector.
func recordSnap(cfg Config, pt Point, snap *stats.Snapshot) {
	if cfg.Stats == nil || snap == nil || snap.Empty() {
		return
	}
	cfg.Stats.Record(pt.Experiment, pt.Index, snap)
}

// pickSize returns quick or full depending on cfg.
func pickSize(cfg Config, quick, full int) int {
	if cfg.Quick {
		return quick
	}
	return full
}

// newPlatformForTable builds a platform with an arena sized for one table
// of the given capacity (SFH tables over-allocate 5x).
func newPlatformForTable(entries uint64, sfh bool) *halo.Platform {
	cfg := halo.DefaultPlatformConfig()
	need := cuckoo.Footprint(cuckoo.Config{Entries: entries, KeyLen: 16, SFH: sfh})
	if need*2+(1<<26) > cfg.ArenaBytes {
		cfg.ArenaBytes = need*2 + (1 << 26)
	}
	return halo.NewPlatform(cfg)
}

// newThreadOn binds a fresh thread to core 0 of a platform.
func newThreadOn(p *halo.Platform) *cpu.Thread { return cpu.NewThread(p.Hier, 0) }
