package experiments

import (
	"strings"
	"testing"
)

// TestExperimentsDeterministic runs every registry experiment twice
// back-to-back and asserts the rendered output is byte-identical. This is
// the property the parallel runner's fan-out relies on: a sweep point must
// depend only on (cfg, point), never on process history, map iteration
// order, or shared mutable state.
func TestExperimentsDeterministic(t *testing.T) {
	for _, r := range Registry() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			cfg := QuickConfig()
			var first, second strings.Builder
			r.Run(cfg, &first)
			r.Run(cfg, &second)
			if first.String() != second.String() {
				t.Errorf("experiment %s output changed between identical runs:\n--- first ---\n%s\n--- second ---\n%s",
					r.ID, first.String(), second.String())
			}
		})
	}
}

// TestSweepPointsStable asserts the point enumeration itself is
// deterministic and indices are dense — the pool stores rows by
// Point.Index, so a gap or duplicate would silently drop results.
func TestSweepPointsStable(t *testing.T) {
	t.Parallel()
	for _, r := range Registry() {
		cfg := QuickConfig()
		a := r.Sweep.Points(cfg)
		b := r.Sweep.Points(cfg)
		if len(a) != len(b) {
			t.Errorf("%s: point count changed between enumerations (%d vs %d)", r.ID, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: point %d changed between enumerations: %+v vs %+v", r.ID, i, a[i], b[i])
			}
			if a[i].Index != i {
				t.Errorf("%s: point %d has index %d; indices must be dense and in order", r.ID, i, a[i].Index)
			}
			if a[i].Experiment != r.ID {
				t.Errorf("%s: point %d claims experiment %q", r.ID, i, a[i].Experiment)
			}
		}
	}
}
