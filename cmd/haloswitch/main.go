// Command haloswitch runs the simulated OVS-style virtual switch over a
// generated traffic workload and prints the per-stage breakdown and
// throughput, with either the software or the HALO classification engine.
//
// Usage:
//
//	haloswitch -flows 100000 -rules 10 -packets 20000 -engine halo
//	haloswitch -compare            # software, halo and hybrid side by side
//
// -compare runs the three engines concurrently on the worker pool, each
// on its own platform with its own identically-seeded traffic source, so
// the reports match what three separate single-engine runs would print.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"halo/internal/classify"
	"halo/internal/cpu"
	ihalo "halo/internal/halo"
	"halo/internal/metrics"
	"halo/internal/packet"
	"halo/internal/runner"
	"halo/internal/trafficgen"
	"halo/internal/vswitch"
)

// workloadRules adapts a generated workload to the switch's rule installer.
type workloadRules struct{ w *trafficgen.Workload }

func (wr workloadRules) Install(ts *classify.TupleSpace) error { return wr.w.InstallRules(ts) }

// traffic bundles a packet source with its rule installer. Each engine run
// gets a fresh one so stateful sources never cross goroutines.
type traffic struct {
	nextPacket   func() packet.Packet
	installRules func(*vswitch.Switch) error
}

// trafficFactory builds an independent, identically-seeded traffic source.
type trafficFactory func() (traffic, error)

func main() {
	var (
		flows    = flag.Int("flows", 100_000, "number of concurrent flows")
		rules    = flag.Int("rules", 10, "number of wildcard rules (tuples)")
		packets  = flag.Int("packets", 20_000, "packets to forward (after warm-up)")
		engine   = flag.String("engine", "software", "classification engine: software | halo | hybrid")
		compare  = flag.Bool("compare", false, "run software, halo and hybrid engines concurrently and compare")
		openflow = flag.Bool("openflow", false, "enable the OpenFlow slow-path layer (rules install there; megaflows are learned)")
		zipf     = flag.Bool("zipf", false, "zipf flow popularity instead of uniform")
		seed     = flag.Uint64("seed", 1, "workload seed")
		trace    = flag.String("trace", "", "replay a flowgen trace file instead of generating traffic")
	)
	flag.Parse()

	var factory trafficFactory
	if *trace != "" {
		path := *trace
		factory = func() (traffic, error) {
			f, err := os.Open(path)
			if err != nil {
				return traffic{}, err
			}
			tr, err := trafficgen.ReadTrace(f)
			f.Close()
			if err != nil {
				return traffic{}, err
			}
			return traffic{
				nextPacket: tr.NextPacket,
				installRules: func(sw *vswitch.Switch) error {
					target := sw.Mega
					if sw.Open != nil {
						target = sw.Open
					}
					return tr.InstallRules(target)
				},
			}, nil
		}
	} else {
		pop := trafficgen.Uniform
		if *zipf {
			pop = trafficgen.Zipf
		}
		scn := trafficgen.Scenario{Name: "cli", Flows: *flows, Rules: *rules, Popularity: pop}
		wseed := *seed
		factory = func() (traffic, error) {
			w := trafficgen.Generate(scn, wseed)
			return traffic{
				nextPacket: func() packet.Packet { pkt, _ := w.NextPacket(); return pkt },
				installRules: func(sw *vswitch.Switch) error {
					return sw.InstallRules([]vswitch.RuleInstaller{workloadRules{w}})
				},
			}, nil
		}
	}

	if *compare {
		compareEngines(factory, *packets, *openflow)
		return
	}

	res := runEngine(*engine, factory, *packets, *openflow)
	if res.err != nil {
		fmt.Fprintln(os.Stderr, "haloswitch:", res.err)
		os.Exit(1)
	}
	io.WriteString(os.Stdout, res.report)
}

// compareEngines runs all three engines on the pool and prints each report
// in fixed order plus a head-to-head summary.
func compareEngines(factory trafficFactory, packets int, openflow bool) {
	engines := []string{"software", "halo", "hybrid"}
	results := runner.Map(0, engines, func(i int, e string) engineResult {
		return runEngine(e, factory, packets, openflow)
	})
	for i, res := range results {
		if res.err != nil {
			fmt.Fprintf(os.Stderr, "haloswitch: %s engine: %v\n", engines[i], res.err)
			os.Exit(1)
		}
		io.WriteString(os.Stdout, res.report)
		fmt.Println()
	}
	sw := results[0].cpp
	tb := metrics.NewTable("engine comparison", "engine", "cycles/pkt", "Mpps @2.1GHz", "speedup vs software")
	for i, res := range results {
		tb.AddRow(engines[i], res.cpp, metrics.Mpps(res.cpp, 2.1), fmt.Sprintf("%.2fx", sw/res.cpp))
	}
	tb.Render(os.Stdout)
}

type engineResult struct {
	report string
	cpp    float64
	err    error
}

// runEngine executes one full switch simulation on its own platform and
// returns the rendered report. It is self-contained so the compare path
// can run engines on separate goroutines.
func runEngine(engine string, factory trafficFactory, packets int, openflow bool) engineResult {
	cfg := vswitch.DefaultConfig()
	switch engine {
	case "software":
	case "halo":
		cfg.Engine = vswitch.EngineHalo
	case "hybrid":
		cfg.Engine = vswitch.EngineHybrid
	default:
		return engineResult{err: fmt.Errorf("unknown engine %q", engine)}
	}
	cfg.OpenFlow = openflow

	src, err := factory()
	if err != nil {
		return engineResult{err: err}
	}

	p := ihalo.NewPlatform(ihalo.DefaultPlatformConfig())
	sw, err := vswitch.New(p, cfg)
	if err != nil {
		return engineResult{err: err}
	}
	if err := src.installRules(sw); err != nil {
		return engineResult{err: err}
	}
	sw.Warm()
	th := cpu.NewThread(p.Hier, 0)

	for i := 0; i < packets/2; i++ { // warm-up pass
		pkt := src.nextPacket()
		sw.ProcessPacket(th, &pkt)
	}
	sw.ResetStats()
	th.ResetCounts() // latency histograms cover the measured window only
	for i := 0; i < packets; i++ {
		pkt := src.nextPacket()
		if _, ok := sw.ProcessPacket(th, &pkt); !ok {
			return engineResult{err: fmt.Errorf("unclassified packet (rule generation bug)")}
		}
	}

	var out strings.Builder
	b := sw.Breakdown()
	tb := metrics.NewTable(fmt.Sprintf("virtual switch, %s engine", engine),
		"stage", "cycles/pkt", "share")
	for s := vswitch.StagePacketIO; s <= vswitch.StageOther; s++ {
		tb.AddRow(s.String(), float64(b[s])/float64(sw.Packets()),
			metrics.Percent(float64(b[s])/float64(b.Total())))
	}
	tb.Render(&out)

	cpp := sw.CyclesPerPacket()
	hits, misses := sw.MegaStats()
	fmt.Fprintf(&out, "packets:             %d\n", sw.Packets())
	fmt.Fprintf(&out, "cycles/packet:       %.1f\n", cpp)
	fmt.Fprintf(&out, "throughput:          %.2f Mpps @ 2.1 GHz (single core)\n", metrics.Mpps(cpp, 2.1))
	fmt.Fprintf(&out, "classification:      %s of packet cost\n", metrics.Percent(b.ClassificationShare()))
	fmt.Fprintf(&out, "emc hit rate:        %s\n", metrics.Percent(sw.EMC.HitRate()))
	fmt.Fprintf(&out, "megaflow hits/miss:  %d/%d\n", hits, misses)
	if cfg.OpenFlow {
		fmt.Fprintf(&out, "openflow hits:       %d (megaflows learned: %d)\n", sw.OpenFlowHits(), sw.Mega.RuleCount())
	}
	if h := th.Hist("lat.packet"); h != nil {
		fmt.Fprintf(&out, "packet latency:      %s\n", metrics.Quantiles(h.Quantile))
	}
	// Per-mode lookup latency histograms: a hybrid run shows both engines'
	// distributions plus the combined hybrid view.
	for _, lh := range []struct{ name, label string }{
		{"lat.lookup.software", "software lookups"},
		{"lat.lookup.accel", "accel lookups"},
		{"lat.lookup.hybrid", "hybrid lookups"},
	} {
		if h := th.Hist(lh.name); h != nil {
			fmt.Fprintf(&out, "%-21s%s (n=%d, mean %.1f)\n", lh.label+":", metrics.Quantiles(h.Quantile), h.Count(), h.Mean())
		}
	}
	if mode, ok := sw.HybridMode(); ok {
		fmt.Fprintf(&out, "hybrid mode:         %v\n", mode)
	}
	if hy := sw.Hybrid(); hy != nil {
		swLookups, hwLookups := hy.Lookups()
		fmt.Fprintf(&out, "hybrid routing:      %d software / %d accel (%d window scans, incl. warm-up)\n",
			swLookups, hwLookups, hy.Scans())
		for _, ev := range hy.Timeline() {
			fmt.Fprintf(&out, "mode switch:         cycle %d: %v -> %v (flow estimate %.1f)\n",
				ev.At, ev.From, ev.To, ev.Estimate)
		}
	}
	if cfg.Engine == vswitch.EngineHalo {
		s := p.Unit.Stats()
		fmt.Fprintf(&out, "halo queries:        %d (hit rate %s, meta-cache hits %d)\n",
			s.Queries, metrics.Percent(float64(s.Hits)/float64(s.Queries)), s.MetaHits)
	}
	return engineResult{report: out.String(), cpp: cpp}
}
