package flowwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// The shm transport's connection setup (DESIGN.md §11). The listen address
// is a filesystem path, exactly like unix — a unix-domain socket is bound
// there and brokers every connection: the server creates a per-connection
// segment file next to the socket, maps it, and sends the client a small
// handshake message naming the file and its ring geometry; the client maps
// the file and acks. The socket then stays open for the life of the
// connection as the doorbell and liveness channel, and the segment file is
// unlinked the moment the ack lands — from then on the memory is anonymous
// (the mappings keep it alive) and a crash leaks nothing.
//
// Handshake message, server → client (little-endian):
//
//	offset  size  field
//	0       4     magic ("HALO")
//	4       4     layout version
//	8       4     request-ring bytes
//	12      4     reply-ring bytes
//	16      4     server PID
//	20      2     segment path length
//	22      ...   segment path
//
// Client → server: the ack byte (0x42) followed by the client's PID (4
// bytes). The PIDs feed the spin-budget choice (shmconn.go): a conn that
// knows its peer shares the process spins longer before parking. Either
// side failing or stalling past shmHandshakeTimeout aborts that connection
// without disturbing the listener.
const (
	shmHandshakeTimeout = 5 * time.Second
	shmAckByte          = 0x42
	shmHelloFixed       = 22
	shmAckLen           = 5
	shmMaxPathLen       = 4096
)

// shmSegSuffix marks segment files: <socket path> + shmSegSuffix + unique
// tail. The stale sweep globs this pattern, so it must stay in sync with
// segmentPath.
const shmSegSuffix = ".seg."

var errShmHandshake = errors.New("flowwire: shm handshake failed")

// shmListener accepts shm connections: a unix listener for the handshake
// plus the ring geometry every accepted connection gets.
type shmListener struct {
	ul        *net.UnixListener
	path      string
	ringBytes uint32
	seq       atomic.Uint64
}

// listenShm binds the handshake socket, sweeping stale artifacts (a dead
// server's socket and any orphaned segment files) first. ringBytes is the
// per-direction ring capacity each accepted connection gets.
func listenShm(path string, ringBytes uint32) (net.Listener, error) {
	if err := checkRingBytes(ringBytes); err != nil {
		return nil, err
	}
	removeStaleShm(path)
	ua, err := net.ResolveUnixAddr("unix", path)
	if err != nil {
		return nil, err
	}
	ul, err := net.ListenUnix("unix", ua)
	if err != nil {
		return nil, err
	}
	return &shmListener{ul: ul, path: path, ringBytes: ringBytes}, nil
}

// removeStaleShm unlinks a dead server's handshake socket and its orphaned
// segment files, mirroring removeStaleSocket: if anything answers the
// socket, a live server owns the path and nothing is touched. Segment
// files are normally unlinked at handshake time, so leftovers only exist
// when a server died inside the create-to-ack window — but they are real
// files on disk and this sweep is what lets a crashed flowserved restart
// cleanly.
func removeStaleShm(path string) {
	if fi, err := os.Lstat(path); err == nil && fi.Mode()&os.ModeSocket != 0 {
		nc, err := net.DialTimeout("unix", path, 250*time.Millisecond)
		if err == nil {
			nc.Close() // a live server owns the path; leave its segments alone
			return
		}
		os.Remove(path)
	} else if err == nil {
		return // path exists but is not a socket: let the bind report it
	}
	stale, _ := filepath.Glob(path + shmSegSuffix + "*")
	for _, seg := range stale {
		os.Remove(seg)
	}
}

func (l *shmListener) segmentPath() string {
	return fmt.Sprintf("%s%s%d.%d", l.path, shmSegSuffix, os.Getpid(), l.seq.Add(1))
}

// Accept waits for a handshake to complete and returns the connection. A
// dialer that fails or stalls mid-handshake is dropped and the loop keeps
// accepting — one broken client must not wedge the listener.
func (l *shmListener) Accept() (net.Conn, error) {
	for {
		uc, err := l.ul.AcceptUnix()
		if err != nil {
			return nil, err
		}
		c, err := l.handshake(uc)
		if err != nil {
			uc.Close()
			continue
		}
		return c, nil
	}
}

// handshake runs the server side of connection setup on a freshly accepted
// unix conn: create + map + init the segment, name it to the client, wait
// for the ack, unlink the file.
func (l *shmListener) handshake(uc *net.UnixConn) (conn net.Conn, err error) {
	segPath := l.segmentPath()
	size := segmentSize(l.ringBytes, l.ringBytes)
	f, err := os.OpenFile(segPath, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("%w: create segment: %v", errShmHandshake, err)
	}
	defer func() {
		// The file entry is consumed on success (unlinked below) and must
		// not outlive a failure either.
		if err != nil {
			os.Remove(segPath)
		}
	}()
	if terr := f.Truncate(int64(size)); terr != nil {
		f.Close()
		return nil, fmt.Errorf("%w: size segment: %v", errShmHandshake, terr)
	}
	mem, err := mmapFile(f, size)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%w: map segment: %v", errShmHandshake, err)
	}
	defer func() {
		if err != nil {
			munmap(mem)
		}
	}()
	seg, err := initSegment(mem, l.ringBytes, l.ringBytes)
	if err != nil {
		return nil, err
	}

	uc.SetDeadline(time.Now().Add(shmHandshakeTimeout))
	hello := make([]byte, 0, shmHelloFixed+len(segPath))
	hello = binary.LittleEndian.AppendUint32(hello, shmMagic)
	hello = binary.LittleEndian.AppendUint32(hello, shmLayoutVer)
	hello = binary.LittleEndian.AppendUint32(hello, l.ringBytes)
	hello = binary.LittleEndian.AppendUint32(hello, l.ringBytes)
	hello = binary.LittleEndian.AppendUint32(hello, uint32(os.Getpid()))
	hello = binary.LittleEndian.AppendUint16(hello, uint16(len(segPath)))
	hello = append(hello, segPath...)
	if _, werr := uc.Write(hello); werr != nil {
		return nil, fmt.Errorf("%w: send hello: %v", errShmHandshake, werr)
	}
	var ack [shmAckLen]byte
	if _, rerr := readFull(uc, ack[:]); rerr != nil || ack[0] != shmAckByte {
		return nil, fmt.Errorf("%w: ack: %v (byte %#x)", errShmHandshake, rerr, ack[0])
	}
	clientPid := int(binary.LittleEndian.Uint32(ack[1:5]))
	// The client holds its own mapping now: the filesystem entry has done
	// its job, and unlinking it makes the segment's lifetime exactly the
	// two mappings' lifetime — a crash from here on leaks nothing.
	os.Remove(segPath)
	uc.SetDeadline(time.Time{})
	return newShmConn(seg, uc, l.path, true, clientPid), nil
}

func (l *shmListener) Close() error   { return l.ul.Close() }
func (l *shmListener) Addr() net.Addr { return shmAddr(l.path) }

// dialShm runs the client side: dial the handshake socket, learn the
// segment's path and geometry, map it, ack.
func dialShm(addr string, timeout time.Duration) (conn net.Conn, err error) {
	nc, err := net.DialTimeout("unix", addr, timeout)
	if err != nil {
		return nil, err
	}
	uc := nc.(*net.UnixConn)
	defer func() {
		if err != nil {
			uc.Close()
		}
	}()
	if timeout <= 0 {
		timeout = shmHandshakeTimeout
	}
	uc.SetDeadline(time.Now().Add(timeout))

	var fixed [shmHelloFixed]byte
	if _, rerr := readFull(uc, fixed[:]); rerr != nil {
		return nil, fmt.Errorf("%w: hello: %v", errShmHandshake, rerr)
	}
	if m := binary.LittleEndian.Uint32(fixed[0:4]); m != shmMagic {
		return nil, fmt.Errorf("%w: magic %#x", errShmHandshake, m)
	}
	if v := binary.LittleEndian.Uint32(fixed[4:8]); v != shmLayoutVer {
		return nil, fmt.Errorf("%w: layout version %d, want %d", errShmHandshake, v, shmLayoutVer)
	}
	reqSize := binary.LittleEndian.Uint32(fixed[8:12])
	repSize := binary.LittleEndian.Uint32(fixed[12:16])
	if err := checkRingBytes(reqSize); err != nil {
		return nil, err
	}
	if err := checkRingBytes(repSize); err != nil {
		return nil, err
	}
	serverPid := int(binary.LittleEndian.Uint32(fixed[16:20]))
	pathLen := int(binary.LittleEndian.Uint16(fixed[20:22]))
	if pathLen == 0 || pathLen > shmMaxPathLen {
		return nil, fmt.Errorf("%w: segment path length %d", errShmHandshake, pathLen)
	}
	pathBuf := make([]byte, pathLen)
	if _, rerr := readFull(uc, pathBuf); rerr != nil {
		return nil, fmt.Errorf("%w: segment path: %v", errShmHandshake, rerr)
	}
	segPath := string(pathBuf)

	f, err := os.OpenFile(segPath, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: open segment: %v", errShmHandshake, err)
	}
	size := segmentSize(reqSize, repSize)
	fi, serr := f.Stat()
	if serr != nil {
		f.Close()
		return nil, fmt.Errorf("%w: stat segment: %v", errShmHandshake, serr)
	}
	if fi.Size() != int64(size) {
		f.Close()
		return nil, fmt.Errorf("%w: segment is %d bytes, want %d", errShmHandshake, fi.Size(), size)
	}
	mem, err := mmapFile(f, size)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%w: map segment: %v", errShmHandshake, err)
	}
	seg, err := attachSegment(mem)
	if err != nil {
		munmap(mem)
		return nil, err
	}
	ack := binary.LittleEndian.AppendUint32([]byte{shmAckByte}, uint32(os.Getpid()))
	if _, werr := uc.Write(ack); werr != nil {
		munmap(mem)
		return nil, fmt.Errorf("%w: send ack: %v", errShmHandshake, werr)
	}
	uc.SetDeadline(time.Time{})
	return newShmConn(seg, uc, addr, false, serverPid), nil
}

func readFull(uc *net.UnixConn, p []byte) (int, error) {
	return io.ReadFull(uc, p)
}
