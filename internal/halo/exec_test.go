package halo

import (
	"testing"

	"halo/internal/cpu"
	"halo/internal/isa"
	"halo/internal/mem"
)

func execFixture(t *testing.T) (*Platform, *cpu.Thread, mem.Addr, mem.Addr) {
	t.Helper()
	p := testPlatform(t)
	tbl := populatedTable(t, p, 1024, 700)
	keyAddr := p.Alloc.AllocLines(1)
	p.Space.WriteAt(keyAddr, key16(5))
	p.Hier.DMAWrite(keyAddr)
	return p, cpu.NewThread(p.Hier, 0), tbl.Base(), keyAddr
}

func TestExecuteLookupB(t *testing.T) {
	p, th, tableAddr, keyAddr := execFixture(t)
	var regs Regs
	regs[isa.RAX] = uint64(tableAddr)
	in := isa.Instruction{Op: isa.OpLookupB, KeyAddr: uint64(keyAddr), DstReg: 3}
	if err := p.Unit.Execute(th, &regs, in); err != nil {
		t.Fatal(err)
	}
	v, found, done := DecodeResult(regs[3])
	if !done || !found || v != 11 { // key 5 → value 5*2+1
		t.Fatalf("LOOKUP_B result = (%d,%v,%v)", v, found, done)
	}
	if th.Now == 0 {
		t.Fatal("LOOKUP_B charged no time")
	}
}

func TestExecuteNonBlockingThenSnapshot(t *testing.T) {
	p, th, tableAddr, keyAddr := execFixture(t)
	resultAddr := p.Alloc.AllocLines(1)
	var regs Regs
	regs[isa.RAX] = uint64(tableAddr)

	nb := isa.Instruction{Op: isa.OpLookupNB, KeyAddr: uint64(keyAddr), ResultAddr: uint64(resultAddr)}
	if err := p.Unit.Execute(th, &regs, nb); err != nil {
		t.Fatal(err)
	}
	issueTime := th.Now
	// LOOKUP_NB retires at issue; poll with SNAPSHOT_READ until done.
	sr := isa.Instruction{Op: isa.OpSnapshotRead, ResultAddr: uint64(resultAddr), DstReg: 7}
	for i := 0; ; i++ {
		if err := p.Unit.Execute(th, &regs, sr); err != nil {
			t.Fatal(err)
		}
		if _, _, done := DecodeResult(regs[7]); done {
			break
		}
		th.WaitUntil(th.Now + 8)
		if i > 100 {
			t.Fatal("result never arrived")
		}
	}
	v, found, _ := DecodeResult(regs[7])
	if !found || v != 11 {
		t.Fatalf("NB result = (%d,%v)", v, found)
	}
	// LOOKUP_NB retires in its issue slots (sub-cycle at width 4): the
	// thread must not have waited for the accelerator at issue time.
	if issueTime > 2 {
		t.Fatalf("LOOKUP_NB blocked for %d cycles", issueTime)
	}
}

func TestExecuteProgramStream(t *testing.T) {
	p, th, tableAddr, keyAddr := execFixture(t)
	resultAddr := p.Alloc.AllocLines(1)
	var program []byte
	program = append(program, isa.Instruction{Op: isa.OpLookupNB,
		KeyAddr: uint64(keyAddr), ResultAddr: uint64(resultAddr)}.Encode()...)
	program = append(program, isa.Instruction{Op: isa.OpLookupB,
		KeyAddr: uint64(keyAddr), DstReg: 2}.Encode()...)
	program = append(program, isa.Instruction{Op: isa.OpSnapshotRead,
		ResultAddr: uint64(resultAddr), DstReg: 4}.Encode()...)

	var regs Regs
	regs[isa.RAX] = uint64(tableAddr)
	n, err := p.Unit.ExecuteProgram(th, &regs, program)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("retired %d instructions, want 3", n)
	}
	// The blocking lookup's wait outlasts the NB query, so the snapshot
	// afterwards observes a completed result word.
	if v, found, done := DecodeResult(regs[4]); !done || !found || v != 11 {
		t.Fatalf("snapshot after program = (%d,%v,%v)", v, found, done)
	}
	if v, _, _ := DecodeResult(regs[2]); v != 11 {
		t.Fatal("blocking result wrong")
	}
}

func TestExecuteFaultPropagates(t *testing.T) {
	p, th, _, keyAddr := execFixture(t)
	var regs Regs
	regs[isa.RAX] = uint64(p.Alloc.AllocLines(1)) // garbage table
	in := isa.Instruction{Op: isa.OpLookupB, KeyAddr: uint64(keyAddr), DstReg: 1}
	if err := p.Unit.Execute(th, &regs, in); err != nil {
		t.Fatal(err)
	}
	if regs[1]&ResultFault == 0 {
		t.Fatal("fault bit not set for garbage metadata")
	}
}

func TestExecuteProgramDecodeError(t *testing.T) {
	p, th, _, _ := execFixture(t)
	var regs Regs
	if _, err := p.Unit.ExecuteProgram(th, &regs, []byte{0x90, 0x90}); err == nil {
		t.Fatal("garbage program executed")
	}
}
