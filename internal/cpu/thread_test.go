package cpu

import (
	"testing"

	"halo/internal/cache"
	"halo/internal/mem"
	"halo/internal/noc"
)

func newTestThread() *Thread {
	h := cache.New(cache.DefaultConfig(), noc.NewRing(noc.DefaultRingConfig()),
		mem.NewDRAM(mem.DefaultDRAMConfig()))
	return NewThread(h, 0)
}

func TestALUChargesAtIPC(t *testing.T) {
	th := newTestThread()
	th.ALU(Width * 10)
	if th.Now != 10 {
		t.Fatalf("Now = %d after %d ALU ops, want 10", th.Now, Width*10)
	}
	if th.Counts.Arith != uint64(Width*10) {
		t.Fatalf("arith count = %d", th.Counts.Arith)
	}
}

func TestALUSubCycleAccumulation(t *testing.T) {
	th := newTestThread()
	for i := 0; i < Width; i++ {
		th.ALU(1)
	}
	if th.Now != 1 {
		t.Fatalf("Now = %d after %d single ALU ops, want 1", th.Now, Width)
	}
}

func TestLoadBlocksAndCounts(t *testing.T) {
	th := newTestThread()
	res := th.Load(0x1000)
	if th.Now != res.Done {
		t.Fatal("demand load did not block the thread")
	}
	if th.Counts.Loads != 1 {
		t.Fatalf("loads = %d, want 1", th.Counts.Loads)
	}
	if res.Where != cache.InMemory {
		t.Fatalf("cold load hit %v", res.Where)
	}
	// Hot load is an L1 hit and far cheaper.
	before := th.Now
	res2 := th.Load(0x1000)
	if res2.Where != cache.InL1 {
		t.Fatalf("hot load hit %v", res2.Where)
	}
	if th.Now-before >= res.Latency() {
		t.Fatal("L1 hit not cheaper than cold miss")
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	cold := newTestThread()
	coldStart := cold.Now
	cold.Load(0x2000)
	coldLatency := cold.Now - coldStart

	warm := newTestThread()
	warm.Prefetch(0x2000)
	// Do unrelated work that overlaps the fill.
	warm.ALU(int(coldLatency) * Width)
	start := warm.Now
	warm.Load(0x2000)
	overlapped := warm.Now - start
	if overlapped >= coldLatency/2 {
		t.Fatalf("prefetched load still cost %d cycles (cold: %d)", overlapped, coldLatency)
	}
}

func TestPrefetchDoesNotTimeTravel(t *testing.T) {
	th := newTestThread()
	th.Prefetch(0x3000)
	// Demand load immediately: must wait for the fill, not hit "warm" L1.
	start := th.Now
	th.Load(0x3000)
	if th.Now-start < 50 {
		t.Fatalf("demand load right after prefetch cost only %d cycles", th.Now-start)
	}
}

func TestStoreIsFireAndForget(t *testing.T) {
	th := newTestThread()
	th.Store(0x4000)
	if th.Now > 1 {
		t.Fatalf("store blocked the thread for %d cycles", th.Now)
	}
	if th.Counts.Stores != 1 {
		t.Fatalf("stores = %d", th.Counts.Stores)
	}
}

func TestMPKLAndStallRatio(t *testing.T) {
	th := newTestThread()
	// One memory miss, then 999 L1 hits.
	th.Load(0x5000)
	for i := 0; i < 999; i++ {
		th.Load(0x5000)
	}
	mpkl := th.MPKL(cache.InLLC)
	if mpkl < 0.9 || mpkl > 1.1 {
		t.Fatalf("MPKL = %v, want ~1", mpkl)
	}
	if r := th.StallRatio(cache.InLLC); r <= 0 || r >= 1 {
		t.Fatalf("stall ratio = %v", r)
	}
	if th.MPKL(cache.InL2) < th.MPKL(cache.InMemory) {
		t.Fatal("MPKL must be monotone in level")
	}
}

func TestWaitUntil(t *testing.T) {
	th := newTestThread()
	th.WaitUntil(100)
	if th.Now != 100 {
		t.Fatalf("Now = %d, want 100", th.Now)
	}
	th.WaitUntil(50) // never goes backwards
	if th.Now != 100 {
		t.Fatalf("Now went backwards to %d", th.Now)
	}
}

func TestReset(t *testing.T) {
	th := newTestThread()
	th.Load(0x6000)
	th.ALU(7)
	th.Reset()
	if th.Now != 0 || th.Counts.Total() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestSnapshotReadCountsAsLoad(t *testing.T) {
	th := newTestThread()
	th.H.WarmLLC(0x7000)
	res := th.SnapshotRead(0x7000)
	if res.Where != cache.InLLC {
		t.Fatalf("snapshot read hit %v, want LLC", res.Where)
	}
	if th.Counts.Loads != 1 {
		t.Fatal("snapshot read not counted as a load")
	}
	// Repeating it still does not allocate into L1.
	res2 := th.SnapshotRead(0x7000)
	if res2.Where == cache.InL1 {
		t.Fatal("snapshot read allocated into L1")
	}
}
