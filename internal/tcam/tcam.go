// Package tcam models the ternary content-addressable memory baselines of
// the paper's evaluation (§5.1): a classic TCAM that searches its whole rule
// set in parallel in a few cycles, and the SRAM-based TCAM emulation of
// Z-TCAM-style designs, which trades a slightly deeper pipeline for much
// lower power.
//
// Functionally, both store ternary entries (value + care mask over a fixed
// key width) with index-order priority: the lowest-indexed matching entry
// wins, as in real packet-classification TCAMs.
package tcam

import (
	"errors"
	"fmt"

	"halo/internal/cpu"
	"halo/internal/sim"
)

// Kind distinguishes the two hardware baselines.
type Kind int

// TCAM variants.
const (
	ClassicTCAM Kind = iota
	SRAMTCAM
)

func (k Kind) String() string {
	if k == ClassicTCAM {
		return "TCAM"
	}
	return "SRAM-TCAM"
}

// Config sizes a device.
type Config struct {
	Kind     Kind
	Capacity int // entries
	KeyBytes int
	// LookupLatency is the fixed search latency in CPU cycles. Classic
	// TCAMs answer in a few cycles; SRAM emulations pipeline a bit deeper.
	LookupLatency sim.Cycle
	// CommandCycles is the uncore round trip to deliver the key and fetch
	// the result from a CPU-integrated device: even a one-cycle match
	// array sits behind the on-chip fabric.
	CommandCycles sim.Cycle
}

// DefaultConfig returns the paper's device parameters for a kind.
func DefaultConfig(kind Kind, capacity, keyBytes int) Config {
	lat := sim.Cycle(3)
	if kind == SRAMTCAM {
		lat = 6
	}
	return Config{Kind: kind, Capacity: capacity, KeyBytes: keyBytes, LookupLatency: lat, CommandCycles: 28}
}

// Entry is one ternary rule: key bits that matter are where Care bits are 1.
type Entry struct {
	Value []byte
	Care  []byte
	Data  uint64
}

// Device is one TCAM instance.
type Device struct {
	cfg     Config
	entries []Entry
	queries uint64
	hits    uint64
}

// Errors.
var (
	ErrFull   = errors.New("tcam: capacity exhausted")
	ErrKeyLen = errors.New("tcam: key length mismatch")
)

// New builds an empty device.
func New(cfg Config) *Device {
	if cfg.Capacity <= 0 || cfg.KeyBytes <= 0 {
		panic(fmt.Sprintf("tcam: bad config %+v", cfg))
	}
	return &Device{cfg: cfg}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Len returns the number of installed entries.
func (d *Device) Len() int { return len(d.entries) }

// Queries returns the number of searches performed (for energy accounting).
func (d *Device) Queries() uint64 { return d.queries }

// HitRate returns the fraction of searches that matched.
func (d *Device) HitRate() float64 {
	if d.queries == 0 {
		return 0
	}
	return float64(d.hits) / float64(d.queries)
}

// CapacityBytes returns the device's raw storage size (2 bits per ternary
// cell ≈ value + care bit planes).
func (d *Device) CapacityBytes() uint64 {
	return uint64(d.cfg.Capacity) * uint64(d.cfg.KeyBytes)
}

// Insert appends an entry at the lowest free priority. Value bytes outside
// the care mask are canonicalised to zero.
func (d *Device) Insert(value, care []byte, data uint64) error {
	if len(value) != d.cfg.KeyBytes || len(care) != d.cfg.KeyBytes {
		return ErrKeyLen
	}
	if len(d.entries) >= d.cfg.Capacity {
		return ErrFull
	}
	e := Entry{Value: make([]byte, len(value)), Care: make([]byte, len(care)), Data: data}
	for i := range value {
		e.Care[i] = care[i]
		e.Value[i] = value[i] & care[i]
	}
	d.entries = append(d.entries, e)
	return nil
}

// InsertExact installs a fully specified (no wildcard) entry.
func (d *Device) InsertExact(key []byte, data uint64) error {
	care := make([]byte, len(key))
	for i := range care {
		care[i] = 0xFF
	}
	return d.Insert(key, care, data)
}

// Lookup searches all entries in parallel; the lowest-indexed match wins.
func (d *Device) Lookup(key []byte) (data uint64, ok bool) {
	d.queries++
	if len(key) != d.cfg.KeyBytes {
		return 0, false
	}
	for _, e := range d.entries {
		if matches(e, key) {
			d.hits++
			return e.Data, true
		}
	}
	return 0, false
}

func matches(e Entry, key []byte) bool {
	for i := range key {
		if key[i]&e.Care[i] != e.Value[i] {
			return false
		}
	}
	return true
}

// LookupTimed performs a search charging the issuing thread: one command
// instruction plus the device's fixed pipeline latency. TCAM throughput is
// pipelined, so back-to-back searches from one thread are limited by issue
// rate, not latency; the issue cost models the MMIO-mapped command.
func (d *Device) LookupTimed(th *cpu.Thread, key []byte) (uint64, bool) {
	th.Other(1)
	th.ALU(1)
	data, ok := d.Lookup(key)
	th.WaitUntil(th.Now + d.cfg.CommandCycles + d.cfg.LookupLatency)
	return data, ok
}

// Delete removes the first entry exactly matching (value, care) and returns
// whether one was removed. TCAM deletion shifts priorities — the expensive
// update behaviour the paper criticises (§1) — so it costs O(n) here too.
func (d *Device) Delete(value, care []byte) bool {
	for i, e := range d.entries {
		same := true
		for j := range value {
			if e.Value[j] != value[j]&care[j] || e.Care[j] != care[j] {
				same = false
				break
			}
		}
		if same {
			d.entries = append(d.entries[:i], d.entries[i+1:]...)
			return true
		}
	}
	return false
}

// Update-cost model (paper §1: TCAM updates are "expensive and inflexible").
// Inserting at a priority position shifts every lower-priority entry down
// one slot to keep index order; deleting shifts them back up. Each shifted
// entry costs a read-modify-write of its ternary row.
const shiftCyclesPerEntry = 2

// InsertTimed installs an entry at priority position pos (entries at pos and
// below shift down), charging the issuing thread the shift cost.
func (d *Device) InsertTimed(th *cpu.Thread, pos int, value, care []byte, data uint64) error {
	if len(d.entries) >= d.cfg.Capacity {
		return ErrFull
	}
	if pos < 0 || pos > len(d.entries) {
		pos = len(d.entries)
	}
	shifted := len(d.entries) - pos
	th.Other(4)
	th.ALU(4)
	th.WaitUntil(th.Now + d.cfg.CommandCycles + sim.Cycle(shifted)*shiftCyclesPerEntry)
	if err := d.Insert(value, care, data); err != nil {
		return err
	}
	// Move the new entry into its priority slot.
	e := d.entries[len(d.entries)-1]
	copy(d.entries[pos+1:], d.entries[pos:len(d.entries)-1])
	d.entries[pos] = e
	return nil
}

// DeleteTimed removes the entry matching (value, care), charging the thread
// the shift-up cost for every entry below it.
func (d *Device) DeleteTimed(th *cpu.Thread, value, care []byte) bool {
	for i := range d.entries {
		same := true
		for j := range value {
			if d.entries[i].Value[j] != value[j]&care[j] || d.entries[i].Care[j] != care[j] {
				same = false
				break
			}
		}
		if same {
			shifted := len(d.entries) - i - 1
			th.Other(4)
			th.ALU(4)
			th.WaitUntil(th.Now + d.cfg.CommandCycles + sim.Cycle(shifted)*shiftCyclesPerEntry)
			d.entries = append(d.entries[:i], d.entries[i+1:]...)
			return true
		}
	}
	return false
}
