package flowwire

import (
	"errors"
	"fmt"
	"net"
	"os"
	"time"
)

// Transport names. The wire protocol is byte-identical on every transport;
// only the dial/listen plumbing differs, so the Reader/Writer surface (and
// the frame codec, and the server runtime) is shared verbatim. Benchmark
// documents stamp the transport into their workload identity so benchdiff
// refuses cross-transport comparisons.
const (
	// TransportTCP serves "host:port" addresses over TCP (loopback or
	// cross-host). The historical default.
	TransportTCP = "tcp"
	// TransportUnix serves a filesystem socket path over unix-domain
	// stream sockets: same syscall count as TCP but no packetization,
	// checksumming or loopback queueing — the cheap same-host transport.
	TransportUnix = "unix"
	// TransportShm serves a filesystem path like unix, but the path only
	// brokers connection setup: each connection's byte stream lives in a
	// pair of SPSC rings inside an mmap-shared segment, so the steady-state
	// frame path makes zero syscalls — the fastest same-host transport
	// (DESIGN.md §11).
	TransportShm = "shm"
)

// ErrBadTransport reports an unknown -transport value.
var ErrBadTransport = errors.New(`flowwire: unknown transport (want "tcp", "unix" or "shm")`)

// CheckTransport validates a transport name ("" means TransportTCP).
func CheckTransport(transport string) (string, error) {
	switch transport {
	case "", TransportTCP:
		return TransportTCP, nil
	case TransportUnix:
		return TransportUnix, nil
	case TransportShm:
		return TransportShm, nil
	}
	return "", fmt.Errorf("%w: %q", ErrBadTransport, transport)
}

// Listen opens a listener for the given transport: a TCP "host:port", a
// unix socket path, or a shm handshake-socket path.
//
// Deprecated: new callers should parse a flowwire.Endpoint and use
// ListenEndpoint; this split (transport, addr) form is kept as a shim for
// existing scripts and call sites. For the path-based
// transports, stale artifacts left by a dead server (a socket nobody
// answers on; for shm, orphaned segment files too) are removed before
// listening, so flowserved restarts cleanly; a live server's path is left
// alone and the bind fails as it should. The returned listener unlinks its
// socket on Close.
func Listen(transport, addr string) (net.Listener, error) {
	transport, err := CheckTransport(transport)
	if err != nil {
		return nil, err
	}
	switch transport {
	case TransportUnix:
		removeStaleSocket(addr)
	case TransportShm:
		return listenShm(addr, DefaultShmRingBytes)
	}
	return net.Listen(transport, addr)
}

// removeStaleSocket unlinks addr if it is a socket file nobody answers on.
func removeStaleSocket(addr string) {
	fi, err := os.Lstat(addr)
	if err != nil || fi.Mode()&os.ModeSocket == 0 {
		return // absent, or not a socket: let Listen report the real error
	}
	nc, err := net.DialTimeout(TransportUnix, addr, 250*time.Millisecond)
	if err == nil {
		nc.Close() // a live server owns it
		return
	}
	os.Remove(addr)
}

// dialTransport connects to addr over the named transport, applying the
// TCP-only socket options where they exist.
func dialTransport(transport, addr string, timeout time.Duration) (net.Conn, error) {
	transport, err := CheckTransport(transport)
	if err != nil {
		return nil, err
	}
	if transport == TransportShm {
		return dialShm(addr, timeout)
	}
	nc, err := net.DialTimeout(transport, addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return nc, nil
}
