// Package nf implements the network functions of paper Table 3: the
// hash-table-bound NFs that HALO accelerates directly (NAT, passive asset
// detection, packet filtering — Fig. 13) and the compute-bound NFs used in
// the collocation study (ACL, signature matching, a user-level TCP stack —
// Fig. 12). Each NF owns state in simulated memory and processes packets on
// a cpu.Thread, so cache interactions with a collocated virtual switch are
// real, not modelled.
package nf

import (
	"fmt"

	"halo/internal/cpu"
	"halo/internal/packet"
)

// Verdict is an NF's per-packet outcome.
type Verdict int

// Verdicts.
const (
	VerdictAccept Verdict = iota
	VerdictDrop
	VerdictRewritten
	VerdictAlert
)

func (v Verdict) String() string {
	switch v {
	case VerdictAccept:
		return "accept"
	case VerdictDrop:
		return "drop"
	case VerdictRewritten:
		return "rewritten"
	case VerdictAlert:
		return "alert"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Engine selects how a hash-table NF performs its lookups.
type Engine int

// Engines.
const (
	EngineSoftware Engine = iota
	EngineHalo
)

// NF is one network function instance.
type NF interface {
	Name() string
	// ProcessPacket runs one packet, charging the thread.
	ProcessPacket(th *cpu.Thread, pkt *packet.Packet) Verdict
	// Packets reports how many packets have been processed.
	Packets() uint64
}

// Stats tracks common counters for NF implementations.
type Stats struct {
	packets  uint64
	verdicts [4]uint64
}

func (s *Stats) record(v Verdict) {
	s.packets++
	s.verdicts[v]++
}

// Packets reports processed packets.
func (s *Stats) Packets() uint64 { return s.packets }

// Verdicts reports per-verdict counts.
func (s *Stats) Verdicts() [4]uint64 { return s.verdicts }
