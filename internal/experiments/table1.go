package experiments

import (
	"io"

	"halo/internal/cuckoo"
	"halo/internal/metrics"
	"halo/internal/stats"
)

// Table1Result reproduces Table 1: the retired-instruction profile of one
// software hash-table lookup.
type Table1Result struct {
	InstructionsPerLookup float64
	LoadShare             float64
	StoreShare            float64
	MemoryShare           float64
	ArithShare            float64
	OtherShare            float64
	Table                 *metrics.Table
}

// table1Row is the single point's measurement (the Table1Result scalars).
type table1Row struct {
	InstructionsPerLookup float64
	LoadShare             float64
	StoreShare            float64
	MemoryShare           float64
	ArithShare            float64
	OtherShare            float64
}

// Table1Sweep exposes the single instruction-profile measurement as a
// one-point sweep.
func Table1Sweep() Sweep {
	return Sweep{
		Points: func(cfg Config) []Point {
			return []Point{{Experiment: "table1", Index: 0, Label: "instruction-profile"}}
		},
		RunPoint: func(cfg Config, p Point) any {
			snap := pointSnapshot(cfg)
			row := runTable1Point(cfg, snap)
			recordSnap(cfg, p, snap)
			return row
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			assembleTable1(rows).Table.Render(w)
		},
	}
}

// RunTable1 reproduces Table 1.
func RunTable1(cfg Config) *Table1Result {
	return assembleTable1(runSerial(cfg, Table1Sweep()))
}

func runTable1Point(cfg Config, snap *stats.Snapshot) table1Row {
	lookups := pickSize(cfg, 2000, 20000)
	f := newLookupFixture(1<<14, 0.75)
	var kb [testKeyLen]byte
	for i := 0; i < lookups; i++ { // warm
		testKeyInto(uint64(i)%f.fill, kb[:])
		f.table.TimedLookup(f.thread, kb[:], cuckoo.DefaultLookupOptions())
	}
	f.thread.ResetCounts()
	for i := 0; i < lookups; i++ {
		testKeyInto(uint64(i*13)%f.fill, kb[:])
		f.table.TimedLookup(f.thread, kb[:], cuckoo.DefaultLookupOptions())
	}
	collectInto(snap, f.p, f.thread)
	c := f.thread.Counts
	n := float64(lookups)
	total := float64(c.Total())
	return table1Row{
		InstructionsPerLookup: total / n,
		LoadShare:             float64(c.Loads) / total,
		StoreShare:            float64(c.Stores) / total,
		MemoryShare:           float64(c.Loads+c.Stores) / total,
		ArithShare:            float64(c.Arith) / total,
		OtherShare:            float64(c.Other) / total,
	}
}

func assembleTable1(rows []any) *Table1Result {
	row := rows[0].(table1Row)
	res := &Table1Result{
		InstructionsPerLookup: row.InstructionsPerLookup,
		LoadShare:             row.LoadShare,
		StoreShare:            row.StoreShare,
		MemoryShare:           row.MemoryShare,
		ArithShare:            row.ArithShare,
		OtherShare:            row.OtherShare,
	}
	res.Table = metrics.NewTable("Table 1: instructions per software lookup",
		"solution", "#instr/lookup", "memory", "(load)", "(store)", "arith", "other")
	res.Table.SetCaption("paper: 210 instr; 48.1%% memory (36.2%% load, 11.8%% store), 21.0%% arith, 30.9%% other")
	res.Table.AddRow("OVS/cuckoo hash", res.InstructionsPerLookup,
		metrics.Percent(res.MemoryShare), metrics.Percent(res.LoadShare),
		metrics.Percent(res.StoreShare), metrics.Percent(res.ArithShare),
		metrics.Percent(res.OtherShare))
	return res
}
