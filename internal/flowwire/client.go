package flowwire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"halo/internal/flowserve"
)

// Client errors.
var (
	// ErrClientClosed reports a call on a Close()d client.
	ErrClientClosed = errors.New("flowwire: client closed")
	// ErrConnClosed reports the server hanging up with calls in flight
	// (e.g. it drained); the first underlying cause is kept by Err.
	ErrConnClosed = errors.New("flowwire: connection closed by server")
	// ErrCallTimeout reports a reply not arriving inside CallTimeout.
	ErrCallTimeout = errors.New("flowwire: call timed out")
)

// Options parametrises Dial. The zero value works.
type Options struct {
	// Conns is the connection-pool size (default 1). Calls round-robin
	// across the pool; concurrent calls on one connection pipeline —
	// each is tagged with a reqID and matched to its reply, so many
	// goroutines can share few sockets.
	Conns int
	// DialTimeout bounds each connect + the HELLO handshake (default 10s).
	DialTimeout time.Duration
	// WriteTimeout bounds each request write (default 30s).
	WriteTimeout time.Duration
	// CallTimeout bounds the wait for a reply (default 60s).
	CallTimeout time.Duration
	// MaxFrame bounds accepted reply frames (default DefaultMaxFrame).
	MaxFrame uint32
}

func (o *Options) applyDefaults() {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 60 * time.Second
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = DefaultMaxFrame
	}
}

// Client is a remote flowserve table: it implements flowserve.Reader and
// flowserve.Writer over the wire protocol, so a *Client drops in wherever a
// *flowserve.Table serves (flowload's -remote mode drives both through one
// code path). Transport failures are sticky: the first one breaks the
// client, every later call fails fast, and Err reports the cause — lookups
// on a broken client return misses, mirroring the interface's error-free
// read signatures.
type Client struct {
	opts  Options
	hello HelloInfo
	conns []*cliConn
	rr    atomic.Uint64 // round-robin cursor

	errOnce sync.Once
	err     atomic.Value // error: first transport failure
	closed  atomic.Bool
}

var (
	_ flowserve.Reader = (*Client)(nil)
	_ flowserve.Writer = (*Client)(nil)
)

// cliConn is one pooled connection: writes serialise on wmu (reqID
// assignment + frame write + flush), the reader goroutine matches reply
// reqIDs to waiting calls.
type cliConn struct {
	cl     *Client
	nc     net.Conn
	bw     *bufio.Writer
	wmu    sync.Mutex
	nextID uint64

	pmu     sync.Mutex
	pending map[uint64]chan Frame
	dead    bool
	deadErr error
}

// Dial connects a pool of opts.Conns connections to a flowserved at addr
// and performs the HELLO handshake to learn the table geometry.
func Dial(addr string, opts Options) (*Client, error) {
	opts.applyDefaults()
	cl := &Client{opts: opts}
	for i := 0; i < opts.Conns; i++ {
		nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("flowwire: dial %s: %w", addr, err)
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		c := &cliConn{cl: cl, nc: nc, bw: bufio.NewWriterSize(nc, 64<<10), pending: make(map[uint64]chan Frame)}
		cl.conns = append(cl.conns, c)
		go c.readLoop()
	}
	f, err := cl.call(OpHello, nil)
	if err != nil {
		cl.Close()
		return nil, fmt.Errorf("flowwire: HELLO: %w", err)
	}
	if err := f.Status.Err(OpHello); err != nil {
		cl.Close()
		return nil, fmt.Errorf("flowwire: HELLO: %w", err)
	}
	if cl.hello, err = parseHelloReply(f.Payload); err != nil {
		cl.Close()
		return nil, err
	}
	if cl.hello.KeyLen <= 0 || cl.hello.KeyLen > flowserve.MaxKeyLen {
		cl.Close()
		return nil, fmt.Errorf("flowwire: HELLO reports key length %d", cl.hello.KeyLen)
	}
	return cl, nil
}

// Hello returns the table geometry reported at dial time.
func (cl *Client) Hello() HelloInfo { return cl.hello }

// KeyLen returns the remote table's fixed key length.
func (cl *Client) KeyLen() int { return cl.hello.KeyLen }

// Err returns the first transport failure, or nil. A load driver should
// check it after a run: a broken client serves misses, not panics.
func (cl *Client) Err() error {
	if e, ok := cl.err.Load().(error); ok {
		return e
	}
	return nil
}

func (cl *Client) fail(err error) {
	cl.errOnce.Do(func() { cl.err.Store(err) })
}

// Close tears the pool down. In-flight calls fail with ErrClientClosed.
func (cl *Client) Close() error {
	cl.closed.Store(true)
	for _, c := range cl.conns {
		c.nc.Close()
	}
	return nil
}

// readLoop dispatches reply frames to their waiting calls; any read error
// fails every pending call on the connection and breaks the client.
func (c *cliConn) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var cause error
	for {
		var f Frame
		if err := ReadFrame(br, c.cl.opts.MaxFrame, &f); err != nil {
			cause = err
			break
		}
		c.pmu.Lock()
		ch := c.pending[f.ReqID]
		delete(c.pending, f.ReqID)
		c.pmu.Unlock()
		if ch == nil {
			cause = fmt.Errorf("flowwire: reply for unknown reqID %d", f.ReqID)
			break
		}
		ch <- f
	}
	switch {
	case c.cl.closed.Load():
		cause = ErrClientClosed
	case cause == io.EOF:
		cause = ErrConnClosed
	}
	if cause != ErrClientClosed {
		c.cl.fail(cause)
	}
	c.pmu.Lock()
	c.dead = true
	c.deadErr = cause
	waiting := c.pending
	c.pending = make(map[uint64]chan Frame)
	c.pmu.Unlock()
	c.nc.Close()
	for _, ch := range waiting {
		close(ch) // a closed channel signals "no reply; see deadErr"
	}
}

// call sends one request on a pooled connection and waits for its reply.
func (cl *Client) call(op Op, payload []byte) (Frame, error) {
	if cl.closed.Load() {
		return Frame{}, ErrClientClosed
	}
	if err := cl.Err(); err != nil {
		return Frame{}, err
	}
	c := cl.conns[cl.rr.Add(1)%uint64(len(cl.conns))]

	ch := make(chan Frame, 1)
	c.wmu.Lock()
	c.pmu.Lock()
	if c.dead {
		err := c.deadErr
		c.pmu.Unlock()
		c.wmu.Unlock()
		return Frame{}, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.pmu.Unlock()
	buf := AppendFrame(make([]byte, 0, headerSize+len(payload)), &Frame{Op: op, ReqID: id, Payload: payload})
	c.nc.SetWriteDeadline(time.Now().Add(cl.opts.WriteTimeout))
	_, err := c.bw.Write(buf)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		cl.fail(err)
		c.nc.Close() // the read loop fails the registered call
	}

	timer := time.NewTimer(cl.opts.CallTimeout)
	defer timer.Stop()
	select {
	case f, ok := <-ch:
		if !ok {
			c.pmu.Lock()
			err := c.deadErr
			c.pmu.Unlock()
			if err == nil {
				err = ErrConnClosed
			}
			return Frame{}, err
		}
		if f.Op != op {
			err := fmt.Errorf("flowwire: reply op %s to a %s request", f.Op, op)
			cl.fail(err)
			return Frame{}, err
		}
		return f, nil
	case <-timer.C:
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		cl.fail(ErrCallTimeout)
		return Frame{}, ErrCallTimeout
	}
}

// Lookup implements flowserve.Reader: a blocking single-key remote lookup
// (the wire LOOKUP op, the paper's LOOKUP_B). Wrong-length keys and
// transport failures are misses.
func (cl *Client) Lookup(key []byte) (uint64, bool) {
	if len(key) != cl.hello.KeyLen {
		return 0, false
	}
	f, err := cl.call(OpLookup, key)
	if err != nil || f.Status != StatusOK || len(f.Payload) != 9 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(f.Payload[1:9]), f.Payload[0] != 0
}

// LookupMany implements flowserve.Reader: all keys travel in one
// LOOKUP_MANY frame (the paper's batched LOOKUP_NB), with wrong-length keys
// answered locally as misses. On transport failure every result is a miss.
func (cl *Client) LookupMany(keys [][]byte, results []flowserve.Result) int {
	n := len(keys)
	_ = results[:n]
	keyLen := cl.hello.KeyLen
	allValid := true
	for _, k := range keys {
		if len(k) != keyLen {
			allValid = false
			break
		}
	}
	valid := keys
	var validIdx []int // nil on the common all-valid path
	if !allValid {
		valid = make([][]byte, 0, n)
		validIdx = make([]int, 0, n)
		for j, kj := range keys {
			results[j] = flowserve.Result{}
			if len(kj) == keyLen {
				valid = append(valid, kj)
				validIdx = append(validIdx, j)
			}
		}
	}
	if len(valid) == 0 {
		for i := range keys {
			results[i] = flowserve.Result{}
		}
		return 0
	}

	payload := appendLookupManyReq(make([]byte, 0, 6+len(valid)*keyLen), valid, keyLen)
	f, err := cl.call(OpLookupMany, payload)
	if err != nil || f.Status != StatusOK {
		for i := range keys {
			results[i] = flowserve.Result{}
		}
		return 0
	}
	var out []flowserve.Result
	if validIdx == nil {
		out = results[:n]
	} else {
		out = make([]flowserve.Result, len(valid))
	}
	count, perr := parseLookupManyReply(f.Payload, out)
	if perr != nil || count != len(valid) {
		cl.fail(fmt.Errorf("flowwire: LOOKUP_MANY reply mismatch: %d results for %d keys (%v)", count, len(valid), perr))
		for i := range keys {
			results[i] = flowserve.Result{}
		}
		return 0
	}
	hits := 0
	if validIdx == nil {
		for i := range out {
			if out[i].OK {
				hits++
			}
		}
		return hits
	}
	for vi, r := range out {
		results[validIdx[vi]] = r
		if r.OK {
			hits++
		}
	}
	return hits
}

// mutatePayload packs value+key for INSERT/UPDATE.
func mutatePayload(value uint64, key []byte) []byte {
	p := make([]byte, 0, 8+len(key))
	p = binary.LittleEndian.AppendUint64(p, value)
	return append(p, key...)
}

// Insert implements flowserve.Writer over the wire. Table-semantics
// failures come back as the flowserve errors (ErrKeyExists, ErrTableFull,
// ErrKeyLen); transport failures as the underlying error.
func (cl *Client) Insert(key []byte, value uint64) error {
	if len(key) != cl.hello.KeyLen {
		return flowserve.ErrKeyLen
	}
	f, err := cl.call(OpInsert, mutatePayload(value, key))
	if err != nil {
		return err
	}
	return f.Status.Err(OpInsert)
}

// Update implements flowserve.Writer; false on absent key or failure.
func (cl *Client) Update(key []byte, value uint64) bool {
	if len(key) != cl.hello.KeyLen {
		return false
	}
	f, err := cl.call(OpUpdate, mutatePayload(value, key))
	return err == nil && f.Status == StatusOK && len(f.Payload) == 1 && f.Payload[0] != 0
}

// Delete implements flowserve.Writer; false on absent key or failure.
func (cl *Client) Delete(key []byte) bool {
	if len(key) != cl.hello.KeyLen {
		return false
	}
	f, err := cl.call(OpDelete, key)
	return err == nil && f.Status == StatusOK && len(f.Payload) == 1 && f.Payload[0] != 0
}

// Stats fetches the server's counter snapshot (flowwire.* and flowserve.*
// names) via the STATS op.
func (cl *Client) Stats() (map[string]uint64, error) {
	f, err := cl.call(OpStats, nil)
	if err != nil {
		return nil, err
	}
	if err := f.Status.Err(OpStats); err != nil {
		return nil, err
	}
	counters := make(map[string]uint64)
	if err := json.Unmarshal(f.Payload, &counters); err != nil {
		return nil, fmt.Errorf("flowwire: STATS payload: %w", err)
	}
	return counters, nil
}
