package noc

import (
	"testing"
	"testing/quick"
)

func TestRingHopsShortestWay(t *testing.T) {
	r := NewRing(RingConfig{Stops: 16, HopCycles: 2, InjectDelay: 3})
	cases := []struct{ from, to, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 8, 8}, {0, 9, 7}, {0, 15, 1}, {3, 12, 7}, {15, 1, 2},
	}
	for _, c := range cases {
		if got := r.Hops(c.from, c.to); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestRingHopsSymmetric(t *testing.T) {
	r := NewRing(DefaultRingConfig())
	check := func(a, b uint8) bool {
		from, to := int(a)%16, int(b)%16
		return r.Hops(from, to) == r.Hops(to, from)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRingDelayLocalVsFar(t *testing.T) {
	r := NewRing(DefaultRingConfig())
	local := r.Delay(5, 5)
	far := r.Delay(0, 8)
	if local != 3 {
		t.Fatalf("local delay = %d, want inject cost 3", local)
	}
	if far != 3+8*2 {
		t.Fatalf("far delay = %d, want 19", far)
	}
	if r.MeanDelay(0) <= float64(local) {
		t.Fatal("mean delay should exceed local delay")
	}
}

func TestSliceHashUniform(t *testing.T) {
	const slices = 16
	counts := make([]int, slices)
	const lines = 160000
	for i := 0; i < lines; i++ {
		counts[SliceHash(uint64(i)*64, slices)]++
	}
	for s, c := range counts {
		if c < lines/slices*85/100 || c > lines/slices*115/100 {
			t.Fatalf("slice %d got %d lines, want ~%d", s, c, lines/slices)
		}
	}
}

func TestDistributorSameTableSameSlice(t *testing.T) {
	r := NewRing(DefaultRingConfig())
	d := NewQueryDistributor(r, DispatchByTable)
	s0, _ := d.Target(0, 0x10000, 0x2000)
	for core := 0; core < 16; core++ {
		s, _ := d.Target(core, 0x10000, uint64(core)*4096)
		if s != s0 {
			t.Fatalf("same table dispatched to different slices: %d vs %d", s, s0)
		}
	}
}

func TestDistributorBusyDiversion(t *testing.T) {
	r := NewRing(DefaultRingConfig())
	d := NewQueryDistributor(r, DispatchByTable)
	home, _ := d.Target(0, 0x10000, 0)
	d.SetBusy(home, true)
	diverted, _ := d.Target(0, 0x10000, 0)
	if diverted == home {
		t.Fatal("busy accelerator still received the query")
	}
	// Diversion picks an adjacent slice.
	if r.Hops(home, diverted) != 1 {
		t.Fatalf("diverted %d hops away, want nearest", r.Hops(home, diverted))
	}
	if d.Stats().Diverted != 1 {
		t.Fatalf("diverted stat = %d, want 1", d.Stats().Diverted)
	}
	d.SetBusy(home, false)
	back, _ := d.Target(0, 0x10000, 0)
	if back != home {
		t.Fatal("cleared busy bit did not restore home dispatch")
	}
}

func TestDistributorAllBusyFallsBack(t *testing.T) {
	r := NewRing(DefaultRingConfig())
	d := NewQueryDistributor(r, DispatchByTable)
	for i := 0; i < 16; i++ {
		d.SetBusy(i, true)
	}
	home, _ := d.Target(0, 0x10000, 0)
	if home < 0 || home >= 16 {
		t.Fatalf("all-busy dispatch out of range: %d", home)
	}
}

func TestDistributorRoundRobinCoversAllSlices(t *testing.T) {
	r := NewRing(DefaultRingConfig())
	d := NewQueryDistributor(r, DispatchRoundRobin)
	seen := make(map[int]bool)
	for i := 0; i < 16; i++ {
		s, _ := d.Target(0, 0x10000, 0)
		seen[s] = true
	}
	if len(seen) != 16 {
		t.Fatalf("round robin covered %d slices, want 16", len(seen))
	}
}

func TestDistributorByKeyLineSpreads(t *testing.T) {
	r := NewRing(DefaultRingConfig())
	d := NewQueryDistributor(r, DispatchByKeyLine)
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		s, _ := d.Target(0, 0x10000, uint64(i)*64)
		seen[s] = true
	}
	if len(seen) < 12 {
		t.Fatalf("key-line dispatch used only %d slices", len(seen))
	}
}
