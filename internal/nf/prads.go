package nf

import (
	"encoding/binary"
	"fmt"

	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/packet"
)

// Prads is a passive real-time asset detection system (paper Table 3): it
// tracks observed hosts (assets) keyed by source IP in a hash table, where
// each asset record accumulates packet counts and last-seen service info.
// The record array lives in simulated memory; updates are real stores.
type Prads struct {
	Stats
	engine Engine
	p      *halo.Platform
	table  *cuckoo.Table
	ring   *pktRing

	recordBase mem.Addr
	nextRecord uint32
	capacity   uint64

	assets uint64
}

const pradsRecordBytes = 64 // one cache line per asset record

// NewPrads builds an asset tracker with room for `entries` assets.
func NewPrads(p *halo.Platform, engine Engine, entries uint64) (*Prads, error) {
	tbl, err := cuckoo.Create(p.Space, p.Alloc, cuckoo.Config{Entries: entries, KeyLen: 4})
	if err != nil {
		return nil, fmt.Errorf("nf: creating prads table: %w", err)
	}
	base := p.Alloc.AllocLines(entries)
	return &Prads{engine: engine, p: p, table: tbl, ring: newPktRing(p), recordBase: base, capacity: entries}, nil
}

// Name implements NF.
func (pr *Prads) Name() string { return "prads" }

// Table exposes the asset index table.
func (pr *Prads) Table() *cuckoo.Table { return pr.table }

// Assets reports the number of tracked assets.
func (pr *Prads) Assets() uint64 { return pr.assets }

// AssetPackets returns the accumulated packet count for a host, reading the
// record from simulated memory.
func (pr *Prads) AssetPackets(srcIP uint32) (uint64, bool) {
	// Keys are the wire-order (big-endian) source address bytes, matching
	// what sits in the packet buffer at the key address.
	var key [4]byte
	binary.BigEndian.PutUint32(key[:], srcIP)
	rec, ok := pr.table.Lookup(key[:])
	if !ok {
		return 0, false
	}
	return mem.Read64(pr.p.Space, mem.Addr(rec)), true
}

// Preload registers a set of hosts as known assets.
func (pr *Prads) Preload(hosts []uint32) error {
	var key [4]byte
	for _, h := range hosts {
		binary.BigEndian.PutUint32(key[:], h)
		if _, ok := pr.table.Lookup(key[:]); ok {
			continue
		}
		if err := pr.table.Insert(key[:], uint64(pr.newRecord())); err != nil {
			return err
		}
	}
	return nil
}

func (pr *Prads) newRecord() mem.Addr {
	rec := pr.recordBase + mem.Addr(pr.nextRecord)*pradsRecordBytes
	pr.nextRecord++
	pr.assets++
	return rec
}

// ProcessPacket implements NF: look up the source host's asset record and
// update it; register unknown hosts.
func (pr *Prads) ProcessPacket(th *cpu.Thread, pkt *packet.Packet) Verdict {
	bufAddr := pr.ring.deliver(pkt)
	rxCost(th, bufAddr)
	th.ALU(6)
	var key [4]byte
	binary.BigEndian.PutUint32(key[:], pkt.SrcIP)

	var rec uint64
	var ok bool
	switch pr.engine {
	case EngineHalo:
		rec, ok = pr.p.Unit.LookupBAt(th, pr.table.Base(), srcIPKeyAddr(bufAddr))
	default:
		rec, ok = pr.table.TimedLookup(th, key[:], cuckoo.DefaultLookupOptions())
	}
	if !ok {
		if pr.nextRecord >= uint32(pr.capacity) {
			pr.Stats.record(VerdictAccept)
			return VerdictAccept // table full: stop tracking new assets
		}
		rec = uint64(pr.newRecord())
		th.ALU(6)
		th.Other(6)
		if err := pr.table.TimedInsert(th, key[:], rec); err != nil {
			pr.Stats.record(VerdictAccept)
			return VerdictAccept
		}
	}

	// Update the asset record: packet count, last-seen port/proto.
	recAddr := mem.Addr(rec)
	count := mem.Read64(pr.p.Space, recAddr) + 1
	mem.Write64(pr.p.Space, recAddr, count)
	mem.Write32(pr.p.Space, recAddr+8, uint32(pkt.DstPort)<<16|uint32(pkt.Proto))
	th.Load(recAddr)
	th.ALU(6)
	th.Store(recAddr)
	th.Other(4)
	pr.Stats.record(VerdictAlert)
	return VerdictAlert
}
