package experiments

import (
	"io"

	"halo/internal/cache"
	"halo/internal/cuckoo"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/metrics"
	"halo/internal/sim"
	"halo/internal/stats"
)

// LockOverheadResult reproduces the §3.4 concurrency analysis: the share of
// software lookup time spent in the optimistic-locking protocol, and the
// cost of touching a line held in a remote core's private cache versus the
// LLC.
type LockOverheadResult struct {
	LockSharePct     float64
	LLCHitCycles     float64
	RemoteHitCycles  float64
	RemoteOverLLC    float64
	HaloLockStallPct float64
	Table            *metrics.Table
}

// lockPassRow is the software-locking point's measurement.
type lockPassRow struct{ WithLock, WithoutLock float64 }

// latencyRow is the remote-vs-LLC latency point's measurement.
type latencyRow struct{ LLCHit, RemoteHit float64 }

// LockOverheadSweep decomposes the §3.4 analysis into its three
// independent measurements.
func LockOverheadSweep() Sweep {
	labels := []string{"software-lock", "remote-latency", "halo-lock"}
	return Sweep{
		Points: func(cfg Config) []Point {
			pts := make([]Point, len(labels))
			for i, l := range labels {
				pts[i] = Point{Experiment: "lockoverhead", Index: i, Label: l}
			}
			return pts
		},
		RunPoint: func(cfg Config, p Point) any {
			lookups := pickSize(cfg, 2000, 10000)
			snap := pointSnapshot(cfg)
			var row any
			switch p.Index {
			case 0:
				// Optimistic-lock share of software lookup time, with
				// writers interleaved so the version line actually bounces
				// between cores. Only the locked pass is snapshotted: it is
				// the configuration under study.
				row = lockPassRow{
					WithLock:    runLockPass(lookups, true, snap),
					WithoutLock: runLockPass(lookups, false, nil),
				}
			case 1:
				row = runLatencyProbe(snap)
			default:
				// HALO's hardware lock under the same read/write mix —
				// lock stalls happen in the cache, with no instruction
				// overhead.
				row = runHaloLockPass(lookups, snap)
			}
			recordSnap(cfg, p, snap)
			return row
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			assembleLockOverhead(rows).Table.Render(w)
		},
	}
}

// RunLockOverhead reproduces the §3.4 measurements.
func RunLockOverhead(cfg Config) *LockOverheadResult {
	return assembleLockOverhead(runSerial(cfg, LockOverheadSweep()))
}

// runLatencyProbe measures remote-private-cache access vs LLC access
// (paper: remote is about 2x an LLC hit and can exceed 100 cycles).
func runLatencyProbe(snap *stats.Snapshot) latencyRow {
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	llcAddrs := p.Alloc.AllocLines(64)
	var llcTotal, remoteTotal float64
	for i := 0; i < 64; i++ {
		addr := llcAddrs + mem.Addr(i)*mem.LineSize
		p.Hier.WarmLLC(addr)
		r := p.Hier.CoreAccess(sim.Cycle(i)*10000, 0, addr, false)
		llcTotal += float64(r.Latency())
	}
	remAddrs := p.Alloc.AllocLines(64)
	for i := 0; i < 64; i++ {
		addr := remAddrs + mem.Addr(i)*mem.LineSize
		// Core 1 dirties the line; core 0 then reads it remotely.
		w := p.Hier.CoreAccess(1_000_000+sim.Cycle(i)*10000, 1, addr, true)
		r := p.Hier.CoreAccess(w.Done, 0, addr, false)
		if r.Where != cache.InRemoteCache {
			panic("remote access experiment not hitting a remote cache")
		}
		remoteTotal += float64(r.Latency())
	}
	collectInto(snap, p)
	return latencyRow{LLCHit: llcTotal / 64, RemoteHit: remoteTotal / 64}
}

func assembleLockOverhead(rows []any) *LockOverheadResult {
	pass := rows[0].(lockPassRow)
	lat := rows[1].(latencyRow)
	lockShare := (pass.WithLock - pass.WithoutLock) / pass.WithLock
	if lockShare < 0 {
		lockShare = 0
	}
	res := &LockOverheadResult{
		LockSharePct:     lockShare,
		LLCHitCycles:     lat.LLCHit,
		RemoteHitCycles:  lat.RemoteHit,
		HaloLockStallPct: rows[2].(float64),
	}
	res.RemoteOverLLC = res.RemoteHitCycles / res.LLCHitCycles

	res.Table = metrics.NewTable("§3.4: concurrency overhead of flow classification",
		"metric", "value")
	res.Table.SetCaption("paper: locking ~13.1%% of lookup time; remote-cache access ~2x an LLC hit")
	res.Table.AddRow("software optimistic-lock share", metrics.Percent(res.LockSharePct))
	res.Table.AddRow("LLC hit latency (cycles)", res.LLCHitCycles)
	res.Table.AddRow("remote private-cache latency (cycles)", res.RemoteHitCycles)
	res.Table.AddRow("remote / LLC ratio", res.RemoteOverLLC)
	res.Table.AddRow("halo hardware-lock stall share", metrics.Percent(res.HaloLockStallPct))
	return res
}

// runLockPass measures software cycles/lookup with a writer thread on
// another core updating the table between reader bursts.
func runLockPass(lookups int, lock bool, snap *stats.Snapshot) float64 {
	f := newLookupFixture(1<<14, 0.60)
	opts := cuckoo.LookupOptions{OptimisticLock: lock, Prefetch: false}
	writer := newThreadOn(f.p)
	writer.Core = 1
	writeSeq := f.fill

	var kb, wb [testKeyLen]byte
	for i := 0; i < lookups/2; i++ { // warm
		testKeyInto(uint64(i)%f.fill, kb[:])
		f.table.TimedLookup(f.thread, kb[:], opts)
	}
	start := f.thread.Now
	for i := 0; i < lookups; i++ {
		testKeyInto(uint64(i*13)%f.fill, kb[:])
		f.table.TimedLookup(f.thread, kb[:], opts)
		if i%16 == 0 {
			// A concurrent writer inserts a flow (bursty rule updates).
			writer.WaitUntil(f.thread.Now)
			testKeyInto(writeSeq, wb[:])
			_ = f.table.TimedInsert(writer, wb[:], writeSeq)
			writeSeq++
		}
	}
	collectInto(snap, f.p, f.thread, writer)
	return float64(f.thread.Now-start) / float64(lookups)
}

// runHaloLockPass measures the share of HALO lookup time lost to hardware
// lock stalls under the same write mix.
func runHaloLockPass(lookups int, snap *stats.Snapshot) float64 {
	f := newLookupFixture(1<<14, 0.60)
	writer := newThreadOn(f.p)
	writer.Core = 1
	writeSeq := f.fill

	f.p.Hier.ResetStats()
	start := f.thread.Now
	var wb [testKeyLen]byte
	for i := 0; i < lookups; i++ {
		f.p.Unit.LookupBAt(f.thread, f.table.Base(), f.stageKeyDMA(uint64(i*13)))
		if i%16 == 0 {
			writer.WaitUntil(f.thread.Now)
			testKeyInto(writeSeq, wb[:])
			_ = f.table.TimedInsert(writer, wb[:], writeSeq)
			writeSeq++
		}
	}
	collectInto(snap, f.p, f.thread, writer)
	elapsed := float64(f.thread.Now - start)
	if elapsed == 0 {
		return 0
	}
	return float64(f.p.Hier.Stats().LockStallCycles) / elapsed
}
