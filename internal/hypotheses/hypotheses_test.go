package hypotheses

import (
	"strings"
	"testing"

	"halo/internal/benchjson"
)

// tinyConfig keeps harness tests fast: same procedure, toy sizes, one seed.
func tinyConfig() Config {
	return Config{Seeds: []uint64{42}, Flows: 2_000, Ops: 8_000, Batch: 16, Shards: 4, Repeats: 1}
}

// TestExperimentsRunAndVerify drives every registered experiment end to end
// at toy scale. It asserts measurement sanity (both arms produced positive
// costs, every lookup verified against the installed value) — NOT a
// statistical direction, which a toy run on a busy test machine cannot pin.
func TestExperimentsRunAndVerify(t *testing.T) {
	cfg := tinyConfig()
	for _, e := range Registry() {
		t.Run(e.Name, func(t *testing.T) {
			res, err := RunExperiment(e, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Seeds) != len(cfg.Seeds) {
				t.Fatalf("got %d seed results, want %d", len(res.Seeds), len(cfg.Seeds))
			}
			for _, sr := range res.Seeds {
				if sr.ANsPerOp <= 0 || sr.BNsPerOp <= 0 {
					t.Errorf("seed %d: non-positive cost A=%v B=%v", sr.Seed, sr.ANsPerOp, sr.BNsPerOp)
				}
			}
			if res.Verdict.Class == "" {
				t.Error("verdict not classified")
			}
			var sb strings.Builder
			res.Render(&sb)
			for _, want := range []string{e.Name, "Verdict:", "| seed |"} {
				if !strings.Contains(sb.String(), want) {
					t.Errorf("render missing %q:\n%s", want, sb.String())
				}
			}
		})
	}
}

// TestRegistryNames pins the experiment names the hypotheses/ directory and
// CI reference.
func TestRegistryNames(t *testing.T) {
	want := []string{"shard-grouped-batching", "pinned-reader-equivalence", "shm-vs-unix-transport", "resize-pause-bound"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, e := range reg {
		if e.Name != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.Name, want[i])
		}
		if _, ok := Find(e.Name); !ok {
			t.Errorf("Find(%q) failed", e.Name)
		}
	}
	if _, ok := Find("no-such-experiment"); ok {
		t.Error("Find accepted an unknown name")
	}
}

// TestDocumentShape checks the emitted artifact is a valid, benchdiff-ready
// halo-bench/v1 document with stamped workload identity.
func TestDocumentShape(t *testing.T) {
	cfg := tinyConfig()
	e, _ := Find("shard-grouped-batching")
	res, err := RunExperiment(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	doc := Document(cfg, []Result{res})
	data, err := benchjson.Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := benchjson.DecodeAny(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(back.Benchmarks); got != 2 { // 1 seed × 2 arms
		t.Fatalf("got %d benchmarks, want 2", got)
	}
	if back.Config["tool"] != "hypotheses" || back.Config["flows"] != "2000" {
		t.Errorf("config not stamped: %v", back.Config)
	}
	if len(back.Seeds) != 1 || back.Seeds[0] != 42 {
		t.Errorf("seeds not stamped: %v", back.Seeds)
	}
	for _, b := range back.Benchmarks {
		if !strings.HasPrefix(b.Name, "Hypothesis/shard-grouped-batching/") {
			t.Errorf("benchmark name %q lacks Hypothesis/ prefix", b.Name)
		}
		if b.Metrics["ns/op"] <= 0 || b.Metrics["lookups/sec"] <= 0 {
			t.Errorf("%s: degenerate metrics %v", b.Name, b.Metrics)
		}
	}
	// A doc diffed against itself must be comparable and all-equivalent.
	if _, err := benchjson.CheckComparable(back, back); err != nil {
		t.Errorf("self-comparison refused: %v", err)
	}
}
