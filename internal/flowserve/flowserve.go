// Package flowserve is the concurrent flow-serving runtime: the repository's
// cuckoo flow-table algorithms rebuilt over native Go memory and real
// goroutines instead of simulated memory and modelled cycles. It is the
// first layer of the codebase whose concurrency `go test -race` can
// meaningfully exercise.
//
// The design transposes the paper's hardware mechanisms into software:
//
//   - The table is split into N shards selected by disjoint bits of the
//     primary hash (hashfn.ShardIndex), mirroring HALO's one-accelerator-
//     per-LLC-slice partitioning: independent shards never contend.
//   - Each shard guards its buckets with a seqlock — an atomic sequence
//     counter that is odd while a writer mutates and revalidated by readers
//     after every probe. This is the software analogue of the hardware lock
//     bit + SNAPSHOT_READ (paper §4.2): readers run without locks and a
//     conflicting write is detected, not prevented. Unlike the simulated
//     cuckoo table's bounded optimistic protocol, a reader here never
//     returns a torn probe: after maxOptimistic failed attempts it takes
//     the writer lock and probes exclusively.
//   - Mutations (insert, delete, displacement) take a per-shard mutex, so
//     each shard is single-writer — DPDK's rte_hash makes the same
//     single-writer/multi-reader assumption.
//   - Batch lookups group keys per shard and validate one sequence window
//     per group (see batch.go), the software analogue of issuing LOOKUP_NB
//     for a batch and polling the results with SNAPSHOT_READ.
//
// Layout per shard mirrors rte_hash (and the simulated cuckoo.Table): an
// array of 8-entry buckets holding packed {signature, slot} words, plus a
// key-value array of 8-byte words. Every word readers can observe is an
// atomic.Uint64, which makes the seqlock race-detector-clean and bounds
// tearing at word granularity (the seqlock then rules out cross-word mixes).
package flowserve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"halo/internal/hashfn"
)

// EntriesPerBucket matches the simulated table and rte_hash: eight entries
// per bucket.
const EntriesPerBucket = 8

// maxOptimistic bounds seqlock probe attempts before a reader falls back to
// the writer lock. Retries are counted in flowserve.lookup.retries; the
// fallback in flowserve.lookup.lock_fallbacks.
const maxOptimistic = 8

// maxDisplacements bounds the BFS cuckoo search, as in the simulated table.
const maxDisplacements = 128

// MaxKeyLen is the largest supported fixed key length in bytes.
const MaxKeyLen = 64

// maxKeyWords is MaxKeyLen in 8-byte words; probe scratch is sized to it.
const maxKeyWords = MaxKeyLen / 8

// Common errors.
var (
	ErrTableFull = errors.New("flowserve: shard full (displacement path exhausted)")
	ErrKeyLen    = errors.New("flowserve: key length does not match table")
	ErrKeyExists = errors.New("flowserve: key already present")
)

// Config parametrises table creation.
type Config struct {
	// Shards is the number of independent sub-tables (power of two, 1..4096).
	Shards int
	// Entries is the total key-value capacity, split evenly across shards.
	// Shard assignment is by hash, so a shard can fill slightly before the
	// whole table does; size headroom (~10–20% at high shard counts) keeps
	// ErrTableFull away.
	Entries uint64
	// KeyLen is the fixed key size in bytes (1..MaxKeyLen).
	KeyLen int
}

// Table is a sharded concurrent flow table. Lookups are safe from any number
// of goroutines concurrently with mutations; mutations themselves serialise
// per shard on an internal mutex.
type Table struct {
	shards   []*shard
	keyLen   int
	keyWords int

	// batchPool recycles Batch scratch for Table.LookupMany callers that do
	// not pin their own Batch.
	batchPool sync.Pool
}

// New creates an empty table.
func New(cfg Config) (*Table, error) {
	if cfg.KeyLen <= 0 || cfg.KeyLen > MaxKeyLen {
		return nil, fmt.Errorf("flowserve: key length %d out of range 1..%d", cfg.KeyLen, MaxKeyLen)
	}
	if cfg.Shards <= 0 || cfg.Shards > 4096 || cfg.Shards&(cfg.Shards-1) != 0 {
		return nil, fmt.Errorf("flowserve: shard count %d not a power of two in 1..4096", cfg.Shards)
	}
	if cfg.Entries == 0 {
		return nil, errors.New("flowserve: zero capacity")
	}
	perShard := (cfg.Entries + uint64(cfg.Shards) - 1) / uint64(cfg.Shards)
	if perShard > 1<<32 {
		return nil, fmt.Errorf("flowserve: %d entries per shard exceeds slot index width", perShard)
	}
	t := &Table{
		shards:   make([]*shard, cfg.Shards),
		keyLen:   cfg.KeyLen,
		keyWords: (cfg.KeyLen + 7) / 8,
	}
	for i := range t.shards {
		t.shards[i] = newShard(perShard, t.keyWords)
	}
	t.batchPool = newBatchPool(t)
	return t, nil
}

// KeyLen returns the table's fixed key length.
func (t *Table) KeyLen() int { return t.keyLen }

// Shards returns the number of shards.
func (t *Table) Shards() int { return len(t.shards) }

// Capacity returns the total key-value capacity.
func (t *Table) Capacity() uint64 {
	var c uint64
	for _, sh := range t.shards {
		c += uint64(sh.capacity)
	}
	return c
}

// Size returns the number of live entries (a racy sum under concurrent
// writes, exact when quiescent).
func (t *Table) Size() uint64 {
	var n uint64
	for _, sh := range t.shards {
		n += sh.size.Load()
	}
	return n
}

// route hashes a key and resolves the owning shard and probe coordinates.
func (t *Table) route(key []byte, kw *[maxKeyWords]uint64) (sh *shard, sig uint16, b1, b2 uint64) {
	keyToWords(key, kw)
	h := hashfn.Hash(hashfn.SeedPrimary, key)
	sig = hashfn.Signature(h)
	sh = t.shards[hashfn.ShardIndex(h, uint64(len(t.shards)))]
	b1, b2 = hashfn.BucketPair(h, sh.bucketCount)
	return
}

// Lookup finds a key and returns its value. Safe for unbounded concurrency.
// A mismatched key length is a counted miss, matching the simulated table's
// accounting.
func (t *Table) Lookup(key []byte) (value uint64, ok bool) {
	if len(key) != t.keyLen {
		t.shards[0].c.lookups.Add(1)
		return 0, false
	}
	var kw [maxKeyWords]uint64
	sh, sig, b1, b2 := t.route(key, &kw)
	return sh.lookup(&kw, t.keyWords, sig, b1, b2)
}

// Insert adds a key-value pair. Inserting an existing key returns
// ErrKeyExists (use Update to change a value).
func (t *Table) Insert(key []byte, value uint64) error {
	if len(key) != t.keyLen {
		return ErrKeyLen
	}
	var kw [maxKeyWords]uint64
	sh, sig, b1, b2 := t.route(key, &kw)
	return sh.insert(&kw, t.keyWords, sig, b1, b2, value)
}

// Update changes the value of an existing key, reporting whether it was
// present.
func (t *Table) Update(key []byte, value uint64) bool {
	if len(key) != t.keyLen {
		return false
	}
	var kw [maxKeyWords]uint64
	sh, sig, b1, b2 := t.route(key, &kw)
	return sh.update(&kw, t.keyWords, sig, b1, b2, value)
}

// Delete removes a key, reporting whether it was present.
func (t *Table) Delete(key []byte) bool {
	if len(key) != t.keyLen {
		return false
	}
	var kw [maxKeyWords]uint64
	sh, sig, b1, b2 := t.route(key, &kw)
	return sh.delete(&kw, t.keyWords, sig, b1, b2)
}

// keyToWords packs a key into little-endian 8-byte words, zero-padding the
// tail — the in-memory key representation (word-wise atomic loads are what
// keep the read path race-free).
func keyToWords(key []byte, kw *[maxKeyWords]uint64) {
	w := 0
	for len(key) >= 8 {
		kw[w] = uint64(key[0]) | uint64(key[1])<<8 | uint64(key[2])<<16 | uint64(key[3])<<24 |
			uint64(key[4])<<32 | uint64(key[5])<<40 | uint64(key[6])<<48 | uint64(key[7])<<56
		key = key[8:]
		w++
	}
	if len(key) > 0 {
		var last uint64
		for i, b := range key {
			last |= uint64(b) << (8 * i)
		}
		kw[w] = last
	}
}

// shard is one independent sub-table: an 8-entry-bucket cuckoo table whose
// reader-visible words are all atomics, guarded by a seqlock for readers and
// a mutex for writers.
type shard struct {
	bucketCount uint64
	capacity    uint32
	kvStride    int // keyWords + 1 value word

	// seq is the seqlock generation: odd while a writer is mutating. Readers
	// snapshot it before probing and revalidate after.
	seq atomic.Uint64

	// entries holds bucketCount*EntriesPerBucket packed bucket entries:
	// slot<<16 | signature, zero when empty (signatures are never zero).
	entries []atomic.Uint64

	// kv holds capacity*kvStride words: each slot is keyWords key words
	// followed by one value word.
	kv []atomic.Uint64

	size atomic.Uint64
	c    shardCounters

	mu   sync.Mutex // serialises writers; also the reader fallback path
	free []uint32   // free slots (writer-owned)

	// BFS displacement scratch (writer-owned, guarded by mu).
	bfsNodes   []pathNode
	bfsQueue   []frontierItem
	bfsPath    []pathNode
	bfsVisited map[uint64]bool
}

// shardCounters are per-shard operation counters. Reader-side counters are
// atomics because lookups run concurrently; keeping them per shard spreads
// the cache-line traffic that a single shared counter block would serialise.
type shardCounters struct {
	lookups   atomic.Uint64
	hits      atomic.Uint64
	retries   atomic.Uint64 // seqlock revalidation failures (re-probes)
	fallbacks atomic.Uint64 // optimistic attempts exhausted → locked probe

	inserts       atomic.Uint64
	insertExists  atomic.Uint64
	insertFull    atomic.Uint64
	updates       atomic.Uint64
	deletes       atomic.Uint64
	displacements atomic.Uint64

	batches   atomic.Uint64 // per-shard groups served by LookupMany
	batchKeys atomic.Uint64
}

func newShard(entries uint64, keyWords int) *shard {
	want := entries / EntriesPerBucket
	bc := uint64(2)
	for bc < want {
		bc <<= 1
	}
	sh := &shard{
		bucketCount: bc,
		capacity:    uint32(entries),
		kvStride:    keyWords + 1,
		entries:     make([]atomic.Uint64, bc*EntriesPerBucket),
		kv:          make([]atomic.Uint64, entries*uint64(keyWords+1)),
	}
	sh.free = make([]uint32, 0, entries)
	for i := int64(entries) - 1; i >= 0; i-- {
		sh.free = append(sh.free, uint32(i))
	}
	return sh
}

// packEntry encodes a live bucket entry; sig is never zero, so a zero word
// means empty.
func packEntry(sig uint16, slot uint32) uint64 {
	return uint64(slot)<<16 | uint64(sig)
}

// beginWrite/endWrite bracket every mutation of reader-visible words. The
// caller must hold mu.
func (sh *shard) beginWrite() { sh.seq.Add(1) } // even → odd
func (sh *shard) endWrite()   { sh.seq.Add(1) } // odd → even

// keyEqual compares slot's stored key words against kw. Word loads are
// atomic; consistency across words is the seqlock's job.
func (sh *shard) keyEqual(slot uint32, kw *[maxKeyWords]uint64, nw int) bool {
	base := int(slot) * sh.kvStride
	for i := 0; i < nw; i++ {
		if sh.kv[base+i].Load() != kw[i] {
			return false
		}
	}
	return true
}

// probe scans both candidate buckets for the key. It may run concurrently
// with a writer; callers must validate the sequence window before trusting
// the result (or hold mu).
func (sh *shard) probe(kw *[maxKeyWords]uint64, nw int, sig uint16, b1, b2 uint64) (uint64, bool) {
	for _, b := range [2]uint64{b1, b2} {
		base := b * EntriesPerBucket
		for e := uint64(0); e < EntriesPerBucket; e++ {
			ent := sh.entries[base+e].Load()
			if uint16(ent) != sig {
				continue
			}
			slot := uint32(ent >> 16)
			if sh.keyEqual(slot, kw, nw) {
				return sh.kv[int(slot)*sh.kvStride+nw].Load(), true
			}
		}
	}
	return 0, false
}

// lookup runs the seqlock read protocol: snapshot the sequence, probe,
// revalidate. A probe raced by a writer is discarded and retried; after
// maxOptimistic attempts the reader takes the writer lock, so — unlike the
// simulated table's give-up path — a torn result is never returned.
func (sh *shard) lookup(kw *[maxKeyWords]uint64, nw int, sig uint16, b1, b2 uint64) (uint64, bool) {
	sh.c.lookups.Add(1)
	for attempt := 0; attempt < maxOptimistic; attempt++ {
		s1 := sh.seq.Load()
		if s1&1 != 0 {
			// A writer is mid-mutation; yield rather than spin-read.
			sh.c.retries.Add(1)
			runtime.Gosched()
			continue
		}
		v, ok := sh.probe(kw, nw, sig, b1, b2)
		if sh.seq.Load() == s1 {
			if ok {
				sh.c.hits.Add(1)
			}
			return v, ok
		}
		sh.c.retries.Add(1)
	}
	// Writer storm: one exclusive probe settles it.
	sh.c.fallbacks.Add(1)
	sh.mu.Lock()
	v, ok := sh.probe(kw, nw, sig, b1, b2)
	sh.mu.Unlock()
	if ok {
		sh.c.hits.Add(1)
	}
	return v, ok
}

// locate finds the bucket entry holding the key. Caller must hold mu.
func (sh *shard) locate(kw *[maxKeyWords]uint64, nw int, sig uint16, b1, b2 uint64) (entIdx uint64, slot uint32, found bool) {
	for _, b := range [2]uint64{b1, b2} {
		base := b * EntriesPerBucket
		for e := uint64(0); e < EntriesPerBucket; e++ {
			ent := sh.entries[base+e].Load()
			if uint16(ent) != sig {
				continue
			}
			s := uint32(ent >> 16)
			if sh.keyEqual(s, kw, nw) {
				return base + e, s, true
			}
		}
	}
	return 0, 0, false
}

// writeKV stores a slot's key words and value. The slot is free (no bucket
// entry points to it), so this runs outside the seqlock window; the entry
// store that publishes it orders after these writes.
func (sh *shard) writeKV(slot uint32, kw *[maxKeyWords]uint64, nw int, value uint64) {
	base := int(slot) * sh.kvStride
	for i := 0; i < nw; i++ {
		sh.kv[base+i].Store(kw[i])
	}
	sh.kv[base+nw].Store(value)
}

func (sh *shard) insert(kw *[maxKeyWords]uint64, nw int, sig uint16, b1, b2 uint64, value uint64) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, _, exists := sh.locate(kw, nw, sig, b1, b2); exists {
		sh.c.insertExists.Add(1)
		return ErrKeyExists
	}
	if len(sh.free) == 0 {
		sh.c.insertFull.Add(1)
		return ErrTableFull
	}

	// Direct placement into a free entry of either candidate bucket.
	if entIdx, ok := sh.freeEntry(b1, b2); ok {
		slot := sh.free[len(sh.free)-1]
		sh.free = sh.free[:len(sh.free)-1]
		sh.writeKV(slot, kw, nw, value)
		// Publishing one empty→live entry is atomic on its own, but the
		// slot may be recycled: a reader that captured the old entry before
		// the slot was freed could mix old and new key words into a phantom
		// match. The seqlock window forces such readers to re-probe.
		sh.beginWrite()
		sh.entries[entIdx].Store(packEntry(sig, slot))
		sh.endWrite()
		sh.size.Add(1)
		sh.c.inserts.Add(1)
		return nil
	}

	// Displacement: BFS for a move chain (read-only, outside the write
	// window — the mutex already excludes other writers), then apply the
	// moves and the final placement inside one window.
	path := sh.findCuckooPath(b1, b2)
	if path == nil {
		sh.c.insertFull.Add(1)
		return ErrTableFull
	}
	slot := sh.free[len(sh.free)-1]
	sh.free = sh.free[:len(sh.free)-1]
	sh.writeKV(slot, kw, nw, value)
	sh.beginWrite()
	sh.applyCuckooPath(path)
	entIdx, ok := sh.freeEntry(b1, b2)
	if !ok {
		// The displacement chain freed a slot in b1 or b2 by construction.
		sh.endWrite()
		sh.free = append(sh.free, slot)
		panic("flowserve: displacement path freed no candidate entry")
	}
	sh.entries[entIdx].Store(packEntry(sig, slot))
	sh.endWrite()
	sh.size.Add(1)
	sh.c.inserts.Add(1)
	sh.c.displacements.Add(uint64(len(path)))
	return nil
}

// freeEntry returns the index of an empty entry in b1 or b2.
func (sh *shard) freeEntry(b1, b2 uint64) (uint64, bool) {
	for _, b := range [2]uint64{b1, b2} {
		base := b * EntriesPerBucket
		for e := uint64(0); e < EntriesPerBucket; e++ {
			if sh.entries[base+e].Load() == 0 {
				return base + e, true
			}
		}
	}
	return 0, false
}

func (sh *shard) update(kw *[maxKeyWords]uint64, nw int, sig uint16, b1, b2 uint64, value uint64) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, slot, found := sh.locate(kw, nw, sig, b1, b2)
	if !found {
		return false
	}
	// A single-word value store is atomic on its own: concurrent readers
	// see the old or the new value, both of which were live for this key,
	// so no seqlock window is needed.
	sh.kv[int(slot)*sh.kvStride+nw].Store(value)
	sh.c.updates.Add(1)
	return true
}

func (sh *shard) delete(kw *[maxKeyWords]uint64, nw int, sig uint16, b1, b2 uint64) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	entIdx, slot, found := sh.locate(kw, nw, sig, b1, b2)
	if !found {
		return false
	}
	// Clearing the entry is a single atomic store, but the freed slot can
	// be recycled by a later insert; bump the seqlock so readers that
	// captured this entry re-probe instead of reading recycled key words.
	sh.beginWrite()
	sh.entries[entIdx].Store(0)
	sh.endWrite()
	sh.free = append(sh.free, slot)
	sh.size.Add(^uint64(0))
	sh.c.deletes.Add(1)
	return true
}

// pathNode is one step of a displacement path: the entry at entIdx moves to
// its alternative bucket.
type pathNode struct {
	bucket uint64
	entry  uint64
	parent int
}

// frontierItem is one BFS queue entry in findCuckooPath.
type frontierItem struct {
	bucket uint64
	node   int
}

// findCuckooPath BFS-searches for a chain of moves freeing an entry in b1 or
// b2, mirroring cuckoo.Table.findCuckooPath. Caller must hold mu; the
// returned slice aliases writer-owned scratch.
func (sh *shard) findCuckooPath(b1, b2 uint64) []pathNode {
	nodes := sh.bfsNodes[:0]
	queue := append(sh.bfsQueue[:0], frontierItem{b1, -1}, frontierItem{b2, -1})
	head := 0
	if sh.bfsVisited == nil {
		sh.bfsVisited = make(map[uint64]bool)
	}
	visited := sh.bfsVisited
	clear(visited)
	visited[b1], visited[b2] = true, true
	defer func() { sh.bfsNodes, sh.bfsQueue = nodes[:0], queue[:0] }()

	for head < len(queue) && len(nodes) < maxDisplacements*EntriesPerBucket {
		item := queue[head]
		head++
		base := item.bucket * EntriesPerBucket
		for e := uint64(0); e < EntriesPerBucket; e++ {
			ent := sh.entries[base+e].Load()
			if ent == 0 {
				continue
			}
			alt := hashfn.AltBucket(item.bucket, uint16(ent), sh.bucketCount)
			nodes = append(nodes, pathNode{bucket: item.bucket, entry: base + e, parent: item.node})
			nodeIdx := len(nodes) - 1
			altBase := alt * EntriesPerBucket
			for ae := uint64(0); ae < EntriesPerBucket; ae++ {
				if sh.entries[altBase+ae].Load() == 0 {
					path := sh.bfsPath[:0]
					for i := nodeIdx; i >= 0; i = nodes[i].parent {
						path = append(path, nodes[i])
					}
					for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
						path[l], path[r] = path[r], path[l]
					}
					sh.bfsPath = path
					return path
				}
			}
			if !visited[alt] {
				visited[alt] = true
				queue = append(queue, frontierItem{alt, nodeIdx})
			}
		}
	}
	return nil
}

// applyCuckooPath executes the moves leaf-first so no entry is ever
// unreachable. Caller must hold mu and have opened the seqlock window.
func (sh *shard) applyCuckooPath(path []pathNode) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		ent := sh.entries[n.entry].Load()
		alt := hashfn.AltBucket(n.bucket, uint16(ent), sh.bucketCount)
		altBase := alt * EntriesPerBucket
		for ae := uint64(0); ae < EntriesPerBucket; ae++ {
			if sh.entries[altBase+ae].Load() == 0 {
				sh.entries[altBase+ae].Store(ent)
				sh.entries[n.entry].Store(0)
				break
			}
		}
	}
}
