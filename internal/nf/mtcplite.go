package nf

import (
	"fmt"

	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/packet"
)

// MTCPLite is a user-level TCP stack in the mould of mTCP (paper Table 3):
// a connection hash table maps five-tuples to per-connection control blocks
// (TCB) and socket buffers in simulated memory. Per-packet processing is a
// TCB lookup, protocol state-machine work, and receive-buffer bookkeeping —
// the private-cache-resident TCB working set is what collocation pollutes.
type MTCPLite struct {
	Stats
	p     *halo.Platform
	table *cuckoo.Table

	tcbBase  mem.Addr
	nextTCB  uint32
	capacity uint64

	established uint64
	segments    uint64

	keyBuf [packet.KeyBytes]byte // per-packet key scratch (table copies)
}

// TCP state values stored in the TCB.
const (
	tcpListen uint32 = iota
	tcpSynReceived
	tcpEstablished
)

const tcbBytes = 128 // control block + receive-window metadata: two lines

// NewMTCPLite builds a stack with room for `connections` concurrent flows.
func NewMTCPLite(p *halo.Platform, connections uint64) (*MTCPLite, error) {
	tbl, err := cuckoo.Create(p.Space, p.Alloc, cuckoo.Config{Entries: connections, KeyLen: packet.KeyBytes})
	if err != nil {
		return nil, fmt.Errorf("nf: creating connection table: %w", err)
	}
	base := p.Alloc.Alloc(connections*tcbBytes, mem.LineSize)
	return &MTCPLite{p: p, table: tbl, tcbBase: base, capacity: connections}, nil
}

// Name implements NF.
func (m *MTCPLite) Name() string { return "mtcplite" }

// Table exposes the connection table.
func (m *MTCPLite) Table() *cuckoo.Table { return m.table }

// Established reports connections that have completed the handshake.
func (m *MTCPLite) Established() uint64 { return m.established }

// Segments reports processed data segments.
func (m *MTCPLite) Segments() uint64 { return m.segments }

// ConnState returns a connection's TCP state, for tests.
func (m *MTCPLite) ConnState(f packet.FiveTuple) (uint32, bool) {
	v, ok := m.table.Lookup(f.Packed())
	if !ok {
		return 0, false
	}
	return mem.Read32(m.p.Space, mem.Addr(v)), true
}

// ProcessPacket implements NF: demux to a connection and run the protocol
// state machine. Non-TCP packets are dropped.
func (m *MTCPLite) ProcessPacket(th *cpu.Thread, pkt *packet.Packet) Verdict {
	th.LocalLoad(10)
	th.ALU(16)
	if pkt.Proto != packet.ProtoTCP {
		th.Other(4)
		m.Stats.record(VerdictDrop)
		return VerdictDrop
	}
	key := m.keyBuf[:]
	pkt.Key().Pack(key)
	tcb, ok := m.table.TimedLookup(th, key, cuckoo.DefaultLookupOptions())
	if !ok {
		// New connection: allocate a TCB (SYN handling).
		if uint64(m.nextTCB)*tcbBytes >= m.capacity*tcbBytes {
			m.Stats.record(VerdictDrop)
			return VerdictDrop
		}
		tcb = uint64(m.tcbBase) + uint64(m.nextTCB)*tcbBytes
		m.nextTCB++
		th.ALU(12)
		th.Other(10)
		if err := m.table.TimedInsert(th, key, tcb); err != nil {
			m.Stats.record(VerdictDrop)
			return VerdictDrop
		}
		mem.Write32(m.p.Space, mem.Addr(tcb), tcpSynReceived)
		th.Store(mem.Addr(tcb))
		m.Stats.record(VerdictAccept)
		return VerdictAccept
	}

	// Existing connection: read the TCB, advance the state machine,
	// update sequence bookkeeping and the receive window.
	tcbAddr := mem.Addr(tcb)
	th.Load(tcbAddr)
	state := mem.Read32(m.p.Space, tcbAddr)
	switch state {
	case tcpSynReceived:
		mem.Write32(m.p.Space, tcbAddr, tcpEstablished)
		m.established++
		th.ALU(14)
	case tcpEstablished:
		m.segments++
		// Sequence/ack arithmetic and reassembly checks.
		seq := mem.Read64(m.p.Space, tcbAddr+8) + uint64(pkt.PayloadBytes)
		mem.Write64(m.p.Space, tcbAddr+8, seq)
		th.ALU(30)
		th.Other(12)
		// Receive-buffer line touch.
		th.Load(tcbAddr + mem.LineSize)
		th.Store(tcbAddr + mem.LineSize)
	default:
		mem.Write32(m.p.Space, tcbAddr, tcpSynReceived)
		th.ALU(8)
	}
	th.Store(tcbAddr)
	th.Other(8)
	th.LocalStore(8)
	m.Stats.record(VerdictAccept)
	return VerdictAccept
}
