// Command haloswitch runs the simulated OVS-style virtual switch over a
// generated traffic workload and prints the per-stage breakdown and
// throughput, with either the software or the HALO classification engine.
//
// Usage:
//
//	haloswitch -flows 100000 -rules 10 -packets 20000 -engine halo
package main

import (
	"flag"
	"fmt"
	"os"

	"halo/internal/classify"
	"halo/internal/cpu"
	ihalo "halo/internal/halo"
	"halo/internal/metrics"
	"halo/internal/packet"
	"halo/internal/trafficgen"
	"halo/internal/vswitch"
)

// workloadRules adapts a generated workload to the switch's rule installer.
type workloadRules struct{ w *trafficgen.Workload }

func (wr workloadRules) Install(ts *classify.TupleSpace) error { return wr.w.InstallRules(ts) }

func main() {
	var (
		flows    = flag.Int("flows", 100_000, "number of concurrent flows")
		rules    = flag.Int("rules", 10, "number of wildcard rules (tuples)")
		packets  = flag.Int("packets", 20_000, "packets to forward (after warm-up)")
		engine   = flag.String("engine", "software", "classification engine: software | halo | hybrid")
		openflow = flag.Bool("openflow", false, "enable the OpenFlow slow-path layer (rules install there; megaflows are learned)")
		zipf     = flag.Bool("zipf", false, "zipf flow popularity instead of uniform")
		seed     = flag.Uint64("seed", 1, "workload seed")
		trace    = flag.String("trace", "", "replay a flowgen trace file instead of generating traffic")
	)
	flag.Parse()

	cfg := vswitch.DefaultConfig()
	switch *engine {
	case "software":
	case "halo":
		cfg.Engine = vswitch.EngineHalo
	case "hybrid":
		cfg.Engine = vswitch.EngineHybrid
	default:
		fmt.Fprintf(os.Stderr, "haloswitch: unknown engine %q\n", *engine)
		os.Exit(2)
	}
	cfg.OpenFlow = *openflow

	// Traffic source: a generated workload or a replayed trace.
	var nextPacket func() packet.Packet
	var installRules func(*vswitch.Switch) error
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "haloswitch:", err)
			os.Exit(1)
		}
		tr, err := trafficgen.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "haloswitch:", err)
			os.Exit(1)
		}
		nextPacket = tr.NextPacket
		installRules = func(sw *vswitch.Switch) error {
			target := sw.Mega
			if sw.Open != nil {
				target = sw.Open
			}
			return tr.InstallRules(target)
		}
	} else {
		pop := trafficgen.Uniform
		if *zipf {
			pop = trafficgen.Zipf
		}
		scn := trafficgen.Scenario{Name: "cli", Flows: *flows, Rules: *rules, Popularity: pop}
		w := trafficgen.Generate(scn, *seed)
		nextPacket = func() packet.Packet { pkt, _ := w.NextPacket(); return pkt }
		installRules = func(sw *vswitch.Switch) error {
			return sw.InstallRules([]vswitch.RuleInstaller{workloadRules{w}})
		}
	}

	p := ihalo.NewPlatform(ihalo.DefaultPlatformConfig())
	sw, err := vswitch.New(p, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "haloswitch:", err)
		os.Exit(1)
	}
	if err := installRules(sw); err != nil {
		fmt.Fprintln(os.Stderr, "haloswitch:", err)
		os.Exit(1)
	}
	sw.Warm()
	th := cpu.NewThread(p.Hier, 0)

	for i := 0; i < *packets/2; i++ { // warm-up pass
		pkt := nextPacket()
		sw.ProcessPacket(th, &pkt)
	}
	sw.ResetStats()
	for i := 0; i < *packets; i++ {
		pkt := nextPacket()
		if _, ok := sw.ProcessPacket(th, &pkt); !ok {
			fmt.Fprintln(os.Stderr, "haloswitch: unclassified packet (rule generation bug)")
			os.Exit(1)
		}
	}

	b := sw.Breakdown()
	tb := metrics.NewTable(fmt.Sprintf("virtual switch, %s engine", *engine),
		"stage", "cycles/pkt", "share")
	for s := vswitch.StagePacketIO; s <= vswitch.StageOther; s++ {
		tb.AddRow(s.String(), float64(b[s])/float64(sw.Packets()),
			metrics.Percent(float64(b[s])/float64(b.Total())))
	}
	tb.Render(os.Stdout)

	cpp := sw.CyclesPerPacket()
	hits, misses := sw.MegaStats()
	fmt.Printf("packets:             %d\n", sw.Packets())
	fmt.Printf("cycles/packet:       %.1f\n", cpp)
	fmt.Printf("throughput:          %.2f Mpps @ 2.1 GHz (single core)\n", metrics.Mpps(cpp, 2.1))
	fmt.Printf("classification:      %s of packet cost\n", metrics.Percent(b.ClassificationShare()))
	fmt.Printf("emc hit rate:        %s\n", metrics.Percent(sw.EMC.HitRate()))
	fmt.Printf("megaflow hits/miss:  %d/%d\n", hits, misses)
	if cfg.OpenFlow {
		fmt.Printf("openflow hits:       %d (megaflows learned: %d)\n", sw.OpenFlowHits(), sw.Mega.RuleCount())
	}
	if mode, ok := sw.HybridMode(); ok {
		fmt.Printf("hybrid mode:         %v\n", mode)
	}
	if cfg.Engine == vswitch.EngineHalo {
		s := p.Unit.Stats()
		fmt.Printf("halo queries:        %d (hit rate %s, meta-cache hits %d)\n",
			s.Queries, metrics.Percent(float64(s.Hits)/float64(s.Queries)), s.MetaHits)
	}
}
