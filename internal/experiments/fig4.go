package experiments

import (
	"fmt"
	"io"

	"halo/internal/cache"
	"halo/internal/cuckoo"
	"halo/internal/metrics"
	"halo/internal/stats"
)

// Fig4Row is one (table kind, flow count) cache-behaviour measurement.
type Fig4Row struct {
	Kind        string
	Flows       uint64
	L2MPKL      float64
	LLCMPKL     float64
	L2StallPct  float64
	LLCStallPct float64
	Utilisation float64
}

// Fig4Result reproduces Fig. 4: cuckoo hash vs single-function hash (SFH)
// cache behaviour as the flow count grows.
type Fig4Result struct {
	Rows  []Fig4Row
	Table *metrics.Table
}

// fig4Cell is one (table kind, flow count) coordinate of the sweep.
type fig4Cell struct {
	name  string
	sfh   bool
	flows uint64
}

func fig4Cells(cfg Config) []fig4Cell {
	// 500K sits in the window where the SFH footprint (5x over-allocated)
	// has outgrown the 32 MB LLC while the compact cuckoo table still fits
	// — the sharpest contrast of the paper's figure.
	flowCounts := []uint64{1_000, 10_000, 100_000, 500_000, 1_000_000, 4_000_000}
	if cfg.Quick {
		flowCounts = []uint64{1_000, 10_000, 100_000, 500_000}
	}
	var cells []fig4Cell
	for _, kind := range []struct {
		name string
		sfh  bool
	}{{"cuckoo", false}, {"sfh", true}} {
		for _, flows := range flowCounts {
			cells = append(cells, fig4Cell{kind.name, kind.sfh, flows})
		}
	}
	return cells
}

// Fig4Sweep decomposes Fig. 4 into one point per (table kind, flow count).
func Fig4Sweep() Sweep {
	return Sweep{
		Points: func(cfg Config) []Point {
			cells := fig4Cells(cfg)
			pts := make([]Point, len(cells))
			for i, c := range cells {
				pts[i] = Point{Experiment: "fig4", Index: i,
					Label: fmt.Sprintf("%s/%d-flows", c.name, c.flows)}
			}
			return pts
		},
		RunPoint: func(cfg Config, p Point) any {
			c := fig4Cells(cfg)[p.Index]
			snap := pointSnapshot(cfg)
			row := runFig4Point(c.name, c.sfh, c.flows, pickSize(cfg, 4000, 20000), snap)
			recordSnap(cfg, p, snap)
			return row
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			assembleFig4(rows).Table.Render(w)
		},
	}
}

// RunFig4 reproduces Fig. 4.
func RunFig4(cfg Config) *Fig4Result {
	return assembleFig4(runSerial(cfg, Fig4Sweep()))
}

func assembleFig4(rows []any) *Fig4Result {
	res := &Fig4Result{
		Table: metrics.NewTable("Figure 4: hash-table cache behaviour (cuckoo vs SFH)",
			"table", "flows", "L2 MPKL", "LLC MPKL", "L2-stall", "LLC-stall", "util"),
	}
	res.Table.SetCaption("paper: cuckoo stays LLC-resident to 4M flows; SFH misses LLC from ~100K")
	for _, r := range rows {
		row := r.(Fig4Row)
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.Kind, row.Flows, row.L2MPKL, row.LLCMPKL,
			metrics.Percent(row.L2StallPct), metrics.Percent(row.LLCStallPct),
			metrics.Percent(row.Utilisation))
	}
	return res
}

func runFig4Point(name string, sfh bool, flows uint64, lookups int, snap *stats.Snapshot) Fig4Row {
	// Size the table the way operators do: next power of two above the
	// flow count, then fill to the flow count.
	entries := uint64(8)
	for entries < flows {
		entries <<= 1
	}
	p := newPlatformForTable(entries, sfh)
	table, err := cuckoo.Create(p.Space, p.Alloc, cuckoo.Config{Entries: entries, KeyLen: 16, SFH: sfh})
	if err != nil {
		panic(err)
	}
	inserted := uint64(0)
	var kb [testKeyLen]byte
	for i := uint64(0); i < flows; i++ {
		testKeyInto(i, kb[:])
		if err := table.Insert(kb[:], i); err != nil {
			break
		}
		inserted++
	}
	f := &lookupFixture{p: p, table: table, fill: inserted}
	f.thread = newThreadOn(p)
	p.WarmTable(table)

	// One warm pass so steady-state residency is established, then the
	// measured pass over a *different* uniformly spread key set.
	// Fibonacci-hash strides spread the looked-up keys uniformly across
	// the whole table, as real flow traffic does.
	for i := 0; i < lookups; i++ {
		testKeyInto(uint64(i)*2654435761%inserted, kb[:])
		table.TimedLookup(f.thread, kb[:], cuckoo.DefaultLookupOptions())
	}
	f.thread.ResetCounts()
	p.Hier.ResetStats()
	for i := 0; i < lookups; i++ {
		testKeyInto(uint64(i)*40503001%inserted, kb[:])
		table.TimedLookup(f.thread, kb[:], cuckoo.DefaultLookupOptions())
	}

	// The table here bypasses Platform.NewTable (it sizes its own arena), so
	// its counters are collected explicitly alongside the platform's.
	collectInto(snap, p, f.thread, table.Stats())

	// MPKL counts cache misses per thousand retired loads from the cache
	// counters, as VTune does: prefetch-triggered misses included.
	hs := p.Hier.Stats()
	loads := float64(f.thread.Counts.Loads)
	util := float64(table.Size()) / (float64(table.BucketCount()) * cuckoo.EntriesPerBucket)
	return Fig4Row{
		Kind:        name,
		Flows:       flows,
		L2MPKL:      1000 * float64(hs.L2Misses) / loads,
		LLCMPKL:     1000 * float64(hs.LLCMisses) / loads,
		L2StallPct:  f.thread.StallRatio(cache.InLLC),
		LLCStallPct: f.thread.StallRatio(cache.InMemory),
		Utilisation: util,
	}
}
