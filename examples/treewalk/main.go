// Tree walk: the paper's §4.8 generality claim as a runnable program. A
// HiCuts/EffiCuts-style decision-tree classifier is laid out in simulated
// memory in the accelerator's node format; the same HALO datapath that walks
// hash buckets walks tree nodes, fetch-and-compare per level.
package main

import (
	"fmt"

	"halo"
)

func main() {
	sys := halo.New()

	// An access-control rule set: source-prefix × destination-port ranges.
	var rules []halo.TreeRule
	for i := 0; i < 800; i++ {
		r := halo.AnyTreeRule(uint16(i%500+1), uint64(i+1))
		base := uint64(uint32(i) * 2654435761)
		r.Lo[0] = base &^ 0xFF // a /24 on the source address
		r.Hi[0] = r.Lo[0] | 0xFF
		r.Lo[3] = uint64(i * 53 % 60000)
		r.Hi[3] = r.Lo[3] + 200
		rules = append(rules, r)
	}
	rules = append(rules, halo.AnyTreeRule(0, 0xFFFF)) // default rule

	tree, err := sys.BuildTree(rules)
	if err != nil {
		panic(err)
	}
	fmt.Printf("decision tree: %d rules -> %d nodes, depth %d (%d KB in simulated memory)\n",
		len(rules), tree.Nodes(), tree.MaxDepth(), tree.Nodes()*64/1024)

	th := sys.Thread(0)
	keyBuf := sys.AllocLines(1)
	lcg := uint64(12345)
	next := func() halo.FiveTuple {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return halo.FiveTuple{
			SrcIP:   uint32(lcg >> 33),
			DstIP:   uint32(lcg >> 13),
			SrcPort: uint16(lcg >> 7),
			DstPort: uint16(lcg >> 41),
			Proto:   6,
		}
	}

	const walks = 3000
	// Software walk.
	start := th.Now
	swHits := 0
	lcg = 12345
	for i := 0; i < walks; i++ {
		if _, ok := tree.ClassifyTimed(th, next()); ok {
			swHits++
		}
	}
	software := float64(th.Now-start) / walks

	// Accelerator walk over the same tuples: identical answers required.
	start = th.Now
	hwHits := 0
	lcg = 12345
	for i := 0; i < walks; i++ {
		tp := next()
		sys.DMAWrite(keyBuf, halo.TreeKey(tp))
		want, _ := tree.Classify(tp)
		got, ok := tree.ClassifyHalo(th, sys.Unit(), keyBuf)
		if ok {
			hwHits++
			if got != want {
				panic("accelerator walk diverged from the software walk")
			}
		}
	}
	accelerated := float64(th.Now-start) / walks

	if swHits != hwHits {
		panic("hit counts diverged")
	}
	fmt.Printf("classified %d packets (%d matched a rule):\n", walks, swHits)
	fmt.Printf("  software walk:     %6.1f cycles/packet\n", software)
	fmt.Printf("  HALO tree walk:    %6.1f cycles/packet (%.2fx)\n", accelerated, software/accelerated)
	fmt.Println("note: near-cache walks win once the node array is LLC-resident rather than")
	fmt.Println("private-cache-hot; see internal/dtree tests for the controlled comparison.")
}
