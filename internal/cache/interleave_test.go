package cache

import (
	"fmt"
	"testing"

	"halo/internal/mem"
	"halo/internal/noc"
	"halo/internal/sim"
)

// interleaveHierarchy is deliberately tiny: with per-step invariant
// checking, a small geometry keeps the test fast while the cramped sets
// maximise evictions, back-invalidations and ownership churn.
func interleaveHierarchy(cores int) *Hierarchy {
	cfg := DefaultConfig()
	cfg.Cores = cores
	cfg.Slices = cores
	cfg.L1SizeBytes = 4 * mem.LineSize
	cfg.L1Ways = 2
	cfg.L2SizeBytes = 16 * mem.LineSize
	cfg.L2Ways = 4
	cfg.LLCSliceBytes = 16 * mem.LineSize
	cfg.LLCWays = 4
	ring := noc.NewRing(noc.RingConfig{Stops: cores, HopCycles: 2, InjectDelay: 3})
	return New(cfg, ring, mem.NewDRAM(mem.DefaultDRAMConfig()))
}

// coreCopy returns the state of core's private copy of lineAddr, checking
// L1 and L2 (nil means no valid copy anywhere private).
func coreCopy(h *Hierarchy, core int, lineAddr mem.Addr) *line {
	if l := h.l1[core].peek(lineAddr); l != nil {
		return l
	}
	return h.l2[core].peek(lineAddr)
}

// checkWriteEffects asserts the MESI-lite post-write contract: the writer
// holds the only copy, in Modified state, and every other core's copy —
// Shared included — has been invalidated.
func checkWriteEffects(t *testing.T, h *Hierarchy, writer int, lineAddr mem.Addr) {
	t.Helper()
	wl := coreCopy(h, writer, lineAddr)
	if wl == nil {
		t.Fatalf("after write: core %d does not hold %#x", writer, lineAddr)
	}
	if wl.state != Modified {
		t.Fatalf("after write: core %d holds %#x in %v, want Modified", writer, lineAddr, wl.state)
	}
	for core := 0; core < h.cfg.Cores; core++ {
		if core == writer {
			continue
		}
		if l := coreCopy(h, core, lineAddr); l != nil {
			t.Fatalf("after write by core %d: core %d still holds %#x in %v (stale copy)",
				writer, core, lineAddr, l.state)
		}
	}
}

// TestInterleavedAccessInvariants drives pseudo-random multi-core
// interleavings and validates the full invariant set after every single
// step (the broader random-traffic test only samples every 500 steps).
// Writes additionally assert the single-owner / no-stale-sharers contract
// at the exact step boundary.
func TestInterleavedAccessInvariants(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xbeef} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			const cores = 4
			h := interleaveHierarchy(cores)
			rng := sim.NewRand(seed)
			now := sim.Cycle(0)
			// 24 lines across 4-line L1s / 16-line L2s: every core keeps
			// evicting and re-fetching what its neighbours own.
			const poolLines = 24
			for step := 0; step < 2500; step++ {
				addr := mem.Addr(0x8000 + rng.Intn(poolLines)*mem.LineSize)
				core := rng.Intn(cores)
				switch rng.Intn(10) {
				case 0, 1, 2: // write
					h.CoreAccess(now, core, addr, true)
					checkWriteEffects(t, h, core, addr)
				case 3: // accelerator read through the LLC
					h.AccelAccess(now, rng.Intn(cores), addr, false)
				case 4: // accelerator write: invalidates every core copy
					h.AccelAccess(now, rng.Intn(cores), addr, true)
					for c := 0; c < cores; c++ {
						if l := coreCopy(h, c, addr); l != nil {
							t.Fatalf("step %d: core %d holds %#x in %v after accel write",
								step, c, addr, l.state)
						}
					}
				case 5: // snapshot read must not perturb ownership
					h.SnapshotRead(now, core, addr)
				default: // read
					h.CoreAccess(now, core, addr, false)
				}
				checkInvariants(t, h)
				now += sim.Cycle(rng.Intn(40))
			}
		})
	}
}

// TestWriteReadHandoffChain walks ownership around the cores in a fixed
// interleaving: each core writes, every other core then reads, and the
// states must settle to one-owner-then-all-shared at each hop.
func TestWriteReadHandoffChain(t *testing.T) {
	t.Parallel()
	const cores = 4
	h := interleaveHierarchy(cores)
	now := sim.Cycle(0)
	addr := mem.Addr(0xc000)
	for round := 0; round < 8; round++ {
		writer := round % cores
		res := h.CoreAccess(now, writer, addr, true)
		checkWriteEffects(t, h, writer, addr)
		now = res.Done
		for off := 1; off < cores; off++ {
			reader := (writer + off) % cores
			res = h.CoreAccess(now, reader, addr, false)
			now = res.Done
			l := coreCopy(h, reader, addr)
			if l == nil {
				t.Fatalf("round %d: reader %d missing %#x after read", round, reader, addr)
			}
			if l.state == Modified || l.state == Exclusive {
				// A second sharer means nobody may stay exclusive.
				if ol := coreCopy(h, writer, addr); ol != nil {
					t.Fatalf("round %d: reader %d in %v while core %d still holds a copy",
						round, reader, l.state, writer)
				}
			}
			checkInvariants(t, h)
		}
	}
}
