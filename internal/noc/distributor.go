package noc

import (
	"halo/internal/hashfn"
	"halo/internal/sim"
	"halo/internal/stats"
)

// SliceHash maps a cache-line address to its home LLC slice. Real CPUs use an
// undocumented XOR-tree over the physical address for exactly this purpose;
// a hash of the line address reproduces the uniform distribution.
func SliceHash(lineAddr uint64, slices int) int {
	return int(hashfn.Hash64(hashfn.SeedPrimary, lineAddr) % uint64(slices))
}

// QueryDistributor is the HALO component in the interconnect that dispatches
// lookup queries to per-slice accelerators (paper §4.3). Queries hash on the
// *table address*, so consecutive lookups against the same table land on the
// same accelerator and hit its metadata cache, while different tables spread
// across accelerators. An accelerator saturated with on-the-fly queries sets
// a busy bit; the distributor then diverts new queries to the nearest
// non-busy accelerator.
type QueryDistributor struct {
	ring   *Ring
	busy   []bool
	stats  DistributorStats
	policy DispatchPolicy
}

// DispatchPolicy selects how queries map to accelerators.
type DispatchPolicy int

const (
	// DispatchByTable is the paper's policy: hash the table address.
	DispatchByTable DispatchPolicy = iota
	// DispatchByKeyLine hashes the key's cache line instead (ablation).
	DispatchByKeyLine
	// DispatchRoundRobin ignores addresses entirely (ablation).
	DispatchRoundRobin
)

// DistributorStats counts dispatch outcomes.
type DistributorStats struct {
	Dispatched uint64
	Diverted   uint64 // sent somewhere other than the hashed slice (busy)
}

// NewQueryDistributor builds a distributor over the ring's slices.
func NewQueryDistributor(ring *Ring, policy DispatchPolicy) *QueryDistributor {
	return &QueryDistributor{
		ring:   ring,
		busy:   make([]bool, ring.Stops()),
		policy: policy,
	}
}

// SetBusy sets or clears an accelerator's busy bit.
func (d *QueryDistributor) SetBusy(slice int, busy bool) { d.busy[slice] = busy }

// Busy reports an accelerator's busy bit.
func (d *QueryDistributor) Busy(slice int) bool { return d.busy[slice] }

// Stats returns a copy of the dispatch statistics.
func (d *QueryDistributor) Stats() DistributorStats { return d.stats }

// CollectInto adds the distributor's counters to a snapshot under the
// noc.dispatch.* names.
func (d *QueryDistributor) CollectInto(s *stats.Snapshot) {
	s.Add("noc.dispatch.dispatched", d.stats.Dispatched)
	s.Add("noc.dispatch.diverted", d.stats.Diverted)
}

// Target returns the accelerator slice for a query and the extra latency to
// reach it from the issuing core's ring stop.
func (d *QueryDistributor) Target(core int, tableAddr, keyAddr uint64) (slice int, delay sim.Cycle) {
	n := d.ring.Stops()
	switch d.policy {
	case DispatchByKeyLine:
		slice = SliceHash(keyAddr/64*64, n)
	case DispatchRoundRobin:
		slice = int(d.stats.Dispatched % uint64(n))
	default:
		slice = SliceHash(tableAddr, n)
	}
	d.stats.Dispatched++
	if d.busy[slice] {
		// Divert to the nearest non-busy accelerator, scanning outward.
		for dist := 1; dist < n; dist++ {
			right := (slice + dist) % n
			if !d.busy[right] {
				slice = right
				d.stats.Diverted++
				break
			}
			left := (slice - dist + n) % n
			if !d.busy[left] {
				slice = left
				d.stats.Diverted++
				break
			}
		}
		// All busy: fall through to the hashed slice and queue there.
	}
	return slice, d.ring.Delay(core, slice)
}
