package halo_test

import (
	"testing"

	"halo"
)

// TestFacadeServeTable drives the serving layer purely through the unified
// Reader/Writer interfaces the facade returns — the same code shape a caller
// would use against a remote flowwire client.
func TestFacadeServeTable(t *testing.T) {
	r, w, err := halo.NewServeTable(halo.ServeConfig{Shards: 2, Entries: 1 << 10, KeyLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	key := func(i byte) []byte { return []byte{i, 1, 2, 3, 4, 5, 6, 7} }
	for i := byte(0); i < 32; i++ {
		if err := w.Insert(key(i), uint64(i)+100); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if v, ok := r.Lookup(key(7)); !ok || v != 107 {
		t.Fatalf("Lookup = (%d, %v), want (107, true)", v, ok)
	}
	keys := [][]byte{key(1), key(31), key(200)}
	results := make([]halo.ServeResult, len(keys))
	if hits := r.LookupMany(keys, results); hits != 2 {
		t.Fatalf("LookupMany hits = %d, want 2", hits)
	}
	if !results[0].OK || results[0].Value != 101 || !results[1].OK || results[1].Value != 131 || results[2].OK {
		t.Fatalf("LookupMany results = %+v", results)
	}
	if !w.Update(key(1), 999) {
		t.Fatal("Update missed")
	}
	if v, _ := r.Lookup(key(1)); v != 999 {
		t.Fatalf("after Update: %d", v)
	}
	if !w.Delete(key(1)) {
		t.Fatal("Delete missed")
	}
	if _, ok := r.Lookup(key(1)); ok {
		t.Fatal("deleted key still hits")
	}
}
