// Package dtree implements a decision-tree packet classifier in the style
// of the HiCuts/EffiCuts family the paper cites, as the §4.8 generality
// demonstration: the same HALO accelerator datapath that walks hash buckets
// also walks tree nodes ("HALO accelerator can be used to conduct the
// comparison with the nodes in the tree").
//
// Rules are ranges over the five-tuple fields. The builder splits the key
// space recursively until every region has a constant winning rule, then
// lays the nodes out in simulated memory in the accelerator's node format
// (halo.WriteInternalNode / halo.WriteLeafNode), so the software walk and
// the accelerator walk traverse the same bytes.
package dtree

import (
	"errors"
	"fmt"
	"sort"

	"halo/internal/cpu"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/packet"
)

// NumFields is the number of classifier dimensions.
const NumFields = 5

// Field geometry over the wire-order key (big-endian fields, 13 bytes).
var fieldOff = [NumFields]uint8{0, 4, 8, 10, 12}
var fieldWidth = [NumFields]uint16{4, 4, 2, 2, 1}
var fieldMax = [NumFields]uint64{1<<32 - 1, 1<<32 - 1, 1<<16 - 1, 1<<16 - 1, 1<<8 - 1}

// KeyBytes is the wire-order key length.
const KeyBytes = 13

// Key encodes a five-tuple in the tree's wire-order key format.
func Key(t packet.FiveTuple) []byte {
	k := make([]byte, KeyBytes)
	k[0], k[1], k[2], k[3] = byte(t.SrcIP>>24), byte(t.SrcIP>>16), byte(t.SrcIP>>8), byte(t.SrcIP)
	k[4], k[5], k[6], k[7] = byte(t.DstIP>>24), byte(t.DstIP>>16), byte(t.DstIP>>8), byte(t.DstIP)
	k[8], k[9] = byte(t.SrcPort>>8), byte(t.SrcPort)
	k[10], k[11] = byte(t.DstPort>>8), byte(t.DstPort)
	k[12] = t.Proto
	return k
}

// Rule is one range rule: a packet matches when every field falls in
// [Lo[f], Hi[f]]. Higher Priority wins among matching rules.
type Rule struct {
	Lo, Hi   [NumFields]uint64
	Priority uint16
	Value    uint64
}

// MatchesTuple reports whether a tuple hits the rule.
func (r Rule) MatchesTuple(t packet.FiveTuple) bool {
	v := [NumFields]uint64{uint64(t.SrcIP), uint64(t.DstIP), uint64(t.SrcPort), uint64(t.DstPort), uint64(t.Proto)}
	for f := 0; f < NumFields; f++ {
		if v[f] < r.Lo[f] || v[f] > r.Hi[f] {
			return false
		}
	}
	return true
}

// AnyRule returns a rule matching everything.
func AnyRule(priority uint16, value uint64) Rule {
	r := Rule{Priority: priority, Value: value}
	r.Hi = fieldMax
	return r
}

// Tree is a built classifier resident in simulated memory.
type Tree struct {
	space    mem.Space
	root     mem.Addr
	keyLen   int
	nodes    int
	maxDepth int
	rules    []Rule
}

// Build errors.
var (
	ErrNoRules     = errors.New("dtree: empty rule set")
	ErrUnsplittble = errors.New("dtree: rule set cannot be separated (identical overlapping rules?)")
	ErrTooDeep     = errors.New("dtree: construction exceeded the depth bound")
)

// buildDepthBound guards pathological rule sets.
const buildDepthBound = 48

type region struct {
	lo, hi [NumFields]uint64
}

func fullRegion() region {
	var r region
	r.hi = fieldMax
	return r
}

func (rg region) intersects(r Rule) bool {
	for f := 0; f < NumFields; f++ {
		if r.Hi[f] < rg.lo[f] || r.Lo[f] > rg.hi[f] {
			return false
		}
	}
	return true
}

func (rg region) containedBy(r Rule) bool {
	for f := 0; f < NumFields; f++ {
		if rg.lo[f] < r.Lo[f] || rg.hi[f] > r.Hi[f] {
			return false
		}
	}
	return true
}

// Build constructs the tree over the rules and lays it out via the
// allocator. The node count is bounded by the splitting process; pass rule
// sets with bounded overlap (classifier rule sets in practice).
func Build(space mem.Space, alloc *mem.Allocator, rules []Rule) (*Tree, error) {
	if len(rules) == 0 {
		return nil, ErrNoRules
	}
	t := &Tree{space: space, keyLen: KeyBytes, rules: append([]Rule(nil), rules...)}
	idx := make([]int, len(rules))
	for i := range idx {
		idx[i] = i
	}
	root, err := t.build(alloc, fullRegion(), idx, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

func (t *Tree) build(alloc *mem.Allocator, rg region, idx []int, depth int) (mem.Addr, error) {
	if depth > buildDepthBound {
		return 0, ErrTooDeep
	}
	if depth > t.maxDepth {
		t.maxDepth = depth
	}
	covering := idx[:0:0]
	for _, i := range idx {
		if rg.intersects(t.rules[i]) {
			covering = append(covering, i)
		}
	}
	if len(covering) == 0 {
		addr := alloc.AllocLines(1)
		halo.WriteLeafNode(t.space, addr, 0, false)
		t.nodes++
		return addr, nil
	}
	// A region is homogeneous when some rule covers it entirely and
	// outranks every other rule touching it.
	best := -1
	for _, i := range covering {
		if rg.containedBy(t.rules[i]) {
			if best < 0 || t.rules[i].Priority > t.rules[best].Priority {
				best = i
			}
		}
	}
	if best >= 0 {
		homogeneous := true
		for _, i := range covering {
			if i != best && t.rules[i].Priority > t.rules[best].Priority {
				homogeneous = false
				break
			}
		}
		if homogeneous {
			addr := alloc.AllocLines(1)
			halo.WriteLeafNode(t.space, addr, t.rules[best].Value, true)
			t.nodes++
			return addr, nil
		}
	}

	field, split, ok := t.chooseSplit(rg, covering)
	if !ok {
		return 0, fmt.Errorf("%w (region %v, %d rules)", ErrUnsplittble, rg.lo, len(covering))
	}
	left := rg
	left.hi[field] = split - 1
	right := rg
	right.lo[field] = split

	addr := alloc.AllocLines(1)
	t.nodes++
	leftAddr, err := t.build(alloc, left, covering, depth+1)
	if err != nil {
		return 0, err
	}
	rightAddr, err := t.build(alloc, right, covering, depth+1)
	if err != nil {
		return 0, err
	}
	halo.WriteInternalNode(t.space, addr, fieldOff[field], fieldWidth[field],
		uint64(split), leftAddr, rightAddr)
	return addr, nil
}

// chooseSplit picks the (field, split) among rule boundaries that best
// balances the children, preferring splits that actually separate rules.
func (t *Tree) chooseSplit(rg region, covering []int) (field int, split uint64, ok bool) {
	bestScore := -1
	for f := 0; f < NumFields; f++ {
		var cands []uint64
		for _, i := range covering {
			r := t.rules[i]
			if r.Lo[f] > rg.lo[f] && r.Lo[f] <= rg.hi[f] {
				cands = append(cands, r.Lo[f])
			}
			if r.Hi[f] >= rg.lo[f] && r.Hi[f] < rg.hi[f] {
				cands = append(cands, r.Hi[f]+1)
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })
		prev := uint64(0)
		first := true
		for _, c := range cands {
			if !first && c == prev {
				continue
			}
			first, prev = false, c
			left, right := rg, rg
			left.hi[f] = c - 1
			right.lo[f] = c
			nl, nr := 0, 0
			for _, i := range covering {
				if left.intersects(t.rules[i]) {
					nl++
				}
				if right.intersects(t.rules[i]) {
					nr++
				}
			}
			if nl == len(covering) && nr == len(covering) {
				continue // separates nothing
			}
			score := nl
			if nr > score {
				score = nr
			}
			if bestScore < 0 || score < bestScore {
				bestScore = score
				field, split, ok = f, c, true
			}
		}
	}
	return field, split, ok
}

// Root returns the root node's address — the operand a HALO walk query
// dispatches on.
func (t *Tree) Root() mem.Addr { return t.root }

// Nodes returns the node count.
func (t *Tree) Nodes() int { return t.nodes }

// MaxDepth returns the deepest path.
func (t *Tree) MaxDepth() int { return t.maxDepth }

// Classify walks the tree functionally.
func (t *Tree) Classify(tp packet.FiveTuple) (uint64, bool) {
	key := Key(tp)
	node := t.root
	for depth := 0; depth <= buildDepthBound+1; depth++ {
		kind, field, width, split, left, right := t.readNode(node)
		if kind == halo.WalkLeaf {
			return left, right != 0
		}
		v := fieldVal(key, int(field), int(width))
		if v < split {
			node = mem.Addr(left)
		} else {
			node = mem.Addr(right)
		}
	}
	panic("dtree: cycle in tree")
}

// ClassifyTimed walks the tree in software, charging the thread one node
// load plus compare work per level.
func (t *Tree) ClassifyTimed(th *cpu.Thread, tp packet.FiveTuple) (uint64, bool) {
	th.Other(8)
	th.LocalStore(4)
	key := Key(tp)
	th.LocalLoad(2)
	th.ALU(6)
	node := t.root
	for depth := 0; depth <= buildDepthBound+1; depth++ {
		th.Load(node)
		th.LocalLoad(3)
		th.ALU(5)
		th.Other(2)
		kind, field, width, split, left, right := t.readNode(node)
		if kind == halo.WalkLeaf {
			th.Other(4)
			th.LocalLoad(3)
			return left, right != 0
		}
		v := fieldVal(key, int(field), int(width))
		if v < split {
			node = mem.Addr(left)
		} else {
			node = mem.Addr(right)
		}
	}
	panic("dtree: cycle in tree")
}

// ClassifyHalo walks the tree on a HALO accelerator. The key must already
// reside in simulated memory at keyAddr (e.g. written into a packet-buffer
// line with Key()).
func (t *Tree) ClassifyHalo(th *cpu.Thread, unit *halo.Unit, keyAddr mem.Addr) (uint64, bool) {
	r := unit.WalkB(th, t.root, keyAddr, t.keyLen)
	return r.Value, r.Found && !r.Fault
}

func (t *Tree) readNode(addr mem.Addr) (kind, field uint8, width uint16, split, left, right uint64) {
	var hdr [2]byte
	t.space.ReadAt(addr+4, hdr[:])
	kind, field = hdr[0], hdr[1]
	width = mem.Read16(t.space, addr+6)
	split = mem.Read64(t.space, addr+8)
	left = mem.Read64(t.space, addr+16)
	right = mem.Read64(t.space, addr+24)
	return
}

func fieldVal(key []byte, off, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v <<= 8
		if off+i < len(key) {
			v |= uint64(key[off+i])
		}
	}
	return v
}
