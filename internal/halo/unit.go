package halo

import (
	"fmt"

	"halo/internal/cache"
	"halo/internal/cpu"
	"halo/internal/mem"
	"halo/internal/noc"
	"halo/internal/sim"
)

// Result-word encoding for non-blocking lookups. The accelerator writes one
// 64-bit word per query into the result line; software polls with
// SNAPSHOT_READ until every slot is non-zero (paper §4.5).
const (
	// ResultDone marks a completed query (always set by the accelerator, so
	// a result word is never zero).
	ResultDone uint64 = 1 << 63
	// ResultFound marks a hit; the low bits then carry the value.
	ResultFound uint64 = 1 << 62
	// ResultFault marks a query that failed metadata validation.
	ResultFault uint64 = 1 << 61
	// ResultValueMask extracts the value bits.
	ResultValueMask uint64 = (1 << 61) - 1
)

// EncodeResult packs a lookup outcome into a result word.
func EncodeResult(value uint64, found bool) uint64 {
	w := ResultDone | (value & ResultValueMask)
	if found {
		w |= ResultFound
	}
	return w
}

// DecodeResult unpacks a result word.
func DecodeResult(w uint64) (value uint64, found, done bool) {
	return w & ResultValueMask, w&ResultFound != 0, w&ResultDone != 0
}

// UnitConfig parametrises the chip-wide HALO unit.
type UnitConfig struct {
	Accel AccelConfig
	// FlowRegBits sizes each accelerator's flow register (paper: 32).
	FlowRegBits uint
	// Dispatch selects the query-distribution policy.
	Dispatch noc.DispatchPolicy
	// BatchSize is the non-blocking issue width: queries per result line
	// (eight 64-bit slots per 64 B line).
	BatchSize int
	// WindowLines is how many result lines a core keeps in flight: the
	// issue window is BatchSize*WindowLines non-blocking queries before
	// the first poll.
	WindowLines int
}

// DefaultUnitConfig matches the paper's system.
func DefaultUnitConfig() UnitConfig {
	return UnitConfig{
		Accel:       DefaultAccelConfig(),
		FlowRegBits: 32,
		Dispatch:    noc.DispatchByTable,
		BatchSize:   8,
		WindowLines: 8,
	}
}

// Unit is the chip-wide HALO installation: one accelerator per LLC slice,
// the query distributor in the interconnect, and per-core staging memory for
// keys and result lines.
type Unit struct {
	cfg   UnitConfig
	hier  *cache.Hierarchy
	ring  *noc.Ring
	space mem.Space
	dist  *noc.QueryDistributor
	accel []*Accelerator

	keyBuf    []mem.Addr // per-core key staging buffer (one line)
	resultBuf []mem.Addr // per-core result line

	lineDone []sim.Cycle // poll-deadline scratch, one slot per window line
}

// zeroLine clears result lines; it is never written.
var zeroLine [mem.LineSize]byte

// NewUnit installs HALO onto an existing platform. The allocator provides
// the per-core staging buffers in simulated memory.
func NewUnit(cfg UnitConfig, hier *cache.Hierarchy, ring *noc.Ring, space mem.Space, alloc *mem.Allocator) *Unit {
	if cfg.BatchSize <= 0 || cfg.BatchSize > 8 {
		panic("halo: batch size must be 1..8 (one result line)")
	}
	if cfg.WindowLines <= 0 {
		cfg.WindowLines = 1
	}
	cores := hier.Config().Cores
	u := &Unit{
		cfg:       cfg,
		hier:      hier,
		ring:      ring,
		space:     space,
		dist:      noc.NewQueryDistributor(ring, cfg.Dispatch),
		accel:     make([]*Accelerator, hier.Config().Slices),
		keyBuf:    make([]mem.Addr, cores),
		resultBuf: make([]mem.Addr, cores),
	}
	for s := range u.accel {
		u.accel[s] = NewAccelerator(s, cfg.Accel, hier, space, cfg.FlowRegBits)
	}
	for c := 0; c < cores; c++ {
		// One staging line per in-flight window slot, plus the window's
		// result lines.
		u.keyBuf[c] = alloc.AllocLines(uint64(cfg.BatchSize * cfg.WindowLines))
		u.resultBuf[c] = alloc.AllocLines(uint64(cfg.WindowLines))
	}
	hier.OnAccelInvalidate = u.invalidateMeta
	return u
}

func (u *Unit) invalidateMeta(lineAddr mem.Addr) {
	for _, a := range u.accel {
		a.meta.Invalidate(lineAddr)
	}
}

// Accelerator returns the accelerator at a slice (for stats and tests).
func (u *Unit) Accelerator(slice int) *Accelerator { return u.accel[slice] }

// Distributor returns the query distributor (for stats and tests).
func (u *Unit) Distributor() *noc.QueryDistributor { return u.dist }

// Stats aggregates all accelerators.
func (u *Unit) Stats() AccelStats {
	var s AccelStats
	for _, a := range u.accel {
		as := a.Stats()
		s.Queries += as.Queries
		s.Hits += as.Hits
		s.Misses += as.Misses
		s.Faults += as.Faults
		s.MetaHits += as.MetaHits
		s.MetaMisses += as.MetaMisses
		s.DataAccess += as.DataAccess
		s.BusyCycles += as.BusyCycles
		s.QueueCycles += as.QueueCycles
	}
	return s
}

// ActiveFlowEstimate merges every accelerator's flow register and returns
// the chip-wide linear-counting estimate for the current window.
func (u *Unit) ActiveFlowEstimate() float64 {
	merged := NewFlowRegister(u.cfg.FlowRegBits)
	for _, a := range u.accel {
		merged.Merge(a.flowReg)
	}
	return merged.Estimate()
}

// ResetFlowWindow clears all flow registers (the periodic scan).
func (u *Unit) ResetFlowWindow() {
	for _, a := range u.accel {
		a.flowReg.Reset()
	}
}

// refreshBusyBits mirrors scoreboard occupancy into the distributor.
func (u *Unit) refreshBusyBits(at sim.Cycle) {
	for s, a := range u.accel {
		u.dist.SetBusy(s, a.OutstandingAt(at) >= u.cfg.Accel.ScoreboardDepth)
	}
}

// cmdDelay is the latency of a HALO command or response message between a
// core's ring stop and an accelerator: query and result packets are tiny and
// ride the CHA-side command path (the same lightweight path CHA-to-CHA data
// requests use), not the fully arbitrated data ring.
func (u *Unit) cmdDelay(from, to int) sim.Cycle {
	return 2 + sim.Cycle(u.ring.Hops(from, to))*u.hier.Config().AccelHopCycles
}

// dispatch routes a query and runs it on the selected accelerator.
func (u *Unit) dispatch(at sim.Cycle, q Query) QueryResult {
	u.refreshBusyBits(at)
	slice, _ := u.dist.Target(q.Core, uint64(q.TableAddr), uint64(q.KeyAddr))
	return u.accel[slice].Process(at+u.cmdDelay(q.Core, slice), q)
}

// stageKey writes the lookup key into the core's staging buffer, charging
// the thread for the stores the compiled code would issue.
func (u *Unit) stageKey(th *cpu.Thread, key []byte) mem.Addr {
	buf := u.keyBuf[th.Core]
	u.space.WriteAt(buf, key)
	words := (len(key) + 7) / 8
	th.LocalStore(words)
	return buf
}

// LookupB performs a blocking accelerator lookup (the LOOKUP_B instruction):
// the core stalls until the result returns over the interconnect.
func (u *Unit) LookupB(th *cpu.Thread, tableAddr mem.Addr, key []byte) (uint64, bool) {
	start := th.Now
	keyAddr := u.stageKey(th, key)
	th.ALU(1)   // RAX already holds the table address; address formation
	th.Other(1) // the LOOKUP_B instruction itself
	r := u.dispatch(th.Now, Query{
		Core:      th.Core,
		TableAddr: tableAddr,
		KeyAddr:   keyAddr,
	})
	// Result returns to the issuing core on the command path.
	th.WaitUntil(r.Done + u.cmdDelay(r.Slice, th.Core))
	th.Record("lat.lookup.accel", th.Now-start)
	return r.Value, r.Found
}

// LookupBAt issues LOOKUP_B against a key already resident in simulated
// memory — the common NFV case, where the key is a parsed header inside a
// DDIO-delivered packet buffer (clean in the LLC), so the accelerator's key
// fetch avoids the dirty-line snoop that staged keys pay.
func (u *Unit) LookupBAt(th *cpu.Thread, tableAddr, keyAddr mem.Addr) (uint64, bool) {
	start := th.Now
	th.ALU(1)
	th.Other(1)
	r := u.dispatch(th.Now, Query{Core: th.Core, TableAddr: tableAddr, KeyAddr: keyAddr})
	th.WaitUntil(r.Done + u.cmdDelay(r.Slice, th.Core))
	th.Record("lat.lookup.accel", th.Now-start)
	return r.Value, r.Found
}

// NBQuery is one element of a non-blocking batch: a key to look up in a
// table (tuple-space search sends one key to many tables). When Key is nil,
// KeyAddr names a key already resident in simulated memory (packet buffer);
// otherwise the key is staged through the core's buffer.
type NBQuery struct {
	TableAddr mem.Addr
	Key       []byte
	KeyAddr   mem.Addr
}

// NBResult is one completed non-blocking lookup.
type NBResult struct {
	Value uint64
	Found bool
	Fault bool
}

// LookupManyNB issues a set of lookups with LOOKUP_NB, an issue window of
// BatchSize*WindowLines queries at a time — all queries of a window are
// dispatched before the first poll ("send the queries to all the tuples at
// once", paper §5.1) — then polls each result line with SNAPSHOT_READ +
// vector compare until every slot completes (paper §4.5). The thread
// advances to the cycle the last result was observed.
func (u *Unit) LookupManyNB(th *cpu.Thread, queries []NBQuery) []NBResult {
	results := make([]NBResult, len(queries))
	u.LookupManyNBInto(th, queries, results)
	return results
}

// LookupManyNBInto is LookupManyNB writing into a caller-provided results
// slice (len(results) must cover len(queries)), letting steady-state callers
// reuse their buffers. Neither slice is retained after the call returns.
func (u *Unit) LookupManyNBInto(th *cpu.Thread, queries []NBQuery, results []NBResult) {
	window := u.cfg.BatchSize * u.cfg.WindowLines
	for base := 0; base < len(queries); base += window {
		end := base + window
		if end > len(queries) {
			end = len(queries)
		}
		u.lookupWindowNB(th, queries[base:end], results[base:end])
	}
}

func (u *Unit) lookupWindowNB(th *cpu.Thread, queries []NBQuery, results []NBResult) {
	start := th.Now
	resultBase := u.resultBuf[th.Core]
	lines := (len(queries) + u.cfg.BatchSize - 1) / u.cfg.BatchSize
	// Zero the result lines so "non-zero" means done.
	for li := 0; li < lines; li++ {
		u.space.WriteAt(resultBase+mem.Addr(li)*mem.LineSize, zeroLine[:])
		th.LocalStore(1) // one vector store clears a line
	}

	keyLine := u.keyBuf[th.Core]
	if cap(u.lineDone) < lines {
		u.lineDone = make([]sim.Cycle, lines)
	}
	lineDone := u.lineDone[:lines]
	for li := range lineDone {
		lineDone[li] = 0
	}
	for i, q := range queries {
		keyAddr := q.KeyAddr
		if q.Key != nil {
			// Stage each key in its own line of the per-core staging
			// region so in-flight queries never share a key line.
			keyAddr = keyLine + mem.Addr(i)*mem.LineSize
			u.space.WriteAt(keyAddr, q.Key)
			th.LocalStore((len(q.Key) + 7) / 8)
		}
		th.ALU(1)
		th.Other(1) // LOOKUP_NB retires at issue, like a store

		li := i / u.cfg.BatchSize
		slot := i % u.cfg.BatchSize
		r := u.dispatch(th.Now, Query{
			Core:        th.Core,
			TableAddr:   q.TableAddr,
			KeyAddr:     keyAddr,
			ResultAddr:  resultBase + mem.Addr(li)*mem.LineSize + mem.Addr(slot*8),
			NonBlocking: true,
		})
		results[i] = NBResult{Value: r.Value, Found: r.Found, Fault: r.Fault}
		if r.Done > lineDone[li] {
			lineDone[li] = r.Done
		}
	}

	// Poll: SNAPSHOT_READ each line + AVX compare until its slots are done.
	for li := 0; li < lines; li++ {
		lineAddr := resultBase + mem.Addr(li)*mem.LineSize
		for {
			th.SnapshotRead(lineAddr)
			th.ALU(2)   // vector compare + mask extract
			th.Other(1) // branch
			if th.Now >= lineDone[li] {
				break
			}
			th.WaitUntil(minCycle(lineDone[li], th.Now+8)) // re-poll cadence
		}
	}
	// Read out the slots (register moves from the snapshotted vectors).
	th.ALU(len(queries))
	// One observation per issue window: NB queries complete together, so
	// the window's end-to-end cost is the meaningful latency.
	th.Record("lat.lookup.accel_nb", th.Now-start)
}

func minCycle(a, b sim.Cycle) sim.Cycle {
	if a < b {
		return a
	}
	return b
}

// String summarises the unit for logs.
func (u *Unit) String() string {
	s := u.Stats()
	return fmt.Sprintf("halo.Unit{slices: %d, queries: %d, hit-rate: %.2f}",
		len(u.accel), s.Queries, float64(s.Hits)/float64(max64(s.Queries, 1)))
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
