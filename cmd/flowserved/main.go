// Command flowserved serves a flowserve table over TCP, a unix-domain
// socket, or a shared-memory ring using the flowwire protocol (DESIGN.md
// §9, §11), turning the in-process serving runtime into a network-facing
// flow-classification service. Remote clients (flowload -remote, or any
// flowwire.Client) look up, insert, update and delete flows through
// versioned length-prefixed frames; the server coalesces pipelined lookup
// frames into shard-grouped batch lookups. The wire protocol and runtime
// are identical on every transport.
//
// Usage:
//
//	flowserved                                # listen on 127.0.0.1:7411
//	flowserved -listen :7411 -shards 8        # all interfaces, 8 shards
//	flowserved -transport unix -listen /tmp/fs.sock   # unix-domain socket
//	flowserved -transport shm -listen /tmp/fs.sock    # shared-memory rings
//	flowserved -entries 2000000               # bigger table
//
// On SIGTERM/SIGINT the server drains gracefully: it stops accepting
// connections, unblocks idle readers, answers every frame already accepted,
// then prints the drain ledger and final counters. The exit status is 0 only
// when the drain was clean and no accepted frame went unanswered, so a
// supervisor (or CI) gating on the exit code gets the zero-loss guarantee.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"halo/internal/flowserve"
	"halo/internal/flowwire"
	"halo/internal/packet"
	"halo/internal/stats"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:7411", `listen address: "host:port" for tcp, a socket path for unix`)
		tport        = flag.String("transport", flowwire.TransportTCP, `transport: "tcp", "unix" or "shm"`)
		shards       = flag.Int("shards", 4, "shard count (power of two)")
		entries      = flag.Uint64("entries", 1<<20, "total table capacity in entries")
		keyLen       = flag.Int("keylen", packet.HeaderKeyLen, "fixed key length in bytes")
		window       = flag.Int("window", 0, "per-connection in-flight frame window (0 = default)")
		coalesce     = flag.Int("coalesce", 0, "max pipelined lookup frames coalesced per batch (0 = default)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "per-connection idle read timeout (0 = default)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight work on SIGTERM")
	)
	flag.Parse()

	tbl, err := flowserve.New(flowserve.Config{
		Shards:  *shards,
		Entries: *entries,
		KeyLen:  *keyLen,
	})
	if err != nil {
		fatalf("table: %v", err)
	}
	srv, err := flowwire.NewServer(flowwire.Config{
		Table:          tbl,
		Window:         *window,
		CoalesceFrames: *coalesce,
		IdleTimeout:    *idleTimeout,
	})
	if err != nil {
		fatalf("server: %v", err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServeOn(*tport, *listen) }()

	// ListenAndServeOn binds synchronously before accepting, but we learn the
	// address only through srv.Addr; poll briefly so the startup line carries
	// the resolved port (useful with -listen :0).
	for i := 0; i < 100 && srv.Addr() == nil; i++ {
		time.Sleep(time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "flowserved: serving on %s!%s (shards=%d entries=%d keylen=%d)\n",
		*tport, srv.Addr(), tbl.Shards(), tbl.Capacity(), tbl.KeyLen())

	select {
	case err := <-done:
		// Serve failed on its own (bind error, listener torn down).
		if err != nil && err != flowwire.ErrServerClosed {
			fatalf("%v", err)
		}
		return
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "flowserved: %v — draining (timeout %v)\n", s, *drainTimeout)
	}

	report := srv.Drain(*drainTimeout)
	<-done // Serve returns ErrServerClosed once the listener is down

	snap := stats.NewSnapshot()
	srv.CollectInto(snap)
	printCounters(snap)
	fmt.Fprintf(os.Stderr,
		"flowserved: drain conns=%d accepted=%d rejected=%d replied=%d lost=%d clean=%v\n",
		report.Conns, report.FramesAccepted, report.FramesRejected,
		report.RepliesWritten, report.Lost(), report.Clean)

	if !report.Clean {
		fatalf("drain timed out with connections still busy")
	}
	if report.Lost() != 0 {
		fatalf("drain lost %d accepted frames", report.Lost())
	}
}

func printCounters(snap *stats.Snapshot) {
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "flowserved:   %-32s %d\n", n, snap.Counters[n])
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flowserved: "+format+"\n", args...)
	os.Exit(1)
}
