package nf

import (
	"fmt"

	"halo/internal/cpu"
	"halo/internal/halo"
	"halo/internal/hashfn"
	"halo/internal/mem"
	"halo/internal/packet"
	"halo/internal/sim"
)

// SnortLite is a signature-based intrusion detector in the mould of Snort
// (paper Table 3): an Aho-Corasick DFA over packet payloads. The DFA's
// transition table lives in simulated memory and is walked one load per
// payload byte — the L2-sized automaton working set is exactly what a
// collocated virtual switch pollutes in the paper's Fig. 12 study.
type SnortLite struct {
	Stats
	p *halo.Platform

	// Functional DFA.
	trans   [][256]int32 // state × byte → state
	output  []bool       // accepting states
	nstates int

	// Timing: where each state's transition row lives in memory.
	tableBase mem.Addr
	rowLines  uint64

	alerts uint64
	rng    *sim.Rand

	keyBuf     [packet.KeyBytes]byte // per-packet key scratch
	payloadBuf [256]byte             // synthetic-payload scratch (Scan only reads)
}

// NewSnortLite builds the detector from a pattern set. Patterns are matched
// case-sensitively anywhere in the payload.
func NewSnortLite(p *halo.Platform, patterns []string) (*SnortLite, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("nf: snortlite needs at least one pattern")
	}
	s := &SnortLite{p: p, rng: sim.NewRand(0x5eed)}
	s.build(patterns)
	// One transition row = 256 × int32 = 1 KiB = 16 lines.
	s.rowLines = 16
	s.tableBase = p.Alloc.AllocLines(uint64(s.nstates) * s.rowLines)
	return s, nil
}

// DefaultPatterns returns a rule set sized to give the automaton a few
// hundred states (an L2-scale working set), standing in for the Snort VRT
// community rules.
func DefaultPatterns() []string {
	base := []string{
		"GET /admin", "cmd.exe", "/etc/passwd", "SELECT * FROM", "UNION SELECT",
		"<script>", "\\x90\\x90\\x90\\x90", "powershell -enc", "wget http://",
		"chmod 777", "/bin/sh", "eval(base64", "DROP TABLE", "xp_cmdshell",
		"../..//", "USER anonymous", "OPTIONS * HTTP", "\\xde\\xad\\xbe\\xef",
	}
	out := make([]string, 0, len(base)*3)
	for i, b := range base {
		out = append(out, b)
		out = append(out, fmt.Sprintf("%s?v=%d", b, i))
		out = append(out, fmt.Sprintf("X-%02d: %s", i, b))
	}
	return out
}

// build constructs the Aho-Corasick automaton as a dense DFA.
func (s *SnortLite) build(patterns []string) {
	type node struct {
		next [256]int32
		fail int32
		out  bool
	}
	nodes := []node{{}}
	for i := range nodes[0].next {
		nodes[0].next[i] = -1
	}
	// Trie construction.
	for _, pat := range patterns {
		cur := int32(0)
		for i := 0; i < len(pat); i++ {
			c := pat[i]
			if nodes[cur].next[c] < 0 {
				var n node
				for j := range n.next {
					n.next[j] = -1
				}
				nodes = append(nodes, n)
				nodes[cur].next[c] = int32(len(nodes) - 1)
			}
			cur = nodes[cur].next[c]
		}
		nodes[cur].out = true
	}
	// BFS failure links, converting to a dense DFA as we go.
	queue := []int32{}
	for c := 0; c < 256; c++ {
		if nodes[0].next[c] < 0 {
			nodes[0].next[c] = 0
		} else {
			nodes[nodes[0].next[c]].fail = 0
			queue = append(queue, nodes[0].next[c])
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if nodes[nodes[u].fail].out {
			nodes[u].out = true
		}
		for c := 0; c < 256; c++ {
			v := nodes[u].next[c]
			if v < 0 {
				nodes[u].next[c] = nodes[nodes[u].fail].next[c]
				continue
			}
			nodes[v].fail = nodes[nodes[u].fail].next[c]
			queue = append(queue, v)
		}
	}
	s.nstates = len(nodes)
	s.trans = make([][256]int32, len(nodes))
	s.output = make([]bool, len(nodes))
	for i, n := range nodes {
		s.trans[i] = n.next
		s.output[i] = n.out
	}
}

// States reports the automaton size.
func (s *SnortLite) States() int { return s.nstates }

// WorkingSetBytes reports the DFA table footprint.
func (s *SnortLite) WorkingSetBytes() uint64 {
	return uint64(s.nstates) * s.rowLines * mem.LineSize
}

// Alerts reports raised alerts.
func (s *SnortLite) Alerts() uint64 { return s.alerts }

// Name implements NF.
func (s *SnortLite) Name() string { return "snortlite" }

// Scan runs the DFA over a payload, charging one transition-table load per
// byte, and reports whether any signature matched.
func (s *SnortLite) Scan(th *cpu.Thread, payload []byte) bool {
	state := int32(0)
	matched := false
	for _, b := range payload {
		// The transition entry's cache line within the state's row.
		line := s.tableBase + mem.Addr(uint64(state)*s.rowLines+uint64(b)/16)*mem.LineSize
		th.Load(line)
		th.ALU(3)
		th.Other(1)
		state = s.trans[state][b]
		if s.output[state] {
			matched = true
		}
	}
	return matched
}

// syntheticPayload derives a deterministic pseudo-payload for a packet. A
// small fraction of packets carry an embedded signature so alerts fire.
func (s *SnortLite) syntheticPayload(pkt *packet.Packet) []byte {
	n := pkt.PayloadBytes
	if n <= 0 {
		n = 64
	}
	if n > 256 {
		n = 256
	}
	pkt.Key().Pack(s.keyBuf[:])
	rng := sim.NewRand(hashfn.Hash(hashfn.SeedFlowReg, s.keyBuf[:]))
	buf := s.payloadBuf[:n]
	for i := range buf {
		buf[i] = byte(rng.Uint32() >> 8)
	}
	if rng.Intn(50) == 0 && n > 16 {
		copy(buf[4:], "cmd.exe")
	}
	return buf
}

// ProcessPacket implements NF.
func (s *SnortLite) ProcessPacket(th *cpu.Thread, pkt *packet.Packet) Verdict {
	th.LocalLoad(10)
	th.ALU(12)
	th.Other(8)
	payload := s.syntheticPayload(pkt)
	if s.Scan(th, payload) {
		s.alerts++
		th.Other(20) // alert formatting path
		th.LocalStore(8)
		s.Stats.record(VerdictAlert)
		return VerdictAlert
	}
	s.Stats.record(VerdictAccept)
	return VerdictAccept
}
