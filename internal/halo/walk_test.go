package halo

import (
	"testing"

	"halo/internal/cpu"
	"halo/internal/mem"
)

// buildTinyTree lays out a two-level tree: split on key byte 0 at 128;
// left leaf → (100, found), right leaf → miss.
func buildTinyTree(p *Platform) mem.Addr {
	root := p.Alloc.AllocLines(1)
	left := p.Alloc.AllocLines(1)
	right := p.Alloc.AllocLines(1)
	WriteInternalNode(p.Space, root, 0, 1, 128, left, right)
	WriteLeafNode(p.Space, left, 100, true)
	WriteLeafNode(p.Space, right, 0, false)
	return root
}

func TestWalkBTinyTree(t *testing.T) {
	p := testPlatform(t)
	root := buildTinyTree(p)
	th := cpu.NewThread(p.Hier, 0)
	keyBuf := p.Alloc.AllocLines(1)

	p.Space.WriteAt(keyBuf, []byte{5, 0, 0, 0})
	r := p.Unit.WalkB(th, root, keyBuf, 4)
	if !r.Found || r.Value != 100 || r.Depth != 1 {
		t.Fatalf("left walk = %+v", r)
	}
	p.Space.WriteAt(keyBuf, []byte{200, 0, 0, 0})
	r = p.Unit.WalkB(th, root, keyBuf, 4)
	if r.Found || r.Fault {
		t.Fatalf("right walk = %+v", r)
	}
	if th.Now == 0 {
		t.Fatal("walk charged no time")
	}
}

func TestWalkDepthGuard(t *testing.T) {
	p := testPlatform(t)
	// A self-looping internal node must fault on the depth bound.
	node := p.Alloc.AllocLines(1)
	WriteInternalNode(p.Space, node, 0, 1, 128, node, node)
	th := cpu.NewThread(p.Hier, 0)
	keyBuf := p.Alloc.AllocLines(1)
	r := p.Unit.WalkB(th, node, keyBuf, 4)
	if !r.Fault {
		t.Fatal("cyclic tree did not fault")
	}
}

func TestWalkNilChildFaults(t *testing.T) {
	p := testPlatform(t)
	node := p.Alloc.AllocLines(1)
	WriteInternalNode(p.Space, node, 0, 1, 128, 0, 0)
	th := cpu.NewThread(p.Hier, 0)
	keyBuf := p.Alloc.AllocLines(1)
	if r := p.Unit.WalkB(th, node, keyBuf, 4); !r.Fault {
		t.Fatal("nil child did not fault")
	}
}

func TestFieldValueClamping(t *testing.T) {
	key := []byte{0x01, 0x02}
	if fieldValue(key, 0, 2) != 0x0102 {
		t.Fatal("two-byte field wrong")
	}
	// Reads past the key clamp to zero bytes.
	if fieldValue(key, 1, 4) != 0x02000000 {
		t.Fatalf("clamped field = %#x", fieldValue(key, 1, 4))
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	p := testPlatform(t)
	a := p.Unit.Accelerator(3)
	if a.Slice() != 3 {
		t.Fatalf("Slice() = %d", a.Slice())
	}
	if a.FlowRegister().Bits() != 32 {
		t.Fatalf("flow register bits = %d", a.FlowRegister().Bits())
	}
	if a.MetadataCache().Len() != 0 {
		t.Fatal("fresh metadata cache not empty")
	}
	if a.MetadataCache().HitRate() != 0 {
		t.Fatal("fresh metadata cache has a hit rate")
	}
	if s := p.Unit.String(); s == "" {
		t.Fatal("empty unit string")
	}
	if ModeSoftware.String() != "software" || ModeAccel.String() != "halo" {
		t.Fatal("mode strings wrong")
	}
}

func TestHybridLookupAt(t *testing.T) {
	p := testPlatform(t)
	tbl := populatedTable(t, p, 512, 300)
	hy := NewHybrid(DefaultHybridConfig(), p.Unit)
	th := cpu.NewThread(p.Hier, 0)
	keyBuf := p.Alloc.AllocLines(1)
	for i := uint64(0); i < 300; i++ {
		key := key16(i)
		p.Space.WriteAt(keyBuf, key)
		p.Hier.DMAWrite(keyBuf)
		v, ok := hy.LookupAt(th, tbl, key, keyBuf)
		if !ok || v != i*2+1 {
			t.Fatalf("hybrid LookupAt(%d) = (%d,%v)", i, v, ok)
		}
	}
	// Drive it into software mode with a tiny flow set and check LookupAt
	// still answers through the software path.
	cfg := DefaultHybridConfig()
	cfg.WindowCycles = 5_000
	hy2 := NewHybrid(cfg, p.Unit)
	for i := 0; i < 30000 && hy2.Mode() != ModeSoftware; i++ {
		key := key16(uint64(i % 3))
		p.Space.WriteAt(keyBuf, key)
		hy2.LookupAt(th, tbl, key, keyBuf)
	}
	if hy2.Mode() != ModeSoftware {
		t.Fatal("hybrid never switched to software")
	}
	if v, ok := hy2.LookupAt(th, tbl, key16(1), keyBuf); !ok || v != 3 {
		t.Fatal("software-mode LookupAt wrong")
	}
}
