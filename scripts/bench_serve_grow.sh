#!/bin/sh
# bench_serve_grow.sh [out.json] — produce the halo-bench/v1 document for the
# incremental-resize workload (cmd/flowload -grow smoke run): lookups served
# while the table doubles itself three times under Zipf traffic, with the
# migration-phase p99 gated at 2x of steady state (-check).
#
#   scripts/bench_serve_grow.sh baselines/BENCH_serve_grow.json
#
# Like BENCH_serve.json, the latencies are machine-dependent, so CI diffs
# this document report-only (-gate ''); the -check gates (lookup ledger
# balanced, >= 3 doublings per shard, bounded migration p99) are what fail
# the build.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_serve_grow.json}"

go run ./cmd/flowload -grow -smoke -check -shards 4 -json "$out"
