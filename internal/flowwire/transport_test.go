package flowwire

import (
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"halo/internal/flowserve"
)

// startServerOn runs a server over a fresh table on the given transport and
// returns the dial address (TCP "host:port" or a unix socket path).
func startServerOn(t testing.TB, transport string, tblCfg flowserve.Config, srvCfg Config) (*Server, *flowserve.Table, string) {
	t.Helper()
	tbl, err := flowserve.New(tblCfg)
	if err != nil {
		t.Fatal(err)
	}
	srvCfg.Table = tbl
	srv, err := NewServer(srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := "127.0.0.1:0"
	if transport != TransportTCP {
		addr = filepath.Join(t.TempDir(), "flowserved.sock")
	}
	ln, err := Listen(transport, addr)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveErr; err != nil && err != ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, tbl, ln.Addr().String()
}

// TestUnixTransportOps runs the full op surface over a unix-domain socket:
// the wire protocol and server runtime are transport-agnostic, so everything
// that works on TCP must work identically here.
func TestUnixTransportOps(t *testing.T) {
	_, tbl, addr := startServerOn(t, TransportUnix, flowserve.Config{Shards: 4, Entries: 4096, KeyLen: 20}, Config{})
	cl := dialTest(t, addr, Options{Transport: TransportUnix, Conns: 2})

	if h := cl.Hello(); h.KeyLen != 20 || h.Shards != 4 || h.Capacity != tbl.Capacity() {
		t.Fatalf("HELLO over unix = %+v", h)
	}
	const n = 300
	for i := uint64(0); i < n; i++ {
		if err := cl.Insert(wkey(i), i*3); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := cl.Lookup(wkey(i)); !ok || v != i*3 {
			t.Fatalf("lookup %d = (%d,%v)", i, v, ok)
		}
	}
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = wkey(uint64(i))
	}
	results := make([]flowserve.Result, n)
	if hits := cl.LookupMany(keys, results); hits != n {
		t.Fatalf("LookupMany hits = %d, want %d", hits, n)
	}
	if !cl.Update(wkey(7), 999) {
		t.Fatal("update failed")
	}
	if v, _ := cl.Lookup(wkey(7)); v != 999 {
		t.Fatalf("post-update value = %d", v)
	}
	if !cl.Delete(wkey(8)) {
		t.Fatal("delete failed")
	}
	if _, ok := cl.Lookup(wkey(8)); ok {
		t.Fatal("deleted key still present")
	}
	if err := cl.Err(); err != nil {
		t.Fatal(err)
	}
	if c := cl.Counters(); c.Errors != 0 {
		t.Fatalf("clean unix run counted errors: %+v", c)
	}
}

// TestListenRemovesStaleUnixSocket pins flowserved restart behavior: a
// socket file left behind by a dead server (nobody accepting) is unlinked
// and rebound; a live server's socket is not stolen.
func TestListenRemovesStaleUnixSocket(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stale.sock")

	// Manufacture a stale socket: bind, keep the file past Close.
	ua, err := net.ResolveUnixAddr("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	ul, err := net.ListenUnix("unix", ua)
	if err != nil {
		t.Fatal(err)
	}
	ul.SetUnlinkOnClose(false)
	ul.Close()

	ln, err := Listen(TransportUnix, path)
	if err != nil {
		t.Fatalf("Listen over stale socket: %v", err)
	}
	defer ln.Close()

	// A second bind while the first is live must still fail.
	if ln2, err := Listen(TransportUnix, path); err == nil {
		ln2.Close()
		t.Fatal("Listen stole a live server's socket")
	}
}

func TestBadTransportRejected(t *testing.T) {
	if _, err := Listen("sctp", "x"); !errors.Is(err, ErrBadTransport) {
		t.Fatalf("Listen error = %v, want ErrBadTransport", err)
	}
	if _, err := Dial("x", Options{Transport: "sctp"}); !errors.Is(err, ErrBadTransport) {
		t.Fatalf("Dial error = %v, want ErrBadTransport", err)
	}
	if _, err := Listen("", "127.0.0.1:0"); err != nil {
		t.Fatalf(`Listen("") should default to tcp, got %v`, err)
	}
}

// TestMalformedFramesAllTransports runs the protocol-violation suite over
// every transport: typed rejects for unknown op / bad version, and a hard
// close for an oversized frame — identical behavior regardless of transport.
func TestMalformedFramesAllTransports(t *testing.T) {
	for _, transport := range []string{TransportTCP, TransportUnix, TransportShm} {
		t.Run(transport, func(t *testing.T) {
			_, _, addr := startServerOn(t, transport, flowserve.Config{Shards: 1, Entries: 128, KeyLen: 20}, Config{MaxFrame: 1 << 16})
			dial := func() net.Conn {
				nc, err := dialTransport(transport, addr, 5*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { nc.Close() })
				return nc
			}

			// Unknown op: typed reject, connection survives.
			nc := dial()
			nc.Write(AppendFrame(nil, &Frame{Op: Op(99), ReqID: 1}))
			if f := readReply(t, nc); f.Status != StatusErrOp || f.ReqID != 1 {
				t.Fatalf("unknown op reply = %+v", f)
			}
			nc.Write(AppendFrame(nil, &Frame{Op: OpLookup, ReqID: 2, Payload: wkey(1)}))
			if f := readReply(t, nc); f.Status != StatusOK || f.ReqID != 2 {
				t.Fatalf("lookup after reject = %+v", f)
			}

			// Bad version: typed reject, then the server hangs up.
			nc = dial()
			bad := AppendFrame(nil, &Frame{Op: OpLookup, ReqID: 3, Payload: wkey(1)})
			bad[4] = Version + 1
			nc.Write(bad)
			if f := readReply(t, nc); f.Status != StatusErrVersion || f.ReqID != 3 {
				t.Fatalf("bad version reply = %+v", f)
			}
			assertClosed(t, nc)

			// Oversized length prefix: unrecoverable, reject + close.
			nc = dial()
			nc.Write(AppendFrameHeader(nil, OpLookup, StatusOK, 4, 1<<20)[:4])
			if f := readReply(t, nc); f.Status != StatusErrOversized {
				t.Fatalf("oversized reply = %+v", f)
			}
			assertClosed(t, nc)

			// Truncated frame: peer dies mid-payload; server just closes.
			nc = dial()
			full := AppendFrame(nil, &Frame{Op: OpLookup, ReqID: 5, Payload: wkey(1)})
			nc.Write(full[:len(full)-4])
			nc.Close()
		})
	}
}
