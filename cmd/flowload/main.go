// Command flowload drives the flowserve runtime with live goroutine traffic
// — the serving-side counterpart of halobench's simulated experiments. It
// installs a trafficgen flow population, then hammers it from concurrent
// workers drawing uniform or Zipf flow mixes (plus an optional churn of
// concurrent inserts/deletes), and reports throughput and batch-latency
// quantiles per sweep point.
//
// The load loop drives a flowserve.Reader/flowserve.Writer pair and does not
// care what implements them: by default an in-process *flowserve.Table
// (sweeping shard counts), with -remote a flowwire.Client speaking the wire
// protocol to a flowserved instance (sweeping connection counts). Same
// workers, same verification, same document schema either way.
//
// Usage:
//
//	flowload                                  # default local sweep (1,2,4,8 shards × uniform,zipf)
//	flowload -flows 200000 -ops 5000000       # bigger table, longer run
//	flowload -shards 1,16 -mix uniform        # specific local points
//	flowload -remote tcp://127.0.0.1:7411     # drive a flowserved over TCP
//	flowload -remote tcp://:7411 -conns 1,2,4 # sweep client connection counts
//	flowload -remote unix:///tmp/fs.sock      # drive over a unix socket
//	flowload -remote shm:///tmp/fs.sock       # drive over shared-memory rings
//	flowload -cluster tcp://:7411,tcp://:7412,tcp://:7413
//	                                          # drive a flowserved cluster through
//	                                          #   the flowcluster router, live-migrating
//	                                          #   -migrations hash ranges under load
//	flowload -rate 500000,1000000             # open loop: offer fixed rates and
//	                                          #   measure latency from intended
//	                                          #   send (coordinated-omission-safe)
//	flowload -grow -check                     # force 3 shard doublings under Zipf
//	                                          #   lookups; gate migration p99 at
//	                                          #   -growp99x (2x) of steady state
//	flowload -json BENCH_serve.json           # write the halo-bench/v1 document
//	flowload -check                           # local: fail unless max-shard uniform
//	                                          #   throughput beats 1-shard
//	                                          # remote: fail unless the server's lookup
//	                                          #   counter balances every issued key
//	                                          # cluster: the same ledger summed across
//	                                          #   every node, with ≥1 live migration
//	                                          #   in flight — zero lost or duplicated
//	                                          #   lookups across cutovers
//	flowload -smoke                           # small fast settings for CI
//
// Every lookup is verified against the installed flow population: a wrong
// value is a hard error (the concurrent analogue of halobench's -verify).
// The -json document uses the same halo-bench/v1 schema as BENCH_perf.json,
// so serving results land in CI artifacts next to the simulator benchmarks.
// Timing-derived numbers are machine-dependent; the document is an artifact,
// not a golden file.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"halo/internal/benchjson"
	"halo/internal/flowcluster"
	"halo/internal/flowserve"
	"halo/internal/flowwire"
	"halo/internal/listflag"
	"halo/internal/packet"
	"halo/internal/stats"
	"halo/internal/trafficgen"
)

func main() {
	var (
		flows    = flag.Int("flows", 100_000, "flow population size")
		mixFlag  = flag.String("mix", "uniform,zipf", "comma-separated flow mixes (uniform, zipf)")
		shardsFl = flag.String("shards", "1,2,4,8", "comma-separated shard counts to sweep (local mode)")
		connsFl  = flag.String("conns", "1,2,4", "comma-separated client connection counts to sweep (remote mode)")
		remote   = flag.String("remote", "", "flowserved endpoint (tcp://host:port, unix:///path, shm:///path); sweep -conns against it instead of local -shards")
		clusterF = flag.String("cluster", "", "comma-separated flowserved cluster endpoints; drive them through the flowcluster router")
		migrateN = flag.Int("migrations", 1, "live range migrations to run under load per cluster sweep point")
		tport    = flag.String("transport", flowwire.TransportTCP, `deprecated: default transport for a schemeless -remote address`)
		ratesFl  = flag.String("rate", "0", "comma-separated offered lookups/sec per point (0 = closed loop)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent load-generator goroutines")
		ops      = flag.Int64("ops", 2_000_000, "total lookups per sweep point")
		batch    = flag.Int("batch", 16, "keys per LookupMany call")
		churn    = flag.Int("churn", 64, "issue one delete+reinsert per this many lookups per worker (0 = read-only)")
		seed     = flag.Uint64("seed", 0x464c4f57, "workload seed")
		jsonPath = flag.String("json", "", "write the halo-bench/v1 document to this file")
		check    = flag.Bool("check", false, "fail the scaling gate (local) or the zero-loss gate (remote)")
		smoke    = flag.Bool("smoke", false, "small fast settings for CI (overrides -flows/-ops)")
		grow     = flag.Bool("grow", false, "resize churn workload (local only): force -growdoublings shard doublings under Zipf lookups and measure migration-phase latency")
		growDbl  = flag.Int("growdoublings", 3, "shard doublings the -grow workload sizes the table to force")
		growP99x = flag.Float64("growp99x", 2.0, "-grow -check: max allowed migration-p99 / steady-p99 batch latency ratio")
	)
	flag.Parse()

	workersSet, shardsSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "workers":
			workersSet = true
		case "shards":
			shardsSet = true
		}
	})
	if *smoke {
		*flows = 20_000
		*ops = 400_000
		if *remote != "" || *clusterF != "" {
			// Remote smoke pays a round trip per batch; keep CI fast.
			*ops = 150_000
		}
		if !workersSet {
			// Always run with real concurrency, even on small CI boxes:
			// the point of smoke is exercising the concurrent read path.
			*workers = 4
		}
	}
	mixes, err := listflag.Enum("mix", *mixFlag, "uniform", "zipf")
	if err != nil {
		fatalf("%v", err)
	}
	shardCounts, err := listflag.PositiveInts("shards", *shardsFl)
	if err != nil {
		fatalf("%v", err)
	}
	connCounts, err := listflag.PositiveInts("conns", *connsFl)
	if err != nil {
		fatalf("%v", err)
	}
	rates, err := listflag.Ints("rate", *ratesFl)
	if err != nil {
		fatalf("%v", err)
	}
	for _, r := range rates {
		if r < 0 {
			fatalf("-rate values must be >= 0 (0 = closed loop)")
		}
	}
	if *workers < 1 || *batch < 1 || *ops < 1 || *flows < 1 {
		fatalf("-workers, -batch, -ops and -flows must be positive")
	}
	if *remote != "" && *clusterF != "" {
		fatalf("-remote and -cluster are mutually exclusive")
	}
	if (*remote != "" || *clusterF != "") && shardsSet {
		fmt.Fprintln(os.Stderr, "flowload: -shards is ignored with -remote/-cluster (shard count is fixed server-side)")
	}
	var clusterEps []flowwire.Endpoint
	if *clusterF != "" {
		if clusterEps, err = flowwire.ParseEndpoints("cluster", *clusterF); err != nil {
			fatalf("%v", err)
		}
		if *migrateN < 0 {
			fatalf("-migrations must be >= 0")
		}
	}
	var remoteEp flowwire.Endpoint
	if *remote != "" {
		if remoteEp, err = flowwire.ParseEndpointDefault(*remote, *tport); err != nil {
			fatalf("-remote: %v", err)
		}
	}
	if *grow {
		if *remote != "" || *clusterF != "" {
			fatalf("-grow is local-only: it drives Table.Grow/ResizeStep directly")
		}
		if *growDbl < 1 {
			fatalf("-growdoublings must be >= 1")
		}
		if *growP99x <= 0 {
			fatalf("-growp99x must be positive")
		}
	}
	// The transport is part of the workload identity: "local" for in-process
	// sweeps, else the wire transport ("cluster" for a heterogeneous node
	// set — the endpoints stamp carries each node's transport). Stamping it
	// into Config makes benchdiff refuse cross-transport comparisons (UDS vs
	// TCP loopback are different experiments even at identical sweep
	// settings).
	transport := "local"
	if *remote != "" {
		transport = remoteEp.Transport
	}
	if *clusterF != "" {
		transport = "cluster"
	}

	// Stamp the workload identity (seeds + config) into the document so
	// benchdiff refuses to compare serve artifacts produced by different
	// sweeps. Worker count is deliberately NOT config: it defaults to the
	// host's GOMAXPROCS and is recorded per benchmark as Procs instead.
	mode := "local"
	sweepList := "shards=" + *shardsFl
	mixStamp := *mixFlag
	if *remote != "" || *clusterF != "" {
		mode = "remote"
		sweepList = "conns=" + *connsFl
	}
	if *clusterF != "" {
		mode = "cluster"
	}
	if *grow {
		mode = "grow"
		mixStamp = "zipf" // the grow workload is Zipf by construction
	}
	doc := &benchjson.Document{
		Schema:    benchjson.SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Seeds:     []uint64{*seed},
		Config: map[string]string{
			"tool":      "flowload",
			"mode":      mode,
			"flows":     fmt.Sprint(*flows),
			"ops":       fmt.Sprint(*ops),
			"batch":     fmt.Sprint(*batch),
			"churn":     fmt.Sprint(*churn),
			"mix":       mixStamp,
			"sweep":     sweepList,
			"transport": transport,
			"rate":      *ratesFl,
		},
		Benchmarks: []benchjson.Benchmark{},
	}
	if *grow {
		// The grow workload's identity includes its sizing knobs: documents
		// produced with different doubling counts are different experiments.
		doc.Config["grow_doublings"] = fmt.Sprint(*growDbl)
		doc.Config["grow_p99x"] = fmt.Sprint(*growP99x)
	} else {
		fmt.Printf("%-40s %10s %12s %9s %9s %9s %9s %8s\n",
			"point", "lookups", "Mlookups/s", "p50-us", "p95-us", "p99-us", "p99.9-us", "retries")
	}

	cfg := sweepConfig{
		flows:     *flows,
		mixes:     mixes,
		workers:   *workers,
		ops:       *ops,
		batch:     *batch,
		churn:     *churn,
		seed:      *seed,
		rates:     rates,
		transport: transport,
		check:     *check,
		doc:       doc,
	}
	switch {
	case *grow:
		runGrowSweep(cfg, shardCounts, *growDbl, *growP99x)
	case *clusterF != "":
		doc.Config["migrations"] = fmt.Sprint(*migrateN)
		runClusterSweep(cfg, clusterEps, connCounts, *migrateN)
	case *remote != "":
		runRemoteSweep(cfg, remoteEp, connCounts)
	default:
		runLocalSweep(cfg, shardCounts)
	}

	if *jsonPath != "" {
		data, err := benchjson.Encode(doc)
		if err != nil {
			fatalf("encode: %v", err)
		}
		if _, err := benchjson.Decode(data); err != nil {
			fatalf("self-check: emitted document does not validate: %v", err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "serve document: %s (%d bytes)\n", *jsonPath, len(data))
	}
}

type sweepConfig struct {
	flows     int
	mixes     []string
	workers   int
	ops       int64
	batch     int
	churn     int
	seed      uint64
	rates     []int
	transport string
	check     bool
	doc       *benchjson.Document
}

// pointName appends the open-loop rate to a sweep point name. Closed-loop
// points keep their historical names so longitudinal diffs line up.
func pointName(base string, rate int) string {
	if rate > 0 {
		return fmt.Sprintf("%s/rate=%d", base, rate)
	}
	return base
}

// runLocalSweep builds one in-process table per (mix, shards) point and
// drives it through the serving interfaces.
func runLocalSweep(cfg sweepConfig, shardCounts []int) {
	// throughput[mix][shards] for the -check gate.
	throughput := map[string]map[int]float64{}
	for _, mix := range cfg.mixes {
		w, keys := buildWorkload(mix, cfg.flows, cfg.seed)
		for _, sc := range shardCounts {
			// ~12% slot headroom: shard assignment is by hash, so per-shard
			// occupancy varies around flows/shards.
			entries := uint64(len(keys)) + uint64(len(keys))/8 + 1024
			tbl, err := flowserve.New(flowserve.Config{
				Shards:  sc,
				Entries: entries,
				KeyLen:  packet.HeaderKeyLen,
			})
			if err != nil {
				fatalf("New: %v", err)
			}
			be := backend{r: tbl, w: tbl, reader: func() flowserve.Reader {
				return tbl.NewPinnedReader()
			}, counters: func() map[string]uint64 {
				snap := stats.NewSnapshot()
				tbl.CollectInto(snap)
				return snap.Counters
			}}
			fillNs := install(be, keys, 1)
			for _, rate := range cfg.rates {
				res := runPoint(w, keys, be, pointConfig{
					workers: cfg.workers,
					ops:     cfg.ops,
					batch:   cfg.batch,
					churn:   cfg.churn,
					seed:    cfg.seed,
					rate:    rate,
				})
				res.fillNsPerOp = fillNs
				name := pointName(fmt.Sprintf("FlowServe/mix=%s/shards=%d", mix, sc), rate)
				emit(cfg, name, res)
				if rate == 0 {
					if throughput[mix] == nil {
						throughput[mix] = map[int]float64{}
					}
					throughput[mix][sc] = res.lookupsPerSec
				}
			}
		}
	}
	if cfg.check {
		checkLocalScaling(throughput, shardCounts)
	}
}

// runRemoteSweep drives a flowserved instance: one flow population install
// per mix (shared by all -conns points), one fresh client pool per point.
// With -check it closes the ledger: every key the workers issued must appear
// in the server's flowserve.lookups counter — a lookup dropped anywhere in
// the pipeline (client pool, wire, coalescer, batch) breaks the equality.
func runRemoteSweep(cfg sweepConfig, ep flowwire.Endpoint, connCounts []int) {
	setup := dialRetry(ep, flowwire.Options{Conns: 2}, 10*time.Second)
	defer setup.Close()
	hello := setup.Hello()
	if hello.KeyLen != packet.HeaderKeyLen {
		fatalf("server key length %d, want %d (packet header keys)", hello.KeyLen, packet.HeaderKeyLen)
	}
	if hello.Capacity < uint64(cfg.flows)+uint64(cfg.flows)/8 {
		fatalf("server capacity %d too small for %d flows", hello.Capacity, cfg.flows)
	}
	// The endpoint set and the server's shard-map epoch are workload
	// identity: an artifact produced against a different topology (or after
	// a different number of cutovers) is a different experiment, and
	// benchdiff must refuse the comparison.
	cfg.doc.Config["endpoints"] = ep.String()
	cfg.doc.Config["epoch"] = fmt.Sprint(hello.Epoch)
	fmt.Fprintf(os.Stderr, "flowload: remote %s (shards=%d capacity=%d keylen=%d)\n",
		ep, hello.Shards, hello.Capacity, hello.KeyLen)

	baseline := snapCounters(setup)

	var issuedTotal int64
	var clientErrTotal uint64
	for _, mix := range cfg.mixes {
		w, keys := buildWorkload(mix, cfg.flows, cfg.seed)
		fillNs := install(backend{w: setup}, keys, 8)
		for _, nc := range connCounts {
			for _, rate := range cfg.rates {
				cl := dialRetry(ep, flowwire.Options{Conns: nc}, 10*time.Second)
				before := snapCounters(cl)
				res := runPoint(w, keys, backend{r: cl, w: cl, counters: func() map[string]uint64 {
					return counterDelta(before, snapCounters(cl))
				}}, pointConfig{
					workers: cfg.workers,
					ops:     cfg.ops,
					batch:   cfg.batch,
					churn:   cfg.churn,
					seed:    cfg.seed,
					rate:    rate,
				})
				name := pointName(fmt.Sprintf("FlowServe/remote/mix=%s/conns=%d", mix, nc), rate)
				if err := cl.Err(); err != nil {
					fatalf("%s: client transport error: %v", name, err)
				}
				res.clientErrors = cl.Counters().Errors
				clientErrTotal += res.clientErrors
				cl.Close()
				res.fillNsPerOp = fillNs
				issuedTotal += res.lookups
				emit(cfg, name, res)
			}
		}
		// Different mixes draw different flow populations; colliding keys
		// would carry stale values, so clear this mix before the next.
		uninstall(backend{w: setup}, keys, 8)
	}

	if cfg.check {
		final := snapCounters(setup)
		served := int64(final["flowserve.lookups"] - baseline["flowserve.lookups"])
		fmt.Fprintf(os.Stderr, "check: issued %d key lookups, server served %d, client errors %d\n",
			issuedTotal, served, clientErrTotal)
		if served != issuedTotal {
			fatalf("check failed: server lookup ledger off by %d (issued %d, served %d)",
				served-issuedTotal, issuedTotal, served)
		}
		// A silently-coerced transport failure would show up as a miss in
		// the workload (indistinguishable from churn); the client counter
		// makes it a hard failure instead.
		if clientErrTotal != 0 {
			fatalf("check failed: %d client transport errors were coerced into misses", clientErrTotal)
		}
		if err := setup.Err(); err != nil {
			fatalf("check failed: setup client transport error: %v", err)
		}
	}
}

// runClusterSweep drives a flowserved cluster through the flowcluster
// router — same workers, same verification, same document schema as the
// single-node remote sweep; the router is just another Reader/Writer. Per
// sweep point it live-migrates `migrations` hash ranges while the workers
// hammer the cluster, so every point exercises WRONG_SHARD redirects and at
// least one epoch-bumped cutover. With -check it closes the cluster-wide
// ledger: the flowserve.lookups counters summed across every node must
// balance every key the workers issued — a lookup lost (or double-served)
// anywhere across a cutover breaks the equality — and every migration's
// handoff ledger must have balanced (MoveRange enforces
// Enqueued == Sent == Acked before returning).
func runClusterSweep(cfg sweepConfig, eps []flowwire.Endpoint, connCounts []int, migrations int) {
	setup := dialRouterRetry(eps, flowcluster.Options{Client: flowwire.Options{Conns: 2}}, 10*time.Second)
	defer setup.Close()
	if setup.KeyLen() != packet.HeaderKeyLen {
		fatalf("cluster key length %d, want %d (packet header keys)", setup.KeyLen(), packet.HeaderKeyLen)
	}
	// Endpoint set + epoch are workload identity, exactly as in the remote
	// sweep; the epoch additionally records how many cutovers preceded the
	// run.
	cfg.doc.Config["endpoints"] = flowwire.EndpointList(eps)
	cfg.doc.Config["epoch"] = fmt.Sprint(setup.Epoch())
	fmt.Fprintf(os.Stderr, "flowload: cluster %s (epoch=%d keylen=%d)\n",
		flowwire.EndpointList(eps), setup.Epoch(), setup.KeyLen())

	baseline := clusterCounters(setup)

	var issuedTotal int64
	var routerErrTotal uint64
	migsTotal := 0
	for _, mix := range cfg.mixes {
		w, keys := buildWorkload(mix, cfg.flows, cfg.seed)
		fillNs := install(backend{w: setup}, keys, 8)
		for _, nc := range connCounts {
			for _, rate := range cfg.rates {
				rt := dialRouterRetry(eps, flowcluster.Options{Client: flowwire.Options{Conns: nc}}, 10*time.Second)
				before := clusterCounters(rt)

				// Live migrations ride along with the point's load: a mover
				// goroutine keeps cutting half-ranges over to the next node
				// while the workers run.
				stopMig := make(chan struct{})
				movedc := make(chan int, 1)
				go func() { movedc <- runMigrations(setup, migrations, stopMig) }()

				res := runPoint(w, keys, backend{r: rt, w: rt, counters: func() map[string]uint64 {
					return counterDelta(before, clusterCounters(rt))
				}}, pointConfig{
					workers: cfg.workers,
					ops:     cfg.ops,
					batch:   cfg.batch,
					churn:   cfg.churn,
					seed:    cfg.seed,
					rate:    rate,
				})
				close(stopMig)
				migsTotal += <-movedc

				name := pointName(fmt.Sprintf("FlowServe/cluster/mix=%s/conns=%d", mix, nc), rate)
				if err := rt.Err(); err != nil {
					fatalf("%s: router transport error: %v", name, err)
				}
				res.clientErrors = rt.Errors()
				routerErrTotal += res.clientErrors
				rt.Close()
				res.fillNsPerOp = fillNs
				issuedTotal += res.lookups
				emit(cfg, name, res)
			}
		}
		uninstall(backend{w: setup}, keys, 8)
	}

	if cfg.check {
		final := clusterCounters(setup)
		served := int64(final["flowserve.lookups"] - baseline["flowserve.lookups"])
		fmt.Fprintf(os.Stderr,
			"check: issued %d key lookups, cluster served %d, router errors %d, live migrations %d (final epoch %d)\n",
			issuedTotal, served, routerErrTotal, migsTotal, setup.Epoch())
		if served != issuedTotal {
			fatalf("check failed: cluster lookup ledger off by %d (issued %d, served %d)",
				served-issuedTotal, issuedTotal, served)
		}
		if routerErrTotal != 0 {
			fatalf("check failed: %d router errors were coerced into misses", routerErrTotal)
		}
		if migrations > 0 && migsTotal == 0 {
			fatalf("check failed: no live migration completed under load")
		}
		if err := setup.Err(); err != nil {
			fatalf("check failed: setup router transport error: %v", err)
		}
	}
}

// snapCounters fetches one server's typed stats snapshot and returns its
// counters.
func snapCounters(cl *flowwire.Client) map[string]uint64 {
	snap, err := cl.StatsSnapshot()
	if err != nil {
		fatalf("stats: %v", err)
	}
	return snap.Counters
}

// clusterCounters snapshots the cluster-wide counter rollup (every node's
// typed stats merged, plus the router's own flowcluster.* counters).
func clusterCounters(r *flowcluster.Router) map[string]uint64 {
	snap, err := r.StatsSnapshot()
	if err != nil {
		fatalf("cluster stats: %v", err)
	}
	return snap.Counters
}

// runMigrations keeps live-migrating ranges until count moves completed or
// stop closes: it picks a split under the coordinator's current map, moves
// its lower half to the next node, and lets the cluster settle briefly. A
// failed move is fatal — MoveRange succeeding IS the zero-loss handoff
// invariant (the ledger balanced and the cutover map installed everywhere).
func runMigrations(coord *flowcluster.Router, count int, stop <-chan struct{}) (moved int) {
	for moved < count {
		select {
		case <-stop:
			return moved
		default:
		}
		m := coord.Map()
		var picked flowwire.Range
		var dst int
		found := false
		for i := range m.Splits {
			rg := flowwire.Range{Lo: m.Splits[i].Start}
			if i+1 < len(m.Splits) {
				rg.Hi = m.Splits[i+1].Start
			}
			var mid uint64
			if rg.Hi == 0 {
				mid = rg.Lo + (^uint64(0)-rg.Lo)/2
			} else {
				mid = rg.Lo + (rg.Hi-rg.Lo)/2
			}
			if mid <= rg.Lo {
				continue
			}
			sub := flowwire.Range{Lo: rg.Lo, Hi: mid}
			src, ok := m.RangeOwner(sub)
			if !ok {
				continue
			}
			picked = sub
			dst = (src + 1) % len(m.Nodes)
			if dst == src {
				continue
			}
			found = true
			break
		}
		if !found {
			return moved
		}
		mi, err := coord.MoveRange(picked, dst, 30*time.Second)
		if err != nil {
			fatalf("live migration %s -> node %d: %v (ledger %+v)", picked, dst, err, mi)
		}
		fmt.Fprintf(os.Stderr,
			"flowload: migrated %s -> node %d (snapshotted=%d forwarded=%d acked=%d conflicts=%d epoch=%d)\n",
			picked, dst, mi.Snapshotted, mi.Forwarded, mi.Acked, mi.Conflicts, coord.Epoch())
		moved++
		time.Sleep(20 * time.Millisecond)
	}
	return moved
}

func checkLocalScaling(throughput map[string]map[int]float64, shardCounts []int) {
	tp, ok := throughput["uniform"]
	if !ok {
		fatalf("-check needs a closed-loop (rate=0) uniform point: the scaling gate compares saturated throughput")
	}
	lo, hi := shardCounts[0], shardCounts[0]
	for _, sc := range shardCounts {
		if sc < lo {
			lo = sc
		}
		if sc > hi {
			hi = sc
		}
	}
	if lo == hi {
		fatalf("-check needs at least two shard counts in -shards")
	}
	ratio := tp[hi] / tp[lo]
	fmt.Fprintf(os.Stderr, "check: uniform throughput %d shards / %d shards = %.2fx\n", hi, lo, ratio)
	if runtime.NumCPU() == 1 {
		// One core: goroutines time-slice, so sharding cannot yield a
		// wall-clock speedup — the parallel-scaling assertion is vacuous.
		// Assert the weaker invariant that sharding costs no more than
		// half the throughput (per-shard overhead stays bounded).
		fmt.Fprintf(os.Stderr, "check: single CPU — skipping speedup assertion, requiring ratio > 0.5\n")
		if ratio <= 0.5 {
			fatalf("check failed: %d-shard throughput (%.0f/s) under half of %d-shard (%.0f/s) on one CPU",
				hi, tp[hi], lo, tp[lo])
		}
	} else if ratio <= 1.0 {
		fatalf("check failed: %d-shard throughput (%.0f/s) does not beat %d-shard (%.0f/s)",
			hi, tp[hi], lo, tp[lo])
	}
}

// emit validates a point result, prints its table row, and appends its
// benchmark document entry. Shared verbatim by local and remote sweeps.
func emit(cfg sweepConfig, name string, res pointResult) {
	if res.wrongValues > 0 {
		fatalf("%s: %d lookups returned a wrong value", name, res.wrongValues)
	}
	if cfg.churn == 0 && res.misses > 0 {
		fatalf("%s: %d misses in a read-only run", name, res.misses)
	}
	mlps := res.lookupsPerSec / 1e6
	fmt.Printf("%-40s %10d %12.2f %9.1f %9.1f %9.1f %9.1f %8d\n",
		name, res.lookups, mlps,
		float64(res.hist.Quantile(0.50))/1e3/float64(cfg.batch),
		float64(res.hist.Quantile(0.95))/1e3/float64(cfg.batch),
		float64(res.hist.Quantile(0.99))/1e3/float64(cfg.batch),
		float64(res.hist.Quantile(0.999))/1e3/float64(cfg.batch),
		res.retries)
	if res.offeredRate > 0 {
		achievedPct := 100 * res.lookupsPerSec / res.offeredRate
		fmt.Fprintf(os.Stderr, "  %s: offered %.0f/s achieved %.0f/s (%.1f%%)\n",
			name, res.offeredRate, res.lookupsPerSec, achievedPct)
	}
	cfg.doc.Benchmarks = append(cfg.doc.Benchmarks, benchjson.Benchmark{
		Name:       name,
		Procs:      cfg.workers,
		Iterations: res.lookups,
		Metrics: map[string]float64{
			"ns/op":          1e9 / res.lookupsPerSec,
			"lookups/sec":    res.lookupsPerSec,
			"offered-rate":   res.offeredRate,
			"achieved-rate":  res.lookupsPerSec,
			"p50-batch-ns":   float64(res.hist.Quantile(0.50)),
			"p95-batch-ns":   float64(res.hist.Quantile(0.95)),
			"p99-batch-ns":   float64(res.hist.Quantile(0.99)),
			"p999-batch-ns":  float64(res.hist.Quantile(0.999)),
			"batch":          float64(cfg.batch),
			"misses":         float64(res.misses),
			"retries":        float64(res.retries),
			"lock-fallbacks": float64(res.lockFallbacks),
			"churn-writes":   float64(res.deletes),
			"client-errors":  float64(res.clientErrors),
			"fill-ns/op":     res.fillNsPerOp,
		},
	})
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flowload: "+format+"\n", args...)
	os.Exit(1)
}

func popularityOf(mix string) (trafficgen.Popularity, error) {
	switch mix {
	case "uniform":
		return trafficgen.Uniform, nil
	case "zipf":
		return trafficgen.Zipf, nil
	}
	return 0, fmt.Errorf("unknown mix %q (want uniform or zipf)", mix)
}

// buildWorkload generates the flow population for a mix and packs every
// flow's header key into one arena; key i aliases the arena, so workers
// share it read-only.
func buildWorkload(mix string, flows int, seed uint64) (*trafficgen.Workload, [][]byte) {
	pop, err := popularityOf(mix)
	if err != nil {
		fatalf("%v", err)
	}
	scn := trafficgen.Scenario{Name: "serve-" + mix, Flows: flows, Rules: 1, Popularity: pop}
	w := trafficgen.Generate(scn, seed)
	arena := make([]byte, len(w.Flows)*packet.HeaderKeyLen)
	keys := make([][]byte, len(w.Flows))
	for i, f := range w.Flows {
		k := arena[i*packet.HeaderKeyLen : (i+1)*packet.HeaderKeyLen]
		f.PutHeaderKey(k)
		keys[i] = k
	}
	return w, keys
}

// backend is one sweep point's serving endpoint: the redesigned
// flowserve.Reader/Writer pair plus a counters hook for point metrics.
// Local points put a *flowserve.Table in both seats; remote points a
// *flowwire.Client. reader, when set, yields a per-worker Reader (local
// workers pin their batch scratch via NewPinnedReader; remote workers
// share the client, whose connections multiplex).
type backend struct {
	r        flowserve.Reader
	w        flowserve.Writer
	reader   func() flowserve.Reader
	counters func() map[string]uint64
}

// workerReader returns the Reader one worker goroutine should loop on.
func (be backend) workerReader() flowserve.Reader {
	if be.reader != nil {
		return be.reader()
	}
	return be.r
}

// install writes the flow population through the backend's Writer across
// par goroutines (striped; remote installs pay a round trip per insert, so
// parallelism matters there) and returns the per-insert wall time in ns.
func install(be backend, keys [][]byte, par int) float64 {
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < par; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(keys); i += par {
				if err := be.w.Insert(keys[i], valueOf(i)); err != nil {
					fatalf("install flow %d: %v", i, err)
				}
			}
		}(p)
	}
	wg.Wait()
	return float64(time.Since(start).Nanoseconds()) / float64(len(keys))
}

// uninstall deletes the population (between remote mixes, whose key sets
// may collide with different values).
func uninstall(be backend, keys [][]byte, par int) {
	var wg sync.WaitGroup
	for p := 0; p < par; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(keys); i += par {
				be.w.Delete(keys[i])
			}
		}(p)
	}
	wg.Wait()
}

type pointConfig struct {
	workers int
	ops     int64
	batch   int
	churn   int
	seed    uint64
	rate    int // offered lookups/sec; 0 = closed loop
}

type pointResult struct {
	lookups       int64
	lookupsPerSec float64
	offeredRate   float64 // 0 in closed-loop points
	fillNsPerOp   float64
	misses        int64
	wrongValues   int64
	hist          *stats.Histogram // per-LookupMany-call latency, ns
	retries       uint64           // seqlock retries during the point
	lockFallbacks uint64
	deletes       uint64 // churn writes during the point
	clientErrors  uint64 // remote points: coerced transport failures
}

// valueOf is the value installed for flow index i (never zero).
func valueOf(i int) uint64 { return uint64(i) + 1 }

// runPoint serves cfg.ops lookups from cfg.workers goroutines through the
// backend's Reader, with churn through its Writer. The loop is identical
// for local tables and remote clients — that is the point of the interface.
//
// With cfg.rate > 0 the point runs open loop: workers claim batch ticks off
// a shared fixed-rate schedule (see pacer) and each batch's latency is
// measured from its *intended* send time, so a stalled server is charged
// the queueing delay instead of quietly slowing the offered load
// (coordinated omission). Closed loop (rate 0) measures from the actual
// send as before. Latency histograms run at high resolution so the p99.9
// tail is within ~0.4% instead of the default ~6%.
func runPoint(w *trafficgen.Workload, keys [][]byte, be backend, cfg pointConfig) pointResult {
	countersBefore := be.counters()
	var (
		issued  atomic.Int64 // lookups claimed by workers
		misses  atomic.Int64
		wrong   atomic.Int64
		wg      sync.WaitGroup
		histMu  sync.Mutex
		allHist = stats.NewHistogramRes(stats.HighResSubBits)
	)
	start := time.Now()
	var pace *pacer
	if cfg.rate > 0 {
		pace = newPacer(start, float64(cfg.rate), cfg.batch)
	}
	for wi := 0; wi < cfg.workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rd := be.workerReader()
			stream := w.NewStream(cfg.seed ^ (0x57AB1E + uint64(wi)*0x9e3779b97f4a7c15))
			churnStream := w.NewStream(cfg.seed ^ (0xC0FFEE + uint64(wi)*0xc2b2ae3d27d4eb4f))
			bkeys := make([][]byte, cfg.batch)
			bidx := make([]int, cfg.batch)
			results := make([]flowserve.Result, cfg.batch)
			hist := stats.NewHistogramRes(stats.HighResSubBits)
			sinceChurn := 0
			for {
				claimed := issued.Add(int64(cfg.batch))
				if claimed > cfg.ops {
					break
				}
				for j := 0; j < cfg.batch; j++ {
					fi := stream.NextFlow()
					bidx[j] = fi
					bkeys[j] = keys[fi]
				}
				var t0 time.Time
				if pace != nil {
					tick := claimed/int64(cfg.batch) - 1
					t0 = pace.wait(tick)
				} else {
					t0 = time.Now()
				}
				rd.LookupMany(bkeys, results)
				hist.Observe(uint64(time.Since(t0).Nanoseconds()))
				for j := 0; j < cfg.batch; j++ {
					if !results[j].OK {
						misses.Add(1) // transient: the flow was churned out
					} else if results[j].Value != valueOf(bidx[j]) {
						wrong.Add(1)
					}
				}
				sinceChurn += cfg.batch
				if cfg.churn > 0 && sinceChurn >= cfg.churn {
					sinceChurn = 0
					fi := churnStream.NextFlow()
					if be.w.Delete(keys[fi]) {
						// Reinstall with the same value; a concurrent reader
						// sees a consistent miss at worst, never a torn hit.
						if err := be.w.Insert(keys[fi], valueOf(fi)); err != nil && err != flowserve.ErrKeyExists {
							wrong.Add(1)
						}
					}
				}
			}
			histMu.Lock()
			allHist.Merge(hist)
			histMu.Unlock()
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)

	delta := counterDelta(countersBefore, be.counters())
	lookups := allHist.Count() * uint64(cfg.batch)
	return pointResult{
		lookups:       int64(lookups),
		lookupsPerSec: float64(lookups) / elapsed.Seconds(),
		offeredRate:   float64(cfg.rate),
		misses:        misses.Load(),
		wrongValues:   wrong.Load(),
		hist:          allHist,
		retries:       delta["flowserve.lookup.retries"],
		lockFallbacks: delta["flowserve.lookup.lock_fallbacks"],
		deletes:       delta["flowserve.deletes"],
	}
}

// counterDelta subtracts two counter snapshots name-wise (missing names
// count as zero; counters are monotonic so the difference never wraps).
func counterDelta(before, after map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(after))
	for name, v := range after {
		out[name] = v - before[name]
	}
	return out
}

// dialRetry dials with retries: CI starts flowserved in the background and
// races it to the first connect, so brief refusals at startup are expected.
func dialRetry(ep flowwire.Endpoint, opts flowwire.Options, patience time.Duration) *flowwire.Client {
	deadline := time.Now().Add(patience)
	for {
		cl, err := flowwire.DialEndpoint(ep, opts)
		if err == nil {
			return cl
		}
		if time.Now().After(deadline) {
			fatalf("dial %s: %v", ep, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// dialRouterRetry is dialRetry for the cluster router: every node must come
// up before New succeeds.
func dialRouterRetry(eps []flowwire.Endpoint, opts flowcluster.Options, patience time.Duration) *flowcluster.Router {
	deadline := time.Now().Add(patience)
	for {
		r, err := flowcluster.New(eps, opts)
		if err == nil {
			return r
		}
		if time.Now().After(deadline) {
			fatalf("cluster dial %s: %v", flowwire.EndpointList(eps), err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
