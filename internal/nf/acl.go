package nf

import (
	"fmt"

	"halo/internal/cpu"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/packet"
)

// ACL is a DPDK-style access control list (paper Table 3: "packets randomly
// generated to match 6 rules and 1 route with various wildcarding"). Rules
// are five-tuple ranges evaluated in priority order; the rule array and a
// route trie page live in simulated memory, so the NF has a real private
// working set.
type ACL struct {
	Stats
	p     *halo.Platform
	rules []ACLRule

	ruleBase  mem.Addr
	trieBase  mem.Addr
	trieLines uint64

	permitted, denied uint64
}

// ACLRule is one range rule.
type ACLRule struct {
	SrcIPLo, SrcIPHi     uint32
	DstIPLo, DstIPHi     uint32
	SrcPortLo, SrcPortHi uint16
	DstPortLo, DstPortHi uint16
	Proto                uint8 // 0 = any
	Permit               bool
}

// MatchesRule reports whether a packet hits a rule.
func (r ACLRule) MatchesRule(p *packet.Packet) bool {
	return p.SrcIP >= r.SrcIPLo && p.SrcIP <= r.SrcIPHi &&
		p.DstIP >= r.DstIPLo && p.DstIP <= r.DstIPHi &&
		p.SrcPort >= r.SrcPortLo && p.SrcPort <= r.SrcPortHi &&
		p.DstPort >= r.DstPortLo && p.DstPort <= r.DstPortHi &&
		(r.Proto == 0 || r.Proto == p.Proto)
}

const aclRuleBytes = 32 // two rules per cache line

// NewACL builds an ACL with the given rules and a trie working set of
// trieKB kilobytes (DPDK ACL tries run tens to hundreds of KB).
func NewACL(p *halo.Platform, rules []ACLRule, trieKB int) (*ACL, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("nf: ACL needs at least one rule")
	}
	a := &ACL{
		p:         p,
		rules:     append([]ACLRule(nil), rules...),
		ruleBase:  p.Alloc.AllocLines(uint64(len(rules)*aclRuleBytes+mem.LineSize-1) / mem.LineSize),
		trieLines: uint64(trieKB) * 1024 / mem.LineSize,
	}
	a.trieBase = p.Alloc.AllocLines(a.trieLines)
	return a, nil
}

// DefaultRules returns the paper's 6-rule + default-route configuration.
func DefaultRules() []ACLRule {
	return []ACLRule{
		{SrcIPLo: 0x0a000000, SrcIPHi: 0x0affffff, DstPortLo: 22, DstPortHi: 22, SrcPortHi: 65535, DstIPHi: ^uint32(0), Permit: false},
		{SrcIPLo: 0x0a000000, SrcIPHi: 0x0a00ffff, DstPortLo: 80, DstPortHi: 443, SrcPortHi: 65535, DstIPHi: ^uint32(0), Permit: true},
		{DstIPLo: 0xc0a80000, DstIPHi: 0xc0a8ffff, DstPortHi: 1023, SrcPortHi: 65535, SrcIPHi: ^uint32(0), Permit: false},
		{DstIPLo: 0xc0a80000, DstIPHi: 0xc0a8ffff, DstPortLo: 1024, DstPortHi: 65535, SrcPortHi: 65535, SrcIPHi: ^uint32(0), Permit: true},
		{SrcIPLo: 0, SrcIPHi: ^uint32(0), DstIPHi: ^uint32(0), SrcPortHi: 65535, DstPortLo: 53, DstPortHi: 53, Proto: packet.ProtoUDP, Permit: true},
		{SrcIPHi: ^uint32(0), DstIPHi: ^uint32(0), SrcPortHi: 65535, DstPortHi: 65535, Proto: packet.ProtoTCP, Permit: true},
		// Default route: permit everything remaining.
		{SrcIPHi: ^uint32(0), DstIPHi: ^uint32(0), SrcPortHi: 65535, DstPortHi: 65535, Permit: true},
	}
}

// Name implements NF.
func (a *ACL) Name() string { return "acl" }

// Permitted and Denied report verdict counts.
func (a *ACL) Permitted() uint64 { return a.permitted }

// Denied reports denied-packet count.
func (a *ACL) Denied() uint64 { return a.denied }

// ProcessPacket implements NF: trie walk plus rule-range evaluation.
func (a *ACL) ProcessPacket(th *cpu.Thread, pkt *packet.Packet) Verdict {
	th.LocalLoad(8)
	th.ALU(10)

	// Trie walk: four levels indexed by destination address bytes. The
	// trie pages are this NF's cache working set.
	idx := uint64(pkt.DstIP)
	for level := 0; level < 4; level++ {
		line := ((idx >> (8 * level)) & 0xff) * 97 % a.trieLines
		th.Load(a.trieBase + mem.Addr(line)*mem.LineSize)
		th.ALU(4)
	}

	// Range evaluation over the rule array (vectorised in DPDK; the
	// comparisons still retire).
	verdict := VerdictDrop
	for i, r := range a.rules {
		if i%2 == 0 {
			th.Load(a.ruleBase + mem.Addr(i/2)*mem.LineSize)
		}
		th.ALU(10)
		th.Other(2)
		if r.MatchesRule(pkt) {
			if r.Permit {
				verdict = VerdictAccept
			}
			break
		}
	}
	th.Other(6)
	if verdict == VerdictAccept {
		a.permitted++
	} else {
		a.denied++
	}
	a.Stats.record(verdict)
	return verdict
}
