package trafficgen

import (
	"bytes"
	"testing"

	"halo/internal/classify"
	"halo/internal/mem"
)

func TestTraceRoundTrip(t *testing.T) {
	scn := Scenario{Name: "x", Flows: 2000, Rules: 6, Popularity: Zipf}
	w := Generate(scn, 21)
	var buf bytes.Buffer
	if err := w.WriteTrace(&buf, 500); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rules) != 6 || tr.Len() != 500 {
		t.Fatalf("trace has %d rules, %d packets", len(tr.Rules), tr.Len())
	}
	// The trace's packets equal a same-seeded workload's stream.
	w2 := Generate(scn, 21)
	for i := 0; i < 500; i++ {
		want, _ := w2.NextPacket()
		got := tr.NextPacket()
		if got.Key() != want.Key() || got.PayloadBytes != want.PayloadBytes {
			t.Fatalf("packet %d mismatch: %v vs %v", i, got.Key(), want.Key())
		}
	}
	// Wrap-around replay.
	first := Generate(scn, 21)
	fp, _ := first.NextPacket()
	wrapped := tr.NextPacket()
	if wrapped.Key() != fp.Key() {
		t.Fatal("trace did not wrap to the first packet")
	}
}

func TestTraceRulesReplayIntoClassifier(t *testing.T) {
	w := Generate(Scenario{Name: "x", Flows: 1000, Rules: 5, Popularity: Uniform}, 4)
	var buf bytes.Buffer
	if err := w.WriteTrace(&buf, 200); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	space := mem.NewMemory()
	alloc := mem.NewAllocator(0x1000, 1<<30)
	ts := classify.NewTupleSpace(space, alloc, classify.FirstMatch, 1024)
	if err := tr.InstallRules(ts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		pkt := tr.NextPacket()
		if _, ok := ts.Classify(pkt.Key()); !ok {
			t.Fatalf("replayed packet %d unclassified under replayed rules", i)
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated header accepted")
	}
	bad := make([]byte, 16)
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Valid header, truncated body.
	w := Generate(Scenario{Name: "x", Flows: 100, Rules: 2, Popularity: Uniform}, 9)
	var buf bytes.Buffer
	if err := w.WriteTrace(&buf, 50); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated body accepted")
	}
}
