package sim

// CalendarResource models a unit that can service one operation at a time,
// like Resource, but keeps a window of busy intervals instead of a single
// tail timestamp. Claims arriving with out-of-order timestamps — the normal
// case when several threads' timelines interleave — are fitted into the
// earliest idle gap at or after their arrival, so a latecomer is delayed
// only by genuine utilisation, never by the mere existence of later claims.
//
// The interval window is bounded: intervals older than the newest claim by
// more than `horizon` merge into a floor timestamp, keeping Claim O(window).
type CalendarResource struct {
	intervals []interval // sorted by start, non-overlapping
	floor     Cycle      // claims may not start before this (merged history)
	horizon   Cycle
}

type interval struct{ start, end Cycle }

// NewCalendarResource builds a resource that remembers busy intervals within
// `horizon` cycles of the newest claim (older history merges into a floor
// that is only binding for claims arriving even further out of order).
func NewCalendarResource(horizon Cycle) *CalendarResource {
	if horizon == 0 {
		horizon = 4096
	}
	return &CalendarResource{horizon: horizon}
}

// Claim reserves the resource for `occupancy` cycles starting no earlier
// than `at`, and returns the start of the reservation.
func (c *CalendarResource) Claim(at Cycle, occupancy Cycle) (start Cycle) {
	if occupancy == 0 {
		occupancy = 1
	}
	if at < c.floor {
		at = c.floor
	}
	// Find the earliest gap of `occupancy` cycles at or after `at`.
	start = at
	idx := len(c.intervals)
	for i, iv := range c.intervals {
		if iv.end <= start {
			continue
		}
		if iv.start >= start+occupancy {
			// Fits entirely before this interval.
			idx = i
			break
		}
		// Overlaps: push past it.
		start = iv.end
		idx = i + 1
	}
	// Insert the new interval at idx, merging with neighbours when contiguous.
	iv := interval{start, start + occupancy}
	c.intervals = append(c.intervals, interval{})
	copy(c.intervals[idx+1:], c.intervals[idx:])
	c.intervals[idx] = iv
	c.compact(start)
	return start
}

// compact merges adjacent intervals and folds history older than the
// horizon into the floor.
func (c *CalendarResource) compact(newest Cycle) {
	cutoff := Cycle(0)
	if newest > c.horizon {
		cutoff = newest - c.horizon
	}
	out := c.intervals[:0]
	for _, iv := range c.intervals {
		if iv.end <= cutoff {
			if iv.end > c.floor {
				c.floor = iv.end
			}
			continue
		}
		if n := len(out); n > 0 && iv.start <= out[n-1].end {
			if iv.end > out[n-1].end {
				out[n-1].end = iv.end
			}
			continue
		}
		out = append(out, iv)
	}
	c.intervals = out
}

// BusyUntil reports the end of the latest reservation (0 when idle).
func (c *CalendarResource) BusyUntil() Cycle {
	if len(c.intervals) == 0 {
		return c.floor
	}
	return c.intervals[len(c.intervals)-1].end
}

// Utilisation reports the busy fraction of the window [from, to), for tests
// and saturation diagnostics.
func (c *CalendarResource) Utilisation(from, to Cycle) float64 {
	if to <= from {
		return 0
	}
	var busy Cycle
	for _, iv := range c.intervals {
		s, e := iv.start, iv.end
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if e > s {
			busy += e - s
		}
	}
	return float64(busy) / float64(to-from)
}
