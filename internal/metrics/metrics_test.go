package metrics

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Fig. X", "config", "cycles", "speedup")
	tb.SetCaption("an explanation")
	tb.AddRow("small", 123.0, Speedup(300, 100))
	tb.AddRow("large", 45678.9, Speedup(100, 300))
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Fig. X", "an explanation", "config", "small", "3.00x", "0.33x", "45679"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 || tb.Cell(0, 0) != "small" {
		t.Fatal("row accessors broken")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		3.14159: "3.14",
		42.42:   "42.4",
		1234.5:  "1234", // %.0f rounds half to even
		1234.51: "1235",
		0.00123: "0.00123",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestHelpers(t *testing.T) {
	if Speedup(10, 0) != "inf" {
		t.Fatal("zero-division speedup")
	}
	if Percent(0.778) != "77.8%" {
		t.Fatalf("Percent = %q", Percent(0.778))
	}
	// 2.1GHz at 210 cycles/pkt = 10 Mpps.
	if got := Mpps(210, 2.1); got < 9.99 || got > 10.01 {
		t.Fatalf("Mpps = %v", got)
	}
	if Mpps(0, 2.1) != 0 {
		t.Fatal("Mpps(0) should be 0")
	}
}
