package flowwire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"halo/internal/flowserve"
	"halo/internal/stats"
)

// ErrServerClosed is returned by Serve after Drain or Close stops the
// listener, mirroring net/http.
var ErrServerClosed = errors.New("flowwire: server closed")

// Config parametrises a Server. The zero value of every field but Table is
// usable; defaults are applied by NewServer.
type Config struct {
	// Table is the flowserve table the server fronts. Required.
	Table *flowserve.Table

	// MaxFrame bounds accepted frame length in bytes (default
	// DefaultMaxFrame). Longer frames earn StatusErrOversized and a close.
	MaxFrame uint32

	// Window is the per-connection in-flight request budget (default 64).
	// When a client has Window requests parsed but unanswered, the server
	// stops reading its socket — backpressure propagates through TCP
	// instead of growing an unbounded queue.
	Window int

	// CoalesceFrames caps how many queued LOOKUP/LOOKUP_MANY frames are
	// merged into one Batch.LookupMany call (default 8). Coalescing never
	// crosses a mutation: per-connection FIFO semantics are preserved.
	CoalesceFrames int

	// IdleTimeout is the read deadline between frames (default 2m). A
	// connection idle longer is closed.
	IdleTimeout time.Duration

	// WriteTimeout bounds each reply flush (default 30s).
	WriteTimeout time.Duration

	// Self is this node's advertised endpoint in a cluster (the one other
	// nodes and the router dial). Required when Cluster is set; ignored
	// otherwise.
	Self Endpoint

	// Cluster, when non-empty, runs the server as a cluster node: the list
	// is the bootstrap node set (it must include Self), and every node
	// derives the same uniform epoch-1 shard map from it. A cluster node
	// answers keys outside its owned hash ranges with a WRONG_SHARD
	// redirect and honors the migration admin ops (DESIGN.md §13).
	Cluster []Endpoint
}

func (cfg *Config) applyDefaults() error {
	if cfg.Table == nil {
		return errors.New("flowwire: Config.Table is required")
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.MaxFrame < headerSize {
		return fmt.Errorf("flowwire: MaxFrame %d smaller than the %d-byte header", cfg.MaxFrame, headerSize)
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.CoalesceFrames <= 0 {
		cfg.CoalesceFrames = 8
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	return nil
}

// serverCounters are the runtime's atomic counters, published under
// flowwire.* by CollectInto. framesAccepted counts fully parsed frames
// (including unknown-op frames, which get typed replies); framesRejected
// counts protocol violations answered with a typed error reply before the
// connection closes. In a clean run repliesWritten equals their sum — the
// zero-loss invariant flowserved asserts at drain.
type serverCounters struct {
	connsAccepted  atomic.Uint64
	connsClosed    atomic.Uint64
	framesAccepted atomic.Uint64
	framesRejected atomic.Uint64
	repliesWritten atomic.Uint64
	writeErrors    atomic.Uint64
	coalesceCalls  atomic.Uint64
	coalesceFrames atomic.Uint64
	coalesceKeys   atomic.Uint64
}

// Server serves a flowserve table over the wire protocol. Create with
// NewServer, run with Serve/ListenAndServe, stop with Drain (graceful) or
// Close (abrupt).
type Server struct {
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*srvConn]struct{}
	draining atomic.Bool
	closed   bool

	// cl is the cluster state (shard map, migration engine); nil on a
	// standalone server, which keeps the hot paths cluster-free.
	cl *cluster

	connWG sync.WaitGroup // one per live connection handler
	c      serverCounters
}

// NewServer validates cfg and builds a server.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, conns: make(map[*srvConn]struct{})}
	if len(cfg.Cluster) > 0 {
		cl, err := newCluster(cfg.Self, cfg.Cluster)
		if err != nil {
			return nil, err
		}
		s.cl = cl
	}
	return s, nil
}

// clusterMap returns the installed shard map, or nil on a standalone
// server — one pointer load on the hot paths.
func (s *Server) clusterMap() *ShardMap {
	if s.cl == nil {
		return nil
	}
	return s.cl.m.Load()
}

// ListenAndServe listens on a TCP addr ("host:port") and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	return s.ListenAndServeEndpoint(Endpoint{Transport: TransportTCP, Addr: addr})
}

// ListenAndServeOn listens on the named transport and calls Serve.
//
// Deprecated: use ListenAndServeEndpoint with a parsed Endpoint.
func (s *Server) ListenAndServeOn(transport, addr string) error {
	return s.ListenAndServeEndpoint(Endpoint{Transport: transport, Addr: addr})
}

// ListenAndServeEndpoint listens on a parsed endpoint — tcp://host:port,
// unix:///path or shm:///path — and calls Serve. The server runtime is
// transport-agnostic: every connection runs the same
// reader→processor→writer pipeline whatever net.Listener accepted it.
func (s *Server) ListenAndServeEndpoint(ep Endpoint) error {
	ln, err := ListenEndpoint(ep)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Drain or Close stops it, then
// returns ErrServerClosed. One goroutine is spawned per connection.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() || s.isClosed() {
				return ErrServerClosed
			}
			return err
		}
		s.c.connsAccepted.Add(1)
		c := newSrvConn(s, nc)
		s.mu.Lock()
		if s.draining.Load() || s.closed {
			// Raced with Drain: refuse rather than serve a half-tracked conn.
			s.mu.Unlock()
			nc.Close()
			s.c.connsClosed.Add(1)
			continue
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go c.handle()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Addr returns the listener's address (useful with ":0"), or nil before
// Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// DrainReport summarises a graceful drain: the frame/reply ledger at the
// moment every connection finished (or the timeout expired).
type DrainReport struct {
	Conns          uint64 // connections open when the drain began
	FramesAccepted uint64
	FramesRejected uint64
	RepliesWritten uint64
	Clean          bool // every connection drained inside the timeout
}

// Lost is the number of accepted-or-rejected frames whose reply never hit
// the wire — zero on a clean drain with well-behaved clients.
func (r DrainReport) Lost() uint64 {
	owed := r.FramesAccepted + r.FramesRejected
	if r.RepliesWritten >= owed {
		return 0
	}
	return owed - r.RepliesWritten
}

// Drain is the SIGTERM path: stop accepting, stop reading new frames, let
// every already-parsed request complete and flush, then close. Connections
// still busy after timeout are force-closed (report.Clean = false).
func (s *Server) Drain(timeout time.Duration) DrainReport {
	s.mu.Lock()
	if !s.draining.Swap(true) {
		if s.ln != nil {
			s.ln.Close()
		}
	}
	open := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		open = append(open, c)
	}
	s.mu.Unlock()

	// Unblock readers parked in ReadFrame; they observe draining and exit
	// without consuming further frames.
	for _, c := range open {
		c.nc.SetReadDeadline(time.Now())
	}

	done := make(chan struct{})
	go func() { s.connWG.Wait(); close(done) }()
	clean := true
	select {
	case <-done:
	case <-time.After(timeout):
		clean = false
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return DrainReport{
		Conns:          uint64(len(open)),
		FramesAccepted: s.c.framesAccepted.Load(),
		FramesRejected: s.c.framesRejected.Load(),
		RepliesWritten: s.c.repliesWritten.Load(),
		Clean:          clean,
	}
}

// Close abandons all connections immediately. In-flight requests are lost;
// use Drain to stop gracefully.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.nc.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
}

// CollectInto publishes the server's counters (flowwire.*) and its table's
// counters (flowserve.*) into snap. This is also the STATS reply body.
func (s *Server) CollectInto(snap *stats.Snapshot) {
	snap.Add("flowwire.conns.accepted", s.c.connsAccepted.Load())
	snap.Add("flowwire.conns.closed", s.c.connsClosed.Load())
	snap.Add("flowwire.frames.accepted", s.c.framesAccepted.Load())
	snap.Add("flowwire.frames.rejected", s.c.framesRejected.Load())
	snap.Add("flowwire.replies.written", s.c.repliesWritten.Load())
	snap.Add("flowwire.write.errors", s.c.writeErrors.Load())
	snap.Add("flowwire.coalesce.calls", s.c.coalesceCalls.Load())
	snap.Add("flowwire.coalesce.frames", s.c.coalesceFrames.Load())
	snap.Add("flowwire.coalesce.keys", s.c.coalesceKeys.Load())
	if s.cl != nil {
		s.cl.collectInto(snap)
	}
	s.cfg.Table.CollectInto(snap)
}

// request is one parsed frame travelling reader → processor. A non-OK
// errStatus short-circuits processing into a typed error reply. payload
// aliases fb's pooled buffer; the processor releases fb once the request's
// reply has been emitted (fb is nil for payload-less error requests).
type request struct {
	op        Op
	errStatus Status
	reqID     uint64
	payload   []byte
	fb        *frameBuf
}

// srvConn is one connection's pipeline: the reader (run by handle) parses
// frames into reqCh; the processor serves them against the table, coalescing
// read bursts, into repCh; the writer flushes encoded replies. reqCh's
// capacity is the in-flight window — a full window blocks the reader, which
// stops draining the socket, which backpressures the client through TCP.
type srvConn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer

	reqCh chan request
	repCh chan *frameBuf

	// processor scratch: conn-owned, reused across coalesced groups.
	batch    *flowserve.Batch
	group    []request
	keys     [][]byte
	nkeys    []int
	results  []flowserve.Result
	statuses []Status
}

func newSrvConn(s *Server, nc net.Conn) *srvConn {
	return &srvConn{
		srv:   s,
		nc:    nc,
		br:    bufio.NewReaderSize(nc, 64<<10),
		bw:    bufio.NewWriterSize(nc, 64<<10),
		reqCh: make(chan request, s.cfg.Window),
		repCh: make(chan *frameBuf, s.cfg.Window),
		batch: s.cfg.Table.NewBatch(),
	}
}

// handle runs the connection to completion: reader inline, processor and
// writer as goroutines, shutdown strictly downstream (reader exit closes
// reqCh; processor drains it and closes repCh; writer drains, flushes and
// is the last out).
func (c *srvConn) handle() {
	defer c.srv.connWG.Done()
	procDone := make(chan struct{})
	writeDone := make(chan struct{})
	go func() { defer close(procDone); c.process() }()
	go func() { defer close(writeDone); c.write() }()

	c.read()
	close(c.reqCh)
	<-procDone
	<-writeDone
	c.nc.Close()

	c.srv.mu.Lock()
	delete(c.srv.conns, c)
	c.srv.mu.Unlock()
	c.srv.c.connsClosed.Add(1)
}

// read parses frames until error, EOF or drain. Protocol violations become
// a final typed-error request (counted rejected) and stop the loop; the
// reply still flows through the ordered pipeline before the close.
func (c *srvConn) read() {
	var f Frame
	for {
		if c.srv.draining.Load() {
			return
		}
		c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.IdleTimeout))
		// Each in-flight frame's payload lives in a pooled buffer (the
		// window holds several at once while coalescing); the processor
		// releases it after the frame's reply is emitted.
		fb := getFrameBuf()
		var err error
		fb.b, err = ReadFrameInto(c.br, c.srv.cfg.MaxFrame, &f, fb.b)
		if err != nil {
			putFrameBuf(fb)
			if err == io.EOF || c.srv.draining.Load() {
				return // clean close, or drain unblocked the read
			}
			var st Status
			switch {
			case errors.Is(err, ErrFrameTooLarge):
				st = StatusErrOversized
			case errors.Is(err, ErrBadVersion):
				st = StatusErrVersion
			case errors.Is(err, ErrShortFrame), errors.Is(err, ErrBadReserved):
				st = StatusErrMalformed
			default:
				// Timeout, transport error, or a short read (the peer died
				// mid-frame): no one is listening, close without a reply.
				return
			}
			c.srv.c.framesRejected.Add(1)
			c.reqCh <- request{op: f.Op, errStatus: st, reqID: f.ReqID}
			return
		}
		req := request{op: f.Op, reqID: f.ReqID, payload: f.Payload, fb: fb}
		switch f.Op {
		case OpHello, OpLookup, OpLookupMany, OpInsert, OpUpdate, OpDelete, OpStats,
			OpShardMap, OpMapUpdate, OpMigStart, OpMigStatus, OpMigApply:
		default:
			req.errStatus = StatusErrOp
		}
		c.srv.c.framesAccepted.Add(1)
		c.reqCh <- req
	}
}

// process serves requests in arrival order. Runs of LOOKUP/LOOKUP_MANY
// frames already sitting in the window are coalesced into one
// Batch.LookupMany; a mutation (or the window running dry) ends the run, so
// FIFO semantics hold.
func (c *srvConn) process() {
	defer close(c.repCh)
	var held request
	hasHeld := false
	for {
		var req request
		if hasHeld {
			req, hasHeld = held, false
		} else {
			var ok bool
			req, ok = <-c.reqCh
			if !ok {
				return
			}
		}
		if req.errStatus != StatusOK {
			c.reply(&Frame{Op: req.op, Status: req.errStatus, ReqID: req.reqID})
			putFrameBuf(req.fb)
			continue
		}
		if req.op != OpLookup && req.op != OpLookupMany {
			c.serveOne(&req)
			putFrameBuf(req.fb)
			continue
		}
		c.group = append(c.group[:0], req)
	collect:
		for len(c.group) < c.srv.cfg.CoalesceFrames {
			select {
			case r2, ok := <-c.reqCh:
				if !ok {
					break collect // flush the group; next receive ends the loop
				}
				if r2.errStatus == StatusOK && (r2.op == OpLookup || r2.op == OpLookupMany) {
					c.group = append(c.group, r2)
				} else {
					held, hasHeld = r2, true
					break collect
				}
			default:
				break collect
			}
		}
		c.serveLookups()
		for i := range c.group {
			// Keys aliased these payload buffers until the batch replies
			// were encoded; now the whole group can go back to the pool.
			putFrameBuf(c.group[i].fb)
			c.group[i].fb = nil
		}
	}
}

// serveLookups answers c.group: one parse pass collects every frame's keys
// (and per-frame typed-error statuses), one Batch.LookupMany serves all
// collected keys, one emit pass writes replies in frame order.
func (c *srvConn) serveLookups() {
	keyLen := c.srv.cfg.Table.KeyLen()
	// One map load covers the whole coalesced group: the ownership check and
	// the WRONG_SHARD epoch must come from the same map version.
	m := c.srv.clusterMap()
	var selfID uint32
	if m != nil {
		selfID = c.srv.cl.selfID.Load()
	}
	c.keys = c.keys[:0]
	c.nkeys = c.nkeys[:0]
	c.statuses = c.statuses[:0]
	for range c.group {
		c.statuses = append(c.statuses, StatusOK)
	}
	statuses := c.statuses
	for i := range c.group {
		req := &c.group[i]
		before := len(c.keys)
		switch req.op {
		case OpLookup:
			if len(req.payload) != keyLen {
				statuses[i] = StatusErrKeyLen
			} else {
				c.keys = append(c.keys, req.payload)
			}
		case OpLookupMany:
			c.keys, statuses[i] = parseLookupManyReq(req.payload, keyLen, c.keys)
			if statuses[i] != StatusOK {
				c.keys = c.keys[:before] // drop any partially collected keys
			}
		}
		if m != nil && statuses[i] == StatusOK {
			// Whole-frame ownership: the router builds per-node sub-batches,
			// so a frame mixing owned and unowned keys means a stale map —
			// redirect the frame and let the router re-route everything.
			for _, k := range c.keys[before:] {
				if uint32(m.Owner(KeyHash(k))) != selfID {
					statuses[i] = StatusErrWrongShard
					c.keys = c.keys[:before]
					break
				}
			}
		}
		c.nkeys = append(c.nkeys, len(c.keys)-before)
	}

	total := len(c.keys)
	if cap(c.results) < total {
		c.results = make([]flowserve.Result, total)
	}
	c.results = c.results[:total]
	if total > 0 {
		c.batch.LookupMany(c.keys, c.results)
	}
	c.srv.c.coalesceCalls.Add(1)
	c.srv.c.coalesceFrames.Add(uint64(len(c.group)))
	c.srv.c.coalesceKeys.Add(uint64(total))

	off := 0
	for i := range c.group {
		req := &c.group[i]
		n := c.nkeys[i]
		res := c.results[off : off+n]
		off += n
		if statuses[i] != StatusOK {
			if statuses[i] == StatusErrWrongShard {
				c.srv.cl.c.wrongShard.Add(1)
				c.replyWrongShard(req.op, req.reqID, m.Epoch)
				continue
			}
			c.reply(&Frame{Op: req.op, Status: statuses[i], ReqID: req.reqID})
			continue
		}
		// Reply frames are built header-then-payload straight into a pooled
		// buffer: no intermediate payload slice, no per-reply make.
		switch req.op {
		case OpLookup:
			fb := getFrameBuf()
			fb.b = AppendFrameHeader(fb.b[:0], OpLookup, StatusOK, req.reqID, 9)
			ok := byte(0)
			if res[0].OK {
				ok = 1
			}
			fb.b = append(fb.b, ok)
			fb.b = binary.LittleEndian.AppendUint64(fb.b, res[0].Value)
			c.send(fb)
		case OpLookupMany:
			fb := getFrameBuf()
			fb.b = AppendFrameHeader(fb.b[:0], OpLookupMany, StatusOK, req.reqID, 4+9*n)
			fb.b = appendLookupManyReply(fb.b, res)
			c.send(fb)
		}
	}
}

// serveOne answers a non-lookup request.
func (c *srvConn) serveOne(req *request) {
	t := c.srv.cfg.Table
	keyLen := t.KeyLen()
	switch req.op {
	case OpHello:
		hi := HelloInfo{
			KeyLen:   keyLen,
			Shards:   t.Shards(),
			Capacity: t.Capacity(),
			NodeID:   NoNode,
		}
		if cl := c.srv.cl; cl != nil {
			if m := cl.m.Load(); m != nil {
				hi.Epoch = m.Epoch
			}
			hi.NodeID = cl.selfID.Load()
		}
		payload := appendHelloReply(make([]byte, 0, 28), hi)
		c.reply(&Frame{Op: OpHello, ReqID: req.reqID, Payload: payload})
	case OpInsert, OpUpdate:
		if len(req.payload) < 8 {
			c.reply(&Frame{Op: req.op, Status: StatusErrMalformed, ReqID: req.reqID})
			return
		}
		value := binary.LittleEndian.Uint64(req.payload[:8])
		key := req.payload[8:]
		if len(key) != keyLen {
			c.reply(&Frame{Op: req.op, Status: StatusErrKeyLen, ReqID: req.reqID})
			return
		}
		st, found, epoch := c.srv.applyMutation(req.op, key, value)
		switch {
		case st == StatusErrWrongShard:
			c.replyWrongShard(req.op, req.reqID, epoch)
		case req.op == OpInsert:
			c.reply(&Frame{Op: OpInsert, Status: st, ReqID: req.reqID})
		default:
			b := byte(0)
			if found {
				b = 1
			}
			c.reply(&Frame{Op: OpUpdate, ReqID: req.reqID, Payload: []byte{b}})
		}
	case OpDelete:
		if len(req.payload) != keyLen {
			c.reply(&Frame{Op: OpDelete, Status: StatusErrKeyLen, ReqID: req.reqID})
			return
		}
		st, found, epoch := c.srv.applyMutation(OpDelete, req.payload, 0)
		if st == StatusErrWrongShard {
			c.replyWrongShard(OpDelete, req.reqID, epoch)
			return
		}
		b := byte(0)
		if found {
			b = 1
		}
		c.reply(&Frame{Op: OpDelete, ReqID: req.reqID, Payload: []byte{b}})
	case OpStats:
		snap := stats.NewSnapshot()
		c.srv.CollectInto(snap)
		payload, err := json.Marshal(snap)
		if err != nil {
			c.reply(&Frame{Op: OpStats, Status: StatusErrInternal, ReqID: req.reqID})
			return
		}
		c.reply(&Frame{Op: OpStats, ReqID: req.reqID, Payload: payload})
	case OpShardMap:
		var payload []byte
		if m := c.srv.clusterMap(); m != nil {
			payload = AppendShardMap(nil, m)
		}
		c.reply(&Frame{Op: OpShardMap, ReqID: req.reqID, Payload: payload})
	case OpMapUpdate:
		c.reply(&Frame{Op: OpMapUpdate, Status: c.srv.handleMapUpdate(req.payload), ReqID: req.reqID})
	case OpMigStart:
		st := StatusErrMalformed
		if rg, dst, err := parseMigStartReq(req.payload); err == nil {
			st = c.srv.handleMigStart(rg, dst)
		}
		c.reply(&Frame{Op: OpMigStart, Status: st, ReqID: req.reqID})
	case OpMigStatus:
		cl := c.srv.cl
		if cl == nil {
			c.reply(&Frame{Op: OpMigStatus, Status: StatusErrCluster, ReqID: req.reqID})
			return
		}
		mi := cl.migInfo()
		c.reply(&Frame{Op: OpMigStatus, ReqID: req.reqID, Payload: appendMigInfo(nil, &mi)})
	case OpMigApply:
		recs, err := parseMigRecords(req.payload, nil)
		if err != nil {
			c.reply(&Frame{Op: OpMigApply, Status: StatusErrMalformed, ReqID: req.reqID})
			return
		}
		processed, conflicts, st := c.srv.applyMigRecords(recs)
		if st != StatusOK {
			c.reply(&Frame{Op: OpMigApply, Status: st, ReqID: req.reqID})
			return
		}
		var payload [8]byte
		binary.LittleEndian.PutUint32(payload[0:4], processed)
		binary.LittleEndian.PutUint32(payload[4:8], conflicts)
		c.reply(&Frame{Op: OpMigApply, ReqID: req.reqID, Payload: payload[:]})
	}
}

// replyWrongShard emits the WRONG_SHARD redirect carrying the node's map
// epoch — the one error reply with a payload.
func (c *srvConn) replyWrongShard(op Op, reqID uint64, epoch uint64) {
	fb := getFrameBuf()
	fb.b = AppendFrameHeader(fb.b[:0], op, StatusErrWrongShard, reqID, 8)
	fb.b = appendWrongShard(fb.b, epoch)
	c.send(fb)
}

// reply encodes a frame into a pooled buffer and hands it to the writer.
func (c *srvConn) reply(f *Frame) {
	fb := getFrameBuf()
	fb.b = AppendFrame(fb.b[:0], f)
	c.send(fb)
}

// send hands an already-encoded pooled frame to the writer, which releases
// it after the bytes reach the bufio writer.
func (c *srvConn) send(fb *frameBuf) {
	c.repCh <- fb
}

// write flushes encoded replies, batching the flush across whatever is
// queued, and returns each pooled buffer once its bytes are in the bufio
// writer. On a write error the remaining replies are discarded (the client
// is gone) but the channel is still drained so the processor never blocks.
func (c *srvConn) write() {
	failed := false
	flushPending := false
	flush := func() {
		if !flushPending || failed {
			return
		}
		c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
		if err := c.bw.Flush(); err != nil {
			failed = true
			c.srv.c.writeErrors.Add(1)
			c.nc.Close() // unblock the reader
		}
		flushPending = false
	}
	writeOne := func(fb *frameBuf) {
		defer putFrameBuf(fb)
		if failed {
			return
		}
		c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
		if _, err := c.bw.Write(fb.b); err != nil {
			failed = true
			c.srv.c.writeErrors.Add(1)
			c.nc.Close()
			return
		}
		flushPending = true
		c.srv.c.repliesWritten.Add(1)
	}
	for fb := range c.repCh {
		writeOne(fb)
		// Opportunistically drain queued replies into the same flush.
	inner:
		for {
			select {
			case more, ok := <-c.repCh:
				if !ok {
					flush()
					return
				}
				writeOne(more)
			default:
				break inner
			}
		}
		flush()
	}
	flush()
}
