package flowwire

import (
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Spin/park policy (DESIGN.md §11). A waiter that finds its ring
// empty/full yields through the Go scheduler up to its conn's spin budget
// before parking — and the right budget depends on where the peer runs,
// which is why the handshake exchanges PIDs:
//
//   - Same process (tests, benchmarks, the hypothesis harness): Gosched
//     hands the core straight to the peer goroutine, so a few yields
//     almost always cover the gap and steady state never parks — zero
//     syscalls per frame. Full budget.
//   - Cross-process, multiple cores: the peer may be mid-frame on another
//     core; a short spin bridges those sub-microsecond gaps without
//     burning a core the peer needs.
//   - Cross-process, one core: spinning is pure poison — the peer cannot
//     run until this side sleeps, so every yield just delays the
//     handover. Park immediately and let the doorbell do its job.
const (
	shmSpinYields      = 256 // same-process budget
	shmSpinYieldsCross = 32  // cross-process budget when cores are plural

	// shmParkBackstop bounds every park even without a deadline: the
	// wake protocol has no lost-wakeup window (see parked/recheck below),
	// but a bounded sleep turns any future protocol bug into a latency
	// blip instead of a hang, and keeps parked readers responsive to
	// deadline changes that raced the park.
	shmParkBackstop = 10 * time.Millisecond
)

// spinBudgetFor picks the yield budget for a conn whose peer runs in
// process peerPid.
func spinBudgetFor(peerPid int) int {
	if peerPid == os.Getpid() {
		return shmSpinYields
	}
	if runtime.NumCPU() > 1 {
		return shmSpinYieldsCross
	}
	return 0
}

// shmConnCounters is the process-wide syscall ledger for the shm
// transport. Every syscall a connection can make after the handshake goes
// through exactly two sites — ringDoorbell (a one-byte socket write) and
// the notifyLoop's blocking socket read (one return per wake) — plus the
// in-process channel parks, so counting these counts the transport's
// entire steady-state kernel traffic. The syscall-free acceptance test
// asserts the per-lookup delta is ~0 under load.
type shmConnCounters struct {
	doorbells atomic.Uint64 // doorbell bytes written (one write syscall each)
	wakes     atomic.Uint64 // doorbell socket reads that returned (one read syscall each)
	parks     atomic.Uint64 // waiter sleeps after the spin budget ran dry
}

var shmCounters shmConnCounters

// ShmCounters snapshots the process-wide shm transport event counters:
// doorbell writes, doorbell wakes and waiter parks since process start.
// Tests use the delta across a steady-state window to prove the frame
// path makes no syscalls.
func ShmCounters() (doorbells, wakes, parks uint64) {
	return shmCounters.doorbells.Load(), shmCounters.wakes.Load(), shmCounters.parks.Load()
}

// shmAddr is the net.Addr of both ends of a shm connection: the handshake
// socket path.
type shmAddr string

func (a shmAddr) Network() string { return TransportShm }
func (a shmAddr) String() string  { return string(a) }

// waiter is one blocking site (a conn has two: ring-empty on Read,
// ring-full on Write). The channel carries wakeups from the notifyLoop and
// from deadline changes; the timer is reused across parks so the park path
// stays allocation-free after its first use.
type waiter struct {
	ch    chan struct{}
	timer *time.Timer
}

func newWaiter() waiter { return waiter{ch: make(chan struct{}, 1)} }

// signal wakes a parked waiter (or pre-arms the channel for the next
// park — a spurious wake costs one recheck loop, never correctness).
func (w *waiter) signal() {
	select {
	case w.ch <- struct{}{}:
	default:
	}
}

// sleep blocks until a signal, the duration elapsing, or closeCh closing.
func (w *waiter) sleep(d time.Duration, closeCh <-chan struct{}) {
	if w.timer == nil {
		w.timer = time.NewTimer(d)
	} else {
		if !w.timer.Stop() {
			select {
			case <-w.timer.C:
			default:
			}
		}
		w.timer.Reset(d)
	}
	select {
	case <-w.ch:
	case <-w.timer.C:
	case <-closeCh:
	}
}

// shmConn is one end of a shared-memory connection: a net.Conn whose byte
// stream lives in the mapped segment's rings. rx is the ring this side
// consumes, tx the one it produces; the handshake socket stays open as the
// doorbell and liveness channel. The steady-state Read/Write paths touch
// only the rings — memcpy plus two atomic cursors — and ring the doorbell
// (one syscall) only when the peer has declared itself parked.
type shmConn struct {
	seg  *shmSegment
	rx   *spscRing
	tx   *spscRing
	door *net.UnixConn
	addr shmAddr

	spinBudget int

	rxWait waiter
	txWait waiter

	readDeadline  atomic.Int64 // unix nanos; 0 = none
	writeDeadline atomic.Int64

	closeOnce sync.Once
	closeCh   chan struct{}
	closed    atomic.Bool
	peerGone  atomic.Bool // notifyLoop saw EOF/error on the doorbell socket
}

// newShmConn wires a conn over a bound segment. server picks which ring is
// consumed: the server consumes req and produces rep, the client the
// reverse; peerPid (learned in the handshake) sets the spin budget. The
// finalizer — not Close — unmaps the segment, so a reader racing Close can
// never touch unmapped pages.
func newShmConn(seg *shmSegment, door *net.UnixConn, addr string, server bool, peerPid int) *shmConn {
	c := &shmConn{
		seg:        seg,
		door:       door,
		addr:       shmAddr(addr),
		spinBudget: spinBudgetFor(peerPid),
		rxWait:     newWaiter(),
		txWait:     newWaiter(),
		closeCh:    make(chan struct{}),
	}
	if server {
		c.rx, c.tx = &seg.req, &seg.rep
	} else {
		c.rx, c.tx = &seg.rep, &seg.req
	}
	runtime.SetFinalizer(c, func(fc *shmConn) { munmap(fc.seg.mem) })
	go c.notifyLoop()
	return c
}

// notifyLoop is the single reader of the doorbell socket: it turns each
// doorbell byte (or the peer hanging up) into local wakeups. Keeping one
// blocked reader per conn means a doorbell can never be consumed by the
// "wrong" waiter — both are signalled and recheck their own ring.
func (c *shmConn) notifyLoop() {
	buf := make([]byte, 16)
	for {
		_, err := c.door.Read(buf)
		if err != nil {
			c.peerGone.Store(true)
			c.rxWait.signal()
			c.txWait.signal()
			return
		}
		shmCounters.wakes.Add(1)
		c.rxWait.signal()
		c.txWait.signal()
	}
}

var doorbellByte = [1]byte{1}

// ringDoorbell wakes the peer with one byte on the handshake socket. No
// deadline and no error handling: the peer's notifyLoop drains the socket
// continuously, so a blocked or failed write means the peer is gone — a
// condition the local notifyLoop reports independently.
func (c *shmConn) ringDoorbell() {
	shmCounters.doorbells.Add(1)
	c.door.Write(doorbellByte[:])
}

func deadlineExpired(dl int64) bool {
	return dl != 0 && time.Now().UnixNano() >= dl
}

// Read implements net.Conn: it returns any available bytes (≥1), blocking
// with the spin-then-park policy while the ring is empty. A dead peer's
// residual bytes are drained before io.EOF.
func (c *shmConn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	for {
		if n := c.rx.read(p); n > 0 {
			// Space was freed: wake the peer's producer if it parked on a
			// full ring. The flag is read-mostly-zero, so test with a load
			// before the swap; swap-to-zero means one doorbell per park.
			if c.rx.prod.Load() != 0 && c.rx.prod.Swap(0) == 1 {
				c.ringDoorbell()
			}
			return n, nil
		}
		if c.closed.Load() {
			return 0, net.ErrClosed
		}
		if c.peerGone.Load() {
			// The flag is set after the peer's final bytes were published;
			// one more read catches a publish that raced the hangup.
			if n := c.rx.read(p); n > 0 {
				return n, nil
			}
			return 0, io.EOF
		}
		if deadlineExpired(c.readDeadline.Load()) {
			return 0, os.ErrDeadlineExceeded
		}
		if c.spin(c.rx.readable) {
			continue
		}
		if err := c.park(&c.rxWait, c.rx.cons, c.rx.readable, &c.readDeadline); err != nil {
			return 0, err
		}
	}
}

// Write implements net.Conn: the full buffer is written (possibly in ring
// chunks), blocking while the ring is full. Partial progress is reported
// with the error, matching net.Conn semantics.
func (c *shmConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		if c.closed.Load() {
			return total, net.ErrClosed
		}
		if c.peerGone.Load() {
			return total, io.ErrClosedPipe
		}
		if n := c.tx.write(p); n > 0 {
			// Bytes were published: wake the peer's consumer if parked.
			if c.tx.cons.Load() != 0 && c.tx.cons.Swap(0) == 1 {
				c.ringDoorbell()
			}
			total += n
			p = p[n:]
			continue
		}
		if deadlineExpired(c.writeDeadline.Load()) {
			return total, os.ErrDeadlineExceeded
		}
		if c.spin(c.tx.writable) {
			continue
		}
		if err := c.park(&c.txWait, c.tx.prod, c.tx.writable, &c.writeDeadline); err != nil {
			return total, err
		}
	}
	return total, nil
}

// spin yields through the scheduler up to the conn's spin budget, returning
// true as soon as ready() reports progress is possible (or the conn state
// changed, which the caller's loop re-examines).
func (c *shmConn) spin(ready func() int) bool {
	for i := 0; i < c.spinBudget; i++ {
		runtime.Gosched()
		if ready() > 0 || c.closed.Load() || c.peerGone.Load() {
			return true
		}
	}
	return false
}

// park publishes the waiting flag, rechecks the ring (the Dekker-style
// store-then-load pairing with the peer's publish-then-swap means at least
// one side always observes the other — no lost wakeups), then sleeps until
// a doorbell, the deadline, the backstop or close. Callers loop.
func (c *shmConn) park(w *waiter, flag *atomic.Uint32, ready func() int, deadline *atomic.Int64) error {
	shmCounters.parks.Add(1)
	flag.Store(1)
	if ready() > 0 || c.closed.Load() || c.peerGone.Load() {
		flag.Store(0)
		return nil
	}
	wait := shmParkBackstop
	if dl := deadline.Load(); dl != 0 {
		rem := time.Until(time.Unix(0, dl))
		if rem <= 0 {
			flag.Store(0)
			return os.ErrDeadlineExceeded
		}
		if rem < wait {
			wait = rem
		}
	}
	w.sleep(wait, c.closeCh)
	flag.Store(0)
	return nil
}

// Close tears the connection down: wakes every waiter, hangs up the
// doorbell socket (the peer's notifyLoop turns that into EOF), and leaves
// the segment mapped for the finalizer — an in-flight Read on another
// goroutine may still be touching the pages.
func (c *shmConn) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		close(c.closeCh)
		c.door.Close()
	})
	return nil
}

func (c *shmConn) LocalAddr() net.Addr  { return c.addr }
func (c *shmConn) RemoteAddr() net.Addr { return c.addr }

func storeDeadline(dst *atomic.Int64, t time.Time) {
	if t.IsZero() {
		dst.Store(0)
	} else {
		dst.Store(t.UnixNano())
	}
}

// SetReadDeadline implements net.Conn; a parked or spinning reader
// observes the new deadline promptly (the signal wakes a parked one).
func (c *shmConn) SetReadDeadline(t time.Time) error {
	storeDeadline(&c.readDeadline, t)
	c.rxWait.signal()
	return nil
}

func (c *shmConn) SetWriteDeadline(t time.Time) error {
	storeDeadline(&c.writeDeadline, t)
	c.txWait.signal()
	return nil
}

func (c *shmConn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	c.SetWriteDeadline(t)
	return nil
}
