package flowwire

import (
	"bytes"
	"testing"

	"halo/internal/flowserve"
)

// FuzzFrameCodec throws arbitrary bytes at the frame decoder — truncated
// headers, oversized lengths, bad versions, garbage payloads — and checks
// the codec invariants the server and client rely on:
//
//   - ReadFrame never panics and never accepts a frame past maxFrame;
//   - an accepted frame re-encodes byte-identically (the zero-copy append
//     path and the allocating path agree);
//   - ReadFrameInto and ReadFrame agree on every input;
//   - the LOOKUP_MANY payload parsers never panic on adversarial payloads
//     and never return more keys/results than the payload can hold.
//
// The wire protocol is transport-agnostic, so these byte-level invariants
// are exactly what both the TCP and unix-socket paths feed on;
// TestMalformedFramesBothTransports pins the per-transport plumbing.
func FuzzFrameCodec(f *testing.F) {
	// Well-formed frames of each op.
	f.Add(AppendFrame(nil, &Frame{Op: OpLookup, ReqID: 1, Payload: wkey(1)}))
	f.Add(AppendFrame(nil, &Frame{Op: OpLookupMany, ReqID: 2,
		Payload: appendLookupManyReq(nil, [][]byte{wkey(1), wkey(2)}, 20)}))
	f.Add(AppendFrame(nil, &Frame{Op: OpLookupMany, Status: StatusOK, ReqID: 3,
		Payload: appendLookupManyReply(nil, []flowserve.Result{{OK: true, Value: 9}})}))
	f.Add(AppendFrame(nil, &Frame{Op: OpHello, ReqID: 4,
		Payload: appendHelloReply(nil, HelloInfo{KeyLen: 20, Shards: 2, Capacity: 64})}))
	// Truncated: header cut mid-way, and payload shorter than claimed.
	full := AppendFrame(nil, &Frame{Op: OpInsert, ReqID: 5, Payload: wkey(3)})
	f.Add(full[:7])
	f.Add(full[:len(full)-4])
	// Oversized length prefix.
	f.Add(AppendFrameHeader(nil, OpLookup, StatusOK, 6, 1<<30)[:4])
	// Bad version / bad reserved byte.
	bad := AppendFrame(nil, &Frame{Op: OpLookup, ReqID: 7, Payload: wkey(4)})
	bad[4] = Version + 1
	f.Add(append([]byte(nil), bad...))
	bad[4], bad[7] = Version, 0xFF
	f.Add(bad)

	const maxFrame = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		err := ReadFrame(bytes.NewReader(data), maxFrame, &fr)
		var fr2 Frame
		scratch := make([]byte, 0, 64)
		_, err2 := ReadFrameInto(bytes.NewReader(data), maxFrame, &fr2, scratch)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("ReadFrame err=%v but ReadFrameInto err=%v", err, err2)
		}
		if err != nil {
			return
		}
		if fr2.Op != fr.Op || fr2.Status != fr.Status || fr2.ReqID != fr.ReqID || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("ReadFrameInto decoded %+v, ReadFrame decoded %+v", fr2, fr)
		}
		if len(fr.Payload) > maxFrame {
			t.Fatalf("accepted %d-byte payload past the %d limit", len(fr.Payload), maxFrame)
		}

		// Round trip: re-encoding the accepted frame reproduces the exact
		// bytes consumed off the stream.
		enc := AppendFrame(nil, &fr)
		if !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", enc, data[:len(enc)])
		}
		var fr3 Frame
		if err := ReadFrame(bytes.NewReader(enc), maxFrame, &fr3); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}

		// Payload parsers must be total on adversarial input.
		keys, st := parseLookupManyReq(fr.Payload, 20, nil)
		if st == StatusOK && len(keys)*20 > len(fr.Payload) {
			t.Fatalf("parsed %d keys out of %d payload bytes", len(keys), len(fr.Payload))
		}
		results := make([]flowserve.Result, 64)
		if n, err := parseLookupManyReply(fr.Payload, results); err == nil && n*9 > len(fr.Payload) {
			t.Fatalf("parsed %d results out of %d payload bytes", n, len(fr.Payload))
		}
		parseHelloReply(fr.Payload)
	})
}
