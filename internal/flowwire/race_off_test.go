//go:build !race

package flowwire

const raceEnabled = false
