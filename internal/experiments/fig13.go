package experiments

import (
	"fmt"
	"io"

	"halo/internal/halo"
	"halo/internal/metrics"
	"halo/internal/nf"
	"halo/internal/packet"
	"halo/internal/sim"
	"halo/internal/stats"
	"halo/internal/trafficgen"
)

// Fig13Point is one (NF, table size) speedup measurement.
type Fig13Point struct {
	NF      string
	Entries uint64
	SWCpp   float64
	HaloCpp float64
	Speedup float64
}

// Fig13Result reproduces Fig. 13: the throughput improvement of hash-table
// network functions (NAT, prads, packet filter) with HALO lookups.
type Fig13Result struct {
	Points []Fig13Point
	Table  *metrics.Table
}

// fig13Cell is one (NF, table size) coordinate; both engines run within
// the point to produce its speedup row.
type fig13Cell struct {
	name string
	size uint64
}

func fig13Cells(cfg Config) []fig13Cell {
	sizes := []uint64{1_000, 10_000, 100_000}
	if cfg.Quick {
		sizes = []uint64{1_000, 100_000}
	}
	var cells []fig13Cell
	for _, name := range []string{"nat", "prads", "packet-filter"} {
		for _, size := range sizes {
			cells = append(cells, fig13Cell{name, size})
		}
	}
	return cells
}

// Fig13Sweep decomposes Fig. 13 into one point per (NF, table size).
func Fig13Sweep() Sweep {
	return Sweep{
		Points: func(cfg Config) []Point {
			cells := fig13Cells(cfg)
			pts := make([]Point, len(cells))
			for i, c := range cells {
				pts[i] = Point{Experiment: "fig13", Index: i,
					Label: fmt.Sprintf("%s/%d-entries", c.name, c.size)}
			}
			return pts
		},
		RunPoint: func(cfg Config, p Point) any {
			c := fig13Cells(cfg)[p.Index]
			packets := pickSize(cfg, 1500, 8000)
			snap := pointSnapshot(cfg)
			// The HALO run — the configuration under study — is snapshotted.
			sw := runFig13Point(c.name, nf.EngineSoftware, c.size, packets, cfg.Seed, nil)
			hw := runFig13Point(c.name, nf.EngineHalo, c.size, packets, cfg.Seed, snap)
			recordSnap(cfg, p, snap)
			return Fig13Point{NF: c.name, Entries: c.size, SWCpp: sw, HaloCpp: hw, Speedup: sw / hw}
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			assembleFig13(rows).Table.Render(w)
		},
	}
}

// RunFig13 reproduces Fig. 13.
func RunFig13(cfg Config) *Fig13Result {
	return assembleFig13(runSerial(cfg, Fig13Sweep()))
}

func assembleFig13(rows []any) *Fig13Result {
	res := &Fig13Result{
		Table: metrics.NewTable("Figure 13: hash-table NF throughput with HALO",
			"nf", "entries", "software cyc/pkt", "halo cyc/pkt", "speedup"),
	}
	res.Table.SetCaption("paper: 2.3-2.7x across NAT, prads and the packet filter")
	for _, r := range rows {
		pt := r.(Fig13Point)
		res.Points = append(res.Points, pt)
		res.Table.AddRow(pt.NF, pt.Entries, pt.SWCpp, pt.HaloCpp, fmt.Sprintf("%.2fx", pt.Speedup))
	}
	return res
}

// Point fetches a measurement.
func (r *Fig13Result) Point(name string, entries uint64) (Fig13Point, bool) {
	for _, pt := range r.Points {
		if pt.NF == name && pt.Entries == entries {
			return pt, true
		}
	}
	return Fig13Point{}, false
}

func runFig13Point(name string, engine nf.Engine, entries uint64, packets int, seed uint64, snap *stats.Snapshot) float64 {
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	// Capacity above the preloaded population so misses stay rare.
	capEntries := entries * 4 / 3

	flows := trafficgen.RandomTuples(int(entries), seed)
	var theNF nf.NF
	switch name {
	case "nat":
		n, err := nf.NewNAT(p, engine, capEntries)
		if err != nil {
			panic(err)
		}
		if err := n.Preload(flows); err != nil {
			panic(err)
		}
		p.WarmTable(n.Table())
		theNF = n
	case "prads":
		n, err := nf.NewPrads(p, engine, capEntries)
		if err != nil {
			panic(err)
		}
		hosts := make([]uint32, len(flows))
		for i, f := range flows {
			hosts[i] = f.SrcIP
		}
		if err := n.Preload(hosts); err != nil {
			panic(err)
		}
		p.WarmTable(n.Table())
		theNF = n
	case "packet-filter":
		n, err := nf.NewFilter(p, engine, capEntries)
		if err != nil {
			panic(err)
		}
		for i, f := range flows {
			if err := n.AddRule(f, i%3 == 0); err != nil {
				panic(err)
			}
		}
		p.WarmTable(n.Table())
		theNF = n
	default:
		panic("unknown NF " + name)
	}

	th := newThreadOn(p)
	rng := sim.NewRand(seed ^ 0xf13)
	next := func() packet.Packet {
		f := flows[rng.Intn(len(flows))]
		return packet.Packet{
			SrcIP: f.SrcIP, DstIP: f.DstIP, SrcPort: f.SrcPort, DstPort: f.DstPort,
			Proto: f.Proto, PayloadBytes: 22,
		}
	}
	for i := 0; i < packets/2; i++ { // warm
		pkt := next()
		theNF.ProcessPacket(th, &pkt)
	}
	start := th.Now
	for i := 0; i < packets; i++ {
		pkt := next()
		theNF.ProcessPacket(th, &pkt)
	}
	collectInto(snap, p, th)
	return float64(th.Now-start) / float64(packets)
}
