package experiments

import (
	"fmt"
	"io"

	"halo/internal/cache"
	"halo/internal/cpu"
	"halo/internal/halo"
	"halo/internal/metrics"
	"halo/internal/nf"
	"halo/internal/packet"
	"halo/internal/stats"
	"halo/internal/trafficgen"
	"halo/internal/vswitch"
)

// Fig12Point is one (NF, flow count, switch engine) collocation result.
type Fig12Point struct {
	NF             string
	SwitchFlows    int
	Engine         string // "software" or "halo"
	ThroughputDrop float64
	L1MissAlone    float64
	L1MissCoRun    float64
}

// Fig12Result reproduces Fig. 12: the throughput drop and L1D miss-rate
// increase network functions suffer when collocated (hyper-threaded) with
// the virtual switch, with and without HALO.
type Fig12Result struct {
	Points []Fig12Point
	Table  *metrics.Table
}

// fig12Cell is one (NF, switch flow count) coordinate; both engines run
// within the point so they share the NF-alone baseline measurement.
type fig12Cell struct {
	nf    string
	flows int
}

// fig12Pair is one point's result: the same cell measured with the
// software and the HALO switch engine.
type fig12Pair struct {
	Software Fig12Point
	Halo     Fig12Point
}

func fig12Cells(cfg Config) []fig12Cell {
	flowCounts := []int{1_000, 100_000, 1_000_000}
	if cfg.Quick {
		flowCounts = []int{1_000, 100_000}
	}
	var cells []fig12Cell
	for _, nfName := range []string{"acl", "snortlite", "mtcplite"} {
		for _, flows := range flowCounts {
			cells = append(cells, fig12Cell{nfName, flows})
		}
	}
	return cells
}

// Fig12Sweep decomposes Fig. 12 into one point per (NF, flow count).
func Fig12Sweep() Sweep {
	return Sweep{
		Points: func(cfg Config) []Point {
			cells := fig12Cells(cfg)
			pts := make([]Point, len(cells))
			for i, c := range cells {
				pts[i] = Point{Experiment: "fig12", Index: i,
					Label: fmt.Sprintf("%s/%d-flows", c.nf, c.flows)}
			}
			return pts
		},
		RunPoint: func(cfg Config, p Point) any {
			snap := pointSnapshot(cfg)
			row := runFig12Cell(cfg, fig12Cells(cfg)[p.Index], snap)
			recordSnap(cfg, p, snap)
			return row
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			assembleFig12(rows).Table.Render(w)
		},
	}
}

// RunFig12 reproduces Fig. 12.
func RunFig12(cfg Config) *Fig12Result {
	return assembleFig12(runSerial(cfg, Fig12Sweep()))
}

func runFig12Cell(cfg Config, c fig12Cell, snap *stats.Snapshot) fig12Pair {
	nfPackets := pickSize(cfg, 1200, 6000)
	aloneCPP, aloneMiss := runFig12Alone(c.nf, nfPackets, cfg.Seed)
	var pair fig12Pair
	for _, engine := range []vswitch.Engine{vswitch.EngineSoftware, vswitch.EngineHalo} {
		// Snapshot the HALO co-run — the configuration under study.
		var engineSnap *stats.Snapshot
		if engine == vswitch.EngineHalo {
			engineSnap = snap
		}
		coCPP, coMiss := runFig12CoRun(c.nf, engine, c.flows, nfPackets, cfg.Seed, engineSnap)
		drop := 1 - aloneCPP/coCPP
		if drop < 0 {
			drop = 0
		}
		pt := Fig12Point{
			NF: c.nf, SwitchFlows: c.flows,
			ThroughputDrop: drop,
			L1MissAlone:    aloneMiss,
			L1MissCoRun:    coMiss,
		}
		if engine == vswitch.EngineHalo {
			pt.Engine = "halo"
			pair.Halo = pt
		} else {
			pt.Engine = "software"
			pair.Software = pt
		}
	}
	return pair
}

func assembleFig12(rows []any) *Fig12Result {
	res := &Fig12Result{
		Table: metrics.NewTable("Figure 12: collocated NF interference (hyper-threaded core sharing)",
			"nf", "switch-flows", "engine", "throughput-drop", "L1D-miss alone", "L1D-miss co-run"),
	}
	res.Table.SetCaption("paper: NFs drop 17-26%% with the software switch, <=3.2%% with HALO")
	for _, r := range rows {
		pair := r.(fig12Pair)
		for _, pt := range []Fig12Point{pair.Software, pair.Halo} {
			res.Points = append(res.Points, pt)
			res.Table.AddRow(pt.NF, pt.SwitchFlows, pt.Engine, metrics.Percent(pt.ThroughputDrop),
				metrics.Percent(pt.L1MissAlone), metrics.Percent(pt.L1MissCoRun))
		}
	}
	return res
}

// Point fetches a collocation measurement.
func (r *Fig12Result) Point(nfName string, flows int, engine string) (Fig12Point, bool) {
	for _, pt := range r.Points {
		if pt.NF == nfName && pt.SwitchFlows == flows && pt.Engine == engine {
			return pt, true
		}
	}
	return Fig12Point{}, false
}

func buildFig12NF(p *halo.Platform, name string) nf.NF {
	switch name {
	case "acl":
		a, err := nf.NewACL(p, nf.DefaultRules(), 128)
		if err != nil {
			panic(err)
		}
		return a
	case "snortlite":
		s, err := nf.NewSnortLite(p, nf.DefaultPatterns())
		if err != nil {
			panic(err)
		}
		return s
	case "mtcplite":
		m, err := nf.NewMTCPLite(p, 1<<14)
		if err != nil {
			panic(err)
		}
		return m
	}
	panic(fmt.Sprintf("unknown NF %q", name))
}

// nfTraffic generates the NF-side packet stream (TCP flows with payloads,
// distinct from switch traffic).
func nfTraffic(seed uint64) *trafficgen.Workload {
	w := trafficgen.Generate(trafficgen.Scenario{
		Name: "nf-side", Flows: 4000, Rules: 1, Popularity: trafficgen.Zipf,
	}, seed+77)
	return w
}

func nfPacketFrom(w *trafficgen.Workload) packet.Packet {
	pkt, _ := w.NextPacket()
	pkt.Proto = packet.ProtoTCP // the NFs under test want TCP
	pkt.PayloadBytes = 128
	return pkt
}

// l1MissRatio computes a thread's L1D miss ratio over its window.
func l1MissRatio(th *cpu.Thread) float64 {
	var loads, misses uint64
	for w, n := range th.Stalls.LoadsByWhere {
		loads += n
		if cache.HitWhere(w) > cache.InL1 {
			misses += n
		}
	}
	if loads == 0 {
		return 0
	}
	return float64(misses) / float64(loads)
}

func runFig12Alone(nfName string, packets int, seed uint64) (cpp, l1Miss float64) {
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	n := buildFig12NF(p, nfName)
	w := nfTraffic(seed)
	th := cpu.NewThread(p.Hier, 0)
	for i := 0; i < packets/2; i++ { // warm
		pkt := nfPacketFrom(w)
		n.ProcessPacket(th, &pkt)
	}
	th.ResetCounts()
	start := th.Now
	for i := 0; i < packets; i++ {
		pkt := nfPacketFrom(w)
		n.ProcessPacket(th, &pkt)
	}
	return float64(th.Now-start) / float64(packets), l1MissRatio(th)
}

func runFig12CoRun(nfName string, engine vswitch.Engine, flows, packets int, seed uint64, snap *stats.Snapshot) (cpp, l1Miss float64) {
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	n := buildFig12NF(p, nfName)

	swCfg := vswitch.DefaultConfig()
	swCfg.Engine = engine
	sw, err := vswitch.New(p, swCfg)
	if err != nil {
		panic(err)
	}
	swWorkload := trafficgen.Generate(trafficgen.Scenario{
		Name: "switch-side", Flows: flows, Rules: 10, Popularity: trafficgen.Uniform,
	}, seed)
	if err := swWorkload.InstallRules(sw.Mega); err != nil {
		panic(err)
	}
	sw.Warm()

	w := nfTraffic(seed)
	// Both threads run on core 0 — the two hyper-threads share L1/L2.
	nfTh := cpu.NewThread(p.Hier, 0)
	swTh := cpu.NewThread(p.Hier, 0)

	// The hyper-threads run concurrently: the NF's cost is the sum of its
	// own per-packet processing times (inflated by the cache pollution the
	// sibling thread causes), NOT the union of both threads' time. Clocks
	// are re-synchronised between packets so the shared LLC ports and DRAM
	// banks see coherent timestamps from both threads.
	var nfCycles uint64
	step := func(measure bool) {
		// The NF packet runs first within each step so its LLC-port and
		// DRAM-bank claims are never queued behind timestamps the sibling
		// placed in this step (the threads are concurrent in reality; the
		// interference under study is cache-state pollution).
		pkt := nfPacketFrom(w)
		t0 := nfTh.Now
		n.ProcessPacket(nfTh, &pkt)
		if measure {
			nfCycles += uint64(nfTh.Now - t0)
		}
		// The switch forwards a small burst per NF packet, reflecting the
		// virtual switch's higher packet rate.
		for b := 0; b < 2; b++ {
			spkt, _ := swWorkload.NextPacket()
			sw.ProcessPacket(swTh, &spkt)
		}
		// Couple the sibling clocks (the jump is not NF processing time).
		if swTh.Now > nfTh.Now {
			nfTh.WaitUntil(swTh.Now)
		} else {
			swTh.WaitUntil(nfTh.Now)
		}
	}
	for i := 0; i < packets/2; i++ { // warm
		step(false)
	}
	nfTh.ResetCounts()
	for i := 0; i < packets; i++ {
		step(true)
	}
	collectInto(snap, p, sw, nfTh, swTh)
	return float64(nfCycles) / float64(packets), l1MissRatio(nfTh)
}
