package cuckoo

import (
	"bytes"
	"encoding/binary"
	"testing"

	"halo/internal/mem"
)

// fuzzTableEntries keeps the fuzzed table tiny so random op streams reach
// the interesting regimes: displacement chains on insert, and a genuinely
// full table returning ErrTableFull.
const fuzzTableEntries = 64

// fuzzKeyUniverse is ~1.5x capacity, so sequences can both fill the table
// and keep colliding on a small key set.
const fuzzKeyUniverse = 96

// applyFuzzOps interprets data as a stream of 4-byte operations
// (kind, key-lo, key-hi, value) and applies each to a fresh table and to a
// plain map reference model, failing on any behavioural divergence.
func applyFuzzOps(t *testing.T, data []byte) {
	space := mem.NewMemory()
	alloc := mem.NewAllocator(0x1000, 1<<30)
	tbl, err := Create(space, alloc, Config{Entries: fuzzTableEntries, KeyLen: 16})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	model := map[uint16]uint64{}

	for off := 0; off+4 <= len(data); off += 4 {
		kind := data[off]
		mk := binary.LittleEndian.Uint16(data[off+1:off+3]) % fuzzKeyUniverse
		val := uint64(data[off+3])
		k := key16(uint64(mk))
		switch kind % 4 {
		case 0: // insert
			err := tbl.Insert(k, val)
			_, exists := model[mk]
			switch {
			case exists:
				if err != ErrKeyExists {
					t.Fatalf("op %d: Insert(dup key %d) = %v, want ErrKeyExists", off/4, mk, err)
				}
			case err == nil:
				model[mk] = val
			case err != ErrTableFull:
				t.Fatalf("op %d: Insert(new key %d) = %v, want nil or ErrTableFull", off/4, mk, err)
			}
		case 1: // delete
			got := tbl.Delete(k)
			if _, exists := model[mk]; got != exists {
				t.Fatalf("op %d: Delete(key %d) = %v, model has it: %v", off/4, mk, got, exists)
			}
			delete(model, mk)
		case 2: // lookup
			v, ok := tbl.Lookup(k)
			want, exists := model[mk]
			if ok != exists || (ok && v != want) {
				t.Fatalf("op %d: Lookup(key %d) = (%d,%v), model says (%d,%v)", off/4, mk, v, ok, want, exists)
			}
		case 3: // update
			got := tbl.Update(k, val)
			if _, exists := model[mk]; got != exists {
				t.Fatalf("op %d: Update(key %d) = %v, model has it: %v", off/4, mk, got, exists)
			}
			if got {
				model[mk] = val
			}
		}
		if tbl.Size() != uint64(len(model)) {
			t.Fatalf("op %d: Size = %d, model has %d entries", off/4, tbl.Size(), len(model))
		}
	}

	// Closing sweep: every model entry must be retrievable, and Iterate
	// must visit exactly the model's pairs.
	for mk, want := range model {
		if v, ok := tbl.Lookup(key16(uint64(mk))); !ok || v != want {
			t.Fatalf("final sweep: Lookup(key %d) = (%d,%v), want (%d,true)", mk, v, ok, want)
		}
	}
	visited := map[uint16]uint64{}
	tbl.Iterate(func(key []byte, value uint64) bool {
		mk := uint16(binary.LittleEndian.Uint64(key))
		if _, dup := visited[mk]; dup {
			t.Fatalf("Iterate visited key %d twice", mk)
		}
		visited[mk] = value
		return true
	})
	if len(visited) != len(model) {
		t.Fatalf("Iterate visited %d entries, model has %d", len(visited), len(model))
	}
	for mk, v := range visited {
		if want, ok := model[mk]; !ok || v != want {
			t.Fatalf("Iterate produced (key %d, %d), model says (%d,%v)", mk, v, want, ok)
		}
	}
}

// fuzzSeeds builds corpus inputs covering the paths random bytes take a
// while to find: fill-to-ErrTableFull, churn (displacement chains), and
// insert/delete/update interleavings on a hot key set.
func fuzzSeeds() [][]byte {
	op := func(kind byte, key uint16, val byte) []byte {
		b := make([]byte, 4)
		b[0] = kind
		binary.LittleEndian.PutUint16(b[1:3], key)
		b[3] = val
		return b
	}
	var fill bytes.Buffer // insert past capacity, then probe every key
	for i := 0; i < fuzzKeyUniverse; i++ {
		fill.Write(op(0, uint16(i), byte(i)))
	}
	for i := 0; i < fuzzKeyUniverse; i++ {
		fill.Write(op(2, uint16(i), 0))
	}
	var churn bytes.Buffer // fill, then alternate delete/insert to force moves
	for i := 0; i < fuzzTableEntries; i++ {
		churn.Write(op(0, uint16(i), byte(i)))
	}
	for i := 0; i < fuzzTableEntries; i++ {
		churn.Write(op(1, uint16(i*7)%fuzzKeyUniverse, 0))
		churn.Write(op(0, uint16(i*13)%fuzzKeyUniverse, byte(i)))
		churn.Write(op(3, uint16(i*3)%fuzzKeyUniverse, byte(i+1)))
	}
	return [][]byte{
		{},
		op(0, 1, 42),
		bytes.Repeat(op(0, 5, 9), 3), // duplicate inserts
		fill.Bytes(),
		churn.Bytes(),
	}
}

// FuzzCuckooOps cross-checks the simulated-memory cuckoo table against a
// plain map under arbitrary insert/delete/lookup/update sequences.
// Run with: go test -fuzz=FuzzCuckooOps ./internal/cuckoo
func FuzzCuckooOps(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			t.Skip("cap op-stream length")
		}
		applyFuzzOps(t, data)
	})
}

// TestFuzzSeedCorpus runs the seed inputs through the fuzz body in plain
// `go test` runs, so CI exercises the displacement and full-table paths
// without a fuzzing engine.
func TestFuzzSeedCorpus(t *testing.T) {
	for i, seed := range fuzzSeeds() {
		seed := seed
		t.Run(string(rune('a'+i)), func(t *testing.T) {
			applyFuzzOps(t, seed)
		})
	}
}
