package experiments

import (
	"io"
	"strings"
	"testing"
)

// The experiment tests assert the paper's qualitative results — who wins, in
// which regime, and roughly by how much — at quick scale. Absolute paper
// numbers are recorded in EXPERIMENTS.md.

func TestFig3BreakdownShape(t *testing.T) {
	t.Parallel()
	r := RunFig3(QuickConfig())
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows, want 5 traffic configurations", len(r.Rows))
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	// Paper: 340-993 cyc/pkt, growing with flows and rules.
	if first.CyclesPerPacket < 200 || first.CyclesPerPacket > 500 {
		t.Errorf("smallest scenario = %.0f cyc/pkt, paper ~340", first.CyclesPerPacket)
	}
	if last.CyclesPerPacket < 700 || last.CyclesPerPacket > 1400 {
		t.Errorf("largest scenario = %.0f cyc/pkt, paper ~993", last.CyclesPerPacket)
	}
	if last.CyclesPerPacket <= first.CyclesPerPacket {
		t.Error("per-packet cost must grow with flows and rules")
	}
	// Paper: classification share 30.9% → 77.8%.
	if first.ClassificationShare < 0.2 || first.ClassificationShare > 0.55 {
		t.Errorf("small-scenario classification share = %.2f, paper ~0.31-0.40", first.ClassificationShare)
	}
	if last.ClassificationShare < 0.6 || last.ClassificationShare > 0.9 {
		t.Errorf("large-scenario classification share = %.2f, paper ~0.78", last.ClassificationShare)
	}
	// The growth is monotone across scenarios.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].ClassificationShare < r.Rows[i-1].ClassificationShare-0.05 {
			t.Errorf("classification share regressed at %s", r.Rows[i].Scenario)
		}
	}
}

func TestFig4CacheBehaviourShape(t *testing.T) {
	t.Parallel()
	r := RunFig4(QuickConfig())
	byKind := map[string][]Fig4Row{}
	for _, row := range r.Rows {
		byKind[row.Kind] = append(byKind[row.Kind], row)
	}
	cuckooRows, sfhRows := byKind["cuckoo"], byKind["sfh"]
	if len(cuckooRows) == 0 || len(sfhRows) == 0 {
		t.Fatal("missing rows")
	}
	// Paper: cuckoo ~95% utilisation; SFH ~20%.
	lastCk := cuckooRows[len(cuckooRows)-1]
	lastSf := sfhRows[len(sfhRows)-1]
	if lastCk.Utilisation < 0.6 {
		t.Errorf("cuckoo utilisation %.2f, paper ~0.95", lastCk.Utilisation)
	}
	if lastSf.Utilisation > 0.3 {
		t.Errorf("SFH utilisation %.2f, paper ~0.2", lastSf.Utilisation)
	}
	// Paper: at large flow counts SFH suffers more LLC misses than cuckoo.
	if lastSf.LLCMPKL <= lastCk.LLCMPKL {
		t.Errorf("SFH LLC MPKL %.3f <= cuckoo %.3f at %d flows; SFH must miss more",
			lastSf.LLCMPKL, lastCk.LLCMPKL, lastSf.Flows)
	}
	// Small tables barely miss the LLC for either layout.
	if cuckooRows[0].LLCMPKL > 1 {
		t.Errorf("1K-flow cuckoo LLC MPKL %.3f; should be ~0", cuckooRows[0].LLCMPKL)
	}
}

func TestTable1InstructionProfile(t *testing.T) {
	t.Parallel()
	r := RunTable1(QuickConfig())
	if r.InstructionsPerLookup < 150 || r.InstructionsPerLookup > 280 {
		t.Errorf("instructions per lookup = %.0f, paper 210", r.InstructionsPerLookup)
	}
	if r.MemoryShare < 0.38 || r.MemoryShare > 0.58 {
		t.Errorf("memory share = %.2f, paper 0.481", r.MemoryShare)
	}
	if r.ArithShare < 0.12 || r.ArithShare > 0.32 {
		t.Errorf("arith share = %.2f, paper 0.210", r.ArithShare)
	}
	if r.OtherShare < 0.2 || r.OtherShare > 0.42 {
		t.Errorf("other share = %.2f, paper 0.309", r.OtherShare)
	}
}

func TestLockOverheadShape(t *testing.T) {
	t.Parallel()
	r := RunLockOverhead(QuickConfig())
	// Paper: ~13.1% of lookup time in locking. Accept a broad band.
	if r.LockSharePct < 0.01 || r.LockSharePct > 0.30 {
		t.Errorf("lock share = %.3f, paper ~0.131", r.LockSharePct)
	}
	// Paper: remote private-cache access ~2x an LLC hit, >100 cycles.
	if r.RemoteOverLLC < 1.5 || r.RemoteOverLLC > 3.5 {
		t.Errorf("remote/LLC ratio = %.2f, paper ~2", r.RemoteOverLLC)
	}
	if r.RemoteHitCycles < 100 {
		t.Errorf("remote access = %.0f cycles, paper >100", r.RemoteHitCycles)
	}
	// HALO's hardware lock costs less than software locking.
	if r.HaloLockStallPct >= r.LockSharePct {
		t.Errorf("halo lock stalls %.3f not below software lock share %.3f",
			r.HaloLockStallPct, r.LockSharePct)
	}
}

func TestFig8FlowRegisterShape(t *testing.T) {
	t.Parallel()
	r := RunFig8(QuickConfig())
	// Paper Fig. 8b: a register estimates ~2x its bit count accurately.
	for _, pt := range r.Points {
		if pt.Flows <= 2*int(pt.RegisterBits) && pt.RegisterBits >= 16 {
			if pt.MeanRelErr > 0.40 {
				t.Errorf("bits=%d flows=%d rel-err=%.2f; should be accurate to ~2m",
					pt.RegisterBits, pt.Flows, pt.MeanRelErr)
			}
		}
	}
	// Estimates grow monotonically with true flow count per register size.
	byBits := map[uint][]Fig8Point{}
	for _, pt := range r.Points {
		byBits[pt.RegisterBits] = append(byBits[pt.RegisterBits], pt)
	}
	for bits, pts := range byBits {
		for i := 1; i < len(pts); i++ {
			if pts[i].MeanEstimate < pts[i-1].MeanEstimate {
				t.Errorf("bits=%d: estimate not monotone in flows", bits)
			}
		}
	}
}

func TestFig9SingleLookupShape(t *testing.T) {
	t.Parallel()
	r := RunFig9(QuickConfig())
	// LLC regime (2^14, 2^17): HALO beats software clearly.
	for _, size := range []uint64{1 << 14, 1 << 17} {
		pt, ok := r.Point(ModeHaloB, size, 0.75)
		if !ok {
			t.Fatalf("missing halo-B point at %d", size)
		}
		if pt.Normalized < 1.5 {
			t.Errorf("halo-B at %d entries = %.2fx, paper up to 3.3x", size, pt.Normalized)
		}
	}
	// Tiny-table regime: software wins (paper's leftmost Fig. 9 points).
	tiny, _ := r.Point(ModeHaloB, 1<<3, 0.75)
	if tiny.Normalized >= 1.0 {
		t.Errorf("halo-B at 8 entries = %.2fx; software should win for L1-resident tables", tiny.Normalized)
	}
	// TCAM is the fastest solution everywhere beyond tiny tables.
	for _, size := range []uint64{1 << 10, 1 << 14, 1 << 17} {
		tc, _ := r.Point(ModeTCAM, size, 0.75)
		hb, _ := r.Point(ModeHaloB, size, 0.75)
		if tc.Normalized < hb.Normalized {
			t.Errorf("TCAM (%.2fx) slower than halo-B (%.2fx) at %d entries", tc.Normalized, hb.Normalized, size)
		}
	}
	// SRAM-TCAM trails TCAM slightly.
	tc, _ := r.Point(ModeTCAM, 1<<14, 0.75)
	st, _ := r.Point(ModeSRAMTCAM, 1<<14, 0.75)
	if st.Normalized > tc.Normalized {
		t.Error("SRAM-TCAM should not beat TCAM")
	}
}

func TestFig10BreakdownShape(t *testing.T) {
	t.Parallel()
	r := RunFig10(QuickConfig())
	swLLC, ok1 := r.Row("software", "llc")
	haloLLC, ok2 := r.Row("halo", "llc")
	swDRAM, ok3 := r.Row("software", "dram")
	haloDRAM, ok4 := r.Row("halo", "dram")
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatal("missing rows")
	}
	// Paper: HALO reduces compute by ~48%.
	if haloLLC.Compute >= swLLC.Compute*0.8 {
		t.Errorf("halo compute %.0f vs software %.0f; paper cuts ~48%%", haloLLC.Compute, swLLC.Compute)
	}
	// Paper: CHA-side data access is much faster in the LLC regime...
	if haloLLC.DataAcc >= swLLC.DataAcc*0.7 {
		t.Errorf("halo LLC data access %.0f vs software %.0f; paper ~4.1x faster", haloLLC.DataAcc, swLLC.DataAcc)
	}
	// ...and still ahead, but by less, in the DRAM regime.
	if haloDRAM.DataAcc >= swDRAM.DataAcc {
		t.Errorf("halo DRAM data access %.0f vs software %.0f; paper ~1.6x faster", haloDRAM.DataAcc, swDRAM.DataAcc)
	}
	llcGain := swLLC.DataAcc / haloLLC.DataAcc
	dramGain := swDRAM.DataAcc / haloDRAM.DataAcc
	if dramGain >= llcGain {
		t.Errorf("DRAM data-access gain %.2f >= LLC gain %.2f; LLC should benefit more", dramGain, llcGain)
	}
	// HALO pays no locking time.
	if haloLLC.Locking != 0 {
		t.Error("halo locking cost must be zero")
	}
}

func TestFig11TupleSpaceShape(t *testing.T) {
	t.Parallel()
	r := RunFig11(QuickConfig())
	nb5, _ := r.Point(ModeHaloNB, 5)
	nb20, _ := r.Point(ModeHaloNB, 20)
	b5, _ := r.Point(ModeHaloB, 5)
	b20, _ := r.Point(ModeHaloB, 20)
	sw5, _ := r.Point(ModeSoftware, 5)
	sw20, _ := r.Point(ModeSoftware, 20)

	// Software cost grows ~linearly with tuples.
	if sw20.CyclesPerClassify < 2.5*sw5.CyclesPerClassify {
		t.Errorf("software TSS growth 5→20 tuples = %.2f, want ~4x",
			sw20.CyclesPerClassify/sw5.CyclesPerClassify)
	}
	// Non-blocking scales: its advantage grows with tuple count and beats
	// blocking mode (paper: up to 23.4x NB vs flattening B).
	if nb20.NormalizedToSoft <= nb5.NormalizedToSoft {
		t.Errorf("NB advantage shrank with tuples: %.2fx → %.2fx",
			nb5.NormalizedToSoft, nb20.NormalizedToSoft)
	}
	if nb20.NormalizedToSoft <= b20.NormalizedToSoft {
		t.Errorf("NB (%.2fx) not ahead of blocking (%.2fx) at 20 tuples",
			nb20.NormalizedToSoft, b20.NormalizedToSoft)
	}
	if nb20.NormalizedToSoft < 2.5 {
		t.Errorf("NB at 20 tuples only %.2fx", nb20.NormalizedToSoft)
	}
	// Blocking mode stays comparatively flat.
	if b20.NormalizedToSoft > b5.NormalizedToSoft*1.8 {
		t.Errorf("blocking mode scaled %.2fx → %.2fx; paper says it flattens",
			b5.NormalizedToSoft, b20.NormalizedToSoft)
	}
	// TCAM needs one search regardless of tuples: fastest by far.
	tc20, _ := r.Point(ModeTCAM, 20)
	if tc20.NormalizedToSoft < nb20.NormalizedToSoft {
		t.Error("TCAM should top tuple space search")
	}
}

func TestFig12CollocationShape(t *testing.T) {
	t.Parallel()
	r := RunFig12(QuickConfig())
	for _, nfName := range []string{"acl", "snortlite", "mtcplite"} {
		for _, flows := range []int{1_000, 100_000} {
			sw, ok1 := r.Point(nfName, flows, "software")
			ha, ok2 := r.Point(nfName, flows, "halo")
			if !ok1 || !ok2 {
				t.Fatalf("missing points for %s/%d", nfName, flows)
			}
			// Paper: software switch costs NFs 17-26%; HALO <=3.2%.
			if ha.ThroughputDrop >= sw.ThroughputDrop {
				t.Errorf("%s/%d: halo drop %.3f >= software drop %.3f",
					nfName, flows, ha.ThroughputDrop, sw.ThroughputDrop)
			}
			if ha.ThroughputDrop > 0.10 {
				t.Errorf("%s/%d: halo drop %.3f, paper <=0.032", nfName, flows, ha.ThroughputDrop)
			}
			// L1D pollution: the software switch inflates the NF's miss
			// ratio more than HALO does.
			if ha.L1MissCoRun > sw.L1MissCoRun {
				t.Errorf("%s/%d: halo L1 pollution above software's", nfName, flows)
			}
		}
		sw, _ := r.Point(nfName, 100_000, "software")
		if sw.ThroughputDrop < 0.03 {
			t.Errorf("%s: software-switch drop %.3f implausibly low", nfName, sw.ThroughputDrop)
		}
	}
}

func TestTable4PowerShape(t *testing.T) {
	t.Parallel()
	r := RunTable4(QuickConfig())
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Paper headline: up to 48.2x more energy-efficient than TCAM.
	if r.EfficiencyVs1MB < 47 || r.EfficiencyVs1MB > 50 {
		t.Errorf("efficiency vs 1MB TCAM = %.1f, paper 48.2", r.EfficiencyVs1MB)
	}
	if r.HaloAreaPercent != 1.2 {
		t.Errorf("area percent = %v", r.HaloAreaPercent)
	}
}

func TestFig13NFSpeedupShape(t *testing.T) {
	t.Parallel()
	r := RunFig13(QuickConfig())
	for _, name := range []string{"nat", "prads", "packet-filter"} {
		pt, ok := r.Point(name, 100_000)
		if !ok {
			t.Fatalf("missing %s at 100K", name)
		}
		// Paper: 2.3-2.7x; accept 1.2-4x (prads dilutes with its
		// engine-independent record update in this model).
		if pt.Speedup < 1.15 || pt.Speedup > 4 {
			t.Errorf("%s at 100K entries: speedup %.2fx, paper 2.3-2.7x", name, pt.Speedup)
		}
	}
	// Larger tables benefit at least as much as small ones.
	for _, name := range []string{"nat", "packet-filter"} {
		small, _ := r.Point(name, 1_000)
		large, _ := r.Point(name, 100_000)
		if large.Speedup < small.Speedup {
			t.Errorf("%s: speedup shrank with table size (%.2f → %.2f)",
				name, small.Speedup, large.Speedup)
		}
	}
}

func TestAblationsShape(t *testing.T) {
	t.Parallel()
	r := RunAblations(QuickConfig())
	if r.MetaCacheSpeedup < 1.02 {
		t.Errorf("metadata cache speedup %.2f; should matter", r.MetaCacheSpeedup)
	}
	// Deeper scoreboards absorb bursts better.
	if r.DepthCycles[10] >= r.DepthCycles[1] {
		t.Errorf("scoreboard depth 10 (%f) not better than depth 1 (%f) under bursts",
			r.DepthCycles[10], r.DepthCycles[1])
	}
	// By-table dispatch (metadata locality) beats round-robin.
	if r.DispatchCycles["by-table"] >= r.DispatchCycles["round-robin"] {
		t.Errorf("by-table dispatch (%f) not ahead of round-robin (%f)",
			r.DispatchCycles["by-table"], r.DispatchCycles["round-robin"])
	}
}

func TestScalingShape(t *testing.T) {
	t.Parallel()
	r := RunScaling(QuickConfig())
	for _, mode := range []Fig9Mode{ModeSoftware, ModeHaloNB} {
		one, ok1 := r.Point(mode, 1)
		many, ok2 := r.Point(mode, 15)
		if !ok1 || !ok2 {
			t.Fatalf("missing %v points", mode)
		}
		if many.LookupsPerK <= one.LookupsPerK*4 {
			t.Errorf("%v: 15 cores only %.1fx one core", mode, many.LookupsPerK/one.LookupsPerK)
		}
		if many.Efficiency < 0.4 {
			t.Errorf("%v: 15-core efficiency %.2f", mode, many.Efficiency)
		}
	}
	sw, _ := r.Point(ModeSoftware, 15)
	nb, _ := r.Point(ModeHaloNB, 15)
	if nb.LookupsPerK <= sw.LookupsPerK*2 {
		t.Errorf("HALO NB aggregate (%.0f/kcyc) not well ahead of software (%.0f/kcyc)",
			nb.LookupsPerK, sw.LookupsPerK)
	}
}

func TestUpdatesShape(t *testing.T) {
	t.Parallel()
	r := RunUpdates(QuickConfig())
	for _, size := range []int{1_000, 10_000} {
		ck, ok1 := r.Point("cuckoo", size)
		tc, ok2 := r.Point("tcam", size)
		if !ok1 || !ok2 {
			t.Fatalf("missing points at %d", size)
		}
		if ck.CyclesPerOp >= tc.CyclesPerOp {
			t.Errorf("%d entries: cuckoo update (%.0f) not cheaper than TCAM (%.0f)",
				size, ck.CyclesPerOp, tc.CyclesPerOp)
		}
	}
	// The TCAM update cost grows ~linearly with capacity; cuckoo is
	// near-constant.
	ckSmall, _ := r.Point("cuckoo", 1_000)
	ckBig, _ := r.Point("cuckoo", 10_000)
	tcSmall, _ := r.Point("tcam", 1_000)
	tcBig, _ := r.Point("tcam", 10_000)
	if tcBig.CyclesPerOp < 5*tcSmall.CyclesPerOp {
		t.Errorf("TCAM update cost grew only %.1fx for 10x entries",
			tcBig.CyclesPerOp/tcSmall.CyclesPerOp)
	}
	if ckBig.CyclesPerOp > 5*ckSmall.CyclesPerOp {
		t.Errorf("cuckoo update cost grew %.1fx for 10x entries; should be near-constant",
			ckBig.CyclesPerOp/ckSmall.CyclesPerOp)
	}
}

func TestRegistryComplete(t *testing.T) {
	t.Parallel()
	want := []string{"fig3", "fig4", "table1", "lockoverhead", "fig8", "fig9",
		"fig10", "fig11", "fig12", "table4", "fig13", "ablations", "scaling", "updates"}
	ids := IDs()
	for _, w := range want {
		found := false
		for _, id := range ids {
			if id == w {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q missing from registry", w)
		}
	}
	if _, ok := Find("fig9"); !ok {
		t.Error("Find(fig9) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) succeeded")
	}
}

func TestRunnersRenderNonEmpty(t *testing.T) {
	t.Parallel()
	// Cheap runners render actual tables (expensive ones are covered by
	// the shape tests above).
	for _, id := range []string{"table4", "fig8"} {
		r, _ := Find(id)
		var sb strings.Builder
		r.Run(QuickConfig(), &sb)
		if !strings.Contains(sb.String(), "==") {
			t.Errorf("%s rendered no table", id)
		}
	}
	var _ io.Writer = &strings.Builder{}
}
