package flowcluster

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"halo/internal/flowserve"
	"halo/internal/flowwire"
)

const testKeyLen = 20

func tkey(i uint64) []byte {
	k := make([]byte, testKeyLen)
	binary.LittleEndian.PutUint64(k, i)
	binary.LittleEndian.PutUint64(k[8:], i*0x9e3779b97f4a7c15)
	return k
}

// startCluster brings up n in-process cluster nodes on loopback listeners
// and returns their endpoints plus the backing tables (the oracle can read
// node state directly). Listeners are opened first so every node knows the
// full endpoint set before its server starts.
func startCluster(t testing.TB, n int) ([]flowwire.Endpoint, []*flowserve.Table) {
	t.Helper()
	lns := make([]net.Listener, n)
	eps := make([]flowwire.Endpoint, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		eps[i] = flowwire.Endpoint{Transport: flowwire.TransportTCP, Addr: ln.Addr().String()}
	}
	tbls := make([]*flowserve.Table, n)
	for i := range lns {
		tbl, err := flowserve.New(flowserve.Config{Shards: 4, Entries: 1 << 16, KeyLen: testKeyLen})
		if err != nil {
			t.Fatal(err)
		}
		tbls[i] = tbl
		srv, err := flowwire.NewServer(flowwire.Config{Table: tbl, Self: eps[i], Cluster: eps})
		if err != nil {
			t.Fatal(err)
		}
		serveErr := make(chan error, 1)
		ln := lns[i]
		go func() { serveErr <- srv.Serve(ln) }()
		t.Cleanup(func() {
			srv.Close()
			if err := <-serveErr; err != nil && err != flowwire.ErrServerClosed {
				t.Errorf("Serve: %v", err)
			}
		})
	}
	return eps, tbls
}

func dialRouter(t testing.TB, eps []flowwire.Endpoint) *Router {
	t.Helper()
	r, err := New(eps, Options{Client: flowwire.Options{Conns: 2}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// splitRange returns the full range of the map's i-th split.
func splitRange(m *flowwire.ShardMap, i int) flowwire.Range {
	rg := flowwire.Range{Lo: m.Splits[i].Start}
	if i+1 < len(m.Splits) {
		rg.Hi = m.Splits[i+1].Start
	}
	return rg
}

func TestClusterBasic(t *testing.T) {
	eps, tbls := startCluster(t, 3)
	r := dialRouter(t, eps)

	if r.KeyLen() != testKeyLen {
		t.Fatalf("KeyLen = %d", r.KeyLen())
	}
	if r.Epoch() != 1 {
		t.Fatalf("bootstrap epoch = %d", r.Epoch())
	}

	// Oracle: a plain map the cluster must agree with.
	const n = 2000
	oracle := make(map[uint64]uint64, n)
	for i := uint64(0); i < n; i++ {
		if err := r.Insert(tkey(i), i*3+1); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
		oracle[i] = i*3 + 1
	}
	// Keys landed spread across the nodes, not on one.
	for i, tbl := range tbls {
		if sz := tbl.Size(); sz == 0 || sz == n {
			t.Fatalf("node %d holds %d of %d keys", i, sz, n)
		}
	}
	// Duplicate insert surfaces the table's typed error through the router.
	if err := r.Insert(tkey(0), 99); err != flowserve.ErrKeyExists {
		t.Fatalf("duplicate insert = %v", err)
	}

	// Point lookups, updates, deletes.
	for i := uint64(0); i < n; i += 7 {
		if !r.Update(tkey(i), i+100) {
			t.Fatalf("Update(%d) = false", i)
		}
		oracle[i] = i + 100
	}
	for i := uint64(0); i < n; i += 13 {
		if !r.Delete(tkey(i)) {
			t.Fatalf("Delete(%d) = false", i)
		}
		delete(oracle, i)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := r.Lookup(tkey(i))
		want, wantOK := oracle[i]
		if ok != wantOK || v != want {
			t.Fatalf("Lookup(%d) = %d,%v want %d,%v", i, v, ok, want, wantOK)
		}
	}

	// Batched lookups, including misses and a bad-length key.
	keys := make([][]byte, 0, 512)
	for i := uint64(0); i < 510; i++ {
		keys = append(keys, tkey(i))
	}
	keys = append(keys, tkey(1<<40)) // never inserted
	keys = append(keys, []byte{1})   // wrong length
	results := make([]flowserve.Result, len(keys))
	hits := r.LookupMany(keys, results)
	wantHits := 0
	for i := uint64(0); i < 510; i++ {
		want, wantOK := oracle[i]
		if results[i].OK != wantOK || results[i].Value != want {
			t.Fatalf("LookupMany[%d] = %+v want %d,%v", i, results[i], want, wantOK)
		}
		if wantOK {
			wantHits++
		}
	}
	if hits != wantHits || results[510].OK || results[511].OK {
		t.Fatalf("hits = %d want %d; tail = %+v %+v", hits, wantHits, results[510], results[511])
	}

	if errs := r.Errors(); errs != 0 {
		t.Fatalf("router errors = %d", errs)
	}

	// Cluster stats rollup sees every node's serving counters.
	snap, err := r.StatsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["flowwire.frames.accepted"] == 0 {
		t.Fatalf("rollup missing server counters: %v", snap.Names())
	}
	if _, ok := snap.Counters["flowcluster.batches"]; !ok {
		t.Fatal("rollup missing router counters")
	}
}

func TestClusterMigrationUnderLoad(t *testing.T) {
	eps, tbls := startCluster(t, 3)
	r := dialRouter(t, eps)

	const n = 4000
	for i := uint64(0); i < n; i++ {
		if err := r.Insert(tkey(i), i); err != nil {
			t.Fatal(err)
		}
	}

	// Hammer the cluster from a second router while the range moves: the
	// writer keeps updating every key to a generation-stamped value, the
	// reader checks batches. A stale-map router is exactly the client a
	// live migration must not lose requests from.
	loadR := dialRouter(t, eps)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var gens [n]uint64 // gens[i] = last value the writer wrote for key i
	var genMu sync.Mutex
	wg.Add(2)
	go func() { // writer
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for gen := uint64(1); ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			i := rng.Uint64() % n
			v := gen<<32 | i
			if !loadR.Update(tkey(i), v) {
				// A miss here is a real loss: the key was inserted and
				// never deleted.
				select {
				case <-stop:
				default:
					panic(fmt.Sprintf("Update(%d) lost mid-migration", i))
				}
				return
			}
			genMu.Lock()
			gens[i] = v
			genMu.Unlock()
		}
	}()
	go func() { // batched reader
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		keys := make([][]byte, 64)
		results := make([]flowserve.Result, 64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for j := range keys {
				keys[j] = tkey(rng.Uint64() % n)
			}
			loadR.LookupMany(keys, results)
			for j := range results {
				if !results[j].OK {
					panic(fmt.Sprintf("LookupMany lost key %x mid-migration", keys[j]))
				}
			}
		}
	}()

	// Move node 0's whole range to node 1, then a sub-range of node 2's to
	// node 0 — two cutovers under load.
	m := r.Map()
	rg0 := splitRange(m, 0)
	mi, err := r.MoveRange(rg0, 1, 10*time.Second)
	if err != nil {
		t.Fatalf("MoveRange 1: %v (ledger %+v)", err, mi)
	}
	if !mi.Done || mi.Enqueued != mi.Sent || mi.Sent != mi.Acked || mi.Snapshotted == 0 {
		t.Fatalf("ledger after move 1: %+v", mi)
	}
	if r.Epoch() != 2 {
		t.Fatalf("epoch after move 1 = %d", r.Epoch())
	}

	m = r.Map()
	for i := range m.Splits {
		rg := splitRange(m, i)
		if own, ok := m.RangeOwner(rg); ok && own == 2 {
			// Halve it so node 2 keeps some keys.
			mid := rg.Lo + (rg.Hi-rg.Lo)/2
			if rg.Hi == 0 {
				mid = rg.Lo + (^uint64(0)-rg.Lo)/2
			}
			sub := flowwire.Range{Lo: rg.Lo, Hi: mid}
			mi, err = r.MoveRange(sub, 0, 10*time.Second)
			if err != nil {
				t.Fatalf("MoveRange 2: %v (ledger %+v)", err, mi)
			}
			break
		}
	}
	if r.Epoch() != 3 {
		t.Fatalf("epoch after move 2 = %d", r.Epoch())
	}

	close(stop)
	wg.Wait()

	// Node 0 surrendered its whole original range but gained half of node
	// 2's; node 0's table must hold only keys it now owns, and the losing
	// node purged the moved range.
	nm := r.Map()
	for ni, tbl := range tbls {
		tbl.ScanRange(0, 0, func(key []byte, _ uint64) {
			if own := nm.OwnerOfKey(key); own != ni {
				t.Errorf("node %d still holds key %x owned by node %d", ni, key, own)
			}
		})
	}

	// Every key is still present exactly once with the last written value
	// (or its insert value if the writer never touched it).
	genMu.Lock()
	defer genMu.Unlock()
	for i := uint64(0); i < n; i++ {
		v, ok := r.Lookup(tkey(i))
		if !ok {
			t.Fatalf("key %d lost after migrations", i)
		}
		want := gens[i]
		if want == 0 {
			want = i
		}
		if v != want {
			t.Fatalf("key %d = %#x, want %#x", i, v, want)
		}
	}
	if errs := loadR.Errors(); errs != 0 {
		t.Fatalf("load router errors = %d", errs)
	}
	if errs := r.Errors(); errs != 0 {
		t.Fatalf("coordinator router errors = %d", errs)
	}
}

// TestClusterPropertyVsOracle runs randomized concurrent workers — each
// owning a disjoint key partition with a local model map — against the
// cluster while the main goroutine keeps moving ranges between nodes. Every
// worker verifies every operation's result against its model as it goes
// (per-partition ordering makes the model exact without cross-worker
// coordination), then does a final full sweep. Run under -race in CI with a
// migration permanently in flight.
func TestClusterPropertyVsOracle(t *testing.T) {
	eps, _ := startCluster(t, 3)
	r := dialRouter(t, eps)

	const (
		workers      = 4
		keysPerPart  = 512
		opsPerWorker = 3000
	)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wr := dialRouter(t, eps)
			rng := rand.New(rand.NewSource(int64(100 + w)))
			model := make(map[uint64]uint64, keysPerPart)
			base := uint64(w) * keysPerPart
			fail := func(format string, args ...any) {
				errc <- fmt.Errorf("worker %d: %s", w, fmt.Sprintf(format, args...))
			}
			for op := 0; op < opsPerWorker; op++ {
				i := base + rng.Uint64()%keysPerPart
				key := tkey(i)
				switch rng.Intn(10) {
				case 0, 1: // insert
					err := wr.Insert(key, uint64(op)<<16|i)
					if _, exists := model[i]; exists {
						if err != flowserve.ErrKeyExists {
							fail("Insert(%d) on existing = %v", i, err)
							return
						}
					} else if err != nil {
						fail("Insert(%d) = %v", i, err)
						return
					} else {
						model[i] = uint64(op)<<16 | i
					}
				case 2, 3: // update
					found := wr.Update(key, uint64(op)<<16|i)
					if _, exists := model[i]; found != exists {
						fail("Update(%d) = %v, model says %v", i, found, exists)
						return
					}
					if found {
						model[i] = uint64(op)<<16 | i
					}
				case 4: // delete
					found := wr.Delete(key)
					if _, exists := model[i]; found != exists {
						fail("Delete(%d) = %v, model says %v", i, found, exists)
						return
					}
					delete(model, i)
				case 5, 6, 7: // point lookup
					v, ok := wr.Lookup(key)
					want, wantOK := model[i]
					if ok != wantOK || v != want {
						fail("Lookup(%d) = %d,%v want %d,%v", i, v, ok, want, wantOK)
						return
					}
				default: // batch lookup of 16 partition keys
					keys := make([][]byte, 16)
					idx := make([]uint64, 16)
					for j := range keys {
						idx[j] = base + rng.Uint64()%keysPerPart
						keys[j] = tkey(idx[j])
					}
					results := make([]flowserve.Result, 16)
					wr.LookupMany(keys, results)
					for j := range results {
						want, wantOK := model[idx[j]]
						if results[j].OK != wantOK || results[j].Value != want {
							fail("LookupMany(%d) = %+v want %d,%v", idx[j], results[j], want, wantOK)
							return
						}
					}
				}
			}
			// Final sweep: the whole partition matches the model.
			for i := base; i < base+keysPerPart; i++ {
				v, ok := wr.Lookup(tkey(i))
				want, wantOK := model[i]
				if ok != wantOK || v != want {
					fail("final Lookup(%d) = %d,%v want %d,%v", i, v, ok, want, wantOK)
					return
				}
			}
			if errs := wr.Errors(); errs != 0 {
				fail("router errors = %d", errs)
			}
		}(w)
	}

	// Keep cutting ranges over while the workers run: pick a split, move
	// half of it to a different node. Every move bumps the epoch, so every
	// worker keeps getting redirected off its stale map.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	rng := rand.New(rand.NewSource(7))
	moves := 0
mover:
	for {
		select {
		case <-done:
			break mover
		default:
		}
		m := r.Map()
		i := rng.Intn(len(m.Splits))
		rg := splitRange(m, i)
		var mid uint64
		if rg.Hi == 0 {
			mid = rg.Lo + (^uint64(0)-rg.Lo)/2
		} else {
			mid = rg.Lo + (rg.Hi-rg.Lo)/2
		}
		if mid <= rg.Lo {
			continue
		}
		sub := flowwire.Range{Lo: rg.Lo, Hi: mid}
		src, ok := m.RangeOwner(sub)
		if !ok {
			continue
		}
		dst := (src + 1 + rng.Intn(2)) % 3
		if dst == src {
			continue
		}
		if _, err := r.MoveRange(sub, dst, 10*time.Second); err != nil {
			t.Errorf("MoveRange %s -> %d: %v", sub, dst, err)
			break
		}
		moves++
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if moves == 0 {
		t.Error("no migrations completed during property run")
	}
	t.Logf("property run survived %d migrations, final epoch %d", moves, r.Epoch())
}

// TestWrongShardDirect drives a raw single-node client at a cluster node and
// checks the typed WRONG_SHARD redirect surfaces with the server's epoch —
// the contract the router's redirect loop is built on.
func TestWrongShardDirect(t *testing.T) {
	eps, _ := startCluster(t, 3)
	r := dialRouter(t, eps)
	m := r.Map()

	// Find a key owned by node 1, then ask node 0 for it directly.
	var key []byte
	for i := uint64(0); ; i++ {
		if m.OwnerOfKey(tkey(i)) == 1 {
			key = tkey(i)
			break
		}
	}
	if err := r.Insert(key, 77); err != nil {
		t.Fatal(err)
	}
	cl, err := flowwire.DialEndpoint(eps[0], flowwire.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	_, _, err = cl.LookupE(key)
	var ws *flowwire.WrongShardError
	if !asWrongShard(err, &ws) || ws.Epoch != m.Epoch {
		t.Fatalf("LookupE at wrong node = %v, want WrongShardError epoch %d", err, m.Epoch)
	}
	if _, err := cl.UpdateE(key, 1); !asWrongShard(err, &ws) {
		t.Fatalf("UpdateE at wrong node = %v", err)
	}
	if _, err := cl.DeleteE(key); !asWrongShard(err, &ws) {
		t.Fatalf("DeleteE at wrong node = %v", err)
	}
	if err := cl.Insert(key, 1); !asWrongShard(err, &ws) {
		t.Fatalf("Insert at wrong node = %v", err)
	}
	// The untyped Lookup coerces the redirect to a miss without wedging the
	// connection.
	if _, ok := cl.Lookup(key); ok {
		t.Fatal("untyped Lookup at wrong node = hit")
	}
	if err := cl.Err(); err != nil {
		t.Fatalf("connection wedged: %v", err)
	}

	// HELLO advertises the cluster identity.
	h := cl.Hello()
	if h.Epoch != m.Epoch || h.NodeID != 0 {
		t.Fatalf("HELLO = %+v, want epoch %d node 0", h, m.Epoch)
	}
}

func asWrongShard(err error, ws **flowwire.WrongShardError) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*flowwire.WrongShardError)
	if ok {
		*ws = e
	}
	return ok
}
