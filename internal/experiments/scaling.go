package experiments

import (
	"fmt"
	"io"

	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/metrics"
	"halo/internal/stats"
)

// ScalingPoint is one (mode, core count) aggregate-throughput measurement.
type ScalingPoint struct {
	Mode        Fig9Mode
	Cores       int
	LookupsPerK float64 // aggregate lookups per 1000 cycles
	Efficiency  float64 // throughput / (cores × single-core throughput)
}

// ScalingResult is an extension beyond the paper's figures: aggregate
// lookup throughput against one shared flow table as PMD threads are added,
// with a concurrent updater thread churning rules. It quantifies the §3.4
// claim that software locking and core-to-core communication limit
// scalability while HALO's hardware lock does not.
type ScalingResult struct {
	Points []ScalingPoint
	Table  *metrics.Table
}

// scalingCell is one (mode, core count) coordinate.
type scalingCell struct {
	mode  Fig9Mode
	cores int
}

func scalingCoreCounts(cfg Config) []int {
	if cfg.Quick {
		return []int{1, 4, 15}
	}
	return []int{1, 2, 4, 8, 15}
}

func scalingCells(cfg Config) []scalingCell {
	var cells []scalingCell
	for _, mode := range []Fig9Mode{ModeSoftware, ModeHaloB, ModeHaloNB} {
		for _, n := range scalingCoreCounts(cfg) {
			cells = append(cells, scalingCell{mode, n})
		}
	}
	return cells
}

// ScalingSweep decomposes the scaling study into one point per (mode,
// core count); each point simulates its own lockstep multi-thread run.
func ScalingSweep() Sweep {
	return Sweep{
		Points: func(cfg Config) []Point {
			cells := scalingCells(cfg)
			pts := make([]Point, len(cells))
			for i, c := range cells {
				pts[i] = Point{Experiment: "scaling", Index: i,
					Label: fmt.Sprintf("%s/%d-cores", c.mode, c.cores)}
			}
			return pts
		},
		RunPoint: func(cfg Config, p Point) any {
			c := scalingCells(cfg)[p.Index]
			snap := pointSnapshot(cfg)
			row := runScalingPoint(c.mode, c.cores, pickSize(cfg, 300, 1500), snap)
			recordSnap(cfg, p, snap)
			return row
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			assembleScaling(cfg, rows).Table.Render(w)
		},
	}
}

// RunScaling measures multicore scaling for the software and HALO paths.
func RunScaling(cfg Config) *ScalingResult {
	return assembleScaling(cfg, runSerial(cfg, ScalingSweep()))
}

func assembleScaling(cfg Config, rows []any) *ScalingResult {
	res := &ScalingResult{
		Table: metrics.NewTable("Scaling (extension): shared-table lookup throughput vs cores",
			"mode", "cores", "lookups/kcycle", "efficiency"),
	}
	res.Table.SetCaption("one updater thread churns the table; core 15 is reserved for it")

	i := 0
	for _, mode := range []Fig9Mode{ModeSoftware, ModeHaloB, ModeHaloNB} {
		var single float64
		for _, n := range scalingCoreCounts(cfg) {
			tput := rows[i].(float64)
			i++
			if single == 0 {
				single = tput
			}
			pt := ScalingPoint{
				Mode: mode, Cores: n,
				LookupsPerK: tput * 1000,
				Efficiency:  tput / (float64(n) * single),
			}
			res.Points = append(res.Points, pt)
			res.Table.AddRow(string(mode), n, pt.LookupsPerK, fmt.Sprintf("%.2f", pt.Efficiency))
		}
	}
	return res
}

// Point fetches a measurement.
func (r *ScalingResult) Point(mode Fig9Mode, cores int) (ScalingPoint, bool) {
	for _, pt := range r.Points {
		if pt.Mode == mode && pt.Cores == cores {
			return pt, true
		}
	}
	return ScalingPoint{}, false
}

// runScalingPoint runs n lookup threads plus one updater in lockstep rounds
// and returns aggregate lookups per cycle.
func runScalingPoint(mode Fig9Mode, n, rounds int, snap *stats.Snapshot) float64 {
	f := newLookupFixture(1<<15, 0.60)
	p := f.p
	threads := make([]*cpu.Thread, n)
	for i := range threads {
		threads[i] = cpu.NewThread(p.Hier, i)
	}
	updater := cpu.NewThread(p.Hier, 15)
	writeSeq := f.fill

	// Per-thread key buffers for the HALO path (packet-buffer style).
	keyBufs := make([]mem.Addr, n)
	for i := range keyBufs {
		keyBufs[i] = p.Alloc.AllocLines(8)
	}
	var sb [testKeyLen]byte
	stage := func(ti int, slot int, k uint64) mem.Addr {
		addr := keyBufs[ti] + mem.Addr(slot)*mem.LineSize
		testKeyInto(k%f.fill, sb[:])
		p.Space.WriteAt(addr, sb[:])
		p.Hier.DMAWrite(addr)
		return addr
	}

	const batch = 8
	opts := cuckoo.LookupOptions{OptimisticLock: true, Prefetch: false}
	lookupsPerRound := n * batch

	sync := func() {
		max := updater.Now
		for _, th := range threads {
			if th.Now > max {
				max = th.Now
			}
		}
		updater.WaitUntil(max)
		for _, th := range threads {
			th.WaitUntil(max)
		}
	}

	// Warm rounds, then measured rounds. Threads run in lockstep: a round's
	// duration is the slowest thread's, which is what wall-clock parallel
	// execution would show.
	var kb, wb [testKeyLen]byte
	qs := make([]halo.NBQuery, batch)
	rs := make([]halo.NBResult, batch)
	run := func(nr int, base uint64) {
		for r := 0; r < nr; r++ {
			for ti, th := range threads {
				k := base + uint64(r*lookupsPerRound+ti*batch)
				switch mode {
				case ModeSoftware:
					for j := 0; j < batch; j++ {
						testKeyInto((k+uint64(j))*13%f.fill, kb[:])
						f.table.TimedLookup(th, kb[:], opts)
					}
				case ModeHaloB:
					for j := 0; j < batch; j++ {
						p.Unit.LookupBAt(th, f.table.Base(), stage(ti, 0, (k+uint64(j))*13))
					}
				default:
					for j := 0; j < batch; j++ {
						qs[j] = halo.NBQuery{
							TableAddr: f.table.Base(),
							KeyAddr:   stage(ti, j, (k+uint64(j))*13),
						}
					}
					p.Unit.LookupManyNBInto(th, qs, rs)
				}
			}
			// The updater inserts one rule per round (rule churn).
			testKeyInto(writeSeq, wb[:])
			_ = f.table.TimedInsert(updater, wb[:], writeSeq)
			writeSeq++
			sync()
		}
	}
	run(rounds/4, 7)
	start := threads[0].Now
	run(rounds, 0)
	collectInto(snap, p, updater)
	for _, th := range threads {
		collectInto(snap, th)
	}
	elapsed := float64(threads[0].Now - start)
	return float64(rounds*lookupsPerRound) / elapsed
}
