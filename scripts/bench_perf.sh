#!/bin/sh
# bench_perf.sh [out.json] — produce the canonical halo-bench/v1 perf
# document. This ONE script is used both to regenerate the committed
# baseline (baselines/BENCH_perf.json) and by CI to produce the fresh
# document benchdiff gates against it, so the stamped workload identity
# (seeds + config) is identical by construction — cmd/benchdiff refuses to
# compare documents whose identity differs.
#
# Regenerate the baseline after an intentional perf-relevant change:
#
#   scripts/bench_perf.sh baselines/BENCH_perf.json
#
# ns/op in these documents is machine-dependent; the committed baseline is
# only gated on allocs/op (see .github/workflows/ci.yml), which is
# machine-independent for a fixed toolchain.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_perf.json}"

go test -run NONE -bench 'RunAllSerial|Fig9SingleLookup' -benchmem -benchtime 1x . |
    go run ./cmd/benchjson \
        -seeds 0x48414c4f \
        -config "bench=RunAllSerial|Fig9SingleLookup" \
        -config benchtime=1x \
        -o "$out"
