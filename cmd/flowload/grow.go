package main

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"halo/internal/benchjson"
	"halo/internal/flowserve"
	"halo/internal/packet"
	"halo/internal/stats"
	"halo/internal/trafficgen"
)

// The -grow workload measures lookup latency while the table is actively
// resizing. It sizes the table so the flow population forces a configured
// number of shard doublings (initial capacity = final >> doublings, auto-grow
// on), installs a prefix that fits the initial capacity, then runs two
// phases against the same table:
//
//   - migration phase: readers serve Zipf lookups over the installed prefix
//     while a grower goroutine floods in the rest of the population, tripping
//     doubling after doubling; batch latencies observed while a shard is
//     mid-migration land in the migration histogram;
//   - steady phase: migration fully drained, the same readers serve the full
//     population while a churn writer updates flows in place at the grower's
//     pace — the baseline the migration tail is compared against. Both phases
//     carry exactly one writer, so the p99 ratio isolates the resize cost
//     (two-region probes, migration-step seqlock windows) instead of
//     conflating it with writer contention that only one arm pays.
//
// Every key a reader draws is already installed and never deleted, so every
// lookup must hit with the flow's own value: any miss or wrong value is a
// hard error. With -check the point also gates served == issued (the
// flowserve.lookups ledger), >= doublings grows per shard, and
// migration-p99 <= -growp99x x steady-p99 — the bounded-pause claim of
// DESIGN.md §12 as an executable assertion.

// growPhaseResult is one phase's reader-side tally.
type growPhaseResult struct {
	issued  int64
	elapsed time.Duration
	missing int64
	wrong   int64
	// migration phase only: batches split by whether a resize was in flight
	// when the batch was issued.
	migHist    *stats.Histogram
	steadyHist *stats.Histogram
}

// runGrowSweep runs the grow point for every shard count.
func runGrowSweep(cfg sweepConfig, shardCounts []int, doublings int, p99x float64) {
	w, keys := buildWorkload("zipf", cfg.flows, cfg.seed)
	fmt.Printf("%-44s %10s %12s %12s %12s %7s %7s\n",
		"point", "lookups", "Mlookups/s", "mig-p99-us", "std-p99-us", "ratio", "grows")
	for _, sc := range shardCounts {
		runGrowPoint(cfg, w, keys, sc, doublings, p99x)
	}
}

func runGrowPoint(cfg sweepConfig, w *trafficgen.Workload, keys [][]byte, sc, doublings int, p99x float64) {
	// Final capacity the population needs (same 12% headroom as the local
	// sweep), shifted down so reaching it takes exactly `doublings` doublings.
	final := uint64(len(keys)) + uint64(len(keys))/8 + 1024
	initial := final >> doublings
	if min := uint64(sc) * flowserve.EntriesPerBucket; initial < min {
		initial = min
	}
	tbl, err := flowserve.New(flowserve.Config{
		Shards:  sc,
		Entries: initial,
		KeyLen:  packet.HeaderKeyLen,
		GrowAt:  0.8,
	})
	if err != nil {
		fatalf("New: %v", err)
	}

	// Install a prefix that fits the initial capacity comfortably.
	prefix := int(initial * 6 / 10)
	if prefix < 1 {
		prefix = 1
	}
	if prefix > len(keys) {
		prefix = len(keys)
	}
	for i := 0; i < prefix; i++ {
		if err := tbl.Insert(keys[i], valueOf(i)); err != nil {
			fatalf("install flow %d: %v", i, err)
		}
	}

	snapBefore := stats.NewSnapshot()
	tbl.CollectInto(snapBefore)

	// installed is the reader-visible high-water mark: keys[0:installed) are
	// inserted and never removed, so lookups drawn below it must hit.
	var installed atomic.Int64
	installed.Store(int64(prefix))
	var growerDone atomic.Bool

	// Migration phase: grower floods the rest of the population in while
	// readers serve. The grower finishes by draining any in-flight migration
	// so the steady phase starts from a clean single-region state.
	var growerWg sync.WaitGroup
	growerWg.Add(1)
	go func() {
		defer growerWg.Done()
		for i := prefix; i < len(keys); i++ {
			if err := tbl.Insert(keys[i], valueOf(i)); err != nil {
				fatalf("grow insert %d (capacity %d): %v", i, tbl.Capacity(), err)
			}
			installed.Store(int64(i + 1))
			if i%256 == 0 {
				runtime.Gosched()
			}
		}
		for tbl.ResizeStep(64) {
			runtime.Gosched()
		}
		growerDone.Store(true)
	}()
	mig := runGrowPhase(w, keys, tbl, cfg, &installed, func(int64) bool {
		return growerDone.Load()
	})
	growerWg.Wait()

	// Steady phase: full population, same readers, plus a churn writer
	// updating flows in place (same value, so read verification still holds)
	// at the grower's pace. Matching the writer load between phases keeps the
	// comparison honest: without it the migration arm pays single-core writer
	// contention the steady arm never sees, and the ratio measures scheduling
	// instead of resize.
	var churnStop atomic.Bool
	var churnWg sync.WaitGroup
	churnWg.Add(1)
	go func() {
		defer churnWg.Done()
		for i := 0; !churnStop.Load(); i++ {
			fi := i % len(keys)
			if !tbl.Update(keys[fi], valueOf(fi)) {
				fatalf("steady churn update %d: key missing", fi)
			}
			if i%256 == 0 {
				runtime.Gosched()
			}
		}
	}()
	steady := runGrowPhase(w, keys, tbl, cfg, &installed, func(issued int64) bool {
		return issued > cfg.ops
	})
	churnStop.Store(true)
	churnWg.Wait()

	snapAfter := stats.NewSnapshot()
	tbl.CollectInto(snapAfter)
	delta := counterDelta(snapBefore.Counters, snapAfter.Counters)

	issued := mig.issued + steady.issued
	served := int64(delta["flowserve.lookups"])
	grows := int64(delta["flowserve.grows"])
	missing := mig.missing + steady.missing
	wrong := mig.wrong + steady.wrong
	name := fmt.Sprintf("FlowServeGrow/mix=zipf/shards=%d/doublings=%d", sc, doublings)
	if wrong > 0 || missing > 0 {
		fatalf("%s: %d wrong values, %d misses of installed keys", name, wrong, missing)
	}

	migP99 := mig.migHist.Quantile(0.99)
	stdP99 := steady.steadyHist.Quantile(0.99)
	ratio := 0.0
	if stdP99 > 0 {
		ratio = float64(migP99) / float64(stdP99)
	}
	totalSec := mig.elapsed.Seconds() + steady.elapsed.Seconds()
	mlps := float64(issued) / totalSec / 1e6
	fmt.Printf("%-44s %10d %12.2f %12.1f %12.1f %7.2f %7d\n",
		name, issued, mlps,
		float64(migP99)/1e3/float64(cfg.batch),
		float64(stdP99)/1e3/float64(cfg.batch),
		ratio, grows)
	fmt.Fprintf(os.Stderr,
		"  %s: issued %d served %d; %d migration batches, %d steady; pause p99 %dns; %d migrated keys\n",
		name, issued, served, mig.migHist.Count(), steady.steadyHist.Count(),
		snapAfter.Counters["flowserve.resize.pause_p99_ns"], delta["flowserve.resize.migrated_keys"])

	if cfg.check {
		if served != issued {
			fatalf("%s: check failed: lookup ledger off by %d (issued %d, served %d)",
				name, served-issued, issued, served)
		}
		if grows < int64(sc)*int64(doublings) {
			fatalf("%s: check failed: %d grows across %d shards, want >= %d doublings each",
				name, grows, sc, doublings)
		}
		if mig.migHist.Count() == 0 {
			fatalf("%s: check failed: no batches observed while a migration was in flight", name)
		}
		if stdP99 == 0 || ratio > p99x {
			fatalf("%s: check failed: migration p99 %dns is %.2fx steady p99 %dns (bound %.2fx)",
				name, migP99, ratio, stdP99, p99x)
		}
		fmt.Fprintf(os.Stderr, "  check: ledger balanced, %d grows, migration p99 %.2fx steady (bound %.2fx)\n",
			grows, ratio, p99x)
	}

	cfg.doc.Benchmarks = append(cfg.doc.Benchmarks, benchjson.Benchmark{
		Name:       name,
		Procs:      cfg.workers,
		Iterations: issued,
		Metrics: map[string]float64{
			"ns/op":                 1e9 * totalSec / float64(issued),
			"lookups/sec":           float64(issued) / totalSec,
			"batch":                 float64(cfg.batch),
			"migration-p50-batch-ns": float64(mig.migHist.Quantile(0.50)),
			"migration-p99-batch-ns": float64(migP99),
			"migration-p999-batch-ns": float64(mig.migHist.Quantile(0.999)),
			"steady-p50-batch-ns":   float64(steady.steadyHist.Quantile(0.50)),
			"steady-p99-batch-ns":   float64(stdP99),
			"steady-p999-batch-ns":  float64(steady.steadyHist.Quantile(0.999)),
			"p99-ratio":             ratio,
			"grows":                 float64(grows),
			"migrated-keys":         float64(delta["flowserve.resize.migrated_keys"]),
			"migrated-buckets":      float64(delta["flowserve.resize.migrated_buckets"]),
			"resize-steps":          float64(delta["flowserve.resize.steps"]),
			"resize-stalls":         float64(delta["flowserve.resize.stalls"]),
			"pause-p50-ns":          float64(snapAfter.Counters["flowserve.resize.pause_p50_ns"]),
			"pause-p99-ns":          float64(snapAfter.Counters["flowserve.resize.pause_p99_ns"]),
			"pause-max-ns":          float64(snapAfter.Counters["flowserve.resize.pause_max_ns"]),
		},
	})
}

// runGrowPhase serves batched Zipf lookups from cfg.workers goroutines until
// stop(issued) reports done. Keys are drawn modulo the installed high-water
// mark, so every lookup targets a live flow. Batches issued while a resize is
// in flight are observed into migHist, the rest into steadyHist.
func runGrowPhase(w *trafficgen.Workload, keys [][]byte, tbl *flowserve.Table, cfg sweepConfig,
	installed *atomic.Int64, stop func(issued int64) bool) growPhaseResult {

	var (
		issued  atomic.Int64
		missing atomic.Int64
		wrong   atomic.Int64
		wg      sync.WaitGroup
		histMu  sync.Mutex
	)
	migAll := stats.NewHistogramRes(stats.HighResSubBits)
	steadyAll := stats.NewHistogramRes(stats.HighResSubBits)
	start := time.Now()
	for wi := 0; wi < cfg.workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rd := tbl.NewPinnedReader()
			stream := w.NewStream(cfg.seed ^ (0x6e0a + uint64(wi)*0x9e3779b97f4a7c15))
			bkeys := make([][]byte, cfg.batch)
			bidx := make([]int, cfg.batch)
			results := make([]flowserve.Result, cfg.batch)
			migHist := stats.NewHistogramRes(stats.HighResSubBits)
			steadyHist := stats.NewHistogramRes(stats.HighResSubBits)
			for {
				claimed := issued.Add(int64(cfg.batch))
				if stop(claimed) {
					issued.Add(-int64(cfg.batch))
					break
				}
				inst := int(installed.Load())
				for j := 0; j < cfg.batch; j++ {
					fi := stream.NextFlow()
					if fi >= inst {
						fi %= inst
					}
					bidx[j] = fi
					bkeys[j] = keys[fi]
				}
				resizing := tbl.Resizing()
				t0 := time.Now()
				rd.LookupMany(bkeys, results)
				ns := uint64(time.Since(t0).Nanoseconds())
				if resizing {
					migHist.Observe(ns)
				} else {
					steadyHist.Observe(ns)
				}
				for j := 0; j < cfg.batch; j++ {
					switch {
					case !results[j].OK:
						missing.Add(1)
					case results[j].Value != valueOf(bidx[j]):
						wrong.Add(1)
					}
				}
			}
			histMu.Lock()
			migAll.Merge(migHist)
			steadyAll.Merge(steadyHist)
			histMu.Unlock()
		}(wi)
	}
	wg.Wait()
	return growPhaseResult{
		issued:     issued.Load(),
		elapsed:    time.Since(start),
		missing:    missing.Load(),
		wrong:      wrong.Load(),
		migHist:    migAll,
		steadyHist: steadyAll,
	}
}
