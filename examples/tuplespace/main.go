// Tuple space search: the paper's Fig. 11 scenario as a runnable program.
// A MegaFlow-style classifier holds several wildcard rule tables (tuples);
// classifying a packet means probing every tuple. Software probes them
// sequentially; HALO's non-blocking lookups probe them all at once.
//
// Each mode runs on a fresh simulated platform, mirroring the paper's
// separate simulator runs: comparing modes on one platform would let the
// first pass's private-cache state distort the second's.
package main

import (
	"fmt"

	"halo"
)

const (
	tuples       = 12
	rulesPerTupl = 512
	lookups      = 1500
)

// build installs the rule set and returns matching query keys.
func build(sys *halo.System) (*halo.TupleSpace, []halo.FiveTuple) {
	ts := sys.NewTupleSpace(true /* first match */, 16384)
	var keys []halo.FiveTuple
	rule := uint32(1)
	for mi := 0; mi < tuples; mi++ {
		mask := halo.Mask{
			SrcIPBits: uint8(4 + mi), DstIPBits: 0,
			SrcPortWild: true, DstPortWild: false, ProtoWild: true,
		}
		for r := 0; r < rulesPerTupl; r++ {
			// The destination port survives every mask, so varying it per
			// rule keeps masked keys distinct under wide wildcards.
			pattern := halo.FiveTuple{
				SrcIP:   uint32(0x0a000000 + mi*0x100000 + r*64),
				DstIP:   uint32(0xc0a80000 + r),
				SrcPort: uint16(1024 + r),
				DstPort: uint16(1000 + mi*1000 + r),
				Proto:   17,
			}
			if err := ts.InsertRule(mask, pattern, halo.Match{
				RuleID: rule, Priority: uint16(100 - mi),
			}); err != nil {
				panic(err)
			}
			rule++
			keys = append(keys, mask.Apply(pattern))
		}
	}
	for _, tp := range ts.Tuples() {
		sys.WarmTable(tp.Table)
	}
	return ts, keys
}

func measure(mode string) float64 {
	sys := halo.New()
	ts, keys := build(sys)
	th := sys.Thread(0)
	classify := func(k halo.FiveTuple) bool {
		switch mode {
		case "software":
			_, ok := ts.ClassifyTimed(th, k, halo.LookupOptions{OptimisticLock: true})
			return ok
		case "halo-b":
			_, ok := ts.ClassifyHaloB(th, sys.Unit(), k)
			return ok
		default:
			_, ok := ts.ClassifyHaloNB(th, sys.Unit(), k)
			return ok
		}
	}
	for i := 0; i < lookups/2; i++ { // warm
		classify(keys[(i*37)%len(keys)])
	}
	start := th.Now
	for i := 0; i < lookups; i++ {
		if !classify(keys[(i*41)%len(keys)]) {
			panic("classification missed")
		}
	}
	return float64(th.Now-start) / lookups
}

func main() {
	fmt.Printf("tuple space search: %d tuples x %d rules\n", tuples, rulesPerTupl)
	software := measure("software")
	blocking := measure("halo-b")
	nonBlocking := measure("halo-nb")
	fmt.Printf("  software (sequential probes):  %6.1f cycles/classification\n", software)
	fmt.Printf("  HALO blocking:                 %6.1f cycles/classification (%.2fx)\n",
		blocking, software/blocking)
	fmt.Printf("  HALO non-blocking (parallel):  %6.1f cycles/classification (%.2fx)\n",
		nonBlocking, software/nonBlocking)
	fmt.Println("paper Fig. 11: non-blocking HALO scales tuple space search; blocking flattens.")
}
