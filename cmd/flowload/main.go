// Command flowload drives the flowserve runtime with live goroutine traffic
// — the serving-side counterpart of halobench's simulated experiments. It
// installs a trafficgen flow population into a sharded table, then hammers
// it from concurrent workers drawing uniform or Zipf flow mixes (plus an
// optional churn of concurrent inserts/deletes), and reports throughput and
// batch-latency quantiles per shard count.
//
// Usage:
//
//	flowload                                  # default sweep (1,2,4,8 shards × uniform,zipf)
//	flowload -flows 200000 -ops 5000000       # bigger table, longer run
//	flowload -shards 1,16 -mix uniform        # specific points
//	flowload -json BENCH_serve.json           # write the halo-bench/v1 document
//	flowload -check                           # exit non-zero unless max-shard uniform
//	                                          # throughput beats 1-shard
//	flowload -smoke                           # small fast settings for CI
//
// Every lookup is verified against the installed flow population: a wrong
// value is a hard error (the concurrent analogue of halobench's -verify).
// The -json document uses the same halo-bench/v1 schema as BENCH_perf.json,
// so serving results land in CI artifacts next to the simulator benchmarks.
// Timing-derived numbers are machine-dependent; the document is an artifact,
// not a golden file.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"halo/internal/benchjson"
	"halo/internal/flowserve"
	"halo/internal/packet"
	"halo/internal/stats"
	"halo/internal/trafficgen"
)

func main() {
	var (
		flows    = flag.Int("flows", 100_000, "flow population size")
		mixFlag  = flag.String("mix", "uniform,zipf", "comma-separated flow mixes (uniform, zipf)")
		shardsFl = flag.String("shards", "1,2,4,8", "comma-separated shard counts to sweep")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent load-generator goroutines")
		ops      = flag.Int64("ops", 2_000_000, "total lookups per sweep point")
		batch    = flag.Int("batch", 16, "keys per LookupMany call (1 = single-key Lookup)")
		churn    = flag.Int("churn", 64, "issue one delete+reinsert per this many lookups per worker (0 = read-only)")
		seed     = flag.Uint64("seed", 0x464c4f57, "workload seed")
		jsonPath = flag.String("json", "", "write the halo-bench/v1 document to this file")
		check    = flag.Bool("check", false, "fail unless uniform throughput at max shards beats 1 shard")
		smoke    = flag.Bool("smoke", false, "small fast settings for CI (overrides -flows/-ops)")
	)
	flag.Parse()

	workersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})
	if *smoke {
		*flows = 20_000
		*ops = 400_000
		if !workersSet {
			// Always run with real concurrency, even on small CI boxes:
			// the point of smoke is exercising the concurrent read path.
			*workers = 4
		}
	}
	shardCounts, err := parseInts(*shardsFl)
	if err != nil {
		fatalf("bad -shards: %v", err)
	}
	mixes := strings.Split(*mixFlag, ",")
	if *workers < 1 || *batch < 1 || *ops < 1 || *flows < 1 {
		fatalf("-workers, -batch, -ops and -flows must be positive")
	}

	doc := &benchjson.Document{
		Schema:     benchjson.SchemaVersion,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: []benchjson.Benchmark{},
	}
	fmt.Printf("%-34s %10s %12s %10s %10s %10s %10s\n",
		"point", "lookups", "Mlookups/s", "p50-us", "p95-us", "p99-us", "retries")

	// throughput[mix][shards] for the -check gate.
	throughput := map[string]map[int]float64{}

	for _, mix := range mixes {
		pop, err := popularityOf(mix)
		if err != nil {
			fatalf("%v", err)
		}
		scn := trafficgen.Scenario{Name: "serve-" + mix, Flows: *flows, Rules: 1, Popularity: pop}
		w := trafficgen.Generate(scn, *seed)
		keys := buildKeys(w)
		for _, sc := range shardCounts {
			res := runPoint(w, keys, pointConfig{
				shards:  sc,
				workers: *workers,
				ops:     *ops,
				batch:   *batch,
				churn:   *churn,
				seed:    *seed,
			})
			if res.wrongValues > 0 {
				fatalf("%s/shards=%d: %d lookups returned a wrong value", mix, sc, res.wrongValues)
			}
			if *churn == 0 && res.misses > 0 {
				fatalf("%s/shards=%d: %d misses in a read-only run", mix, sc, res.misses)
			}
			name := fmt.Sprintf("FlowServe/mix=%s/shards=%d", mix, sc)
			mlps := res.lookupsPerSec / 1e6
			fmt.Printf("%-34s %10d %12.2f %10.1f %10.1f %10.1f %10d\n",
				name, res.lookups, mlps,
				float64(res.hist.Quantile(0.50))/1e3/float64(*batch),
				float64(res.hist.Quantile(0.95))/1e3/float64(*batch),
				float64(res.hist.Quantile(0.99))/1e3/float64(*batch),
				res.stats.Retries)
			if throughput[mix] == nil {
				throughput[mix] = map[int]float64{}
			}
			throughput[mix][sc] = res.lookupsPerSec
			doc.Benchmarks = append(doc.Benchmarks, benchjson.Benchmark{
				Name:       name,
				Procs:      *workers,
				Iterations: res.lookups,
				Metrics: map[string]float64{
					"ns/op":          1e9 / res.lookupsPerSec,
					"lookups/sec":    res.lookupsPerSec,
					"p50-batch-ns":   float64(res.hist.Quantile(0.50)),
					"p95-batch-ns":   float64(res.hist.Quantile(0.95)),
					"p99-batch-ns":   float64(res.hist.Quantile(0.99)),
					"batch":          float64(*batch),
					"misses":         float64(res.misses),
					"retries":        float64(res.stats.Retries),
					"lock-fallbacks": float64(res.stats.LockFallbacks),
					"churn-writes":   float64(res.stats.Deletes),
					"fill-ns/op":     res.fillNsPerOp,
				},
			})
		}
	}

	if *jsonPath != "" {
		data, err := benchjson.Encode(doc)
		if err != nil {
			fatalf("encode: %v", err)
		}
		if _, err := benchjson.Decode(data); err != nil {
			fatalf("self-check: emitted document does not validate: %v", err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "serve document: %s (%d bytes)\n", *jsonPath, len(data))
	}

	if *check {
		tp, ok := throughput["uniform"]
		if !ok {
			fatalf("-check needs the uniform mix in -mix")
		}
		lo, hi := shardCounts[0], shardCounts[0]
		for _, sc := range shardCounts {
			if sc < lo {
				lo = sc
			}
			if sc > hi {
				hi = sc
			}
		}
		if lo == hi {
			fatalf("-check needs at least two shard counts in -shards")
		}
		ratio := tp[hi] / tp[lo]
		fmt.Fprintf(os.Stderr, "check: uniform throughput %d shards / %d shards = %.2fx\n", hi, lo, ratio)
		if runtime.NumCPU() == 1 {
			// One core: goroutines time-slice, so sharding cannot yield a
			// wall-clock speedup — the parallel-scaling assertion is vacuous.
			// Assert the weaker invariant that sharding costs no more than
			// half the throughput (per-shard overhead stays bounded).
			fmt.Fprintf(os.Stderr, "check: single CPU — skipping speedup assertion, requiring ratio > 0.5\n")
			if ratio <= 0.5 {
				fatalf("check failed: %d-shard throughput (%.0f/s) under half of %d-shard (%.0f/s) on one CPU",
					hi, tp[hi], lo, tp[lo])
			}
		} else if ratio <= 1.0 {
			fatalf("check failed: %d-shard throughput (%.0f/s) does not beat %d-shard (%.0f/s)",
				hi, tp[hi], lo, tp[lo])
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flowload: "+format+"\n", args...)
	os.Exit(1)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func popularityOf(mix string) (trafficgen.Popularity, error) {
	switch mix {
	case "uniform":
		return trafficgen.Uniform, nil
	case "zipf":
		return trafficgen.Zipf, nil
	}
	return 0, fmt.Errorf("unknown mix %q (want uniform or zipf)", mix)
}

// buildKeys packs every flow's header key into one arena; key i aliases the
// arena, so workers share it read-only.
func buildKeys(w *trafficgen.Workload) [][]byte {
	arena := make([]byte, len(w.Flows)*packet.HeaderKeyLen)
	keys := make([][]byte, len(w.Flows))
	for i, f := range w.Flows {
		k := arena[i*packet.HeaderKeyLen : (i+1)*packet.HeaderKeyLen]
		f.PutHeaderKey(k)
		keys[i] = k
	}
	return keys
}

type pointConfig struct {
	shards  int
	workers int
	ops     int64
	batch   int
	churn   int
	seed    uint64
}

type pointResult struct {
	lookups       int64
	lookupsPerSec float64
	fillNsPerOp   float64
	misses        int64
	wrongValues   int64
	hist          *stats.Histogram // per-LookupMany-call latency, ns
	stats         flowserve.TableStats
}

// valueOf is the value installed for flow index i (never zero).
func valueOf(i int) uint64 { return uint64(i) + 1 }

// runPoint builds a table with the given shard count, installs the flow
// population, and serves cfg.ops lookups from cfg.workers goroutines.
func runPoint(w *trafficgen.Workload, keys [][]byte, cfg pointConfig) pointResult {
	// ~12% slot headroom: shard assignment is by hash, so per-shard
	// occupancy varies around flows/shards.
	entries := uint64(len(keys)) + uint64(len(keys))/8 + 1024
	tbl, err := flowserve.New(flowserve.Config{
		Shards:  cfg.shards,
		Entries: entries,
		KeyLen:  packet.HeaderKeyLen,
	})
	if err != nil {
		fatalf("New: %v", err)
	}

	fillStart := time.Now()
	for i, k := range keys {
		if err := tbl.Insert(k, valueOf(i)); err != nil {
			fatalf("install flow %d: %v", i, err)
		}
	}
	fillNs := float64(time.Since(fillStart).Nanoseconds()) / float64(len(keys))

	var (
		issued  atomic.Int64 // lookups claimed by workers
		misses  atomic.Int64
		wrong   atomic.Int64
		wg      sync.WaitGroup
		histMu  sync.Mutex
		allHist = stats.NewHistogram()
	)
	start := time.Now()
	for wi := 0; wi < cfg.workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			stream := w.NewStream(cfg.seed ^ (0x57AB1E + uint64(wi)*0x9e3779b97f4a7c15))
			churnStream := w.NewStream(cfg.seed ^ (0xC0FFEE + uint64(wi)*0xc2b2ae3d27d4eb4f))
			batch := tbl.NewBatch()
			bkeys := make([][]byte, cfg.batch)
			bidx := make([]int, cfg.batch)
			values := make([]uint64, cfg.batch)
			oks := make([]bool, cfg.batch)
			hist := stats.NewHistogram()
			sinceChurn := 0
			for {
				if issued.Add(int64(cfg.batch)) > cfg.ops {
					break
				}
				for j := 0; j < cfg.batch; j++ {
					fi := stream.NextFlow()
					bidx[j] = fi
					bkeys[j] = keys[fi]
				}
				t0 := time.Now()
				batch.LookupMany(bkeys, values, oks)
				hist.Observe(uint64(time.Since(t0).Nanoseconds()))
				for j := 0; j < cfg.batch; j++ {
					if !oks[j] {
						misses.Add(1) // transient: the flow was churned out
					} else if values[j] != valueOf(bidx[j]) {
						wrong.Add(1)
					}
				}
				sinceChurn += cfg.batch
				if cfg.churn > 0 && sinceChurn >= cfg.churn {
					sinceChurn = 0
					fi := churnStream.NextFlow()
					if tbl.Delete(keys[fi]) {
						// Reinstall with the same value; a concurrent reader
						// sees a consistent miss at worst, never a torn hit.
						if err := tbl.Insert(keys[fi], valueOf(fi)); err != nil && err != flowserve.ErrKeyExists {
							wrong.Add(1)
						}
					}
				}
			}
			histMu.Lock()
			allHist.Merge(hist)
			histMu.Unlock()
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)

	lookups := allHist.Count() * uint64(cfg.batch)
	return pointResult{
		lookups:       int64(lookups),
		lookupsPerSec: float64(lookups) / elapsed.Seconds(),
		fillNsPerOp:   fillNs,
		misses:        misses.Load(),
		wrongValues:   wrong.Load(),
		hist:          allHist,
		stats:         tbl.Stats(),
	}
}
