package flowwire

import (
	"bytes"
	"testing"

	"halo/internal/flowserve"
)

// TestFrameCodecSteadyStateAllocs is the framing allocation gate: once
// scratch buffers are warm, a full encode→decode round trip of a LOOKUP_MANY
// exchange performs zero heap allocations. This is the contract the client
// and server hot paths are built on; CI runs this test so a regression
// (a stray make, an interface conversion, an append past capacity estimate)
// fails the build rather than quietly costing GC time at load.
func TestFrameCodecSteadyStateAllocs(t *testing.T) {
	const batch = 64
	keys := make([][]byte, batch)
	for i := range keys {
		keys[i] = wkey(uint64(i))
	}
	results := make([]flowserve.Result, batch)
	for i := range results {
		results[i] = flowserve.Result{OK: i%2 == 0, Value: uint64(i) * 7}
	}

	// Warm scratch, sized generously so steady state never regrows.
	wbuf := make([]byte, 0, 8<<10)
	payload := make([]byte, 0, 8<<10)
	pbuf := make([]byte, 8<<10)
	keyScratch := make([][]byte, 0, batch)
	resScratch := make([]flowserve.Result, batch)
	rd := bytes.NewReader(nil)
	var f Frame

	allocs := testing.AllocsPerRun(1000, func() {
		// Client request encode: header + payload into one reused buffer.
		payload = appendLookupManyReq(payload[:0], keys, 20)
		wbuf = AppendFrameHeader(wbuf[:0], OpLookupMany, StatusOK, 42, len(payload))
		wbuf = append(wbuf, payload...)

		// Server request decode: payload into reused buf, keys aliasing it.
		rd.Reset(wbuf)
		var err error
		pbuf, err = ReadFrameInto(rd, 0, &f, pbuf)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		keyScratch, st = parseLookupManyReq(f.Payload, 20, keyScratch[:0])
		if st != StatusOK || len(keyScratch) != batch {
			t.Fatalf("parse req: status %d, %d keys", st, len(keyScratch))
		}

		// Server reply encode, again into one reused buffer.
		payload = appendLookupManyReply(payload[:0], results)
		wbuf = AppendFrameHeader(wbuf[:0], OpLookupMany, StatusOK, 42, len(payload))
		wbuf = append(wbuf, payload...)

		// Client reply decode into the caller's results slice.
		rd.Reset(wbuf)
		pbuf, err = ReadFrameInto(rd, 0, &f, pbuf)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := parseLookupManyReply(f.Payload, resScratch); err != nil || n != batch {
			t.Fatalf("parse reply: n=%d err=%v", n, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("frame codec round trip allocates %.1f times per op, want 0", allocs)
	}
}

// TestFrameBufPoolSteadyStateAllocs pins the pooled-buffer plumbing itself:
// a get→grow→put cycle must not allocate once the pool is primed (pooling
// *frameBuf pointers, not bare slices, avoids the interface-conversion
// allocation sync.Pool would otherwise charge per Put).
func TestFrameBufPoolSteadyStateAllocs(t *testing.T) {
	for i := 0; i < 16; i++ {
		fb := getFrameBuf()
		fb.b = append(fb.b[:0], make([]byte, 4<<10)...)
		putFrameBuf(fb)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		fb := getFrameBuf()
		fb.b = AppendFrameHeader(fb.b[:0], OpLookup, StatusOK, 7, 0)
		putFrameBuf(fb)
	})
	if allocs != 0 {
		t.Fatalf("frame buffer pool cycle allocates %.1f times per op, want 0", allocs)
	}
}

// benchLoopbackLookupMany measures the end-to-end serve path (client encode,
// server decode/serve/encode, client decode) over a real transport; run with
// -benchmem to see per-op allocations on the full hot path.
func benchLoopbackLookupMany(b *testing.B, transport string) {
	const batch = 64
	_, tbl, addr := startServerOn(b, transport, flowserve.Config{Shards: 4, Entries: 8192, KeyLen: 20}, Config{})
	keys := make([][]byte, batch)
	for i := range keys {
		keys[i] = wkey(uint64(i))
		if err := tbl.Insert(keys[i], uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	cl := dialTest(b, addr, Options{Transport: transport})
	results := make([]flowserve.Result, batch)
	if hits := cl.LookupMany(keys, results); hits != batch {
		b.Fatalf("warmup hits = %d", hits)
	}
	b.ReportAllocs()
	b.SetBytes(int64(batch * 20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := cl.LookupMany(keys, results); hits != batch {
			b.Fatalf("hits = %d", hits)
		}
	}
	if err := cl.Err(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkLoopbackLookupManyTCP(b *testing.B)  { benchLoopbackLookupMany(b, TransportTCP) }
func BenchmarkLoopbackLookupManyUnix(b *testing.B) { benchLoopbackLookupMany(b, TransportUnix) }
func BenchmarkLoopbackLookupManyShm(b *testing.B)  { benchLoopbackLookupMany(b, TransportShm) }
