package cuckoo

import (
	"testing"

	"halo/internal/mem"
)

func TestBulkLookupMatchesSingle(t *testing.T) {
	tbl, th := timedFixture(t, Config{Entries: 1 << 14, KeyLen: 16})
	for i := uint64(0); i < 12000; i++ {
		if err := tbl.Insert(key16(i), i*3); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([][]byte, 32)
	for i := range keys {
		keys[i] = key16(uint64(i * 401))
	}
	keys[31] = key16(999_999) // a miss
	results := tbl.TimedLookupBulk(th, keys, DefaultLookupOptions())
	for i, r := range results {
		want, wantOK := tbl.Lookup(keys[i])
		if r.Value != want || r.Found != wantOK {
			t.Fatalf("bulk result %d = %+v, want (%d,%v)", i, r, want, wantOK)
		}
	}
	if results[31].Found {
		t.Fatal("bulk lookup found an absent key")
	}
}

func TestBulkLookupSkipsBadKeyLengths(t *testing.T) {
	tbl, th := timedFixture(t, Config{Entries: 64, KeyLen: 16})
	results := tbl.TimedLookupBulk(th, [][]byte{{1, 2, 3}}, DefaultLookupOptions())
	if results[0].Found {
		t.Fatal("short key matched")
	}
}

func TestBulkLookupPipelinesFills(t *testing.T) {
	// Bulk lookups must beat the same lookups issued one at a time when
	// the table is LLC-resident: the prefetch pipeline is the whole point.
	space := mem.NewMemory()
	alloc := mem.NewAllocator(0x1000, 1<<32)
	mk := func() *Table {
		tbl, err := Create(space, alloc, Config{Entries: 1 << 15, KeyLen: 16})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 24000; i++ {
			if err := tbl.Insert(key16(i), i); err != nil {
				t.Fatal(err)
			}
		}
		return tbl
	}
	tbl := mk()
	_, th := timedFixture(t, Config{Entries: 8, KeyLen: 16}) // fresh hierarchy thread
	// This thread's hierarchy doesn't know tbl's lines: both passes run
	// cold-ish but identically warmed.
	warm := func(run func(base uint64)) {
		run(1)
	}
	single := func(base uint64) {
		for i := uint64(0); i < 512; i++ {
			tbl.TimedLookup(th, key16((base+i*7)%24000), LookupOptions{OptimisticLock: true, Prefetch: false})
		}
	}
	bulk := func(base uint64) {
		for done := uint64(0); done < 512; done += 32 {
			keys := make([][]byte, 32)
			for j := range keys {
				keys[j] = key16((base + (done+uint64(j))*7) % 24000)
			}
			tbl.TimedLookupBulk(th, keys, LookupOptions{OptimisticLock: true})
		}
	}
	warm(single)
	start := th.Now
	single(3)
	singleCost := th.Now - start
	warm(bulk)
	start = th.Now
	bulk(5)
	bulkCost := th.Now - start
	if bulkCost >= singleCost {
		t.Fatalf("bulk (%d) not faster than single (%d)", bulkCost, singleCost)
	}
	speedup := float64(singleCost) / float64(bulkCost)
	if speedup < 1.2 {
		t.Fatalf("bulk speedup only %.2fx; pipeline ineffective", speedup)
	}
}
