package flowwire

import (
	"math/rand"
	"testing"
)

func testNodes(n int) []Endpoint {
	eps := make([]Endpoint, n)
	for i := range eps {
		eps[i] = Endpoint{Transport: TransportTCP, Addr: "127.0.0.1:" + string(rune('0'+i)) + "000"}
	}
	return eps
}

func TestUniformMap(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7} {
		m := UniformMap(testNodes(n))
		if err := m.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if m.Epoch != 1 || len(m.Splits) != n {
			t.Fatalf("n=%d: epoch %d, %d splits", n, m.Epoch, len(m.Splits))
		}
		// Every node owns a range; boundary hashes resolve to exactly one
		// owner; 0 and ^0 are covered.
		owned := make(map[int]bool)
		for _, h := range []uint64{0, 1, ^uint64(0), ^uint64(0) / 2} {
			owned[m.Owner(h)] = true
		}
		for _, sp := range m.Splits {
			owned[m.Owner(sp.Start)] = true
			if int(sp.Node) != m.Owner(sp.Start) {
				t.Fatalf("n=%d: split start %#x owned by %d, split says %d", n, sp.Start, m.Owner(sp.Start), sp.Node)
			}
		}
		if len(owned) != n {
			t.Fatalf("n=%d: only %d nodes own boundary hashes", n, len(owned))
		}
	}
}

func TestRangeContains(t *testing.T) {
	full := Range{0, 0}
	if !full.Contains(0) || !full.Contains(^uint64(0)) || full.Empty() {
		t.Fatal("full range broken")
	}
	r := Range{100, 200}
	if r.Contains(99) || !r.Contains(100) || !r.Contains(199) || r.Contains(200) {
		t.Fatal("half-open bounds broken")
	}
	tail := Range{1 << 63, 0}
	if tail.Contains(1<<63-1) || !tail.Contains(^uint64(0)) {
		t.Fatal("to-end range broken")
	}
	if !(Range{5, 5}).Empty() || !(Range{6, 5}).Empty() {
		t.Fatal("Empty broken")
	}
}

func TestAssignAndRangeOwner(t *testing.T) {
	m := UniformMap(testNodes(3))
	// Node 1's whole range moves to node 2.
	lo, hi := m.Splits[1].Start, m.Splits[2].Start
	if err := m.Assign(Range{lo, hi}, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if own := m.Owner(lo); own != 2 {
		t.Fatalf("owner after assign = %d", own)
	}
	if own, ok := m.RangeOwner(Range{lo, 0}); !ok || own != 2 {
		t.Fatalf("RangeOwner tail = %d, %v (want 2, true)", own, ok)
	}
	// Adjacent same-owner splits were compressed: node 2 now owns one
	// contiguous tail range, so the map is two splits.
	if len(m.Splits) != 2 {
		t.Fatalf("splits after compression = %+v", m.Splits)
	}
	// A range spanning both owners has no single owner.
	if _, ok := m.RangeOwner(Range{0, 0}); ok {
		t.Fatal("full range should span owners")
	}
	if _, ok := m.RangeOwner(Range{5, 5}); ok {
		t.Fatal("empty range should have no owner")
	}
}

func TestAssignRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := UniformMap(testNodes(4))
	// Model: ownership probed at pseudo-random hashes after each assign
	// must match a brute-force record of every assignment.
	type move struct {
		rg   Range
		node uint32
	}
	var moves []move
	ownerAt := func(h uint64) uint32 {
		for i := len(moves) - 1; i >= 0; i-- {
			if moves[i].rg.Contains(h) {
				return moves[i].node
			}
		}
		base := UniformMap(testNodes(4))
		return uint32(base.Owner(h))
	}
	for step := 0; step < 200; step++ {
		lo := rng.Uint64()
		var hi uint64
		if rng.Intn(4) > 0 { // 1-in-4 moves run to the end of the space
			hi = lo + 1 + rng.Uint64()%(1<<40)
			if hi < lo { // wrapped: clamp to end
				hi = 0
			}
		}
		node := uint32(rng.Intn(4))
		if err := m.Assign(Range{lo, hi}, node); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		moves = append(moves, move{Range{lo, hi}, node})
		for probe := 0; probe < 20; probe++ {
			h := rng.Uint64()
			if got, want := uint32(m.Owner(h)), ownerAt(h); got != want {
				t.Fatalf("step %d: owner(%#x) = %d, want %d", step, h, got, want)
			}
		}
		// Boundary probes: split starts and their predecessors.
		for _, sp := range m.Splits {
			if got, want := uint32(m.Owner(sp.Start)), ownerAt(sp.Start); got != want {
				t.Fatalf("step %d: owner(split %#x) = %d, want %d", step, sp.Start, got, want)
			}
			if sp.Start > 0 {
				if got, want := uint32(m.Owner(sp.Start-1)), ownerAt(sp.Start-1); got != want {
					t.Fatalf("step %d: owner(%#x) = %d, want %d", step, sp.Start-1, got, want)
				}
			}
		}
	}
}

func TestShardMapCodecRoundTrip(t *testing.T) {
	m := &ShardMap{
		Epoch: 42,
		Nodes: []Endpoint{
			{TransportTCP, "10.0.0.1:7070"},
			{TransportUnix, "/run/flow.sock"},
			{TransportShm, "/dev/shm/flow.ring"},
		},
		Splits: []Split{{0, 2}, {1 << 20, 0}, {1 << 62, 1}},
	}
	got, err := ParseShardMap(AppendShardMap(nil, m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || len(got.Nodes) != len(m.Nodes) || len(got.Splits) != len(m.Splits) {
		t.Fatalf("round trip = %+v", got)
	}
	for i := range m.Nodes {
		if got.Nodes[i] != m.Nodes[i] {
			t.Fatalf("node %d = %+v, want %+v", i, got.Nodes[i], m.Nodes[i])
		}
	}
	for i := range m.Splits {
		if got.Splits[i] != m.Splits[i] {
			t.Fatalf("split %d = %+v, want %+v", i, got.Splits[i], m.Splits[i])
		}
	}
	// Truncations and corruptions fail to parse rather than panic.
	enc := AppendShardMap(nil, m)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := ParseShardMap(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d parsed", cut)
		}
	}
}

func TestMigRecordCodecRoundTrip(t *testing.T) {
	recs := []MigRecord{
		{Kind: MigPurge, Value: 100, Key: []byte{200, 0, 0, 0, 0, 0, 0, 0}},
		{Kind: MigSnapshot, Value: 7, Key: []byte("snapshot-key-0000000")},
		{Kind: MigInsert, Value: 8, Key: []byte("insert-key-000000000")},
		{Kind: MigUpdate, Value: 9, Key: []byte("update-key-000000000")},
		{Kind: MigDelete, Value: 0, Key: []byte("delete-key-000000000")},
	}
	got, err := parseMigRecords(appendMigRecords(nil, recs), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Kind != recs[i].Kind || got[i].Value != recs[i].Value || string(got[i].Key) != string(recs[i].Key) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
	// A bad kind is rejected.
	bad := appendMigRecords(nil, []MigRecord{{Kind: 9, Value: 1, Key: []byte("x")}})
	if _, err := parseMigRecords(bad, nil); err == nil {
		t.Fatal("kind 9 parsed")
	}
}

func TestMigStartCodecRoundTrip(t *testing.T) {
	rg := Range{Lo: 1 << 30, Hi: 1 << 40}
	ep := Endpoint{TransportUnix, "/run/dst.sock"}
	gotRg, gotEp, err := parseMigStartReq(appendMigStartReq(nil, rg, ep))
	if err != nil || gotRg != rg || gotEp != ep {
		t.Fatalf("round trip = %+v, %+v, %v", gotRg, gotEp, err)
	}
}
