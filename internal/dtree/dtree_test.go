package dtree

import (
	"testing"

	"halo/internal/cpu"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/packet"
	"halo/internal/sim"
)

// linearClassify is the reference: scan all rules, highest priority wins.
func linearClassify(rules []Rule, t packet.FiveTuple) (uint64, bool) {
	best := -1
	for i, r := range rules {
		if r.MatchesTuple(t) && (best < 0 || r.Priority > rules[best].Priority) {
			best = i
		}
	}
	if best < 0 {
		return 0, false
	}
	return rules[best].Value, true
}

// prefixRule matches a source prefix and destination-port range.
func prefixRule(srcIP uint32, srcBits uint8, dpLo, dpHi uint16, prio uint16, value uint64) Rule {
	r := AnyRule(prio, value)
	maskBits := uint64(0xFFFFFFFF) << (32 - srcBits) & 0xFFFFFFFF
	if srcBits == 0 {
		maskBits = 0
	}
	r.Lo[0] = uint64(srcIP) & maskBits
	r.Hi[0] = r.Lo[0] | (^maskBits & 0xFFFFFFFF)
	r.Lo[3], r.Hi[3] = uint64(dpLo), uint64(dpHi)
	return r
}

func testRules() []Rule {
	return []Rule{
		prefixRule(0x0a000000, 8, 22, 22, 100, 1),   // 10/8 ssh
		prefixRule(0x0a010000, 16, 0, 65535, 50, 2), // 10.1/16 anything
		prefixRule(0xc0a80000, 16, 80, 443, 60, 3),  // 192.168/16 web
		prefixRule(0, 0, 53, 53, 40, 4),             // any dns
	}
}

func buildTestTree(t *testing.T, rules []Rule) (*Tree, *halo.Platform) {
	t.Helper()
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	tree, err := Build(p.Space, p.Alloc, rules)
	if err != nil {
		t.Fatal(err)
	}
	return tree, p
}

func randomTuple(rng *sim.Rand) packet.FiveTuple {
	// Bias into interesting subspaces half the time.
	t := packet.FiveTuple{
		SrcIP:   rng.Uint32(),
		DstIP:   rng.Uint32(),
		SrcPort: uint16(rng.Uint32()),
		DstPort: uint16(rng.Intn(500)),
		Proto:   6,
	}
	switch rng.Intn(4) {
	case 0:
		t.SrcIP = 0x0a000000 | rng.Uint32()&0xFFFFFF
	case 1:
		t.SrcIP = 0x0a010000 | rng.Uint32()&0xFFFF
	case 2:
		t.SrcIP = 0xc0a80000 | rng.Uint32()&0xFFFF
	}
	switch rng.Intn(4) {
	case 0:
		t.DstPort = 22
	case 1:
		t.DstPort = 53
	case 2:
		t.DstPort = uint16(80 + rng.Intn(400))
	}
	return t
}

func TestTreeMatchesLinearScan(t *testing.T) {
	rules := testRules()
	tree, _ := buildTestTree(t, rules)
	rng := sim.NewRand(42)
	for i := 0; i < 20000; i++ {
		tp := randomTuple(rng)
		want, wantOK := linearClassify(rules, tp)
		got, gotOK := tree.Classify(tp)
		if want != got || wantOK != gotOK {
			t.Fatalf("tuple %v: tree=(%d,%v) linear=(%d,%v)", tp, got, gotOK, want, wantOK)
		}
	}
	if tree.Nodes() < 3 {
		t.Fatalf("suspiciously small tree: %d nodes", tree.Nodes())
	}
}

func TestTimedWalkMatchesFunctional(t *testing.T) {
	rules := testRules()
	tree, p := buildTestTree(t, rules)
	th := cpu.NewThread(p.Hier, 0)
	rng := sim.NewRand(7)
	for i := 0; i < 2000; i++ {
		tp := randomTuple(rng)
		fv, fok := tree.Classify(tp)
		tv, tok := tree.ClassifyTimed(th, tp)
		if fv != tv || fok != tok {
			t.Fatalf("timed walk diverged on %v", tp)
		}
	}
	if th.Now == 0 {
		t.Fatal("timed walk charged nothing")
	}
}

func TestHaloWalkMatchesFunctional(t *testing.T) {
	rules := testRules()
	tree, p := buildTestTree(t, rules)
	th := cpu.NewThread(p.Hier, 0)
	keyBuf := p.Alloc.AllocLines(1)
	rng := sim.NewRand(9)
	for i := 0; i < 2000; i++ {
		tp := randomTuple(rng)
		p.Space.WriteAt(keyBuf, Key(tp))
		p.Hier.DMAWrite(keyBuf)
		fv, fok := tree.Classify(tp)
		hv, hok := tree.ClassifyHalo(th, p.Unit, keyBuf)
		if fok != hok || (fok && fv != hv) {
			t.Fatalf("halo walk diverged on %v: (%d,%v) vs (%d,%v)", tp, hv, hok, fv, fok)
		}
	}
}

func TestHaloWalkFasterThanSoftwareWhenLLCResident(t *testing.T) {
	// A rule set large enough that the node array outgrows the private
	// caches: near-cache walks only pay off once the software walk misses
	// its L2 (the same LLC-residency condition as Fig. 9).
	var rules []Rule
	for i := 0; i < 4500; i++ {
		rules = append(rules, prefixRule(uint32(i*2654435761), 24,
			uint16(i*37%60000), uint16(i*37%60000)+50, uint16(i%1000+1), uint64(i+1)))
	}
	tree, p := buildTestTree(t, rules)
	if tree.Nodes()*mem.LineSize < 2<<20 {
		t.Fatalf("tree too small for the LLC-resident regime: %d nodes", tree.Nodes())
	}
	// Warm the tree into the LLC (nodes are laid out contiguously from the
	// root by the build's DFS allocation order).
	for n := 0; n < tree.Nodes(); n++ {
		p.Hier.WarmLLC(tree.Root() + mem.Addr(n)*mem.LineSize)
	}
	// As in the Fig. 11 methodology, per-packet IO churn keeps the tree out
	// of the walking core's private caches (the tree lives in the LLC); the
	// churn is identical across modes and excluded from the measured time.
	// Uniform tuples: paths share only the top levels, so the lower levels
	// of the 2+ MB node array behave like the LLC-resident hash buckets of
	// Fig. 9 rather than a hot L1-resident subtree.
	rng := sim.NewRand(3)
	tuples := make([]packet.FiveTuple, 2048)
	for i := range tuples {
		tuples[i] = packet.FiveTuple{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32()),
			Proto: 6,
		}
	}
	pressureBase := p.Alloc.AllocLines(1 << 15)
	measure := func(core int, classify func(th *cpu.Thread, tp packet.FiveTuple)) float64 {
		th := cpu.NewThread(p.Hier, core)
		cursor := 0
		pressure := func() {
			for j := 0; j < 64; j++ {
				th.Load(pressureBase + mem.Addr(cursor)*mem.LineSize)
				cursor = (cursor + 1) % (1 << 15)
			}
		}
		var walkCycles uint64
		run := func(count bool) {
			for _, tp := range tuples {
				t0 := th.Now
				classify(th, tp)
				if count {
					walkCycles += uint64(th.Now - t0)
				}
				pressure()
			}
		}
		run(false)
		run(true)
		return float64(walkCycles)
	}

	software := measure(0, func(th *cpu.Thread, tp packet.FiveTuple) {
		tree.ClassifyTimed(th, tp)
	})
	keyBuf := p.Alloc.AllocLines(1)
	accelerated := measure(1, func(th *cpu.Thread, tp packet.FiveTuple) {
		p.Space.WriteAt(keyBuf, Key(tp))
		p.Hier.DMAWrite(keyBuf)
		tree.ClassifyHalo(th, p.Unit, keyBuf)
	})

	if accelerated >= software {
		t.Fatalf("halo tree walk (%.0f) not faster than software (%.0f)", accelerated, software)
	}
}

func TestWalkFaultOnCorruptNode(t *testing.T) {
	tree, p := buildTestTree(t, testRules())
	// Corrupt the root's magic.
	mem.Write32(p.Space, tree.Root(), 0xdeadbeef)
	th := cpu.NewThread(p.Hier, 0)
	keyBuf := p.Alloc.AllocLines(1)
	p.Space.WriteAt(keyBuf, Key(packet.FiveTuple{}))
	r := p.Unit.WalkB(th, tree.Root(), keyBuf, KeyBytes)
	if !r.Fault {
		t.Fatal("corrupt node did not fault")
	}
}

func TestBuildErrors(t *testing.T) {
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	if _, err := Build(p.Space, p.Alloc, nil); err != ErrNoRules {
		t.Fatalf("empty build err = %v", err)
	}
	// Two identical full-space rules with different priorities are fine
	// (higher priority wins everywhere)...
	if _, err := Build(p.Space, p.Alloc, []Rule{AnyRule(1, 1), AnyRule(2, 2)}); err != nil {
		t.Fatalf("overlapping any-rules: %v", err)
	}
	// ...and a single rule builds a one-leaf tree.
	tree, err := Build(p.Space, p.Alloc, []Rule{AnyRule(1, 9)})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tree.Classify(packet.FiveTuple{SrcIP: 123}); !ok || v != 9 {
		t.Fatal("single-rule tree broken")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	tp := packet.FiveTuple{SrcIP: 0x01020304, DstIP: 0x05060708, SrcPort: 0x1122, DstPort: 0x3344, Proto: 6}
	k := Key(tp)
	if len(k) != KeyBytes {
		t.Fatalf("key length %d", len(k))
	}
	if fieldVal(k, 0, 4) != 0x01020304 || fieldVal(k, 10, 2) != 0x3344 || fieldVal(k, 12, 1) != 6 {
		t.Fatal("field extraction wrong")
	}
}
