package flowwire

import (
	"errors"
	"fmt"
	"net"
	"os"
	"time"
)

// Transport names. The wire protocol is byte-identical on every transport;
// only the dial/listen plumbing differs, so the Reader/Writer surface (and
// the frame codec, and the server runtime) is shared verbatim. Benchmark
// documents stamp the transport into their workload identity so benchdiff
// refuses cross-transport comparisons.
const (
	// TransportTCP serves "host:port" addresses over TCP (loopback or
	// cross-host). The historical default.
	TransportTCP = "tcp"
	// TransportUnix serves a filesystem socket path over unix-domain
	// stream sockets: same syscall count as TCP but no packetization,
	// checksumming or loopback queueing — the cheap same-host transport.
	TransportUnix = "unix"
)

// ErrBadTransport reports an unknown -transport value.
var ErrBadTransport = errors.New(`flowwire: unknown transport (want "tcp" or "unix")`)

// CheckTransport validates a transport name ("" means TransportTCP).
func CheckTransport(transport string) (string, error) {
	switch transport {
	case "", TransportTCP:
		return TransportTCP, nil
	case TransportUnix:
		return TransportUnix, nil
	}
	return "", fmt.Errorf("%w: %q", ErrBadTransport, transport)
}

// Listen opens a listener for the given transport: a TCP "host:port" or a
// unix socket path. For unix, a stale socket file left by a dead server is
// detected (it refuses connections) and removed before listening, so
// flowserved restarts cleanly; a live server's socket is left alone and the
// bind fails as it should. The returned *net.UnixListener unlinks its
// socket on Close.
func Listen(transport, addr string) (net.Listener, error) {
	transport, err := CheckTransport(transport)
	if err != nil {
		return nil, err
	}
	if transport == TransportUnix {
		removeStaleSocket(addr)
	}
	return net.Listen(transport, addr)
}

// removeStaleSocket unlinks addr if it is a socket file nobody answers on.
func removeStaleSocket(addr string) {
	fi, err := os.Lstat(addr)
	if err != nil || fi.Mode()&os.ModeSocket == 0 {
		return // absent, or not a socket: let Listen report the real error
	}
	nc, err := net.DialTimeout(TransportUnix, addr, 250*time.Millisecond)
	if err == nil {
		nc.Close() // a live server owns it
		return
	}
	os.Remove(addr)
}

// dialTransport connects to addr over the named transport, applying the
// TCP-only socket options where they exist.
func dialTransport(transport, addr string, timeout time.Duration) (net.Conn, error) {
	transport, err := CheckTransport(transport)
	if err != nil {
		return nil, err
	}
	nc, err := net.DialTimeout(transport, addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return nc, nil
}
