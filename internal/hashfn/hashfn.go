// Package hashfn implements the hash algorithms shared by the software
// cuckoo hash table, the HALO accelerator's hash unit, and the linear-counting
// flow register.
//
// The HALO hash unit (paper Fig. 6) is built from multipliers, shifters and
// XOR gates; the functions here mirror that structure: a multiply–shift–xor
// mixing chain over the key words, parameterised by a seed so that two
// independent functions drive the two cuckoo buckets.
package hashfn

import "encoding/binary"

// Seed selects one member of the hash family. The cuckoo table uses two
// distinct seeds; the flow register uses a third.
type Seed uint64

// Canonical seeds used across the repository. Any distinct values work; these
// are fixed so simulations are reproducible.
const (
	SeedPrimary   Seed = 0x9e3779b97f4a7c15
	SeedSecondary Seed = 0xc2b2ae3d27d4eb4f
	SeedFlowReg   Seed = 0x165667b19e3779f9
)

const (
	mulA = 0xff51afd7ed558ccd
	mulB = 0xc4ceb9fe1a85ec53
)

// mix is one round of the hash unit: multiply, shift, xor (paper Fig. 6
// shows exactly this gate mix: MUL, <<, XOR, +).
func mix(h, word uint64) uint64 {
	h ^= word * mulA
	h = (h << 31) | (h >> 33)
	h *= mulB
	h ^= h >> 29
	return h
}

// Hash64 hashes an 8-byte word with the given seed.
func Hash64(seed Seed, word uint64) uint64 {
	h := mix(uint64(seed), word)
	return finalize(h, 8)
}

// Hash hashes an arbitrary key with the given seed. Keys shorter than a
// multiple of 8 bytes are padded by processing the zero-extended tail word;
// length is folded in so prefixes hash differently from their extensions.
func Hash(seed Seed, key []byte) uint64 {
	h := uint64(seed)
	n := uint64(len(key))
	for len(key) >= 8 {
		h = mix(h, binary.LittleEndian.Uint64(key))
		key = key[8:]
	}
	if len(key) > 0 {
		var tail [8]byte
		copy(tail[:], key)
		h = mix(h, binary.LittleEndian.Uint64(tail[:]))
	}
	return finalize(h, n)
}

func finalize(h, extra uint64) uint64 {
	h ^= extra
	h ^= h >> 33
	h *= mulA
	h ^= h >> 33
	h *= mulB
	h ^= h >> 33
	return h
}

// Signature derives the 16-bit bucket-entry signature stored next to each
// key-value pointer (paper Fig. 2b). It must be derived from the primary
// hash so the accelerator can compare signatures without re-reading keys.
func Signature(primaryHash uint64) uint16 {
	sig := uint16(primaryHash >> 48)
	if sig == 0 {
		// Zero is reserved to mean "empty entry" in bucket storage.
		sig = 1
	}
	return sig
}

// BucketPair returns the two candidate bucket indexes for a key in a table
// with bucketCount buckets (bucketCount must be a power of two). The
// secondary index is derived from the primary hash and the signature the way
// DPDK's rte_hash does, so the alternative bucket is computable from bucket
// contents alone during cuckoo displacement.
func BucketPair(primaryHash uint64, bucketCount uint64) (b1, b2 uint64) {
	mask := bucketCount - 1
	b1 = primaryHash & mask
	alt := AltBucket(b1, Signature(primaryHash), bucketCount)
	return b1, alt
}

// ShardIndex derives a shard index in [0, shards) from the primary hash for
// tables partitioned across independent sub-tables (HALO places one
// accelerator per LLC slice; the flowserve runtime places one seqlock-guarded
// sub-table per shard). shards must be a power of two, at most 1<<24. The
// index comes from bits 24..47 of the hash — disjoint from both the bucket
// index (low bits; a shard's table is far smaller than 2^24 buckets) and the
// signature (top 16 bits) — so sharding skews neither per-shard bucket
// occupancy nor signature entropy within a shard.
func ShardIndex(primaryHash uint64, shards uint64) uint64 {
	return (primaryHash >> 24) & (shards - 1)
}

// AltBucket computes the alternative bucket for an entry given its current
// bucket and signature. The XOR displacement depends only on the signature,
// which makes AltBucket an involution: AltBucket(AltBucket(b, s), s) == b.
// That property is what lets a cuckoo move push an entry to its alternative
// bucket knowing only the bucket contents, and lets it move back later.
func AltBucket(bucket uint64, sig uint16, bucketCount uint64) uint64 {
	mask := bucketCount - 1
	h := mix(0x5bd1e995, uint64(sig))
	// OR with 1 so the displacement is never zero (alt != bucket) while
	// remaining a fixed XOR mask, preserving the involution.
	disp := (h & mask) | 1
	return bucket ^ disp
}
