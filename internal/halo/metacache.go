package halo

import (
	"halo/internal/cuckoo"
	"halo/internal/mem"
)

// TableMeta is the accelerator's parsed view of a table's metadata line —
// exactly the fields the hardware needs to walk buckets without software
// help.
type TableMeta struct {
	Base        mem.Addr
	KeyLen      int
	BucketCount uint64
	BucketBase  mem.Addr
	KVBase      mem.Addr
	KVSlotSize  uint64
	SFH         bool
}

// parseMeta decodes a metadata line from simulated memory. ok is false when
// the magic does not match (the accelerator then raises a fault to software;
// in this model the query simply reports not-found with Fault set).
func parseMeta(space mem.Space, base mem.Addr) (TableMeta, bool) {
	if mem.Read32(space, base) != cuckoo.Magic {
		return TableMeta{}, false
	}
	flags := mem.Read32(space, base+40)
	return TableMeta{
		Base:        base,
		KeyLen:      int(mem.Read32(space, base+4)),
		BucketCount: mem.Read64(space, base+8),
		BucketBase:  mem.Addr(mem.Read64(space, base+16)),
		KVBase:      mem.Addr(mem.Read64(space, base+24)),
		KVSlotSize:  mem.Read64(space, base+32),
		SFH:         flags&cuckoo.FlagSFH != 0,
	}, true
}

// MetadataCache holds recently used tables' metadata inside one accelerator
// (paper §4.3: 10 tables, 640 B). It participates in coherence through the
// hierarchy's accelerator core-valid bit: writes to or evictions of a cached
// metadata line invalidate the entry.
type MetadataCache struct {
	capacity int
	entries  map[mem.Addr]*metaEntry
	tick     uint64

	hits   uint64
	misses uint64
}

type metaEntry struct {
	meta TableMeta
	lru  uint64
}

// NewMetadataCache builds a cache holding up to capacity tables.
func NewMetadataCache(capacity int) *MetadataCache {
	if capacity <= 0 {
		panic("halo: metadata cache needs positive capacity")
	}
	return &MetadataCache{capacity: capacity, entries: make(map[mem.Addr]*metaEntry)}
}

// Get returns the cached metadata for a table base address.
func (c *MetadataCache) Get(base mem.Addr) (TableMeta, bool) {
	if e, ok := c.entries[base]; ok {
		c.tick++
		e.lru = c.tick
		c.hits++
		return e.meta, true
	}
	c.misses++
	return TableMeta{}, false
}

// Put inserts metadata, evicting the least recently used entry when full.
func (c *MetadataCache) Put(meta TableMeta) {
	if e, ok := c.entries[meta.Base]; ok {
		c.tick++
		*e = metaEntry{meta: meta, lru: c.tick}
		return
	}
	if len(c.entries) >= c.capacity {
		var victim mem.Addr
		var oldest uint64 = ^uint64(0)
		for base, e := range c.entries {
			if e.lru < oldest {
				oldest = e.lru
				victim = base
			}
		}
		delete(c.entries, victim)
	}
	c.tick++
	c.entries[meta.Base] = &metaEntry{meta: meta, lru: c.tick}
}

// Invalidate drops the entry whose metadata line is lineAddr (snoop from the
// CHA when a core writes the line or the LLC evicts it).
func (c *MetadataCache) Invalidate(lineAddr mem.Addr) {
	delete(c.entries, lineAddr)
}

// Len returns the number of cached tables.
func (c *MetadataCache) Len() int { return len(c.entries) }

// HitRate returns the fraction of Get calls that hit.
func (c *MetadataCache) HitRate() float64 {
	if c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}
