package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner names one experiment and carries its Sweep decomposition. The
// runner package fans the sweep points out across workers; Run executes
// them serially in place.
type Runner struct {
	ID    string
	Paper string // which paper artefact it regenerates
	Sweep Sweep
}

// Run executes every point of the experiment serially and renders its
// tables to w.
func (r Runner) Run(cfg Config, w io.Writer) {
	r.Sweep.Render(cfg, runSerial(cfg, r.Sweep), w)
}

// Registry returns every experiment runner, keyed and ordered by ID.
func Registry() []Runner {
	return []Runner{
		{"fig3", "Figure 3 (packet-processing breakdown)", Fig3Sweep()},
		{"fig4", "Figure 4 (cuckoo vs SFH cache behaviour)", Fig4Sweep()},
		{"table1", "Table 1 (instruction profile)", Table1Sweep()},
		{"lockoverhead", "§3.4 (concurrency overhead)", LockOverheadSweep()},
		{"fig8", "Figure 8b (flow-register accuracy)", Fig8Sweep()},
		{"fig9", "Figure 9 (single-table lookup sweep)", Fig9Sweep()},
		{"fig10", "Figure 10 (latency breakdown)", Fig10Sweep()},
		{"fig11", "Figure 11 (tuple space search)", Fig11Sweep()},
		{"fig12", "Figure 12 (collocated NF interference)", Fig12Sweep()},
		{"table4", "Table 4 (power and area)", Table4Sweep()},
		{"fig13", "Figure 13 (hash-table NF speedup)", Fig13Sweep()},
		{"ablations", "design-choice sweeps (beyond the paper)", AblationsSweep()},
		{"scaling", "multicore scaling under rule churn (beyond the paper)", ScalingSweep()},
		{"updates", "rule-update cost, cuckoo vs TCAM (§1 motivation)", UpdatesSweep()},
		{"hybrid", "§4.6 hybrid controller mode selection (beyond the paper)", HybridSweep()},
	}
}

// Find returns the runner with the given ID.
func Find(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	var ids []string
	for _, r := range Registry() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every experiment serially in registry order.
func RunAll(cfg Config, w io.Writer) {
	for _, r := range Registry() {
		fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Paper)
		r.Run(cfg, w)
	}
}
