package cache

import (
	"testing"

	"halo/internal/mem"
	"halo/internal/noc"
	"halo/internal/sim"
)

func testHierarchy() *Hierarchy {
	cfg := DefaultConfig()
	ring := noc.NewRing(noc.DefaultRingConfig())
	dram := mem.NewDRAM(mem.DefaultDRAMConfig())
	return New(cfg, ring, dram)
}

// smallHierarchy builds a hierarchy with tiny caches so eviction paths are
// easy to exercise.
func smallHierarchy() *Hierarchy {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.Slices = 4
	cfg.L1SizeBytes = 4 * mem.LineSize // 2 sets x 2 ways
	cfg.L1Ways = 2
	cfg.L2SizeBytes = 8 * mem.LineSize
	cfg.L2Ways = 2
	cfg.LLCSliceBytes = 16 * mem.LineSize
	cfg.LLCWays = 2
	ring := noc.NewRing(noc.RingConfig{Stops: 4, HopCycles: 2, InjectDelay: 3})
	dram := mem.NewDRAM(mem.DefaultDRAMConfig())
	return New(cfg, ring, dram)
}

func TestColdMissThenHits(t *testing.T) {
	h := testHierarchy()
	r1 := h.CoreAccess(0, 0, 0x1000, false)
	if r1.Where != InMemory {
		t.Fatalf("first access hit %v, want memory", r1.Where)
	}
	r2 := h.CoreAccess(r1.Done, 0, 0x1000, false)
	if r2.Where != InL1 {
		t.Fatalf("second access hit %v, want L1", r2.Where)
	}
	if r2.Latency() >= r1.Latency() {
		t.Fatalf("L1 hit (%d) not faster than memory (%d)", r2.Latency(), r1.Latency())
	}
	if r2.Latency() != h.cfg.L1Latency {
		t.Fatalf("L1 hit latency = %d, want %d", r2.Latency(), h.cfg.L1Latency)
	}
}

func TestLatencyOrdering(t *testing.T) {
	h := testHierarchy()
	// Warm the line into LLC only: another core reads it, then evict from
	// its private caches is awkward; instead use WarmLLC.
	h.WarmLLC(0x2000)
	llc := h.CoreAccess(0, 0, 0x2000, false)
	if llc.Where != InLLC {
		t.Fatalf("warmed access hit %v, want LLC", llc.Where)
	}
	memr := h.CoreAccess(0, 1, 0x99000, false)
	if memr.Where != InMemory {
		t.Fatalf("cold access hit %v, want memory", memr.Where)
	}
	l1 := h.CoreAccess(llc.Done, 0, 0x2000, false)
	if !(l1.Latency() < llc.Latency() && llc.Latency() < memr.Latency()) {
		t.Fatalf("latency ordering violated: L1=%d LLC=%d mem=%d",
			l1.Latency(), llc.Latency(), memr.Latency())
	}
}

func TestRemoteCacheSourcing(t *testing.T) {
	h := testHierarchy()
	// Core 0 writes the line: it holds it Modified.
	w := h.CoreAccess(0, 0, 0x3000, true)
	// Core 1 reads: must be sourced from core 0's private cache.
	r := h.CoreAccess(w.Done, 1, 0x3000, false)
	if r.Where != InRemoteCache {
		t.Fatalf("cross-core read hit %v, want remote cache", r.Where)
	}
	h.WarmLLC(0x4000)
	llcHit := h.CoreAccess(0, 2, 0x4000, false)
	if r.Latency() <= llcHit.Latency() {
		t.Fatalf("remote-cache hit (%d) should cost more than LLC hit (%d)",
			r.Latency(), llcHit.Latency())
	}
	// After the read, a third core's read is an LLC hit (owner downgraded).
	r3 := h.CoreAccess(r.Done, 2, 0x3000, false)
	if r3.Where != InLLC {
		t.Fatalf("read after downgrade hit %v, want LLC", r3.Where)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h := testHierarchy()
	h.WarmLLC(0x5000)
	a := h.CoreAccess(0, 0, 0x5000, false)
	b := h.CoreAccess(a.Done, 1, 0x5000, false)
	// Core 2 writes: cores 0 and 1 must lose their copies.
	w := h.CoreAccess(b.Done, 2, 0x5000, true)
	if inL1, inL2, _ := h.Present(0, 0x5000); inL1 || inL2 {
		t.Fatal("core 0 kept its copy after a remote write")
	}
	if inL1, inL2, _ := h.Present(1, 0x5000); inL1 || inL2 {
		t.Fatal("core 1 kept its copy after a remote write")
	}
	// Core 2's next read hits L1 in Modified state.
	r := h.CoreAccess(w.Done, 2, 0x5000, false)
	if r.Where != InL1 {
		t.Fatalf("writer's re-read hit %v, want L1", r.Where)
	}
}

func TestExclusiveThenModifiedSilently(t *testing.T) {
	h := testHierarchy()
	r := h.CoreAccess(0, 0, 0x6000, false) // E state
	w := h.CoreAccess(r.Done, 0, 0x6000, true)
	if w.Where != InL1 {
		t.Fatalf("E->M upgrade hit %v, want silent L1 upgrade", w.Where)
	}
}

func TestSharedWriteUpgradePaysLLCTrip(t *testing.T) {
	h := testHierarchy()
	h.WarmLLC(0x7000)
	a := h.CoreAccess(0, 0, 0x7000, false)
	b := h.CoreAccess(a.Done, 1, 0x7000, false) // both Shared now
	w := h.CoreAccess(b.Done, 0, 0x7000, true)
	if w.Where == InL1 || w.Where == InL2 {
		t.Fatalf("S->M upgrade serviced at %v; must reach the directory", w.Where)
	}
	if inL1, inL2, _ := h.Present(1, 0x7000); inL1 || inL2 {
		t.Fatal("other sharer survived the upgrade")
	}
}

// invertedHierarchy builds a pathological single-slice hierarchy whose LLC is
// smaller than the L2, so LLC evictions hit lines still held privately and
// the back-invalidation path is exercised.
func invertedHierarchy() *Hierarchy {
	cfg := DefaultConfig()
	cfg.Cores = 1
	cfg.Slices = 1
	cfg.L1SizeBytes = 2 * mem.LineSize
	cfg.L1Ways = 2
	cfg.L2SizeBytes = 64 * mem.LineSize
	cfg.L2Ways = 4
	cfg.LLCSliceBytes = 4 * mem.LineSize
	cfg.LLCWays = 2
	ring := noc.NewRing(noc.RingConfig{Stops: 1, HopCycles: 2, InjectDelay: 3})
	return New(cfg, ring, mem.NewDRAM(mem.DefaultDRAMConfig()))
}

func TestLLCEvictionBackInvalidates(t *testing.T) {
	h := invertedHierarchy()
	now := sim.Cycle(0)
	for i := 0; i < 64; i++ {
		r := h.CoreAccess(now, 0, mem.Addr(0x10000+i*mem.LineSize), false)
		now = r.Done
	}
	if h.Stats().BackInvalidations == 0 {
		t.Fatal("no back-invalidations despite LLC thrashing")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	h := invertedHierarchy()
	now := sim.Cycle(0)
	for i := 0; i < 64; i++ {
		r := h.CoreAccess(now, 0, mem.Addr(0x10000+i*mem.LineSize), true)
		now = r.Done
	}
	if h.Stats().Writebacks == 0 {
		t.Fatal("dirty lines evicted without writeback")
	}
}

func TestAccelAccessFasterThanCore(t *testing.T) {
	h := testHierarchy()
	var coreTotal, accelTotal sim.Cycle
	const n = 200
	for i := 0; i < n; i++ {
		addr := mem.Addr(0x100000 + i*mem.LineSize)
		h.WarmLLC(addr)
		c := h.CoreAccess(sim.Cycle(i*1000), 0, addr, false)
		if c.Where != InLLC {
			t.Fatalf("core access hit %v, want LLC", c.Where)
		}
		coreTotal += c.Latency()
	}
	h = testHierarchy() // fresh port resources: time restarts at 0 below
	for i := 0; i < n; i++ {
		addr := mem.Addr(0x900000 + i*mem.LineSize)
		h.WarmLLC(addr)
		a := h.AccelAccess(sim.Cycle(i*1000), i%16, addr, false)
		if a.Where != InLLC {
			t.Fatalf("accel access hit %v, want LLC", a.Where)
		}
		accelTotal += a.Latency()
	}
	ratio := float64(coreTotal) / float64(accelTotal)
	// Paper Fig. 10: CHA-side LLC access is ~4.1x faster than core-side.
	if ratio < 3.0 || ratio > 6.0 {
		t.Fatalf("accel/core LLC access ratio = %.2f, want ~4x", ratio)
	}
}

func TestAccelAccessDoesNotPollutePrivateCaches(t *testing.T) {
	h := testHierarchy()
	h.AccelAccess(0, 3, 0x8000, false)
	for core := 0; core < 16; core++ {
		if inL1, inL2, _ := h.Present(core, 0x8000); inL1 || inL2 {
			t.Fatalf("accel access installed the line into core %d's private cache", core)
		}
	}
	if _, _, inLLC := h.Present(0, 0x8000); !inLLC {
		t.Fatal("accel access did not fill the LLC")
	}
}

func TestAccelWriteInvalidatesCoreCopies(t *testing.T) {
	h := testHierarchy()
	r := h.CoreAccess(0, 0, 0x9000, false)
	h.AccelAccess(r.Done, 0, 0x9000, true)
	if inL1, inL2, _ := h.Present(0, 0x9000); inL1 || inL2 {
		t.Fatal("core copy survived an accelerator write")
	}
}

func TestLockBlocksWritesUntilRelease(t *testing.T) {
	h := testHierarchy()
	h.WarmLLC(0xa000)
	h.LockLine(0, 0, 0xa000, 500)
	w := h.CoreAccess(10, 1, 0xa000, true)
	if w.Done < 500 {
		t.Fatalf("write to a locked line completed at %d, before lock release 500", w.Done)
	}
	if h.Stats().LockStalls != 1 {
		t.Fatalf("lock stalls = %d, want 1", h.Stats().LockStalls)
	}
	// Reads are not blocked by the lock.
	h.LockLine(600, 0, 0xb000, 2000)
	h.WarmLLC(0xb000)
	r := h.CoreAccess(700, 2, 0xb000, false)
	if r.Done >= 2000 {
		t.Fatal("read stalled on a lock; locks must only block modification")
	}
}

func TestLockExpiresLazily(t *testing.T) {
	h := testHierarchy()
	h.WarmLLC(0xc000)
	h.LockLine(0, 0, 0xc000, 100)
	w := h.CoreAccess(200, 1, 0xc000, true)
	if w.Latency() > 200 {
		t.Fatalf("expired lock still stalled a write (latency %d)", w.Latency())
	}
	if h.Stats().LockStalls != 0 {
		t.Fatal("expired lock counted as a stall")
	}
}

func TestUnlockLineClearsEarly(t *testing.T) {
	h := testHierarchy()
	h.WarmLLC(0xd000)
	h.LockLine(0, 0, 0xd000, 10000)
	h.UnlockLine(0xd000)
	w := h.CoreAccess(10, 1, 0xd000, true)
	if w.Done >= 10000 {
		t.Fatal("explicit unlock did not clear the lock")
	}
}

func TestAccelInvalidateCallbackOnWrite(t *testing.T) {
	h := testHierarchy()
	var invalidated []mem.Addr
	h.OnAccelInvalidate = func(a mem.Addr) { invalidated = append(invalidated, a) }
	h.WarmLLC(0xe000)
	h.MarkAccelValid(0xe000)
	h.CoreAccess(0, 0, 0xe000, true)
	if len(invalidated) != 1 || invalidated[0] != 0xe000 {
		t.Fatalf("invalidate callback got %v, want [0xe000]", invalidated)
	}
}

func TestSnapshotReadLeavesOwnershipAlone(t *testing.T) {
	h := testHierarchy()
	w := h.CoreAccess(0, 0, 0xf000, true) // core 0 owns the line M
	s := h.SnapshotRead(w.Done, 1, 0xf000)
	if inL1, inL2, _ := h.Present(1, 0xf000); inL1 || inL2 {
		t.Fatal("snapshot read allocated into the reader's private cache")
	}
	if inL1, _, _ := h.Present(0, 0xf000); !inL1 {
		t.Fatal("snapshot read disturbed the owner's copy")
	}
	_ = s
}

func TestStatsAggregation(t *testing.T) {
	h := testHierarchy()
	h.CoreAccess(0, 0, 0x11000, false)
	h.CoreAccess(100000, 0, 0x11000, false)
	s := h.Stats()
	if s.L1Hits != 1 || s.L1Misses != 1 {
		t.Fatalf("L1 stats = %d/%d, want 1/1", s.L1Hits, s.L1Misses)
	}
	h.ResetStats()
	s = h.Stats()
	if s.L1Hits != 0 || s.LLCMisses != 0 {
		t.Fatal("ResetStats left counters non-zero")
	}
}

func TestMismatchedSlicesPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Slices = 8
	defer func() {
		if recover() == nil {
			t.Fatal("slice/ring mismatch did not panic")
		}
	}()
	New(cfg, noc.NewRing(noc.DefaultRingConfig()), mem.NewDRAM(mem.DefaultDRAMConfig()))
}
