// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the timing substrate for the whole repository: caches, DRAM,
// the on-chip interconnect, CPU cores and the HALO accelerators are all
// modelled as components that schedule events on a shared clock measured in
// CPU cycles. Events scheduled for the same cycle fire in FIFO order of
// scheduling, which makes every simulation in this repository fully
// deterministic: the same inputs always produce the same cycle counts.
//
// The event queue is built for zero steady-state allocation: a bucketed
// near-future calendar (the "ladder") absorbs the common short-delay
// schedule with O(1) push/pop, and a hand-rolled value-typed 4-ary heap
// holds the far future. Events are stored by value — no per-event boxing
// through interfaces, no heap-index bookkeeping — so scheduling touches
// only pre-allocated memory once the queue has warmed up.
package sim

import (
	"fmt"
	"math/bits"

	"halo/internal/stats"
)

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type Event func(now Cycle)

// scheduledEvent is one queued callback. It is held by value in the ladder
// buckets and the overflow heap; seq breaks same-cycle ties FIFO.
type scheduledEvent struct {
	at  Cycle
	seq uint64
	fn  Event
}

// eventLess orders events by (at, seq): time first, FIFO within a cycle.
func eventLess(a, b *scheduledEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Ladder geometry: one bucket per cycle for the next ladderSpan cycles.
// Nearly every delay in this repository (cache latencies, NoC hops, DRAM
// service times) is far below the span, so the heap only sees pathological
// long timers.
const (
	ladderBits = 10
	ladderSpan = 1 << ladderBits // cycles covered by the calendar
	ladderMask = ladderSpan - 1
)

// bucket is one calendar slot: a FIFO of same-cycle events. The slice is
// recycled in place (head chases len, then both reset), so a warmed bucket
// never reallocates.
type bucket struct {
	events []scheduledEvent
	head   int
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// engines with NewEngine.
type Engine struct {
	now    Cycle
	seq    uint64
	fired  uint64
	limit  uint64 // safety valve: max events per Run (0 = unlimited)
	halted bool

	// Near-future calendar: bucket i holds events for the unique cycle c in
	// [now, now+ladderSpan) with c&ladderMask == i. occupied mirrors which
	// buckets are non-empty, one bit per bucket, for word-at-a-time scans.
	buckets     []bucket
	occupied    [ladderSpan / 64]uint64
	ladderCount int

	// Far-future overflow: value-typed 4-ary min-heap on (at, seq).
	heap []scheduledEvent

	// Observability counters (CollectInto).
	maxDepth     int
	ladderPushes uint64
	heapPushes   uint64
}

// NewEngine returns an empty engine positioned at cycle 0.
func NewEngine() *Engine {
	return &Engine{buckets: make([]bucket, ladderSpan)}
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// EventsFired reports how many events have executed since engine creation.
func (e *Engine) EventsFired() uint64 { return e.fired }

// SetEventLimit installs a safety limit on the number of events a single Run
// may fire; Run panics when the limit is exceeded. Zero disables the limit.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// Schedule runs fn after delay cycles (delay 0 means "later this cycle",
// after all currently queued same-cycle events).
func (e *Engine) Schedule(delay Cycle, fn Event) {
	e.At(e.now+delay, fn)
}

// At runs fn at the absolute cycle `at`. Scheduling in the past panics: it is
// always a component bug, never a recoverable condition.
func (e *Engine) At(at Cycle, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d, now is %d", at, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	e.seq++
	ev := scheduledEvent{at: at, seq: e.seq, fn: fn}
	if at-e.now < ladderSpan {
		// Near future: append to the cycle's bucket. Appends arrive in seq
		// order, so bucket order is FIFO order by construction.
		idx := int(at & ladderMask)
		b := &e.buckets[idx]
		b.events = append(b.events, ev)
		e.occupied[idx>>6] |= 1 << (idx & 63)
		e.ladderCount++
		e.ladderPushes++
	} else {
		e.heapPush(ev)
		e.heapPushes++
	}
	if d := e.Pending(); d > e.maxDepth {
		e.maxDepth = d
	}
}

// Halt stops the current Run after the in-flight event returns.
func (e *Engine) Halt() { e.halted = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.ladderCount + len(e.heap) }

// QueueMaxDepth reports the high-water mark of queued events.
func (e *Engine) QueueMaxDepth() int { return e.maxDepth }

// ladderMinCycle returns the earliest cycle with a pending ladder event.
// Only valid when ladderCount > 0.
func (e *Engine) ladderMinCycle() Cycle {
	// Scan the occupancy bitmap from the bucket now maps to, wrapping once.
	// The first set bit at or after now's position is the minimum cycle,
	// because bucket position encodes (cycle - now) mod ladderSpan and all
	// pending cycles lie within one span of now.
	start := int(e.now & ladderMask)
	word, bit := start>>6, start&63
	// First word: ignore bits below the start position.
	if w := e.occupied[word] >> bit; w != 0 {
		return e.now + Cycle(bits.TrailingZeros64(w))
	}
	dist := 64 - bit
	for i := 1; i <= len(e.occupied); i++ {
		w := e.occupied[(word+i)&(len(e.occupied)-1)]
		if w != 0 {
			return e.now + Cycle(dist+bits.TrailingZeros64(w))
		}
		dist += 64
	}
	panic("sim: ladderMinCycle called with empty ladder")
}

// nextAt returns the timestamp of the earliest pending event.
func (e *Engine) nextAt() (Cycle, bool) {
	switch {
	case e.ladderCount == 0 && len(e.heap) == 0:
		return 0, false
	case e.ladderCount == 0:
		return e.heap[0].at, true
	case len(e.heap) == 0:
		return e.ladderMinCycle(), true
	}
	lAt, hAt := e.ladderMinCycle(), e.heap[0].at
	if hAt < lAt {
		return hAt, true
	}
	return lAt, true
}

// popNext removes and returns the earliest pending event. An event can sit
// in both structures for the same cycle only transiently; any heap event at
// cycle c was necessarily scheduled before any ladder event at c (once c is
// within the span, pushes go to the ladder and the clock never rewinds), so
// on a timestamp tie the heap side pops first to preserve FIFO order.
func (e *Engine) popNext() (scheduledEvent, bool) {
	useHeap := false
	var lAt Cycle
	switch {
	case e.ladderCount == 0 && len(e.heap) == 0:
		return scheduledEvent{}, false
	case e.ladderCount == 0:
		useHeap = true
	case len(e.heap) == 0:
		lAt = e.ladderMinCycle()
	default:
		lAt = e.ladderMinCycle()
		useHeap = e.heap[0].at <= lAt
	}
	if useHeap {
		return e.heapPop(), true
	}
	idx := int(lAt & ladderMask)
	b := &e.buckets[idx]
	ev := b.events[b.head]
	b.events[b.head].fn = nil // release the closure for GC
	b.head++
	if b.head == len(b.events) {
		b.events = b.events[:0]
		b.head = 0
		e.occupied[idx>>6] &^= 1 << (idx & 63)
	}
	e.ladderCount--
	return ev, true
}

// Step fires the single next event, advancing the clock to its cycle.
// It reports whether an event was available.
func (e *Engine) Step() bool {
	ev, ok := e.popNext()
	if !ok {
		return false
	}
	e.now = ev.at
	e.fired++
	ev.fn(e.now)
	return true
}

// Run fires events until the queue drains or Halt is called, and returns the
// final cycle.
func (e *Engine) Run() Cycle {
	e.halted = false
	start := e.fired
	for !e.halted && e.Step() {
		if e.limit != 0 && e.fired-start > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded (likely livelock)", e.limit))
		}
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline, advancing the clock to
// exactly deadline even if the queue drains earlier.
func (e *Engine) RunUntil(deadline Cycle) Cycle {
	e.halted = false
	for !e.halted {
		at, ok := e.nextAt()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// CollectInto publishes the engine's counters into a snapshot under the
// sim.* names: events fired, the queue's high-water mark, and how many
// pushes took the allocation-free ladder path versus the overflow heap.
func (e *Engine) CollectInto(s *stats.Snapshot) {
	s.Add("sim.events.fired", e.fired)
	s.Add("sim.queue.max_depth", uint64(e.maxDepth))
	s.Add("sim.queue.ladder_pushes", e.ladderPushes)
	s.Add("sim.queue.heap_pushes", e.heapPushes)
}

// heapPush inserts an event into the 4-ary overflow heap.
func (e *Engine) heapPush(ev scheduledEvent) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(&e.heap[i], &e.heap[p]) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

// heapPop removes the minimum event from the 4-ary overflow heap.
func (e *Engine) heapPop() scheduledEvent {
	h := e.heap
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n].fn = nil // release the closure for GC
	h = h[:n]
	e.heap = h
	// Sift down: move the smallest of up to four children up.
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(&h[c], &h[min]) {
				min = c
			}
		}
		if !eventLess(&h[min], &h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return root
}
