package hypotheses

import (
	"testing"

	"halo/internal/benchjson"
)

func TestClassifyDominance(t *testing.T) {
	th := benchjson.DefaultThresholds() // significant 0.20, equivalence 0.05
	cases := []struct {
		name string
		imps []float64
		want string
	}{
		{"all big wins", []float64{0.40, 0.35, 0.52}, VerdictSignificant},
		{"exactly at tier", []float64{0.20, 0.25, 0.30}, VerdictSignificant},
		{"consistent moderate win", []float64{0.15, 0.18, 0.12}, VerdictDirectional},
		{"one thin seed", []float64{0.40, 0.08, 0.35}, VerdictInconclusive},
		{"tiny wins", []float64{0.02, 0.03, 0.01}, VerdictInconclusive},
		{"one seed contradicts", []float64{0.30, -0.12, 0.25}, VerdictRefuted},
		{"all seeds contradict", []float64{-0.30, -0.22, -0.25}, VerdictRefuted},
		{"contradiction within noise band", []float64{0.25, -0.04, 0.30}, VerdictInconclusive},
		{"no seeds", nil, VerdictInconclusive},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v := ClassifyDominance(c.imps, th)
			if v.Class != c.want {
				t.Errorf("ClassifyDominance(%v) = %s (%s), want %s", c.imps, v.Class, v.Detail, c.want)
			}
		})
	}
}

func TestClassifyEquivalence(t *testing.T) {
	th := benchjson.DefaultThresholds()
	cases := []struct {
		name string
		imps []float64
		want string
	}{
		{"dead even", []float64{0.00, 0.01, -0.01}, VerdictEquivalent},
		{"band edges", []float64{0.05, -0.05, 0.02}, VerdictEquivalent},
		{"consistently slower", []float64{-0.12, -0.15, -0.09}, VerdictNotEquivalent},
		{"consistently faster", []float64{0.12, 0.15, 0.09}, VerdictNotEquivalent},
		{"seeds disagree", []float64{0.12, -0.10, 0.01}, VerdictInconclusive},
		{"no seeds", nil, VerdictInconclusive},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v := ClassifyEquivalence(c.imps, th)
			if v.Class != c.want {
				t.Errorf("ClassifyEquivalence(%v) = %s (%s), want %s", c.imps, v.Class, v.Detail, c.want)
			}
		})
	}
}

func TestVerdictSummary(t *testing.T) {
	v := ClassifyDominance([]float64{0.10, 0.20, 0.30}, benchjson.DefaultThresholds())
	if v.Mean < 0.199 || v.Mean > 0.201 {
		t.Errorf("Mean = %v, want 0.20", v.Mean)
	}
	if v.Min != 0.10 || v.Max != 0.30 {
		t.Errorf("Min/Max = %v/%v, want 0.10/0.30", v.Min, v.Max)
	}
}
