package flowwire

import (
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// This file is the shared-memory half of the shm transport (DESIGN.md §11):
// the segment layout and the SPSC byte ring. The ring is a plain byte
// stream — frames cross it exactly as they cross a socket, torn across the
// wrap boundary whenever they land there — so the frame codec, bufio
// layers, server pipeline and pooled client run on top unchanged. Nothing
// in this file makes a syscall: a steady-state producer/consumer pair
// communicates through two atomic cursors and memcpy.
//
// Segment layout (little-endian, one 4 KiB control page then the two data
// regions):
//
//	offset  size     field
//	0       4        magic  ("HALO")
//	4       4        layout version
//	8       4        request-ring data bytes (power of two)
//	12      4        reply-ring data bytes (power of two)
//	64      8        request ring: tail  — bytes produced (client writes)
//	128     8        request ring: head  — bytes consumed (server writes)
//	192     4        request ring: consumer-waiting flag (server parks)
//	256     4        request ring: producer-waiting flag (client parks)
//	320..   —        reply ring: same four words, roles swapped
//	4096    reqSize  request ring data (client → server)
//	4096+reqSize     reply ring data (server → client)
//
// Every control word sits on its own 64-byte line so the producer's tail
// and the consumer's head never false-share, and the waiting flags (which
// the peer swaps) don't bounce the cursor lines.
const (
	shmMagic     = 0x4f4c4148 // "HALO" little-endian
	shmLayoutVer = 1

	segHdrSize = 4096

	offMagic   = 0
	offVersion = 4
	offReqSize = 8
	offRepSize = 12

	offReqTail = 64
	offReqHead = 128
	offReqCons = 192
	offReqProd = 256

	offRepTail = 320
	offRepHead = 384
	offRepCons = 448
	offRepProd = 512

	// Ring geometry bounds. The lower bound keeps the wrap arithmetic and
	// tests honest (tiny rings are exercised deliberately); the upper bound
	// stops a hostile handshake from asking a client to map gigabytes.
	minShmRingBytes = 64
	maxShmRingBytes = 1 << 30
)

// DefaultShmRingBytes is the per-direction ring capacity Listen gives shm
// connections: large enough that a 64 KiB bufio flush never blocks the
// producer when the consumer keeps up, small enough that per-connection
// segments stay cheap (two rings + the control page ≈ 516 KiB).
const DefaultShmRingBytes = 1 << 18

var errBadSegment = errors.New("flowwire: bad shm segment")

// checkRingBytes validates one ring-size field.
func checkRingBytes(n uint32) error {
	if n < minShmRingBytes || n > maxShmRingBytes || bits.OnesCount32(n) != 1 {
		return fmt.Errorf("%w: ring size %d (want a power of two in [%d, %d])",
			errBadSegment, n, minShmRingBytes, maxShmRingBytes)
	}
	return nil
}

// u64at and u32at bind an atomic word to an offset inside the mapped
// segment. The control offsets are all 64-byte multiples and mmap regions
// are page-aligned, so the required 8-byte alignment holds by construction.
func u64at(mem []byte, off int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&mem[off]))
}

func u32at(mem []byte, off int) *atomic.Uint32 {
	return (*atomic.Uint32)(unsafe.Pointer(&mem[off]))
}

// spscRing is one direction of the segment: a single-producer,
// single-consumer byte ring over shared memory. The cursors are free
// running (they never wrap; the data offset is cursor & mask), which makes
// full/empty unambiguous: readable = tail-head, writable = size-(tail-head).
//
// Memory ordering: the producer copies payload bytes into data and then
// publishes them with an atomic tail store; the consumer loads tail before
// touching the bytes. Go's sync/atomic operations are sequentially
// consistent, so the byte copies are ordered before the cursor publish on
// one side and after the cursor observation on the other — the classic
// release/acquire pairing, strengthened. The same argument covers head in
// the reverse direction (the producer must observe head before reusing the
// space it frees). The waiting flags ride the same rules; see shmconn.go
// for the park/wake handshake built on them.
type spscRing struct {
	tail *atomic.Uint64 // bytes ever produced; written by the producer only
	head *atomic.Uint64 // bytes ever consumed; written by the consumer only
	cons *atomic.Uint32 // consumer parked, waiting for bytes
	prod *atomic.Uint32 // producer parked, waiting for space
	data []byte
	mask uint64
}

// bindRing attaches a ring view to its control words and data region.
func bindRing(mem []byte, tailOff, headOff, consOff, prodOff int, data []byte) spscRing {
	return spscRing{
		tail: u64at(mem, tailOff),
		head: u64at(mem, headOff),
		cons: u32at(mem, consOff),
		prod: u32at(mem, prodOff),
		data: data,
		mask: uint64(len(data) - 1),
	}
}

// readable reports how many bytes the consumer could take right now.
func (r *spscRing) readable() int { return int(r.tail.Load() - r.head.Load()) }

// writable reports how much space the producer could fill right now.
func (r *spscRing) writable() int { return len(r.data) - int(r.tail.Load()-r.head.Load()) }

// write copies as much of p as fits and publishes it, returning the byte
// count (0 when full). Producer-side only.
func (r *spscRing) write(p []byte) int {
	t := r.tail.Load()
	free := len(r.data) - int(t-r.head.Load())
	n := len(p)
	if n > free {
		n = free
	}
	if n == 0 {
		return 0
	}
	off := int(t & r.mask)
	c := copy(r.data[off:], p[:n])
	if c < n {
		copy(r.data, p[c:n])
	}
	r.tail.Store(t + uint64(n))
	return n
}

// read copies up to len(p) available bytes out and retires them, returning
// the byte count (0 when empty). Consumer-side only.
func (r *spscRing) read(p []byte) int {
	h := r.head.Load()
	avail := int(r.tail.Load() - h)
	n := len(p)
	if n > avail {
		n = avail
	}
	if n == 0 {
		return 0
	}
	off := int(h & r.mask)
	c := copy(p[:n], r.data[off:])
	if c < n {
		copy(p[c:n], r.data)
	}
	r.head.Store(h + uint64(n))
	return n
}

// shmSegment is a bound view of one connection's mapped segment: the two
// rings plus the mapping itself (unmapped by the conn's finalizer, never by
// Close — a concurrent reader must not race an munmap).
type shmSegment struct {
	mem []byte
	req spscRing // client → server
	rep spscRing // server → client
}

// segmentSize is the file size a segment with the given ring geometry needs.
func segmentSize(reqSize, repSize uint32) int {
	return segHdrSize + int(reqSize) + int(repSize)
}

// initSegment stamps a freshly created (zeroed) mapping with the layout
// header and returns the bound view. Server-side, before the handshake.
func initSegment(mem []byte, reqSize, repSize uint32) (*shmSegment, error) {
	if err := checkRingBytes(reqSize); err != nil {
		return nil, err
	}
	if err := checkRingBytes(repSize); err != nil {
		return nil, err
	}
	if len(mem) != segmentSize(reqSize, repSize) {
		return nil, fmt.Errorf("%w: mapping is %d bytes, want %d", errBadSegment, len(mem), segmentSize(reqSize, repSize))
	}
	u32at(mem, offReqSize).Store(reqSize)
	u32at(mem, offRepSize).Store(repSize)
	u32at(mem, offVersion).Store(shmLayoutVer)
	u32at(mem, offMagic).Store(shmMagic)
	return bindSegment(mem, reqSize, repSize), nil
}

// attachSegment validates a mapping created by a peer's initSegment and
// returns the bound view. Client-side, after the handshake named the file.
func attachSegment(mem []byte) (*shmSegment, error) {
	if len(mem) < segHdrSize {
		return nil, fmt.Errorf("%w: mapping is %d bytes, smaller than the control page", errBadSegment, len(mem))
	}
	if m := u32at(mem, offMagic).Load(); m != shmMagic {
		return nil, fmt.Errorf("%w: magic %#x, want %#x", errBadSegment, m, shmMagic)
	}
	if v := u32at(mem, offVersion).Load(); v != shmLayoutVer {
		return nil, fmt.Errorf("%w: layout version %d, want %d", errBadSegment, v, shmLayoutVer)
	}
	reqSize := u32at(mem, offReqSize).Load()
	repSize := u32at(mem, offRepSize).Load()
	if err := checkRingBytes(reqSize); err != nil {
		return nil, err
	}
	if err := checkRingBytes(repSize); err != nil {
		return nil, err
	}
	if len(mem) != segmentSize(reqSize, repSize) {
		return nil, fmt.Errorf("%w: mapping is %d bytes, header claims %d", errBadSegment, len(mem), segmentSize(reqSize, repSize))
	}
	return bindSegment(mem, reqSize, repSize), nil
}

func bindSegment(mem []byte, reqSize, repSize uint32) *shmSegment {
	reqData := mem[segHdrSize : segHdrSize+int(reqSize)]
	repData := mem[segHdrSize+int(reqSize) : segHdrSize+int(reqSize)+int(repSize)]
	return &shmSegment{
		mem: mem,
		req: bindRing(mem, offReqTail, offReqHead, offReqCons, offReqProd, reqData),
		rep: bindRing(mem, offRepTail, offRepHead, offRepCons, offRepProd, repData),
	}
}
