package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestBucketIndexUpperConsistent(t *testing.T) {
	// Every value maps into a bucket whose upper bound is >= the value and
	// whose predecessor's upper bound is < the value.
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 33, 100, 1023, 1024, 1 << 20, 1<<40 + 12345} {
		idx := bucketIndex(v)
		if up := bucketUpper(idx); up < v {
			t.Errorf("value %d: bucket %d upper bound %d < value", v, idx, up)
		}
		if idx > 0 {
			if up := bucketUpper(idx - 1); up >= v {
				t.Errorf("value %d: previous bucket %d upper bound %d >= value", v, idx-1, up)
			}
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 || h.Sum() != 5050 {
		t.Fatalf("count/sum = %d/%d, want 100/5050", h.Count(), h.Sum())
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	// Bucket quantization reports the bucket upper bound: p50 of 1..100 is
	// in the bucket containing 50, p99 in the bucket containing 99.
	if p50 < 50 || p50 > 55 {
		t.Errorf("p50 = %d, want ~50 (bucket upper bound)", p50)
	}
	if p99 < 99 || p99 > 104 {
		t.Errorf("p99 = %d, want ~99 (bucket upper bound)", p99)
	}
	if p50 > p99 {
		t.Errorf("p50 %d > p99 %d", p50, p99)
	}
}

func TestHistogramMergeEqualsCombined(t *testing.T) {
	a, b, both := NewHistogram(), NewHistogram(), NewHistogram()
	for v := uint64(0); v < 500; v += 3 {
		a.Observe(v)
		both.Observe(v)
	}
	for v := uint64(1); v < 900; v += 7 {
		b.Observe(v)
		both.Observe(v)
	}
	a.Merge(b)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(both)
	if !bytes.Equal(aj, bj) {
		t.Errorf("merged histogram differs from combined:\n  merged:   %s\n  combined: %s", aj, bj)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram()
	for _, v := range []uint64{0, 3, 17, 17, 900, 1 << 30} {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("histogram JSON not stable:\n  first:  %s\n  second: %s", data, again)
	}
	if back.Quantile(0.5) != h.Quantile(0.5) {
		t.Errorf("quantile changed across round-trip")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := NewSnapshot(), NewSnapshot()
	a.Add("cache.l1.hits", 10)
	a.Observe("lat.lookup.software", 120)
	b.Add("cache.l1.hits", 5)
	b.Add("cache.l1.misses", 2)
	b.Observe("lat.lookup.software", 200)
	a.Merge(b)
	if got := a.Counter("cache.l1.hits"); got != 15 {
		t.Errorf("merged counter = %d, want 15", got)
	}
	if got := a.Counter("cache.l1.misses"); got != 2 {
		t.Errorf("merged counter = %d, want 2", got)
	}
	if got := a.Hist("lat.lookup.software").Count(); got != 2 {
		t.Errorf("merged histogram count = %d, want 2", got)
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	snap := NewSnapshot()
	snap.Add("cache.llc.misses", 42)
	snap.Add("accel.queries", 0)
	snap.Observe("lat.packet", 431)
	snap.Observe("lat.packet", 12888)

	type row struct {
		Kind  string
		Value float64
	}
	rowJSON, err := json.Marshal(row{Kind: "cuckoo", Value: 3.25})
	if err != nil {
		t.Fatal(err)
	}

	doc := &Document{
		Schema: SchemaVersion,
		Seed:   0x48414c4f,
		Experiments: []ExperimentDoc{
			{
				ID:    "fig4",
				Paper: "Figure 4",
				Points: []PointDoc{
					{Label: "cuckoo/1000-flows", Row: rowJSON, Snapshot: snap},
					{Label: "analytic-point"},
				},
				Snapshot: snap,
			},
		},
	}
	data, err := Encode(doc)
	if err != nil {
		t.Fatal(err)
	}

	// Decode → re-encode must reproduce the exact bytes.
	back, err := Validate(data)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if back.Experiment("fig4") == nil {
		t.Fatal("decoded document lost experiment fig4")
	}
	got := back.Experiment("fig4").Points[0].Snapshot
	if got.Counter("cache.llc.misses") != 42 {
		t.Errorf("decoded counter = %d, want 42", got.Counter("cache.llc.misses"))
	}
	if got.Hist("lat.packet").Count() != 2 {
		t.Errorf("decoded histogram count = %d, want 2", got.Hist("lat.packet").Count())
	}
}

func TestValidateRejectsWrongSchema(t *testing.T) {
	doc := &Document{Schema: "halo-stats/v999", Experiments: []ExperimentDoc{{ID: "x"}}}
	data, err := Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(data); err == nil {
		t.Error("Validate accepted an unknown schema version")
	}
}

func TestValidateRejectsTamperedBytes(t *testing.T) {
	doc := &Document{Schema: SchemaVersion, Experiments: []ExperimentDoc{{ID: "x"}}}
	data, err := Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append(bytes.TrimRight(data, "\n"), ' ', '\n')
	if _, err := Validate(tampered); err == nil {
		t.Error("Validate accepted whitespace-tampered bytes")
	}
}

// Regression: Quantile must never panic or return NaN-derived garbage on
// degenerate histograms — empty, single-bucket, inconsistent decode (count
// set but no buckets), or out-of-range/NaN quantile arguments.
func TestHistogramQuantileDegenerate(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		h := NewHistogram()
		for _, q := range []float64{0, 0.5, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty histogram Quantile(%v) = %d, want 0", q, got)
			}
		}
	})

	t.Run("single-bucket", func(t *testing.T) {
		h := NewHistogram()
		h.Observe(7)
		h.Observe(7)
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 7 {
				t.Errorf("single-bucket Quantile(%v) = %d, want 7", q, got)
			}
		}
	})

	t.Run("count-without-buckets", func(t *testing.T) {
		// A document whose count and bucket string disagree decodes to a
		// histogram with count > 0 but no populated buckets; Quantile used to
		// index an empty slice and panic.
		var h Histogram
		if err := h.UnmarshalJSON([]byte(`{"count":3,"sum":12,"buckets":""}`)); err != nil {
			t.Fatal(err)
		}
		if h.Count() != 3 {
			t.Fatalf("count = %d, want 3", h.Count())
		}
		for _, q := range []float64{0, 0.5, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("bucketless Quantile(%v) = %d, want 0", q, got)
			}
		}
	})

	t.Run("bad-q", func(t *testing.T) {
		h := NewHistogram()
		h.Observe(3)
		h.Observe(9)
		if got := h.Quantile(math.NaN()); got != 3 {
			t.Errorf("Quantile(NaN) = %d, want 3 (clamps to q=0)", got)
		}
		if got := h.Quantile(-0.5); got != 3 {
			t.Errorf("Quantile(-0.5) = %d, want 3 (clamps to q=0)", got)
		}
		if got := h.Quantile(2.5); got != 9 {
			t.Errorf("Quantile(2.5) = %d, want 9 (clamps to q=1)", got)
		}
	})
}
