package experiments

import (
	"fmt"
	"io"

	"halo/internal/cuckoo"
	"halo/internal/halo"
	"halo/internal/metrics"
	"halo/internal/stats"
	"halo/internal/tcam"
)

// Fig9Mode identifies one of the five compared solutions (paper §5.1).
type Fig9Mode string

// The compared solutions.
const (
	ModeSoftware Fig9Mode = "software"
	ModeHaloB    Fig9Mode = "halo-blocking"
	ModeHaloNB   Fig9Mode = "halo-nonblocking"
	ModeTCAM     Fig9Mode = "tcam"
	ModeSRAMTCAM Fig9Mode = "sram-tcam"
)

// Fig9Modes lists the solutions in presentation order.
var Fig9Modes = []Fig9Mode{ModeSoftware, ModeHaloB, ModeHaloNB, ModeTCAM, ModeSRAMTCAM}

// Fig9Point is one (mode, size, occupancy) measurement.
type Fig9Point struct {
	Mode            Fig9Mode
	Entries         uint64
	Occupancy       float64
	CyclesPerLookup float64
	// Normalized is throughput relative to software at the same point.
	Normalized float64
}

// Fig9Result reproduces Fig. 9: single hash-table lookup throughput across
// table sizes and occupancies for all five solutions.
type Fig9Result struct {
	Points []Fig9Point
	Table  *metrics.Table
}

// fig9Sizes returns the table-size sweep. The paper sweeps 2^3..2^24; the
// full config here stops at 2^21 (the largest table that exercises the
// LLC→DRAM crossover without hours of simulation) and quick mode earlier.
func fig9Sizes(cfg Config) []uint64 {
	if cfg.Quick {
		return []uint64{1 << 3, 1 << 6, 1 << 10, 1 << 14, 1 << 17}
	}
	return []uint64{1 << 3, 1 << 6, 1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 21}
}

func fig9Occupancies(cfg Config) []float64 {
	if cfg.Quick {
		return []float64{0.75}
	}
	return []float64{0.25, 0.50, 0.75, 0.90}
}

// fig9Cell is one (size, occupancy, mode) coordinate.
type fig9Cell struct {
	size uint64
	occ  float64
	mode Fig9Mode
}

func fig9Cells(cfg Config) []fig9Cell {
	var cells []fig9Cell
	for _, size := range fig9Sizes(cfg) {
		for _, occ := range fig9Occupancies(cfg) {
			for _, mode := range Fig9Modes {
				cells = append(cells, fig9Cell{size, occ, mode})
			}
		}
	}
	return cells
}

// Fig9Sweep decomposes Fig. 9 into one point per (size, occupancy, mode):
// every compared solution at every sweep coordinate is its own simulator
// run, exactly as the paper's separate gem5 runs were.
func Fig9Sweep() Sweep {
	return Sweep{
		Points: func(cfg Config) []Point {
			cells := fig9Cells(cfg)
			pts := make([]Point, len(cells))
			for i, c := range cells {
				pts[i] = Point{Experiment: "fig9", Index: i,
					Label: fmt.Sprintf("%s/%d-entries/%.0f%%", c.mode, c.size, c.occ*100)}
			}
			return pts
		},
		RunPoint: func(cfg Config, p Point) any {
			c := fig9Cells(cfg)[p.Index]
			snap := pointSnapshot(cfg)
			row := runFig9Point(c.mode, c.size, c.occ, pickSize(cfg, 1500, 5000), snap)
			recordSnap(cfg, p, snap)
			return row
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			assembleFig9(cfg, rows).Table.Render(w)
		},
	}
}

// RunFig9 reproduces Fig. 9.
func RunFig9(cfg Config) *Fig9Result {
	return assembleFig9(cfg, runSerial(cfg, Fig9Sweep()))
}

func assembleFig9(cfg Config, rows []any) *Fig9Result {
	res := &Fig9Result{
		Table: metrics.NewTable("Figure 9: single hash-table lookup throughput (normalized to software)",
			"entries", "occ", "software", "halo-B", "halo-NB", "tcam", "sram-tcam"),
	}
	res.Table.SetCaption("paper: HALO up to 3.3x in the LLC regime; software wins for tiny tables; TCAM fastest")

	i := 0
	for _, size := range fig9Sizes(cfg) {
		for _, occ := range fig9Occupancies(cfg) {
			cycles := map[Fig9Mode]float64{}
			for _, mode := range Fig9Modes {
				cycles[mode] = rows[i].(float64)
				i++
			}
			row := []any{size, fmt.Sprintf("%.0f%%", occ*100)}
			for _, mode := range Fig9Modes {
				norm := cycles[ModeSoftware] / cycles[mode]
				res.Points = append(res.Points, Fig9Point{
					Mode: mode, Entries: size, Occupancy: occ,
					CyclesPerLookup: cycles[mode], Normalized: norm,
				})
				row = append(row, fmt.Sprintf("%.2fx (%.0fcyc)", norm, cycles[mode]))
			}
			res.Table.AddRow(row...)
		}
	}
	return res
}

// Point fetches a specific measurement from the result.
func (r *Fig9Result) Point(mode Fig9Mode, entries uint64, occ float64) (Fig9Point, bool) {
	for _, pt := range r.Points {
		if pt.Mode == mode && pt.Entries == entries && pt.Occupancy == occ {
			return pt, true
		}
	}
	return Fig9Point{}, false
}

func runFig9Point(mode Fig9Mode, entries uint64, occ float64, lookups int, snap *stats.Snapshot) float64 {
	switch mode {
	case ModeTCAM, ModeSRAMTCAM:
		return runFig9TCAM(mode, entries, occ, lookups, snap)
	}
	f := newLookupFixture(entries, occ)
	th := f.thread
	warm := lookups / 2
	defer collectInto(snap, f.p, th)

	switch mode {
	case ModeSoftware:
		// Single-lookup rte_hash path: no cross-lookup prefetch pipeline.
		opts := cuckoo.LookupOptions{OptimisticLock: true, Prefetch: false}
		var kb [testKeyLen]byte
		for i := 0; i < warm; i++ {
			testKeyInto(uint64(i)%f.fill, kb[:])
			f.table.TimedLookup(th, kb[:], opts)
		}
		start := th.Now
		for i := 0; i < lookups; i++ {
			testKeyInto(uint64(i*13)%f.fill, kb[:])
			f.table.TimedLookup(th, kb[:], opts)
		}
		return float64(th.Now-start) / float64(lookups)

	case ModeHaloB:
		for i := 0; i < warm; i++ {
			f.p.Unit.LookupBAt(th, f.table.Base(), f.stageKeyDMA(uint64(i)))
		}
		start := th.Now
		for i := 0; i < lookups; i++ {
			f.p.Unit.LookupBAt(th, f.table.Base(), f.stageKeyDMA(uint64(i*13)))
		}
		return float64(th.Now-start) / float64(lookups)

	case ModeHaloNB:
		const batch = 8
		qs := make([]halo.NBQuery, 0, batch)
		rs := make([]halo.NBResult, batch)
		run := func(n int, base uint64) {
			for done := 0; done < n; done += batch {
				qs = qs[:0]
				for j := 0; j < batch && done+j < n; j++ {
					qs = append(qs, halo.NBQuery{
						TableAddr: f.table.Base(),
						KeyAddr:   f.stageKeyDMA(base + uint64(done+j)*13),
					})
				}
				f.p.Unit.LookupManyNBInto(th, qs, rs[:len(qs)])
			}
		}
		run(warm, 7)
		start := th.Now
		run(lookups, 0)
		return float64(th.Now-start) / float64(lookups)
	}
	panic("unknown mode")
}

func runFig9TCAM(mode Fig9Mode, entries uint64, occ float64, lookups int, snap *stats.Snapshot) float64 {
	kind := tcam.ClassicTCAM
	if mode == ModeSRAMTCAM {
		kind = tcam.SRAMTCAM
	}
	fill := uint64(float64(entries) * occ)
	if fill == 0 {
		fill = 1
	}
	dev := tcam.New(tcam.DefaultConfig(kind, int(fill), 16))
	var kb [testKeyLen]byte
	for i := uint64(0); i < fill; i++ {
		testKeyInto(i, kb[:])
		if err := dev.InsertExact(kb[:], i); err != nil {
			panic(err)
		}
	}
	// The device answers in fixed time; charge the thread on a plain
	// platform for issue costs.
	f := newLookupFixture(8, 1)
	th := f.thread
	start := th.Now
	for i := 0; i < lookups; i++ {
		testKeyInto(uint64(i*13)%fill, kb[:])
		dev.LookupTimed(th, kb[:])
	}
	collectInto(snap, f.p, th)
	return float64(th.Now-start) / float64(lookups)
}
