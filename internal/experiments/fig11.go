package experiments

import (
	"fmt"
	"io"

	"halo/internal/classify"
	"halo/internal/cuckoo"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/metrics"
	"halo/internal/packet"
	"halo/internal/sim"
	"halo/internal/stats"
	"halo/internal/tcam"
)

// Fig11Point is one (solution, tuple count) tuple-space-search measurement.
type Fig11Point struct {
	Mode                  Fig9Mode
	Tuples                int
	CyclesPerClassify     float64
	NormalizedToSoft      float64
	ClassificationsPerSec float64
}

// Fig11Result reproduces Fig. 11: tuple space search throughput with 5, 10,
// 15 and 20 tuples of 1024 rules each.
type Fig11Result struct {
	Points []Fig11Point
	Table  *metrics.Table
}

// fig11Cell is one (tuple count, mode) coordinate.
type fig11Cell struct {
	tuples int
	mode   Fig9Mode
}

func fig11TupleCounts(cfg Config) []int {
	if cfg.Quick {
		return []int{5, 20}
	}
	return []int{5, 10, 15, 20}
}

func fig11Cells(cfg Config) []fig11Cell {
	var cells []fig11Cell
	for _, nt := range fig11TupleCounts(cfg) {
		for _, mode := range Fig9Modes {
			cells = append(cells, fig11Cell{nt, mode})
		}
	}
	return cells
}

// Fig11Sweep decomposes Fig. 11 into one point per (tuple count, mode).
func Fig11Sweep() Sweep {
	return Sweep{
		Points: func(cfg Config) []Point {
			cells := fig11Cells(cfg)
			pts := make([]Point, len(cells))
			for i, c := range cells {
				pts[i] = Point{Experiment: "fig11", Index: i,
					Label: fmt.Sprintf("%s/%d-tuples", c.mode, c.tuples)}
			}
			return pts
		},
		RunPoint: func(cfg Config, p Point) any {
			c := fig11Cells(cfg)[p.Index]
			snap := pointSnapshot(cfg)
			row := runFig11Point(c.mode, c.tuples, pickSize(cfg, 400, 3000), cfg.Seed, snap)
			recordSnap(cfg, p, snap)
			return row
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			assembleFig11(cfg, rows).Table.Render(w)
		},
	}
}

// RunFig11 reproduces Fig. 11.
func RunFig11(cfg Config) *Fig11Result {
	return assembleFig11(cfg, runSerial(cfg, Fig11Sweep()))
}

func assembleFig11(cfg Config, rows []any) *Fig11Result {
	res := &Fig11Result{
		Table: metrics.NewTable("Figure 11: tuple space search throughput (normalized to software)",
			"tuples", "software", "halo-B", "halo-NB", "tcam", "sram-tcam"),
	}
	res.Table.SetCaption("paper: HALO non-blocking scales TSS up to 23.4x; blocking mode flattens out")

	i := 0
	for _, nt := range fig11TupleCounts(cfg) {
		cycles := map[Fig9Mode]float64{}
		for _, mode := range Fig9Modes {
			cycles[mode] = rows[i].(float64)
			i++
		}
		row := []any{nt}
		for _, mode := range Fig9Modes {
			norm := cycles[ModeSoftware] / cycles[mode]
			res.Points = append(res.Points, Fig11Point{
				Mode: mode, Tuples: nt,
				CyclesPerClassify:     cycles[mode],
				NormalizedToSoft:      norm,
				ClassificationsPerSec: ClockGHz * 1e9 / cycles[mode],
			})
			row = append(row, fmt.Sprintf("%.2fx (%.0fcyc)", norm, cycles[mode]))
		}
		res.Table.AddRow(row...)
	}
	return res
}

// Point fetches a measurement.
func (r *Fig11Result) Point(mode Fig9Mode, tuples int) (Fig11Point, bool) {
	for _, pt := range r.Points {
		if pt.Mode == mode && pt.Tuples == tuples {
			return pt, true
		}
	}
	return Fig11Point{}, false
}

// newFig11TupleSpace builds a tuple space with nt tuples × 1024 megaflow
// rules (paper §5.2; note 4: these "flows" are megaflows with wildcards) and
// returns query keys that each hit a rule in a uniformly random tuple.
func newFig11TupleSpace(p *halo.Platform, nt int, seed uint64) (*classify.TupleSpace, []packet.FiveTuple) {
	// Subtables are allocated for growth (an NFV switch expects tens of
	// thousands of megaflows) and hold 1024 rules each for this experiment,
	// so probes spread across bucket arrays far larger than the private
	// caches — the tables live in the LLC, as in the paper's platform.
	ts := classify.NewTupleSpace(p.Space, p.Alloc, classify.FirstMatch, 16384)
	rng := sim.NewRand(seed)
	var matchKeys []packet.FiveTuple
	for t := 0; t < nt; t++ {
		// Each tuple gets a distinct mask: exact dst port + a source
		// prefix of varying length.
		mask := classify.Mask{
			SrcIPBits: uint8(4 + t), DstIPBits: 0,
			SrcPortWild: true, DstPortWild: false, ProtoWild: true,
		}
		for r := 0; r < 1024; r++ {
			pat := packet.FiveTuple{
				SrcIP:   rng.Uint32(),
				DstPort: uint16(r),
			}
			m := classify.Match{RuleID: uint32(t*1024 + r + 1), Priority: uint16(t)}
			if err := ts.InsertRule(mask, pat, m); err != nil {
				panic(err)
			}
			// A key matching this rule: same prefix + port, random rest.
			key := mask.Apply(pat)
			key.SrcIP |= rng.Uint32() & (^uint32(0) >> (4 + uint(t)))
			key.DstIP = rng.Uint32()
			key.SrcPort = uint16(rng.Uint32())
			key.Proto = packet.ProtoUDP
			matchKeys = append(matchKeys, key)
		}
	}
	return ts, matchKeys
}

func runFig11Point(mode Fig9Mode, nt, classifications int, seed uint64, snap *stats.Snapshot) float64 {
	if mode == ModeTCAM || mode == ModeSRAMTCAM {
		return runFig11TCAM(mode, nt, classifications, seed, snap)
	}
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	ts, keys := newFig11TupleSpace(p, nt, seed)
	for _, tp := range ts.Tuples() {
		p.WarmTable(tp.Table)
	}
	th := newThreadOn(p)
	rng := sim.NewRand(seed ^ 0xfeed)
	next := func() packet.FiveTuple { return keys[rng.Intn(len(keys))] }

	// Between classifications a PMD thread does packet IO and batching work
	// over megabytes of buffers; that churn keeps the tuple tables out of
	// the private caches (they live in the LLC, as in the paper's switch).
	// The churn is identical across modes and excluded from the measured
	// classification time.
	pressureBase := p.Alloc.AllocLines(1 << 15) // 2 MB rotating region
	pressureCursor := 0
	pressure := func() {
		for j := 0; j < 32; j++ {
			th.Load(pressureBase + mem.Addr(pressureCursor)*mem.LineSize)
			pressureCursor = (pressureCursor + 1) % (1 << 15)
		}
	}

	warm := classifications / 2
	var classifyCycles uint64
	run := func(n int, measure bool) {
		for i := 0; i < n; i++ {
			key := next()
			t0 := th.Now
			switch mode {
			case ModeSoftware:
				// Single-lookup rte_hash path per tuple, consistent with
				// the Fig. 9 software baseline.
				ts.ClassifyTimed(th, key, cuckoo.LookupOptions{OptimisticLock: true, Prefetch: false})
			case ModeHaloB:
				ts.ClassifyHaloB(th, p.Unit, key)
			case ModeHaloNB:
				ts.ClassifyHaloNB(th, p.Unit, key)
			}
			if measure {
				classifyCycles += uint64(th.Now - t0)
			}
			pressure()
		}
	}
	run(warm, false)
	run(classifications, true)
	collectInto(snap, p, th)
	for _, tp := range ts.Tuples() { // tuple tables bypass Platform.NewTable
		collectInto(snap, tp.Table.Stats())
	}
	return float64(classifyCycles) / float64(classifications)
}

func runFig11TCAM(mode Fig9Mode, nt, classifications int, seed uint64, snap *stats.Snapshot) float64 {
	kind := tcam.ClassicTCAM
	if mode == ModeSRAMTCAM {
		kind = tcam.SRAMTCAM
	}
	// A TCAM holds every rule of every tuple in one table; a single
	// search covers all wildcard patterns at once.
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	ts, keys := newFig11TupleSpace(p, nt, seed)
	dev := tcam.New(tcam.DefaultConfig(kind, nt*1024, packet.KeyBytes))
	for _, tp := range ts.Tuples() {
		installTupleIntoTCAM(dev, tp)
	}
	th := newThreadOn(p)
	rng := sim.NewRand(seed ^ 0xfeed)
	start := th.Now
	for i := 0; i < classifications; i++ {
		key := keys[rng.Intn(len(keys))]
		dev.LookupTimed(th, key.Packed())
	}
	collectInto(snap, p, th)
	return float64(th.Now-start) / float64(classifications)
}

// installTupleIntoTCAM converts one tuple's mask and rules into ternary
// entries.
func installTupleIntoTCAM(dev *tcam.Device, tp *classify.Tuple) {
	care := maskCareBytes(tp.Mask)
	// Walk the tuple's table functionally: every bucket entry's key is a
	// masked pattern.
	tbl := tp.Table
	for b := uint64(0); b < tbl.BucketCount(); b++ {
		for _, kv := range tbl.Entries(b) {
			if err := dev.Insert(kv.Key, care, kv.Value); err != nil {
				panic(err)
			}
		}
	}
}

// maskCareBytes renders a classify.Mask as a byte-granular ternary care
// mask over the packed five-tuple.
func maskCareBytes(m classify.Mask) []byte {
	exact := packet.FiveTuple{
		SrcIP: ^uint32(0), DstIP: ^uint32(0),
		SrcPort: ^uint16(0), DstPort: ^uint16(0), Proto: ^uint8(0),
	}
	masked := m.Apply(exact)
	// Fields the mask zeroes in an all-ones tuple are wildcarded.
	care := masked.Packed()
	return care
}
